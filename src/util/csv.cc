#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

#include "util/check.h"

namespace nyqmon {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), width_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  NYQMON_CHECK(!columns.empty());
  row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  NYQMON_CHECK_MSG(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format_double(v));
  row(text);
}

std::string CsvWriter::format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace nyqmon
