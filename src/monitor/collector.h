// A collector accumulates the traces a set of pollers produce and accounts
// their resource usage against a CostModel — the storage/analysis side of
// the monitoring pipeline.
#pragma once

#include <map>
#include <string>

#include "monitor/cost_model.h"
#include "signal/timeseries.h"

namespace nyqmon::mon {

class Collector {
 public:
  explicit Collector(CostModel model = {});

  /// Ingest a trace under a stream key ("device42/Temperature").
  void ingest(const std::string& stream, const sig::TimeSeries& trace);

  std::size_t streams() const { return traces_.size(); }
  const sig::TimeSeries& trace(const std::string& stream) const;
  bool has(const std::string& stream) const;

  /// Aggregate resource usage across all ingested streams.
  const Cost& total_cost() const { return total_; }

 private:
  CostModel model_;
  std::map<std::string, sig::TimeSeries> traces_;
  Cost total_;
};

}  // namespace nyqmon::mon
