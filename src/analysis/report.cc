#include "analysis/report.h"

#include <sstream>

#include "analysis/cdf.h"
#include "util/ascii.h"

namespace nyqmon::ana {

std::string render_box_table(const std::vector<BoxRow>& rows) {
  AsciiTable table({"metric", "n", "min", "q1", "median", "q3", "max"});
  for (const auto& r : rows) {
    table.row({r.label, std::to_string(r.summary.count),
               AsciiTable::format_double(r.summary.min),
               AsciiTable::format_double(r.summary.q1),
               AsciiTable::format_double(r.summary.median),
               AsciiTable::format_double(r.summary.q3),
               AsciiTable::format_double(r.summary.max)});
  }
  return table.render();
}

std::string render_cdf_rows(
    const std::string& label,
    const std::vector<std::pair<double, double>>& rows) {
  std::ostringstream os;
  os << label << '\n';
  AsciiTable table({"x", "CDF(x)"});
  for (const auto& [x, f] : rows)
    table.row({AsciiTable::format_double(x), AsciiTable::format_double(f)});
  os << table.render();
  return os.str();
}

std::string render_quantile_table(const std::vector<QuantileRow>& rows) {
  AsciiTable table({"label", "n", "p5", "p25", "p50", "p75", "p95"});
  for (const auto& r : rows) {
    if (r.samples.empty()) {
      table.row({r.label, "0", "-", "-", "-", "-", "-"});
      continue;
    }
    const Cdf cdf(r.samples);
    table.row({r.label, std::to_string(cdf.count()),
               AsciiTable::format_double(cdf.quantile(0.05)),
               AsciiTable::format_double(cdf.quantile(0.25)),
               AsciiTable::format_double(cdf.quantile(0.50)),
               AsciiTable::format_double(cdf.quantile(0.75)),
               AsciiTable::format_double(cdf.quantile(0.95))});
  }
  return table.render();
}

}  // namespace nyqmon::ana
