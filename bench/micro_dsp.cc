// Microbenchmarks for the DSP substrate: FFT (radix-2 and Bluestein),
// periodogram, Welch, resampling, filtering, Goertzel.
#include <benchmark/benchmark.h>

#include "dsp/fft.h"
#include "dsp/filter.h"
#include "dsp/goertzel.h"
#include "dsp/psd.h"
#include "dsp/resample.h"
#include "signal/generators.h"
#include "util/rng.h"

namespace {

using namespace nyqmon;

std::vector<double> random_signal(std::size_t n) {
  Rng rng(99);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  return x;
}

void BM_FftRadix2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::cdouble> x(n);
  Rng rng(1);
  for (auto& v : x) v = dsp::cdouble(rng.normal(0, 1), 0.0);
  for (auto _ : state) {
    auto spec = dsp::fft(x);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftRadix2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  // Prime-ish lengths force the chirp-z path (typical trace lengths are
  // not powers of two).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::cdouble> x(n);
  Rng rng(2);
  for (auto& v : x) v = dsp::cdouble(rng.normal(0, 1), 0.0);
  for (auto _ : state) {
    auto spec = dsp::fft(x);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftBluestein)->Arg(257)->Arg(1009)->Arg(2880)->Arg(8640);

void BM_Periodogram(benchmark::State& state) {
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto psd = dsp::periodogram(x, 1.0);
    benchmark::DoNotOptimize(psd);
  }
}
BENCHMARK(BM_Periodogram)->Arg(1024)->Arg(2880)->Arg(8640);

void BM_Welch(benchmark::State& state) {
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  dsp::WelchConfig cfg;
  cfg.segment_length = 512;
  for (auto _ : state) {
    auto psd = dsp::welch(x, 1.0, cfg);
    benchmark::DoNotOptimize(psd);
  }
}
BENCHMARK(BM_Welch)->Arg(4096)->Arg(16384);

void BM_ResampleFourierUp4x(benchmark::State& state) {
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto y = dsp::resample_fourier(x, x.size() * 4);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_ResampleFourierUp4x)->Arg(720)->Arg(2880);

void BM_IdealLowpass(benchmark::State& state) {
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto y = dsp::ideal_lowpass(x, 1.0, 0.1);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_IdealLowpass)->Arg(2880)->Arg(8640);

void BM_FirFilter(benchmark::State& state) {
  const auto x = random_signal(4096);
  const auto h = dsp::design_lowpass_fir(
      static_cast<std::size_t>(state.range(0)), 0.1, 1.0);
  for (auto _ : state) {
    auto y = dsp::filter_same(x, h);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_FirFilter)->Arg(31)->Arg(127);

void BM_Goertzel(benchmark::State& state) {
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::goertzel_power(x, 1.0, 0.1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Goertzel)->Arg(2880)->Arg(8640);

}  // namespace
