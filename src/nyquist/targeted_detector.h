// Targeted aliasing detection (paper Section 4.1, closing remark):
//
// "We believe that further improvements are possible for example by using
//  an aliasing detector that is specific to the actual frequencies and
//  changes that appear in datacenter measurements."
//
// Instead of comparing full spectra (an FFT per stream), the targeted
// detector Goertzel-probes a handful of *candidate* frequencies — the
// frequencies at which known datacenter phenomena live (diurnal harmonics,
// cron/scrape periods, a device's previously observed band edge) — in both
// the primary and checker streams. Energy that appears at a candidate in
// the fast stream but lands elsewhere in the slow stream flags aliasing.
// Cost: O(candidates * N) instead of O(N log N), with far fewer samples
// needed for a stable answer.
#pragma once

#include <functional>
#include <vector>

#include "signal/timeseries.h"

namespace nyqmon::nyq {

struct TargetedDetectorConfig {
  /// Checker stream rate multiplier (non-integer, as in Penny et al.).
  double rate_ratio = 1.85;
  /// A candidate is considered "present" when its power in the fast
  /// stream exceeds this fraction of the fast stream's total (mean-removed)
  /// power; present candidates whose energy the slow stream relocates trip
  /// the detector.
  double power_fraction_threshold = 0.02;
};

struct TargetedDetection {
  bool aliasing_detected = false;
  /// Candidate frequencies (Hz) whose energy the slow stream misplaces.
  std::vector<double> offending_frequencies_hz;
  std::size_t candidates_probed = 0;
};

class TargetedAliasingDetector {
 public:
  explicit TargetedAliasingDetector(TargetedDetectorConfig config = {});

  /// Probe `measure` over [t0, t0+duration) at `slow_rate_hz` (the rate
  /// under test) and at rate_ratio * slow_rate_hz, checking only the
  /// candidate frequencies. Candidates at or below slow_rate/2 are ignored
  /// (they cannot alias); candidates above the fast Nyquist are ignored
  /// (neither stream can see them).
  TargetedDetection probe(const std::function<double(double)>& measure,
                          double t0, double duration_s, double slow_rate_hz,
                          const std::vector<double>& candidates_hz) const;

  /// The standard datacenter candidate set: diurnal harmonics plus common
  /// cron/scrape periods (1 min, 30 s, 15 s, 10 s, 5 s).
  static std::vector<double> default_candidates();

 private:
  TargetedDetectorConfig config_;
};

}  // namespace nyqmon::nyq
