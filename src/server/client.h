// NyqmonClient — blocking client for the nyqmond wire protocol.
//
// One instance owns one TCP connection and issues one command at a time
// (the protocol is strictly request/response per connection; concurrency
// comes from multiple clients). Command methods throw std::runtime_error
// when the transport fails or the server answers ERR — the server's
// message is carried through verbatim.
//
// The raw escape hatches (send_raw / request_raw) exist for protocol
// tests: truncated frames, oversized length prefixes, unknown verbs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "query/spec.h"
#include "server/protocol.h"

namespace nyqmon::srv {

class NyqmonClient {
 public:
  /// Connect to host:port (numeric IPv4 host). Throws on failure.
  /// `max_frame_bytes` must match the server's frame cap when that was
  /// raised from the default — response frames beyond it are rejected.
  NyqmonClient(const std::string& host, std::uint16_t port,
               std::size_t max_frame_bytes = kMaxFrameBytes);
  ~NyqmonClient();

  NyqmonClient(const NyqmonClient&) = delete;
  NyqmonClient& operator=(const NyqmonClient&) = delete;

  /// Append a batch to `stream`, creating it on first ingest with the
  /// given collection rate and start time. Returns the stream's total
  /// ingested sample count after the append.
  std::uint64_t ingest(const std::string& stream, double rate_hz, double t0,
                       std::span<const double> values);

  QueryReply query(const qry::QuerySpec& spec);

  /// The server's JSON counter snapshot, verbatim.
  std::string stats_json();

  /// The server process's metric registry as Prometheus text exposition
  /// (catalog: docs/OBSERVABILITY.md), verbatim.
  std::string metrics_text();

  /// Drain the server's trace rings as chrome://tracing JSON, verbatim.
  /// Consuming: consecutive calls return disjoint windows of activity.
  std::string trace_json();

  CheckpointReply checkpoint();

  /// Close the socket early (tests: disconnect mid-exchange). Idempotent.
  void close();

  // ---- protocol-test escape hatches ----

  /// Send raw bytes as-is (no framing).
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Send one framed request and return the raw response body
  /// (status byte + payload). Throws only on transport failure.
  std::vector<std::uint8_t> request_raw(std::uint8_t verb,
                                        std::span<const std::uint8_t> payload);

 private:
  /// request_raw + ERR unwrapping: returns the OK payload.
  std::vector<std::uint8_t> request_ok(Verb verb,
                                       std::span<const std::uint8_t> payload);
  std::vector<std::uint8_t> read_response_body();

  int fd_ = -1;
  std::size_t max_frame_bytes_;
};

}  // namespace nyqmon::srv
