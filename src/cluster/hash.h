// Consistent-hash ring over "device/metric" stream IDs.
//
// The cluster layer shards retained streams across N nyqmond nodes: a
// stream lives on exactly one node (its *owner*), chosen by consistent
// hashing so that adding or removing one node only moves ~1/N of the
// keyspace instead of reshuffling everything. Each node contributes
// `vnodes` points on a 64-bit ring (FNV-1a of "<node-id>#<vnode>", the
// same stable cross-platform hash the store uses for striping); a stream
// hashes to a ring position and is owned by the first point clockwise.
//
// Determinism contract: ownership depends only on (node IDs, vnodes,
// stream ID) — never on insertion order, endpoints, or platform — so
// every router, client and test that builds a ring from the same node
// list computes identical placements. The ring serializes to a canonical
// text description (format: docs/FORMATS.md) that parses back
// bit-identically; fleets exchange topology as that text.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nyqmon::clu {

/// One nyqmond node as the ring sees it: a stable identity (used for
/// hashing — renaming a node moves its keys) plus where to reach it.
struct NodeDesc {
  std::string id;    ///< stable node identity, e.g. "node0"
  std::string host;  ///< numeric IPv4 host
  std::uint16_t port = 0;
};

class HashRing {
 public:
  /// Build a ring over `nodes` with `vnodes` points per node. Node IDs
  /// must be unique and non-empty; vnodes must be >= 1. Throws
  /// std::invalid_argument otherwise.
  HashRing(std::vector<NodeDesc> nodes, std::size_t vnodes = 64);

  /// Index (into nodes()) of the node owning `stream_id`.
  std::size_t owner(std::string_view stream_id) const;

  /// The owning node itself.
  const NodeDesc& owner_node(std::string_view stream_id) const {
    return nodes_[owner(stream_id)];
  }

  const std::vector<NodeDesc>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  std::size_t vnodes() const { return vnodes_; }

  /// Fraction of the 64-bit keyspace owned by node `i` (arc lengths of
  /// its ring points). The ring-ownership gauges read this.
  double keyspace_share(std::size_t i) const;

  /// Canonical text description (see docs/FORMATS.md):
  ///   nyqring v1
  ///   vnodes <k>
  ///   node <id> <host>:<port>
  /// Nodes in the order given at construction; parse() round-trips.
  std::string describe() const;

  /// Parse a ring description. Throws std::invalid_argument with a
  /// line-numbered message on malformed input.
  static HashRing parse(const std::string& text);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t node;  ///< index into nodes_
  };

  std::vector<NodeDesc> nodes_;
  std::size_t vnodes_;
  std::vector<Point> points_;  ///< sorted by hash (ties by node index)
};

}  // namespace nyqmon::clu
