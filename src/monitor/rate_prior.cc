#include "monitor/rate_prior.h"

#include <algorithm>

#include "signal/stats.h"
#include "util/check.h"

namespace nyqmon::mon {

void RatePriorStore::learn_from(const AuditResult& audit) {
  for (const auto& pair : audit.pairs) {
    if (pair.estimate.ok())
      samples_[pair.kind].push_back(pair.estimate.nyquist_rate_hz);
  }
}

void RatePriorStore::observe(tel::MetricKind kind, double nyquist_rate_hz) {
  NYQMON_CHECK(nyquist_rate_hz > 0.0);
  samples_[kind].push_back(nyquist_rate_hz);
}

std::optional<RatePrior> RatePriorStore::prior(tel::MetricKind kind) const {
  const auto it = samples_.find(kind);
  if (it == samples_.end() || it->second.empty()) return std::nullopt;
  RatePrior p;
  p.observations = it->second.size();
  p.median_rate_hz = sig::quantile(it->second, 0.5);
  p.p90_rate_hz = sig::quantile(it->second, 0.9);
  p.max_rate_hz = *std::max_element(it->second.begin(), it->second.end());
  return p;
}

nyq::AdaptiveConfig RatePriorStore::warm_start(
    tel::MetricKind kind, const nyq::AdaptiveConfig& base) const {
  nyq::AdaptiveConfig cfg = base;
  const auto p = prior(kind);
  if (p) {
    cfg.initial_rate_hz = std::clamp(cfg.headroom * p->p90_rate_hz,
                                     cfg.min_rate_hz, cfg.max_rate_hz);
  }
  return cfg;
}

}  // namespace nyqmon::mon
