// Shard partitioning for the fleet engine.
//
// The engine splits a fleet's metric-device pairs into shards — the unit of
// work a worker thread claims. Pairs are dealt round-robin so every shard
// mixes fast- and slow-polling metrics (fleet construction shuffles pairs,
// so consecutive indices are already de-correlated); workers then pull whole
// shards from a shared queue, which balances load without per-pair
// contention.
//
// Ownership/threading: partition_shards() is a pure function returning a
// value; shards hold indices only, never pointers into the fleet.
// Determinism: the partition depends only on (n_pairs, n_shards) — never
// on which worker later claims which shard — which is one leg of the
// engine's bit-identical-across-workers contract.
#pragma once

#include <cstddef>
#include <vector>

namespace nyqmon::eng {

/// One shard: the pair indices (into Fleet::pairs()) it owns.
struct Shard {
  std::size_t id = 0;
  std::vector<std::size_t> pair_indices;
};

/// Deal `n_pairs` indices round-robin into `n_shards` shards. Every index in
/// [0, n_pairs) appears in exactly one shard; shard sizes differ by at most
/// one. `n_shards` is clamped to [1, max(n_pairs, 1)].
std::vector<Shard> partition_shards(std::size_t n_pairs, std::size_t n_shards);

}  // namespace nyqmon::eng
