// Adaptive monitoring: the paper's Section 4 system end to end.
//
// A temperature sensor starts calm, then a cooling failure makes it swing
// rapidly for a while, then it calms again. The adaptive sampler starts at
// the production default (one poll per 5 minutes), verifies its rate with
// the dual-rate aliasing check, backs off while the signal is calm, ramps
// up through the incident, and returns to the cheap rate afterwards — with
// rate memory making the second ramp instant.
#include <cstdio>
#include <memory>

#include "monitor/pipeline.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/ascii.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;

  // Calm (diurnal-ish drift) -> incident (fast oscillation) -> calm.
  Rng rng(77);
  auto calm = sig::make_bandlimited_process(1.0 / 21600.0, 6.0, 16, rng, 45.0);
  auto incident =
      sig::make_bandlimited_process(1.0 / 240.0, 8.0, 16, rng, 52.0);
  const double t1 = 4.0 * 86400.0;  // incident begins on day 4
  const double t2 = 5.0 * 86400.0;  // and lasts one day
  auto signal = std::make_shared<sig::PiecewiseSignal>(
      std::vector<std::shared_ptr<const sig::ContinuousSignal>>{calm, incident,
                                                                calm},
      std::vector<double>{t1, t2});

  mon::PipelineConfig cfg;
  cfg.sampler.initial_rate_hz = 1.0 / 300.0;  // production default: 5 min
  cfg.sampler.min_rate_hz = 1.0 / 7200.0;
  cfg.sampler.max_rate_hz = 1.0 / 15.0;
  cfg.sampler.window_duration_s = 6.0 * 3600.0;
  cfg.quantization_step = 1.0;  // integer temperature readings

  const mon::AdaptiveMonitoringPipeline pipeline(cfg);
  const auto result =
      pipeline.run(*signal, 0.0, 9.0 * 86400.0, 1.0 / 300.0, /*seed=*/5);

  std::printf("window-by-window adaptation (6 h windows):\n");
  std::printf("%-12s %-8s %-12s %-10s %s\n", "t (days)", "mode", "rate (Hz)",
              "aliasing", "est. Nyquist (Hz)");
  for (const auto& step : result.run.steps) {
    std::printf("%-12.2f %-8s %-12.3g %-10s %.3g\n",
                step.window_start_s / 86400.0,
                step.mode == nyq::SamplerMode::kProbe ? "probe" : "track",
                step.rate_hz, step.aliasing_detected ? "DETECTED" : "-",
                step.estimate.ok() ? step.estimate.nyquist_rate_hz : -1.0);
  }

  std::printf("\nsampling rate over time:\n");
  std::vector<double> rates;
  for (const auto& step : result.run.steps) rates.push_back(step.rate_hz);
  std::printf("%s\n", ascii_series(rates, 72, 8).c_str());

  std::printf("cost: %zu samples adaptive vs %zu at the production rate "
              "(%.1fx cheaper)\n",
              result.run.total_samples,
              result.run.baseline_samples(1.0 / 300.0), result.cost_savings);
  std::printf("reconstruction NRMSE vs ground truth: %.4f (max abs err "
              "%.2f deg)\n",
              result.nrmse, result.max_abs_error);
  std::printf("note: the incident's band limit (%.4g Hz) is above the\n"
              "production Nyquist frequency (%.4g Hz) — a fixed 5-min poller\n"
              "would have aliased it; the adaptive sampler caught it at\n"
              "about the same total cost.\n",
              1.0 / 240.0, (1.0 / 300.0) / 2.0);
  return 0;
}
