#include "cluster/client.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nyqmon::clu {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-backend gather latency, named at runtime (one series per backend
/// index; documented as nyqmon_cluster_backend<i>_gather_ns).
void record_backend_latency(std::size_t i, std::uint64_t ns) {
  obs::Registry::instance()
      .histogram("nyqmon_cluster_backend" + std::to_string(i) + "_gather_ns")
      .record(ns);
}

std::uint64_t elapsed_ns(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

}  // namespace

ClusterClient::ClusterClient(ClusterConfig config)
    : config_(std::move(config)),
      ring_(config_.nodes, config_.vnodes),
      conns_(config_.nodes.size()) {
  // Keyspace ownership as a per-backend gauge (per-mille of the hash
  // space; documented as nyqmon_cluster_backend<i>_share_permille).
  for (std::size_t i = 0; i < config_.nodes.size(); ++i)
    obs::Registry::instance()
        .gauge("nyqmon_cluster_backend" + std::to_string(i) +
               "_share_permille")
        .set(static_cast<std::int64_t>(ring_.keyspace_share(i) * 1000.0));
  // Fan-out span names are recorded by pointer; intern once up front so
  // scatter() never allocates a name on the hot path.
  fanout_names_.reserve(config_.nodes.size());
  for (const NodeDesc& node : config_.nodes)
    fanout_names_.push_back(obs::intern_node_name("fanout/" + node.id));
}

ClusterClient::~ClusterClient() = default;

srv::NyqmonClient& ClusterClient::node(std::size_t i) {
  if (conns_[i] == nullptr) {
    const NodeDesc& desc = config_.nodes[i];
    conns_[i] = std::make_unique<srv::NyqmonClient>(
        desc.host, desc.port,
        srv::ClientOptions{config_.connect_timeout_ms, config_.io_timeout_ms,
                           config_.max_frame_bytes});
  }
  return *conns_[i];
}

void ClusterClient::reset(std::size_t i) { conns_[i].reset(); }

std::uint64_t ClusterClient::ingest(const std::string& stream, double rate_hz,
                                    double t0,
                                    std::span<const double> values) {
  const std::size_t owner = ring_.owner(stream);
  // Encode once; with an active trace the owner's dispatch span joins the
  // caller's trace, parented under the caller's current span.
  srv::IngestRequest req;
  req.stream = stream;
  req.rate_hz = rate_hz;
  req.t0 = t0;
  req.values.assign(values.begin(), values.end());
  std::vector<std::uint8_t> payload = srv::encode_ingest(req);
  const obs::ThreadTraceContext& tctx = obs::thread_trace_context();
  if (obs::TraceRecorder::instance().enabled() && tctx.trace_id != 0)
    srv::append_trace_context(
        payload, srv::TraceContext{tctx.trace_id, tctx.span_id, 1});
  return srv::retry_with_backoff(config_.retry, [&] {
    try {
      const auto body = node(owner).request_raw(
          static_cast<std::uint8_t>(srv::Verb::kIngest), payload);
      sto::ByteReader reader(body);
      const auto status = static_cast<srv::Status>(reader.get_u8());
      if (status != srv::Status::kOk) {
        const std::string message = reader.get_string();
        throw srv::ServerError(message.empty() ? "(no message)" : message,
                               srv::decode_error_detail(reader));
      }
      const std::uint64_t total = reader.get_u64();
      if (!reader.ok()) throw std::runtime_error("malformed INGEST response");
      return total;
    } catch (const srv::ServerError&) {
      throw;  // the server answered; retrying cannot change it
    } catch (const std::runtime_error&) {
      reset(owner);  // unsynchronized stream: reconnect on retry
      throw;
    }
  });
}

ScatterOutcome ClusterClient::scatter(srv::Verb verb,
                                      std::span<const std::uint8_t> payload) {
  const std::size_t n = config_.nodes.size();

  // With an active thread trace context each backend gets its own frame
  // carrying a TraceContext trailer whose parent is a per-backend fan-out
  // span (recorded below at settle time); otherwise one shared frame is
  // byte-identical to the untraced wire.
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  const obs::ThreadTraceContext& tctx = obs::thread_trace_context();
  const bool tracing = recorder.enabled() && tctx.trace_id != 0;
  const std::uint64_t trace_t0 = tracing ? recorder.now_ns() : 0;
  std::vector<std::uint64_t> fanout_span(tracing ? n : 0, 0);
  std::vector<std::vector<std::uint8_t>> traced_requests;
  std::vector<std::uint8_t> shared_request;
  if (tracing) {
    traced_requests.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      fanout_span[i] = obs::next_span_id();
      std::vector<std::uint8_t> body(payload.begin(), payload.end());
      srv::append_trace_context(
          body, srv::TraceContext{tctx.trace_id, fanout_span[i], 1});
      traced_requests[i] = srv::frame(static_cast<std::uint8_t>(verb), body);
    }
  } else {
    shared_request = srv::frame(static_cast<std::uint8_t>(verb), payload);
  }

  ScatterOutcome out;
  out.payloads.resize(n);
  out.gather_ns.assign(n, 0);
  std::vector<bool> settled(n, false);  // answered, failed, or timed out

  // One fan-out span per backend, closed when that backend settles (for
  // failures the span covers send → failure detection).
  auto record_fanout = [&](std::size_t i) {
    if (!tracing) return;
    recorder.record(fanout_names_[i], "cluster", trace_t0,
                    recorder.now_ns() - trace_t0, tctx.trace_id,
                    fanout_span[i], tctx.span_id, tctx.node);
  };

  auto fail = [&](std::size_t i, const std::string& why) {
    NYQMON_LOG_WARN("cluster.backend_failed",
                    "node=" + config_.nodes[i].id + " why=" + why);
    out.failures.push_back({config_.nodes[i].id, why});
    settled[i] = true;
    reset(i);
    record_fanout(i);
  };

  // Send phase: every backend gets the request before any reply is read,
  // so the backends work concurrently while we gather.
  const auto t_send = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    try {
      node(i).send_raw(tracing ? traced_requests[i] : shared_request);
    } catch (const std::exception& e) {
      fail(i, e.what());
    }
  }

  // Gather phase: poll the outstanding sockets, assembling each backend's
  // length-prefixed reply from non-blocking reads, until every backend has
  // answered or its deadline passed.
  const bool bounded = config_.io_timeout_ms > 0;
  const auto deadline =
      t_send + std::chrono::milliseconds(config_.io_timeout_ms);
  std::vector<std::vector<std::uint8_t>> bufs(n);
  std::vector<pollfd> fds;
  std::vector<std::size_t> owner_of;  // fds index -> node index
  while (true) {
    fds.clear();
    owner_of.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (settled[i]) continue;
      fds.push_back({conns_[i]->fd(), POLLIN, 0});
      owner_of.push_back(i);
    }
    if (fds.empty()) break;

    int timeout_ms = 100;
    if (bounded) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now()).count();
      if (remaining <= 0) {
        for (const std::size_t i : owner_of) fail(i, "backend timed out");
        break;
      }
      timeout_ms = static_cast<int>(remaining);
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      for (const std::size_t i : owner_of)
        fail(i, std::string("poll: ") + std::strerror(errno));
      break;
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      const std::size_t i = owner_of[k];
      if (!(fds[k].revents & (POLLIN | POLLERR | POLLHUP))) continue;
      // Drain what the socket has without blocking the other backends.
      bool failed = false;
      while (true) {
        std::uint8_t chunk[16384];
        const ssize_t got =
            ::recv(fds[k].fd, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (got > 0) {
          bufs[i].insert(bufs[i].end(), chunk, chunk + got);
          continue;
        }
        if (got == 0) {
          fail(i, "backend closed the connection");
          failed = true;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          fail(i, std::string("recv: ") + std::strerror(errno));
          failed = true;
        }
        break;
      }
      if (failed || settled[i] || bufs[i].size() < 4) continue;

      sto::ByteReader prefix{
          std::span<const std::uint8_t>(bufs[i]).subspan(0, 4)};
      const std::uint32_t body_len = prefix.get_u32();
      if (body_len == 0 || body_len > config_.max_frame_bytes) {
        fail(i, "bad response frame length");
        continue;
      }
      if (bufs[i].size() < 4u + body_len) continue;  // partial reply
      if (bufs[i].size() > 4u + body_len) {
        fail(i, "trailing bytes after reply");  // protocol desync
        continue;
      }
      sto::ByteReader body{
          std::span<const std::uint8_t>(bufs[i]).subspan(4, body_len)};
      const auto status = static_cast<srv::Status>(body.get_u8());
      if (status == srv::Status::kOk) {
        const auto rest = body.get_bytes(body.remaining());
        out.payloads[i] = std::vector<std::uint8_t>(rest.begin(), rest.end());
        settled[i] = true;
      } else {
        const std::string message = body.get_string();
        // An ERR answer leaves the connection synchronized — no reset.
        out.failures.push_back(
            {config_.nodes[i].id,
             message.empty() ? "(no message)" : message});
        settled[i] = true;
      }
      const std::uint64_t gather = elapsed_ns(t_send);
      record_backend_latency(i, gather);
      out.gather_ns[i] = gather;
      record_fanout(i);
    }
  }
  return out;
}

FleetQuery ClusterClient::query(const qry::QuerySpec& spec) {
  spec.validate();
  // Shards return raw per-stream series (plus the matched IDs); the
  // cross-stream aggregation runs centrally so FP accumulation order
  // matches a single node's exactly.
  qry::QuerySpec shard_spec = spec;
  shard_spec.aggregate = qry::Aggregation::kNone;
  const auto t_scatter = Clock::now();
  ScatterOutcome scattered =
      scatter(srv::Verb::kQuery,
              srv::encode_query(shard_spec, srv::kQueryWantMatched));

  FleetQuery fleet;
  fleet.scatter_ns = elapsed_ns(t_scatter);
  fleet.gather_ns = std::move(scattered.gather_ns);
  fleet.failures = std::move(scattered.failures);
  const auto t_merge = Clock::now();
  std::vector<qry::ShardSlice> slices;
  bool all_cached = true;
  for (std::size_t i = 0; i < scattered.payloads.size(); ++i) {
    if (!scattered.payloads[i].has_value()) continue;
    sto::ByteReader reader(*scattered.payloads[i]);
    auto reply = srv::decode_query_reply(reader);
    if (!reply.has_value()) {
      fleet.failures.push_back(
          {config_.nodes[i].id, "malformed QUERY response"});
      reset(i);
      continue;
    }
    all_cached &= reply->cache_hit;
    slices.push_back({std::move(reply->matched_labels),
                      std::move(reply->series)});
  }
  fleet.cache_hit =
      all_cached && fleet.failures.empty() && !scattered.payloads.empty();
  fleet.merged = qry::merge_shard_slices(spec, std::move(slices));
  fleet.merge_ns = elapsed_ns(t_merge);  // shard decode + central merge
  return fleet;
}

std::vector<NodeText> ClusterClient::fleet_stats() {
  ScatterOutcome scattered = scatter(srv::Verb::kStats, {});
  std::vector<NodeText> out(config_.nodes.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].node = config_.nodes[i].id;
    if (scattered.payloads[i].has_value())
      out[i].text.assign(scattered.payloads[i]->begin(),
                         scattered.payloads[i]->end());
  }
  for (const srv::ErrorDetail& f : scattered.failures)
    for (NodeText& node : out)
      if (node.node == f.node && node.text.empty()) node.error = f.error;
  return out;
}

std::vector<NodeText> ClusterClient::fleet_metrics() {
  ScatterOutcome scattered = scatter(srv::Verb::kMetrics, {});
  std::vector<NodeText> out(config_.nodes.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].node = config_.nodes[i].id;
    if (scattered.payloads[i].has_value())
      out[i].text.assign(scattered.payloads[i]->begin(),
                         scattered.payloads[i]->end());
  }
  for (const srv::ErrorDetail& f : scattered.failures)
    for (NodeText& node : out)
      if (node.node == f.node && node.text.empty()) node.error = f.error;
  return out;
}

std::vector<std::optional<srv::CheckpointReply>> ClusterClient::checkpoint_all(
    std::vector<srv::ErrorDetail>& failures) {
  ScatterOutcome scattered = scatter(srv::Verb::kCheckpoint, {});
  std::vector<std::optional<srv::CheckpointReply>> out(config_.nodes.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!scattered.payloads[i].has_value()) continue;
    sto::ByteReader reader(*scattered.payloads[i]);
    auto reply = srv::decode_checkpoint_reply(reader);
    if (reply.has_value()) {
      out[i] = *reply;
    } else {
      scattered.failures.push_back(
          {config_.nodes[i].id, "malformed CHECKPOINT response"});
      reset(i);
    }
  }
  failures = std::move(scattered.failures);
  return out;
}

srv::HandoffImportReply ClusterClient::handoff(const std::string& selector,
                                               std::size_t from,
                                               std::size_t to) {
  if (from >= nodes() || to >= nodes() || from == to)
    throw std::invalid_argument("handoff needs two distinct node indices");
  srv::HandoffExportReply exported;
  try {
    exported = node(from).handoff_export(selector);
  } catch (const srv::ServerError&) {
    throw;
  } catch (const std::runtime_error&) {
    reset(from);
    throw;
  }
  try {
    return node(to).handoff_import(exported.segment);
  } catch (const srv::ServerError&) {
    throw;
  } catch (const std::runtime_error&) {
    reset(to);
    throw;
  }
}

}  // namespace nyqmon::clu
