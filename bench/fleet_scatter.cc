// Scatter-gather throughput of the cluster router: QPS and fan-out
// latency (p50/p99) through a NyqmonRouter fronting 1/2/4 in-process
// nyqmond backends holding the same sharded stream population.
//
// Usage: fleet_scatter [streams] [queries]
//        (defaults: 96 streams, 2000 queries; CI smokes it with 24/400,
//        see CMakeLists.txt)
//
// Setup: each backend count gets a fresh fleet — N empty nyqmond servers
// on ephemeral ports behind a fresh router — and the same deterministic
// stream population is ingested through the router (so the consistent-hash
// ring does the sharding). One client connection then drives a mixed
// selector workload (exact streams, device globs, metric globs, fleet-wide)
// across transforms and aggregations; every query scatters to all N
// backends and merges centrally, so the row-to-row comparison isolates the
// fan-out cost. Latencies are measured per query at the client.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "common.h"
#include "monitor/striped_store.h"
#include "query/builder.h"
#include "server/client.h"
#include "server/server.h"
#include "util/ascii.h"
#include "util/csv.h"

namespace {

using namespace nyqmon;

std::vector<std::string> make_stream_names(std::size_t n) {
  static const char* kMetrics[] = {"cpu_util", "if_drops", "mem_rss"};
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    names.push_back("dev" + std::to_string(i / 3) + "/" + kMetrics[i % 3]);
  return names;
}

std::vector<qry::QuerySpec> build_workload(
    const std::vector<std::string>& names) {
  std::vector<std::string> selectors;
  for (std::size_t i = 0; i < names.size() && selectors.size() < 4;
       i += names.size() / 4 + 1)
    selectors.push_back(names[i]);              // exact
  selectors.push_back("*/cpu_util");            // per-metric
  selectors.push_back("*/if_drops");
  selectors.push_back("dev1*");                 // device prefix
  selectors.push_back("*");                     // fleet-wide

  const qry::Transform transforms[] = {qry::Transform::kRaw,
                                       qry::Transform::kRate,
                                       qry::Transform::kZScore};
  const qry::Aggregation aggs[] = {qry::Aggregation::kAvg,
                                   qry::Aggregation::kP95,
                                   qry::Aggregation::kMax};
  std::vector<qry::QuerySpec> workload;
  std::size_t v = 0;
  for (const auto& sel : selectors) {
    for (const double offset : {0.0, 40.0, 80.0}) {
      workload.push_back(qry::QueryBuilder()
                             .select(sel)
                             .range(offset, offset + 120.0)
                             .align(2.0)
                             .transform(transforms[v % 3])
                             .aggregate(aggs[(v / 3) % 3])
                             .build());
      ++v;
    }
  }
  return workload;
}

double quantile_ms(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(i, sorted_ms.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t streams =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 96;
  const std::size_t queries =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
               : 2000;
  if (streams == 0 || queries == 0) {
    std::fprintf(stderr, "usage: %s [streams] [queries]\n", argv[0]);
    return 2;
  }

  const std::vector<std::string> names = make_stream_names(streams);
  const std::vector<qry::QuerySpec> workload = build_workload(names);
  std::printf("fleet_scatter: %zu streams, %zu queries, %zu distinct specs\n\n",
              streams, queries, workload.size());

  AsciiTable table({"backends", "streams", "queries", "wall_s", "router_qps",
                    "p50_ms", "p99_ms"});
  CsvWriter csv(bench::csv_path("fleet_scatter"),
                {"backends", "streams", "queries", "wall_s", "router_qps",
                 "p50_ms", "p99_ms"});
  std::string json_backends, json_qps, json_p99;

  for (const std::size_t backends : {1, 2, 4}) {
    // Fresh fleet per row: N empty backends behind a fresh router, the
    // population re-sharded by the ring.
    std::vector<std::unique_ptr<mon::StripedRetentionStore>> stores;
    std::vector<std::unique_ptr<srv::NyqmondServer>> servers;
    clu::RouterConfig cfg;
    for (std::size_t i = 0; i < backends; ++i) {
      stores.push_back(std::make_unique<mon::StripedRetentionStore>());
      servers.push_back(std::make_unique<srv::NyqmondServer>(
          *stores.back(), nullptr, srv::ServerConfig{}));
      servers.back()->start();
      cfg.cluster.nodes.push_back({"node" + std::to_string(i), "127.0.0.1",
                                   servers.back()->port()});
    }
    clu::NyqmonRouter router(cfg);
    router.start();

    srv::NyqmonClient client("127.0.0.1", router.port());
    std::vector<double> values(512);
    for (std::size_t s = 0; s < names.size(); ++s) {
      for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = std::sin(0.3 * static_cast<double>(s) +
                             0.05 * static_cast<double>(i));
      client.ingest(names[s], 2.0, 0.0, values);
    }

    std::vector<double> latencies_ms;
    latencies_ms.reserve(queries);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < queries; ++i) {
      const auto q0 = std::chrono::steady_clock::now();
      (void)client.query(workload[i % workload.size()]);
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - q0)
              .count());
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    router.stop();
    for (auto& server : servers) server->stop();

    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double qps = static_cast<double>(queries) / wall;
    const double p50 = quantile_ms(latencies_ms, 0.50);
    const double p99 = quantile_ms(latencies_ms, 0.99);
    table.row({std::to_string(backends), std::to_string(streams),
               std::to_string(queries), AsciiTable::format_double(wall),
               AsciiTable::format_double(qps), AsciiTable::format_double(p50),
               AsciiTable::format_double(p99)});
    csv.row_numeric({static_cast<double>(backends),
                     static_cast<double>(streams),
                     static_cast<double>(queries), wall, qps, p50, p99});
    bench::json_append(json_backends, "%zu", backends);
    bench::json_append(json_qps, "%.1f", qps);
    bench::json_append(json_p99, "%.3f", p99);
  }

  std::printf("%s\n", table.render().c_str());
  bench::write_json_line(
      "fleet_scatter",
      "{\"bench\":\"fleet_scatter\",\"streams\":" + std::to_string(streams) +
          ",\"queries\":" + std::to_string(queries) + ",\"backends\":[" +
          json_backends + "],\"router_qps\":[" + json_qps +
          "],\"fanout_p99_ms\":[" + json_p99 + "]}");
  return 0;
}
