#include "scenario/spec.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace nyqmon::scn {

namespace {

[[noreturn]] void fail_line(std::size_t line, const std::string& what) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Split "key rest-of-line" on the first whitespace run.
std::pair<std::string, std::string> split_key(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  return {line.substr(0, i), trim(line.substr(i))};
}

double parse_double(const std::string& value, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    // Non-finite inputs ("nan", "inf") would alias the kUnset sentinel or
    // poison downstream arithmetic — reject them at the source.
    if (used != value.size() || !std::isfinite(v))
      fail_line(line, "malformed number '" + value + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail_line(line, "malformed number '" + value + "'");
  } catch (const std::out_of_range&) {
    fail_line(line, "number out of range '" + value + "'");
  }
}

std::uint64_t parse_u64(const std::string& value, std::size_t line) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size() || value[0] == '-')
      fail_line(line, "malformed integer '" + value + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail_line(line, "malformed integer '" + value + "'");
  } catch (const std::out_of_range&) {
    fail_line(line, "integer out of range '" + value + "'");
  }
}

tel::MetricKind metric_from_name(const std::string& name, std::size_t line) {
  for (const tel::MetricKind kind : tel::all_metrics())
    if (tel::metric_name(kind) == name) return kind;
  fail_line(line, "unknown metric '" + name + "'");
}

std::string format_knob(double v) {
  std::ostringstream os;
  os.precision(17);  // round-trips any double
  os << v;
  return os.str();
}

}  // namespace

const std::vector<SignalFamily>& all_families() {
  static const std::vector<SignalFamily> kAll = {
      SignalFamily::kDiurnal,         SignalFamily::kSeasonal,
      SignalFamily::kGauge,           SignalFamily::kBursty,
      SignalFamily::kHeavyTailed,     SignalFamily::kRegimeSwitching,
      SignalFamily::kMonotoneCounter,
  };
  return kAll;
}

std::string family_name(SignalFamily family) {
  switch (family) {
    case SignalFamily::kDiurnal: return "diurnal";
    case SignalFamily::kSeasonal: return "seasonal";
    case SignalFamily::kGauge: return "gauge";
    case SignalFamily::kBursty: return "bursty";
    case SignalFamily::kHeavyTailed: return "heavy-tailed";
    case SignalFamily::kRegimeSwitching: return "regime-switching";
    case SignalFamily::kMonotoneCounter: return "monotone-counter";
  }
  return "unknown";
}

SignalFamily family_from_name(const std::string& name) {
  for (const SignalFamily family : all_families())
    if (family_name(family) == name) return family;
  throw std::invalid_argument("unknown signal family '" + name + "'");
}

tel::MetricKind default_metric(SignalFamily family) {
  switch (family) {
    case SignalFamily::kDiurnal: return tel::MetricKind::kTemperature;
    case SignalFamily::kSeasonal: return tel::MetricKind::kMemoryUsage;
    case SignalFamily::kGauge: return tel::MetricKind::kLinkUtil;
    case SignalFamily::kBursty: return tel::MetricKind::kUnicastDrops;
    case SignalFamily::kHeavyTailed: return tel::MetricKind::kFcsErrors;
    case SignalFamily::kRegimeSwitching: return tel::MetricKind::kLossyPaths;
    case SignalFamily::kMonotoneCounter: return tel::MetricKind::kUnicastBytes;
  }
  return tel::MetricKind::kTemperature;
}

tel::MetricKind effective_metric(const StreamGroupSpec& group) {
  return group.metric_set ? group.metric : default_metric(group.family);
}

std::size_t ScenarioSpec::total_streams() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.streams;
  return n;
}

void validate(const ScenarioSpec& spec) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("scenario spec: " + what);
  };
  if (spec.name.empty()) fail("missing scenario name");
  if (spec.run_samples < 2) fail("run_samples must be >= 2");
  if (spec.groups.empty()) fail("a scenario needs at least one group");
  std::set<std::string> names;
  for (const auto& g : spec.groups) {
    const std::string where = "group '" + g.name + "': ";
    if (g.name.empty()) fail("unnamed group");
    if (!names.insert(g.name).second) fail("duplicate " + where.substr(0, where.size() - 2));
    if (g.streams == 0) fail(where + "streams must be >= 1");
    if (g.is_set(g.poll_interval_s) && g.poll_interval_s <= 0.0)
      fail(where + "poll_interval_s must be > 0");
    if (g.is_set(g.bandwidth_lo_hz) != g.is_set(g.bandwidth_hi_hz))
      fail(where + "bandwidth_lo_hz and bandwidth_hi_hz must be set together");
    if (g.is_set(g.bandwidth_lo_hz) &&
        (g.bandwidth_lo_hz <= 0.0 || g.bandwidth_hi_hz < g.bandwidth_lo_hz))
      fail(where + "need 0 < bandwidth_lo_hz <= bandwidth_hi_hz");
    if (g.is_set(g.fluctuation_rms) && g.fluctuation_rms <= 0.0)
      fail(where + "fluctuation_rms must be > 0");
    if (g.is_set(g.quantization_step) && g.quantization_step < 0.0)
      fail(where + "quantization_step must be >= 0");
    if (g.correlation < 0.0 || g.correlation >= 1.0)
      fail(where + "correlation must be in [0, 1)");
    if (g.dropout_per_day < 0.0) fail(where + "dropout_per_day must be >= 0");
    if (g.dropout_duration_s < 0.0)
      fail(where + "dropout_duration_s must be >= 0");
    if (g.dropout_per_day > 0.0 && g.dropout_duration_s <= 0.0)
      fail(where + "dropout_per_day needs dropout_duration_s > 0");
    if (g.clock_skew_max_s < 0.0) fail(where + "clock_skew_max_s must be >= 0");
    if (g.clock_drift_max_ppm < 0.0 || g.clock_drift_max_ppm >= 1e6)
      fail(where + "clock_drift_max_ppm must be in [0, 1e6)");
  }
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  StreamGroupSpec* group = nullptr;
  bool saw_scenario = false;
  bool group_has_family = false;  // `family` is required per group
  std::size_t group_line = 0;
  auto close_group = [&] {
    if (group != nullptr && !group_has_family)
      fail_line(group_line,
                "group '" + group->name + "' is missing required key 'family'");
  };

  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto [key, value] = split_key(line);

    if (key == "scenario") {
      if (saw_scenario) fail_line(lineno, "duplicate 'scenario' line");
      if (value.empty()) fail_line(lineno, "scenario needs a name");
      spec.name = value;
      saw_scenario = true;
      continue;
    }
    if (!saw_scenario)
      fail_line(lineno, "expected 'scenario <name>' before '" + key + "'");

    if (key == "seed") {
      spec.seed = parse_u64(value, lineno);
      continue;
    }
    if (key == "run_samples") {
      spec.run_samples = static_cast<std::size_t>(parse_u64(value, lineno));
      continue;
    }
    if (key == "group") {
      if (value.empty()) fail_line(lineno, "group needs a name");
      close_group();
      spec.groups.emplace_back();
      group = &spec.groups.back();
      group->name = value;
      group_has_family = false;
      group_line = lineno;
      continue;
    }
    if (group == nullptr)
      fail_line(lineno, "'" + key + "' must appear inside a group");

    if (key == "family") {
      try {
        group->family = family_from_name(value);
      } catch (const std::invalid_argument& e) {
        fail_line(lineno, e.what());
      }
      group_has_family = true;
      if (!group->metric_set) group->metric = default_metric(group->family);
    } else if (key == "streams") {
      group->streams = static_cast<std::size_t>(parse_u64(value, lineno));
    } else if (key == "metric") {
      group->metric = metric_from_name(value, lineno);
      group->metric_set = true;
    } else if (key == "poll_interval_s") {
      group->poll_interval_s = parse_double(value, lineno);
    } else if (key == "bandwidth_lo_hz") {
      group->bandwidth_lo_hz = parse_double(value, lineno);
    } else if (key == "bandwidth_hi_hz") {
      group->bandwidth_hi_hz = parse_double(value, lineno);
    } else if (key == "dc_level") {
      group->dc_level = parse_double(value, lineno);
    } else if (key == "fluctuation_rms") {
      group->fluctuation_rms = parse_double(value, lineno);
    } else if (key == "quantization_step") {
      group->quantization_step = parse_double(value, lineno);
    } else if (key == "correlation") {
      group->correlation = parse_double(value, lineno);
    } else if (key == "dropout_per_day") {
      group->dropout_per_day = parse_double(value, lineno);
    } else if (key == "dropout_duration_s") {
      group->dropout_duration_s = parse_double(value, lineno);
    } else if (key == "clock_skew_max_s") {
      group->clock_skew_max_s = parse_double(value, lineno);
    } else if (key == "clock_drift_max_ppm") {
      group->clock_drift_max_ppm = parse_double(value, lineno);
    } else {
      fail_line(lineno, "unknown key '" + key + "'");
    }
  }

  close_group();
  try {
    validate(spec);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(e.what()) +
                                " (after parsing " +
                                std::to_string(lineno) + " line(s))");
  }
  return spec;
}

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "scenario " << spec.name << "\n";
  out << "seed " << spec.seed << "\n";
  if (spec.run_samples != 512)
    out << "run_samples " << spec.run_samples << "\n";
  for (const auto& g : spec.groups) {
    out << "\ngroup " << g.name << "\n";
    out << "  family " << family_name(g.family) << "\n";
    out << "  streams " << g.streams << "\n";
    if (g.metric_set) out << "  metric " << tel::metric_name(g.metric) << "\n";
    auto knob = [&](const char* key, double v) {
      if (g.is_set(v)) out << "  " << key << " " << format_knob(v) << "\n";
    };
    knob("poll_interval_s", g.poll_interval_s);
    knob("bandwidth_lo_hz", g.bandwidth_lo_hz);
    knob("bandwidth_hi_hz", g.bandwidth_hi_hz);
    knob("dc_level", g.dc_level);
    knob("fluctuation_rms", g.fluctuation_rms);
    knob("quantization_step", g.quantization_step);
    if (g.correlation != 0.0)
      out << "  correlation " << format_knob(g.correlation) << "\n";
    if (g.dropout_per_day != 0.0)
      out << "  dropout_per_day " << format_knob(g.dropout_per_day) << "\n";
    if (g.dropout_duration_s != 0.0)
      out << "  dropout_duration_s " << format_knob(g.dropout_duration_s)
          << "\n";
    if (g.clock_skew_max_s != 0.0)
      out << "  clock_skew_max_s " << format_knob(g.clock_skew_max_s) << "\n";
    if (g.clock_drift_max_ppm != 0.0)
      out << "  clock_drift_max_ppm " << format_knob(g.clock_drift_max_ppm)
          << "\n";
  }
  return out.str();
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("cannot read scenario spec file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_scenario(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

namespace {

/// Optional-knob equality: both unset (NaN) compares equal.
bool knob_eq(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

}  // namespace

bool operator==(const StreamGroupSpec& a, const StreamGroupSpec& b) {
  return a.name == b.name && a.family == b.family && a.streams == b.streams &&
         a.metric_set == b.metric_set &&
         (!a.metric_set || a.metric == b.metric) &&
         knob_eq(a.poll_interval_s, b.poll_interval_s) &&
         knob_eq(a.bandwidth_lo_hz, b.bandwidth_lo_hz) &&
         knob_eq(a.bandwidth_hi_hz, b.bandwidth_hi_hz) &&
         knob_eq(a.dc_level, b.dc_level) &&
         knob_eq(a.fluctuation_rms, b.fluctuation_rms) &&
         knob_eq(a.quantization_step, b.quantization_step) &&
         a.correlation == b.correlation &&
         a.dropout_per_day == b.dropout_per_day &&
         a.dropout_duration_s == b.dropout_duration_s &&
         a.clock_skew_max_s == b.clock_skew_max_s &&
         a.clock_drift_max_ppm == b.clock_drift_max_ppm;
}

bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
  return a.name == b.name && a.seed == b.seed &&
         a.run_samples == b.run_samples && a.groups == b.groups;
}

}  // namespace nyqmon::scn
