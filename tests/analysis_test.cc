// Analysis helpers: empirical CDFs (Figure 4 machinery) and the box-plot /
// table renderers (Figures 1 and 5).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cdf.h"
#include "analysis/report.h"
#include "signal/stats.h"

namespace {

using nyqmon::ana::BoxRow;
using nyqmon::ana::Cdf;
using nyqmon::ana::render_box_table;
using nyqmon::ana::render_cdf_rows;

TEST(Cdf, FractionAtBasics) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const Cdf cdf(x);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(100.0), 1.0);
}

TEST(Cdf, UnsortedInputHandled) {
  const std::vector<double> x{5.0, 1.0, 3.0};
  const Cdf cdf(x);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
}

TEST(Cdf, MonotoneNondecreasing) {
  const std::vector<double> x{2.0, 2.0, 7.0, 9.0, 11.0};
  const Cdf cdf(x);
  double prev = 0.0;
  for (double q = 0.0; q <= 15.0; q += 0.5) {
    const double f = cdf.fraction_at(q);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Cdf, DuplicatesStack) {
  const std::vector<double> x{3.0, 3.0, 3.0, 10.0};
  const Cdf cdf(x);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(3.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at(2.999), 0.0);
}

TEST(Cdf, LogRowsSpanDecades) {
  std::vector<double> x;
  for (int i = 1; i <= 1000; ++i) x.push_back(static_cast<double>(i));
  const Cdf cdf(x);
  const auto rows = cdf.log_rows(0, 3);
  ASSERT_EQ(rows.size(), 4u);  // 1, 10, 100, 1000
  EXPECT_DOUBLE_EQ(rows[0].first, 1.0);
  EXPECT_DOUBLE_EQ(rows[3].first, 1000.0);
  EXPECT_NEAR(rows[1].second, 0.01, 0.001);
  EXPECT_DOUBLE_EQ(rows[3].second, 1.0);
}

TEST(Cdf, LogRowsPerDecadeSubdivision) {
  const std::vector<double> x{1.0};
  const Cdf cdf(x);
  const auto rows = cdf.log_rows(0, 2, 2);
  // 10^0, 10^0.5, 10^1, 10^1.5, 10^2.
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_NEAR(rows[1].first, std::sqrt(10.0), 1e-9);
}

TEST(Cdf, EmptySafe) {
  const Cdf cdf(std::vector<double>{});
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at(1.0), 0.0);
  EXPECT_THROW((void)cdf.quantile(0.5), std::invalid_argument);
}

TEST(Report, BoxTableContainsLabelsAndNumbers) {
  BoxRow row;
  row.label = "Temperature";
  row.summary = nyqmon::sig::summarize(std::vector<double>{1.0, 2.0, 3.0});
  const auto text = render_box_table({row});
  EXPECT_NE(text.find("Temperature"), std::string::npos);
  EXPECT_NE(text.find("min"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
}

TEST(Report, CdfRowsRendered) {
  const auto text = render_cdf_rows("Link util", {{1.0, 0.2}, {10.0, 0.9}});
  EXPECT_NE(text.find("Link util"), std::string::npos);
  EXPECT_NE(text.find("0.9"), std::string::npos);
}

}  // namespace
