#include "dsp/detrend.h"

#include "dsp/simd.h"
#include "util/check.h"

namespace nyqmon::dsp {

std::vector<double> remove_mean(std::span<const double> x) {
  NYQMON_CHECK(!x.empty());
  const auto& k = simd::ops();
  const double mean = k.sum(x.data(), x.size()) / static_cast<double>(x.size());
  std::vector<double> out(x.begin(), x.end());
  k.sub_scalar_inplace(out.data(), mean, out.size());
  return out;
}

LineFit fit_line(std::span<const double> x) {
  NYQMON_CHECK(!x.empty());
  const double n = static_cast<double>(x.size());
  // Closed-form least squares with t = 0..n-1. The index sums have exact
  // integer closed forms (exact in double well past any window length);
  // the data sums go through the dispatched reduction kernels.
  const std::size_t sz = x.size();
  const double sum_t = static_cast<double>(sz * (sz - 1) / 2);
  const double sum_tt =
      static_cast<double>(sz * (sz - 1) / 2) * static_cast<double>(2 * sz - 1) /
      3.0;
  const double sum_x = simd::ops().sum(x.data(), sz);
  double sum_tx = 0.0;
  {
    // dot(x, ramp) without materializing the ramp: same striped
    // 4-accumulator definition as the dispatched reductions.
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    const std::size_t n4 = sz - sz % 4;
    for (std::size_t i = 0; i < n4; i += 4) {
      a0 += static_cast<double>(i) * x[i];
      a1 += static_cast<double>(i + 1) * x[i + 1];
      a2 += static_cast<double>(i + 2) * x[i + 2];
      a3 += static_cast<double>(i + 3) * x[i + 3];
    }
    sum_tx = (a0 + a2) + (a1 + a3);
    for (std::size_t i = n4; i < sz; ++i)
      sum_tx += static_cast<double>(i) * x[i];
  }
  const double denom = n * sum_tt - sum_t * sum_t;
  LineFit fit;
  if (denom == 0.0) {
    fit.intercept = sum_x / n;
    fit.slope = 0.0;
  } else {
    fit.slope = (n * sum_tx - sum_t * sum_x) / denom;
    fit.intercept = (sum_x - fit.slope * sum_t) / n;
  }
  return fit;
}

std::vector<double> remove_linear_trend(std::span<const double> x) {
  const LineFit fit = fit_line(x);
  std::vector<double> out;
  out.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out.push_back(x[i] - (fit.intercept + fit.slope * static_cast<double>(i)));
  return out;
}

}  // namespace nyqmon::dsp
