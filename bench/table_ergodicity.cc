// Section 6 "Beyond Nyquist" (future work made concrete): ergodicity and
// canarying. "Extrapolating canary results to other devices relies on
// ergodicity. Does this assumption hold in practice? How long of an
// observation period is required?"
//
// The harness builds two fleets — one genuinely ergodic (same process,
// independent phases) and one heterogeneous (per-device identity) — and
// reports the convergence fraction plus the canary observation horizon.
#include <cstdio>

#include "common.h"
#include "nyquist/ergodicity.h"
#include "signal/generators.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

namespace {

using namespace nyqmon;

std::vector<sig::RegularSeries> make_fleet(bool ergodic, double bandwidth,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<sig::RegularSeries> fleet;
  for (int d = 0; d < 32; ++d) {
    Rng child = rng.fork();
    const double dc = ergodic ? 50.0 : child.uniform(20.0, 80.0);
    const auto proc =
        sig::make_bandlimited_process(bandwidth, 3.0, 24, child, dc);
    fleet.push_back(proc->sample(0.0, 10.0, 8192));
  }
  return fleet;
}

}  // namespace

int main() {
  std::printf("=== Section 6: ergodicity — when can a canary speak for the "
              "fleet? ===\n\n");

  AsciiTable table({"fleet", "bandwidth (Hz)", "converged fraction",
                    "canary horizon (s)"});
  CsvWriter csv(bench::csv_path("table_ergodicity"),
                {"fleet", "bandwidth_hz", "converged_fraction", "horizon_s"});

  struct Case {
    const char* name;
    bool ergodic;
    double bandwidth;
  };
  const Case cases[] = {
      {"ergodic, fast dynamics", true, 0.02},
      {"ergodic, slow dynamics", true, 0.002},
      {"heterogeneous devices", false, 0.02},
  };

  const nyq::ErgodicityAnalyzer analyzer;
  for (const auto& c : cases) {
    const auto fleet = make_fleet(c.ergodic, c.bandwidth, 20211110);
    const auto report = analyzer.analyze(fleet);
    const std::string horizon =
        report.convergence_horizon_s
            ? AsciiTable::format_double(*report.convergence_horizon_s)
            : std::string("never (within window)");
    table.row({c.name, AsciiTable::format_double(c.bandwidth),
               AsciiTable::format_double(report.converged_fraction), horizon});
    csv.row({c.name, CsvWriter::format_double(c.bandwidth),
             CsvWriter::format_double(report.converged_fraction),
             report.convergence_horizon_s
                 ? CsvWriter::format_double(*report.convergence_horizon_s)
                 : "-1"});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: for ergodic fleets a canary observed for the horizon\n"
              "duration is statistically exchangeable with sampling the whole\n"
              "fleet at once — and faster dynamics shorten the horizon. For\n"
              "heterogeneous fleets the assumption simply fails, however long\n"
              "the canary runs: the paper's caution is warranted.\n");
  return 0;
}
