// Time-series containers.
//
// Monitoring traces come in two flavours:
//   * TimeSeries — irregular (timestamp, value) pairs as collectors actually
//     record them (jittered timestamps, gaps, duplicates);
//   * RegularSeries — a uniform grid (t0, dt, values), the form all spectral
//     analysis requires. The pre-cleaner (preclean.h) converts the former to
//     the latter, following the paper's nearest-neighbour re-sampling.
#pragma once

#include <span>
#include <vector>

namespace nyqmon::sig {

/// One measurement: time in seconds (epoch-relative), numeric value.
struct Sample {
  double t = 0.0;
  double v = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Irregularly sampled series. Samples are kept sorted by time.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<Sample> samples);

  void push(double t, double v);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  double start_time() const;
  double end_time() const;
  double duration() const;

  /// Median spacing between consecutive samples; the natural guess for the
  /// intended polling interval of a jittery trace. Requires size() >= 2.
  double median_interval() const;

  /// Mean spacing between consecutive samples. Requires size() >= 2.
  double mean_interval() const;

  std::vector<double> values() const;
  std::vector<double> times() const;

 private:
  void sort();
  std::vector<Sample> samples_;
};

/// Uniformly sampled series: value i was measured at t0 + i*dt.
class RegularSeries {
 public:
  RegularSeries() = default;
  RegularSeries(double t0, double dt, std::vector<double> values);

  double t0() const { return t0_; }
  double dt() const { return dt_; }
  double sample_rate_hz() const { return 1.0 / dt_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double duration() const;
  double time_at(std::size_t i) const { return t0_ + static_cast<double>(i) * dt_; }

  double operator[](std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }
  std::span<const double> span() const { return values_; }

  /// Sub-range [first, first+count) as a RegularSeries on the same grid.
  RegularSeries slice(std::size_t first, std::size_t count) const;

  /// Convert to an irregular series (exact grid timestamps).
  TimeSeries to_timeseries() const;

 private:
  double t0_ = 0.0;
  double dt_ = 1.0;
  std::vector<double> values_;
};

}  // namespace nyqmon::sig
