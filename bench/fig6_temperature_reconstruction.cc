// Figure 6: "Comparing an actual temperature signal in blue (sampled every
// 5 minutes) with the signal in red that was downsampled to the nyquist
// rate and then upsampled back again just for the purpose of comparison.
// The L2 distance between these signals is 0. Here, we used the method in
// Section 4.2 to dynamically adapt the sampling rate."
//
// The harness runs the dynamic method over a synthetic temperature device:
// the windowed tracker infers the Nyquist rate, the trace is downsampled to
// (headroom x) that rate, reconstructed by low-pass interpolation with the
// source quantizer re-applied (Section 4.3), and compared to the original.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "dsp/quantize.h"
#include "nyquist/windowed_tracker.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "telemetry/metric_model.h"
#include "telemetry/poller.h"
#include "util/ascii.h"
#include "util/csv.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Figure 6: temperature round trip (downsample to the "
              "Nyquist rate, upsample back) ===\n\n");

  // A temperature device polled every 5 minutes (the paper's trace), with
  // integer quantization. Seed chosen so the device has a clear but slow
  // daily pattern, like the plotted trace.
  Rng rng(7);
  const auto temp = sig::make_bandlimited_process(
      1.0 / 43200.0, 2.0, 24, rng, /*dc=*/45.0);
  const dsp::Quantizer quant(1.0);
  auto dense = temp->sample(0.0, 300.0, 4096);  // ~14 days of 5-min polls
  for (auto& v : dense.mutable_values()) v = quant.apply(v);

  // Dynamic inference (Section 4.2 offline form): moving-window tracker,
  // 6 h window / 5 min step as in Figure 7.
  nyq::TrackerConfig tcfg;
  const auto tracked = nyq::WindowedNyquistTracker(tcfg).track(dense);
  const auto max_rate = nyq::WindowedNyquistTracker::max_rate(tracked);
  const double nyquist = max_rate.value_or(dense.sample_rate_hz());
  std::printf("inferred Nyquist rate (max over windows): %.3g Hz "
              "(current rate %.3g Hz)\n", nyquist, dense.sample_rate_hz());

  // Downsample to headroom * Nyquist and reconstruct.
  const double target = std::min(dense.sample_rate_hz(), 1.5 * nyquist);
  const auto factor = static_cast<std::size_t>(
      std::max(1.0, std::floor(dense.sample_rate_hz() / target)));
  rec::ReconstructionConfig rcfg;
  rcfg.requantize = quant;
  rcfg.lowpass_cutoff_hz = nyquist;  // the paper's low-pass at f0
  const auto recon = rec::round_trip(dense, factor, rcfg);

  const double l2 = rec::l2_distance(dense.span(), recon.span());
  std::size_t exact = 0;
  for (std::size_t i = 0; i < dense.size(); ++i)
    if (dense[i] == recon[i]) ++exact;

  std::printf("downsample factor: %zux (%zu -> %zu samples)\n", factor,
              dense.size(), dense.size() / factor);
  std::printf("L2 distance: %.6g   exactly-recovered samples: %zu/%zu "
              "(%.2f%%)   RMSE: %.4g deg\n",
              l2, exact, dense.size(),
              100.0 * static_cast<double>(exact) /
                  static_cast<double>(dense.size()),
              rec::rmse(dense.span(), recon.span()));

  std::printf("\noriginal (5-min polls):\n%s",
              ascii_series(dense.values(), 72, 8).c_str());
  std::printf("reconstructed from the downsampled trace:\n%s\n",
              ascii_series(recon.values(), 72, 8).c_str());

  CsvWriter csv(bench::csv_path("fig6_temperature_reconstruction"),
                {"t_s", "original", "reconstructed"});
  for (std::size_t i = 0; i < dense.size(); ++i)
    csv.row_numeric({dense.time_at(i), dense[i], recon[i]});

  std::printf("Paper claim: L2 distance 0. The round trip reproduces the\n"
              "trace exactly wherever the signal sits away from a\n"
              "quantization boundary; when the inferred Nyquist rate is at\n"
              "or above the production rate (factor 1), the trip is the\n"
              "identity and L2 is exactly 0.\n");
  return 0;
}
