#include "telemetry/fleet.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace nyqmon::tel {

std::string stream_id(const FleetPair& pair) {
  return pair.device.name() + "/" + metric_name(pair.metric.kind);
}

PairSchedule schedule_pair(const FleetPair& pair,
                           std::size_t samples_per_window,
                           std::size_t windows) {
  NYQMON_CHECK(samples_per_window >= 2);
  NYQMON_CHECK(windows >= 1);
  NYQMON_CHECK(pair.metric.poll_interval_s > 0.0);
  PairSchedule s;
  s.production_rate_hz = 1.0 / pair.metric.poll_interval_s;
  s.window_duration_s =
      static_cast<double>(samples_per_window) * pair.metric.poll_interval_s;
  s.duration_s = static_cast<double>(windows) * s.window_duration_s;
  return s;
}

std::vector<MetricKind> Fleet::metrics_for(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kServer:
      // Servers export host metrics plus NIC-level error/discard counters.
      return {MetricKind::kCpuUtil5Pct,      MetricKind::kMemoryUsage,
              MetricKind::kTemperature,      MetricKind::kPeakEgressBw,
              MetricKind::kPeakIngressBw,    MetricKind::kFcsErrors,
              MetricKind::kInboundDiscards,  MetricKind::kOutboundDiscards};
    case DeviceKind::kTorSwitch:
    case DeviceKind::kAggSwitch:
    case DeviceKind::kCoreSwitch:
      return {MetricKind::kOutboundDiscards, MetricKind::kUnicastDrops,
              MetricKind::kMulticastDrops,   MetricKind::kMulticastBytes,
              MetricKind::kUnicastBytes,     MetricKind::kInboundDiscards,
              MetricKind::kMemoryUsage,      MetricKind::kLinkUtil,
              MetricKind::kLossyPaths,       MetricKind::kTemperature,
              MetricKind::kFcsErrors,        MetricKind::kCpuUtil5Pct};
  }
  return {};
}

Fleet::Fleet(const FleetConfig& config) : topology_(config.topology) {
  NYQMON_CHECK(config.target_pairs >= 1);
  Rng rng(config.seed);

  // Enumerate every exportable (device, metric) combination, then draw the
  // study population as a uniform random subset — so any reasonably sized
  // fleet covers all 14 metrics and every tier.
  const auto& devices = topology_.devices();
  NYQMON_CHECK(!devices.empty());

  std::vector<std::pair<std::size_t, MetricKind>> combos;
  for (std::size_t d = 0; d < devices.size(); ++d) {
    for (MetricKind kind : metrics_for(devices[d].kind)) {
      combos.emplace_back(d, kind);
    }
  }
  NYQMON_CHECK_MSG(combos.size() >= config.target_pairs,
                   "topology too small for the requested pair count");
  std::shuffle(combos.begin(), combos.end(), rng.engine());

  pairs_.reserve(config.target_pairs);
  for (std::size_t i = 0; i < config.target_pairs; ++i) {
    const auto& [d, kind] = combos[i];
    Rng child = rng.fork();
    FleetPair pair;
    pair.device = devices[d];
    pair.metric = make_metric_instance(
        kind, metric_spec(kind).trace_duration_s, child);
    pairs_.push_back(std::move(pair));
  }
}

Fleet::Fleet(Topology topology, std::vector<FleetPair> pairs)
    : topology_(std::move(topology)), pairs_(std::move(pairs)) {
  NYQMON_CHECK_MSG(!pairs_.empty(), "a fleet needs at least one pair");
  std::set<std::string> ids;
  for (const auto& pair : pairs_) {
    NYQMON_CHECK_MSG(pair.metric.signal != nullptr,
                     "every fleet pair needs a ground-truth signal");
    NYQMON_CHECK_MSG(pair.metric.poll_interval_s > 0.0,
                     "every fleet pair needs a polling interval");
    NYQMON_CHECK_MSG(ids.insert(stream_id(pair)).second,
                     "duplicate stream id in externally built fleet");
  }
}

std::vector<const FleetPair*> Fleet::pairs_of(MetricKind kind) const {
  std::vector<const FleetPair*> out;
  for (const auto& p : pairs_)
    if (p.metric.kind == kind) out.push_back(&p);
  return out;
}

}  // namespace nyqmon::tel
