#include "monitor/store.h"

#include <algorithm>
#include <cmath>

#include "dsp/resample.h"
#include "obs/metrics.h"
#include "storage/codec.h"
#include "util/check.h"

namespace nyqmon::mon {

RetentionStore::RetentionStore(StoreConfig config) : config_(config) {
  NYQMON_CHECK(config_.chunk_samples >= 32);
  NYQMON_CHECK(config_.headroom >= 1.0);
}

void RetentionStore::create_stream(const std::string& name,
                                   double collection_rate_hz, double t0) {
  NYQMON_CHECK(collection_rate_hz > 0.0);
  NYQMON_CHECK_MSG(streams_.find(name) == streams_.end(),
                   "stream already exists: " + name);
  if (sink_ != nullptr) sink_->on_create_stream(name, collection_rate_hz, t0);
  Stream s;
  s.collection_rate_hz = collection_rate_hz;
  s.t0 = t0;
  s.hot_t0 = t0;
  streams_.emplace(name, std::move(s));
}

void RetentionStore::append(const std::string& name, double value) {
  append_series(name, std::span<const double>(&value, 1));
}

void RetentionStore::append_series(const std::string& name,
                                   std::span<const double> values) {
  const auto it = streams_.find(name);
  NYQMON_CHECK_MSG(it != streams_.end(), "unknown stream: " + name);
  Stream& s = it->second;
  if (values.empty()) return;
  // Write-ahead: the sink logs the batch before any in-memory mutation, so
  // a crash mid-batch replays to a state at or before this append.
  if (sink_ != nullptr) sink_->on_append(name, values);
  ++s.generation;
  for (const double value : values) {
    s.hot.push_back(value);
    ++s.ingested;
    ++s.stats.ingested_samples;
    s.stats.bytes_raw += sizeof(double);
    s.stats.bytes_stored += sizeof(double);  // tail held raw until sealed
    if (s.hot.size() >= config_.chunk_samples) seal_chunk(s);
  }
}

void RetentionStore::seal_chunk(Stream& s) {
  NYQMON_ENSURE(!s.hot.empty());
  const double raw_dt = 1.0 / s.collection_rate_hz;

  SealedChunk chunk;
  chunk.t0 = s.hot_t0;
  chunk.dt = raw_dt;
  chunk.values = s.hot;

  // A-posteriori re-sampling: estimate the chunk's Nyquist rate and keep
  // only headroom * that rate when it undercuts the collection rate.
  const nyq::NyquistEstimator estimator(config_.estimator);
  const auto est = estimator.estimate(s.hot, s.collection_rate_hz);
  if (est.ok()) {
    const double keep_rate =
        std::min(s.collection_rate_hz, config_.headroom * est.nyquist_rate_hz);
    const auto n_keep = static_cast<std::size_t>(std::max(
        2.0, std::ceil(static_cast<double>(s.hot.size()) * keep_rate /
                       s.collection_rate_hz)));
    if (n_keep < s.hot.size()) {
      chunk.values = dsp::resample_fourier(s.hot, n_keep);
      chunk.dt = raw_dt * static_cast<double>(s.hot.size()) /
                 static_cast<double>(n_keep);
      ++s.stats.chunks_reduced;
    }
  }

  // Byte accounting: the sealed samples leave the raw tail tier and land on
  // disk (at flush) codec-encoded plus fixed per-chunk framing.
  s.stats.bytes_stored -= sizeof(double) * s.hot.size();
  s.stats.bytes_stored +=
      sto::xor_encoded_size(chunk.values) + sto::kChunkDiskOverheadBytes;

  s.stats.sealed_ingested_samples += s.hot.size();
  s.stats.stored_samples += chunk.values.size();
  ++s.stats.chunks;
  s.hot_t0 += raw_dt * static_cast<double>(s.hot.size());
  s.hot.clear();
  s.chunks.push_back(std::make_shared<const SealedChunk>(std::move(chunk)));

  // Retention cap: evict the oldest sealed chunks from memory, parking
  // them in the epoch registry so a live snapshot acquired before this
  // seal can still read through its captured references. The eviction is
  // memory-side only — the chunk stays durable in flushed segments and
  // stats keep their cumulative view.
  if (config_.max_chunks_per_stream > 0) {
    while (s.chunks.size() > config_.max_chunks_per_stream) {
      epochs_->retire(std::move(s.chunks.front()));
      s.chunks.erase(s.chunks.begin());
      ++s.chunks_trimmed;
      NYQMON_OBS_COUNT("nyqmon_store_chunks_trimmed_total", 1);
    }
  }
}

const RetentionStore::Stream& RetentionStore::stream(
    const std::string& name) const {
  const auto it = streams_.find(name);
  NYQMON_CHECK_MSG(it != streams_.end(), "unknown stream: " + name);
  return it->second;
}

sig::RegularSeries RetentionStore::query(const std::string& name,
                                         double t_begin, double t_end) const {
  // The reconstruction algorithm lives in monitor/snapshot.cc and is
  // shared with ReadSnapshot::query, so snapshot-isolated reads are
  // bit-identical to this locked path by construction.
  const Stream& s = stream(name);
  return reconstruct_range(s.collection_rate_hz, s.chunks, s.hot, s.hot_t0,
                           t_begin, t_end);
}

StreamStats RetentionStore::stats(const std::string& name) const {
  return stream(name).stats;
}

namespace {

StreamMeta make_meta(double rate_hz, double t0, std::size_t ingested,
                     std::uint64_t generation) {
  StreamMeta m;
  m.collection_rate_hz = rate_hz;
  m.t0 = t0;
  m.t_end = t0 + static_cast<double>(ingested) / rate_hz;
  m.generation = generation;
  m.ingested_samples = ingested;
  return m;
}

}  // namespace

StreamMeta RetentionStore::meta(const std::string& name) const {
  const Stream& s = stream(name);
  return make_meta(s.collection_rate_hz, s.t0, s.ingested, s.generation);
}

std::optional<StreamMeta> RetentionStore::find_meta(
    const std::string& name) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) return std::nullopt;
  const Stream& s = it->second;
  return make_meta(s.collection_rate_hz, s.t0, s.ingested, s.generation);
}

std::vector<std::pair<std::string, StreamMeta>> RetentionStore::list_meta()
    const {
  std::vector<std::pair<std::string, StreamMeta>> out;
  out.reserve(streams_.size());
  for (const auto& [name, s] : streams_)
    out.emplace_back(
        name, make_meta(s.collection_rate_hz, s.t0, s.ingested, s.generation));
  return out;
}

StoreRollup& StoreRollup::operator+=(const StoreRollup& other) {
  streams += other.streams;
  ingested_samples += other.ingested_samples;
  sealed_ingested_samples += other.sealed_ingested_samples;
  stored_samples += other.stored_samples;
  chunks += other.chunks;
  chunks_reduced += other.chunks_reduced;
  bytes_raw += other.bytes_raw;
  bytes_stored += other.bytes_stored;
  return *this;
}

namespace {

/// Shared body of RetentionStore::snapshot_stream and
/// ReadSnapshot::export_stream: skip counts are absolute sealed-chunk
/// indexes, so an eviction-trimmed prefix only needs the skip to cover it
/// (evicted chunks are already durable in earlier segments by the time
/// the cap may evict them).
StreamSnapshot export_snapshot(const std::string& name, double rate_hz,
                               double t0, double hot_t0,
                               std::uint64_t generation,
                               std::size_t chunks_trimmed,
                               std::span<const SealedChunkRef> chunks,
                               std::span<const double> hot,
                               const StreamStats& stats,
                               std::size_t skip_chunks) {
  NYQMON_CHECK_MSG(skip_chunks >= chunks_trimmed,
                   "snapshot skip below evicted prefix: " + name);
  NYQMON_CHECK(skip_chunks <= chunks_trimmed + chunks.size());
  StreamSnapshot snap;
  snap.name = name;
  snap.collection_rate_hz = rate_hz;
  snap.t0 = t0;
  snap.hot_t0 = hot_t0;
  snap.generation = generation;
  snap.chunks_before = skip_chunks;
  snap.chunks.reserve(chunks_trimmed + chunks.size() - skip_chunks);
  for (std::size_t i = skip_chunks - chunks_trimmed; i < chunks.size(); ++i)
    snap.chunks.push_back(
        {chunks[i]->t0, chunks[i]->dt, chunks[i]->values});
  snap.hot.assign(hot.begin(), hot.end());
  snap.stats = stats;
  return snap;
}

}  // namespace

StreamSnapshot RetentionStore::snapshot_stream(const std::string& name,
                                               std::size_t skip_chunks) const {
  const Stream& s = stream(name);
  return export_snapshot(name, s.collection_rate_hz, s.t0, s.hot_t0,
                         s.generation, s.chunks_trimmed, s.chunks, s.hot,
                         s.stats, skip_chunks);
}

void RetentionStore::restore_stream(StreamSnapshot snapshot) {
  NYQMON_CHECK(snapshot.collection_rate_hz > 0.0);
  NYQMON_CHECK_MSG(snapshot.chunks_before == 0,
                   "restore needs a full snapshot: " + snapshot.name);
  NYQMON_CHECK_MSG(streams_.find(snapshot.name) == streams_.end(),
                   "stream already exists: " + snapshot.name);
  Stream s;
  s.collection_rate_hz = snapshot.collection_rate_hz;
  s.t0 = snapshot.t0;
  s.hot_t0 = snapshot.hot_t0;
  s.ingested = snapshot.stats.ingested_samples;
  s.hot = std::move(snapshot.hot);
  s.chunks.reserve(snapshot.chunks.size());
  for (auto& c : snapshot.chunks)
    s.chunks.push_back(std::make_shared<const SealedChunk>(
        SealedChunk{c.t0, c.dt, std::move(c.values)}));
  s.stats = snapshot.stats;
  s.generation = snapshot.generation;
  streams_.emplace(std::move(snapshot.name), std::move(s));
}

std::vector<std::string> RetentionStore::stream_names() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, s] : streams_) names.push_back(name);
  return names;
}

StoreRollup RetentionStore::rollup() const {
  StoreRollup total;
  total.streams = streams_.size();
  for (const auto& [name, s] : streams_) {
    total.ingested_samples += s.stats.ingested_samples;
    total.sealed_ingested_samples += s.stats.sealed_ingested_samples;
    total.stored_samples += s.stats.stored_samples;
    total.chunks += s.stats.chunks;
    total.chunks_reduced += s.stats.chunks_reduced;
    total.bytes_raw += s.stats.bytes_raw;
    total.bytes_stored += s.stats.bytes_stored;
  }
  return total;
}

Cost RetentionStore::storage_cost() const {
  std::size_t samples = 0;
  for (const auto& [name, s] : streams_) {
    samples += s.hot.size();
    for (const auto& chunk : s.chunks) samples += chunk->values.size();
  }
  return cost_of_samples(samples, config_.cost);
}

StreamView RetentionStore::make_view(const std::string& name,
                                     const Stream& s) const {
  StreamView v;
  v.name = name;
  v.collection_rate_hz = s.collection_rate_hz;
  v.t0 = s.t0;
  v.hot_t0 = s.hot_t0;
  v.generation = s.generation;
  v.ingested = s.ingested;
  v.chunks_trimmed = s.chunks_trimmed;
  v.chunks = s.chunks;  // shared refs — the cheap part of the capture
  v.hot = s.hot;        // copied — the tail keeps mutating under ingest
  v.stats = s.stats;
  return v;
}

bool RetentionStore::capture_stream_view(const std::string& name,
                                         StreamView& out) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) return false;
  out = make_view(it->first, it->second);
  return true;
}

void RetentionStore::capture_all_views(std::vector<StreamView>& out) const {
  out.reserve(out.size() + streams_.size());
  for (const auto& [name, s] : streams_) out.push_back(make_view(name, s));
}

ReadSnapshot RetentionStore::acquire_snapshot() const {
  std::vector<StreamView> views;
  capture_all_views(views);
  return ReadSnapshot(epochs_, epochs_->pin(), std::move(views));
}

ReadSnapshot RetentionStore::acquire_snapshot(
    std::span<const std::string> names) const {
  std::vector<StreamView> views;
  views.reserve(names.size());
  for (const auto& name : names) {
    StreamView v;
    if (capture_stream_view(name, v)) views.push_back(std::move(v));
  }
  std::sort(views.begin(), views.end(),
            [](const StreamView& a, const StreamView& b) {
              return a.name < b.name;
            });
  return ReadSnapshot(epochs_, epochs_->pin(), std::move(views));
}

// ---- ReadSnapshot ----

const StreamView* ReadSnapshot::find(const std::string& name) const {
  const auto it = std::lower_bound(
      views_.begin(), views_.end(), name,
      [](const StreamView& v, const std::string& n) { return v.name < n; });
  if (it == views_.end() || it->name != name) return nullptr;
  return &*it;
}

std::vector<std::string> ReadSnapshot::stream_names() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& v : views_) names.push_back(v.name);
  return names;
}

std::optional<StreamMeta> ReadSnapshot::find_meta(
    const std::string& name) const {
  const StreamView* v = find(name);
  if (v == nullptr) return std::nullopt;
  return make_meta(v->collection_rate_hz, v->t0, v->ingested, v->generation);
}

sig::RegularSeries ReadSnapshot::query(const std::string& name,
                                       double t_begin, double t_end) const {
  const StreamView* v = find(name);
  NYQMON_CHECK_MSG(v != nullptr, "unknown stream: " + name);
  return reconstruct_range(v->collection_rate_hz, v->chunks, v->hot,
                           v->hot_t0, t_begin, t_end);
}

StreamSnapshot ReadSnapshot::export_stream(const std::string& name,
                                           std::size_t skip_chunks) const {
  const StreamView* v = find(name);
  NYQMON_CHECK_MSG(v != nullptr, "unknown stream: " + name);
  return export_snapshot(v->name, v->collection_rate_hz, v->t0, v->hot_t0,
                         v->generation, v->chunks_trimmed, v->chunks, v->hot,
                         v->stats, skip_chunks);
}

void ReadSnapshot::release() {
  if (registry_) {
    registry_->release(epoch_);
    registry_.reset();
  }
  views_.clear();
  views_.shrink_to_fit();
}

}  // namespace nyqmon::mon
