// RetentionStore (the paper's a-posteriori policy: collect fast, store at
// the Nyquist rate) and RatePriorStore (warm-starting from fleet history).
#include <gtest/gtest.h>

#include <cmath>

#include "monitor/rate_prior.h"
#include "monitor/store.h"
#include "reconstruct/error.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using namespace nyqmon;
using mon::RatePriorStore;
using mon::RetentionStore;
using mon::StoreConfig;

TEST(Store, CreateAppendQuery) {
  RetentionStore store;
  store.create_stream("tor1/temp", 1.0 / 30.0);
  for (int i = 0; i < 100; ++i) store.append("tor1/temp", 42.0);
  const auto series = store.query("tor1/temp", 0.0, 100.0 * 30.0);
  EXPECT_EQ(series.size(), 100u);
  for (double v : series.values()) EXPECT_NEAR(v, 42.0, 1e-9);
}

TEST(Store, DuplicateStreamThrows) {
  RetentionStore store;
  store.create_stream("s", 1.0);
  EXPECT_THROW(store.create_stream("s", 1.0), std::invalid_argument);
}

TEST(Store, EmptyStreamReductionIsOne) {
  // reduction() must guard both counters: streams reached through the
  // store always have ingested >= stored, but StreamStats is a public
  // value type, and a hand-built {ingested: 0, stored: n} used to report a
  // nonsense 0.0 "reduction" instead of the neutral 1.0.
  mon::StreamStats empty;
  EXPECT_DOUBLE_EQ(empty.reduction(), 1.0);

  mon::StreamStats ghost;
  ghost.stored_samples = 5;  // nothing ingested: reduction is undefined
  EXPECT_DOUBLE_EQ(ghost.reduction(), 1.0);

  RetentionStore store;
  store.create_stream("idle", 1.0);
  EXPECT_DOUBLE_EQ(store.stats("idle").reduction(), 1.0);

  // Ingested-but-nothing-sealed must not report ingested/0 either.
  store.append("idle", 1.0);
  EXPECT_EQ(store.stats("idle").ingested_samples, 1u);
  EXPECT_EQ(store.stats("idle").stored_samples, 0u);
  EXPECT_DOUBLE_EQ(store.stats("idle").reduction(), 1.0);

  mon::StoreRollup rollup;
  EXPECT_DOUBLE_EQ(rollup.reduction(), 1.0);
}

TEST(Store, UnknownStreamThrows) {
  RetentionStore store;
  EXPECT_THROW(store.append("nope", 1.0), std::invalid_argument);
  EXPECT_THROW((void)store.query("nope", 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)store.stats("nope"), std::invalid_argument);
}

TEST(Store, SealedChunksShrinkOversampledStreams) {
  // A slow tone collected at 1 Hz (heavily oversampled): sealed chunks must
  // be stored with far fewer samples than were ingested.
  const sig::SumOfSines tone({{0.002, 5.0, 0.0}}, /*dc=*/50.0);
  StoreConfig cfg;
  cfg.chunk_samples = 1024;
  RetentionStore store(cfg);
  store.create_stream("link", 1.0);
  for (int i = 0; i < 4096; ++i) store.append("link", tone.value(i));

  const auto stats = store.stats("link");
  EXPECT_EQ(stats.ingested_samples, 4096u);
  EXPECT_EQ(stats.chunks, 4u);
  EXPECT_EQ(stats.chunks_reduced, 4u);
  EXPECT_GT(stats.reduction(), 10.0);
}

TEST(Store, QueryReconstructsSealedData) {
  const sig::SumOfSines tone({{0.002, 5.0, 0.0}}, 50.0);
  StoreConfig cfg;
  cfg.chunk_samples = 1024;
  RetentionStore store(cfg);
  store.create_stream("link", 1.0);
  for (int i = 0; i < 2048; ++i) store.append("link", tone.value(i));

  // Query the first sealed chunk's interior and compare with ground truth.
  const auto series = store.query("link", 100.0, 900.0);
  std::vector<double> truth;
  for (std::size_t i = 0; i < series.size(); ++i)
    truth.push_back(tone.value(series.time_at(i)));
  EXPECT_LT(rec::nrmse(truth, series.values()), 0.05);
}

TEST(Store, HotTailServedRaw) {
  RetentionStore store;  // default chunk 512
  store.create_stream("s", 1.0);
  for (int i = 0; i < 100; ++i) store.append("s", double(i));  // unsealed
  const auto series = store.query("s", 0.0, 100.0);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_DOUBLE_EQ(series[i], double(i));
}

TEST(Store, BroadbandChunksKeptAtFullRate) {
  // White-ish readings (a stressed counter): the estimator reports aliased
  // or near-rate, so the store must keep the raw resolution.
  Rng rng(55);
  StoreConfig cfg;
  cfg.chunk_samples = 512;
  RetentionStore store(cfg);
  store.create_stream("drops", 1.0);
  for (int i = 0; i < 1024; ++i) store.append("drops", rng.normal(0.0, 1.0));
  const auto stats = store.stats("drops");
  EXPECT_EQ(stats.chunks, 2u);
  EXPECT_LT(stats.reduction(), 1.5);
}

TEST(Store, StorageCostReflectsReduction) {
  const sig::SumOfSines tone({{0.002, 5.0, 0.0}}, 50.0);
  StoreConfig cfg;
  cfg.chunk_samples = 512;

  RetentionStore reduced(cfg);
  reduced.create_stream("s", 1.0);
  for (int i = 0; i < 2048; ++i) reduced.append("s", tone.value(i));

  // The same data in a store with (effectively) no chunk sealing yet.
  StoreConfig raw_cfg;
  raw_cfg.chunk_samples = 1 << 20;  // effectively never seals
  RetentionStore raw(raw_cfg);
  raw.create_stream("s", 1.0);
  for (int i = 0; i < 2048; ++i) raw.append("s", tone.value(i));

  EXPECT_LT(reduced.storage_cost().storage_bytes,
            raw.storage_cost().storage_bytes / 2.0);
}

TEST(RatePriors, LearnFromAuditAndWarmStart) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 150;
  fleet_cfg.seed = 11;
  fleet_cfg.topology.pods = 2;
  const tel::Fleet fleet(fleet_cfg);
  const auto audit = mon::run_audit(fleet, mon::AuditConfig{});

  RatePriorStore priors;
  priors.learn_from(audit);
  EXPECT_GT(priors.metrics_known(), 8u);

  const auto temp = priors.prior(tel::MetricKind::kTemperature);
  ASSERT_TRUE(temp.has_value());
  EXPECT_GT(temp->observations, 0u);
  EXPECT_LE(temp->median_rate_hz, temp->p90_rate_hz);
  EXPECT_LE(temp->p90_rate_hz, temp->max_rate_hz);

  nyq::AdaptiveConfig base;
  base.initial_rate_hz = 1.0 / 300.0;
  base.min_rate_hz = 1e-6;
  base.max_rate_hz = 1.0;
  const auto warmed = priors.warm_start(tel::MetricKind::kTemperature, base);
  EXPECT_NEAR(warmed.initial_rate_hz,
              std::clamp(base.headroom * temp->p90_rate_hz, base.min_rate_hz,
                         base.max_rate_hz),
              1e-12);
}

TEST(RatePriors, NoPriorLeavesConfigUntouched) {
  RatePriorStore priors;
  EXPECT_FALSE(priors.prior(tel::MetricKind::kLinkUtil).has_value());
  nyq::AdaptiveConfig base;
  base.initial_rate_hz = 0.123;
  const auto cfg = priors.warm_start(tel::MetricKind::kLinkUtil, base);
  EXPECT_DOUBLE_EQ(cfg.initial_rate_hz, 0.123);
}

TEST(RatePriors, DirectObservations) {
  RatePriorStore priors;
  priors.observe(tel::MetricKind::kFcsErrors, 0.01);
  priors.observe(tel::MetricKind::kFcsErrors, 0.03);
  priors.observe(tel::MetricKind::kFcsErrors, 0.02);
  const auto p = priors.prior(tel::MetricKind::kFcsErrors);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->observations, 3u);
  EXPECT_DOUBLE_EQ(p->median_rate_hz, 0.02);
  EXPECT_DOUBLE_EQ(p->max_rate_hz, 0.03);
  EXPECT_THROW(priors.observe(tel::MetricKind::kFcsErrors, 0.0),
               std::invalid_argument);
}

}  // namespace
