// RetentionStore (the paper's a-posteriori policy: collect fast, store at
// the Nyquist rate) and RatePriorStore (warm-starting from fleet history).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "monitor/rate_prior.h"
#include "monitor/store.h"
#include "monitor/striped_store.h"
#include "reconstruct/error.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using namespace nyqmon;
using mon::RatePriorStore;
using mon::RetentionStore;
using mon::StoreConfig;

TEST(Store, CreateAppendQuery) {
  RetentionStore store;
  store.create_stream("tor1/temp", 1.0 / 30.0);
  for (int i = 0; i < 100; ++i) store.append("tor1/temp", 42.0);
  const auto series = store.query("tor1/temp", 0.0, 100.0 * 30.0);
  EXPECT_EQ(series.size(), 100u);
  for (double v : series.values()) EXPECT_NEAR(v, 42.0, 1e-9);
}

TEST(Store, DuplicateStreamThrows) {
  RetentionStore store;
  store.create_stream("s", 1.0);
  EXPECT_THROW(store.create_stream("s", 1.0), std::invalid_argument);
}

TEST(Store, EmptyStreamReductionIsOne) {
  // reduction() must guard both counters: streams reached through the
  // store always have ingested >= stored, but StreamStats is a public
  // value type, and a hand-built {ingested: 0, stored: n} used to report a
  // nonsense 0.0 "reduction" instead of the neutral 1.0.
  mon::StreamStats empty;
  EXPECT_DOUBLE_EQ(empty.reduction(), 1.0);

  mon::StreamStats ghost;
  ghost.stored_samples = 5;  // nothing ingested: reduction is undefined
  EXPECT_DOUBLE_EQ(ghost.reduction(), 1.0);

  RetentionStore store;
  store.create_stream("idle", 1.0);
  EXPECT_DOUBLE_EQ(store.stats("idle").reduction(), 1.0);

  // Ingested-but-nothing-sealed must not report ingested/0 either.
  store.append("idle", 1.0);
  EXPECT_EQ(store.stats("idle").ingested_samples, 1u);
  EXPECT_EQ(store.stats("idle").stored_samples, 0u);
  EXPECT_DOUBLE_EQ(store.stats("idle").reduction(), 1.0);

  mon::StoreRollup rollup;
  EXPECT_DOUBLE_EQ(rollup.reduction(), 1.0);
}

TEST(Store, UnknownStreamThrows) {
  RetentionStore store;
  EXPECT_THROW(store.append("nope", 1.0), std::invalid_argument);
  EXPECT_THROW((void)store.query("nope", 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)store.stats("nope"), std::invalid_argument);
}

TEST(Store, SealedChunksShrinkOversampledStreams) {
  // A slow tone collected at 1 Hz (heavily oversampled): sealed chunks must
  // be stored with far fewer samples than were ingested.
  const sig::SumOfSines tone({{0.002, 5.0, 0.0}}, /*dc=*/50.0);
  StoreConfig cfg;
  cfg.chunk_samples = 1024;
  RetentionStore store(cfg);
  store.create_stream("link", 1.0);
  for (int i = 0; i < 4096; ++i) store.append("link", tone.value(i));

  const auto stats = store.stats("link");
  EXPECT_EQ(stats.ingested_samples, 4096u);
  EXPECT_EQ(stats.chunks, 4u);
  EXPECT_EQ(stats.chunks_reduced, 4u);
  EXPECT_GT(stats.reduction(), 10.0);
}

TEST(Store, QueryReconstructsSealedData) {
  const sig::SumOfSines tone({{0.002, 5.0, 0.0}}, 50.0);
  StoreConfig cfg;
  cfg.chunk_samples = 1024;
  RetentionStore store(cfg);
  store.create_stream("link", 1.0);
  for (int i = 0; i < 2048; ++i) store.append("link", tone.value(i));

  // Query the first sealed chunk's interior and compare with ground truth.
  const auto series = store.query("link", 100.0, 900.0);
  std::vector<double> truth;
  for (std::size_t i = 0; i < series.size(); ++i)
    truth.push_back(tone.value(series.time_at(i)));
  EXPECT_LT(rec::nrmse(truth, series.values()), 0.05);
}

TEST(Store, HotTailServedRaw) {
  RetentionStore store;  // default chunk 512
  store.create_stream("s", 1.0);
  for (int i = 0; i < 100; ++i) store.append("s", double(i));  // unsealed
  const auto series = store.query("s", 0.0, 100.0);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_DOUBLE_EQ(series[i], double(i));
}

TEST(Store, BroadbandChunksKeptAtFullRate) {
  // White-ish readings (a stressed counter): the estimator reports aliased
  // or near-rate, so the store must keep the raw resolution.
  Rng rng(55);
  StoreConfig cfg;
  cfg.chunk_samples = 512;
  RetentionStore store(cfg);
  store.create_stream("drops", 1.0);
  for (int i = 0; i < 1024; ++i) store.append("drops", rng.normal(0.0, 1.0));
  const auto stats = store.stats("drops");
  EXPECT_EQ(stats.chunks, 2u);
  EXPECT_LT(stats.reduction(), 1.5);
}

TEST(Store, StorageCostReflectsReduction) {
  const sig::SumOfSines tone({{0.002, 5.0, 0.0}}, 50.0);
  StoreConfig cfg;
  cfg.chunk_samples = 512;

  RetentionStore reduced(cfg);
  reduced.create_stream("s", 1.0);
  for (int i = 0; i < 2048; ++i) reduced.append("s", tone.value(i));

  // The same data in a store with (effectively) no chunk sealing yet.
  StoreConfig raw_cfg;
  raw_cfg.chunk_samples = 1 << 20;  // effectively never seals
  RetentionStore raw(raw_cfg);
  raw.create_stream("s", 1.0);
  for (int i = 0; i < 2048; ++i) raw.append("s", tone.value(i));

  EXPECT_LT(reduced.storage_cost().storage_bytes,
            raw.storage_cost().storage_bytes / 2.0);
}

TEST(Store, EmptyAndInvertedRangesClampToEmptySeries) {
  // Half-open [t_begin, t_end): inverted or empty ranges are defined to
  // return an empty series on the collection grid, not to throw or to fall
  // through reconstruction.
  RetentionStore store;
  store.create_stream("s", 2.0);
  for (int i = 0; i < 50; ++i) store.append("s", double(i));

  const std::vector<std::pair<double, double>> ranges = {
      {5.0, 5.0}, {9.0, 3.0}, {0.0, -1.0}};
  for (const auto& [b, e] : ranges) {
    const auto series = store.query("s", b, e);
    EXPECT_EQ(series.size(), 0u) << b << ".." << e;
    EXPECT_DOUBLE_EQ(series.t0(), b);
    EXPECT_DOUBLE_EQ(series.dt(), 0.5);  // collection grid survives
  }
  // A span shorter than half a grid step rounds to zero points.
  EXPECT_EQ(store.query("s", 1.0, 1.2).size(), 0u);
}

TEST(Store, QueryEntirelyInsideHotTail) {
  // Two sealed chunks plus an unsealed tail; a query window living wholly
  // in the tail must serve the raw (unsealed) values exactly.
  StoreConfig cfg;
  cfg.chunk_samples = 64;
  RetentionStore store(cfg);
  store.create_stream("s", 1.0);
  for (int i = 0; i < 150; ++i) store.append("s", double(i));  // 128 sealed

  const auto series = store.query("s", 130.0, 148.0);
  ASSERT_EQ(series.size(), 18u);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_DOUBLE_EQ(series[i], 130.0 + double(i));
}

TEST(Store, QuerySpansSealedHotBoundary) {
  // A constant stream sealed at chunk 64: values must come back constant
  // across the sealed-chunk / hot-tail seam, with no discontinuity.
  StoreConfig cfg;
  cfg.chunk_samples = 64;
  RetentionStore store(cfg);
  store.create_stream("s", 1.0);
  for (int i = 0; i < 100; ++i) store.append("s", 5.0);

  const auto series = store.query("s", 50.0, 90.0);  // 64 is the seam
  ASSERT_EQ(series.size(), 40u);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_NEAR(series[i], 5.0, 1e-6) << i;
}

TEST(Store, QueryPastEndOfDataHoldsLastValue) {
  RetentionStore store;
  store.create_stream("s", 1.0);
  for (int i = 0; i < 10; ++i) store.append("s", double(i));

  const auto series = store.query("s", 5.0, 20.0);  // data ends at t=10
  ASSERT_EQ(series.size(), 15u);
  EXPECT_DOUBLE_EQ(series[0], 5.0);
  for (std::size_t i = 5; i < series.size(); ++i)
    EXPECT_DOUBLE_EQ(series[i], 9.0) << i;  // hold the nearest stored value

  // Entirely past the end: still defined, still held.
  const auto beyond = store.query("s", 100.0, 105.0);
  ASSERT_EQ(beyond.size(), 5u);
  for (const double v : beyond.values()) EXPECT_DOUBLE_EQ(v, 9.0);
}

TEST(Store, QueryBeforeDataHoldsFirstValue) {
  RetentionStore store;
  store.create_stream("s", 1.0, /*t0=*/100.0);
  for (int i = 0; i < 10; ++i) store.append("s", double(i));  // [100, 110)

  // Entirely before the data: hold the first stored value.
  const auto before = store.query("s", 80.0, 85.0);
  ASSERT_EQ(before.size(), 5u);
  for (const double v : before.values()) EXPECT_DOUBLE_EQ(v, 0.0);

  // t_end barely overlaps the data start but every actual grid point lies
  // before it: still the first value (the hold is judged by the last grid
  // point, not t_end).
  const auto brushing = store.query("s", 95.0, 100.4);
  ASSERT_EQ(brushing.size(), 5u);  // t = 95..99
  for (const double v : brushing.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Store, MetaTracksSpanAndGeneration) {
  RetentionStore store;
  store.create_stream("s", 2.0, /*t0=*/100.0);
  auto m = store.meta("s");
  EXPECT_DOUBLE_EQ(m.collection_rate_hz, 2.0);
  EXPECT_DOUBLE_EQ(m.t0, 100.0);
  EXPECT_DOUBLE_EQ(m.t_end, 100.0);  // half-open, nothing ingested
  EXPECT_EQ(m.generation, 0u);
  EXPECT_EQ(m.ingested_samples, 0u);

  store.append("s", 1.0);
  m = store.meta("s");
  EXPECT_EQ(m.generation, 1u);
  EXPECT_EQ(m.ingested_samples, 1u);
  EXPECT_DOUBLE_EQ(m.t_end, 100.5);

  // One bulk append = one generation bump; an empty batch bumps nothing.
  store.append_series("s", std::vector<double>(99, 2.0));
  store.append_series("s", {});
  m = store.meta("s");
  EXPECT_EQ(m.generation, 2u);
  EXPECT_EQ(m.ingested_samples, 100u);
  EXPECT_DOUBLE_EQ(m.t_end, 150.0);

  EXPECT_THROW((void)store.meta("nope"), std::invalid_argument);
}

TEST(StripedStore, MetaAndListMetaAcrossStripes) {
  mon::StripedRetentionStore store({}, 8);
  store.create_stream("b/y", 1.0);
  store.create_stream("a/x", 2.0);
  store.create_stream("c/z", 4.0);
  store.append_series("a/x", std::vector<double>(10, 1.0));

  const auto all = store.list_meta();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "a/x");  // lexicographic across stripes
  EXPECT_EQ(all[1].first, "b/y");
  EXPECT_EQ(all[2].first, "c/z");
  EXPECT_EQ(all[0].second.generation, 1u);
  EXPECT_DOUBLE_EQ(all[0].second.t_end, 5.0);
  EXPECT_EQ(all[1].second.generation, 0u);

  EXPECT_EQ(store.meta("a/x").ingested_samples, 10u);
  EXPECT_THROW((void)store.meta("nope"), std::invalid_argument);

  // The striped read path shares the clamped empty-range convention.
  EXPECT_EQ(store.query("a/x", 7.0, 7.0).size(), 0u);
}

TEST(RatePriors, LearnFromAuditAndWarmStart) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 150;
  fleet_cfg.seed = 11;
  fleet_cfg.topology.pods = 2;
  const tel::Fleet fleet(fleet_cfg);
  const auto audit = mon::run_audit(fleet, mon::AuditConfig{});

  RatePriorStore priors;
  priors.learn_from(audit);
  EXPECT_GT(priors.metrics_known(), 8u);

  const auto temp = priors.prior(tel::MetricKind::kTemperature);
  ASSERT_TRUE(temp.has_value());
  EXPECT_GT(temp->observations, 0u);
  EXPECT_LE(temp->median_rate_hz, temp->p90_rate_hz);
  EXPECT_LE(temp->p90_rate_hz, temp->max_rate_hz);

  nyq::AdaptiveConfig base;
  base.initial_rate_hz = 1.0 / 300.0;
  base.min_rate_hz = 1e-6;
  base.max_rate_hz = 1.0;
  const auto warmed = priors.warm_start(tel::MetricKind::kTemperature, base);
  EXPECT_NEAR(warmed.initial_rate_hz,
              std::clamp(base.headroom * temp->p90_rate_hz, base.min_rate_hz,
                         base.max_rate_hz),
              1e-12);
}

TEST(RatePriors, NoPriorLeavesConfigUntouched) {
  RatePriorStore priors;
  EXPECT_FALSE(priors.prior(tel::MetricKind::kLinkUtil).has_value());
  nyq::AdaptiveConfig base;
  base.initial_rate_hz = 0.123;
  const auto cfg = priors.warm_start(tel::MetricKind::kLinkUtil, base);
  EXPECT_DOUBLE_EQ(cfg.initial_rate_hz, 0.123);
}

TEST(RatePriors, DirectObservations) {
  RatePriorStore priors;
  priors.observe(tel::MetricKind::kFcsErrors, 0.01);
  priors.observe(tel::MetricKind::kFcsErrors, 0.03);
  priors.observe(tel::MetricKind::kFcsErrors, 0.02);
  const auto p = priors.prior(tel::MetricKind::kFcsErrors);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->observations, 3u);
  EXPECT_DOUBLE_EQ(p->median_rate_hz, 0.02);
  EXPECT_DOUBLE_EQ(p->max_rate_hz, 0.03);
  EXPECT_THROW(priors.observe(tel::MetricKind::kFcsErrors, 0.0),
               std::invalid_argument);
}

// ------------------------------------------------ snapshot read path ------

// A snapshot must be a frozen, bit-identical view: equal to the locked
// query at acquire time, and unchanged by any amount of later ingest,
// sealing, cap eviction, and reclamation.
TEST(Snapshot, ReaderSurvivesSealEvictionAndReclaim) {
  StoreConfig cfg;
  cfg.chunk_samples = 64;
  cfg.max_chunks_per_stream = 2;
  RetentionStore store(cfg);
  store.create_stream("s", 2.0);  // collection grid dt = 0.5 s
  for (int i = 0; i < 300; ++i)
    store.append("s", std::sin(0.05 * i) + 0.01 * (i % 7));

  // 4 chunks sealed, the first 2 evicted by the cap (no snapshot was live,
  // so they were freed immediately, not parked).
  EXPECT_EQ(store.stats("s").chunks, 4u);  // cumulative seal count
  EXPECT_EQ(store.epoch_registry()->retired_pending(), 0u);

  // Query the live window [sample 128, sample 300).
  const double t_begin = 128 * 0.5;
  const double t_end = 300 * 0.5;
  const sig::RegularSeries locked = store.query("s", t_begin, t_end);
  mon::ReadSnapshot snap = store.acquire_snapshot();
  const sig::RegularSeries at_acquire = snap.query("s", t_begin, t_end);
  ASSERT_EQ(at_acquire.size(), locked.size());
  for (std::size_t i = 0; i < locked.size(); ++i)
    EXPECT_EQ(at_acquire[i], locked[i]) << i;  // bit-identical

  // Ingest on: more seals, more evictions. The evicted chunks are ones
  // this snapshot holds references to, so they must be parked, not freed.
  for (int i = 300; i < 600; ++i)
    store.append("s", std::cos(0.03 * i));
  EXPECT_EQ(store.epoch_registry()->active_snapshots(), 1u);
  EXPECT_GT(store.epoch_registry()->retired_pending(), 0u);

  // The snapshot still reads its frozen capture, bit-identically.
  const sig::RegularSeries after_churn = snap.query("s", t_begin, t_end);
  ASSERT_EQ(after_churn.size(), locked.size());
  for (std::size_t i = 0; i < locked.size(); ++i)
    EXPECT_EQ(after_churn[i], locked[i]) << i;

  // Releasing the last snapshot at-or-before the retire epochs reclaims
  // every parked chunk.
  snap.release();
  EXPECT_EQ(store.epoch_registry()->active_snapshots(), 0u);
  EXPECT_EQ(store.epoch_registry()->retired_pending(), 0u);
}

// Snapshots pinned after an eviction never saw the evicted chunk and must
// not delay its reclamation.
TEST(Snapshot, LateSnapshotDoesNotDelayReclaim) {
  StoreConfig cfg;
  cfg.chunk_samples = 32;
  cfg.max_chunks_per_stream = 1;
  RetentionStore store(cfg);
  store.create_stream("s", 1.0);

  mon::ReadSnapshot early = store.acquire_snapshot();
  for (int i = 0; i < 100; ++i) store.append("s", double(i));
  EXPECT_GT(store.epoch_registry()->retired_pending(), 0u);

  // A snapshot acquired now pins a later epoch; releasing `early` must
  // reclaim everything even though `late` is still live.
  const mon::ReadSnapshot late = store.acquire_snapshot();
  EXPECT_GT(late.epoch(), early.epoch());
  early.release();
  EXPECT_EQ(store.epoch_registry()->retired_pending(), 0u);
  EXPECT_EQ(store.epoch_registry()->active_snapshots(), 1u);
}

TEST(Snapshot, StripedSnapshotMatchesLockedReads) {
  StoreConfig cfg;
  cfg.chunk_samples = 64;
  mon::StripedRetentionStore store(cfg, 4);
  std::vector<std::string> names;
  for (int s = 0; s < 10; ++s) {
    names.push_back("dev" + std::to_string(s) + "/metric");
    store.create_stream(names.back(), 2.0);
    for (int i = 0; i < 100 + 17 * s; ++i)
      store.append(names.back(), std::sin(0.1 * i + s));
  }
  std::sort(names.begin(), names.end());

  const mon::ReadSnapshot snap = store.acquire_snapshot();
  EXPECT_EQ(snap.stream_names(), names);
  for (const auto& name : names) {
    const auto meta = snap.find_meta(name);
    ASSERT_TRUE(meta.has_value());
    const sig::RegularSeries locked = store.query(name, 0.0, meta->t_end);
    const sig::RegularSeries via_snap = snap.query(name, 0.0, meta->t_end);
    ASSERT_EQ(via_snap.size(), locked.size());
    for (std::size_t i = 0; i < locked.size(); ++i)
      EXPECT_EQ(via_snap[i], locked[i]) << name << " @" << i;
  }

  // Named capture: only the requested (existing) streams, sorted.
  const std::vector<std::string> want = {names[7], "nope/nothing", names[2]};
  const mon::ReadSnapshot sub = store.acquire_snapshot(want);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.stream_names(),
            (std::vector<std::string>{names[2], names[7]}));
  EXPECT_EQ(sub.find("nope/nothing"), nullptr);
  EXPECT_THROW((void)sub.query("nope/nothing", 0.0, 1.0),
               std::invalid_argument);
}

// Export skip accounting under the retention cap: skips are absolute chunk
// indexes, so a delta export must skip at least the trimmed prefix.
TEST(Snapshot, ExportAccountsForTrimmedChunks) {
  StoreConfig cfg;
  cfg.chunk_samples = 32;
  cfg.max_chunks_per_stream = 2;
  RetentionStore store(cfg);
  store.create_stream("s", 1.0);
  for (int i = 0; i < 150; ++i) store.append("s", double(i));  // 4 sealed
  const mon::ReadSnapshot snap = store.acquire_snapshot();
  const mon::StreamView* view = snap.find("s");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->chunks_trimmed, 2u);
  EXPECT_EQ(view->chunks.size(), 2u);

  // skip == trimmed exports the still-resident chunks; deeper skips are
  // valid deltas; skipping less than the trimmed prefix is unservable.
  EXPECT_EQ(snap.export_stream("s", 2).chunks.size(), 2u);
  EXPECT_EQ(snap.export_stream("s", 3).chunks.size(), 1u);
  EXPECT_THROW((void)snap.export_stream("s", 1), std::invalid_argument);
  EXPECT_THROW((void)store.snapshot_stream("s", 0), std::invalid_argument);
}

// Writer vs. snapshot readers under TSan: concurrent seal/evict/reclaim
// must never free a chunk a live snapshot still references.
TEST(Snapshot, ConcurrentReadersNeverSeeReclaimedData) {
  StoreConfig cfg;
  cfg.chunk_samples = 32;
  cfg.max_chunks_per_stream = 1;
  mon::StripedRetentionStore store(cfg, 2);
  store.create_stream("a", 2.0);
  store.create_stream("b", 2.0);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 6000; ++i) {
      store.append("a", std::sin(0.01 * i));
      store.append("b", std::cos(0.02 * i));
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const mon::ReadSnapshot snap = store.acquire_snapshot();
        for (const mon::StreamView& view : snap.views()) {
          if (view.ingested < 8) continue;
          const double t_end =
              view.t0 + double(view.ingested) / view.collection_rate_hz;
          const sig::RegularSeries series =
              snap.query(view.name, std::max(view.t0, t_end - 20.0), t_end);
          for (const double v : series.values())
            ASSERT_TRUE(std::isfinite(v));
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  // Every snapshot released: nothing may stay parked.
  EXPECT_EQ(store.epoch_registry()->active_snapshots(), 0u);
  EXPECT_EQ(store.epoch_registry()->retired_pending(), 0u);
}

}  // namespace
