// Synthetic signal builders.
//
// Vector generators produce sampled blocks for DSP tests and the Figure 2/3
// benches; randomized builders produce ContinuousSignal sources with a known
// band limit for estimator validation and for the telemetry metric models.
#pragma once

#include <memory>

#include "signal/source.h"
#include "signal/timeseries.h"
#include "util/rng.h"

namespace nyqmon::sig {

/// n samples of amp*sin(2*pi*f*t + phase) at rate fs, starting at t=0.
std::vector<double> make_sine(double fs_hz, std::size_t n, double freq_hz,
                              double amplitude = 1.0, double phase = 0.0);

/// The paper's Figure 3 signal: superposition of tones (e.g. 400 + 440 Hz).
std::vector<double> make_tones(double fs_hz, std::size_t n,
                               const std::vector<Tone>& tones);

/// Zero-mean white Gaussian noise.
std::vector<double> make_white_noise(std::size_t n, double stddev, Rng& rng);

/// Amplitude shaping of the random band-limited process.
enum class SpectralShape {
  kRed,   ///< amplitudes ~ 1/sqrt(f): utilization/temperature-like spectra
  kFlat,  ///< equal amplitudes: energy spread evenly across the tones
};

/// Random band-limited process: `n_tones` sinusoids with frequencies drawn
/// log-uniformly in [bandwidth_hz/10, bandwidth_hz], random phases, and
/// amplitudes per `shape`. One tone is pinned at exactly bandwidth_hz so
/// the advertised band edge carries energy.
std::shared_ptr<SumOfSines> make_bandlimited_process(
    double bandwidth_hz, double rms, std::size_t n_tones, Rng& rng,
    double dc_offset = 0.0, SpectralShape shape = SpectralShape::kRed);

/// Poisson-arrival Gaussian-bump burst process on [0, duration]:
/// models drop/error counters. sigma_s controls burst width (and thus the
/// process bandwidth); rate_per_s the expected burst arrival rate.
std::shared_ptr<GaussianBumpTrain> make_burst_process(double duration_s,
                                                      double rate_per_s,
                                                      double sigma_s,
                                                      double amplitude_mean,
                                                      Rng& rng,
                                                      double baseline = 0.0);

/// Random smooth level-shift process (link flap / fail-stop regimes).
std::shared_ptr<SmoothStepTrain> make_flap_process(double duration_s,
                                                   double rate_per_s,
                                                   double width_s,
                                                   double amplitude,
                                                   Rng& rng,
                                                   double baseline = 0.0);

/// Diurnal pattern: 24 h fundamental plus a few harmonics with slowly
/// decaying amplitudes — the shape of temperature/traffic daily cycles.
std::shared_ptr<SumOfSines> make_diurnal(double peak_to_peak,
                                         std::size_t harmonics, Rng& rng,
                                         double dc_offset = 0.0);

}  // namespace nyqmon::sig
