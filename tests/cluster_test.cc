// Cluster layer: consistent-hash ring determinism/serialization/stability,
// cross-shard merge semantics, and fleet-level end-to-end checks — the same
// data behind a 1-node and a 4-node router answers every selector
// bit-identically (including after a segment handoff duplicated streams
// across nodes), and a killed backend turns into a prompt ERR-with-detail
// partial-failure report instead of a hang.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/hash.h"
#include "cluster/router.h"
#include "monitor/striped_store.h"
#include "obs/trace.h"
#include "query/merge.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace nyqmon;

std::vector<clu::NodeDesc> test_nodes(std::size_t n) {
  std::vector<clu::NodeDesc> nodes;
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back({"node" + std::to_string(i), "127.0.0.1",
                     static_cast<std::uint16_t>(9000 + i)});
  return nodes;
}

std::vector<std::string> test_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back("dev" + std::to_string(i % 97) + "/metric" +
                   std::to_string(i));
  return keys;
}

bool same_values(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), 8 * a.size()) == 0);
}

/// Deterministic per-stream test signal.
std::vector<double> wave(std::size_t n, double phase) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(phase + 0.1 * static_cast<double>(i)) +
           0.01 * static_cast<double>(i);
  return v;
}

// -------------------------------------------------------------------- ring --

TEST(HashRing, OwnershipIsDeterministicAndComplete) {
  const clu::HashRing a(test_nodes(4), 64);
  const clu::HashRing b(test_nodes(4), 64);
  for (const std::string& key : test_keys(500)) {
    const std::size_t owner = a.owner(key);
    ASSERT_LT(owner, 4u);
    EXPECT_EQ(owner, b.owner(key)) << key;  // same inputs, same placement
  }
  // Every node owns a non-degenerate share, and shares cover the keyspace.
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GT(a.keyspace_share(i), 0.01);
    total += a.keyspace_share(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HashRing, DescribeParsesBackIdentically) {
  const clu::HashRing ring(test_nodes(3), 16);
  const std::string text = ring.describe();
  EXPECT_NE(text.find("nyqring v1"), std::string::npos);
  EXPECT_NE(text.find("vnodes 16"), std::string::npos);

  const clu::HashRing parsed = clu::HashRing::parse(text);
  ASSERT_EQ(parsed.size(), ring.size());
  EXPECT_EQ(parsed.vnodes(), ring.vnodes());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(parsed.nodes()[i].id, ring.nodes()[i].id);
    EXPECT_EQ(parsed.nodes()[i].host, ring.nodes()[i].host);
    EXPECT_EQ(parsed.nodes()[i].port, ring.nodes()[i].port);
  }
  for (const std::string& key : test_keys(500))
    EXPECT_EQ(parsed.owner(key), ring.owner(key)) << key;
  EXPECT_EQ(parsed.describe(), text);  // canonical: round-trips bit-identically
}

TEST(HashRing, RejectsMalformedInput) {
  EXPECT_THROW(clu::HashRing(test_nodes(2), 0), std::invalid_argument);
  EXPECT_THROW(clu::HashRing({}, 8), std::invalid_argument);
  auto dup = test_nodes(2);
  dup[1].id = dup[0].id;
  EXPECT_THROW(clu::HashRing(dup, 8), std::invalid_argument);
  EXPECT_THROW(clu::HashRing::parse("not a ring\n"), std::invalid_argument);
  EXPECT_THROW(clu::HashRing::parse("nyqring v1\nvnodes 0\nnode a h:1\n"),
               std::invalid_argument);
}

TEST(HashRing, AddingANodeMovesOnlyItsShare) {
  const clu::HashRing before(test_nodes(4), 64);
  const clu::HashRing after(test_nodes(5), 64);  // node4 joins
  const auto keys = test_keys(2000);

  std::size_t moved = 0;
  for (const std::string& key : keys) {
    const std::size_t old_owner = before.owner(key);
    const std::size_t new_owner = after.owner(key);
    if (old_owner != new_owner) {
      // Consistent hashing's contract: a key only ever moves TO the
      // joining node — never gets reshuffled between surviving nodes.
      EXPECT_EQ(after.nodes()[new_owner].id, "node4") << key;
      ++moved;
    }
  }
  // Expected ~1/5 of keys move (the joiner's share); allow generous slack
  // for vnode placement variance.
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.40);
  EXPECT_NEAR(fraction, after.keyspace_share(4), 0.10);
}

// ------------------------------------------------------------------- merge --

qry::QuerySpec merge_spec(qry::Aggregation agg) {
  qry::QuerySpec spec;
  spec.selector = "*";
  spec.t_begin = 0.0;
  spec.t_end = 8.0;
  spec.step_s = 1.0;
  spec.aggregate = agg;
  return spec;
}

qry::QuerySeries series_of(const std::string& label, double seed,
                           std::size_t n) {
  return {label, sig::RegularSeries(0.0, 1.0, wave(n, seed))};
}

TEST(ShardMerge, DedupesAndOrdersLikeOneEngine) {
  const auto spec = merge_spec(qry::Aggregation::kNone);
  const std::size_t n = spec.grid_points();
  // Shard 0 holds {a, c}; shard 1 holds {b, c} — c is mid-handoff, both
  // copies bit-identical.
  std::vector<qry::ShardSlice> slices(2);
  slices[0].matched = {"s/a", "s/c"};
  slices[0].series = {series_of("s/a", 0.1, n), series_of("s/c", 0.3, n)};
  slices[1].matched = {"s/b", "s/c"};
  slices[1].series = {series_of("s/b", 0.2, n), series_of("s/c", 0.3, n)};

  const qry::MergedQuery merged = qry::merge_shard_slices(spec, slices);
  EXPECT_EQ(merged.matched,
            (std::vector<std::string>{"s/a", "s/b", "s/c"}));
  EXPECT_EQ(merged.reconstructed, merged.matched);
  EXPECT_EQ(merged.duplicate_streams, 1u);
  ASSERT_EQ(merged.series.size(), 3u);
  EXPECT_EQ(merged.series[0].label, "s/a");
  EXPECT_EQ(merged.series[1].label, "s/b");
  EXPECT_EQ(merged.series[2].label, "s/c");
  EXPECT_TRUE(same_values(merged.series[2].series.span(),
                          series_of("s/c", 0.3, n).series.span()));
}

TEST(ShardMerge, AggregatesWithTheEnginesReduction) {
  const auto spec = merge_spec(qry::Aggregation::kP95);
  const std::size_t n = spec.grid_points();
  std::vector<qry::ShardSlice> slices(2);
  slices[0].matched = {"s/a"};
  slices[0].series = {series_of("s/a", 0.1, n)};
  slices[1].matched = {"s/b", "s/z"};
  slices[1].series = {series_of("s/b", 0.2, n), series_of("s/z", 0.9, n)};

  const qry::MergedQuery merged = qry::merge_shard_slices(spec, slices);
  ASSERT_EQ(merged.series.size(), 1u);
  EXPECT_EQ(merged.series[0].label, "p95(*)");

  // Reference: the engine's own column reduction in lexicographic order.
  const std::vector<qry::QuerySeries> ordered = {
      series_of("s/a", 0.1, n), series_of("s/b", 0.2, n),
      series_of("s/z", 0.9, n)};
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<double> column(ordered.size());
    for (std::size_t i = 0; i < ordered.size(); ++i)
      column[i] = ordered[i].series[t];
    const double expect =
        qry::aggregate_column(qry::Aggregation::kP95, column);
    EXPECT_EQ(merged.series[0].series[t], expect) << t;  // bit-identical
  }
}

TEST(ShardMerge, RejectsMismatchedGrids) {
  const auto spec = merge_spec(qry::Aggregation::kNone);
  std::vector<qry::ShardSlice> slices(1);
  slices[0].matched = {"s/a"};
  slices[0].series = {series_of("s/a", 0.1, spec.grid_points() + 3)};
  EXPECT_THROW(qry::merge_shard_slices(spec, slices), std::runtime_error);
}

// ------------------------------------------------- fleet (router) fixtures --

/// N empty in-process nyqmond backends behind one router.
struct MiniFleet {
  std::vector<std::unique_ptr<mon::StripedRetentionStore>> stores;
  std::vector<std::unique_ptr<srv::NyqmondServer>> backends;
  std::unique_ptr<clu::NyqmonRouter> router;

  explicit MiniFleet(std::size_t n, std::uint32_t io_timeout_ms = 5000) {
    clu::RouterConfig cfg;
    for (std::size_t i = 0; i < n; ++i) {
      stores.push_back(std::make_unique<mon::StripedRetentionStore>());
      srv::ServerConfig backend_cfg;
      // Fleet identity: spans and log records carry the node tag, and the
      // stitched trace test asserts per-node process lanes by these names.
      backend_cfg.node_name = "node" + std::to_string(i);
      backends.push_back(std::make_unique<srv::NyqmondServer>(
          *stores.back(), nullptr, backend_cfg));
      backends.back()->start();
      cfg.cluster.nodes.push_back({"node" + std::to_string(i), "127.0.0.1",
                                   backends.back()->port()});
    }
    cfg.cluster.connect_timeout_ms = 2000;
    cfg.cluster.io_timeout_ms = io_timeout_ms;
    router = std::make_unique<clu::NyqmonRouter>(cfg);
    router->start();
  }

  ~MiniFleet() {
    if (router != nullptr) router->stop();
    for (auto& backend : backends) backend->stop();
  }
};

const char* kStreams[] = {"podA/cpu", "podA/mem", "podB/cpu", "podB/mem",
                          "podC/cpu", "podC/mem", "podD/cpu", "podD/mem",
                          "rack1-tor/drops", "rack2-tor/drops"};

void ingest_fixture(srv::NyqmonClient& client) {
  double phase = 0.0;
  for (const char* name : kStreams) {
    const auto values = wave(256, phase += 0.7);
    client.ingest(name, 1.0, 0.0, values);
  }
}

std::vector<qry::QuerySpec> selector_suite() {
  std::vector<qry::QuerySpec> suite;
  const char* selectors[] = {"podA/cpu", "rack1-tor/drops", "*/cpu",
                             "podB/*",   "rack?-tor/drops", "*",
                             "none/such"};
  const qry::Transform transforms[] = {qry::Transform::kRaw,
                                       qry::Transform::kRate,
                                       qry::Transform::kZScore};
  const qry::Aggregation aggs[] = {
      qry::Aggregation::kNone, qry::Aggregation::kSum,
      qry::Aggregation::kAvg,  qry::Aggregation::kMin,
      qry::Aggregation::kMax,  qry::Aggregation::kP50,
      qry::Aggregation::kP95,  qry::Aggregation::kP99};
  std::size_t v = 0;
  for (const char* sel : selectors) {
    for (const auto agg : aggs) {
      qry::QuerySpec spec;
      spec.selector = sel;
      spec.t_begin = 8.0;
      spec.t_end = 200.0;
      spec.step_s = 4.0;
      spec.transform = transforms[v++ % 3];
      spec.aggregate = agg;
      suite.push_back(spec);
    }
  }
  return suite;
}

void expect_identical_answers(srv::NyqmonClient& one, srv::NyqmonClient& many,
                              const char* when) {
  for (const qry::QuerySpec& spec : selector_suite()) {
    const srv::QueryReply a = one.query(spec, true);
    const srv::QueryReply b = many.query(spec, true);
    SCOPED_TRACE(std::string(when) + ": " + spec.selector + " agg=" +
                 std::to_string(static_cast<int>(spec.aggregate)));
    EXPECT_EQ(a.matched, b.matched);
    EXPECT_EQ(a.reconstructed, b.reconstructed);
    EXPECT_EQ(a.matched_labels, b.matched_labels);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t i = 0; i < a.series.size(); ++i) {
      EXPECT_EQ(a.series[i].label, b.series[i].label);
      EXPECT_EQ(a.series[i].series.t0(), b.series[i].series.t0());
      EXPECT_EQ(a.series[i].series.dt(), b.series[i].series.dt());
      EXPECT_TRUE(same_values(a.series[i].series.span(),
                              b.series[i].series.span()))
          << a.series[i].label;
    }
  }
}

// ------------------------------------------------------ fleet determinism --

TEST(Fleet, OneNodeAndFourNodesAnswerBitIdentically) {
  MiniFleet one(1);
  MiniFleet four(4);
  srv::NyqmonClient c1("127.0.0.1", one.router->port());
  srv::NyqmonClient c4("127.0.0.1", four.router->port());
  ingest_fixture(c1);
  ingest_fixture(c4);

  // The 4-node fleet actually sharded the streams (no node holds all).
  std::size_t populated = 0;
  for (const auto& store : four.stores) {
    EXPECT_LT(store->streams(), std::size(kStreams));
    populated += store->streams() > 0 ? 1 : 0;
  }
  EXPECT_GE(populated, 2u);

  expect_identical_answers(c1, c4, "sharded");
  EXPECT_EQ(four.router->stats().partial_failures, 0u);
}

TEST(Fleet, HandoffKeepsAnswersBitIdentical) {
  MiniFleet one(1);
  MiniFleet four(4);
  srv::NyqmonClient c1("127.0.0.1", one.router->port());
  srv::NyqmonClient c4("127.0.0.1", four.router->port());
  ingest_fixture(c1);
  ingest_fixture(c4);

  // Move podA/cpu off its ring owner onto another node, driving the
  // handoff through a standalone ClusterClient (the router's own cluster
  // handle belongs to its event-loop thread). The source keeps its copy
  // (mid-handoff state): queries must dedupe, not double-count.
  clu::ClusterConfig side;
  side.nodes = four.router->ring().nodes();
  clu::ClusterClient mover(side);
  const std::size_t from = four.router->ring().owner("podA/cpu");
  const std::size_t to = (from + 1) % 4;
  const srv::HandoffImportReply imported =
      mover.handoff("podA/cpu", from, to);
  EXPECT_EQ(imported.streams, 1u);
  EXPECT_GT(imported.samples, 0u);
  EXPECT_TRUE(four.stores[to]->find_meta("podA/cpu").has_value());
  EXPECT_TRUE(four.stores[from]->find_meta("podA/cpu").has_value());

  expect_identical_answers(c1, c4, "mid-handoff duplicate");

  // Importing the same streams again is refused with per-stream detail.
  try {
    mover.handoff("podA/cpu", from, to);
    FAIL() << "duplicate import must be refused";
  } catch (const srv::ServerError& e) {
    ASSERT_EQ(e.details().size(), 1u);
    EXPECT_EQ(e.details()[0].node, "podA/cpu");
  }
}

// ------------------------------------------------------- partial failures --

TEST(Fleet, KilledBackendAnswersErrWithDetailPromptly) {
  MiniFleet fleet(3, /*io_timeout_ms=*/500);
  srv::NyqmonClient client("127.0.0.1", fleet.router->port());
  ingest_fixture(client);

  fleet.backends[1]->stop();  // kill node1

  qry::QuerySpec spec;
  spec.selector = "*";
  spec.t_begin = 0.0;
  spec.t_end = 128.0;
  spec.step_s = 2.0;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)client.query(spec);
    FAIL() << "expected a partial-failure ERR";
  } catch (const srv::ServerError& e) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Bounded by the per-backend deadline, not a hang: the healthy
    // backends answered and only the dead node is reported.
    EXPECT_LT(elapsed, 5.0);
    EXPECT_NE(std::string(e.what()).find("partial failure"),
              std::string::npos)
        << e.what();
    ASSERT_EQ(e.details().size(), 1u);
    EXPECT_EQ(e.details()[0].node, "node1");
  }
  EXPECT_GE(fleet.router->stats().partial_failures, 1u);
  EXPECT_GE(fleet.router->stats().backend_errors, 1u);

  // Streams owned by surviving nodes still ingest through the router.
  for (const char* name : kStreams) {
    if (fleet.router->ring().owner(name) == 1) continue;
    const auto values = wave(16, 3.3);
    EXPECT_EQ(client.ingest(name, 1.0, 0.0, values), 256u + 16u) << name;
    break;
  }
}

// -------------------------------------------------- fleet observability ---

TEST(Fleet, FleetMetricsConcatenatesPerNodeSections) {
  MiniFleet fleet(2);
  srv::NyqmonClient client("127.0.0.1", fleet.router->port());
  ingest_fixture(client);

  const std::string text = client.metrics_text(/*fleet=*/true);
  EXPECT_NE(text.find("# == node router ==\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# == node node0 ==\n"), std::string::npos);
  EXPECT_NE(text.find("# == node node1 ==\n"), std::string::npos);
  // Backend sections carry real expositions, not placeholders.
  EXPECT_NE(text.find("nyqmon_server_ingest_latency_ns"), std::string::npos);

  // Without the fleet bit the router serves its own exposition only —
  // both as the bare legacy request and as an explicit zero flags byte
  // (consumed bytes mean the intercept must answer inline, not fall
  // through to the built-in handler).
  const std::string local = client.metrics_text(/*fleet=*/false);
  EXPECT_EQ(local.find("# == node"), std::string::npos);
  EXPECT_NE(local.find("# TYPE"), std::string::npos);
  const std::vector<std::uint8_t> no_fleet{0x00};
  const auto body = client.request_raw(
      static_cast<std::uint8_t>(srv::Verb::kMetrics), no_fleet);
  ASSERT_FALSE(body.empty());
  ASSERT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kOk));
  const std::string via_flags(body.begin() + 1, body.end());
  EXPECT_EQ(via_flags.find("# == node"), std::string::npos);
  EXPECT_NE(via_flags.find("# TYPE"), std::string::npos);
}

TEST(Fleet, RouterRejectsMalformedMetricsAndTracePayloads) {
  MiniFleet fleet(2);
  srv::NyqmonClient client("127.0.0.1", fleet.router->port());

  // A flags byte followed by junk is malformed: ERR, not a scatter.
  for (const srv::Verb verb : {srv::Verb::kMetrics, srv::Verb::kTrace}) {
    const std::vector<std::uint8_t> junk{0x01, 0x99};
    const auto body =
        client.request_raw(static_cast<std::uint8_t>(verb), junk);
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kError));
    const std::string text(body.begin() + 1, body.end());
    EXPECT_NE(text.find("malformed"), std::string::npos) << text;
  }

  // Unknown flag bits (fleet bit clear) are tolerated as a local request.
  const std::vector<std::uint8_t> future{0xfe};
  const auto ok = client.request_raw(
      static_cast<std::uint8_t>(srv::Verb::kMetrics), future);
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok[0], static_cast<std::uint8_t>(srv::Status::kOk));

  // The connection survives it all and still serves a fleet request.
  EXPECT_NE(client.metrics_text(true).find("# == node router =="),
            std::string::npos);
}

TEST(Fleet, RouterExplainAttributesScatterAndMerge) {
  MiniFleet fleet(4);
  srv::NyqmonClient client("127.0.0.1", fleet.router->port());
  ingest_fixture(client);

  qry::QuerySpec spec;
  spec.selector = "*";
  spec.t_begin = 8.0;
  spec.t_end = 200.0;
  spec.step_s = 2.0;
  const srv::QueryReply reply =
      client.query(spec, /*want_matched=*/true, /*want_explain=*/true);
  ASSERT_TRUE(reply.explain.has_value());
  const srv::QueryExplainBlock& ex = *reply.explain;
  EXPECT_GT(ex.total_ns, 0u);

  std::uint64_t contiguous = 0;
  std::size_t backend_rows = 0;
  bool saw_scatter = false;
  bool saw_merge = false;
  for (const srv::ExplainEntry& e : ex.stages) {
    if (e.stage.rfind("backend/", 0) == 0) {
      ++backend_rows;  // overlapping fan-out latencies, outside the sum
      continue;
    }
    contiguous += e.ns;
    saw_scatter |= e.stage == "scatter";
    saw_merge |= e.stage == "merge";
  }
  EXPECT_TRUE(saw_scatter);
  EXPECT_TRUE(saw_merge);
  // Every live backend contributes an informational gather row.
  EXPECT_EQ(backend_rows, 4u);
  // scatter + merge partition the router's handling end to end (the ISSUE
  // acceptance bar: ≥90% of total latency attributed to named stages).
  EXPECT_GE(contiguous * 10, ex.total_ns * 9)
      << "only " << contiguous << " of " << ex.total_ns << " ns attributed";

  // Without the flag the reply stays in the pre-explain shape.
  EXPECT_FALSE(client.query(spec, true).explain.has_value());
}

// -------------------------------------------------- stitched fleet trace --

struct ChromeEvent {
  std::string text;  ///< the raw event object, for targeted field reads
  std::string name;
  std::uint32_t pid = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

std::string json_str_field(const std::string& ev, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const std::size_t pos = ev.find(pat);
  if (pos == std::string::npos) return "";
  const std::size_t begin = pos + pat.size();
  return ev.substr(begin, ev.find('"', begin) - begin);
}

/// The `args.name` label of a process_name metadata event.
std::string process_label(const std::string& ev) {
  static const char kPat[] = "\"args\":{\"name\":\"";
  const std::size_t pos = ev.find(kPat);
  if (pos == std::string::npos) return "";
  const std::size_t begin = pos + sizeof(kPat) - 1;
  return ev.substr(begin, ev.find('"', begin) - begin);
}

/// Split a chrome-trace export into its event objects. Events begin with
/// `{"name":"` right after `[` or `,` — the same anchor inside an args
/// object is preceded by `:` and skipped.
std::vector<ChromeEvent> parse_chrome_events(const std::string& json) {
  static const char kAnchor[] = "{\"name\":\"";
  const auto next_anchor = [&json](std::size_t from) {
    std::size_t pos = json.find(kAnchor, from);
    while (pos != std::string::npos && pos > 0 && json[pos - 1] != '[' &&
           json[pos - 1] != ',')
      pos = json.find(kAnchor, pos + 1);
    return pos;
  };
  std::vector<ChromeEvent> events;
  std::size_t pos = next_anchor(0);
  while (pos != std::string::npos) {
    const std::size_t next = next_anchor(pos + 1);
    ChromeEvent ev;
    ev.text = json.substr(
        pos, (next == std::string::npos ? json.size() : next) - pos);
    ev.name = json_str_field(ev.text, "name");
    ev.trace_id = std::strtoull(json_str_field(ev.text, "trace_id").c_str(),
                                nullptr, 16);
    ev.span_id = std::strtoull(json_str_field(ev.text, "span_id").c_str(),
                               nullptr, 16);
    ev.parent_span_id = std::strtoull(
        json_str_field(ev.text, "parent_span_id").c_str(), nullptr, 16);
    const std::size_t pid_pos = ev.text.find("\"pid\":");
    if (pid_pos != std::string::npos)
      ev.pid = static_cast<std::uint32_t>(
          std::strtoul(ev.text.c_str() + pid_pos + 6, nullptr, 10));
    events.push_back(std::move(ev));
    pos = next;
  }
  return events;
}

TEST(Fleet, FleetTraceStitchesOneQueryTimeline) {
  // The ISSUE acceptance scenario: a 4-backend fleet query with tracing
  // armed yields ONE chrome JSON whose spans — router and all four
  // backends — share one trace_id, with the router's fan-out spans
  // parenting each backend's QUERY dispatch span.
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  MiniFleet fleet(4);
  srv::NyqmonClient client("127.0.0.1", fleet.router->port());
  ingest_fixture(client);

  rec.drain();  // discard the ingest round: capture only the traced query
  rec.set_enabled(true);
  qry::QuerySpec spec;
  spec.selector = "*";
  spec.t_begin = 8.0;
  spec.t_end = 200.0;
  spec.step_s = 4.0;
  (void)client.query(spec, /*want_matched=*/true);
  const std::string json = client.trace_json(/*fleet=*/true);
  rec.set_enabled(false);
  rec.drain();  // leave nothing behind for later tests

  ASSERT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  const std::vector<ChromeEvent> events = parse_chrome_events(json);

  // Every node in the fleet got a labelled process lane in the stitch.
  std::map<std::uint32_t, std::string> lanes;
  for (const ChromeEvent& ev : events)
    if (ev.name == "process_name") lanes[ev.pid] = process_label(ev.text);
  std::set<std::string> lane_names;
  for (const auto& [pid, name] : lanes) lane_names.insert(name);
  for (const char* node : {"router", "node0", "node1", "node2", "node3"})
    EXPECT_TRUE(lane_names.count(node)) << node << " has no process lane";

  // Exactly one trace id spans the QUERY dispatch on the router and on
  // all four backends.
  std::vector<ChromeEvent> query_spans;
  for (const ChromeEvent& ev : events)
    if (ev.name == "QUERY") query_spans.push_back(ev);
  ASSERT_EQ(query_spans.size(), 5u) << json;
  const std::uint64_t trace_id = query_spans[0].trace_id;
  EXPECT_NE(trace_id, 0u);
  for (const ChromeEvent& ev : query_spans)
    EXPECT_EQ(ev.trace_id, trace_id) << ev.text;

  // The router recorded one fan-out span per backend, all under a single
  // parent: its own QUERY span.
  std::map<std::uint64_t, std::string> fanout;  // span_id -> name
  std::set<std::uint64_t> fanout_parents;
  for (const ChromeEvent& ev : events)
    if (ev.trace_id == trace_id && ev.name.rfind("fanout/", 0) == 0) {
      fanout[ev.span_id] = ev.name;
      fanout_parents.insert(ev.parent_span_id);
    }
  ASSERT_EQ(fanout.size(), 4u) << json;
  ASSERT_EQ(fanout_parents.size(), 1u);
  const std::uint64_t router_span = *fanout_parents.begin();

  // The router's QUERY span is the trace root; each backend's QUERY span
  // is parented by a distinct fan-out span — the parent relation survived
  // the wire via the TraceContext trailer.
  std::set<std::uint64_t> backend_parents;
  std::set<std::string> backend_lanes;
  for (const ChromeEvent& ev : query_spans) {
    if (ev.span_id == router_span) {
      EXPECT_EQ(ev.parent_span_id, 0u) << ev.text;
      EXPECT_EQ(lanes[ev.pid], "router");
      continue;
    }
    ASSERT_TRUE(fanout.count(ev.parent_span_id)) << ev.text;
    backend_parents.insert(ev.parent_span_id);
    backend_lanes.insert(lanes[ev.pid]);
  }
  EXPECT_EQ(backend_parents.size(), 4u);
  EXPECT_EQ(backend_lanes,
            (std::set<std::string>{"node0", "node1", "node2", "node3"}));
}

// ------------------------------------------------------- client timeouts --

TEST(ClusterClient, TimeoutsAreBounded) {
  // A listener that never accepts: the connect completes via the kernel
  // backlog, but no request is ever answered — the io timeout bounds the
  // wait instead of hanging forever.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  srv::ClientOptions options;
  options.connect_timeout_ms = 500;
  options.io_timeout_ms = 300;
  auto t0 = std::chrono::steady_clock::now();
  {
    srv::NyqmonClient client("127.0.0.1", port, options);
    EXPECT_THROW(client.stats_json(), std::runtime_error);
  }
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);

  // Saturate the backlog (listen(…, 0) = one pending connection on Linux)
  // so further SYNs are dropped: the connect timeout bounds the attempt.
  const int full = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(full, 0);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(full, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(full, 0), 0);
  len = sizeof(addr);
  ASSERT_EQ(::getsockname(full, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(srv::NyqmonClient("127.0.0.1", ntohs(addr.sin_port), options),
               std::runtime_error);
  elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);

  for (const int fd : fillers) ::close(fd);
  ::close(full);
  ::close(listener);
}

TEST(ClusterClient, RetryWithBackoffRetriesTransportOnly) {
  int calls = 0;
  srv::RetryPolicy policy;
  policy.attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  const int result = srv::retry_with_backoff(policy, [&] {
    if (++calls < 3) throw std::runtime_error("transient");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);

  // A ServerError is a definitive answer: no retry.
  calls = 0;
  EXPECT_THROW(srv::retry_with_backoff(policy, [&]() -> int {
                 ++calls;
                 throw srv::ServerError("refused", {});
               }),
               srv::ServerError);
  EXPECT_EQ(calls, 1);

  // Exhausted attempts rethrow the last transport error.
  calls = 0;
  EXPECT_THROW(srv::retry_with_backoff(policy, [&]() -> int {
                 ++calls;
                 throw std::runtime_error("down");
               }),
               std::runtime_error);
  EXPECT_EQ(calls, 3);
}

}  // namespace
