// Ablation of quantization handling (Section 4.3): "we can add the same
// quantization in order to recover the signal more accurately. However, in
// such cases the signal is no longer 'perfectly recoverable'".
//
// The harness downsample/reconstructs a quantized temperature trace with
// and without re-quantization, across quantization steps — quantifying how
// much the trick recovers.
#include <cstdio>

#include "common.h"
#include "dsp/quantize.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Ablation: quantization-aware recovery (Section 4.3) "
              "===\n\n");

  AsciiTable table({"quant step", "exact samples (plain)",
                    "exact samples (requantized)", "RMSE plain",
                    "RMSE requantized"});
  CsvWriter csv(bench::csv_path("ablation_quantization"),
                {"step", "exact_plain", "exact_requant", "rmse_plain",
                 "rmse_requant"});

  for (double step : {0.25, 0.5, 1.0, 2.0}) {
    Rng rng(808);
    const auto temp = sig::make_bandlimited_process(
        1.0 / 43200.0, 2.0, 24, rng, 45.0);
    const dsp::Quantizer quant(step);
    auto dense = temp->sample(0.0, 300.0, 4096);
    for (auto& v : dense.mutable_values()) v = quant.apply(v);

    rec::ReconstructionConfig plain;
    plain.lowpass_cutoff_hz = 2.0 * temp->bandwidth_hz();
    rec::ReconstructionConfig requant = plain;
    requant.requantize = quant;

    const auto r_plain = rec::round_trip(dense, 4, plain);
    const auto r_req = rec::round_trip(dense, 4, requant);

    auto exact_frac = [&dense](const sig::RegularSeries& r) {
      std::size_t n = 0;
      for (std::size_t i = 0; i < dense.size(); ++i)
        if (dense[i] == r[i]) ++n;
      return static_cast<double>(n) / static_cast<double>(dense.size());
    };
    const double ep = exact_frac(r_plain);
    const double er = exact_frac(r_req);
    const double rp = rec::rmse(dense.span(), r_plain.span());
    const double rr = rec::rmse(dense.span(), r_req.span());
    char b1[16], b2[16];
    std::snprintf(b1, sizeof b1, "%.1f%%", 100.0 * ep);
    std::snprintf(b2, sizeof b2, "%.1f%%", 100.0 * er);
    table.row({AsciiTable::format_double(step), b1, b2,
               AsciiTable::format_double(rp), AsciiTable::format_double(rr)});
    csv.row_numeric({step, ep, er, rp, rr});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: re-applying the source quantizer snaps most\n"
              "samples back onto the exact lattice (near-zero L2), at the\n"
              "cost of giving up 'perfect recoverability' in the\n"
              "Nyquist-Shannon sense.\n");
  return 0;
}
