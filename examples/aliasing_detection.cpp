// Aliasing detection: the Penny et al. dual-rate check (paper Section 4.1)
// as a standalone tool.
//
// An operator wants to know whether polling FCS error counters once per
// minute is enough. The detector samples the signal at the candidate rate
// and at 1.85x that rate, compares the two spectra on the common band and
// reports whether the candidate rate folds signal energy.
#include <cstdio>

#include "nyquist/aliasing_detector.h"
#include "nyquist/estimator.h"
#include "signal/generators.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;

  // Two switches: one with slow background corrosion errors, one with a
  // fast-flapping transceiver.
  Rng rng(99);
  const auto slow_device = sig::make_burst_process(
      /*duration=*/4.0 * 86400.0, /*rate=*/10.0 / 86400.0, /*sigma=*/3600.0,
      /*amplitude=*/30.0, rng);
  const auto flappy_device = sig::make_burst_process(
      4.0 * 86400.0, 400.0 / 86400.0, /*sigma=*/20.0, 30.0, rng);

  const nyq::DualRateAliasingDetector detector;
  const double candidate_rate = 1.0 / 60.0;  // one poll per minute

  struct Case {
    const char* name;
    const sig::ContinuousSignal* signal;
  };
  for (const Case& c : {Case{"slow corrosion", slow_device.get()},
                        Case{"flapping transceiver", flappy_device.get()}}) {
    const auto result = detector.probe(
        [&c](double t) { return c.signal->value(t); }, 0.0, 2.0 * 86400.0,
        candidate_rate);
    std::printf("%-22s true band limit %.4g Hz, candidate rate %.4g Hz\n",
                c.name, c.signal->bandwidth_hz(), candidate_rate);
    std::printf("  verdict: %s (spectral discrepancy %.3f over %zu bins)\n",
                result.aliasing_detected ? "ALIASING — poll faster"
                                         : "clean — rate is sufficient",
                result.discrepancy, result.compared_bins);

    if (!result.aliasing_detected) {
      // Rate is sufficient: how much lower could it go? Ask the estimator.
      const auto trace = c.signal->sample(0.0, 1.0 / candidate_rate,
                                          static_cast<std::size_t>(
                                              2.0 * 86400.0 * candidate_rate));
      const auto est = nyq::NyquistEstimator().estimate(trace);
      if (est.ok()) {
        std::printf("  bonus: the trace's own Nyquist estimate is %.4g Hz "
                    "(%.0fx below the candidate)\n",
                    est.nyquist_rate_hz, est.reduction_ratio());
      }
    }
    std::printf("\n");
  }
  return 0;
}
