// Figure/table rendering helpers shared by the bench harnesses: box-plot
// rows (Figure 5), CDF tables (Figure 4), and bar charts (Figure 1), each
// printed as ASCII and exportable to CSV.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "signal/stats.h"

namespace nyqmon::ana {

/// One labelled box-plot row (Figure 5 style).
struct BoxRow {
  std::string label;
  sig::Summary summary;
};

/// Render labelled five-number summaries as a table.
std::string render_box_table(const std::vector<BoxRow>& rows);

/// Render a labelled CDF as "x  F(x)" rows.
std::string render_cdf_rows(
    const std::string& label,
    const std::vector<std::pair<double, double>>& rows);

}  // namespace nyqmon::ana
