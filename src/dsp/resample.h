// Rate conversion of uniformly sampled signals.
//
// Downsampling models what a cheaper monitoring system would have collected;
// FFT-based (sinc) upsampling implements the paper's reconstruction: take
// the FFT, extend with zero bins, take the IFFT (Section 4.3). Together they
// realize the "downsample to Nyquist, upsample back, compare" experiments of
// Figures 3 and 6.
#pragma once

#include <span>
#include <vector>

namespace nyqmon::dsp {

/// Keep every `factor`-th sample starting at index 0 (no anti-alias filter —
/// this deliberately mimics a poller that simply polls less often).
std::vector<double> decimate(std::span<const double> x, std::size_t factor);

/// Decimate with an anti-aliasing ideal low-pass at the new Nyquist
/// frequency applied first.
std::vector<double> decimate_antialiased(std::span<const double> x,
                                         double sample_rate_hz,
                                         std::size_t factor);

/// Band-limited (sinc) resampling to exactly n_out samples spanning the same
/// duration: FFT, zero-pad or truncate the spectrum, IFFT, rescale.
/// Upsampling (n_out > x.size()) is exact for signals band-limited below the
/// input Nyquist frequency; downsampling low-passes at the output Nyquist.
std::vector<double> resample_fourier(std::span<const double> x,
                                     std::size_t n_out);

/// Linear interpolation of x (sampled at sample_rate_hz, first sample t=0)
/// onto arbitrary query times (seconds). Queries outside the support clamp
/// to the edge values.
std::vector<double> interp_linear(std::span<const double> x,
                                  double sample_rate_hz,
                                  std::span<const double> query_times);

/// Nearest-neighbour interpolation with the same conventions.
std::vector<double> interp_nearest(std::span<const double> x,
                                   double sample_rate_hz,
                                   std::span<const double> query_times);

}  // namespace nyqmon::dsp
