// Scenario waveform adaptors — the decorators scenario groups wrap around
// the base ContinuousSignal atoms in signal/source.h.
//
// Every adaptor is itself a ContinuousSignal, so families compose freely:
// a monotone counter is a LinearDrift plus a positive step train; an outage
// scenario is any signal behind an OutageGate; a skewed device is any
// signal behind a ClockWarp. All adaptors report an honest bandwidth_hz()
// (the max of the wrapped signal's band limit and any edge energy the
// adaptor introduces) so the Nyquist ground truth stays valid.
//
// Ownership: adaptors hold shared_ptr references to the signals they wrap;
// a built scenario signal graph is immutable and freely shareable across
// streams (cross-stream correlation shares one base part by pointer).
// Threading: value() is const and lock-free; concurrent evaluation from
// engine workers is safe. Determinism: adaptors hold no RNG state — all
// randomness is drawn at construction time by the scenario builder.
#pragma once

#include <memory>
#include <vector>

#include "signal/source.h"

namespace nyqmon::scn {

/// base(t) + offset + slope * t — the ramp under a monotone counter.
/// Reports the base signal's bandwidth (a linear ramp is DC-dominated; its
/// spectral energy sits below any practical estimation floor).
class LinearDrift final : public sig::ContinuousSignal {
 public:
  LinearDrift(std::shared_ptr<const sig::ContinuousSignal> base, double offset,
              double slope_per_s);

  double value(double t) const override;
  double bandwidth_hz() const override;

 private:
  std::shared_ptr<const sig::ContinuousSignal> base_;
  double offset_;
  double slope_;
};

/// One dropout/outage window on the signal timeline.
struct OutageWindow {
  double begin_s = 0.0;
  double end_s = 0.0;
};

/// Collapses the wrapped signal to `floor` during outage windows, with
/// smooth tanh edges of width `edge_width_s` (so the gate's own band limit
/// ~1.4/edge_width is known and bounded):
///   value(t) = floor + g(t) * (base(t) - floor),  g in [0, 1].
/// Models devices that stop reporting real readings during an outage and
/// return a stuck floor value instead.
class OutageGate final : public sig::ContinuousSignal {
 public:
  OutageGate(std::shared_ptr<const sig::ContinuousSignal> base,
             std::vector<OutageWindow> outages, double edge_width_s,
             double floor);

  double value(double t) const override;
  double bandwidth_hz() const override;

  /// The gate alone: 1 = healthy, 0 = fully in outage.
  double gate(double t) const;

 private:
  std::shared_ptr<const sig::ContinuousSignal> base_;
  std::vector<OutageWindow> outages_;  // sorted, non-overlapping
  double edge_width_;
  double floor_;
};

/// Per-device clock skew and drift: value(t) = base(offset + (1+drift)*t).
/// Models a poller whose timestamps are offset from the fleet epoch and
/// whose local oscillator runs fast or slow by `drift` (dimensionless,
/// e.g. 200e-6 for 200 ppm). Reported bandwidth scales by (1 + |drift|) —
/// a fast clock compresses the signal's timeline.
class ClockWarp final : public sig::ContinuousSignal {
 public:
  ClockWarp(std::shared_ptr<const sig::ContinuousSignal> base, double offset_s,
            double drift);

  double value(double t) const override;
  double bandwidth_hz() const override;

  double offset_s() const { return offset_; }
  double drift() const { return drift_; }

 private:
  std::shared_ptr<const sig::ContinuousSignal> base_;
  double offset_;
  double drift_;
};

}  // namespace nyqmon::scn
