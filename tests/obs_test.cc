// Tests for the self-telemetry layer (src/obs): histogram bucket/quantile
// math, striped-counter determinism across threads, trace-ring wraparound
// and drain semantics, and the Prometheus/chrome-trace exports. The
// Concurrent* suites are the TSan targets for the CI sanitizer matrix.
#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace obs = nyqmon::obs;

// ----------------------------------------------------------- histograms ----

TEST(Histogram, BucketOfLog2Boundaries) {
  // Bucket 0 holds exactly zero; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4u);
  for (std::size_t b = 1; b < 63; ++b) {
    const std::uint64_t lo = obs::HistogramSnapshot::bucket_lo(b);
    const std::uint64_t hi = obs::HistogramSnapshot::bucket_hi(b);
    EXPECT_EQ(obs::Histogram::bucket_of(lo), b) << "lo of bucket " << b;
    EXPECT_EQ(obs::Histogram::bucket_of(hi), b) << "hi of bucket " << b;
    EXPECT_EQ(obs::Histogram::bucket_of(hi) + 1,
              obs::Histogram::bucket_of(hi + 1))
        << "buckets must tile contiguously at " << hi;
  }
  // The full u64 range lands inside the bucket array.
  EXPECT_LT(obs::Histogram::bucket_of(~std::uint64_t{0}),
            obs::HistogramSnapshot::kBuckets);
}

TEST(Histogram, SnapshotCountsSumMax) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(100);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 104u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.buckets[0], 1u);  // the zero
  EXPECT_EQ(s.buckets[1], 1u);  // 1
  EXPECT_EQ(s.buckets[2], 1u);  // 3
  EXPECT_EQ(s.buckets[7], 1u);  // 100 in [64, 127]
  EXPECT_DOUBLE_EQ(s.mean(), 26.0);
}

TEST(Histogram, QuantileInterpolatesInsideBucket) {
  obs::Histogram h;
  h.record(100);  // single value: bucket 7 spans [64, 127], max clamps to 100
  const obs::HistogramSnapshot s = h.snapshot();
  // rank = q*1 inside the only bucket; lo 64, hi clamped to the observed
  // max 100 — so quantiles interpolate along [64, 100].
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 64.0 + 0.5 * (100.0 - 64.0));
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 64.0);
}

TEST(Histogram, QuantileWalksCumulativeRanks) {
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.record(1);   // bucket 1, degenerate [1,1]
  for (int i = 0; i < 10; ++i) h.record(1u << 20);  // bucket 21
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  // p50 lands well inside the 90-deep bucket of ones.
  EXPECT_DOUBLE_EQ(s.quantile(0.50), 1.0);
  // p99 lands in the top bucket, below its clamped upper edge (the max).
  const double p99 = s.quantile(0.99);
  EXPECT_GE(p99, static_cast<double>(obs::HistogramSnapshot::bucket_lo(21)));
  EXPECT_LE(p99, static_cast<double>(s.max));
  EXPECT_DOUBLE_EQ(s.quantile(1.0), static_cast<double>(s.max));
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  const obs::HistogramSnapshot s = obs::Histogram{}.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, SnapshotMergeAddsBucketwise) {
  obs::Histogram a, b;
  a.record(5);
  a.record(70);
  b.record(5);
  b.record(3000);
  obs::HistogramSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  EXPECT_EQ(m.count, 4u);
  EXPECT_EQ(m.sum, 5u + 70u + 5u + 3000u);
  EXPECT_EQ(m.max, 3000u);
  EXPECT_EQ(m.buckets[obs::Histogram::bucket_of(5)], 2u);
  EXPECT_EQ(m.buckets[obs::Histogram::bucket_of(70)], 1u);
  EXPECT_EQ(m.buckets[obs::Histogram::bucket_of(3000)], 1u);
}

TEST(Histogram, ResetZeroesEverything) {
  obs::Histogram h;
  h.record(42);
  h.reset();
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
}

// ------------------------------------------------------------- counters ----

TEST(Counter, SingleThreadExact) {
  obs::Counter c;
  for (int i = 0; i < 1000; ++i) c.add(3);
  EXPECT_EQ(c.value(), 3000u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, CrossThreadMergeIsDeterministic) {
  // The striped cells must sum to exactly threads*iters*delta once every
  // writer has joined (the join is the happens-before edge that makes the
  // relaxed cell loads exact).
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  obs::Counter c;
  for (int round = 0; round < 3; ++round) {
    c.reset();
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      writers.emplace_back([&c] {
        for (int i = 0; i < kIters; ++i) c.add(2);
      });
    for (auto& w : writers) w.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters * 2)
        << "round " << round;
  }
}

TEST(Gauge, SetAddReset) {
  obs::Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// ------------------------------------------------------------- registry ----

TEST(Registry, SameNameSameInstrument) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("nyqmon_selftest_reg_total");
  obs::Counter& b = reg.counter("nyqmon_selftest_reg_total");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(reg.counter_value("nyqmon_selftest_reg_total"), b.value());
}

TEST(Registry, UnregisteredNamesReadAsZero) {
  obs::Registry& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter_value("nyqmon_selftest_never_registered_total"), 0u);
  EXPECT_EQ(reg.histogram_snapshot("nyqmon_selftest_never_registered_ns")
                .count,
            0u);
}

TEST(Registry, PrometheusExposition) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("nyqmon_selftest_frames_total").add(7);
  reg.gauge("nyqmon_selftest_backlog_bytes").set(123);
  reg.histogram("nyqmon_selftest_latency_ns").record(100);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE nyqmon_selftest_frames_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nyqmon_selftest_backlog_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("nyqmon_selftest_backlog_bytes 123"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nyqmon_selftest_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("nyqmon_selftest_latency_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("nyqmon_selftest_latency_ns_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("nyqmon_selftest_latency_ns_max 100"),
            std::string::npos);
}

// ---------------------------------------------------------------- traces ----

TEST(Trace, RingWraparoundKeepsNewestAndCountsDrops) {
  obs::TraceRecorder rec(/*ring_capacity=*/8);
  rec.set_enabled(true);
  for (std::uint64_t i = 0; i < 18; ++i)
    rec.record("ev", "test", /*ts_ns=*/i, /*dur_ns=*/1);
  EXPECT_EQ(rec.dropped(), 10u);
  const std::vector<obs::TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 8u);
  // The ring overwrote the oldest: what's left is ts 10..17, in order.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].ts_ns, 10 + i);
}

TEST(Trace, DrainConsumesAndMergesAcrossThreads) {
  obs::TraceRecorder rec(64);
  rec.set_enabled(true);
  std::thread other([&rec] { rec.record("other", "test", 5, 1); });
  other.join();
  rec.record("main", "test", 2, 1);
  const std::vector<obs::TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 2u);
  // Merged in timestamp order, with distinct per-thread ids.
  EXPECT_STREQ(events[0].name, "main");
  EXPECT_STREQ(events[1].name, "other");
  EXPECT_NE(events[0].tid, events[1].tid);
  // Consuming: a second drain sees an empty window.
  EXPECT_TRUE(rec.drain().empty());
}

TEST(Trace, DisabledRecordsNothing) {
  obs::TraceRecorder rec(8);
  rec.record("ev", "test", 1, 1);
  EXPECT_TRUE(rec.drain().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, ScopedSpanWritesToGlobalRecorder) {
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  rec.drain();  // discard anything earlier tests left behind
  rec.set_enabled(true);
  {
    obs::ScopedSpan span("obs_test_span", "test");
  }
  rec.set_enabled(false);
  const std::vector<obs::TraceEvent> events = rec.drain();
  const auto it =
      std::find_if(events.begin(), events.end(), [](const obs::TraceEvent& e) {
        return std::string(e.name) == "obs_test_span";
      });
  ASSERT_NE(it, events.end());
  EXPECT_STREQ(it->category, "test");
}

TEST(Trace, ChromeJsonShape) {
  obs::TraceRecorder rec(16);
  rec.set_enabled(true);
  rec.record("span_a", "test", 1000, 2500);
  const std::string json = rec.export_chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // ns exported as fractional microseconds.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ------------------------------------------------------ structured logs ----

TEST(Log, RecordsCarryLevelEventAndDetail) {
  obs::LogRecorder rec(8);
  rec.log(obs::LogLevel::kWarn, "test.first", "k=1");
  rec.log(obs::LogLevel::kError, "test.second", "k=2 extra=yes");
  EXPECT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<obs::LogRecord> records = rec.drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_STREQ(records[0].event, "test.first");
  EXPECT_EQ(records[0].level, obs::LogLevel::kWarn);
  EXPECT_EQ(records[0].detail, "k=1");
  EXPECT_STREQ(records[1].event, "test.second");
  EXPECT_EQ(records[1].level, obs::LogLevel::kError);
  EXPECT_LE(records[0].ts_ns, records[1].ts_ns);  // merged in time order
  // Consuming: a second drain sees an empty window.
  EXPECT_TRUE(rec.drain().empty());
}

TEST(Log, RingOverflowKeepsNewestAndCountsDrops) {
  obs::LogRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.log(obs::LogLevel::kInfo, "test.overflow", "i=" + std::to_string(i));
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.recorded(), 10u);
  const std::vector<obs::LogRecord> records = rec.drain();
  ASSERT_EQ(records.size(), 4u);
  // The ring overwrote the oldest: what's left is i=6..9, in order.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(records[static_cast<std::size_t>(i)].detail,
              "i=" + std::to_string(6 + i));
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(obs::to_string(obs::LogLevel::kInfo), "info");
  EXPECT_STREQ(obs::to_string(obs::LogLevel::kWarn), "warn");
  EXPECT_STREQ(obs::to_string(obs::LogLevel::kError), "error");
}

TEST(Log, ExportTextFollowsNyqlogSchema) {
  obs::LogRecorder rec(8);
  rec.log(obs::LogLevel::kError, "test.export", "key=value");
  const std::string text = rec.export_text();
  EXPECT_EQ(text.rfind("nyqlog v1 records=1 dropped=0\n", 0), 0u) << text;
  EXPECT_NE(text.find("ts_ns="), std::string::npos);
  EXPECT_NE(text.find("level=error"), std::string::npos);
  EXPECT_NE(text.find("event=test.export"), std::string::npos);
  EXPECT_NE(text.find("tid="), std::string::npos);
  EXPECT_NE(text.find(" key=value\n"), std::string::npos);
  // Consuming: the next export is just the (record-free) header. The drop
  // counter is cumulative, not reset by draining.
  EXPECT_EQ(rec.export_text(), "nyqlog v1 records=0 dropped=0\n");
}

// ------------------------------------------------- TSan race targets -------

TEST(Concurrent, CountersHistogramsAndGauges) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        g.set(t);
        h.record(static_cast<std::uint64_t>(i));
        if ((i & 1023) == 0) {
          (void)c.value();
          (void)h.snapshot();  // racy reads are part of the contract
        }
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : s.buckets) bucketed += b;
  EXPECT_EQ(bucketed, s.count);
}

TEST(Concurrent, TraceRecordVersusDrain) {
  obs::TraceRecorder rec(128);
  rec.set_enabled(true);
  constexpr int kWriters = 3;
  constexpr int kIters = 5000;
  std::atomic<bool> stop{false};
  std::vector<obs::TraceEvent> drained;
  std::thread drainer([&] {
    while (!stop.load()) {
      std::vector<obs::TraceEvent> batch = rec.drain();
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&rec] {
      for (int i = 0; i < kIters; ++i)
        rec.record("w", "test", static_cast<std::uint64_t>(i), 1);
    });
  for (auto& w : writers) w.join();
  stop.store(true);
  drainer.join();
  std::vector<obs::TraceEvent> tail = rec.drain();
  // Every recorded event was either drained, still buffered, or dropped.
  EXPECT_EQ(drained.size() + tail.size() + rec.dropped(),
            static_cast<std::uint64_t>(kWriters) * kIters);
}

TEST(Concurrent, TraceDrainsAreSerializedAndDisjoint) {
  // Two drainers race three writers. Whole drains are serialized
  // (drain_mu_), so concurrent batches are disjoint and their union
  // accounts for every event exactly once — unique per-event timestamps
  // make any duplication or loss detectable.
  obs::TraceRecorder rec(8192);
  rec.set_enabled(true);
  constexpr int kWriters = 3;
  constexpr int kIters = 4000;  // < per-thread ring capacity: no drops
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<std::uint64_t> seen;
  const auto drain_into = [&] {
    while (!stop.load()) {
      const std::vector<obs::TraceEvent> batch = rec.drain();
      std::lock_guard<std::mutex> lock(mu);
      for (const obs::TraceEvent& e : batch) seen.push_back(e.ts_ns);
    }
  };
  std::thread d1(drain_into);
  std::thread d2(drain_into);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < kIters; ++i)
        rec.record("w", "test",
                   static_cast<std::uint64_t>(t) * 1000000 +
                       static_cast<std::uint64_t>(i),
                   1);
    });
  for (auto& w : writers) w.join();
  stop.store(true);
  d1.join();
  d2.join();
  for (const obs::TraceEvent& e : rec.drain()) seen.push_back(e.ts_ns);

  EXPECT_EQ(rec.dropped(), 0u);
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kWriters) * kIters);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "a concurrent drain duplicated an event";
}

TEST(Concurrent, LogRecordVersusDrain) {
  obs::LogRecorder rec(8192);
  constexpr int kWriters = 3;
  constexpr int kIters = 3000;
  std::atomic<bool> stop{false};
  std::size_t drained = 0;
  std::thread drainer([&] {
    while (!stop.load()) drained += rec.drain().size();
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&rec] {
      for (int i = 0; i < kIters; ++i)
        rec.log(obs::LogLevel::kInfo, "test.race", "i=" + std::to_string(i));
    });
  for (auto& w : writers) w.join();
  stop.store(true);
  drainer.join();
  const std::size_t tail = rec.drain().size();
  // Every record was either drained, still buffered, or dropped.
  EXPECT_EQ(drained + tail + rec.dropped(),
            static_cast<std::uint64_t>(kWriters) * kIters);
  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(kWriters) * kIters);
}
