// Section 3.2 headline numbers:
//   "In total, we studied 1613 metric and device pairs (14 distinct
//    metrics). Of these, 89% were sampling at higher than their Nyquist
//    rate." ... "the existing sampling rate is below the Nyquist rate ...
//    in about 11% of the metric-device pairs" ... "in 20% of the examples
//    the sampling rate can be reduced by a factor of 1000x" ...
//    "for the temperature signal, the Nyquist rate ranges from
//    7.99e-7 Hz to 0.003 Hz".
#include <cstdio>

#include "analysis/cdf.h"
#include "common.h"
#include "signal/stats.h"
#include "util/ascii.h"
#include "util/csv.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Section 3.2 headline statistics ===\n\n");

  const auto audit = bench::run_paper_audit();

  std::vector<double> all_ratios;
  for (const auto& p : audit.pairs)
    if (p.reduction_ratio) all_ratios.push_back(*p.reduction_ratio);
  const ana::Cdf ratio_cdf(all_ratios);

  const auto temp_it = audit.by_metric.find(tel::MetricKind::kTemperature);
  double temp_min = 0.0, temp_max = 0.0;
  if (temp_it != audit.by_metric.end() &&
      !temp_it->second.nyquist_rates_hz.empty()) {
    const auto s = sig::summarize(temp_it->second.nyquist_rates_hz);
    temp_min = s.min;
    temp_max = s.max;
  }

  AsciiTable table({"statistic", "paper", "measured"});
  char buf[64];
  table.row({"metric-device pairs", "1613", std::to_string(audit.total_pairs())});
  table.row({"distinct metrics", "14", std::to_string(audit.by_metric.size())});
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * audit.fraction_oversampled());
  table.row({"sampling above Nyquist rate", "89%", buf});
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * audit.fraction_undersampled());
  table.row({"sampling below Nyquist rate", "~11%", buf});
  std::snprintf(buf, sizeof buf, "%.1f%%",
                100.0 * (1.0 - ratio_cdf.fraction_at(1000.0)));
  table.row({"reducible by >= 1000x", "~20%", buf});
  std::snprintf(buf, sizeof buf, "%.3g Hz", temp_min);
  table.row({"temperature Nyquist min", "7.99e-7 Hz", buf});
  std::snprintf(buf, sizeof buf, "%.3g Hz", temp_max);
  table.row({"temperature Nyquist max", "0.003 Hz", buf});

  std::printf("%s\n", table.render().c_str());

  // Fleet-wide resource bill at current vs Nyquist rates (one day).
  const double day = 86400.0;
  const auto current = audit.current_cost(day);
  const auto nyquist = audit.nyquist_cost(day);
  std::printf("One day of fleet monitoring at current rates:  %s\n",
              to_string(current).c_str());
  std::printf("One day at estimated Nyquist rates:            %s\n",
              to_string(nyquist).c_str());
  std::printf("Overall storage reduction: %.1fx\n",
              current.storage_bytes / std::max(1.0, nyquist.storage_bytes));

  CsvWriter csv(bench::csv_path("table_headline_stats"),
                {"statistic", "value"});
  csv.row({"pairs", std::to_string(audit.total_pairs())});
  csv.row({"fraction_oversampled",
           CsvWriter::format_double(audit.fraction_oversampled())});
  csv.row({"fraction_undersampled",
           CsvWriter::format_double(audit.fraction_undersampled())});
  csv.row({"fraction_reducible_1000x",
           CsvWriter::format_double(1.0 - ratio_cdf.fraction_at(1000.0))});
  csv.row({"temperature_nyquist_min_hz", CsvWriter::format_double(temp_min)});
  csv.row({"temperature_nyquist_max_hz", CsvWriter::format_double(temp_max)});
  csv.row({"storage_reduction_x",
           CsvWriter::format_double(current.storage_bytes /
                                    std::max(1.0, nyquist.storage_bytes))});
  return 0;
}
