// Fleet audit — the paper's Section 3.2 study as a reusable harness.
//
// For every metric-device pair in a fleet the audit:
//   1. polls the pair's ground-truth signal at the production interval,
//      with jitter, dropped polls, measurement noise and quantization;
//   2. pre-cleans the trace onto a uniform grid (nearest-neighbour
//      re-sampling, as in the paper);
//   3. runs the NyquistEstimator and classifies the pair as over-sampled /
//      under-sampled / at-rate / unknown;
//   4. records the possible reduction ratio (current rate / Nyquist rate).
//
// The result feeds Figure 1 (fraction of devices above the Nyquist rate per
// metric), Figure 4 (per-metric reduction-ratio CDFs), Figure 5 (per-metric
// Nyquist-rate box plots) and the Section 3.2 headline numbers.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "monitor/cost_model.h"
#include "nyquist/estimator.h"
#include "nyquist/reduction.h"
#include "telemetry/fleet.h"
#include "telemetry/poller.h"

namespace nyqmon::mon {

struct AuditConfig {
  /// Poller imperfections layered on top of each metric's own interval and
  /// quantization step.
  double jitter_frac = 0.05;
  double drop_prob = 0.005;
  /// Measurement noise as a fraction of the metric's fluctuation scale.
  double relative_noise = 0.01;
  nyq::EstimatorConfig estimator = [] {
    nyq::EstimatorConfig cfg;
    // Paper-faithful: the FFT is taken over the raw trace, DC included
    // ("compute the FFT and the total energy"). For quiet devices the DC
    // bin alone covers the 99% budget and the estimate collapses to the
    // resolution floor 2/T -- which is precisely how the paper's minimum
    // temperature Nyquist rate of 7.99e-7 Hz arises from a ~29-day trace.
    cfg.detrend = nyq::DetrendMode::kNone;
    return cfg;
  }();
  std::uint64_t seed = 7;
  /// Worker threads for the per-pair work (0 = hardware concurrency).
  /// Results are bit-identical regardless of thread count: every pair's
  /// random stream is forked from the seed sequentially before the fan-out.
  std::size_t threads = 0;
};

/// Outcome for one metric-device pair.
struct AuditPairResult {
  tel::MetricKind kind;
  std::string device_name;
  double poll_rate_hz = 0.0;
  double true_bandwidth_hz = 0.0;  ///< ground truth (unknowable in prod)
  nyq::NyquistEstimate estimate;
  nyq::SamplingClass sampling_class = nyq::SamplingClass::kUnknown;
  std::optional<double> reduction_ratio;
};

/// Aggregates per metric.
struct MetricAudit {
  tel::MetricKind kind;
  std::size_t pairs = 0;
  std::size_t oversampled = 0;
  std::size_t undersampled = 0;
  std::size_t at_rate = 0;
  std::size_t unknown = 0;
  std::vector<double> reduction_ratios;  ///< only Ok estimates
  std::vector<double> nyquist_rates_hz;  ///< only Ok estimates

  double fraction_oversampled() const;
};

struct AuditResult {
  std::vector<AuditPairResult> pairs;
  std::map<tel::MetricKind, MetricAudit> by_metric;

  std::size_t total_pairs() const { return pairs.size(); }
  double fraction_oversampled() const;
  double fraction_undersampled() const;
  /// Fraction of Ok pairs whose reduction ratio is >= x.
  double fraction_reducible_by(double x) const;
  /// Current vs Nyquist-rate storage bill across the fleet.
  Cost current_cost(double duration_s, const CostModel& model = {}) const;
  Cost nyquist_cost(double duration_s, const CostModel& model = {}) const;
};

/// Run the audit over a fleet.
AuditResult run_audit(const tel::Fleet& fleet, const AuditConfig& config = {});

}  // namespace nyqmon::mon
