#include "signal/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nyqmon::sig {

double mean(std::span<const double> x) {
  NYQMON_CHECK(!x.empty());
  double sum = 0.0;
  for (double v : x) sum += v;
  return sum / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  NYQMON_CHECK(!x.empty());
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double min_value(std::span<const double> x) {
  NYQMON_CHECK(!x.empty());
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  NYQMON_CHECK(!x.empty());
  return *std::max_element(x.begin(), x.end());
}

double quantile(std::span<const double> x, double q) {
  NYQMON_CHECK(!x.empty());
  NYQMON_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> x) {
  NYQMON_CHECK(!x.empty());
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  auto q_of_sorted = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - std::floor(pos);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.q1 = q_of_sorted(0.25);
  s.median = q_of_sorted(0.5);
  s.q3 = q_of_sorted(0.75);
  s.max = sorted.back();
  s.mean = mean(x);
  return s;
}

}  // namespace nyqmon::sig
