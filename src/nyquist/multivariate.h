// Multivariate signals (paper Section 6, "Multivariate signals").
//
// "Many applications may monitor and use multiple different signals. The
//  correlation and joint distribution of these signals may be important to
//  such applications. As long as we sample each individual signal at a rate
//  higher than its Nyquist rate, we can recover the original signal and
//  preserve any correlations."
//
// MultivariateNyquistEstimator runs the Section 3.2 estimator per component
// and derives the joint sampling plan: either per-component rates (cheapest)
// or one common rate (simplest collector). Correlation utilities quantify
// whether a downsample/reconstruct round trip preserved the cross-signal
// structure — the property the paper argues is retained above Nyquist.
#pragma once

#include <vector>

#include "nyquist/estimator.h"
#include "signal/timeseries.h"

namespace nyqmon::nyq {

/// Result of analysing a bundle of equally-sampled component traces.
struct MultivariateEstimate {
  std::vector<NyquistEstimate> components;
  /// Highest component Nyquist rate (the common-rate plan); -1 when any
  /// component is aliased (the bundle cannot be certified).
  double common_nyquist_rate_hz = -1.0;
  /// Sum over components of per-component rates vs components * common
  /// rate: the saving from rate-per-component collection.
  double per_component_samples_per_s = 0.0;
  double common_rate_samples_per_s = 0.0;

  bool all_ok() const;
};

class MultivariateNyquistEstimator {
 public:
  explicit MultivariateNyquistEstimator(EstimatorConfig config = {});

  /// All traces must share the same sampling rate and length.
  MultivariateEstimate estimate(
      const std::vector<sig::RegularSeries>& traces) const;

 private:
  NyquistEstimator estimator_;
};

/// Pearson correlation coefficient of two equal-length sequences.
/// Returns 0 when either input is constant.
double pearson_correlation(std::span<const double> a,
                           std::span<const double> b);

/// Full correlation matrix of a bundle (rows = components).
std::vector<std::vector<double>> correlation_matrix(
    const std::vector<sig::RegularSeries>& traces);

/// Largest absolute entry-wise difference between two correlation matrices
/// — the "correlation distortion" of a monitoring scheme.
double correlation_distortion(
    const std::vector<std::vector<double>>& before,
    const std::vector<std::vector<double>>& after);

}  // namespace nyqmon::nyq
