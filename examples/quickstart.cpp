// Quickstart: the 60-second tour of nyqmon's public API.
//
//   1. Take a monitoring trace (here: a synthetic link-utilization signal
//      polled every 30 s, with jitter and quantization, like a real
//      collector would produce).
//   2. Pre-clean it onto a uniform grid (nearest-neighbour re-sampling).
//   3. Estimate its Nyquist rate with the 99%-energy rule.
//   4. Downsample to the estimated rate and reconstruct, to see how little
//      was lost.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "nyquist/estimator.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "signal/preclean.h"
#include "telemetry/poller.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;

  // --- 1. a day of telemetry from one "device" -------------------------
  Rng rng(2021);
  const auto link_util = sig::make_bandlimited_process(
      /*bandwidth_hz=*/1e-3, /*rms=*/12.0, /*n_tones=*/32, rng,
      /*dc_offset=*/40.0);

  tel::PollerConfig poller;
  poller.interval_s = 30.0;        // the operator's ad-hoc choice
  poller.jitter_frac = 0.05;       // real pollers are not metronomes
  poller.quantization_step = 1.0;  // readings are integer percent
  const sig::TimeSeries raw = tel::poll(*link_util, 0.0, 86400.0, poller, rng);
  std::printf("collected %zu samples over one day (every %.0f s)\n",
              raw.size(), poller.interval_s);

  // --- 2. pre-clean onto a uniform grid --------------------------------
  sig::PrecleanConfig clean;
  clean.dt = poller.interval_s;
  const sig::RegularSeries trace = sig::regularize(raw, clean);

  // --- 3. estimate the Nyquist rate ------------------------------------
  const nyq::NyquistEstimator estimator;  // 99%-energy rule, Hann window
  const nyq::NyquistEstimate estimate = estimator.estimate(trace);
  if (!estimate.ok()) {
    std::printf("estimator verdict: %s — cannot quantify the opportunity\n",
                to_string(estimate.verdict).c_str());
    return 1;
  }
  std::printf("estimated Nyquist rate: %.3g Hz (true band limit: %.3g Hz)\n",
              estimate.nyquist_rate_hz, link_util->bandwidth_hz());
  std::printf("possible reduction: %.1fx fewer samples\n",
              estimate.reduction_ratio());

  // --- 4. prove it: downsample to the estimate, reconstruct, compare ---
  const double target = 1.5 * estimate.nyquist_rate_hz;  // keep headroom
  const auto factor = static_cast<std::size_t>(
      trace.sample_rate_hz() / target);
  const sig::RegularSeries recon = rec::round_trip(trace, factor);
  std::printf("after a %zux downsample, reconstruction NRMSE = %.4f\n",
              factor, rec::nrmse(trace.span(), recon.span()));
  std::printf("=> the same dashboard, at ~1/%zu the monitoring bill.\n",
              factor);
  return 0;
}
