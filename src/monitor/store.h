// Nyquist-aware retention store.
//
// "In some cases, the actual measurement may be inexpensive relative to the
//  cost to store the metric or the cost of downstream analysis; in such
//  cases, we can use the above techniques a posteriori, i.e., measure at a
//  high rate, compute the nyquist rate over the measurements and store or
//  present for later analysis only the measurements that are re-sampled at
//  the lower nyquist rate." (paper Section 4, opening)
//
// RetentionStore implements exactly that policy: streams are ingested at
// the (high) collection rate into a bounded hot buffer; when a chunk of the
// hot buffer seals, the store estimates its Nyquist rate and persists the
// chunk re-sampled at headroom * that rate (falling back to the raw rate
// when the estimate is unusable). Queries reconstruct any time range back
// onto the collection grid by band-limited interpolation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "monitor/cost_model.h"
#include "nyquist/estimator.h"
#include "signal/timeseries.h"

namespace nyqmon::mon {

struct StoreConfig {
  /// Samples per sealed chunk (the unit of re-sampling decisions).
  std::size_t chunk_samples = 512;
  /// Rate headroom kept above the estimated Nyquist rate.
  double headroom = 1.5;
  nyq::EstimatorConfig estimator;
  CostModel cost;
};

struct StreamStats {
  std::size_t ingested_samples = 0;
  std::size_t stored_samples = 0;  ///< after re-sampling (sealed chunks)
  std::size_t chunks = 0;
  std::size_t chunks_reduced = 0;  ///< chunks stored below the raw rate

  double reduction() const {
    return stored_samples == 0
               ? 1.0
               : static_cast<double>(ingested_samples) /
                     static_cast<double>(stored_samples);
  }
};

class RetentionStore {
 public:
  explicit RetentionStore(StoreConfig config = {});

  /// Create a stream ingesting at `collection_rate_hz` starting at t0.
  /// Stream names must be unique.
  void create_stream(const std::string& name, double collection_rate_hz,
                     double t0 = 0.0);

  /// Append the next reading of a stream (readings arrive in grid order).
  void append(const std::string& name, double value);

  /// Reconstruct [t_begin, t_end) on the stream's collection grid from
  /// whatever the store kept (sealed chunks re-sampled, the hot tail raw).
  sig::RegularSeries query(const std::string& name, double t_begin,
                           double t_end) const;

  StreamStats stats(const std::string& name) const;

  /// Storage bill for everything currently persisted (sealed + hot).
  Cost storage_cost() const;

  std::size_t streams() const { return streams_.size(); }

 private:
  struct Chunk {
    double t0 = 0.0;
    double dt = 0.0;
    std::vector<double> values;
  };
  struct Stream {
    double collection_rate_hz = 0.0;
    double t0 = 0.0;
    std::size_t ingested = 0;
    std::vector<double> hot;  ///< unsealed tail, at the collection rate
    double hot_t0 = 0.0;
    std::vector<Chunk> chunks;
    StreamStats stats;
  };

  void seal_chunk(Stream& stream);
  const Stream& stream(const std::string& name) const;

  StoreConfig config_;
  std::map<std::string, Stream> streams_;
};

}  // namespace nyqmon::mon
