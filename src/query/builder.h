// QueryBuilder — fluent construction of QuerySpec.
//
// Raw QuerySpec struct fills scatter field defaults and validation across
// every call site; the builder makes the common path read in query order
// (selector → range → align → transform → aggregate → flags) and funnels
// everything through QuerySpec::validate() at build() time. The builder is
// sugar only: build() returns a plain QuerySpec, so a built spec and a
// hand-filled spec with the same fields canonicalize to the same
// canonical_key() and share one result cache entry. QuerySpec itself stays
// the wire type (server/protocol.h encode_query) — the builder never
// appears on the wire.
//
//   const qry::QuerySpec spec = qry::QueryBuilder()
//                                   .select("rack*/cpu_util")
//                                   .range(0.0, 60.0)
//                                   .align(0.5)
//                                   .transform(qry::Transform::kRate)
//                                   .aggregate(qry::Aggregation::kP95)
//                                   .build();
//
// The request flags (want_matched / want_explain) ride along for callers
// that hand the whole builder to NyqmonClient::query(builder) — they are
// wire-request options, not part of the spec, and do not affect the
// canonical key.
#pragma once

#include <cstdint>
#include <utility>

#include "query/spec.h"

namespace nyqmon::qry {

class QueryBuilder {
 public:
  /// Glob over stream IDs, e.g. "rack3-*/temperature" (query/selector.h).
  QueryBuilder& select(std::string selector) {
    spec_.selector = std::move(selector);
    return *this;
  }

  /// Half-open query range [t_begin, t_end), seconds.
  QueryBuilder& range(double t_begin, double t_end) {
    spec_.t_begin = t_begin;
    spec_.t_end = t_end;
    return *this;
  }

  /// Output alignment grid step (seconds); every matched stream is
  /// reconstructed onto t_begin + i * step_s.
  QueryBuilder& align(double step_s) {
    spec_.step_s = step_s;
    return *this;
  }

  /// Per-stream transform after alignment (default Transform::kRaw).
  QueryBuilder& transform(Transform t) {
    spec_.transform = t;
    return *this;
  }

  /// Cross-stream aggregation (default Aggregation::kNone).
  QueryBuilder& aggregate(Aggregation a) {
    spec_.aggregate = a;
    return *this;
  }

  /// Ask the reply to carry the matched stream IDs (kQueryWantMatched).
  QueryBuilder& want_matched(bool on = true) {
    want_matched_ = on;
    return *this;
  }

  /// Ask the reply to carry the per-stage latency breakdown
  /// (kQueryWantExplain).
  QueryBuilder& want_explain(bool on = true) {
    want_explain_ = on;
    return *this;
  }

  /// Validate and return the spec. Throws std::invalid_argument exactly
  /// like QuerySpec::validate() on a malformed spec.
  QuerySpec build() const {
    spec_.validate();
    return spec_;
  }

  /// The spec as filled so far, unvalidated (tests poke at partial specs).
  const QuerySpec& peek() const { return spec_; }

  bool matched_wanted() const { return want_matched_; }
  bool explain_wanted() const { return want_explain_; }

  /// The QUERY request flag byte these options encode to. Bit values match
  /// server/protocol.h (kQueryWantMatched = 0x01, kQueryWantExplain = 0x02);
  /// server_test pins the equivalence.
  std::uint8_t wire_flags() const {
    return static_cast<std::uint8_t>((want_matched_ ? 0x01 : 0) |
                                     (want_explain_ ? 0x02 : 0));
  }

 private:
  QuerySpec spec_;
  bool want_matched_ = false;
  bool want_explain_ = false;
};

}  // namespace nyqmon::qry
