#include "nyquist/multivariate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nyqmon::nyq {

bool MultivariateEstimate::all_ok() const {
  return !components.empty() &&
         std::all_of(components.begin(), components.end(),
                     [](const NyquistEstimate& e) { return e.ok(); });
}

MultivariateNyquistEstimator::MultivariateNyquistEstimator(
    EstimatorConfig config)
    : estimator_(config) {}

MultivariateEstimate MultivariateNyquistEstimator::estimate(
    const std::vector<sig::RegularSeries>& traces) const {
  NYQMON_CHECK_MSG(!traces.empty(), "empty signal bundle");
  const double rate = traces.front().sample_rate_hz();
  const std::size_t n = traces.front().size();
  for (const auto& t : traces) {
    NYQMON_CHECK_MSG(std::abs(t.sample_rate_hz() - rate) < 1e-12 * rate,
                     "bundle components must share a sampling rate");
    NYQMON_CHECK_MSG(t.size() == n, "bundle components must share a length");
  }

  MultivariateEstimate out;
  out.components.reserve(traces.size());
  double common = 0.0;
  bool certified = true;
  for (const auto& t : traces) {
    NyquistEstimate e = estimator_.estimate(t);
    if (e.ok()) {
      common = std::max(common, e.nyquist_rate_hz);
      out.per_component_samples_per_s += e.nyquist_rate_hz;
    } else if (e.verdict == NyquistEstimate::Verdict::kFlat) {
      // A flat component imposes no rate requirement.
    } else {
      certified = false;
    }
    out.components.push_back(std::move(e));
  }
  if (certified && common > 0.0) {
    out.common_nyquist_rate_hz = common;
    out.common_rate_samples_per_s =
        common * static_cast<double>(traces.size());
  }
  return out;
}

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) {
  NYQMON_CHECK(a.size() == b.size());
  NYQMON_CHECK(a.size() >= 2);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<std::vector<double>> correlation_matrix(
    const std::vector<sig::RegularSeries>& traces) {
  NYQMON_CHECK(!traces.empty());
  const std::size_t k = traces.size();
  std::vector<std::vector<double>> m(k, std::vector<double>(k, 1.0));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double r = pearson_correlation(traces[i].span(), traces[j].span());
      m[i][j] = m[j][i] = r;
    }
  }
  return m;
}

double correlation_distortion(
    const std::vector<std::vector<double>>& before,
    const std::vector<std::vector<double>>& after) {
  NYQMON_CHECK(before.size() == after.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    NYQMON_CHECK(before[i].size() == after[i].size());
    for (std::size_t j = 0; j < before[i].size(); ++j)
      worst = std::max(worst, std::abs(before[i][j] - after[i][j]));
  }
  return worst;
}

}  // namespace nyqmon::nyq
