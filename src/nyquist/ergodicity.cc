#include "nyquist/ergodicity.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nyqmon::nyq {

ErgodicityAnalyzer::ErgodicityAnalyzer(ErgodicityConfig config)
    : config_(config) {
  NYQMON_CHECK(config_.mean_tolerance_sigmas > 0.0);
  NYQMON_CHECK(config_.ensemble_instants >= 2);
}

ErgodicityReport ErgodicityAnalyzer::analyze(
    const std::vector<sig::RegularSeries>& fleet) const {
  NYQMON_CHECK_MSG(fleet.size() >= 2, "need at least two devices");
  const std::size_t n = fleet.front().size();
  NYQMON_CHECK(n >= 2);
  for (const auto& t : fleet) {
    NYQMON_CHECK_MSG(t.size() == n, "traces must share a length");
    NYQMON_CHECK_MSG(std::abs(t.dt() - fleet.front().dt()) < 1e-12,
                     "traces must share a grid");
  }

  ErgodicityReport report;

  // Ensemble statistics: every device's reading at a spread of instants.
  std::vector<double> ensemble_samples;
  const std::size_t instants = std::min(config_.ensemble_instants, n);
  ensemble_samples.reserve(fleet.size() * instants);
  for (std::size_t k = 0; k < instants; ++k) {
    const std::size_t idx = k * (n - 1) / (instants - 1);
    for (const auto& device : fleet) ensemble_samples.push_back(device[idx]);
  }
  report.ensemble = sig::summarize(ensemble_samples);
  const double sigma = sig::stddev(ensemble_samples);
  const double tol = config_.mean_tolerance_sigmas * std::max(sigma, 1e-300);

  // Per-device time means over the full window.
  report.device_time_means.reserve(fleet.size());
  std::size_t converged = 0;
  for (const auto& device : fleet) {
    const double m = sig::mean(device.span());
    report.device_time_means.push_back(m);
    if (std::abs(m - report.ensemble.mean) <= tol) ++converged;
  }
  report.converged_fraction =
      static_cast<double>(converged) / static_cast<double>(fleet.size());

  // Convergence horizon: running prefix means per device; the first prefix
  // length at which >= 90% of devices agree with the ensemble mean.
  std::vector<double> running_sum(fleet.size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t agree = 0;
    for (std::size_t d = 0; d < fleet.size(); ++d) {
      running_sum[d] += fleet[d][i];
      const double prefix_mean = running_sum[d] / static_cast<double>(i + 1);
      if (std::abs(prefix_mean - report.ensemble.mean) <= tol) ++agree;
    }
    if (static_cast<double>(agree) >=
        0.9 * static_cast<double>(fleet.size())) {
      report.convergence_horizon_s =
          static_cast<double>(i + 1) * fleet.front().dt();
      break;
    }
  }
  return report;
}

}  // namespace nyqmon::nyq
