#include "telemetry/poller.h"

#include <cmath>

#include "util/check.h"

namespace nyqmon::tel {

sig::TimeSeries poll(const sig::ContinuousSignal& signal, double t0,
                     double duration_s, const PollerConfig& config, Rng& rng) {
  NYQMON_CHECK(config.interval_s > 0.0);
  NYQMON_CHECK(config.jitter_frac >= 0.0 && config.jitter_frac < 0.5);
  NYQMON_CHECK(config.drop_prob >= 0.0 && config.drop_prob < 1.0);
  NYQMON_CHECK(duration_s >= 2.0 * config.interval_s);

  const std::size_t n = static_cast<std::size_t>(
      std::floor(duration_s / config.interval_s));

  sig::TimeSeries trace;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(config.drop_prob)) continue;  // lost poll
    double t = t0 + static_cast<double>(i) * config.interval_s;
    if (config.jitter_frac > 0.0) {
      t += rng.uniform(-config.jitter_frac, config.jitter_frac) *
           config.interval_s;
    }
    double v = signal.value(t);
    if (config.noise_stddev > 0.0) v += rng.normal(0.0, config.noise_stddev);
    if (config.quantization_step > 0.0) {
      v = dsp::Quantizer(config.quantization_step).apply(v);
    }
    trace.push(t, v);
  }
  // Ensure the trace is non-degenerate even under unlucky drop sequences:
  // re-poll the first and last nominal slots if everything was dropped.
  if (trace.size() < 2) {
    trace.push(t0, signal.value(t0));
    const double t_end = t0 + static_cast<double>(n - 1) * config.interval_s;
    trace.push(t_end, signal.value(t_end));
  }
  return trace;
}

}  // namespace nyqmon::tel
