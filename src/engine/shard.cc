#include "engine/shard.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/parallel.h"

namespace nyqmon::eng {

std::vector<Shard> partition_shards(std::size_t n_pairs,
                                    std::size_t n_shards) {
  n_shards = std::clamp<std::size_t>(n_shards, 1,
                                     std::max<std::size_t>(n_pairs, 1));
  std::vector<Shard> shards(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards[s].id = s;
    shards[s].pair_indices.reserve(n_pairs / n_shards + 1);
  }
  for (std::size_t i = 0; i < n_pairs; ++i)
    shards[i % n_shards].pair_indices.push_back(i);
  return shards;
}

ShardRunStats run_sharded(const std::vector<Shard>& shards,
                          const ShardRunOptions& options,
                          const std::function<void(std::size_t)>& pair_fn) {
  ShardRunStats stats;
  stats.workers_used = resolve_workers(options.workers, shards.size());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> shards_left{shards.size()};
  std::atomic<std::size_t> pinned{0};
  std::exception_ptr error;
  std::mutex agg_mu;  // guards `error` and `stats.arena`

  auto worker_loop = [&](std::size_t worker_idx) {
    if (options.pin_threads && pin_this_thread(worker_idx))
      pinned.fetch_add(1, std::memory_order_relaxed);
    // One arena per worker thread, alive for the whole claim loop: plans
    // and scratch warmed by the first pairs serve every later one.
    WorkArena arena(options.arena);
    while (true) {
      const std::size_t s = next.fetch_add(1);
      if (s >= shards.size()) break;
      NYQMON_OBS_COUNT("nyqmon_engine_shards_claimed_total", 1);
      NYQMON_OBS_GAUGE_SET(
          "nyqmon_engine_shard_queue_depth",
          static_cast<std::int64_t>(
              shards_left.fetch_sub(1, std::memory_order_relaxed) - 1));
      bool failed = false;
      for (const std::size_t i : shards[s].pair_indices) {
        arena.begin_pair();
        try {
          pair_fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(agg_mu);
          if (!error) error = std::current_exception();
          next.store(shards.size());  // stop other workers claiming
          failed = true;
        }
        arena.end_pair();
        if (failed) break;
      }
      if (failed) break;
    }
    std::lock_guard<std::mutex> lock(agg_mu);
    stats.arena += arena.stats();
  };

  if (stats.workers_used == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(stats.workers_used);
    for (std::size_t w = 0; w < stats.workers_used; ++w)
      pool.emplace_back(worker_loop, w);
    for (auto& t : pool) t.join();
  }
  stats.threads_pinned = pinned.load(std::memory_order_relaxed);
  if (error) std::rethrow_exception(error);
  return stats;
}

}  // namespace nyqmon::eng
