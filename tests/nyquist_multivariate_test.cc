// Multivariate estimation (paper Section 6): per-component Nyquist rates,
// the common-rate plan, and the central claim that sampling above Nyquist
// preserves cross-signal correlations.
#include <gtest/gtest.h>

#include <cmath>

#include "nyquist/multivariate.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using namespace nyqmon::nyq;
using nyqmon::sig::RegularSeries;
using nyqmon::sig::SumOfSines;
using nyqmon::sig::Tone;

std::vector<RegularSeries> two_tone_bundle() {
  const SumOfSines slow({{0.002, 1.0, 0.0}});
  const SumOfSines fast({{0.02, 1.0, 1.0}});
  return {slow.sample(0.0, 5.0, 8192), fast.sample(0.0, 5.0, 8192)};
}

TEST(Multivariate, PerComponentRates) {
  const auto bundle = two_tone_bundle();
  const auto est = MultivariateNyquistEstimator().estimate(bundle);
  ASSERT_EQ(est.components.size(), 2u);
  ASSERT_TRUE(est.all_ok());
  EXPECT_NEAR(est.components[0].nyquist_rate_hz, 0.004, 0.001);
  EXPECT_NEAR(est.components[1].nyquist_rate_hz, 0.04, 0.005);
}

TEST(Multivariate, CommonRateIsMaxComponent) {
  const auto bundle = two_tone_bundle();
  const auto est = MultivariateNyquistEstimator().estimate(bundle);
  EXPECT_NEAR(est.common_nyquist_rate_hz, 0.04, 0.005);
  // Per-component collection is cheaper than the common-rate plan.
  EXPECT_LT(est.per_component_samples_per_s, est.common_rate_samples_per_s);
}

TEST(Multivariate, AliasedComponentBlocksCertification) {
  Rng rng(3);
  const auto broadband = nyqmon::sig::make_bandlimited_process(
      5.0, 1.0, 64, rng, 0.0, nyqmon::sig::SpectralShape::kFlat);
  const SumOfSines slow({{0.002, 1.0, 0.0}});
  const std::vector<RegularSeries> bundle{
      slow.sample(0.0, 5.0, 2048), broadband->sample(0.0, 5.0, 2048)};
  const auto est = MultivariateNyquistEstimator().estimate(bundle);
  EXPECT_FALSE(est.all_ok());
  EXPECT_DOUBLE_EQ(est.common_nyquist_rate_hz, -1.0);
}

TEST(Multivariate, MismatchedBundlesThrow) {
  const SumOfSines s({{0.01, 1.0, 0.0}});
  const std::vector<RegularSeries> lengths{s.sample(0.0, 1.0, 128),
                                           s.sample(0.0, 1.0, 64)};
  EXPECT_THROW((void)MultivariateNyquistEstimator().estimate(lengths),
               std::invalid_argument);
  const std::vector<RegularSeries> rates{s.sample(0.0, 1.0, 128),
                                         s.sample(0.0, 2.0, 128)};
  EXPECT_THROW((void)MultivariateNyquistEstimator().estimate(rates),
               std::invalid_argument);
  EXPECT_THROW((void)MultivariateNyquistEstimator().estimate({}),
               std::invalid_argument);
}

TEST(Pearson, KnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(a, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, down), -1.0, 1e-12);
}

TEST(Pearson, ConstantInputGivesZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(a, flat), 0.0);
}

TEST(CorrelationMatrix, SymmetricWithUnitDiagonal) {
  Rng rng(4);
  std::vector<RegularSeries> bundle;
  for (int i = 0; i < 3; ++i) {
    const auto proc = nyqmon::sig::make_bandlimited_process(0.01, 1.0, 8, rng);
    bundle.push_back(proc->sample(0.0, 5.0, 512));
  }
  const auto m = correlation_matrix(bundle);
  ASSERT_EQ(m.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i][i], 1.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
      EXPECT_LE(std::abs(m[i][j]), 1.0 + 1e-12);
    }
  }
}

TEST(Multivariate, CorrelationsPreservedAboveNyquist) {
  // The paper's claim: per-component sampling above each component's
  // Nyquist rate preserves cross-correlations after reconstruction.
  // Build two strongly correlated signals (shared tone + private tones).
  const Tone shared{0.002, 1.0, 0.4};
  const SumOfSines a({shared, {0.0008, 0.5, 1.2}});
  const SumOfSines b({shared, {0.0035, 0.5, 2.1}});
  const std::vector<RegularSeries> dense{a.sample(0.0, 5.0, 8192),
                                         b.sample(0.0, 5.0, 8192)};
  const auto before = correlation_matrix(dense);

  // Downsample each component to ~3x its own Nyquist rate, reconstruct.
  std::vector<RegularSeries> recon;
  const double nyq_a = 2.0 * a.bandwidth_hz();
  const double nyq_b = 2.0 * b.bandwidth_hz();
  for (std::size_t i = 0; i < 2; ++i) {
    const double fs = dense[i].sample_rate_hz();
    const double target = 3.0 * (i == 0 ? nyq_a : nyq_b);
    const auto factor = static_cast<std::size_t>(fs / target);
    recon.push_back(nyqmon::rec::round_trip(dense[i], factor));
  }
  const auto after = correlation_matrix(recon);
  EXPECT_LT(correlation_distortion(before, after), 0.05);
}

TEST(Multivariate, CorrelationsDestroyedBelowNyquist) {
  // Converse: undersampling one component distorts the joint statistics.
  const Tone shared{0.02, 1.0, 0.4};
  const SumOfSines a({shared});
  const SumOfSines b({shared, {0.001, 0.3, 0.0}});
  const std::vector<RegularSeries> dense{a.sample(0.0, 5.0, 8192),
                                         b.sample(0.0, 5.0, 8192)};
  const auto before = correlation_matrix(dense);

  std::vector<RegularSeries> recon;
  recon.push_back(nyqmon::rec::round_trip(dense[0], 16));  // fs'=0.0125 < 0.04
  recon.push_back(dense[1]);
  const auto after = correlation_matrix(recon);
  EXPECT_GT(correlation_distortion(before, after), 0.3);
}

TEST(CorrelationDistortion, SizeMismatchThrows) {
  EXPECT_THROW((void)correlation_distortion({{1.0}}, {{1.0, 0.0}, {0.0, 1.0}}),
               std::invalid_argument);
}

}  // namespace
