// Histogram: binning semantics, log-scale mode, rendering.
#include <gtest/gtest.h>

#include "analysis/histogram.h"

namespace {

using nyqmon::ana::Histogram;

TEST(Histogram, CountsLandInCorrectBins) {
  const std::vector<double> x{0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5};
  const Histogram h(x, 4);  // [0,1) [1,2) [2,3) [3,4]
  ASSERT_EQ(h.bins(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.total(), 8u);
}

TEST(Histogram, MaxValueGoesInLastBin) {
  const std::vector<double> x{0.0, 10.0};
  const Histogram h(x, 5);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, EdgesCoverRange) {
  const std::vector<double> x{2.0, 6.0};
  const Histogram h(x, 2);
  const auto [lo0, hi0] = h.edges(0);
  const auto [lo1, hi1] = h.edges(1);
  EXPECT_DOUBLE_EQ(lo0, 2.0);
  EXPECT_DOUBLE_EQ(hi0, 4.0);
  EXPECT_DOUBLE_EQ(lo1, 4.0);
  EXPECT_DOUBLE_EQ(hi1, 6.0);
}

TEST(Histogram, LogScaleBinsDecades) {
  const std::vector<double> x{1.0, 10.0, 100.0, 1000.0};
  const Histogram h(x, 3, /*log_scale=*/true);
  EXPECT_EQ(h.count(0), 1u);  // [1, 10)
  EXPECT_EQ(h.count(1), 1u);  // [10, 100)
  EXPECT_EQ(h.count(2), 2u);  // [100, 1000]
  const auto [lo, hi] = h.edges(0);
  EXPECT_NEAR(lo, 1.0, 1e-9);
  EXPECT_NEAR(hi, 10.0, 1e-9);
}

TEST(Histogram, LogScaleRejectsNonPositive) {
  const std::vector<double> x{1.0, -2.0};
  EXPECT_THROW(Histogram(x, 2, true), std::invalid_argument);
}

TEST(Histogram, ModeBin) {
  const std::vector<double> x{1.0, 1.1, 1.2, 5.0};
  const Histogram h(x, 4);
  EXPECT_EQ(h.mode_bin(), 0u);
}

TEST(Histogram, SingleValueInput) {
  const std::vector<double> x{3.0, 3.0, 3.0};
  const Histogram h(x, 4);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 3u);  // degenerate range widened internally
}

TEST(Histogram, RenderContainsBars) {
  const std::vector<double> x{1.0, 2.0, 2.1, 2.2};
  const Histogram h(x, 2);
  const auto text = h.render(20);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('['), std::string::npos);
}

TEST(Histogram, EmptyInputThrows) {
  const std::vector<double> x;
  EXPECT_THROW(Histogram(x, 4), std::invalid_argument);
}

}  // namespace
