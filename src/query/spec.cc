#include "query/spec.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace nyqmon::qry {

const char* to_string(Transform t) {
  switch (t) {
    case Transform::kRaw: return "raw";
    case Transform::kRate: return "rate";
    case Transform::kZScore: return "zscore";
  }
  return "?";
}

const char* to_string(Aggregation a) {
  switch (a) {
    case Aggregation::kNone: return "none";
    case Aggregation::kSum: return "sum";
    case Aggregation::kAvg: return "avg";
    case Aggregation::kMin: return "min";
    case Aggregation::kMax: return "max";
    case Aggregation::kP50: return "p50";
    case Aggregation::kP95: return "p95";
    case Aggregation::kP99: return "p99";
  }
  return "?";
}

void QuerySpec::validate() const {
  NYQMON_CHECK_MSG(!selector.empty(), "query selector is empty");
  NYQMON_CHECK_MSG(t_begin < t_end, "query range is empty or inverted");
  NYQMON_CHECK_MSG(step_s > 0.0, "query alignment step must be > 0");
}

std::size_t QuerySpec::grid_points() const {
  if (!(t_end > t_begin) || !(step_s > 0.0)) return 0;
  // Count of i with t_begin + i*step < t_end; the epsilon keeps an exact
  // multiple of step from gaining a point at t_end through FP rounding.
  return static_cast<std::size_t>(
      std::ceil((t_end - t_begin) / step_s - 1e-9));
}

std::string QuerySpec::canonical_key() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "|%.17g|%.17g|%.17g|%s|%s", t_begin, t_end,
                step_s, to_string(transform), to_string(aggregate));
  return selector + buf;
}

}  // namespace nyqmon::qry
