#include "nyquist/aliasing_detector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nyqmon::nyq {

DualRateAliasingDetector::DualRateAliasingDetector(DetectorConfig config)
    : config_(config) {
  NYQMON_CHECK(config_.rate_ratio > 1.0);
  NYQMON_CHECK_MSG(std::abs(config_.rate_ratio - std::round(config_.rate_ratio)) > 1e-9,
                   "rate_ratio must not be an integer (Penny et al.)");
  NYQMON_CHECK(config_.discrepancy_threshold > 0.0);
  NYQMON_CHECK(config_.band_guard_fraction >= 0.0 &&
               config_.band_guard_fraction < 1.0);
}

DetectionResult DualRateAliasingDetector::detect(
    const sig::RegularSeries& fast, const sig::RegularSeries& slow) const {
  NYQMON_CHECK(fast.size() >= 8 && slow.size() >= 8);
  NYQMON_CHECK_MSG(fast.sample_rate_hz() > slow.sample_rate_hz(),
                   "fast stream must have the higher sampling rate");

  dsp::PeriodogramConfig pc;
  pc.window = config_.window;
  pc.remove_mean = true;
  const dsp::Psd psd_fast = dsp::periodogram(fast.span(), fast.sample_rate_hz(), pc);
  const dsp::Psd psd_slow = dsp::periodogram(slow.span(), slow.sample_rate_hz(), pc);

  DetectionResult result;
  result.common_band_hz = slow.sample_rate_hz() / 2.0 *
                          (1.0 - config_.band_guard_fraction);

  // Interpolate the fast spectrum onto the slow spectrum's bins within the
  // common band (linear interpolation in frequency).
  auto interp = [&](const dsp::Psd& psd, double f) {
    const auto& fr = psd.frequency_hz;
    if (f <= fr.front()) return psd.power.front();
    if (f >= fr.back()) return psd.power.back();
    const auto it = std::lower_bound(fr.begin(), fr.end(), f);
    const std::size_t hi = static_cast<std::size_t>(it - fr.begin());
    const std::size_t lo = hi - 1;
    const double frac = (f - fr[lo]) / (fr[hi] - fr[lo]);
    return psd.power[lo] * (1.0 - frac) + psd.power[hi] * frac;
  };

  std::vector<double> a, b;  // common-band spectra: a = fast, b = slow
  for (std::size_t k = 0; k < psd_slow.bins(); ++k) {
    const double f = psd_slow.frequency_hz[k];
    if (f > result.common_band_hz) break;
    a.push_back(interp(psd_fast, f));
    b.push_back(psd_slow.power[k]);
  }
  result.compared_bins = a.size();
  if (a.size() < 3) return result;  // nothing meaningful to compare

  // Noise floor: ignore bins tiny in both spectra.
  double peak = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    peak = std::max({peak, a[i], b[i]});
  if (peak <= 0.0) return result;  // both spectra empty: no aliasing signal
  const double floor = peak * config_.noise_floor_fraction;
  double sum_a = 0.0, sum_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < floor && b[i] < floor) {
      a[i] = b[i] = 0.0;
    }
    sum_a += a[i];
    sum_b += b[i];
  }
  if (sum_a <= 0.0 || sum_b <= 0.0) return result;

  // Total-variation distance between the normalized spectra (in [0, 2]).
  double tv = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    tv += std::abs(a[i] / sum_a - b[i] / sum_b);
  result.discrepancy = tv;
  result.aliasing_detected = tv > config_.discrepancy_threshold;
  return result;
}

DetectionResult DualRateAliasingDetector::probe(
    const std::function<double(double)>& measure, double t0,
    double duration_s, double slow_rate_hz) const {
  NYQMON_CHECK(duration_s > 0.0);
  NYQMON_CHECK(slow_rate_hz > 0.0);
  const double fast_rate = slow_rate_hz * config_.rate_ratio;

  auto acquire = [&](double rate) {
    const std::size_t n = std::max<std::size_t>(
        8, static_cast<std::size_t>(std::floor(duration_s * rate)));
    std::vector<double> v(n);
    const double dt = 1.0 / rate;
    for (std::size_t i = 0; i < n; ++i)
      v[i] = measure(t0 + static_cast<double>(i) * dt);
    return sig::RegularSeries(t0, dt, std::move(v));
  };

  return detect(acquire(fast_rate), acquire(slow_rate_hz));
}

}  // namespace nyqmon::nyq
