#include "monitor/pipeline.h"

#include <cmath>

#include "dsp/quantize.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/preclean.h"
#include "util/check.h"
#include "util/rng.h"

namespace nyqmon::mon {

AdaptiveMonitoringPipeline::AdaptiveMonitoringPipeline(PipelineConfig config)
    : config_(config) {}

PipelineResult AdaptiveMonitoringPipeline::run(
    const sig::ContinuousSignal& truth, double t0, double duration_s,
    double production_rate_hz, std::uint64_t noise_seed) const {
  NYQMON_CHECK(duration_s > 0.0);
  NYQMON_CHECK(production_rate_hz > 0.0);

  // The measurement channel: ground truth + noise + quantization. The rng
  // is per-call so the pipeline itself stays const/reusable.
  auto rng = std::make_shared<Rng>(noise_seed);
  const double noise = config_.noise_stddev;
  const double quant = config_.quantization_step;
  auto measure = [&truth, rng, noise, quant](double t) {
    double v = truth.value(t);
    if (noise > 0.0) v += rng->normal(0.0, noise);
    if (quant > 0.0) v = dsp::Quantizer(quant).apply(v);
    return v;
  };

  const nyq::AdaptiveSampler sampler(config_.sampler);

  PipelineResult out;
  out.run = sampler.run(measure, t0, duration_s);

  out.adaptive_cost = cost_of_samples(out.run.total_samples, config_.cost);
  const std::size_t baseline_n = out.run.baseline_samples(production_rate_hz);
  out.baseline_cost = cost_of_samples(baseline_n, config_.cost);
  out.cost_savings =
      out.run.total_samples == 0
          ? 0.0
          : static_cast<double>(baseline_n) /
                static_cast<double>(out.run.total_samples);

  // Reconstruct the collected (variable-rate) samples onto the production
  // grid. Within each adaptation window the samples form a uniform grid, so
  // the paper's low-pass (Fourier) interpolation applies per window; the
  // per-window dense streams are then stitched and linearly resampled onto
  // the exact production grid (the dense streams are ~4x the production
  // rate, so the final interpolation step is benign).
  const double dt = 1.0 / production_rate_hz;
  sig::TimeSeries dense_samples;
  for (const auto& step : out.run.steps) {
    // Collect this window's primary samples.
    std::vector<double> vals;
    const double win_end =
        step.window_start_s + config_.sampler.window_duration_s;
    for (const auto& s : out.run.collected.samples()) {
      if (s.t >= step.window_start_s - 1e-9 && s.t < win_end - 1e-9)
        vals.push_back(s.v);
    }
    if (vals.size() < 2) continue;
    const sig::RegularSeries window_series(step.window_start_s,
                                           1.0 / step.rate_hz, vals);
    const auto n_dense = static_cast<std::size_t>(std::max<double>(
        vals.size(),
        std::ceil(window_series.duration() * 4.0 * production_rate_hz)));
    const auto upsampled = rec::reconstruct(window_series, n_dense);
    for (std::size_t i = 0; i < upsampled.size(); ++i)
      dense_samples.push(upsampled.time_at(i), upsampled[i]);
  }
  if (dense_samples.size() < 2) dense_samples = out.run.collected;

  sig::PrecleanConfig clean;
  clean.dt = dt;
  clean.interp = sig::InterpKind::kLinear;
  sig::RegularSeries recon = sig::regularize(dense_samples, clean);
  if (config_.requantize_reconstruction && quant > 0.0) {
    const dsp::Quantizer q(quant);
    for (auto& v : recon.mutable_values()) v = q.apply(v);
  }

  out.ground_truth = truth.sample(recon.t0(), dt, recon.size());
  out.l2 = rec::l2_distance(out.ground_truth.span(), recon.span());
  out.nrmse = rec::nrmse(out.ground_truth.span(), recon.span());
  out.max_abs_error = rec::max_abs_error(out.ground_truth.span(), recon.span());
  out.reconstruction = std::move(recon);
  return out;
}

}  // namespace nyqmon::mon
