#include "runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"

namespace nyqmon::rt {

StreamingRuntime::StreamingRuntime(const tel::Fleet& fleet, Clock& clock,
                                   RuntimeConfig config)
    : fleet_(fleet),
      clock_(clock),
      config_(config),
      store_(config.engine.store, config.engine.store_stripes),
      query_(store_, config.query) {
  NYQMON_CHECK(config_.engine.samples_per_window >= 2);
  NYQMON_CHECK(config_.engine.windows_per_pair >= 1);
  NYQMON_CHECK(config_.engine.max_speedup >= 1.0);
  NYQMON_CHECK(config_.engine.max_slowdown >= 1.0);

  // Durable tier before any stream exists (mirrors the batch engine): each
  // run is a fresh storage generation and stream creations are WAL-logged.
  if (!config_.engine.storage.dir.empty()) {
    config_.engine.storage.truncate_existing = true;
    storage_ = std::make_unique<sto::StorageManager>(config_.engine.storage);
    storage_->record_geometry(config_.engine.store);
    store_.set_ingest_sink(storage_.get());
  }

  // Scheduling pass, in fleet order (identical to the batch engine): every
  // pair's plan, retention stream, noise seed and incremental pipeline.
  const std::vector<std::uint64_t> noise_seeds =
      eng::fork_noise_seeds(config_.engine.seed, fleet_.size());
  schedules_.reserve(fleet_.size());
  tasks_.resize(fleet_.size());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    const tel::FleetPair& pair = fleet_.pairs()[i];
    const tel::PairSchedule s = tel::schedule_pair(
        pair, config_.engine.samples_per_window, config_.engine.windows_per_pair);
    store_.create_stream(tel::stream_id(pair), s.production_rate_hz);
    schedules_.push_back(s);

    PairTask& task = tasks_[i];
    task.stream_id = tel::stream_id(pair);
    task.pipeline = std::make_unique<mon::StreamingPairPipeline>(
        eng::pair_pipeline_config(config_.engine, pair, s),
        *pair.metric.signal, 0.0, s.duration_s, s.production_rate_hz,
        noise_seeds[i]);
    task.next_deadline_s = task.pipeline->next_deadline_s();
    deadlines_.emplace(task.next_deadline_s, i);
  }
}

double StreamingRuntime::next_deadline_s() const {
  std::lock_guard<std::mutex> lock(scheduler_mu_);
  return deadlines_.empty() ? std::numeric_limits<double>::infinity()
                            : deadlines_.top().first;
}

void StreamingRuntime::advance_pair(std::size_t index, double now_s) {
  PairTask& task = tasks_[index];
  mon::StreamingPairPipeline& pipeline = *task.pipeline;

  while (!pipeline.done() && pipeline.next_deadline_s() <= now_s + 1e-9)
    pipeline.step_window();

  // Progress accounting before finish() consumes the run log.
  const nyq::AdaptiveRun& so_far = pipeline.run_so_far();
  windows_processed_ += so_far.steps.size() - task.windows_seen;
  samples_acquired_ += so_far.total_samples - task.samples_seen;
  task.windows_seen = so_far.steps.size();
  task.samples_seen = so_far.total_samples;

  // Ingest the slice of reconstruction that became final this beat. One
  // append per pair per beat = one stripe lock + one WAL record.
  const auto ready = pipeline.reconstruction_so_far();
  if (ready.size() > task.ingested) {
    store_.append_series(task.stream_id, ready.subspan(task.ingested));
    values_ingested_ += ready.size() - task.ingested;
    task.ingested = ready.size();
  }

  if (!pipeline.done()) {
    task.next_deadline_s = pipeline.next_deadline_s();
    return;
  }

  // Pair timeline complete: finalize the outcome. The degenerate fallback
  // path can emit its reconstruction only inside finish(), so ingest any
  // remainder after it.
  const mon::PipelineResult result = pipeline.finish();
  const auto full = result.reconstruction.span();
  if (full.size() > task.ingested) {
    store_.append_series(task.stream_id, full.subspan(task.ingested));
    values_ingested_ += full.size() - task.ingested;
    task.ingested = full.size();
  }
  task.outcome = eng::make_pair_outcome(index, fleet_.pairs()[index],
                                        schedules_[index], result);
  const mon::StreamStats retained = store_.stats(task.stream_id);
  task.outcome.store_bytes_raw = retained.bytes_raw;
  task.outcome.store_bytes_stored = retained.bytes_stored;
  task.pipeline.reset();  // free sampler/dense state as pairs drain
  task.done = true;
  pairs_done_.fetch_add(1);
}

std::size_t StreamingRuntime::poll() {
  NYQMON_TRACE_SPAN("poll", "runtime");
  std::lock_guard<std::mutex> lock(scheduler_mu_);
  const double now = clock_.now_s();

  std::vector<std::size_t> due;
  while (!deadlines_.empty() && deadlines_.top().first <= now + 1e-9) {
    // Scheduler slip: how far past its deadline (in clock-domain seconds —
    // virtual when driven by a VirtualClock) a pair is picked up. A wall
    // clock that can't keep up shows here before quality degrades.
    const double slip_s = now - deadlines_.top().first;
    NYQMON_OBS_RECORD("nyqmon_runtime_deadline_slip_ns",
                      slip_s > 0.0 ? slip_s * 1e9 : 0.0);
    due.push_back(deadlines_.top().second);
    deadlines_.pop();
  }
  if (due.empty()) return 0;
  NYQMON_OBS_RECORD("nyqmon_runtime_poll_batch_depth", due.size());

  const std::uint64_t windows_before = windows_processed_.load();
  parallel_claim(due.size(), config_.engine.workers,
                 [&](std::size_t k) { advance_pair(due[k], now); });
  for (const std::size_t i : due) {
    if (!tasks_[i].done) deadlines_.emplace(tasks_[i].next_deadline_s, i);
  }
  const auto processed =
      static_cast<std::size_t>(windows_processed_.load() - windows_before);
  NYQMON_OBS_COUNT("nyqmon_runtime_windows_total", processed);

  if (storage_ != nullptr && config_.checkpoint_interval_windows > 0) {
    windows_since_checkpoint_ += processed;
    if (windows_since_checkpoint_ >= config_.checkpoint_interval_windows) {
      windows_since_checkpoint_ = 0;
      checkpoint_locked();
    }
  }
  return processed;
}

std::size_t StreamingRuntime::step() {
  const double deadline = next_deadline_s();
  if (!std::isfinite(deadline)) return 0;
  clock_.sleep_until_s(deadline);
  return poll();
}

sto::FlushStats StreamingRuntime::checkpoint() {
  std::lock_guard<std::mutex> lock(scheduler_mu_);
  return checkpoint_locked();
}

sto::FlushStats StreamingRuntime::checkpoint_locked() {
  // Caller holds scheduler_mu_, so *runtime* ingest is quiesced: the only
  // runtime writers are poll() workers, and they are not running. Server-
  // side INGEST is the server's responsibility — NyqmondServer parks every
  // reactor before invoking checkpoint() (run_quiesced), so no other
  // ingest path can land between the flush's store snapshot and the WAL
  // swap. Concurrent queries are fine — the flush reads through an
  // epoch-stamped ReadSnapshot and never blocks on readers.
  if (storage_ == nullptr) {
    sto::FlushStats skipped;
    skipped.skipped = true;
    return skipped;
  }
  storage_->sync();
  const sto::FlushStats flush = storage_->flush(store_);
  checkpoints_.fetch_add(1);
  NYQMON_OBS_COUNT("nyqmon_runtime_checkpoints_total", 1);
  return flush;
}

eng::FleetRunResult StreamingRuntime::run_to_completion() {
  const auto t_start = std::chrono::steady_clock::now();
  while (!done()) {
    const double deadline = next_deadline_s();
    if (!std::isfinite(deadline)) break;
    clock_.sleep_until_s(deadline);
    poll();
  }

  std::lock_guard<std::mutex> lock(scheduler_mu_);
  NYQMON_CHECK_MSG(!finalized_, "run_to_completion() is single-shot");
  finalized_ = true;

  eng::FleetRunResult result;
  result.pairs.reserve(tasks_.size());
  for (const PairTask& task : tasks_) result.pairs.push_back(task.outcome);
  result.workers_used = resolve_workers(config_.engine.workers, fleet_.size());
  result.shards_used = 0;  // deadline-scheduled, not shard-partitioned
  for (const auto& p : result.pairs) {
    result.adaptive_cost +=
        mon::cost_of_samples(p.adaptive_samples, config_.engine.cost);
    result.baseline_cost +=
        mon::cost_of_samples(p.baseline_samples, config_.engine.cost);
  }
  result.store = store_.rollup();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();

  if (storage_ != nullptr) {
    result.flush = checkpoint_locked();
    result.storage = storage_->stats();
    result.persisted = true;
  }
  return result;
}

RuntimeStats StreamingRuntime::stats() const {
  RuntimeStats s;
  s.pairs = tasks_.size();
  s.pairs_done = pairs_done_.load();
  s.windows_processed = windows_processed_.load();
  s.samples_acquired = samples_acquired_.load();
  s.values_ingested = values_ingested_.load();
  s.checkpoints = checkpoints_.load();
  s.now_s = clock_.now_s();
  return s;
}

}  // namespace nyqmon::rt
