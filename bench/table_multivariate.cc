// Section 6 "Multivariate signals" (future work made concrete):
// "As long as we sample each individual signal at a rate higher than its
//  Nyquist rate, we can recover the original signal and preserve any
//  correlations."
//
// The harness monitors a bundle of correlated metrics from one device
// (link util in, link util out, CPU), compares three sampling plans —
// production rate, per-component Nyquist, common Nyquist — on cost and
// correlation distortion.
#include <cstdio>

#include "common.h"
#include "nyquist/multivariate.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Section 6: multivariate bundles — cost vs correlation "
              "preservation ===\n\n");

  // Three correlated signals: shared load tone + private components with
  // different band limits.
  const sig::Tone shared{0.002, 4.0, 0.4};
  const sig::SumOfSines in_util({shared, {0.0008, 2.0, 1.2}}, 40.0);
  const sig::SumOfSines out_util({shared, {0.0035, 2.0, 2.1}}, 35.0);
  const sig::SumOfSines cpu({shared, {0.0005, 1.5, 0.3}}, 30.0);

  const double fs = 1.0 / 5.0;  // production: one poll per 5 s
  const std::size_t n = 16384;
  const std::vector<sig::RegularSeries> dense{
      in_util.sample(0.0, 1.0 / fs, n), out_util.sample(0.0, 1.0 / fs, n),
      cpu.sample(0.0, 1.0 / fs, n)};
  const auto before = nyq::correlation_matrix(dense);

  const auto multi = nyq::MultivariateNyquistEstimator().estimate(dense);
  NYQMON_CHECK(multi.all_ok());

  AsciiTable table({"plan", "samples/s (bundle)", "vs production",
                    "correlation distortion"});
  CsvWriter csv(bench::csv_path("table_multivariate"),
                {"plan", "samples_per_s", "savings", "corr_distortion"});

  auto report = [&](const char* plan, double samples_per_s,
                    const std::vector<sig::RegularSeries>& recon) {
    const auto after = nyq::correlation_matrix(recon);
    const double distortion = nyq::correlation_distortion(before, after);
    const double savings = 3.0 * fs / samples_per_s;
    char sv[24];
    std::snprintf(sv, sizeof sv, "%.1fx less", savings);
    table.row({plan, AsciiTable::format_double(samples_per_s), sv,
               AsciiTable::format_double(distortion)});
    csv.row({plan, CsvWriter::format_double(samples_per_s),
             CsvWriter::format_double(savings),
             CsvWriter::format_double(distortion)});
  };

  // Production plan: everything at fs.
  report("production (all at fs)", 3.0 * fs, dense);

  // Per-component Nyquist plan (with 1.5x headroom each).
  {
    std::vector<sig::RegularSeries> recon;
    double samples_per_s = 0.0;
    for (std::size_t i = 0; i < dense.size(); ++i) {
      const double target = 1.5 * multi.components[i].nyquist_rate_hz;
      const auto factor =
          static_cast<std::size_t>(std::max(1.0, fs / target));
      samples_per_s += fs / static_cast<double>(factor);
      recon.push_back(rec::round_trip(dense[i], factor));
    }
    report("per-component Nyquist", samples_per_s, recon);
  }

  // Common-rate plan: the whole bundle at the max component rate.
  {
    const double target = 1.5 * multi.common_nyquist_rate_hz;
    const auto factor = static_cast<std::size_t>(std::max(1.0, fs / target));
    std::vector<sig::RegularSeries> recon;
    for (const auto& d : dense) recon.push_back(rec::round_trip(d, factor));
    report("common Nyquist rate", 3.0 * fs / static_cast<double>(factor),
           recon);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: both Nyquist plans keep the correlation matrix\n"
              "essentially intact while cutting the bundle's sample bill;\n"
              "per-component collection is the cheaper of the two.\n");
  return 0;
}
