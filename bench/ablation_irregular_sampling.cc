// Ablation (Section 3.2's pre-cleaning): nearest-neighbour re-sampling +
// FFT (the paper's pipeline) vs the Lomb-Scargle periodogram that works on
// the raw irregular timestamps directly. Sweeps the timestamp jitter level
// and reports each method's Nyquist-band estimate against ground truth.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "dsp/lombscargle.h"
#include "nyquist/estimator.h"
#include "signal/generators.h"
#include "signal/preclean.h"
#include "telemetry/poller.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Ablation: preclean+FFT vs Lomb-Scargle on jittered "
              "traces ===\n\n");

  const double true_bw = 2e-3;  // true Nyquist rate 4e-3 Hz
  const double interval = 30.0;

  AsciiTable table({"jitter", "FFT est (Hz)", "Lomb est (Hz)",
                    "FFT err", "Lomb err"});
  CsvWriter csv(bench::csv_path("ablation_irregular_sampling"),
                {"jitter_frac", "fft_est", "lomb_est", "fft_err", "lomb_err"});

  for (double jitter : {0.0, 0.1, 0.2, 0.35, 0.45}) {
    Rng rng(2022);
    const auto proc = sig::make_bandlimited_process(true_bw, 5.0, 32, rng,
                                                    40.0);
    tel::PollerConfig pc;
    pc.interval_s = interval;
    pc.jitter_frac = jitter;
    pc.drop_prob = 0.01;
    Rng poll_rng(7);
    const auto raw = tel::poll(*proc, 0.0, 2.0 * 86400.0, pc, poll_rng);

    // Path A: the paper's pipeline — regularize then FFT-estimate.
    sig::PrecleanConfig clean;
    clean.dt = interval;
    const auto trace = sig::regularize(raw, clean);
    const auto fft_est = nyq::NyquistEstimator().estimate(trace);
    const double fft_rate = fft_est.ok() ? fft_est.nyquist_rate_hz : -1.0;

    // Path B: Lomb-Scargle on the raw timestamps; band edge from the same
    // 99% cumulative-energy rule.
    dsp::LombScargleConfig lc;
    lc.bins = 1024;
    lc.max_frequency_hz = 1.0 / (2.0 * interval);
    const auto lomb = dsp::lomb_scargle(raw.times(), raw.values(), lc);
    const double lomb_rate = 2.0 * lomb.cumulative_energy_frequency(0.99);

    const double truth = 2.0 * true_bw;
    auto rel_err = [truth](double est) {
      return est <= 0.0 ? 999.0 : std::abs(est - truth) / truth;
    };
    table.row({AsciiTable::format_double(jitter),
               AsciiTable::format_double(fft_rate),
               AsciiTable::format_double(lomb_rate),
               AsciiTable::format_double(rel_err(fft_rate)),
               AsciiTable::format_double(rel_err(lomb_rate))});
    csv.row_numeric({jitter, fft_rate, lomb_rate, rel_err(fft_rate),
                     rel_err(lomb_rate)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: on a perfect grid the two methods agree (Lomb is\n"
              "even slightly sharper). Under timestamp jitter, however, the\n"
              "irregular spectral window leaves a broadband leakage floor in\n"
              "the Lomb periodogram, and the 99%%-energy rule walks deep into\n"
              "that floor -- inflating the estimate by ~7x. The paper's cheap\n"
              "nearest-neighbour pre-clean + FFT pipeline is the *robust*\n"
              "choice for the cumulative-energy criterion: a genuinely\n"
              "non-obvious vindication of Section 3.2's design.\n");
  return 0;
}
