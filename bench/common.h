// Shared plumbing for the experiment harnesses: the paper-scale fleet
// audit (1613 metric-device pairs, 14 metrics) and CSV output management.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "monitor/audit.h"
#include "telemetry/fleet.h"

namespace nyqmon::bench {

/// Seed used by every harness so all figures describe the same fleet.
inline constexpr std::uint64_t kFleetSeed = 20211110;  // HotNets'21 day 1

/// The paper's study population: 1613 metric-device pairs.
inline tel::Fleet make_paper_fleet() {
  tel::FleetConfig cfg;
  cfg.target_pairs = 1613;
  cfg.seed = kFleetSeed;
  return tel::Fleet(cfg);
}

/// Audit of the full paper-scale fleet (shared by Figures 1, 4, 5 and the
/// headline table).
inline mon::AuditResult run_paper_audit() {
  const tel::Fleet fleet = make_paper_fleet();
  mon::AuditConfig cfg;
  return mon::run_audit(fleet, cfg);
}

/// Directory for CSV results (created on demand): ./bench_results/.
inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name + ".csv";
}

/// Append one printf-formatted value to a comma-joined JSON array body
/// (the "1,2,4,8" inside "[...]").
template <typename T>
inline void json_append(std::string& list, const char* fmt, T value) {
  char cell[48];
  std::snprintf(cell, sizeof(cell), fmt, value);
  if (!list.empty()) list += ',';
  list += cell;
}

/// Persist one machine-readable JSON line to bench_results/BENCH_<name>.json
/// and echo it to stdout — the hook the perf trajectory tooling scrapes for
/// regression tracking. Callers pass a complete JSON object literal.
inline void write_json_line(const std::string& name, const std::string& json) {
  std::filesystem::create_directories("bench_results");
  std::ofstream out("bench_results/BENCH_" + name + ".json");
  out << json << "\n";
  std::printf("%s\n", json.c_str());
}

}  // namespace nyqmon::bench
