#include "reconstruct/streaming.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace nyqmon::rec {

namespace {

// Windowed-sinc interpolation kernel value at (fractional) input-sample
// offset x, with support |x| <= half_taps (Hann-windowed).
double sinc_kernel(double x, double half_taps) {
  if (std::abs(x) >= half_taps) return 0.0;
  const double pi = std::numbers::pi;
  const double s = x == 0.0 ? 1.0 : std::sin(pi * x) / (pi * x);
  const double w = 0.5 * (1.0 + std::cos(pi * x / half_taps));
  return s * w;
}

}  // namespace

StreamingUpsampler::StreamingUpsampler(StreamingConfig config)
    : config_(config) {
  NYQMON_CHECK(config_.factor >= 1);
  NYQMON_CHECK(config_.half_taps >= 1);

  // Pre-compute one FIR kernel per output phase p/factor, p = 0..factor-1.
  // Output sample at input-offset p/factor from the window centre combines
  // the 2*half_taps+1 inputs around the centre.
  const auto taps = 2 * config_.half_taps + 1;
  const double half = static_cast<double>(config_.half_taps);
  phase_kernels_.resize(config_.factor);
  for (std::size_t p = 0; p < config_.factor; ++p) {
    auto& kernel = phase_kernels_[p];
    kernel.resize(taps);
    const double frac = static_cast<double>(p) /
                        static_cast<double>(config_.factor);
    double sum = 0.0;
    for (std::size_t k = 0; k < taps; ++k) {
      // Input k sits at offset (k - half_taps) from the centre; the output
      // phase sits at +frac.
      const double x = frac - (static_cast<double>(k) - half);
      kernel[k] = sinc_kernel(x, half);
      sum += kernel[k];
    }
    NYQMON_ENSURE(sum > 0.0);
    for (auto& v : kernel) v /= sum;  // unit DC gain per phase
  }
}

std::vector<double> StreamingUpsampler::emit_for_center(std::size_t) {
  const auto taps = 2 * config_.half_taps + 1;
  NYQMON_ENSURE(window_.size() == taps);
  std::vector<double> out;
  out.reserve(config_.factor);
  for (std::size_t p = 0; p < config_.factor; ++p) {
    const auto& kernel = phase_kernels_[p];
    double acc = 0.0;
    for (std::size_t k = 0; k < taps; ++k) acc += kernel[k] * window_[k];
    out.push_back(acc);
  }
  return out;
}

std::vector<double> StreamingUpsampler::push(double value) {
  const auto taps = 2 * config_.half_taps + 1;
  if (window_.empty()) {
    // Prime the left half of the window with the first value (edge-hold).
    for (std::size_t i = 0; i < config_.half_taps; ++i)
      window_.push_back(value);
  }
  window_.push_back(value);
  ++pushed_;
  if (window_.size() < taps) return {};
  while (window_.size() > taps) window_.pop_front();
  return emit_for_center(pushed_ - config_.half_taps - 1);
}

std::vector<double> StreamingUpsampler::finish() {
  if (window_.empty()) return {};
  const auto taps = 2 * config_.half_taps + 1;
  std::vector<double> out;
  const double edge = window_.back();
  // Push edge-hold values until every real sample has been the centre.
  for (std::size_t i = 0; i < config_.half_taps; ++i) {
    window_.push_back(edge);
    if (window_.size() < taps) continue;
    while (window_.size() > taps) window_.pop_front();
    const auto chunk = emit_for_center(0);
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

sig::RegularSeries StreamingUpsampler::upsample(
    const sig::RegularSeries& sparse, const StreamingConfig& config) {
  NYQMON_CHECK(!sparse.empty());
  StreamingUpsampler streamer(config);
  std::vector<double> dense;
  dense.reserve(sparse.size() * config.factor);
  for (double v : sparse.values()) {
    const auto chunk = streamer.push(v);
    dense.insert(dense.end(), chunk.begin(), chunk.end());
  }
  const auto tail = streamer.finish();
  dense.insert(dense.end(), tail.begin(), tail.end());
  return sig::RegularSeries(sparse.t0(),
                            sparse.dt() / static_cast<double>(config.factor),
                            std::move(dense));
}

}  // namespace nyqmon::rec
