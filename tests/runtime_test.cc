// StreamingRuntime: clock behavior, the deadline scheduler, live serving
// during ingest, incremental durable checkpoints, and the headline
// contract — a virtual-clock streaming run reproduces the batch engine's
// results bit-exactly over the same fleet/seed/config.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "monitor/striped_store.h"
#include "query/spec.h"
#include "runtime/clock.h"
#include "runtime/runtime.h"
#include "storage/manager.h"
#include "telemetry/fleet.h"

namespace {

using namespace nyqmon;
namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / ("nyqmon_runtime_test_" + name))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

// Bit-exact double comparison (NaN-safe).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool same_values(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), 8 * a.size()) == 0);
}

// ---------------------------------------------------------------- clocks --

TEST(Clock, VirtualClockAdvancesMonotonically) {
  rt::VirtualClock clock;
  EXPECT_EQ(clock.now_s(), 0.0);
  clock.sleep_until_s(42.0);
  EXPECT_EQ(clock.now_s(), 42.0);
  clock.sleep_until_s(10.0);  // never backward
  EXPECT_EQ(clock.now_s(), 42.0);
  clock.advance_to(43.5);
  EXPECT_EQ(clock.now_s(), 43.5);
}

TEST(Clock, SteadyClockTracksRealTimeAndWakes) {
  rt::SteadyClock clock;
  const double t0 = clock.now_s();
  EXPECT_GE(t0, 0.0);
  // A sleeper should be interruptible well before its deadline.
  std::thread waker([&clock] { clock.wake(); });
  clock.sleep_until_s(t0 + 30.0);
  waker.join();
  EXPECT_LT(clock.now_s(), t0 + 10.0);
}

// ------------------------------------------------------------- scheduler --

tel::Fleet small_fleet(std::size_t pairs, std::uint64_t seed) {
  tel::FleetConfig cfg;
  cfg.target_pairs = pairs;
  cfg.seed = seed;
  return tel::Fleet(cfg);
}

eng::EngineConfig small_engine_config() {
  eng::EngineConfig cfg;
  cfg.workers = 2;
  cfg.samples_per_window = 48;
  cfg.windows_per_pair = 4;
  return cfg;
}

// Longest pair timeline in the fleet — a sane query horizon (an unbounded
// t_end would ask the aligner for a multi-million-point output grid).
double fleet_span_s(const tel::Fleet& fleet, const eng::EngineConfig& cfg) {
  double hi = 0.0;
  for (const auto& p : fleet.pairs()) {
    hi = std::max(hi, tel::schedule_pair(p, cfg.samples_per_window,
                                         cfg.windows_per_pair)
                          .duration_s);
  }
  return hi;
}

TEST(Runtime, PollBeforeAnyDeadlineDoesNothing) {
  const tel::Fleet fleet = small_fleet(8, 5);
  rt::VirtualClock clock;
  rt::RuntimeConfig cfg;
  cfg.engine = small_engine_config();
  rt::StreamingRuntime runtime(fleet, clock, cfg);

  EXPECT_FALSE(runtime.done());
  EXPECT_TRUE(std::isfinite(runtime.next_deadline_s()));
  EXPECT_GT(runtime.next_deadline_s(), 0.0);
  // The clock sits at t=0: no window has sealed yet.
  EXPECT_EQ(runtime.poll(), 0u);
  EXPECT_EQ(runtime.stats().windows_processed, 0u);
}

TEST(Runtime, StepDrivesWindowsInDeadlineOrder) {
  const tel::Fleet fleet = small_fleet(8, 5);
  rt::VirtualClock clock;
  rt::RuntimeConfig cfg;
  cfg.engine = small_engine_config();
  rt::StreamingRuntime runtime(fleet, clock, cfg);

  const std::size_t first = runtime.step();
  EXPECT_GT(first, 0u);
  EXPECT_GT(runtime.stats().values_ingested, 0u);

  std::size_t guard = 0;
  while (!runtime.done() && ++guard < 10'000) runtime.step();
  EXPECT_TRUE(runtime.done());
  EXPECT_EQ(runtime.stats().pairs_done, fleet.size());
  // Every pair ran windows_per_pair windows.
  EXPECT_EQ(runtime.stats().windows_processed,
            fleet.size() * cfg.engine.windows_per_pair);
}

// ------------------------------------------- streaming == batch, 500 pairs --

TEST(Runtime, StreamingMatchesBatchBitExactly500Pairs) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 500;
  fleet_cfg.seed = 99;
  const tel::Fleet fleet(fleet_cfg);
  ASSERT_GE(fleet.size(), 500u);

  eng::EngineConfig shared = small_engine_config();
  shared.workers = 4;

  eng::FleetMonitorEngine batch(fleet, shared);
  const eng::FleetRunResult batch_result = batch.run();

  rt::VirtualClock clock;
  rt::RuntimeConfig cfg;
  cfg.engine = shared;
  rt::StreamingRuntime streaming(fleet, clock, cfg);
  const eng::FleetRunResult live_result = streaming.run_to_completion();

  // Per-pair outcomes, bit for bit.
  ASSERT_EQ(live_result.pairs.size(), batch_result.pairs.size());
  for (std::size_t i = 0; i < batch_result.pairs.size(); ++i) {
    const auto& a = batch_result.pairs[i];
    const auto& b = live_result.pairs[i];
    ASSERT_EQ(a.stream_id, b.stream_id);
    EXPECT_TRUE(same_bits(a.production_rate_hz, b.production_rate_hz));
    EXPECT_TRUE(same_bits(a.cost_savings, b.cost_savings)) << a.stream_id;
    EXPECT_TRUE(same_bits(a.nrmse, b.nrmse)) << a.stream_id;
    EXPECT_TRUE(same_bits(a.max_abs_error, b.max_abs_error)) << a.stream_id;
    EXPECT_EQ(a.adaptive_samples, b.adaptive_samples) << a.stream_id;
    EXPECT_EQ(a.baseline_samples, b.baseline_samples) << a.stream_id;
    EXPECT_EQ(a.audit.windows, b.audit.windows);
    EXPECT_EQ(a.audit.aliased_windows, b.audit.aliased_windows);
    EXPECT_EQ(a.audit.probe_windows, b.audit.probe_windows);
    EXPECT_TRUE(same_bits(a.audit.max_rate_hz, b.audit.max_rate_hz));
    EXPECT_EQ(a.store_bytes_raw, b.store_bytes_raw) << a.stream_id;
    EXPECT_EQ(a.store_bytes_stored, b.store_bytes_stored) << a.stream_id;
  }

  // Fleet aggregates.
  EXPECT_TRUE(same_bits(batch_result.fleet_cost_savings(),
                        live_result.fleet_cost_savings()));
  EXPECT_EQ(batch_result.store.streams, live_result.store.streams);
  EXPECT_EQ(batch_result.store.ingested_samples,
            live_result.store.ingested_samples);
  EXPECT_EQ(batch_result.store.stored_samples, live_result.store.stored_samples);
  EXPECT_EQ(batch_result.store.chunks, live_result.store.chunks);
  EXPECT_EQ(batch_result.store.chunks_reduced, live_result.store.chunks_reduced);
  EXPECT_EQ(batch_result.store.bytes_raw, live_result.store.bytes_raw);
  EXPECT_EQ(batch_result.store.bytes_stored, live_result.store.bytes_stored);

  // Store contents: every stream's sealed chunks and hot tail, bit for bit.
  // (Write-generation counters differ by design: streaming ingests each
  // stream in many batches, the batch engine in one.)
  const auto names = batch.store().stream_names();
  ASSERT_EQ(names, streaming.store().stream_names());
  for (const auto& name : names) {
    const auto a = batch.store().snapshot_stream(name);
    const auto b = streaming.store().snapshot_stream(name);
    ASSERT_EQ(a.chunks.size(), b.chunks.size()) << name;
    for (std::size_t c = 0; c < a.chunks.size(); ++c) {
      EXPECT_TRUE(same_bits(a.chunks[c].t0, b.chunks[c].t0)) << name;
      EXPECT_TRUE(same_bits(a.chunks[c].dt, b.chunks[c].dt)) << name;
      EXPECT_TRUE(same_values(a.chunks[c].values, b.chunks[c].values)) << name;
    }
    EXPECT_TRUE(same_values(a.hot, b.hot)) << name;
    EXPECT_TRUE(same_bits(a.collection_rate_hz, b.collection_rate_hz));

    const auto meta = batch.store().meta(name);
    const auto q_a = batch.store().query(name, meta.t0, meta.t_end);
    const auto q_b = streaming.store().query(name, meta.t0, meta.t_end);
    EXPECT_TRUE(same_bits(q_a.t0(), q_b.t0())) << name;
    EXPECT_TRUE(same_values(q_a.span(), q_b.span())) << name;
  }

  // Query-engine results over the served store, bit for bit.
  qry::QuerySpec spec;
  spec.selector = "*/*";
  spec.t_begin = 0.0;
  spec.t_end = fleet_span_s(fleet, shared);
  spec.step_s = spec.t_end / 512.0;
  spec.aggregate = qry::Aggregation::kP95;
  auto serve = batch.serve();
  const auto r_batch = serve.run(spec);
  const auto r_live = streaming.query_engine().run(spec);
  ASSERT_EQ(r_batch.result->series.size(), r_live.result->series.size());
  for (std::size_t s = 0; s < r_batch.result->series.size(); ++s) {
    EXPECT_EQ(r_batch.result->series[s].label, r_live.result->series[s].label);
    EXPECT_TRUE(same_values(r_batch.result->series[s].series.span(),
                            r_live.result->series[s].series.span()));
  }
}

// -------------------------------------------------- live serving & cache --

TEST(Runtime, ServesQueriesDuringIngestWithGenerationInvalidation) {
  const tel::Fleet fleet = small_fleet(24, 7);
  rt::VirtualClock clock;
  rt::RuntimeConfig cfg;
  cfg.engine = small_engine_config();
  rt::StreamingRuntime runtime(fleet, clock, cfg);

  // Ingest part of the timeline.
  runtime.step();
  runtime.step();
  ASSERT_FALSE(runtime.done());

  qry::QuerySpec spec;
  spec.selector = "*/*";
  spec.t_begin = 0.0;
  spec.t_end = fleet_span_s(fleet, cfg.engine);
  spec.step_s = spec.t_end / 256.0;
  spec.aggregate = qry::Aggregation::kAvg;

  const auto early = runtime.query_engine().run(spec);
  ASSERT_FALSE(early.cache_hit);
  const auto early_again = runtime.query_engine().run(spec);
  EXPECT_TRUE(early_again.cache_hit);  // nothing ingested in between

  // More ingest must invalidate the cached result (generation bump), and
  // the refreshed result must see the longer streams.
  std::size_t guard = 0;
  while (!runtime.done() && ++guard < 10'000) runtime.step();
  const auto final_q = runtime.query_engine().run(spec);
  EXPECT_FALSE(final_q.cache_hit);
  ASSERT_FALSE(final_q.result->series.empty());
  ASSERT_FALSE(early.result->series.empty());
  EXPECT_GE(final_q.result->reconstructed.size(),
            early.result->reconstructed.size());

  // And the served result matches a batch engine over the same fleet.
  eng::FleetMonitorEngine batch(fleet, cfg.engine);
  batch.run();
  auto serve = batch.serve();
  const auto batch_q = serve.run(spec);
  ASSERT_EQ(batch_q.result->series.size(), final_q.result->series.size());
  for (std::size_t s = 0; s < batch_q.result->series.size(); ++s) {
    EXPECT_TRUE(same_values(batch_q.result->series[s].series.span(),
                            final_q.result->series[s].series.span()));
  }
}

TEST(Runtime, ConcurrentQueriesWhilePolling) {
  const tel::Fleet fleet = small_fleet(32, 11);
  rt::VirtualClock clock;
  rt::RuntimeConfig cfg;
  cfg.engine = small_engine_config();
  rt::StreamingRuntime runtime(fleet, clock, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries{0};
  const double span = fleet_span_s(fleet, cfg.engine);
  std::thread reader([&] {
    qry::QuerySpec spec;
    spec.selector = "*/*";
    spec.t_begin = 0.0;
    spec.t_end = span;
    spec.step_s = span / 256.0;
    spec.aggregate = qry::Aggregation::kMax;
    while (!stop.load()) {
      const auto r = runtime.query_engine().run(spec);
      ASSERT_NE(r.result, nullptr);
      ++queries;
    }
  });

  std::size_t guard = 0;
  while (!runtime.done() && ++guard < 10'000) runtime.step();
  stop.store(true);
  reader.join();
  EXPECT_TRUE(runtime.done());
  EXPECT_GT(queries.load(), 0u);
}

// ------------------------------------------------- durable checkpointing --

TEST(Runtime, IncrementalCheckpointsLeaveRecoverableState) {
  const tel::Fleet fleet = small_fleet(12, 3);
  TempDir dir("checkpoint");

  rt::VirtualClock clock;
  rt::RuntimeConfig cfg;
  cfg.engine = small_engine_config();
  cfg.engine.storage.dir = dir.path;
  cfg.checkpoint_interval_windows = 8;  // several mid-run checkpoints
  rt::StreamingRuntime runtime(fleet, clock, cfg);

  const eng::FleetRunResult result = runtime.run_to_completion();
  EXPECT_TRUE(result.persisted);
  EXPECT_GT(runtime.stats().checkpoints, 1u);  // interval + final

  // Cold-start recovery must reproduce the live store bit-exactly.
  sto::StorageConfig attach;
  attach.dir = dir.path;
  sto::StorageManager manager(attach);
  mon::StoreConfig store_cfg = cfg.engine.store;
  ASSERT_TRUE(manager.manifest_geometry().has_value());
  manager.manifest_geometry()->apply(store_cfg);
  mon::StripedRetentionStore recovered(store_cfg, cfg.engine.store_stripes);
  const sto::RecoveryStats rec = manager.recover(recovered);
  EXPECT_EQ(rec.crc_skipped_blocks, 0u);
  EXPECT_EQ(rec.stale_streams, 0u);

  const auto names = runtime.store().stream_names();
  ASSERT_EQ(names, recovered.stream_names());
  for (const auto& name : names) {
    const auto meta = runtime.store().meta(name);
    const auto live_q = runtime.store().query(name, meta.t0, meta.t_end);
    const auto cold_q = recovered.query(name, meta.t0, meta.t_end);
    EXPECT_TRUE(same_values(live_q.span(), cold_q.span())) << name;
  }
}

}  // namespace
