// Reduction-ratio bookkeeping: the paper's headline quantity is the ratio
// between the rate a system currently samples at and the Nyquist rate its
// signal actually needs ("Poss. Reduction Ratio", Figures 1 and 4).
#pragma once

#include <optional>

#include "nyquist/estimator.h"

namespace nyqmon::nyq {

enum class SamplingClass {
  kOversampled,   ///< current rate > Nyquist estimate (reducible)
  kUndersampled,  ///< current rate < Nyquist estimate, or trace aliased
  kAtRate,        ///< within tolerance of the Nyquist rate
  kUnknown,       ///< estimator could not produce a verdict (short/flat)
};

std::string to_string(SamplingClass c);

/// Classification tolerance: |ratio - 1| <= tolerance counts as kAtRate.
SamplingClass classify_sampling(const NyquistEstimate& estimate,
                                double tolerance = 0.05);

/// Reduction ratio (current rate / Nyquist rate) when the estimate is Ok;
/// nullopt otherwise. Ratios < 1 indicate under-sampling.
std::optional<double> reduction_ratio(const NyquistEstimate& estimate);

}  // namespace nyqmon::nyq
