// Figure 7: "The inferred Nyquist rates over time for the signal depicted
// in Figure 6. The timestamps mark the beginning of the moving window. We
// use a step of 5 minutes for the moving window and a window size of
// 6 hours."
#include <cstdio>

#include "common.h"
#include "dsp/quantize.h"
#include "nyquist/windowed_tracker.h"
#include "signal/generators.h"
#include "signal/stats.h"
#include "util/ascii.h"
#include "util/csv.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Figure 7: inferred Nyquist rate over time (6 h window, "
              "5 min step) ===\n\n");

  // The same temperature device as the Figure 6 harness.
  Rng rng(7);
  const auto temp = sig::make_bandlimited_process(
      1.0 / 43200.0, 2.0, 24, rng, /*dc=*/45.0);
  const dsp::Quantizer quant(1.0);
  auto dense = temp->sample(0.0, 300.0, 4096);
  for (auto& v : dense.mutable_values()) v = quant.apply(v);

  nyq::TrackerConfig cfg;  // defaults are the paper's: 6 h window, 5 min step
  const auto tracked = nyq::WindowedNyquistTracker(cfg).track(dense);

  CsvWriter csv(bench::csv_path("fig7_windowed_nyquist"),
                {"window_start_s", "verdict", "nyquist_rate_hz"});
  std::vector<double> series;
  std::size_t ok = 0;
  for (const auto& te : tracked) {
    csv.row({CsvWriter::format_double(te.window_start_s),
             nyq::to_string(te.estimate.verdict),
             CsvWriter::format_double(te.estimate.nyquist_rate_hz)});
    if (te.estimate.ok()) {
      series.push_back(te.estimate.nyquist_rate_hz);
      ++ok;
    }
  }

  std::printf("windows: %zu (%zu with an Ok estimate)\n", tracked.size(), ok);
  if (!series.empty()) {
    const auto s = sig::summarize(series);
    std::printf("inferred rate over time: min %.3g, median %.3g, "
                "max %.3g Hz\n\n", s.min, s.median, s.max);
    std::printf("%s\n", ascii_series(series, 72, 10).c_str());
  }
  std::printf("Paper shape: the inferred Nyquist rate drifts over the day\n"
              "— the motivation for adapting the sampling rate instead of\n"
              "fixing it once.\n");
  return 0;
}
