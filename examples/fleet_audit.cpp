// Fleet audit: run the paper's Section 3.2 study on a synthetic datacenter.
//
// Builds a 300-pair fleet (ToR/agg/core switches and servers exporting the
// paper's 14 metrics), polls every metric at its production rate, estimates
// each trace's Nyquist rate, and prints the over/under-sampling breakdown
// plus the projected monitoring bill at Nyquist rates.
#include <cstdio>

#include "analysis/cdf.h"
#include "monitor/audit.h"
#include "telemetry/fleet.h"
#include "util/ascii.h"

int main() {
  using namespace nyqmon;

  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 300;
  fleet_cfg.seed = 1234;
  fleet_cfg.topology.pods = 4;
  const tel::Fleet fleet(fleet_cfg);
  std::printf("fleet: %zu devices, %zu metric-device pairs\n",
              fleet.topology().size(), fleet.size());

  const mon::AuditResult audit = mon::run_audit(fleet, mon::AuditConfig{});

  AsciiTable table({"metric", "pairs", "oversampled", "undersampled",
                    "median reduction"});
  for (auto kind : tel::all_metrics()) {
    const auto it = audit.by_metric.find(kind);
    if (it == audit.by_metric.end()) continue;
    const auto& agg = it->second;
    std::string median = "-";
    if (!agg.reduction_ratios.empty()) {
      median = AsciiTable::format_double(
                   ana::Cdf(agg.reduction_ratios).quantile(0.5)) + "x";
    }
    table.row({tel::metric_name(kind), std::to_string(agg.pairs),
               std::to_string(agg.oversampled),
               std::to_string(agg.undersampled), median});
  }
  std::printf("\n%s\n", table.render().c_str());

  std::printf("fleet-wide: %.1f%% oversampled, %.1f%% undersampled\n",
              100.0 * audit.fraction_oversampled(),
              100.0 * audit.fraction_undersampled());

  const double day = 86400.0;
  std::printf("monitoring bill today:      %s\n",
              to_string(audit.current_cost(day)).c_str());
  std::printf("monitoring bill at Nyquist: %s\n",
              to_string(audit.nyquist_cost(day)).c_str());
  return 0;
}
