// Property-style sweeps over the DSP substrate: invariants that must hold
// for *every* window type, quantizer step, resampling ratio and frequency —
// not just the hand-picked cases of the unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.h"
#include "dsp/filter.h"
#include "dsp/goertzel.h"
#include "dsp/psd.h"
#include "dsp/quantize.h"
#include "dsp/resample.h"
#include "dsp/window.h"
#include "signal/generators.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using namespace nyqmon::dsp;
using nyqmon::sig::make_sine;

// ---------------------------------------------------------------- windows
class WindowSweep : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowSweep, SymmetricFormMirrorsExactly) {
  for (std::size_t n : {3u, 16u, 31u, 64u, 101u}) {
    const auto w = make_window(GetParam(), n, /*symmetric=*/true);
    for (std::size_t i = 0; i < n / 2; ++i)
      EXPECT_NEAR(w[i], w[n - 1 - i], 1e-12)
          << window_name(GetParam()) << " n=" << n << " i=" << i;
  }
}

TEST_P(WindowSweep, EnergyPositiveAndAtMostN) {
  for (std::size_t n : {2u, 17u, 256u}) {
    const double e = window_energy(GetParam(), n);
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, static_cast<double>(n) * 1.2);  // flat-top overshoots ~1.08
  }
}

TEST_P(WindowSweep, ApplyWindowScalesSamples) {
  Rng rng(1);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  const auto w = make_window(GetParam(), x.size());
  const auto y = apply_window(x, GetParam());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_DOUBLE_EQ(y[i], x[i] * w[i]);
}

TEST_P(WindowSweep, PeriodogramTotalEnergyWithinWindowTolerance) {
  // Window normalization keeps a broadband signal's total PSD within a
  // modest factor of the rectangular-window reference.
  Rng rng(2);
  std::vector<double> x(1024);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  PeriodogramConfig rect;
  rect.window = WindowType::kRectangular;
  rect.remove_mean = false;
  PeriodogramConfig win;
  win.window = GetParam();
  win.remove_mean = false;
  const double ref = periodogram(x, 1.0, rect).total_energy();
  const double got = periodogram(x, 1.0, win).total_energy();
  EXPECT_GT(got, ref / 3.0) << window_name(GetParam());
  EXPECT_LT(got, ref * 3.0) << window_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowSweep,
                         ::testing::Values(WindowType::kRectangular,
                                           WindowType::kHann,
                                           WindowType::kHamming,
                                           WindowType::kBlackman,
                                           WindowType::kFlatTop));

// -------------------------------------------------------------- quantizer
class QuantizerSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantizerSweep, ErrorBoundAndIdempotence) {
  const double step = GetParam();
  const Quantizer q(step);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-1000.0, 1000.0);
    const double quantized = q.apply(v);
    EXPECT_LE(std::abs(quantized - v), step / 2.0 + 1e-9 * step);
    EXPECT_DOUBLE_EQ(q.apply(quantized), quantized);
    // The output is on the lattice.
    const double k = (quantized - q.offset()) / step;
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
}

TEST_P(QuantizerSweep, NoisePowerMatchesModel) {
  const double step = GetParam();
  const Quantizer q(step);
  Rng rng(4);
  double noise = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-100.0 * step, 100.0 * step);
    const double e = q.apply(v) - v;
    noise += e * e;
  }
  noise /= n;
  EXPECT_NEAR(noise, q.noise_power(), 0.1 * q.noise_power());
}

INSTANTIATE_TEST_SUITE_P(Steps, QuantizerSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 4.0, 1000.0));

// ------------------------------------------------------------- resampling
class ResampleSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ResampleSweep, FourierUpsampleIsExactForPeriodicBandlimited) {
  const auto [n_in, factor] = GetParam();
  Rng rng(5);
  // Signal with integer cycle counts < n_in/4 is periodic in the block and
  // band-limited far below Nyquist -> upsampling must be exact everywhere.
  std::vector<double> x(static_cast<std::size_t>(n_in), 0.0);
  std::vector<std::pair<double, double>> tones;  // (cycles, phase)
  for (int k = 0; k < 3; ++k) {
    tones.emplace_back(static_cast<double>(rng.uniform_int(1, n_in / 4 - 1)),
                       rng.uniform(0.0, 6.28));
  }
  for (int i = 0; i < n_in; ++i) {
    for (const auto& [cycles, ph] : tones)
      x[static_cast<std::size_t>(i)] +=
          std::sin(2.0 * std::numbers::pi * cycles * i / n_in + ph);
  }
  const std::size_t n_out = static_cast<std::size_t>(n_in * factor);
  const auto up = resample_fourier(x, n_out);
  for (std::size_t j = 0; j < n_out; ++j) {
    double expected = 0.0;
    const double t = static_cast<double>(j) / static_cast<double>(factor);
    for (const auto& [cycles, ph] : tones)
      expected += std::sin(2.0 * std::numbers::pi * cycles * t / n_in + ph);
    ASSERT_NEAR(up[j], expected, 1e-7)
        << "n_in=" << n_in << " factor=" << factor << " j=" << j;
  }
}

TEST_P(ResampleSweep, DownThenUpPreservesMeanExactly) {
  const auto [n_in, factor] = GetParam();
  Rng rng(6);
  std::vector<double> x(static_cast<std::size_t>(n_in));
  for (auto& v : x) v = rng.uniform(10.0, 20.0);
  const auto down = resample_fourier(x, x.size() / 2);
  const auto up = resample_fourier(down, x.size());
  double mean_x = 0.0, mean_up = 0.0;
  for (double v : x) mean_x += v;
  for (double v : up) mean_up += v;
  // Fourier resampling preserves the DC bin exactly (up to rounding).
  EXPECT_NEAR(mean_up / static_cast<double>(up.size()),
              mean_x / static_cast<double>(x.size()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFactors, ResampleSweep,
    ::testing::Combine(::testing::Values(32, 60, 128, 250),
                       ::testing::Values(2, 3, 5)));

// ---------------------------------------------------------------- goertzel
class GoertzelSweep : public ::testing::TestWithParam<int> {};

TEST_P(GoertzelSweep, MatchesPeriodogramBinForBinCentredTones) {
  // For bin-centred tones, the Goertzel power equals the two-sided
  // periodogram bin power (the one-sided form folds in a factor 2).
  const int bin = GetParam();
  const double fs = 256.0;
  const std::size_t n = 256;
  const double f = static_cast<double>(bin) * fs / static_cast<double>(n);
  const auto x = make_sine(fs, n, f, 1.5);
  PeriodogramConfig pc;
  pc.window = WindowType::kRectangular;
  pc.remove_mean = false;
  const auto psd = periodogram(x, fs, pc);
  const double g = goertzel_power(x, fs, f);
  EXPECT_NEAR(2.0 * g, psd.power[static_cast<std::size_t>(bin)],
              1e-9 + 1e-9 * g);
}

INSTANTIATE_TEST_SUITE_P(Bins, GoertzelSweep,
                         ::testing::Values(1, 3, 10, 50, 100, 127));

// ------------------------------------------------------------ ideal filter
class LowpassSweep : public ::testing::TestWithParam<double> {};

TEST_P(LowpassSweep, RemovesEverythingAboveCutoff) {
  const double cutoff_fraction = GetParam();  // of the Nyquist frequency
  Rng rng(7);
  std::vector<double> x(1024);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  const double fs = 1.0;
  const double cutoff = cutoff_fraction * fs / 2.0;
  const auto y = ideal_lowpass(x, fs, cutoff);
  PeriodogramConfig pc;
  pc.window = WindowType::kRectangular;
  pc.remove_mean = false;
  const auto psd = periodogram(y, fs, pc);
  double above = 0.0;
  for (std::size_t k = 0; k < psd.bins(); ++k)
    if (psd.frequency_hz[k] > cutoff * 1.001) above += psd.power[k];
  EXPECT_NEAR(above, 0.0, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, LowpassSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.95));

}  // namespace
