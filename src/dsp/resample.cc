#include "dsp/resample.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "dsp/filter.h"
#include "util/check.h"

namespace nyqmon::dsp {

std::vector<double> decimate(std::span<const double> x, std::size_t factor) {
  NYQMON_CHECK(factor >= 1);
  NYQMON_CHECK(!x.empty());
  std::vector<double> out;
  out.reserve(x.size() / factor + 1);
  for (std::size_t i = 0; i < x.size(); i += factor) out.push_back(x[i]);
  return out;
}

std::vector<double> decimate_antialiased(std::span<const double> x,
                                         double sample_rate_hz,
                                         std::size_t factor) {
  NYQMON_CHECK(factor >= 1);
  if (factor == 1) return std::vector<double>(x.begin(), x.end());
  const double new_nyquist = sample_rate_hz / (2.0 * static_cast<double>(factor));
  const auto filtered = ideal_lowpass(x, sample_rate_hz, new_nyquist);
  return decimate(filtered, factor);
}

std::vector<double> resample_fourier(std::span<const double> x,
                                     std::size_t n_out) {
  NYQMON_CHECK(!x.empty());
  NYQMON_CHECK(n_out >= 1);
  const std::size_t n_in = x.size();
  if (n_out == n_in) return std::vector<double>(x.begin(), x.end());

  const auto spectrum = rfft(x);  // one-sided, n_in/2 + 1 bins

  // Copy the lower half of the spectrum into the new length's one-sided
  // spectrum, up to the smaller of the two Nyquist limits; irfft supplies
  // the conjugate image.
  std::vector<cdouble> out_spec(n_out / 2 + 1, cdouble(0.0, 0.0));
  const std::size_t half = std::min(n_in, n_out) / 2;
  for (std::size_t k = 0; k <= half; ++k) out_spec[k] = spectrum[k];
  // If min(n_in, n_out) is even, the bin at exactly its Nyquist frequency
  // must be real for a real result — enforce it.
  if (half >= 1 && 2 * half == std::min(n_in, n_out))
    out_spec[half] = cdouble(out_spec[half].real(), 0.0);

  auto out = irfft(out_spec, n_out);
  const double scale = static_cast<double>(n_out) / static_cast<double>(n_in);
  for (double& v : out) v *= scale;
  return out;
}

namespace {

template <typename Pick>
std::vector<double> interp_impl(std::span<const double> x,
                                double sample_rate_hz,
                                std::span<const double> query_times,
                                Pick pick) {
  NYQMON_CHECK(!x.empty());
  NYQMON_CHECK(sample_rate_hz > 0.0);
  std::vector<double> out;
  out.reserve(query_times.size());
  const double dt = 1.0 / sample_rate_hz;
  const double t_max = static_cast<double>(x.size() - 1) * dt;
  for (double t : query_times) {
    const double tc = std::clamp(t, 0.0, t_max);
    out.push_back(pick(tc / dt));
  }
  return out;
}

}  // namespace

std::vector<double> interp_linear(std::span<const double> x,
                                  double sample_rate_hz,
                                  std::span<const double> query_times) {
  return interp_impl(x, sample_rate_hz, query_times, [&](double idx) {
    const std::size_t i0 = static_cast<std::size_t>(std::floor(idx));
    const std::size_t i1 = std::min(i0 + 1, x.size() - 1);
    const double frac = idx - std::floor(idx);
    return x[i0] * (1.0 - frac) + x[i1] * frac;
  });
}

std::vector<double> interp_nearest(std::span<const double> x,
                                   double sample_rate_hz,
                                   std::span<const double> query_times) {
  return interp_impl(x, sample_rate_hz, query_times, [&](double idx) {
    const std::size_t i = std::min(
        static_cast<std::size_t>(std::llround(idx)), x.size() - 1);
    return x[i];
  });
}

}  // namespace nyqmon::dsp
