#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json lines.

Compares the bench_results/ JSON emitted by the current build against the
checked-in baseline and fails (exit 1) when any tracked higher-is-better
metric drops by more than the allowed fraction (default 30%).

Usage:
    python3 bench/check_regression.py \
        --baseline bench_results --current build/bench_results \
        [--threshold 0.30]

Metrics listed for a bench missing on either side are reported but do not
fail the gate (a freshly added bench has no baseline yet; a skipped smoke
has no current result) — only a present-and-regressed metric fails.
"""

import argparse
import json
import pathlib
import sys

# Tracked higher-is-better metrics per bench. List-valued metrics (e.g. a
# per-worker-count sweep) are compared on their maximum.
TRACKED = {
    "engine_throughput": ["pairs_per_sec"],
    "query_throughput": ["qps"],
    "scenario_frontier": ["sweep_pairs_per_sec"],
    "storage_throughput": ["ingest_wal_mb_s", "flush_mb_s", "recover_mb_s"],
    "streaming_throughput": ["samples_per_sec", "qps"],
}


def load(path: pathlib.Path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"warning: unreadable {path}: {err}")
        return None


def metric_value(doc, key):
    value = doc.get(key)
    if isinstance(value, list):
        numeric = [v for v in value if isinstance(v, (int, float))]
        return max(numeric) if numeric else None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=pathlib.Path)
    parser.add_argument("--current", required=True, type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional drop (default 0.30)")
    args = parser.parse_args()

    failures = []
    checked = 0
    for bench, keys in sorted(TRACKED.items()):
        name = f"BENCH_{bench}.json"
        base_doc = load(args.baseline / name) if (args.baseline / name).exists() else None
        cur_doc = load(args.current / name) if (args.current / name).exists() else None
        if base_doc is None:
            print(f"skip {bench}: no baseline {args.baseline / name}")
            continue
        if cur_doc is None:
            print(f"skip {bench}: no current result {args.current / name}")
            continue
        for key in keys:
            base = metric_value(base_doc, key)
            cur = metric_value(cur_doc, key)
            if base is None or cur is None or base <= 0:
                print(f"skip {bench}.{key}: missing or non-positive value")
                continue
            checked += 1
            ratio = cur / base
            status = "OK"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSION"
                failures.append((bench, key, base, cur, ratio))
            print(f"{status:>10}  {bench}.{key}: baseline {base:.1f} -> "
                  f"current {cur:.1f}  ({ratio:.2%})")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{args.threshold:.0%}:")
        for bench, key, base, cur, ratio in failures:
            print(f"  {bench}.{key}: {base:.1f} -> {cur:.1f} ({ratio:.2%})")
        return 1
    print(f"\nperf gate passed: {checked} metric(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
