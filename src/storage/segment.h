// Compressed on-disk segment format for sealed retention data.
//
// A segment holds, per stream: a header (grid, generation, cumulative
// stats), zero or more chunk blocks (regular grid t0/dt/count + Gorilla-XOR
// compressed values; timestamps are implicit), and a hot-tail block (the
// raw unsealed tail, also XOR-compressed). Every block is length-framed and
// CRC32-protected so recovery can detect corruption per block: a bad chunk
// block is skipped and counted, not propagated into reconstruction.
//
// Segments are deltas: a flush writes only chunks sealed since the previous
// flush, plus a fresh header + tail checkpoint. Readers merge segments in
// manifest order — chunk blocks concatenate; header and tail blocks are
// superseded by later segments (latest wins). Compaction folds a run of
// delta segments into one full segment using exactly this merge.
//
// On-disk format (canonical spec: docs/FORMATS.md):
//   file   := "NYQSEG1\n" block*
//   block  := u8 type | u32 payload_len | u32 crc32(payload) | payload
//   type 1 (stream header) := name:str16 | f64 rate_hz | f64 t0 | f64 hot_t0
//                             | u64 generation | u64 ingested | u64 sealed
//                             | u64 stored | u64 chunks | u64 chunks_reduced
//                             | u64 bytes_raw | u64 bytes_stored
//   type 2 (chunk)  := f64 t0 | f64 dt | u32 count | u8 codec | bits
//   type 3 (tail)   := u32 count | u8 codec | bits
// Chunk/tail blocks bind to the most recent stream header block.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "monitor/store.h"

namespace nyqmon::sto {

inline constexpr char kSegmentMagic[8] = {'N', 'Y', 'Q', 'S', 'E', 'G',
                                          '1', '\n'};

/// What one add_stream() contributed (feeds flush accounting).
struct SegmentWriteStats {
  std::size_t streams = 0;
  std::size_t chunks = 0;
  /// Raw samples represented by the written chunk + tail blocks.
  std::uint64_t samples = 0;
};

/// Builds a segment image in memory; the manager writes + fsyncs it in one
/// shot (segments are immutable once the manifest references them).
class SegmentWriter {
 public:
  SegmentWriter();

  /// Append one stream: header block, one block per snapshot chunk, and a
  /// tail block. Delta snapshots (chunks_before > 0) are fine — the header
  /// carries cumulative stats either way.
  void add_stream(const mon::StreamSnapshot& snapshot);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  const SegmentWriteStats& stats() const { return stats_; }

 private:
  void add_block(std::uint8_t type, const std::vector<std::uint8_t>& payload);

  std::vector<std::uint8_t> bytes_;
  SegmentWriteStats stats_;
};

struct SegmentReadStats {
  std::size_t blocks = 0;
  std::size_t chunks = 0;
  /// Blocks whose CRC (or framing/decode) failed and were skipped — each is
  /// a counted warning, never fatal. A bad header block orphans the
  /// chunk/tail blocks that follow it; those are skipped and counted too.
  std::size_t crc_skipped_blocks = 0;
  /// Streams whose header block parsed cleanly in THIS segment. Recovery
  /// uses it to spot streams whose newest header was lost to corruption
  /// (they restore to an older flush epoch and must not take WAL grafts).
  std::vector<std::string> header_streams;
};

/// Read one segment file and merge it into `streams`: headers and tails
/// overwrite (latest segment wins), chunk blocks append in file order.
/// Throws std::runtime_error only when the file itself is unreadable or not
/// a segment; corrupt blocks inside are skipped and counted.
SegmentReadStats read_segment(const std::string& path,
                              std::map<std::string, mon::StreamSnapshot>& streams);

/// Same merge over an in-memory segment image — the cluster HANDOFF path,
/// where a segment ships over the wire instead of through a file. Throws
/// std::runtime_error when the image lacks the segment magic.
SegmentReadStats read_segment_bytes(
    std::span<const std::uint8_t> bytes,
    std::map<std::string, mon::StreamSnapshot>& streams);

}  // namespace nyqmon::sto
