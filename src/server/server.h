// NyqmondServer — the network front of the retention store.
//
// A poll(2)-driven TCP server speaking the length-prefixed binary
// protocol of server/protocol.h: INGEST appends batched samples to retained
// streams (created on first ingest), QUERY runs a selector + spec through a
// QueryEngine, STATS reports a JSON counter snapshot, CHECKPOINT seals the
// durable tier, METRICS exposes the process metric registry as Prometheus
// text, and TRACE drains the in-process trace rings as chrome://tracing
// JSON.
//
// Threading model (multi-reactor): one accept thread owns the listening
// socket and deals accepted connections round-robin across N reactor
// threads (ServerConfig::reactors, default 1). Each reactor runs its own
// poll(2) loop over the connections it exclusively owns — per-connection
// state (buffers, bounded reply queues, backpressure) is single-threaded
// by ownership, while the store, query engine, and wire counters are
// shared and thread-safe. Commands execute inline on the owning reactor,
// so per-connection behavior stays sequential and deterministic, and with
// the default single reactor the wire-visible ordering across connections
// matches the original single-loop server. The *store* stays safely
// shared with a concurrently running StreamingRuntime — serving during
// ingest is the normal mode — and reads reconstruct from snapshot handles
// (monitor/store.h ReadSnapshot), never holding stripe locks.
//
// CHECKPOINT (and the persist step of HANDOFF import) quiesces the
// reactors: the initiating reactor parks every other reactor at its loop
// top before running the flush, so no INGEST dispatch can land between
// the store snapshot and the WAL swap on another thread.
//
// Robustness: partial frames are buffered per connection, oversized or
// zero length prefixes answer ERR and close (a corrupt prefix cannot be
// resynchronized), unknown verbs and malformed payloads answer ERR and
// keep the connection, and a client that disconnects mid-reply just gets
// its connection reaped (SIGPIPE is never raised). Shutdown is graceful:
// stop() drains the loop, closes every connection, and flushes a final
// checkpoint so the WAL + segments on disk recover to the served state.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "monitor/striped_store.h"
#include "query/engine.h"
#include "server/protocol.h"
#include "storage/manager.h"

namespace nyqmon::srv {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  std::size_t listen_backlog = 64;
  /// Per-connection reply queue bound in bytes; once a client's undelivered
  /// replies reach the bound, the server stops reading (and dispatching)
  /// that connection until it drains. 0 = default to max_frame_bytes.
  std::size_t max_reply_queue_bytes = 0;
  /// Same bound in whole queued reply frames — catches a pipelining client
  /// whose tiny replies would never trip the byte bound.
  std::size_t max_reply_queue_frames = 64;
  /// Drop (close) a connection whose bounded reply queue makes no send
  /// progress for this long — a stuck client must not hold its replies in
  /// server memory forever. 0 = stall indefinitely, never drop.
  std::uint32_t slow_client_timeout_ms = 0;
  /// Event-loop shards. Each reactor thread exclusively owns the
  /// connections the accept thread deals to it (round-robin) and runs the
  /// full read/dispatch/reply loop for them, so concurrent clients are
  /// served in parallel instead of head-of-line blocking behind one slow
  /// request. 1 (the default) serves every connection from a single
  /// reactor, preserving the original cross-connection ordering.
  std::size_t reactors = 1;
  /// Fleet identity: tags every trace span and log record produced on the
  /// event-loop threads, and names this node in stitched fleet timelines.
  /// Empty = unnamed (standalone nyqmond).
  std::string node_name;
  qry::QueryEngineConfig query;
  /// CHECKPOINT delegate. Servers fronting a StreamingRuntime must point
  /// this at StreamingRuntime::checkpoint() so the flush is quiesced
  /// against the scheduler; when unset, the server flushes `storage`
  /// directly. Either way the server quiesces its own reactors first
  /// (see run_quiesced), so server-side INGEST on other reactors cannot
  /// race the flush — the delegate only needs to quiesce *its* writers.
  std::function<sto::FlushStats()> checkpoint_fn;
  /// Cluster hook: when set, every decoded request verb is offered to this
  /// function before the built-in handlers. A returned frame (OK or ERR)
  /// becomes the reply; nullopt falls through to the built-in handler, in
  /// which case the hook must not have consumed any payload bytes from the
  /// reader. Runs on the loop thread; a thrown exception answers ERR. The
  /// scatter-gather router fronts a fleet with this — it gets the socket
  /// loop, framing robustness, and reply-queue bounds for free.
  std::function<std::optional<std::vector<std::uint8_t>>(Verb,
                                                         sto::ByteReader&)>
      intercept;
};

/// Monotonic wire counters (readable from any thread).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames = 0;
  std::uint64_t ingest_frames = 0;
  std::uint64_t query_frames = 0;
  std::uint64_t stats_frames = 0;
  std::uint64_t checkpoint_frames = 0;
  std::uint64_t metrics_frames = 0;
  std::uint64_t trace_frames = 0;
  std::uint64_t handoff_frames = 0;
  std::uint64_t logs_frames = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t samples_ingested = 0;
  /// Connections that entered reply-queue backpressure (reads suspended).
  std::uint64_t backpressure_stalls = 0;
  /// Connections dropped for exceeding slow_client_timeout_ms while stalled.
  std::uint64_t slow_clients_dropped = 0;
};

class NyqmondServer {
 public:
  /// The store (and storage manager, when given) must outlive the server.
  /// `storage` may be nullptr for an in-memory server.
  NyqmondServer(mon::StripedRetentionStore& store,
                sto::StorageManager* storage, ServerConfig config = {});
  ~NyqmondServer();

  NyqmondServer(const NyqmondServer&) = delete;
  NyqmondServer& operator=(const NyqmondServer&) = delete;

  /// Bind, listen, and spawn the event loop. Throws std::runtime_error on
  /// socket failure.
  void start();

  /// Graceful shutdown: stop accepting, close connections, join the loop,
  /// and flush a final checkpoint. Idempotent.
  void stop();

  bool running() const { return running_.load(); }

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  ServerStats stats() const;

  const ServerConfig& config() const { return config_; }

 private:
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_sent = 0;
    /// Whole reply frames queued since `out` last drained empty.
    std::size_t out_frames = 0;
    bool close_after_flush = false;
    /// Reply queue at its bound with reads suspended; stall_since marks
    /// when the current stall episode began (slow-client drop clock).
    bool stalled = false;
    std::chrono::steady_clock::time_point stall_since{};
  };

  /// One event-loop shard. The reactor thread exclusively owns `conns`;
  /// the accept thread only touches `inbox` (under `inbox_mu`) and the
  /// wake pipe's write end. The reply_* atomics publish this reactor's
  /// share of the queue-depth gauges.
  struct Reactor {
    std::size_t index = 0;
    int wake_pipe[2] = {-1, -1};
    std::thread thread;
    std::mutex inbox_mu;
    std::vector<int> inbox;  ///< accepted fds awaiting adoption
    std::vector<std::unique_ptr<Connection>> conns;
    std::atomic<std::size_t> reply_backlog{0};
    std::atomic<std::size_t> reply_frames{0};
  };

  void accept_loop();
  void accept_clients();
  void reactor_loop(Reactor& reactor);
  /// Move the fds the accept thread dealt to this reactor into its conns.
  void adopt_inbox(Reactor& reactor);
  /// Block at a quiesce barrier while one is requested (reactor loop top).
  void park_for_quiesce();
  /// Park every *other* reactor at its loop top, run `fn`, release them.
  /// Must be called on a reactor thread (dispatch context). Serialized:
  /// a second initiator parks like any reactor until the first finishes.
  sto::FlushStats run_quiesced(const std::function<sto::FlushStats()>& fn);
  /// The CHECKPOINT body shared by handle_checkpoint, HANDOFF import's
  /// persist step, and stop()'s final flush.
  sto::FlushStats checkpoint_now();
  /// Returns false when the connection must be dropped.
  bool read_client(Connection& conn);
  bool write_client(Connection& conn);
  /// Consume every complete frame in conn.in.
  bool drain_frames(Connection& conn);
  void dispatch(Connection& conn, std::span<const std::uint8_t> body);
  std::vector<std::uint8_t> handle_ingest(sto::ByteReader& reader);
  std::vector<std::uint8_t> handle_query(sto::ByteReader& reader);
  std::vector<std::uint8_t> handle_stats();
  std::vector<std::uint8_t> handle_checkpoint();
  std::vector<std::uint8_t> handle_metrics();
  std::vector<std::uint8_t> handle_trace();
  std::vector<std::uint8_t> handle_handoff(sto::ByteReader& reader);
  std::vector<std::uint8_t> handle_logs();

  /// Effective reply-queue byte bound (config default resolution).
  std::size_t reply_queue_bytes_limit() const {
    return config_.max_reply_queue_bytes != 0 ? config_.max_reply_queue_bytes
                                              : config_.max_frame_bytes;
  }
  /// True when this connection's undelivered replies are at their bound.
  bool reply_queue_full(const Connection& conn) const {
    return conn.out.size() - conn.out_sent >= reply_queue_bytes_limit() ||
           conn.out_frames >= config_.max_reply_queue_frames;
  }

  mon::StripedRetentionStore& store_;
  sto::StorageManager* storage_;
  ServerConfig config_;
  qry::QueryEngine query_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< wakes the accept thread
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  ///< accept thread's round-robin cursor

  // Cross-reactor checkpoint quiesce barrier (see run_quiesced).
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  bool quiesce_requested_ = false;
  std::size_t quiesce_parked_ = 0;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> ingest_frames_{0};
  std::atomic<std::uint64_t> query_frames_{0};
  std::atomic<std::uint64_t> stats_frames_{0};
  std::atomic<std::uint64_t> checkpoint_frames_{0};
  std::atomic<std::uint64_t> metrics_frames_{0};
  std::atomic<std::uint64_t> trace_frames_{0};
  std::atomic<std::uint64_t> handoff_frames_{0};
  std::atomic<std::uint64_t> logs_frames_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> samples_ingested_{0};
  std::atomic<std::uint64_t> backpressure_stalls_{0};
  std::atomic<std::uint64_t> slow_clients_dropped_{0};
};

}  // namespace nyqmon::srv
