#include "dsp/lombscargle.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"

namespace nyqmon::dsp {

Psd lomb_scargle(std::span<const double> times, std::span<const double> values,
                 const LombScargleConfig& config) {
  NYQMON_CHECK_MSG(times.size() >= 4, "lomb_scargle needs >= 4 samples");
  NYQMON_CHECK(times.size() == values.size());
  NYQMON_CHECK(config.bins >= 2);

  const std::size_t n = times.size();

  double mean = 0.0;
  if (config.remove_mean) {
    for (double v : values) mean += v;
    mean /= static_cast<double>(n);
  }

  double f_max = config.max_frequency_hz;
  if (f_max <= 0.0) {
    // Pseudo-Nyquist frequency from the median sample spacing.
    std::vector<double> gaps;
    gaps.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) gaps.push_back(times[i] - times[i - 1]);
    const auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
    std::nth_element(gaps.begin(), mid, gaps.end());
    NYQMON_CHECK_MSG(*mid > 0.0, "timestamps must be strictly increasing");
    f_max = 1.0 / (2.0 * *mid);
  }

  Psd psd;
  psd.sample_rate_hz = 2.0 * f_max;  // pseudo rate for downstream consumers
  psd.frequency_hz.resize(config.bins);
  psd.power.resize(config.bins);

  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  for (std::size_t k = 0; k < config.bins; ++k) {
    // Bin centres from f_max/bins up to f_max (no DC bin: the mean is
    // removed and DC is undefined for the Lomb form).
    const double f = f_max * static_cast<double>(k + 1) /
                     static_cast<double>(config.bins);
    const double w = kTwoPi * f;

    // tau makes the periodogram invariant under time translation.
    double s2 = 0.0, c2 = 0.0;
    for (double t : times) {
      s2 += std::sin(2.0 * w * t);
      c2 += std::cos(2.0 * w * t);
    }
    const double tau = std::atan2(s2, c2) / (2.0 * w);

    double cs = 0.0, ss = 0.0, cc = 0.0, s_s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double arg = w * (times[i] - tau);
      const double c = std::cos(arg);
      const double si = std::sin(arg);
      const double d = values[i] - mean;
      cs += d * c;
      ss += d * si;
      cc += c * c;
      s_s += si * si;
    }

    double p = 0.0;
    if (cc > 0.0) p += cs * cs / cc;
    if (s_s > 0.0) p += ss * ss / s_s;
    psd.frequency_hz[k] = f;
    psd.power[k] = std::max(0.0, p / static_cast<double>(n));
  }
  return psd;
}

}  // namespace nyqmon::dsp
