#include "query/merge.h"

#include <algorithm>
#include <stdexcept>

namespace nyqmon::qry {

namespace {

/// Sorted, deduped union of one string-vector member across all slices.
void sorted_union(std::vector<ShardSlice>& slices,
                  std::vector<std::string> ShardSlice::*member,
                  std::vector<std::string>& out) {
  for (const ShardSlice& s : slices)
    out.insert(out.end(), (s.*member).begin(), (s.*member).end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

MergedQuery merge_shard_slices(const QuerySpec& spec,
                               std::vector<ShardSlice> slices) {
  MergedQuery merged;
  sorted_union(slices, &ShardSlice::matched, merged.matched);

  // Per-stream series: first copy in slice order wins (see header), then
  // lexicographic by label — the order QueryEngine::execute emits.
  std::vector<QuerySeries> streams;
  for (ShardSlice& s : slices) {
    for (QuerySeries& qs : s.series) {
      const bool seen =
          std::any_of(streams.begin(), streams.end(),
                      [&](const QuerySeries& have) {
                        return have.label == qs.label;
                      });
      if (seen) {
        ++merged.duplicate_streams;
        continue;
      }
      streams.push_back(std::move(qs));
    }
  }
  std::stable_sort(streams.begin(), streams.end(),
                   [](const QuerySeries& a, const QuerySeries& b) {
                     return a.label < b.label;
                   });
  merged.reconstructed.reserve(streams.size());
  for (const QuerySeries& qs : streams) merged.reconstructed.push_back(qs.label);

  const std::size_t n_out = spec.grid_points();
  for (const QuerySeries& qs : streams)
    if (qs.series.size() != n_out)
      throw std::runtime_error(
          "shard series '" + qs.label + "' has " +
          std::to_string(qs.series.size()) + " points, spec grid has " +
          std::to_string(n_out) + " — shards answered different specs");

  if (streams.empty()) return merged;  // series stays empty, like the engine

  if (spec.aggregate == Aggregation::kNone) {
    merged.series = std::move(streams);
    return merged;
  }

  // Cross-stream reduction per output timestamp, streams in lexicographic
  // order — byte-for-byte the engine's own reduction loop.
  std::vector<double> reduced(n_out, 0.0);
  std::vector<double> column(streams.size());
  for (std::size_t t = 0; t < n_out; ++t) {
    for (std::size_t i = 0; i < streams.size(); ++i)
      column[i] = streams[i].series[t];
    reduced[t] = aggregate_column(spec.aggregate, column);
  }
  merged.series.push_back(
      {std::string(to_string(spec.aggregate)) + "(" + spec.selector + ")",
       sig::RegularSeries(spec.t_begin, spec.step_s, std::move(reduced))});
  return merged;
}

}  // namespace nyqmon::qry
