// Bounded in-process trace capture with a chrome://tracing exporter and
// distributed-tracing context propagation.
//
// A TraceRecorder keeps one fixed-capacity ring of TraceEvents per writing
// thread. Writers append complete spans ('X' phase in the Trace Event
// Format): the ScopedSpan RAII helper timestamps construction and records
// name/category/start/duration on destruction. When a ring is full the
// oldest event is overwritten and a drop is counted — tracing is a bounded
// window onto recent activity, never a memory hazard on long runs.
//
// Distributed tracing: every thread carries a ThreadTraceContext
// {trace_id, span_id, node}. ScopedSpan draws a fresh span id, parents
// itself under the thread's current span, and installs itself as the
// current span for its scope — so nested spans form a tree, and spans on
// different nodes that adopted the same wire-propagated trace_id stitch
// into one timeline. NyqmondServer dispatch adopts the TraceContext
// carried as optional trailing bytes on request frames (see
// src/server/protocol.h) via ScopedThreadTraceContext; server event-loop
// threads tag their spans with the node's name via set_thread_node().
// Node names are interned (never freed) so TraceEvent stays a POD of
// pointers.
//
// Capture is off by default; set_enabled(true) arms it (nyqmond does this
// at startup). Disarmed spans cost one relaxed atomic load. Each ring has
// its own mutex so a writer and a drain() from another thread never race
// on the slots; writers almost always find their ring uncontended.
//
// drain() snapshots and clears every ring, returning events merged in
// timestamp order. Draining is *consuming* and serialized: concurrent
// drains queue on a dedicated mutex, so two `nyqmon_ctl trace` calls each
// get a complete, disjoint batch instead of interleaved partial drains.
// export_chrome_json() wraps a drain in the JSON object format
// ({"traceEvents":[...]}) that chrome://tracing and Perfetto load
// directly; events carry their trace/span/parent ids as args and are
// grouped into per-node pids. merge_chrome_json() splices several such
// exports (one per fleet node) into a single timeline.
//
// Event names/categories are `const char*` by design: recording does not
// allocate, so callers must pass string literals (or otherwise
// recorder-outliving storage, e.g. intern_node_name()).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nyqmon::obs {

struct TraceEvent {
  const char* name = nullptr;      ///< literal; span label
  const char* category = nullptr;  ///< literal; layer ("engine", "storage", …)
  std::uint64_t ts_ns = 0;         ///< span start, recorder-epoch-relative
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< dense per-recorder writer-thread id, from 1
  std::uint64_t trace_id = 0;        ///< 0 = not part of a distributed trace
  std::uint64_t span_id = 0;         ///< 0 = recorded before span ids existed
  std::uint64_t parent_span_id = 0;  ///< 0 = root span of its trace/thread
  const char* node = nullptr;  ///< interned node name; nullptr = unnamed
};

/// Per-thread distributed-tracing state. `span_id` is the innermost live
/// ScopedSpan on this thread (what a new child parents under); `node` tags
/// every span the thread records.
struct ThreadTraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  const char* node = nullptr;
};

/// The calling thread's mutable context (thread_local storage).
ThreadTraceContext& thread_trace_context() noexcept;

/// Copy `name` into the process-lifetime intern table and return the
/// stable pointer (empty string interns to nullptr). Idempotent per name.
const char* intern_node_name(const std::string& name);

/// Tag every span subsequently recorded by the calling thread with `node`
/// (interned). Empty clears the tag.
void set_thread_node(const std::string& node);

/// Process-unique, never-zero span/trace id. Mixed (splitmix64) so ids
/// drawn on different nodes of a fleet collide only by 2^-64 chance.
std::uint64_t next_span_id() noexcept;

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  explicit TraceRecorder(std::size_t ring_capacity = kDefaultRingCapacity);

  /// The process-wide recorder every NYQMON_TRACE_SPAN site writes to.
  static TraceRecorder& instance();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since this recorder's epoch (its construction).
  std::uint64_t now_ns() const;

  /// Append one complete span to the calling thread's ring (overwriting
  /// the oldest event, counted as a drop, when full). No-op when disabled.
  /// The trailing id/node fields default to "not distributed".
  void record(const char* name, const char* category, std::uint64_t ts_ns,
              std::uint64_t dur_ns, std::uint64_t trace_id = 0,
              std::uint64_t span_id = 0, std::uint64_t parent_span_id = 0,
              const char* node = nullptr);

  /// Move every buffered event out (rings empty afterwards), merged in
  /// start-timestamp order. Consuming and serialized: concurrent drains
  /// are mutually exclusive, each returning a complete disjoint batch.
  /// Safe concurrently with writers: events recorded during the drain
  /// land in the next one.
  std::vector<TraceEvent> drain();

  /// Events overwritten before any drain could see them.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// drain() + Trace Event Format (JSON object form). Loads directly in
  /// chrome://tracing / Perfetto. Events are grouped into one pid per
  /// node name (process_name metadata emitted per pid); distributed ids
  /// ride along as hex-string args {trace_id, span_id, parent_span_id}.
  std::string export_chrome_json();

 private:
  struct Ring {
    explicit Ring(std::size_t capacity, std::uint32_t tid)
        : slots(capacity), tid(tid) {}
    std::mutex mu;
    std::vector<TraceEvent> slots;
    std::size_t head = 0;      ///< next write position
    std::uint64_t written = 0;  ///< total events ever recorded here
    std::uint32_t tid;
  };

  Ring& local_ring();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  /// Process-unique recorder id: the thread-local ring cache keys on this
  /// instead of `this`, so a recorder reallocated at a dead one's address
  /// (stack-local recorders in tests) can never hit a stale cache entry.
  std::uint64_t uid_;
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;  ///< one per writer thread
  std::mutex drain_mu_;  ///< serializes the consuming drains
};

/// Splice several export_chrome_json() outputs (e.g. one per fleet node)
/// into one timeline. Inputs that don't match the exporter's fixed shell
/// are skipped. Per-node pids are stable name hashes, so spans keep their
/// process grouping across the merge.
std::string merge_chrome_json(const std::vector<std::string>& parts);

/// RAII span against TraceRecorder::instance(). Costs one atomic load when
/// tracing is disabled. `name`/`category` must be string literals. While
/// alive, the span is the calling thread's current span (children parent
/// under it); the previous current span is restored on destruction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category) noexcept {
    TraceRecorder& rec = TraceRecorder::instance();
    if (rec.enabled()) {
      name_ = name;
      category_ = category;
      ThreadTraceContext& ctx = thread_trace_context();
      trace_id_ = ctx.trace_id;
      parent_span_id_ = ctx.span_id;
      span_id_ = next_span_id();
      ctx.span_id = span_id_;
      t0_ns_ = rec.now_ns();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    TraceRecorder& rec = TraceRecorder::instance();
    ThreadTraceContext& ctx = thread_trace_context();
    const std::uint64_t t1 = rec.now_ns();
    rec.record(name_, category_, t0_ns_, t1 - t0_ns_, trace_id_, span_id_,
               parent_span_id_, ctx.node);
    // Restore the enclosing span as current (even if an intervening
    // adoption changed trace_id, the span stack must unwind).
    ctx.span_id = parent_span_id_;
  }

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry
  const char* category_ = nullptr;
  std::uint64_t t0_ns_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
};

/// RAII adoption of a wire-propagated trace context: installs
/// {trace_id, parent_span_id} as the calling thread's current context so
/// spans opened inside the scope join the remote caller's trace, and
/// restores the previous context on destruction. A zero trace_id adopts
/// nothing (no-op), so callers can pass an absent wire context through.
class ScopedThreadTraceContext {
 public:
  ScopedThreadTraceContext(std::uint64_t trace_id,
                           std::uint64_t parent_span_id) noexcept {
    if (trace_id == 0) return;
    ThreadTraceContext& ctx = thread_trace_context();
    saved_trace_id_ = ctx.trace_id;
    saved_span_id_ = ctx.span_id;
    ctx.trace_id = trace_id;
    ctx.span_id = parent_span_id;
    adopted_ = true;
  }
  ScopedThreadTraceContext(const ScopedThreadTraceContext&) = delete;
  ScopedThreadTraceContext& operator=(const ScopedThreadTraceContext&) =
      delete;
  ~ScopedThreadTraceContext() {
    if (!adopted_) return;
    ThreadTraceContext& ctx = thread_trace_context();
    ctx.trace_id = saved_trace_id_;
    ctx.span_id = saved_span_id_;
  }

 private:
  bool adopted_ = false;
  std::uint64_t saved_trace_id_ = 0;
  std::uint64_t saved_span_id_ = 0;
};

}  // namespace nyqmon::obs

#ifndef NYQMON_OBS_CAT
#define NYQMON_OBS_CAT2(a, b) a##b
#define NYQMON_OBS_CAT(a, b) NYQMON_OBS_CAT2(a, b)
#endif

#if defined(NYQMON_OBS_NOOP)
#define NYQMON_TRACE_SPAN(name, category)
#else
/// Trace the rest of the enclosing scope as one complete event.
#define NYQMON_TRACE_SPAN(name, category)                      \
  ::nyqmon::obs::ScopedSpan NYQMON_OBS_CAT(nyqmon_obs_span_,   \
                                           __LINE__) {         \
    name, category                                             \
  }
#endif
