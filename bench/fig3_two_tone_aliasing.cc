// Figure 3: the paper's worked example. "The original signal is the
// superposition of two sin waves at 400 and 440 Hz. Variants: (b) sampled
// above the Nyquist rate (890 Hz), (c) slightly below (800 Hz), (d) far
// below (600 Hz). Aliasing is observable in the frequency domain of (c)
// and (d); reconstructing a signal from the DFT of (d) results in a
// distorted result."
//
// The harness reports, for each variant, where the spectral peaks land and
// the reconstruction error against the analytic signal.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "dsp/psd.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "util/ascii.h"
#include "util/csv.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Figure 3: 400+440 Hz two-tone, sampled at 890 / 800 / "
              "600 Hz ===\n\n");

  const sig::SumOfSines signal({{400.0, 1.0, 0.0}, {440.0, 1.0, 0.0}});
  const double duration = 2.0;
  const double dense_fs = 4000.0;
  const auto truth =
      signal.sample(0.0, 1.0 / dense_fs,
                    static_cast<std::size_t>(duration * dense_fs));

  AsciiTable table({"variant", "fs (Hz)", "peak1 (Hz)", "peak2 (Hz)",
                    "recon NRMSE", "verdict"});
  CsvWriter csv(bench::csv_path("fig3_two_tone_aliasing"),
                {"variant", "fs_hz", "peak1_hz", "peak2_hz", "recon_nrmse"});

  struct Variant {
    const char* label;
    double fs;
  };
  const Variant variants[] = {{"(b) above Nyquist", 890.0},
                              {"(c) slightly below", 800.0},
                              {"(d) far below", 600.0}};

  for (const auto& v : variants) {
    const auto n = static_cast<std::size_t>(duration * v.fs);
    const auto sampled = signal.sample(0.0, 1.0 / v.fs, n);

    dsp::PeriodogramConfig pc;
    pc.window = dsp::WindowType::kHann;
    const auto psd = dsp::periodogram(sampled.span(), v.fs, pc);

    // Two strongest local maxima.
    std::vector<std::pair<double, double>> peaks;  // power, freq
    for (std::size_t k = 1; k + 1 < psd.bins(); ++k) {
      if (psd.power[k] > psd.power[k - 1] && psd.power[k] > psd.power[k + 1])
        peaks.emplace_back(psd.power[k], psd.frequency_hz[k]);
    }
    std::sort(peaks.rbegin(), peaks.rend());
    const double p1 = peaks.size() > 0 ? peaks[0].second : 0.0;
    const double p2 = peaks.size() > 1 ? peaks[1].second : 0.0;

    // Reconstruct (upsample) onto the dense grid and compare with truth.
    const auto recon = rec::reconstruct(sampled, truth.size());
    // Interior only: block-edge ringing is a property of finite blocks,
    // not of aliasing.
    const std::size_t lo = truth.size() / 8;
    const std::size_t hi = truth.size() * 7 / 8;
    std::vector<double> t_mid(truth.values().begin() + static_cast<std::ptrdiff_t>(lo),
                              truth.values().begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<double> r_mid(recon.values().begin() + static_cast<std::ptrdiff_t>(lo),
                              recon.values().begin() + static_cast<std::ptrdiff_t>(hi));
    const double err = rec::nrmse(t_mid, r_mid);

    const bool aliased = v.fs < 880.0;
    table.row({v.label, AsciiTable::format_double(v.fs),
               AsciiTable::format_double(std::max(p1, p2)),
               AsciiTable::format_double(std::min(p1, p2)),
               AsciiTable::format_double(err),
               aliased ? "aliased" : "clean"});
    csv.row_numeric({static_cast<double>(&v - variants), v.fs,
                     std::max(p1, p2), std::min(p1, p2), err});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: at 890 Hz the peaks sit at 400/440 Hz and the\n"
              "reconstruction matches; at 800 Hz the 440 Hz tone folds to\n"
              "360 Hz; at 600 Hz both tones fold (200/160 Hz) and the\n"
              "reconstruction is badly distorted.\n");
  return 0;
}
