// Figure 2: the conceptual illustration — sampling a signal above vs below
// its Nyquist rate, shown in the frequency domain. Sampling at f1 can be
// thought of as adding copies of the spectrum f1 apart; below the Nyquist
// rate the copies overlap (aliasing) and the PSD is distorted.
//
// The harness renders the one-sided PSD of a band-limited signal sampled
// above and below its Nyquist rate and reports the spectral distortion.
#include <cstdio>

#include "common.h"
#include "dsp/psd.h"
#include "reconstruct/error.h"
#include "signal/generators.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Figure 2: spectra when sampling above vs below the "
              "Nyquist rate ===\n\n");

  // A two-tone signal band-limited at 100 Hz (Nyquist rate 200 Hz).
  const sig::SumOfSines signal({{60.0, 1.0, 0.0}, {100.0, 0.8, 1.0}});
  const double duration = 4.0;

  CsvWriter csv(bench::csv_path("fig2_alias_spectra"),
                {"case", "sample_rate_hz", "frequency_hz", "power"});

  struct Case {
    const char* label;
    double fs;
  };
  const Case cases[] = {{"above Nyquist (fs=500)", 500.0},
                        {"below Nyquist (fs=150)", 150.0}};

  for (const auto& c : cases) {
    const auto n = static_cast<std::size_t>(duration * c.fs);
    const auto trace = signal.sample(0.0, 1.0 / c.fs, n);
    dsp::PeriodogramConfig pc;
    pc.window = dsp::WindowType::kHann;
    const auto psd = dsp::periodogram(trace.span(), c.fs, pc);

    std::printf("--- Sampled at %g Hz (%s) ---\n", c.fs, c.label);
    std::printf("%s\n", ascii_series(psd.power, 72, 10).c_str());
    // Strongest two bins tell the story: 60/100 Hz above Nyquist; folded
    // images below it (150-100=50 Hz, 150-60=90 Hz).
    std::vector<std::pair<double, double>> peaks;
    for (std::size_t k = 1; k + 1 < psd.bins(); ++k) {
      if (psd.power[k] > psd.power[k - 1] && psd.power[k] > psd.power[k + 1] &&
          psd.power[k] > 0.01) {
        peaks.emplace_back(psd.frequency_hz[k], psd.power[k]);
      }
      csv.row({c.label, CsvWriter::format_double(c.fs),
               CsvWriter::format_double(psd.frequency_hz[k]),
               CsvWriter::format_double(psd.power[k])});
    }
    std::printf("spectral peaks:");
    for (const auto& [f, p] : peaks) std::printf("  %.1f Hz (%.3f)", f, p);
    std::printf("\n\n");
  }

  std::printf("True tones: 60 Hz and 100 Hz. Above the Nyquist rate both\n"
              "appear at their true frequencies; below it, the 100 Hz tone\n"
              "folds to 50 Hz and the 60 Hz tone to 90 Hz — the aliased\n"
              "copies the paper's Figure 2 sketches.\n");
  return 0;
}
