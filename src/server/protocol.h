// nyqmond wire protocol: length-prefixed binary frames over TCP.
// Canonical spec (framing, caps, error semantics): docs/FORMATS.md.
//
// Frame layout (all integers little-endian, floats IEEE-754 f64 bits):
//
//   u32 body_len | body
//
// Request  body: u8 verb   | verb payload
// Response body: u8 status | response payload       (status 0=OK, 1=ERR)
//
// An ERR payload is a u16-length-prefixed UTF-8 message. A body_len of 0 or
// larger than the server's frame cap is a protocol violation: the server
// answers with ERR and closes the connection (it cannot resynchronize a
// corrupt length prefix).
//
// Verbs:
//   INGEST (1)      u16 name_len|name, f64 rate_hz, f64 t0, u32 count,
//                   count × f64 values
//                   → OK: u64 stream_total_ingested
//                   The stream is created on first ingest (rate/t0 taken
//                   from the first frame; later frames append in grid
//                   order).
//   QUERY (2)       u16 sel_len|selector, f64 t_begin, f64 t_end,
//                   f64 step_s, u8 transform, u8 aggregation
//                   → OK: u8 cache_hit, u32 matched, u32 reconstructed,
//                     u32 n_series, then per series: u16 label_len|label,
//                     f64 t0, f64 dt, u32 n, n × f64 values
//   STATS (3)       (empty)
//                   → OK: the rest of the payload is a UTF-8 JSON object
//                     (store rollup + serving counters + server counters)
//   CHECKPOINT (4)  (empty)
//                   → OK: u8 persisted, u64 chunks, u64 bytes_written
//                   persisted=0 means the server runs without a durable
//                   tier; the frame still succeeds.
//   METRICS (5)     (empty)
//                   → OK: the rest of the payload is UTF-8 Prometheus text
//                     exposition of the process metric registry (catalog:
//                     docs/OBSERVABILITY.md)
//   TRACE (6)       (empty), optionally u8 flags (bit 0 kTraceFleet: a
//                   router scatter-gathers every backend's drain and
//                   stitches them with its own into one timeline)
//                   → OK: the rest of the payload is UTF-8 JSON in the
//                     chrome://tracing Trace Event Format, draining the
//                     in-process trace rings (empty traceEvents list when
//                     capture is disabled server-side). The drain is
//                     consuming and serialized: concurrent TRACE requests
//                     each get a complete, disjoint batch.
//   HANDOFF (7)     u8 direction, then
//                     direction 0 (EXPORT): u16 sel_len|selector
//                     → OK: u32 n_streams, u64 n_samples, segment-format
//                       bytes (storage/segment.h, "NYQSEG1\n" magic) for
//                       every stream matching the selector
//                     direction 1 (IMPORT): segment-format bytes
//                     → OK: u32 n_streams, u64 n_samples, u8 persisted
//                     The cluster topology-change path: a leaving node's
//                     sealed state ships to its new owner as a segment
//                     image; import restores the streams and (when a
//                     durable tier is attached) checkpoints them through
//                     the manifest's atomic commit, so the handoff is
//                     WAL/segment-recoverable the moment OK is answered.
//   LOGS (8)        (empty)
//                   → OK: the rest of the payload is UTF-8 `nyqlog v1`
//                     text — a consuming drain of the structured log
//                     rings (src/obs/log.h; schema: docs/OBSERVABILITY.md)
//
// Extensions (all optional, absent bytes mean "off" — a pre-cluster peer
// interoperates unchanged):
//   * QUERY requests may append u8 flags. Bit 0 (kQueryWantMatched) asks
//     the reply to append, after the series block: u32 n_matched, then
//     n_matched × u16 len|stream_id (the matched set, lexicographic).
//     The cluster router needs the labels — not just the count — to
//     dedupe streams that two shards both hold mid-handoff. Bit 1
//     (kQueryWantExplain) asks the reply to append — after the
//     matched-labels block, if any — a per-request stage breakdown:
//     u64 total_ns, u8 n_stages, then per stage u16 len|name, u64 ns.
//   * METRICS and TRACE requests may append u8 flags; bit 0 asks a
//     router to scatter-gather the whole fleet (kMetricsFleet /
//     kTraceFleet). Backends ignore the flags byte.
//   * An ERR payload may append detail entries after the message:
//     u8 n_details, then per entry u16 len|node_id, u16 len|error. The
//     router's partial-failure report: which backends failed and why.
//   * Any request body may append a 21-byte TraceContext trailer
//     (u64 trace_id, u64 parent_span_id, u8 sampled, u32 magic "NYTC"),
//     detected by the magic at the body's tail and stripped before verb
//     decoding. It propagates distributed-tracing identity across hops
//     so ScopedSpans on every node share one trace_id. An old peer that
//     ignores the convention still interoperates: for payload-carrying
//     verbs the trailer makes the strict decoder answer ERR (framing
//     intact, connection kept), and routers simply don't inject toward
//     peers that predate it — absent bytes mean "no context".
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "query/spec.h"
#include "storage/io.h"
#include "util/check.h"

namespace nyqmon::srv {

/// Default cap on one frame body; oversized length prefixes are answered
/// with ERR and the connection is closed.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class Verb : std::uint8_t {
  kIngest = 1,
  kQuery = 2,
  kStats = 3,
  kCheckpoint = 4,
  kMetrics = 5,
  kTrace = 6,
  kHandoff = 7,
  kLogs = 8,
};

enum class Status : std::uint8_t { kOk = 0, kError = 1 };

/// QUERY request flag bits (the optional trailing u8).
inline constexpr std::uint8_t kQueryWantMatched = 0x01;
inline constexpr std::uint8_t kQueryWantExplain = 0x02;

/// TRACE / METRICS request flag bits (optional trailing u8): bit 0 asks a
/// router to scatter-gather the whole fleet instead of answering locally.
inline constexpr std::uint8_t kTraceFleet = 0x01;
inline constexpr std::uint8_t kMetricsFleet = 0x01;

/// HANDOFF direction byte.
enum class HandoffDirection : std::uint8_t { kExport = 0, kImport = 1 };

struct IngestRequest {
  std::string stream;
  double rate_hz = 0.0;
  double t0 = 0.0;
  std::vector<double> values;
};

// ------------------------------------------------- trace-context trailer ---

/// Magic closing a TraceContext trailer; the bytes "NYTC" little-endian.
inline constexpr std::uint32_t kTraceContextMagic = 0x4354594eu;
/// Trailer size: u64 trace_id + u64 parent_span_id + u8 sampled + u32 magic.
inline constexpr std::size_t kTraceContextBytes = 21;

/// Distributed-tracing identity carried as optional trailing bytes on any
/// request body. trace_id 0 means "no context" and is never emitted.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = false;
  bool active() const noexcept { return trace_id != 0; }
};

inline void append_trace_context(std::vector<std::uint8_t>& payload,
                                 const TraceContext& ctx) {
  sto::put_u64(payload, ctx.trace_id);
  sto::put_u64(payload, ctx.parent_span_id);
  sto::put_u8(payload, ctx.sampled ? 1 : 0);
  sto::put_u32(payload, kTraceContextMagic);
}

/// Detect and strip a TraceContext trailer from the tail of a request
/// body (verb byte included in `body`). Returns the context — inactive if
/// no well-formed trailer is present, in which case `body` is untouched.
/// A payload whose last 21 bytes happen to end in the magic is
/// misdetected with probability 2^-32 per request; the failure mode is an
/// ERR reply (truncated decode), never corruption.
inline TraceContext strip_trace_context(std::span<const std::uint8_t>& body) {
  TraceContext ctx;
  if (body.size() < 1 + kTraceContextBytes) return ctx;  // verb + trailer
  sto::ByteReader r(body.subspan(body.size() - kTraceContextBytes));
  const std::uint64_t trace_id = r.get_u64();
  const std::uint64_t parent_span_id = r.get_u64();
  const std::uint8_t sampled = r.get_u8();
  const std::uint32_t magic = r.get_u32();
  if (!r.ok() || magic != kTraceContextMagic || trace_id == 0) return ctx;
  ctx.trace_id = trace_id;
  ctx.parent_span_id = parent_span_id;
  ctx.sampled = sampled != 0;
  body = body.first(body.size() - kTraceContextBytes);
  return ctx;
}

/// One named stage of a query EXPLAIN breakdown.
struct ExplainEntry {
  std::string stage;
  std::uint64_t ns = 0;
};

/// The EXPLAIN block of a QUERY reply (kQueryWantExplain). Stage names
/// prefixed "backend/" are informational fan-out latencies that overlap
/// in time; all other stages are contiguous and sum to ~total_ns.
struct QueryExplainBlock {
  std::uint64_t total_ns = 0;
  std::vector<ExplainEntry> stages;
};

/// Decoded QUERY response.
struct QueryReply {
  bool cache_hit = false;
  std::uint32_t matched = 0;
  std::uint32_t reconstructed = 0;
  std::vector<qry::QuerySeries> series;
  /// Present only when the request set kQueryWantMatched: the matched
  /// stream IDs themselves, lexicographic.
  std::vector<std::string> matched_labels;
  /// Present only when the request set kQueryWantExplain (and the server
  /// understands the flag — an old peer simply omits the block).
  std::optional<QueryExplainBlock> explain;
};

/// One (node, error) entry of an ERR-with-detail payload.
struct ErrorDetail {
  std::string node;
  std::string error;
};

/// Decoded HANDOFF IMPORT response.
struct HandoffImportReply {
  std::uint32_t streams = 0;
  std::uint64_t samples = 0;
  /// True when the import was checkpointed into the durable tier before
  /// OK was answered (the node runs with storage attached).
  bool persisted = false;
};

/// Decoded HANDOFF EXPORT response.
struct HandoffExportReply {
  std::uint32_t streams = 0;
  std::uint64_t samples = 0;
  /// Segment-format image (storage/segment.h) of the exported streams.
  std::vector<std::uint8_t> segment;
};

/// Decoded CHECKPOINT response.
struct CheckpointReply {
  bool persisted = false;
  std::uint64_t chunks = 0;
  std::uint64_t bytes_written = 0;
};

// ------------------------------------------------------------- framing ----

/// u32 length prefix + body (u8 first_byte + payload). The payload must
/// fit the u32 prefix; frame producers cap it (the server refuses replies
/// over its frame cap) rather than let the prefix wrap.
inline std::vector<std::uint8_t> frame(std::uint8_t first_byte,
                                       std::span<const std::uint8_t> payload) {
  NYQMON_CHECK_MSG(payload.size() < 0xffffffffull,
                   "frame payload exceeds the u32 length prefix");
  std::vector<std::uint8_t> out;
  out.reserve(5 + payload.size());
  sto::put_u32(out, static_cast<std::uint32_t>(1 + payload.size()));
  sto::put_u8(out, first_byte);
  sto::put_bytes(out, payload);
  return out;
}

inline std::vector<std::uint8_t> request_frame(
    Verb verb, std::span<const std::uint8_t> payload) {
  return frame(static_cast<std::uint8_t>(verb), payload);
}

inline std::vector<std::uint8_t> ok_frame(
    std::span<const std::uint8_t> payload) {
  return frame(static_cast<std::uint8_t>(Status::kOk), payload);
}

inline std::vector<std::uint8_t> error_frame(const std::string& message) {
  std::vector<std::uint8_t> payload;
  sto::put_string(payload, message);
  return frame(static_cast<std::uint8_t>(Status::kError), payload);
}

/// ERR carrying per-node failure detail (the router's partial-failure
/// report). Old clients read the message and ignore the trailing block.
inline std::vector<std::uint8_t> error_frame_with_detail(
    const std::string& message, const std::vector<ErrorDetail>& details) {
  std::vector<std::uint8_t> payload;
  sto::put_string(payload, message);
  sto::put_u8(payload, static_cast<std::uint8_t>(details.size()));
  for (const ErrorDetail& d : details) {
    sto::put_string(payload, d.node);
    sto::put_string(payload, d.error);
  }
  return frame(static_cast<std::uint8_t>(Status::kError), payload);
}

/// Parse the optional detail block after an ERR message. The reader must
/// be positioned just past the message string; absent or malformed
/// trailing bytes yield an empty list (detail is best-effort).
inline std::vector<ErrorDetail> decode_error_detail(sto::ByteReader& r) {
  std::vector<ErrorDetail> details;
  if (r.remaining() == 0) return details;
  const std::uint8_t n = r.get_u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    ErrorDetail d;
    d.node = r.get_string();
    d.error = r.get_string();
    if (!r.ok()) return {};
    details.push_back(std::move(d));
  }
  return details;
}

// ------------------------------------------------------------- payloads ---

inline std::vector<std::uint8_t> encode_ingest(const IngestRequest& req) {
  std::vector<std::uint8_t> p;
  sto::put_string(p, req.stream);
  sto::put_f64(p, req.rate_hz);
  sto::put_f64(p, req.t0);
  sto::put_u32(p, static_cast<std::uint32_t>(req.values.size()));
  for (const double v : req.values) sto::put_f64(p, v);
  return p;
}

inline std::optional<IngestRequest> decode_ingest(sto::ByteReader& r) {
  IngestRequest req;
  req.stream = r.get_string();
  req.rate_hz = r.get_f64();
  req.t0 = r.get_f64();
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || req.stream.empty()) return std::nullopt;
  // 64-bit multiply: a 32-bit product would wrap for huge declared counts
  // and let a tiny frame drive a multi-gigabyte reserve below.
  if (r.remaining() != 8ull * count) return std::nullopt;  // truncated values
  req.values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) req.values.push_back(r.get_f64());
  if (!r.ok()) return std::nullopt;
  return req;
}

inline std::vector<std::uint8_t> encode_query(const qry::QuerySpec& spec,
                                              std::uint8_t flags = 0) {
  std::vector<std::uint8_t> p;
  sto::put_string(p, spec.selector);
  sto::put_f64(p, spec.t_begin);
  sto::put_f64(p, spec.t_end);
  sto::put_f64(p, spec.step_s);
  sto::put_u8(p, static_cast<std::uint8_t>(spec.transform));
  sto::put_u8(p, static_cast<std::uint8_t>(spec.aggregate));
  if (flags != 0) sto::put_u8(p, flags);  // absent byte == no flags
  return p;
}

inline std::optional<qry::QuerySpec> decode_query(sto::ByteReader& r,
                                                  std::uint8_t& flags) {
  qry::QuerySpec spec;
  flags = 0;
  spec.selector = r.get_string();
  spec.t_begin = r.get_f64();
  spec.t_end = r.get_f64();
  spec.step_s = r.get_f64();
  const std::uint8_t transform = r.get_u8();
  const std::uint8_t aggregate = r.get_u8();
  if (!r.ok()) return std::nullopt;
  if (r.remaining() == 1) flags = r.get_u8();
  if (r.remaining() != 0) return std::nullopt;
  if (transform > static_cast<std::uint8_t>(qry::Transform::kZScore) ||
      aggregate > static_cast<std::uint8_t>(qry::Aggregation::kP99))
    return std::nullopt;
  spec.transform = static_cast<qry::Transform>(transform);
  spec.aggregate = static_cast<qry::Aggregation>(aggregate);
  return spec;
}

inline std::optional<qry::QuerySpec> decode_query(sto::ByteReader& r) {
  std::uint8_t flags = 0;
  return decode_query(r, flags);
}

inline std::vector<std::uint8_t> encode_query_reply(
    const qry::QueryResult& result, bool cache_hit,
    bool with_matched_labels = false,
    const QueryExplainBlock* explain = nullptr) {
  std::vector<std::uint8_t> p;
  sto::put_u8(p, cache_hit ? 1 : 0);
  sto::put_u32(p, static_cast<std::uint32_t>(result.matched.size()));
  sto::put_u32(p, static_cast<std::uint32_t>(result.reconstructed.size()));
  sto::put_u32(p, static_cast<std::uint32_t>(result.series.size()));
  for (const auto& s : result.series) {
    sto::put_string(p, s.label);
    sto::put_f64(p, s.series.t0());
    sto::put_f64(p, s.series.dt());
    sto::put_u32(p, static_cast<std::uint32_t>(s.series.size()));
    for (const double v : s.series.values()) sto::put_f64(p, v);
  }
  if (with_matched_labels) {
    sto::put_u32(p, static_cast<std::uint32_t>(result.matched.size()));
    for (const auto& name : result.matched) sto::put_string(p, name);
  }
  if (explain != nullptr) {
    sto::put_u64(p, explain->total_ns);
    sto::put_u8(p, static_cast<std::uint8_t>(
                       std::min<std::size_t>(explain->stages.size(), 255)));
    std::size_t emitted = 0;
    for (const ExplainEntry& e : explain->stages) {
      if (emitted++ == 255) break;
      sto::put_string(p, e.stage);
      sto::put_u64(p, e.ns);
    }
  }
  return p;
}

/// Decode a QUERY OK payload. `flags` must be the flags the *request*
/// carried: the optional reply blocks are positional, so the decoder
/// needs to know which were asked for. Each block is tolerated absent
/// (an old server ignores flag bits it predates), strict when present.
/// The default preserves the pre-explain behavior of treating any bytes
/// after the series block as the matched-labels block.
inline std::optional<QueryReply> decode_query_reply(
    sto::ByteReader& r, std::uint8_t flags = kQueryWantMatched) {
  QueryReply reply;
  reply.cache_hit = r.get_u8() != 0;
  reply.matched = r.get_u32();
  reply.reconstructed = r.get_u32();
  const std::uint32_t n_series = r.get_u32();
  if (!r.ok()) return std::nullopt;
  reply.series.reserve(n_series);
  for (std::uint32_t i = 0; i < n_series; ++i) {
    qry::QuerySeries s;
    s.label = r.get_string();
    const double t0 = r.get_f64();
    const double dt = r.get_f64();
    const std::uint32_t n = r.get_u32();
    if (!r.ok() || r.remaining() < 8ull * n) return std::nullopt;
    std::vector<double> values;
    values.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) values.push_back(r.get_f64());
    s.series = sig::RegularSeries(t0, dt, std::move(values));
    reply.series.push_back(std::move(s));
  }
  if (!r.ok()) return std::nullopt;
  if ((flags & kQueryWantMatched) != 0 && r.remaining() > 0) {
    const std::uint32_t n_matched = r.get_u32();
    if (!r.ok()) return std::nullopt;
    reply.matched_labels.reserve(n_matched);
    for (std::uint32_t i = 0; i < n_matched; ++i) {
      reply.matched_labels.push_back(r.get_string());
      if (!r.ok()) return std::nullopt;
    }
  }
  if ((flags & kQueryWantExplain) != 0 && r.remaining() > 0) {
    QueryExplainBlock ex;
    ex.total_ns = r.get_u64();
    const std::uint8_t n_stages = r.get_u8();
    if (!r.ok()) return std::nullopt;
    ex.stages.reserve(n_stages);
    for (std::uint8_t i = 0; i < n_stages; ++i) {
      ExplainEntry e;
      e.stage = r.get_string();
      e.ns = r.get_u64();
      if (!r.ok()) return std::nullopt;
      ex.stages.push_back(std::move(e));
    }
    reply.explain = std::move(ex);
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return reply;
}

inline std::vector<std::uint8_t> encode_checkpoint_reply(
    const CheckpointReply& reply) {
  std::vector<std::uint8_t> p;
  sto::put_u8(p, reply.persisted ? 1 : 0);
  sto::put_u64(p, reply.chunks);
  sto::put_u64(p, reply.bytes_written);
  return p;
}

inline std::optional<CheckpointReply> decode_checkpoint_reply(
    sto::ByteReader& r) {
  CheckpointReply reply;
  reply.persisted = r.get_u8() != 0;
  reply.chunks = r.get_u64();
  reply.bytes_written = r.get_u64();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return reply;
}

inline std::vector<std::uint8_t> encode_handoff_export(
    const std::string& selector) {
  std::vector<std::uint8_t> p;
  p.reserve(3 + selector.size());
  sto::put_u8(p, static_cast<std::uint8_t>(HandoffDirection::kExport));
  sto::put_string(p, selector);
  return p;
}

inline std::vector<std::uint8_t> encode_handoff_import(
    std::span<const std::uint8_t> segment) {
  std::vector<std::uint8_t> p;
  sto::put_u8(p, static_cast<std::uint8_t>(HandoffDirection::kImport));
  sto::put_bytes(p, segment);
  return p;
}

inline std::vector<std::uint8_t> encode_handoff_export_reply(
    const HandoffExportReply& reply) {
  std::vector<std::uint8_t> p;
  sto::put_u32(p, reply.streams);
  sto::put_u64(p, reply.samples);
  sto::put_bytes(p, reply.segment);
  return p;
}

inline std::optional<HandoffExportReply> decode_handoff_export_reply(
    sto::ByteReader& r) {
  HandoffExportReply reply;
  reply.streams = r.get_u32();
  reply.samples = r.get_u64();
  if (!r.ok()) return std::nullopt;
  const auto rest = r.get_bytes(r.remaining());
  reply.segment.assign(rest.begin(), rest.end());
  return reply;
}

inline std::vector<std::uint8_t> encode_handoff_import_reply(
    const HandoffImportReply& reply) {
  std::vector<std::uint8_t> p;
  sto::put_u32(p, reply.streams);
  sto::put_u64(p, reply.samples);
  sto::put_u8(p, reply.persisted ? 1 : 0);
  return p;
}

inline std::optional<HandoffImportReply> decode_handoff_import_reply(
    sto::ByteReader& r) {
  HandoffImportReply reply;
  reply.streams = r.get_u32();
  reply.samples = r.get_u64();
  reply.persisted = r.get_u8() != 0;
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return reply;
}

}  // namespace nyqmon::srv
