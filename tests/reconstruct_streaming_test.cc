// Streaming (bounded-delay) reconstruction — Section 4.3's low-latency
// alternative to whole-trace FFT interpolation.
#include <gtest/gtest.h>

#include <cmath>

#include "reconstruct/error.h"
#include "reconstruct/streaming.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::rec::StreamingConfig;
using nyqmon::rec::StreamingUpsampler;
using nyqmon::sig::RegularSeries;
using nyqmon::sig::SumOfSines;

TEST(Streaming, OutputLengthAndGrid) {
  const SumOfSines tone({{0.01, 1.0, 0.0}});
  const auto sparse = tone.sample(100.0, 10.0, 64);
  StreamingConfig cfg;
  cfg.factor = 4;
  const auto dense = StreamingUpsampler::upsample(sparse, cfg);
  EXPECT_EQ(dense.size(), sparse.size() * 4);
  EXPECT_DOUBLE_EQ(dense.t0(), 100.0);
  EXPECT_DOUBLE_EQ(dense.dt(), 2.5);
}

TEST(Streaming, DcPassesExactly) {
  const RegularSeries flat(0.0, 1.0, std::vector<double>(64, 3.25));
  const auto dense = StreamingUpsampler::upsample(flat);
  for (double v : dense.values()) EXPECT_NEAR(v, 3.25, 1e-9);
}

TEST(Streaming, ReconstructsOversampledToneAccurately) {
  // Tone at 16x oversampling: streaming interpolation lands within ~1% of
  // the analytic signal away from the edges.
  const double freq = 0.01;
  const SumOfSines tone({{freq, 1.0, 0.5}});
  const auto sparse = tone.sample(0.0, 1.0 / (16.0 * freq), 256);
  StreamingConfig cfg;
  cfg.factor = 8;
  cfg.half_taps = 8;
  const auto dense = StreamingUpsampler::upsample(sparse, cfg);
  const auto expected = tone.sample(dense.t0(), dense.dt(), dense.size());
  double worst = 0.0;
  for (std::size_t i = dense.size() / 8; i < dense.size() * 7 / 8; ++i)
    worst = std::max(worst, std::abs(dense[i] - expected[i]));
  EXPECT_LT(worst, 0.02);
}

TEST(Streaming, MoreTapsHigherFidelity) {
  Rng rng(91);
  const auto proc = nyqmon::sig::make_bandlimited_process(0.02, 1.0, 16, rng);
  const auto sparse = proc->sample(0.0, 5.0, 512);  // 5x oversampled
  const auto truth = proc->sample(0.0, 5.0 / 4.0, 512 * 4);

  auto error_with_taps = [&](std::size_t taps) {
    StreamingConfig cfg;
    cfg.factor = 4;
    cfg.half_taps = taps;
    const auto dense = StreamingUpsampler::upsample(sparse, cfg);
    std::vector<double> t_mid, d_mid;
    for (std::size_t i = dense.size() / 8; i < dense.size() * 7 / 8; ++i) {
      t_mid.push_back(truth[i]);
      d_mid.push_back(dense[i]);
    }
    return nyqmon::rec::rmse(t_mid, d_mid);
  };
  const double coarse = error_with_taps(2);
  const double fine = error_with_taps(16);
  EXPECT_LT(fine, coarse);
}

TEST(Streaming, PushPullLatencyContract) {
  StreamingConfig cfg;
  cfg.factor = 2;
  cfg.half_taps = 4;
  StreamingUpsampler streamer(cfg);
  EXPECT_EQ(streamer.delay_samples(), 4u);

  // No output until half_taps+1 samples have been pushed.
  std::size_t produced = 0;
  for (int i = 0; i < 4; ++i) produced += streamer.push(1.0).size();
  EXPECT_EQ(produced, 0u);
  // The next pushes each yield `factor` samples.
  EXPECT_EQ(streamer.push(1.0).size(), 2u);
  EXPECT_EQ(streamer.push(1.0).size(), 2u);
}

TEST(Streaming, FinishFlushesTail) {
  StreamingConfig cfg;
  cfg.factor = 3;
  cfg.half_taps = 4;
  StreamingUpsampler streamer(cfg);
  std::size_t produced = 0;
  for (int i = 0; i < 20; ++i) produced += streamer.push(double(i)).size();
  produced += streamer.finish().size();
  EXPECT_EQ(produced, 20u * 3u);
}

TEST(Streaming, EmptyInputThrows) {
  const RegularSeries empty(0.0, 1.0, {});
  EXPECT_THROW((void)StreamingUpsampler::upsample(empty),
               std::invalid_argument);
}

TEST(Streaming, ConfigValidation) {
  StreamingConfig bad;
  bad.factor = 0;
  EXPECT_THROW(StreamingUpsampler{bad}, std::invalid_argument);
  bad.factor = 2;
  bad.half_taps = 0;
  EXPECT_THROW(StreamingUpsampler{bad}, std::invalid_argument);
}

}  // namespace
