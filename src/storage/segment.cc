#include "storage/segment.h"

#include <cstring>
#include <stdexcept>

#include "storage/codec.h"
#include "storage/crc32.h"
#include "storage/io.h"

namespace nyqmon::sto {

namespace {

constexpr std::uint8_t kBlockStreamHeader = 1;
constexpr std::uint8_t kBlockChunk = 2;
constexpr std::uint8_t kBlockTail = 3;

// Block frame (type + len + crc) plus the chunk header (t0, dt, count,
// codec id) — the per-chunk disk cost the store's byte accounting mirrors.
constexpr std::size_t kBlockFrameBytes = 1 + 4 + 4;
static_assert(kBlockFrameBytes + 8 + 8 + 4 + 1 == kChunkDiskOverheadBytes,
              "store byte accounting disagrees with the segment framing");

}  // namespace

SegmentWriter::SegmentWriter() {
  for (const char c : kSegmentMagic)
    bytes_.push_back(static_cast<std::uint8_t>(c));
}

void SegmentWriter::add_block(std::uint8_t type,
                              const std::vector<std::uint8_t>& payload) {
  put_u8(bytes_, type);
  put_u32(bytes_, static_cast<std::uint32_t>(payload.size()));
  put_u32(bytes_, crc32(payload));
  put_bytes(bytes_, payload);
}

void SegmentWriter::add_stream(const mon::StreamSnapshot& snapshot) {
  std::vector<std::uint8_t> header;
  put_string(header, snapshot.name);
  put_f64(header, snapshot.collection_rate_hz);
  put_f64(header, snapshot.t0);
  put_f64(header, snapshot.hot_t0);
  put_u64(header, snapshot.generation);
  put_u64(header, snapshot.stats.ingested_samples);
  put_u64(header, snapshot.stats.sealed_ingested_samples);
  put_u64(header, snapshot.stats.stored_samples);
  put_u64(header, snapshot.stats.chunks);
  put_u64(header, snapshot.stats.chunks_reduced);
  put_u64(header, snapshot.stats.bytes_raw);
  put_u64(header, snapshot.stats.bytes_stored);
  add_block(kBlockStreamHeader, header);

  for (const auto& chunk : snapshot.chunks) {
    std::vector<std::uint8_t> payload;
    put_f64(payload, chunk.t0);
    put_f64(payload, chunk.dt);
    put_u32(payload, static_cast<std::uint32_t>(chunk.values.size()));
    put_u8(payload, kCodecXor);
    put_bytes(payload, xor_encode(chunk.values));
    add_block(kBlockChunk, payload);
    ++stats_.chunks;
    stats_.samples += chunk.values.size();
  }

  std::vector<std::uint8_t> tail;
  put_u32(tail, static_cast<std::uint32_t>(snapshot.hot.size()));
  put_u8(tail, kCodecXor);
  put_bytes(tail, xor_encode(snapshot.hot));
  add_block(kBlockTail, tail);
  stats_.samples += snapshot.hot.size();
  ++stats_.streams;
}

SegmentReadStats read_segment(
    const std::string& path,
    std::map<std::string, mon::StreamSnapshot>& streams) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  if (bytes.size() < sizeof(kSegmentMagic) ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0)
    throw std::runtime_error("not a segment file: " + path);
  return read_segment_bytes(bytes, streams);
}

SegmentReadStats read_segment_bytes(
    std::span<const std::uint8_t> bytes,
    std::map<std::string, mon::StreamSnapshot>& streams) {
  if (bytes.size() < sizeof(kSegmentMagic) ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0)
    throw std::runtime_error("not a segment image");

  SegmentReadStats stats;
  mon::StreamSnapshot* current = nullptr;  // owner of chunk/tail blocks
  std::size_t pos = sizeof(kSegmentMagic);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kBlockFrameBytes) {
      ++stats.crc_skipped_blocks;  // truncated frame at EOF
      break;
    }
    ByteReader frame{
        std::span<const std::uint8_t>(bytes).subspan(pos, kBlockFrameBytes)};
    const std::uint8_t type = frame.get_u8();
    const std::uint32_t len = frame.get_u32();
    const std::uint32_t crc = frame.get_u32();
    if (type < kBlockStreamHeader || type > kBlockTail ||
        bytes.size() - pos - kBlockFrameBytes < len) {
      ++stats.crc_skipped_blocks;  // derailed framing: abandon the rest
      break;
    }
    const auto payload =
        std::span(bytes).subspan(pos + kBlockFrameBytes, len);
    pos += kBlockFrameBytes + len;
    ++stats.blocks;
    if (crc32(payload) != crc) {
      ++stats.crc_skipped_blocks;
      if (type == kBlockStreamHeader) current = nullptr;  // orphan followers
      // A corrupt tail must not resurrect the previous segment's stale tail
      // under the newer header's hot_t0 — drop the tail (bounded, counted
      // loss) rather than serve old values at wrong timestamps.
      if (type == kBlockTail && current != nullptr) current->hot.clear();
      continue;
    }

    ByteReader r(payload);
    switch (type) {
      case kBlockStreamHeader: {
        // Parse fully before touching the map so a short payload cannot
        // clobber state merged from earlier segments.
        const std::string name = r.get_string();
        mon::StreamSnapshot parsed;
        parsed.collection_rate_hz = r.get_f64();
        parsed.t0 = r.get_f64();
        parsed.hot_t0 = r.get_f64();
        parsed.generation = r.get_u64();
        parsed.stats.ingested_samples = r.get_u64();
        parsed.stats.sealed_ingested_samples = r.get_u64();
        parsed.stats.stored_samples = r.get_u64();
        parsed.stats.chunks = r.get_u64();
        parsed.stats.chunks_reduced = r.get_u64();
        parsed.stats.bytes_raw = r.get_u64();
        parsed.stats.bytes_stored = r.get_u64();
        if (!r.ok()) {
          current = nullptr;
          ++stats.crc_skipped_blocks;
          break;
        }
        mon::StreamSnapshot& snap = streams[name];
        snap.name = name;
        snap.collection_rate_hz = parsed.collection_rate_hz;
        snap.t0 = parsed.t0;
        snap.hot_t0 = parsed.hot_t0;
        snap.generation = parsed.generation;
        snap.stats = parsed.stats;
        // The older epoch's tail is superseded the moment a newer header
        // applies. If this segment's own tail block never arrives (file
        // truncated after the header), hot stays empty — bounded, counted
        // loss — rather than the old tail reappearing at the new hot_t0.
        snap.hot.clear();
        stats.header_streams.push_back(name);
        current = &snap;
        break;
      }
      case kBlockChunk: {
        if (current == nullptr) {
          ++stats.crc_skipped_blocks;
          break;
        }
        mon::ChunkSnapshot chunk;
        chunk.t0 = r.get_f64();
        chunk.dt = r.get_f64();
        const std::uint32_t count = r.get_u32();
        const std::uint8_t codec = r.get_u8();
        if (!r.ok() || codec != kCodecXor) {
          ++stats.crc_skipped_blocks;
          break;
        }
        try {
          chunk.values = xor_decode(r.get_bytes(r.remaining()), count);
        } catch (const std::runtime_error&) {
          ++stats.crc_skipped_blocks;
          break;
        }
        current->chunks.push_back(std::move(chunk));
        ++stats.chunks;
        break;
      }
      case kBlockTail: {
        if (current == nullptr) {
          ++stats.crc_skipped_blocks;
          break;
        }
        const std::uint32_t count = r.get_u32();
        const std::uint8_t codec = r.get_u8();
        if (!r.ok() || codec != kCodecXor) {
          current->hot.clear();  // same stale-tail rule as the CRC path
          ++stats.crc_skipped_blocks;
          break;
        }
        try {
          current->hot = xor_decode(r.get_bytes(r.remaining()), count);
        } catch (const std::runtime_error&) {
          current->hot.clear();
          ++stats.crc_skipped_blocks;
        }
        break;
      }
      default:
        break;
    }
  }
  return stats;
}

}  // namespace nyqmon::sto
