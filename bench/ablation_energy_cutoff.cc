// Ablation of the 99% energy cutoff (Section 3.2): "Using a higher
// parameter value such as 99.99% would increase our estimate of the
// Nyquist rate and reduce performance gains but, in our experience, does
// not necessarily lead to a lower reconstruction error since the delta
// that is being captured is often just the noise."
//
// The harness sweeps the cutoff on a noisy band-limited signal and reports
// the estimated rate, the possible reduction, and the reconstruction error
// after downsampling to the estimate — reproducing the paper's argument
// that 99% is the sweet spot.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "nyquist/estimator.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Ablation: energy cutoff (90%% / 99%% / 99.9%% / "
              "99.99%%) ===\n\n");

  // A band-limited signal plus faint wideband measurement noise — the
  // regime the 99% rule is designed for.
  Rng rng(5150);
  const auto proc = sig::make_bandlimited_process(2e-3, 5.0, 32, rng, 40.0);
  auto trace = proc->sample(0.0, 30.0, 2880);  // one day of 30 s polls
  Rng noise(42);
  for (auto& v : trace.mutable_values()) v += noise.normal(0.0, 0.5);
  const auto clean = proc->sample(0.0, 30.0, 2880);

  AsciiTable table({"cutoff", "est. Nyquist (Hz)", "possible reduction",
                    "recon NRMSE vs clean"});
  CsvWriter csv(bench::csv_path("ablation_energy_cutoff"),
                {"cutoff", "nyquist_hz", "reduction", "nrmse"});

  for (double cutoff : {0.90, 0.99, 0.999, 0.9999}) {
    nyq::EstimatorConfig cfg;
    cfg.energy_cutoff = cutoff;
    const auto est = nyq::NyquistEstimator(cfg).estimate(trace);
    if (!est.ok()) {
      table.row({AsciiTable::format_double(cutoff), "n/a", "n/a", "n/a"});
      continue;
    }
    const double target = 1.5 * est.nyquist_rate_hz;
    const auto factor = static_cast<std::size_t>(
        std::max(1.0, std::floor(trace.sample_rate_hz() / target)));
    const auto recon = rec::round_trip(trace, factor);
    const double err = rec::nrmse(clean.span(), recon.span());
    table.row({AsciiTable::format_double(cutoff),
               AsciiTable::format_double(est.nyquist_rate_hz),
               AsciiTable::format_double(est.reduction_ratio()) + "x",
               AsciiTable::format_double(err)});
    csv.row_numeric({cutoff, est.nyquist_rate_hz, est.reduction_ratio(), err});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: raising the cutoff inflates the estimated rate\n"
              "(smaller saving) without a matching reconstruction-error\n"
              "improvement — the captured delta is mostly noise.\n");
  return 0;
}
