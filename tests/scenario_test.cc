// Scenario subsystem: spec parse round-trip and error paths, waveform
// adaptor semantics, the per-stream seeding contract, and the headline
// determinism guarantee — the same spec + seed produces a bit-identical
// engine digest at 1 vs 4 workers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "engine/engine.h"
#include "engine/report.h"
#include "scenario/frontier.h"
#include "scenario/scenario.h"
#include "scenario/spec.h"
#include "scenario/waveforms.h"
#include "signal/generators.h"
#include "telemetry/fleet.h"
#include "util/rng.h"

namespace {

using namespace nyqmon;

// ------------------------------------------------------------- waveforms --

std::shared_ptr<sig::SumOfSines> test_tone() {
  return std::make_shared<sig::SumOfSines>(
      std::vector<sig::Tone>{{0.01, 1.0, 0.3}}, 2.0);
}

TEST(Waveforms, LinearDriftAddsRamp) {
  const auto base = test_tone();
  const scn::LinearDrift drift(base, 10.0, 0.5);
  for (const double t : {0.0, 3.0, 100.0})
    EXPECT_DOUBLE_EQ(drift.value(t), base->value(t) + 10.0 + 0.5 * t);
  EXPECT_DOUBLE_EQ(drift.bandwidth_hz(), base->bandwidth_hz());
}

TEST(Waveforms, OutageGateCollapsesToFloorInsideWindows) {
  const auto base = test_tone();
  const scn::OutageGate gated(base, {{1000.0, 2000.0}}, 10.0, -5.0);
  // Deep inside the outage: pinned to the floor.
  EXPECT_NEAR(gated.value(1500.0), -5.0, 1e-6);
  EXPECT_NEAR(gated.gate(1500.0), 0.0, 1e-9);
  // Far outside: passthrough.
  EXPECT_NEAR(gated.value(100.0), base->value(100.0), 1e-9);
  EXPECT_NEAR(gated.gate(100.0), 1.0, 1e-9);
  // The gate widens the band limit by the edge's 1e-6 point.
  EXPECT_GT(gated.bandwidth_hz(), base->bandwidth_hz());
}

TEST(Waveforms, OutageGateMergesOverlappingWindows) {
  const auto base = test_tone();
  const scn::OutageGate gated(base, {{100.0, 300.0}, {200.0, 500.0}}, 5.0,
                              0.0);
  EXPECT_NEAR(gated.gate(250.0), 0.0, 1e-9);  // inside the merged window
  EXPECT_NEAR(gated.gate(400.0), 0.0, 1e-9);
  EXPECT_NEAR(gated.gate(700.0), 1.0, 1e-6);
}

TEST(Waveforms, ClockWarpShiftsAndScalesTime) {
  const auto base = test_tone();
  const scn::ClockWarp warp(base, 7.0, 100e-6);
  for (const double t : {0.0, 50.0, 1234.5})
    EXPECT_DOUBLE_EQ(warp.value(t), base->value(7.0 + 1.0001 * t));
  EXPECT_DOUBLE_EQ(warp.bandwidth_hz(), base->bandwidth_hz() * 1.0001);
}

// ------------------------------------------------------------ spec parse --

TEST(ScenarioSpec, ParseRoundTripsThroughSerialize) {
  scn::ScenarioSpec spec = scn::default_scenario(100, 77);
  const std::string text = scn::serialize_scenario(spec);
  const scn::ScenarioSpec reparsed = scn::parse_scenario(text);
  EXPECT_TRUE(reparsed == spec) << text;
  // And the canonical form is a fixed point.
  EXPECT_EQ(scn::serialize_scenario(reparsed), text);
}

TEST(ScenarioSpec, ParseAcceptsCommentsAndDefaults) {
  const scn::ScenarioSpec spec = scn::parse_scenario(
      "# a comment\n"
      "scenario tiny\n"
      "\n"
      "group g1\n"
      "  family bursty\n"
      "  streams 3\n");
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.run_samples, 512u);
  ASSERT_EQ(spec.groups.size(), 1u);
  EXPECT_EQ(spec.groups[0].family, scn::SignalFamily::kBursty);
  EXPECT_EQ(scn::effective_metric(spec.groups[0]),
            tel::MetricKind::kUnicastDrops);
  EXPECT_EQ(spec.total_streams(), 3u);
}

TEST(ScenarioSpec, ParseErrorsCarryLineNumbers) {
  auto expect_throw = [](const std::string& text, const std::string& needle) {
    try {
      scn::parse_scenario(text);
      FAIL() << "expected invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_throw("group g\n", "expected 'scenario");
  expect_throw("scenario s\nscenario t\n", "line 2");
  expect_throw("scenario s\nstreams 4\n", "must appear inside a group");
  expect_throw("scenario s\ngroup g\n  family sawtooth\n", "unknown signal family");
  expect_throw("scenario s\ngroup g\n  metric Bogus\n", "unknown metric");
  expect_throw("scenario s\ngroup g\n  streams nope\n", "malformed integer");
  expect_throw("scenario s\ngroup g\n  poll_interval_s abc\n", "malformed number");
  expect_throw("scenario s\ngroup g\n  frobnicate 3\n", "unknown key");
  // `family` is required per group, with the group's line in the message.
  expect_throw("scenario s\ngroup g\n  streams 2\n", "missing required key");
  expect_throw("scenario s\ngroup a\n  streams 1\ngroup b\n  family gauge\n"
               "  streams 1\n",
               "line 2");
  // Non-finite numbers would alias the unset sentinel; rejected outright.
  expect_throw("scenario s\ngroup g\n  family gauge\n  dc_level nan\n",
               "malformed number");
  // Negative values are explicit settings and hit the range checks (they
  // must not silently fall back to metric defaults).
  expect_throw(
      "scenario s\ngroup g\n  family gauge\n  streams 2\n"
      "  poll_interval_s -5\n",
      "poll_interval_s must be > 0");
  // Validation failures surface as invalid_argument too.
  expect_throw("scenario s\n", "at least one group");
  expect_throw("scenario s\ngroup g\n  family gauge\n", "streams must be >= 1");
  expect_throw("scenario s\ngroup g\n  family gauge\n  streams 2\n"
               "  correlation 1.5\n",
               "correlation");
  expect_throw(
      "scenario s\ngroup g\n  family gauge\n  streams 2\n"
      "  bandwidth_lo_hz 0.1\n",
      "must be set together");
  expect_throw("scenario s\ngroup a\n  family gauge\n  streams 1\n"
               "group a\n  family gauge\n  streams 1\n",
               "duplicate");
}

TEST(ScenarioSpec, NegativeDcLevelIsAnExplicitSetting) {
  const scn::ScenarioSpec spec = scn::parse_scenario(
      "scenario signed\ngroup g\n  family gauge\n  streams 2\n"
      "  dc_level -12.5\n");
  ASSERT_TRUE(spec.groups[0].is_set(spec.groups[0].dc_level));
  EXPECT_DOUBLE_EQ(spec.groups[0].dc_level, -12.5);
  // And it survives the canonical round trip.
  EXPECT_TRUE(scn::parse_scenario(scn::serialize_scenario(spec)) == spec);
  // The built signal is actually centered below zero.
  const scn::BuiltScenario built = scn::build_scenario(spec);
  double mean = 0.0;
  std::size_t n = 0;
  for (double t = 0.0; t < 2.0e5; t += 1000.0, ++n)
    mean += built.fleet.pairs()[0].metric.signal->value(t);
  EXPECT_LT(mean / static_cast<double>(n), 0.0);
}

TEST(ScenarioSpec, DropoutDurationRoundTripsWithoutDropoutRate) {
  // dropout_duration_s without dropout_per_day is valid (inert) and must
  // not be dropped by the serializer.
  scn::ScenarioSpec spec;
  spec.name = "inert";
  scn::StreamGroupSpec g;
  g.name = "g";
  g.family = scn::SignalFamily::kGauge;
  g.streams = 1;
  g.dropout_duration_s = 600.0;
  spec.groups.push_back(g);
  scn::validate(spec);
  EXPECT_TRUE(scn::parse_scenario(scn::serialize_scenario(spec)) == spec);
}

TEST(ScenarioSpec, LoadScenarioFileReportsMissingPath) {
  EXPECT_THROW(scn::load_scenario_file("/nonexistent/spec.scn"),
               std::runtime_error);
}

// -------------------------------------------------------------- building --

scn::ScenarioSpec small_spec(std::uint64_t seed = 5) {
  // One group per family — exercises every construction path cheaply.
  scn::ScenarioSpec spec = scn::default_scenario(14, seed);
  return spec;
}

TEST(ScenarioBuild, GroupRangesPartitionTheFleet) {
  const scn::BuiltScenario built = scn::build_scenario(small_spec());
  EXPECT_EQ(built.name, "default-mix");
  std::size_t next = 0;
  for (const auto& g : built.groups) {
    EXPECT_EQ(g.first_pair, next);
    EXPECT_GE(g.pairs, 1u);
    next += g.pairs;
  }
  EXPECT_EQ(next, built.fleet.size());

  // Every pair is drivable: unique stream IDs, positive band limits.
  std::set<std::string> ids;
  for (const auto& pair : built.fleet.pairs()) {
    EXPECT_TRUE(ids.insert(tel::stream_id(pair)).second);
    EXPECT_GT(pair.metric.true_bandwidth_hz, 0.0);
    EXPECT_GT(pair.metric.poll_interval_s, 0.0);
  }
}

TEST(ScenarioBuild, RebuildIsBitIdentical) {
  const scn::BuiltScenario a = scn::build_scenario(small_spec());
  const scn::BuiltScenario b = scn::build_scenario(small_spec());
  ASSERT_EQ(a.fleet.size(), b.fleet.size());
  for (std::size_t i = 0; i < a.fleet.size(); ++i) {
    const auto& pa = a.fleet.pairs()[i];
    const auto& pb = b.fleet.pairs()[i];
    EXPECT_EQ(tel::stream_id(pa), tel::stream_id(pb));
    EXPECT_EQ(pa.metric.true_bandwidth_hz, pb.metric.true_bandwidth_hz);
    for (const double t : {0.0, 111.0, 5000.0, 100000.0})
      EXPECT_EQ(pa.metric.signal->value(t), pb.metric.signal->value(t)) << i;
  }
}

TEST(ScenarioBuild, StreamSeedsAreStableUnderGroupEdits) {
  // Removing a later group must not perturb an earlier group's streams:
  // seeds hash (scenario seed, group name, index), not build order.
  scn::ScenarioSpec two = small_spec();
  scn::ScenarioSpec one = two;
  one.groups.resize(1);

  const scn::BuiltScenario built_two = scn::build_scenario(two);
  const scn::BuiltScenario built_one = scn::build_scenario(one);
  ASSERT_EQ(built_one.groups.size(), 1u);
  ASSERT_EQ(built_one.groups[0].pairs, built_two.groups[0].pairs);
  for (std::size_t i = 0; i < built_one.groups[0].pairs; ++i) {
    const auto& pa = built_one.fleet.pairs()[i];
    const auto& pb = built_two.fleet.pairs()[i];
    for (const double t : {0.0, 333.0, 44444.0})
      EXPECT_EQ(pa.metric.signal->value(t), pb.metric.signal->value(t)) << i;
  }
  EXPECT_EQ(scn::stream_seed(one, one.groups[0], 3),
            scn::stream_seed(two, two.groups[0], 3));
}

TEST(ScenarioBuild, MonotoneCountersAreNonDecreasing) {
  scn::ScenarioSpec spec;
  spec.name = "counters";
  spec.seed = 11;
  scn::StreamGroupSpec g;
  g.name = "ctr";
  g.family = scn::SignalFamily::kMonotoneCounter;
  g.streams = 4;
  spec.groups.push_back(g);

  const scn::BuiltScenario built = scn::build_scenario(spec);
  for (const auto& pair : built.fleet.pairs()) {
    double prev = -1e300;
    for (double t = 0.0; t < 6.0e4; t += 500.0) {
      const double v = pair.metric.signal->value(t);
      EXPECT_GE(v, prev - 1e-9) << tel::stream_id(pair) << " at t=" << t;
      prev = v;
    }
  }
}

TEST(ScenarioBuild, CorrelatedStreamsShareAComponent) {
  scn::ScenarioSpec spec;
  spec.name = "corr";
  spec.seed = 3;
  scn::StreamGroupSpec g;
  g.name = "g";
  g.family = scn::SignalFamily::kGauge;
  g.streams = 6;
  g.correlation = 0.9;
  spec.groups.push_back(g);
  g.name = "indep";
  g.correlation = 0.0;
  spec.groups.push_back(g);

  const scn::BuiltScenario built = scn::build_scenario(spec);
  // Sample correlation of deviations across stream pairs: the correlated
  // group must sit far above the independent one.
  auto mean_pairwise_corr = [&](const scn::GroupRange& range) {
    std::vector<std::vector<double>> series;
    for (std::size_t i = range.first_pair;
         i < range.first_pair + range.pairs; ++i) {
      std::vector<double> v;
      for (double t = 0.0; t < 2.0e5; t += 1000.0)
        v.push_back(built.fleet.pairs()[i].metric.signal->value(t));
      series.push_back(std::move(v));
    }
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t a = 0; a < series.size(); ++a) {
      for (std::size_t b = a + 1; b < series.size(); ++b) {
        double ma = 0, mb = 0;
        for (std::size_t k = 0; k < series[a].size(); ++k) {
          ma += series[a][k];
          mb += series[b][k];
        }
        ma /= static_cast<double>(series[a].size());
        mb /= static_cast<double>(series[b].size());
        double num = 0, da = 0, db = 0;
        for (std::size_t k = 0; k < series[a].size(); ++k) {
          num += (series[a][k] - ma) * (series[b][k] - mb);
          da += (series[a][k] - ma) * (series[a][k] - ma);
          db += (series[b][k] - mb) * (series[b][k] - mb);
        }
        acc += num / std::sqrt(da * db);
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };
  const double corr = mean_pairwise_corr(built.groups[0]);
  const double indep = mean_pairwise_corr(built.groups[1]);
  EXPECT_GT(corr, 0.5) << "correlated group";
  EXPECT_LT(std::abs(indep), 0.4) << "independent group";
  EXPECT_GT(corr, std::abs(indep));
}

// ----------------------------------------------- engine-level determinism --

TEST(ScenarioEngine, DigestBitIdenticalAcrossWorkerCounts) {
  // The acceptance gate: same spec + seed -> bit-identical engine digest
  // whatever the worker count (TSan-sized fleet).
  scn::ScenarioSpec spec = scn::default_scenario(28, 99);
  const scn::BuiltScenario built = scn::build_scenario(spec);

  auto digest_with = [&built](std::size_t workers) {
    eng::EngineConfig cfg;
    cfg.workers = workers;
    cfg.samples_per_window = 48;
    cfg.windows_per_pair = 4;
    eng::FleetMonitorEngine engine(built.fleet, cfg);
    return eng::run_digest(engine.run());
  };
  const std::uint64_t serial = digest_with(1);
  const std::uint64_t parallel = digest_with(4);
  EXPECT_EQ(serial, parallel);

  // A rebuilt scenario digests identically too (build + run determinism).
  const scn::BuiltScenario rebuilt = scn::build_scenario(spec);
  eng::EngineConfig cfg;
  cfg.workers = 2;
  cfg.samples_per_window = 48;
  cfg.windows_per_pair = 4;
  eng::FleetMonitorEngine engine(rebuilt.fleet, cfg);
  EXPECT_EQ(eng::run_digest(engine.run()), serial);

  // And a different scenario seed must not.
  spec.seed = 100;
  const scn::BuiltScenario other = scn::build_scenario(spec);
  eng::FleetMonitorEngine engine_other(other.fleet, cfg);
  EXPECT_NE(eng::run_digest(engine_other.run()), serial);
}

TEST(ScenarioFrontier, CellsCoverTheGridAndEveryGroup) {
  const scn::BuiltScenario built = scn::build_scenario(small_spec());
  scn::FrontierConfig cfg;
  cfg.energy_cutoffs = {0.90, 0.99};
  cfg.max_slowdowns = {4.0};
  cfg.engine.samples_per_window = 48;
  cfg.engine.windows_per_pair = 3;
  const scn::FrontierResult result = scn::run_frontier(built, cfg);

  EXPECT_EQ(result.scenario, "default-mix");
  EXPECT_EQ(result.grid_points, 2u);
  EXPECT_EQ(result.cells.size(), 2u * built.groups.size());
  EXPECT_EQ(result.pair_runs, 2u * built.fleet.size());
  for (const auto& cell : result.cells) {
    EXPECT_GE(cell.pairs, 1u);
    EXPECT_GT(cell.cost_savings, 0.0);
    EXPECT_GE(cell.byte_compression, 1.0);
    EXPECT_GE(cell.aliased_fraction, 0.0);
    EXPECT_LE(cell.aliased_fraction, 1.0);
  }
  EXPECT_FALSE(scn::render(result).empty());
}

}  // namespace
