// Detrending.
//
// Counters and utilizations carry large DC offsets and slow linear drifts
// that would dominate the "total energy" used by the 99% rule; the Nyquist
// estimator removes them before spectral analysis.
#pragma once

#include <span>
#include <vector>

namespace nyqmon::dsp {

/// Subtract the sample mean.
std::vector<double> remove_mean(std::span<const double> x);

/// Subtract the least-squares straight line a + b*t fitted to the samples.
std::vector<double> remove_linear_trend(std::span<const double> x);

/// Least-squares line fit; returns {intercept, slope-per-sample}.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LineFit fit_line(std::span<const double> x);

}  // namespace nyqmon::dsp
