// Clock abstraction for the streaming runtime.
//
// The runtime schedules pair-windows against *deadlines on the fleet's
// signal timeline* (seconds since the run epoch). Where those deadlines
// come from is pluggable:
//   * VirtualClock — tests, benches and the bit-identity contract: time
//     advances only when the scheduler asks to sleep, so a whole multi-hour
//     monitoring timeline replays as fast as the hardware allows while
//     still interleaving pairs in exact deadline order.
//   * SteadyClock — production pacing: the timeline is anchored to
//     std::chrono::steady_clock at construction and sleeps are real.
//
// Ownership: clocks are plain objects the caller owns; a runtime borrows
// its clock and never destroys it. Threading: both clocks are thread-safe
// — the scheduler sleeps while server/query threads read the current time
// for stats, and SteadyClock::wake() may interrupt a sleeper from any
// thread. Determinism: VirtualClock advances only when the scheduler asks
// to sleep, so virtual-clock runs are reproducible end to end; SteadyClock
// runs are real-time paced and therefore not.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace nyqmon::rt {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Seconds since the run epoch.
  virtual double now_s() const = 0;

  /// Block (or virtually jump) until now_s() >= t.
  virtual void sleep_until_s(double t) = 0;
};

/// Manually advanced clock; sleep_until_s() jumps straight to the target.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start_s = 0.0) : now_(start_s) {}

  double now_s() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void sleep_until_s(double t) override { advance_to(t); }

  /// Move time forward (never backward) to t.
  void advance_to(double t) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ = std::max(now_, t);
  }

 private:
  mutable std::mutex mu_;
  double now_;
};

/// Monotonic wall clock; the run epoch is the moment of construction.
/// sleep_until_s() is interruptible via wake() so a server shutting down
/// does not wait out a long poll interval.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

  double now_s() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void sleep_until_s(double t) override {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline =
        epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(t));
    cv_.wait_until(lock, deadline, [&] { return woken_; });
    woken_ = false;
  }

  /// Interrupt a sleeper (spurious wake-ups are the caller's business).
  void wake() {
    std::lock_guard<std::mutex> lock(mu_);
    woken_ = true;
    cv_.notify_all();
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool woken_ = false;
};

}  // namespace nyqmon::rt
