// NyqmonRouter — the scatter-gather front of a sharded nyqmond fleet.
//
// Speaks the ordinary nyqmond wire protocol to clients (a router is
// indistinguishable from a big nyqmond) and fans out to N backends through
// a ClusterClient:
//
//   INGEST      → routed to the stream's consistent-hash ring owner
//   QUERY       → scattered to every backend (aggregation stripped),
//                 gathered within the per-backend deadline, merged with
//                 the query engine's own reduction (query/merge.h) so the
//                 answer is bit-identical to a single node holding all
//                 streams. Any backend failure answers ERR-with-detail —
//                 which backends failed and why — rather than silently
//                 serving a partial fleet.
//   STATS       → router counters + every backend's STATS JSON, one object
//   CHECKPOINT  → scattered; chunks/bytes summed, persisted = all
//   METRICS     → the router process's own registry (includes the
//                 nyqmon_router_* and per-backend cluster series); with
//                 the kMetricsFleet flag, every backend's exposition too,
//                 concatenated as `# == node <name> ==` sections
//   TRACE       → the router process's own trace rings; with the
//                 kTraceFleet flag, every backend's rings are drained too
//                 and stitched (merge_chrome_json) into one fleet-wide
//                 chrome://tracing timeline sharing the propagated
//                 trace ids
//   HANDOFF     → refused: topology moves address a backend node directly
//                 (nyqmon_ctl handoff), not the fleet front
//
// With the kQueryWantExplain flag, the scattered QUERY's reply carries the
// router's own stage breakdown — scatter, merge (decode + central
// reduction), plus informational per-backend `backend/<node>` gather rows
// that overlap the scatter stage — appended to whatever the wire already
// carried.
//
// Implementation: a NyqmondServer over an empty store with the intercept
// hook — the router inherits the event loop, framing robustness, and
// bounded reply queues, and replaces the data path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/client.h"
#include "monitor/striped_store.h"
#include "server/server.h"

namespace nyqmon::clu {

struct RouterConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read back with port().
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = srv::kMaxFrameBytes;
  /// Reply-queue bounds for front-side clients (see ServerConfig).
  std::size_t max_reply_queue_bytes = 0;
  std::size_t max_reply_queue_frames = 64;
  std::uint32_t slow_client_timeout_ms = 0;
  /// The router's fleet identity: tags its spans and log records, and
  /// names its section in stitched timelines / fleet metrics.
  std::string node_name = "router";
  ClusterConfig cluster;
};

/// Monotonic router counters (readable from any thread).
struct RouterStats {
  std::uint64_t frames = 0;
  std::uint64_t ingests_routed = 0;
  std::uint64_t queries_scattered = 0;
  /// Scatter rounds where at least one backend failed (ERR-with-detail).
  std::uint64_t partial_failures = 0;
  /// Individual backend failures across all scatter rounds.
  std::uint64_t backend_errors = 0;
};

class NyqmonRouter {
 public:
  explicit NyqmonRouter(RouterConfig config);
  ~NyqmonRouter();

  NyqmonRouter(const NyqmonRouter&) = delete;
  NyqmonRouter& operator=(const NyqmonRouter&) = delete;

  /// Bind, listen, and spawn the front event loop. Backend connections
  /// open lazily on first use.
  void start();
  void stop();
  bool running() const { return front_ != nullptr && front_->running(); }

  /// The bound front port (valid after start()).
  std::uint16_t port() const { return front_->port(); }

  const HashRing& ring() const { return cluster_.ring(); }
  ClusterClient& cluster() { return cluster_; }

  RouterStats stats() const;

 private:
  std::optional<std::vector<std::uint8_t>> intercept(srv::Verb verb,
                                                     sto::ByteReader& reader);
  std::vector<std::uint8_t> route_ingest(sto::ByteReader& reader);
  std::vector<std::uint8_t> scatter_query(sto::ByteReader& reader);
  std::vector<std::uint8_t> fleet_stats_json();
  std::vector<std::uint8_t> scatter_checkpoint();
  /// kTraceFleet: drain + stitch every node's rings (router's included).
  std::vector<std::uint8_t> fleet_trace_json();
  /// kMetricsFleet: every node's exposition as `# == node <name> ==`
  /// sections (router's first).
  std::vector<std::uint8_t> fleet_metrics_text();
  void count_failures(const std::vector<srv::ErrorDetail>& failures);

  RouterConfig config_;
  ClusterClient cluster_;
  /// Empty store backing the front NyqmondServer; the intercept hook keeps
  /// every data verb away from it.
  mon::StripedRetentionStore empty_store_;
  std::unique_ptr<srv::NyqmondServer> front_;

  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> ingests_routed_{0};
  std::atomic<std::uint64_t> queries_scattered_{0};
  std::atomic<std::uint64_t> partial_failures_{0};
  std::atomic<std::uint64_t> backend_errors_{0};
};

}  // namespace nyqmon::clu
