// Targeted (Goertzel) aliasing detection — the cheap detector variant the
// paper's Section 4.1 closing remark suggests.
#include <gtest/gtest.h>

#include "nyquist/targeted_detector.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::nyq::TargetedAliasingDetector;
using nyqmon::nyq::TargetedDetection;
using nyqmon::nyq::TargetedDetectorConfig;
using nyqmon::sig::SumOfSines;
using nyqmon::sig::Tone;

TEST(Targeted, DefaultCandidatesCoverDatacenterPeriods) {
  const auto c = TargetedAliasingDetector::default_candidates();
  ASSERT_GE(c.size(), 8u);
  // Diurnal fundamental and the 1-minute cron period must be present.
  EXPECT_NE(std::find_if(c.begin(), c.end(),
                         [](double f) { return std::abs(f - 1.0 / 86400.0) < 1e-12; }),
            c.end());
  EXPECT_NE(std::find_if(c.begin(), c.end(),
                         [](double f) { return std::abs(f - 1.0 / 60.0) < 1e-12; }),
            c.end());
}

TEST(Targeted, DetectsKnownToneAboveCandidateRate) {
  // A 1-minute periodic component (a cron job) polled every 50 s: the
  // 1/60 Hz tone sits above the slow Nyquist (0.01 Hz) but inside the fast
  // checker's band (0.0185 Hz), so the targeted probe must flag it.
  const SumOfSines cron({{1.0 / 60.0, 1.0, 0.3}});
  const TargetedAliasingDetector detector;
  const auto r = detector.probe(
      [&cron](double t) { return cron.value(t); }, 0.0, 40000.0,
      /*slow_rate=*/0.02, TargetedAliasingDetector::default_candidates());
  EXPECT_TRUE(r.aliasing_detected);
  ASSERT_FALSE(r.offending_frequencies_hz.empty());
  EXPECT_NEAR(r.offending_frequencies_hz.front(), 1.0 / 60.0, 1e-9);
}

TEST(Targeted, CleanWhenContentBelowSlowNyquist) {
  // Diurnal signal polled every 100 s: nothing above 1/200 Hz.
  Rng rng(81);
  const auto diurnal = nyqmon::sig::make_diurnal(5.0, 3, rng, 40.0);
  const TargetedAliasingDetector detector;
  const auto r = detector.probe(
      [&diurnal](double t) { return diurnal->value(t); }, 0.0, 10.0 * 86400.0,
      0.01, TargetedAliasingDetector::default_candidates());
  EXPECT_FALSE(r.aliasing_detected);
}

TEST(Targeted, IgnoresCandidatesOutsideProbeableBand) {
  // Candidates below slow Nyquist or above fast Nyquist are not probed.
  const SumOfSines tone({{0.001, 1.0, 0.0}});
  const TargetedAliasingDetector detector;
  const std::vector<double> candidates{0.0001, 0.001,  // below slow nyq 0.005
                                       10.0};          // above fast nyq
  const auto r = detector.probe(
      [&tone](double t) { return tone.value(t); }, 0.0, 50000.0, 0.01,
      candidates);
  EXPECT_EQ(r.candidates_probed, 0u);
  EXPECT_FALSE(r.aliasing_detected);
}

TEST(Targeted, MissesFrequenciesNotInCandidateList) {
  // The cost of being targeted: an off-list tone goes unnoticed. This is
  // the designed trade-off versus the full-spectrum detector.
  const SumOfSines odd({{0.0137, 1.0, 0.0}});  // not a datacenter period
  const TargetedAliasingDetector detector;
  const auto r = detector.probe(
      [&odd](double t) { return odd.value(t); }, 0.0, 40000.0, 0.01,
      TargetedAliasingDetector::default_candidates());
  EXPECT_FALSE(r.aliasing_detected);
}

TEST(Targeted, ConfigValidation) {
  TargetedDetectorConfig bad;
  bad.rate_ratio = 2.0;
  EXPECT_THROW(TargetedAliasingDetector{bad}, std::invalid_argument);
  bad.rate_ratio = 1.85;
  bad.power_fraction_threshold = 0.0;
  EXPECT_THROW(TargetedAliasingDetector{bad}, std::invalid_argument);
}

TEST(Targeted, EmptyCandidateListThrows) {
  const SumOfSines tone({{0.01, 1.0, 0.0}});
  const TargetedAliasingDetector detector;
  EXPECT_THROW((void)detector.probe(
                   [&tone](double t) { return tone.value(t); }, 0.0, 1000.0,
                   0.01, {}),
               std::invalid_argument);
}

}  // namespace
