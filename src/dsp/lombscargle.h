// Lomb-Scargle periodogram: spectral estimation for *irregularly* sampled
// signals.
//
// The paper pre-cleans jittered traces by nearest-neighbour re-sampling
// before the FFT (Section 3.2). That is cheap but injects interpolation
// noise. The Lomb-Scargle periodogram estimates spectral power directly
// from the raw (timestamp, value) pairs -- the classical astronomy tool for
// unevenly spaced data -- giving the Nyquist analysis a second,
// re-sampling-free path whose trade-offs bench/ablation_irregular_sampling
// quantifies.
//
// Implementation: the standard Lomb normalized periodogram with the
// per-frequency time offset tau that makes the estimate invariant to time
// shifts; O(N) per frequency.
#pragma once

#include <span>

#include "dsp/psd.h"

namespace nyqmon::dsp {

struct LombScargleConfig {
  /// Number of frequency bins between f > 0 and max_frequency_hz.
  std::size_t bins = 256;
  /// Top of the analysed band; 0 = use the pseudo-Nyquist frequency
  /// 1/(2 * median sample spacing).
  double max_frequency_hz = 0.0;
  /// Subtract the sample mean first (almost always wanted).
  bool remove_mean = true;
};

/// Lomb-Scargle power spectrum of an irregular trace given parallel arrays
/// of timestamps (seconds, ascending) and values. The result reuses the
/// Psd container: frequency_hz ascending, power >= 0, normalized by N so
/// relative energy distributions are comparable across traces.
Psd lomb_scargle(std::span<const double> times, std::span<const double> values,
                 const LombScargleConfig& config = {});

}  // namespace nyqmon::dsp
