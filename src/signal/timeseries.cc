#include "signal/timeseries.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nyqmon::sig {

TimeSeries::TimeSeries(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  sort();
}

void TimeSeries::push(double t, double v) {
  if (!samples_.empty() && t < samples_.back().t) {
    samples_.push_back({t, v});
    sort();
  } else {
    samples_.push_back({t, v});
  }
}

void TimeSeries::sort() {
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const Sample& a, const Sample& b) { return a.t < b.t; });
}

double TimeSeries::start_time() const {
  NYQMON_CHECK(!empty());
  return samples_.front().t;
}

double TimeSeries::end_time() const {
  NYQMON_CHECK(!empty());
  return samples_.back().t;
}

double TimeSeries::duration() const { return end_time() - start_time(); }

double TimeSeries::median_interval() const {
  NYQMON_CHECK(size() >= 2);
  std::vector<double> gaps;
  gaps.reserve(size() - 1);
  for (std::size_t i = 1; i < size(); ++i)
    gaps.push_back(samples_[i].t - samples_[i - 1].t);
  const auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
  std::nth_element(gaps.begin(), mid, gaps.end());
  return *mid;
}

double TimeSeries::mean_interval() const {
  NYQMON_CHECK(size() >= 2);
  return duration() / static_cast<double>(size() - 1);
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(size());
  for (const auto& s : samples_) out.push_back(s.v);
  return out;
}

std::vector<double> TimeSeries::times() const {
  std::vector<double> out;
  out.reserve(size());
  for (const auto& s : samples_) out.push_back(s.t);
  return out;
}

RegularSeries::RegularSeries(double t0, double dt, std::vector<double> values)
    : t0_(t0), dt_(dt), values_(std::move(values)) {
  NYQMON_CHECK_MSG(dt > 0.0, "RegularSeries dt must be positive");
}

double RegularSeries::duration() const {
  return values_.empty() ? 0.0
                         : static_cast<double>(values_.size() - 1) * dt_;
}

RegularSeries RegularSeries::slice(std::size_t first, std::size_t count) const {
  NYQMON_CHECK(first + count <= values_.size());
  return RegularSeries(
      time_at(first), dt_,
      std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(first),
                          values_.begin() + static_cast<std::ptrdiff_t>(first + count)));
}

TimeSeries RegularSeries::to_timeseries() const {
  std::vector<Sample> samples;
  samples.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i)
    samples.push_back({time_at(i), values_[i]});
  return TimeSeries(std::move(samples));
}

}  // namespace nyqmon::sig
