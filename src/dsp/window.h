// Window functions for spectral analysis.
//
// Windowing reduces spectral leakage when the analysed block is not an
// integer number of signal periods — the common case for monitoring traces.
// The NyquistEstimator defaults to Hann.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace nyqmon::dsp {

enum class WindowType {
  kRectangular,  // no taper; maximal leakage, best amplitude accuracy
  kHann,         // good general-purpose taper (default for nyqmon)
  kHamming,      // lower first sidelobe than Hann, slower rolloff
  kBlackman,     // very low sidelobes, wider main lobe
  kFlatTop,      // amplitude-accurate for tone measurement
};

/// Human-readable name ("hann", "blackman", ...).
std::string window_name(WindowType type);

/// Generate the length-n window coefficients. The default periodic form is
/// right for spectral analysis (blocks tile); the symmetric form
/// (denominator n-1) is right for FIR filter design, where the taps must be
/// exactly symmetric to preserve linear phase.
std::vector<double> make_window(WindowType type, std::size_t n,
                                bool symmetric = false);

/// Multiply x element-wise by the window of the same length.
std::vector<double> apply_window(std::span<const double> x, WindowType type);

/// Sum of squared window coefficients; used to normalize PSD energy so that
/// windowed and unwindowed analyses are comparable.
double window_energy(WindowType type, std::size_t n);

}  // namespace nyqmon::dsp
