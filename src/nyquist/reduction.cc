#include "nyquist/reduction.h"

#include <cmath>

namespace nyqmon::nyq {

std::string to_string(SamplingClass c) {
  switch (c) {
    case SamplingClass::kOversampled: return "oversampled";
    case SamplingClass::kUndersampled: return "undersampled";
    case SamplingClass::kAtRate: return "at-rate";
    case SamplingClass::kUnknown: return "unknown";
  }
  return "unknown";
}

SamplingClass classify_sampling(const NyquistEstimate& estimate,
                                double tolerance) {
  switch (estimate.verdict) {
    case NyquistEstimate::Verdict::kAliased:
      // The trace could not capture its own signal: by definition the
      // system is sampling below the (unknown) Nyquist rate.
      return SamplingClass::kUndersampled;
    case NyquistEstimate::Verdict::kTooShort:
      return SamplingClass::kUnknown;
    case NyquistEstimate::Verdict::kFlat:
      // A flat signal is trivially oversampled at any positive rate.
      return SamplingClass::kOversampled;
    case NyquistEstimate::Verdict::kOk:
      break;
  }
  const double ratio = estimate.reduction_ratio();
  if (std::abs(ratio - 1.0) <= tolerance) return SamplingClass::kAtRate;
  return ratio > 1.0 ? SamplingClass::kOversampled
                     : SamplingClass::kUndersampled;
}

std::optional<double> reduction_ratio(const NyquistEstimate& estimate) {
  if (estimate.verdict != NyquistEstimate::Verdict::kOk) return std::nullopt;
  return estimate.reduction_ratio();
}

}  // namespace nyqmon::nyq
