// Signal reconstruction after Nyquist-rate downsampling (paper Section 4.3).
//
// "operators would have to pass the signal through a low-pass filter (for
//  example, by taking an FFT of the sampled signal, setting all frequency
//  components above f0 to 0 and then taking the IFFT)"
//
// reconstruct() upsamples a sparsely-sampled trace back onto a denser grid
// using band-limited (Fourier) interpolation — exactly the paper's recipe.
// When the original readings were quantized, re-applying the source
// quantizer afterwards ("we can add the same quantization in order to
// recover the signal more accurately") often makes the round trip bit-exact;
// Figure 6's "L2 distance = 0" is this effect.
#pragma once

#include <optional>

#include "dsp/quantize.h"
#include "signal/timeseries.h"

namespace nyqmon::rec {

struct ReconstructionConfig {
  /// Quantizer matching the source readings; re-applied after interpolation
  /// when set (Section 4.3's recovery trick).
  std::optional<dsp::Quantizer> requantize;
  /// Extra low-pass at the signal's (estimated) occupied-band edge f0,
  /// applied after upsampling. Fourier upsampling alone only limits the
  /// band to the *sparse* stream's Nyquist; cutting further at f0 removes
  /// in-band quantization/measurement noise above the true signal band and
  /// is what makes the Figure 6 round trip land back on the exact lattice.
  std::optional<double> lowpass_cutoff_hz;
};

/// Upsample `sparse` to exactly `n_out` samples covering the same time span
/// (band-limited interpolation). n_out must be >= sparse.size().
sig::RegularSeries reconstruct(const sig::RegularSeries& sparse,
                               std::size_t n_out,
                               const ReconstructionConfig& config = {});

/// Convenience: downsample `dense` by keeping every `factor`-th sample
/// (what a slower poller would have collected), then reconstruct back onto
/// the original grid. The returned series has dense.size() samples.
sig::RegularSeries round_trip(const sig::RegularSeries& dense,
                              std::size_t factor,
                              const ReconstructionConfig& config = {});

}  // namespace nyqmon::rec
