// Quantizer semantics and the quantization-noise model of Section 4.3.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/quantize.h"
#include "signal/generators.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::dsp::measured_sqnr_db;
using nyqmon::dsp::Quantizer;
using nyqmon::sig::make_sine;

TEST(Quantizer, RoundsToNearestLattice) {
  const Quantizer q(1.0);
  EXPECT_DOUBLE_EQ(q.apply(3.2), 3.0);
  EXPECT_DOUBLE_EQ(q.apply(3.7), 4.0);
  EXPECT_DOUBLE_EQ(q.apply(-1.2), -1.0);
  EXPECT_DOUBLE_EQ(q.apply(0.0), 0.0);
}

TEST(Quantizer, FractionalStep) {
  const Quantizer q(0.25);
  EXPECT_DOUBLE_EQ(q.apply(0.30), 0.25);
  EXPECT_DOUBLE_EQ(q.apply(0.38), 0.50);
}

TEST(Quantizer, OffsetShiftsLattice) {
  const Quantizer q(1.0, 0.5);
  EXPECT_DOUBLE_EQ(q.apply(0.9), 0.5);
  EXPECT_DOUBLE_EQ(q.apply(1.1), 1.5);
}

TEST(Quantizer, Idempotent) {
  Rng rng(1);
  const Quantizer q(0.5);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    EXPECT_DOUBLE_EQ(q.apply(q.apply(v)), q.apply(v));
  }
}

TEST(Quantizer, ErrorBoundedByHalfStep) {
  Rng rng(2);
  const Quantizer q(2.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-50.0, 50.0);
    EXPECT_LE(std::abs(q.apply(v) - v), 1.0 + 1e-12);
  }
}

TEST(Quantizer, VectorForm) {
  const Quantizer q(1.0);
  const std::vector<double> x{0.4, 1.6, 2.5};
  const auto y = q.apply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(Quantizer, NonPositiveStepThrows) {
  EXPECT_THROW(Quantizer(0.0), std::invalid_argument);
  EXPECT_THROW(Quantizer(-1.0), std::invalid_argument);
}

TEST(QuantizationNoise, MatchesStepSquaredOverTwelve) {
  // Empirical quantization-noise power on a busy signal approaches
  // step^2/12 (the classic uniform-noise model the paper leans on).
  Rng rng(3);
  const Quantizer q(0.5);
  std::vector<double> x(200000);
  for (auto& v : x) v = rng.uniform(-100.0, 100.0);
  const auto y = q.apply(x);
  double noise = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    noise += (x[i] - y[i]) * (x[i] - y[i]);
  noise /= static_cast<double>(x.size());
  EXPECT_NEAR(noise, q.noise_power(), 0.05 * q.noise_power());
}

TEST(Sqnr, InfiniteWhenIdentical) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isinf(measured_sqnr_db(x, x)));
}

TEST(Sqnr, RoughSixDbPerBitRule) {
  // Quantizing a full-scale sine with step 2A/2^b gives ~6.02b + 1.76 dB.
  const auto x = make_sine(1000.0, 100000, 17.0, /*amplitude=*/1.0);
  for (int bits : {4, 6, 8}) {
    const Quantizer q(2.0 / std::pow(2.0, bits));
    const double sqnr = measured_sqnr_db(x, q.apply(x));
    const double expected = 6.02 * bits + 1.76;
    EXPECT_NEAR(sqnr, expected, 2.0) << "bits=" << bits;
  }
}

TEST(Sqnr, SizeMismatchThrows) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)measured_sqnr_db(a, b), std::invalid_argument);
}

}  // namespace
