#include "reconstruct/error.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsp/psd.h"
#include "util/check.h"

namespace nyqmon::rec {

double l2_distance(std::span<const double> a, std::span<const double> b) {
  NYQMON_CHECK(a.size() == b.size());
  NYQMON_CHECK(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double rmse(std::span<const double> a, std::span<const double> b) {
  return l2_distance(a, b) / std::sqrt(static_cast<double>(a.size()));
}

double nrmse(std::span<const double> a, std::span<const double> b) {
  const double range = *std::max_element(a.begin(), a.end()) -
                       *std::min_element(a.begin(), a.end());
  const double e = rmse(a, b);
  if (range == 0.0)
    return e == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return e / range;
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  NYQMON_CHECK(a.size() == b.size());
  NYQMON_CHECK(!a.empty());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double psd_distortion(std::span<const double> a, std::span<const double> b,
                      double sample_rate_hz) {
  NYQMON_CHECK(a.size() == b.size());
  const dsp::Psd pa = dsp::periodogram(a, sample_rate_hz);
  const dsp::Psd pb = dsp::periodogram(b, sample_rate_hz);
  const double ea = pa.total_energy();
  const double eb = pb.total_energy();
  if (ea == 0.0 && eb == 0.0) return 0.0;
  if (ea == 0.0 || eb == 0.0) return 2.0;
  double tv = 0.0;
  for (std::size_t k = 0; k < pa.bins(); ++k)
    tv += std::abs(pa.power[k] / ea - pb.power[k] / eb);
  return tv;
}

}  // namespace nyqmon::rec
