// Figure/table rendering helpers shared by the bench harnesses: box-plot
// rows (Figure 5), CDF tables (Figure 4), and bar charts (Figure 1), each
// printed as ASCII and exportable to CSV.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "signal/stats.h"

namespace nyqmon::ana {

/// One labelled box-plot row (Figure 5 style).
struct BoxRow {
  std::string label;
  sig::Summary summary;
};

/// Render labelled five-number summaries as a table.
std::string render_box_table(const std::vector<BoxRow>& rows);

/// Render a labelled CDF as "x  F(x)" rows.
std::string render_cdf_rows(
    const std::string& label,
    const std::vector<std::pair<double, double>>& rows);

/// One labelled sample view for a quantile table (the samples must outlive
/// the row; rendering copies nothing).
struct QuantileRow {
  std::string label;
  std::span<const double> samples;
};

/// Render labelled distributions as p5/p25/p50/p75/p95 quantile rows — the
/// compact form of the per-metric CDF panels the fleet engine report uses.
std::string render_quantile_table(const std::vector<QuantileRow>& rows);

}  // namespace nyqmon::ana
