// Datacenter topology model.
//
// The paper's fleet study spans O(10^3) collection points: switches at
// several tiers plus servers. nyqmon's synthetic datacenter is a standard
// pod-based Clos layout — pods of racks, each rack a ToR switch plus
// servers, pods joined by aggregation and core tiers. Devices exist to give
// every synthetic trace a realistic identity (tier influences which metrics
// a device exports and how busy it is).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nyqmon::tel {

enum class DeviceKind {
  kServer,
  kTorSwitch,
  kAggSwitch,
  kCoreSwitch,
};

std::string to_string(DeviceKind kind);

struct Device {
  std::uint32_t id = 0;
  DeviceKind kind = DeviceKind::kServer;
  std::int32_t pod = -1;   ///< -1 for core devices (not in any pod)
  std::int32_t rack = -1;  ///< -1 for agg/core devices

  /// Stable human-readable name, e.g. "pod3/rack7/tor" or "core12".
  std::string name() const;
};

struct TopologyConfig {
  std::size_t pods = 4;
  std::size_t racks_per_pod = 8;
  std::size_t servers_per_rack = 4;
  std::size_t agg_per_pod = 2;
  std::size_t core_switches = 4;
};

/// A generated datacenter: device inventory grouped by tier.
class Topology {
 public:
  explicit Topology(const TopologyConfig& config);

  const std::vector<Device>& devices() const { return devices_; }
  std::vector<Device> devices_of_kind(DeviceKind kind) const;
  std::size_t size() const { return devices_.size(); }
  const TopologyConfig& config() const { return config_; }

 private:
  TopologyConfig config_;
  std::vector<Device> devices_;
};

}  // namespace nyqmon::tel
