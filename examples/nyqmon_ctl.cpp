// nyqmon_ctl — command-line client for a running nyqmond.
//
// Usage:
//   nyqmon_ctl <host> <port> stats
//   nyqmon_ctl <host> <port> query <selector> <t_begin> <t_end> <step_s>
//              [agg: none|sum|avg|min|max|p50|p95|p99] [tf: raw|rate|zscore]
//              [--explain]
//   nyqmon_ctl <host> <port> ingest <stream> <rate_hz> <t0> <v1,v2,...>
//   nyqmon_ctl <host> <port> checkpoint
//   nyqmon_ctl <host> <port> metrics [--fleet]
//   nyqmon_ctl <host> <port> trace [out.json] [--fleet]
//   nyqmon_ctl <host> <port> logs
//   nyqmon_ctl <host> <port> handoff <selector> <dst_host> <dst_port>
//
// `handoff` moves every stream matching <selector> from <host>:<port> to
// <dst_host>:<dst_port>: a HANDOFF EXPORT on the source ships a segment
// image of the matched streams, a HANDOFF IMPORT restores them on the
// destination and checkpoints them durable there. The source keeps its
// copy (queries through a router dedupe mid-handoff duplicates); retire
// the source node once the import reports persisted.
//
// `metrics` prints the server's Prometheus text exposition (metric catalog:
// docs/OBSERVABILITY.md). `trace` drains the server's trace ring buffers to
// chrome://tracing JSON — load the file via chrome://tracing or
// https://ui.perfetto.dev; without an output path the JSON goes to stdout.
// Against a router, `--fleet` widens both to the whole fleet: metrics come
// back as one `# == node <name> ==` section per node, and trace stitches
// every node's spans into a single timeline sharing the propagated trace
// ids. `logs` drains the server's structured log rings (consuming, like
// trace). `query --explain` appends the server's own per-stage latency
// breakdown; a router reports scatter/merge plus per-backend gather rows.
//
// Examples against the default nyqmond demo:
//   nyqmon_ctl 127.0.0.1 7411 stats
//   nyqmon_ctl 127.0.0.1 7411 query 'pod0/*/cpu_util' 0 86400 600 p95
//   nyqmon_ctl 127.0.0.1 7411 ingest lab/sensor 1.0 0 1.5,1.7,2.1,2.4
//   nyqmon_ctl 127.0.0.1 7411 metrics
//   nyqmon_ctl 127.0.0.1 7411 trace /tmp/nyqmond-trace.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "query/builder.h"
#include "server/client.h"

using namespace nyqmon;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nyqmon_ctl <host> <port> "
               "stats | checkpoint | metrics [--fleet] | "
               "trace [out.json] [--fleet] | logs | "
               "query <selector> <t0> <t1> <step> "
               "[agg] [tf] [--explain] | "
               "ingest <stream> <rate_hz> <t0> <v1,v2,...> | "
               "handoff <selector> <dst_host> <dst_port>\n");
  return 2;
}

/// The EXPLAIN stage table: primary stages partition the total (rendered
/// with their share); `backend/<node>` rows overlap the scatter stage and
/// are bracketed instead of summed.
void print_explain(const srv::QueryExplainBlock& explain) {
  std::printf("explain: total %.3f ms\n",
              static_cast<double>(explain.total_ns) / 1e6);
  for (const auto& entry : explain.stages) {
    const double ms = static_cast<double>(entry.ns) / 1e6;
    if (entry.stage.rfind("backend/", 0) == 0) {
      std::printf("  [%-18s %9.3f ms]  (overlaps scatter)\n",
                  entry.stage.c_str(), ms);
    } else {
      const double pct =
          explain.total_ns == 0
              ? 0.0
              : 100.0 * static_cast<double>(entry.ns) /
                    static_cast<double>(explain.total_ns);
      std::printf("  %-20s %9.3f ms  %5.1f%%\n", entry.stage.c_str(), ms,
                  pct);
    }
  }
}

bool parse_aggregation(const std::string& s, qry::Aggregation& out) {
  static const std::pair<const char*, qry::Aggregation> kNames[] = {
      {"none", qry::Aggregation::kNone}, {"sum", qry::Aggregation::kSum},
      {"avg", qry::Aggregation::kAvg},   {"min", qry::Aggregation::kMin},
      {"max", qry::Aggregation::kMax},   {"p50", qry::Aggregation::kP50},
      {"p95", qry::Aggregation::kP95},   {"p99", qry::Aggregation::kP99}};
  for (const auto& [name, value] : kNames) {
    if (s == name) {
      out = value;
      return true;
    }
  }
  return false;
}

bool parse_transform(const std::string& s, qry::Transform& out) {
  if (s == "raw") out = qry::Transform::kRaw;
  else if (s == "rate") out = qry::Transform::kRate;
  else if (s == "zscore") out = qry::Transform::kZScore;
  else return false;
  return true;
}

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string cell =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!cell.empty()) values.push_back(std::atof(cell.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string host = argv[1];
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  const std::string verb = argv[3];

  try {
    srv::NyqmonClient client(host, port);

    if (verb == "stats") {
      std::printf("%s\n", client.stats_json().c_str());
      return 0;
    }

    if (verb == "metrics") {
      const bool fleet = argc > 4 && std::strcmp(argv[4], "--fleet") == 0;
      std::printf("%s", client.metrics_text(fleet).c_str());
      return 0;
    }

    if (verb == "logs") {
      std::printf("%s", client.logs_text().c_str());
      return 0;
    }

    if (verb == "trace") {
      bool fleet = false;
      const char* out_path = nullptr;
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fleet") == 0)
          fleet = true;
        else
          out_path = argv[i];
      }
      const std::string json = client.trace_json(fleet);
      if (out_path != nullptr) {
        std::FILE* f = std::fopen(out_path, "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot open %s for writing\n", out_path);
          return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %zu bytes to %s (open via chrome://tracing)\n",
                    json.size(), out_path);
      } else {
        std::printf("%s\n", json.c_str());
      }
      return 0;
    }

    if (verb == "checkpoint") {
      const srv::CheckpointReply r = client.checkpoint();
      std::printf("checkpoint: persisted=%s chunks=%llu bytes=%llu\n",
                  r.persisted ? "yes" : "no",
                  static_cast<unsigned long long>(r.chunks),
                  static_cast<unsigned long long>(r.bytes_written));
      return 0;
    }

    if (verb == "query") {
      bool explain = false;
      std::vector<std::string> args;  // positional args, flags peeled off
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--explain") == 0)
          explain = true;
        else
          args.emplace_back(argv[i]);
      }
      if (args.size() < 4) return usage();
      qry::Aggregation agg = qry::Aggregation::kNone;
      qry::Transform tf = qry::Transform::kRaw;
      if (args.size() > 4 && !parse_aggregation(args[4], agg)) return usage();
      if (args.size() > 5 && !parse_transform(args[5], tf)) return usage();
      const qry::QueryBuilder builder =
          qry::QueryBuilder()
              .select(args[0])
              .range(std::atof(args[1].c_str()), std::atof(args[2].c_str()))
              .align(std::atof(args[3].c_str()))
              .transform(tf)
              .aggregate(agg)
              .want_explain(explain);

      const srv::QueryReply reply = client.query(builder);
      std::printf("matched %u stream(s), reconstructed %u%s\n", reply.matched,
                  reply.reconstructed,
                  reply.cache_hit ? " (served from cache)" : "");
      for (const auto& s : reply.series) {
        std::printf("%-40s n=%zu", s.label.c_str(), s.series.size());
        const std::size_t shown = std::min<std::size_t>(s.series.size(), 6);
        for (std::size_t i = 0; i < shown; ++i)
          std::printf(" %.4g", s.series[i]);
        if (s.series.size() > shown) std::printf(" ...");
        std::printf("\n");
      }
      if (explain) {
        if (reply.explain.has_value())
          print_explain(*reply.explain);
        else
          std::printf("explain: not supported by this server\n");
      }
      return 0;
    }

    if (verb == "ingest") {
      if (argc < 8) return usage();
      const std::vector<double> values = parse_values(argv[7]);
      const std::uint64_t total =
          client.ingest(argv[4], std::atof(argv[5]), std::atof(argv[6]),
                        values);
      std::printf("ingested %zu value(s); stream now holds %llu\n",
                  values.size(), static_cast<unsigned long long>(total));
      return 0;
    }

    if (verb == "handoff") {
      if (argc < 7) return usage();
      const std::string selector = argv[4];
      const std::string dst_host = argv[5];
      const auto dst_port = static_cast<std::uint16_t>(std::atoi(argv[6]));

      const srv::HandoffExportReply exported =
          client.handoff_export(selector);
      if (exported.streams == 0) {
        std::printf("handoff: no streams match '%s'\n", selector.c_str());
        return 0;
      }
      std::printf("exported %u stream(s), %llu samples (%zu segment bytes)\n",
                  exported.streams,
                  static_cast<unsigned long long>(exported.samples),
                  exported.segment.size());

      srv::NyqmonClient dst(dst_host, dst_port);
      const srv::HandoffImportReply imported =
          dst.handoff_import(exported.segment);
      std::printf("imported %u stream(s), %llu samples into %s:%u "
                  "(persisted=%s)\n",
                  imported.streams,
                  static_cast<unsigned long long>(imported.samples),
                  dst_host.c_str(), dst_port,
                  imported.persisted ? "yes" : "no");
      return 0;
    }

    return usage();
  } catch (const srv::ServerError& e) {
    std::fprintf(stderr, "nyqmon_ctl: %s\n", e.what());
    for (const auto& d : e.details())
      std::fprintf(stderr, "  %s: %s\n", d.node.c_str(), d.error.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nyqmon_ctl: %s\n", e.what());
    return 1;
  }
}
