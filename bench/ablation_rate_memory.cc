// Ablation of rate memory (Section 4.2): "We can even 'remember' previous
// maximum Nyquist rates to ramp up more quickly in the future."
//
// A flapping workload (busy -> calm -> busy): the harness compares the
// adaptive sampler with and without rate memory, reporting windows spent
// under-provisioned during the recurrence and total cost.
#include <cstdio>
#include <memory>

#include "common.h"
#include "nyquist/adaptive_sampler.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/ascii.h"
#include "util/csv.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Ablation: rate memory on a recurring-event workload "
              "===\n\n");

  auto busy = std::make_shared<sig::SumOfSines>(
      std::vector<sig::Tone>{{0.04, 1.0, 0.0}});
  auto calm = std::make_shared<sig::SumOfSines>(
      std::vector<sig::Tone>{{0.001, 1.0, 0.0}});
  const double t1 = 800000.0, t2 = 1600000.0, t_end = 2400000.0;
  const sig::PiecewiseSignal workload({busy, calm, busy}, {t1, t2});
  const double needed_rate = 2.0 * 0.04;  // true Nyquist of the busy phase

  AsciiTable table({"variant", "slow windows in 2nd busy phase",
                    "total samples", "final rate (Hz)"});
  CsvWriter csv(bench::csv_path("ablation_rate_memory"),
                {"variant", "slow_windows", "total_samples", "final_rate"});

  for (bool memory : {true, false}) {
    nyq::AdaptiveConfig cfg;
    cfg.initial_rate_hz = 0.005;
    cfg.min_rate_hz = 1e-4;
    cfg.max_rate_hz = 10.0;
    cfg.window_duration_s = 50000.0;
    cfg.use_rate_memory = memory;
    const auto run = nyq::AdaptiveSampler(cfg).run(
        [&workload](double t) { return workload.value(t); }, 0.0, t_end);

    std::size_t slow = 0;
    for (const auto& step : run.steps)
      if (step.window_start_s >= t2 && step.rate_hz < needed_rate) ++slow;

    table.row({memory ? "with rate memory" : "without rate memory",
               std::to_string(slow), std::to_string(run.total_samples),
               AsciiTable::format_double(run.final_rate_hz)});
    csv.row({memory ? "memory" : "no-memory", std::to_string(slow),
             std::to_string(run.total_samples),
             CsvWriter::format_double(run.final_rate_hz)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: remembering the previous maximum rate cuts the\n"
              "re-ramp time when the busy condition recurs (fewer windows\n"
              "spent sampling below the signal's needs).\n");
  return 0;
}
