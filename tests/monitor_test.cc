// Monitor layer: cost model arithmetic, collector accounting, the fleet
// audit plumbing on a small fleet, and the adaptive monitoring pipeline's
// cost/quality outputs.
#include <gtest/gtest.h>

#include <memory>

#include "monitor/audit.h"
#include "monitor/collector.h"
#include "monitor/cost_model.h"
#include "monitor/pipeline.h"
#include "signal/generators.h"

namespace {

using namespace nyqmon;
using mon::AuditConfig;
using mon::AuditResult;
using mon::Collector;
using mon::Cost;
using mon::cost_of_samples;
using mon::CostModel;
using mon::PipelineConfig;
using mon::run_audit;

TEST(CostModel, LinearInSamples) {
  const CostModel model;
  const Cost c1 = cost_of_samples(100, model);
  const Cost c2 = cost_of_samples(200, model);
  EXPECT_EQ(c1.samples, 100u);
  EXPECT_DOUBLE_EQ(c2.transmission_bytes, 2.0 * c1.transmission_bytes);
  EXPECT_DOUBLE_EQ(c2.storage_bytes, 2.0 * c1.storage_bytes);
  EXPECT_DOUBLE_EQ(c2.collection_cpu_s, 2.0 * c1.collection_cpu_s);
}

TEST(CostModel, ZeroSamplesZeroCost) {
  const Cost c = cost_of_samples(0);
  EXPECT_EQ(c.samples, 0u);
  EXPECT_DOUBLE_EQ(c.storage_bytes, 0.0);
}

TEST(CostModel, AccumulateAdds) {
  Cost total;
  total += cost_of_samples(10);
  total += cost_of_samples(20);
  EXPECT_EQ(total.samples, 30u);
  EXPECT_DOUBLE_EQ(total.storage_bytes, cost_of_samples(30).storage_bytes);
}

TEST(CostModel, ToStringMentionsSamples) {
  const auto text = to_string(cost_of_samples(1234));
  EXPECT_NE(text.find("1234"), std::string::npos);
}

TEST(Collector, IngestsAndAccounts) {
  Collector collector;
  sig::TimeSeries trace;
  for (int i = 0; i < 50; ++i) trace.push(i, 1.0);
  collector.ingest("dev1/temp", trace);
  collector.ingest("dev2/temp", trace);
  EXPECT_EQ(collector.streams(), 2u);
  EXPECT_EQ(collector.total_cost().samples, 100u);
  EXPECT_TRUE(collector.has("dev1/temp"));
  EXPECT_FALSE(collector.has("dev3/temp"));
  EXPECT_EQ(collector.trace("dev1/temp").size(), 50u);
  EXPECT_THROW((void)collector.trace("nope"), std::invalid_argument);
}

TEST(Collector, AppendsToExistingStream) {
  Collector collector;
  sig::TimeSeries a, b;
  a.push(0.0, 1.0);
  b.push(1.0, 2.0);
  collector.ingest("s", a);
  collector.ingest("s", b);
  EXPECT_EQ(collector.streams(), 1u);
  EXPECT_EQ(collector.trace("s").size(), 2u);
}

class SmallAudit : public ::testing::Test {
 protected:
  static const AuditResult& result() {
    static const AuditResult r = [] {
      tel::FleetConfig fleet_cfg;
      fleet_cfg.target_pairs = 120;
      fleet_cfg.seed = 7;
      fleet_cfg.topology.pods = 2;
      const tel::Fleet fleet(fleet_cfg);
      return run_audit(fleet, AuditConfig{});
    }();
    return r;
  }
};

TEST_F(SmallAudit, EveryPairGetsAVerdict) {
  EXPECT_EQ(result().total_pairs(), 120u);
  for (const auto& p : result().pairs) {
    EXPECT_FALSE(p.device_name.empty());
    EXPECT_GT(p.poll_rate_hz, 0.0);
  }
}

TEST_F(SmallAudit, MajorityOversampled) {
  // The paper's central observation: most pairs are over-sampled. The
  // synthetic fleet is tuned to land near 89%/11%, but on a 120-pair
  // subsample we only require the qualitative shape.
  EXPECT_GT(result().fraction_oversampled(), 0.6);
  EXPECT_LT(result().fraction_undersampled(), 0.35);
}

TEST_F(SmallAudit, ReductionRatiosSpanDecades) {
  double max_ratio = 0.0;
  for (const auto& p : result().pairs)
    if (p.reduction_ratio) max_ratio = std::max(max_ratio, *p.reduction_ratio);
  EXPECT_GT(max_ratio, 50.0);
}

TEST_F(SmallAudit, PerMetricAggregatesConsistent) {
  std::size_t total = 0;
  for (const auto& [kind, agg] : result().by_metric) {
    EXPECT_EQ(agg.pairs,
              agg.oversampled + agg.undersampled + agg.at_rate + agg.unknown);
    total += agg.pairs;
  }
  EXPECT_EQ(total, result().total_pairs());
}

TEST_F(SmallAudit, NyquistCostBelowCurrentCost) {
  const double day = 86400.0;
  const auto current = result().current_cost(day);
  const auto nyquist = result().nyquist_cost(day);
  EXPECT_LT(nyquist.storage_bytes, current.storage_bytes / 2.0);
}

TEST_F(SmallAudit, EstimatesUsuallyTrackTrueBandwidth) {
  // For Ok estimates on smooth metrics the estimated Nyquist rate should
  // be within [true/30, 3*true] most of the time (the 99% rule sits below
  // the hard band edge on red spectra).
  std::size_t ok = 0, close = 0;
  for (const auto& p : result().pairs) {
    if (!p.estimate.ok()) continue;
    ++ok;
    const double truth = 2.0 * p.true_bandwidth_hz;
    const double est = p.estimate.nyquist_rate_hz;
    if (est > truth / 30.0 && est < 3.0 * truth) ++close;
  }
  ASSERT_GT(ok, 40u);
  EXPECT_GT(static_cast<double>(close) / static_cast<double>(ok), 0.5);
}

TEST(Audit, BitIdenticalAcrossThreadCounts) {
  // The audit fans per-pair work across threads; results must not depend
  // on the schedule (random streams are pre-forked sequentially).
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 60;
  fleet_cfg.seed = 3;
  fleet_cfg.topology.pods = 2;
  const tel::Fleet fleet(fleet_cfg);
  AuditConfig serial;
  serial.threads = 1;
  AuditConfig parallel;
  parallel.threads = 4;
  const auto a = run_audit(fleet, serial);
  const auto b = run_audit(fleet, parallel);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].device_name, b.pairs[i].device_name);
    EXPECT_EQ(a.pairs[i].estimate.verdict, b.pairs[i].estimate.verdict);
    EXPECT_DOUBLE_EQ(a.pairs[i].estimate.nyquist_rate_hz,
                     b.pairs[i].estimate.nyquist_rate_hz);
  }
}

TEST(Pipeline, CheaperAndAccurateOnCalmSignal) {
  // A slow tone monitored at a 60 s production interval: the pipeline must
  // cut cost substantially while reconstructing accurately.
  const sig::SumOfSines tone({{0.0002, 5.0, 0.0}}, /*dc=*/50.0);

  PipelineConfig cfg;
  cfg.sampler.initial_rate_hz = 1.0 / 60.0;
  cfg.sampler.min_rate_hz = 1e-4;
  cfg.sampler.max_rate_hz = 1.0;
  cfg.sampler.window_duration_s = 20000.0;
  const mon::AdaptiveMonitoringPipeline pipeline(cfg);
  const auto r = pipeline.run(tone, 0.0, 800000.0, 1.0 / 60.0);

  EXPECT_GT(r.cost_savings, 3.0);
  EXPECT_LT(r.nrmse, 0.05);
  EXPECT_LT(r.adaptive_cost.storage_bytes, r.baseline_cost.storage_bytes);
  EXPECT_EQ(r.reconstruction.size(), r.ground_truth.size());
}

TEST(Pipeline, RequantizationMatchesSourceLattice) {
  const sig::SumOfSines tone({{0.0005, 3.0, 0.0}}, 40.0);
  PipelineConfig cfg;
  cfg.sampler.initial_rate_hz = 0.02;
  cfg.sampler.window_duration_s = 20000.0;
  cfg.quantization_step = 1.0;
  cfg.requantize_reconstruction = true;
  const auto r = mon::AdaptiveMonitoringPipeline(cfg).run(tone, 0.0,
                                                          200000.0, 0.02);
  for (double v : r.reconstruction.values())
    EXPECT_DOUBLE_EQ(v, std::round(v));
}

TEST(Pipeline, InvalidArgsThrow) {
  const sig::SumOfSines tone({{0.001, 1.0, 0.0}});
  const mon::AdaptiveMonitoringPipeline pipeline;
  EXPECT_THROW((void)pipeline.run(tone, 0.0, -1.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)pipeline.run(tone, 0.0, 100.0, 0.0),
               std::invalid_argument);
}

}  // namespace
