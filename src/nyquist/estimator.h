// Nyquist-rate estimation from a measured trace — the paper's core method
// (Section 3.2):
//
//   (a) compute the FFT of the trace and the total energy (sum of the PSD
//       across all bins);
//   (b) accumulate PSD bins from low to high frequency until 99% of the
//       total energy is covered;
//   (c) if *all* bins are needed, the trace is probably already aliased —
//       record "aliased" (the paper uses -1); otherwise report twice the
//       99%-energy frequency as the Nyquist rate.
//
// The 99% cutoff is the paper's workaround for measurement and quantization
// noise (Sections 3.2 and 4.3); both the cutoff and the preprocessing
// (detrend mode, window, Welch averaging) are configurable.
#pragma once

#include <optional>
#include <string>

#include "dsp/psd.h"
#include "signal/timeseries.h"

namespace nyqmon::nyq {

enum class DetrendMode {
  kNone,
  kMean,    ///< subtract the mean (default; DC would dominate total energy)
  kLinear,  ///< subtract a least-squares line (for drifting counters)
};

struct EstimatorConfig {
  /// Fraction of total energy that defines the occupied band. The paper
  /// uses 0.99 and discusses 0.9999 as a conservative alternative.
  double energy_cutoff = 0.99;
  DetrendMode detrend = DetrendMode::kMean;
  dsp::WindowType window = dsp::WindowType::kHann;
  /// If > 1, average this many Welch segments (50% overlap) to tame noise;
  /// 1 = single periodogram over the whole trace.
  std::size_t welch_segments = 1;
  /// The verdict is "aliased" when the cutoff bin falls at or beyond this
  /// fraction of the spectrum — the practical form of the paper's "need all
  /// bins" test. An already-aliased trace has folded energy spread across
  /// its whole measured band, so the 99%-energy bin lands near the top; a
  /// genuinely band-limited trace reaches 99% far below it.
  double aliased_bin_fraction = 0.9;
  /// Minimum trace length to attempt an estimate.
  std::size_t min_samples = 16;
};

/// Outcome of one estimation.
struct NyquistEstimate {
  enum class Verdict {
    kOk,        ///< nyquist_rate_hz is valid
    kAliased,   ///< trace looks aliased; rate not recoverable (paper's -1)
    kTooShort,  ///< not enough samples to analyse
    kFlat,      ///< (near-)constant trace: any nonzero rate suffices
  };

  Verdict verdict = Verdict::kTooShort;
  /// Estimated Nyquist rate (2 * f_cutoff); -1 when aliased, 0 when flat.
  double nyquist_rate_hz = -1.0;
  /// Frequency at which the cumulative PSD crosses the cutoff.
  double cutoff_frequency_hz = 0.0;
  /// Sampling rate of the analysed trace.
  double trace_rate_hz = 0.0;
  double total_energy = 0.0;
  std::size_t cutoff_bin = 0;
  std::size_t total_bins = 0;

  bool ok() const { return verdict == Verdict::kOk; }
  /// Oversampling factor trace_rate / nyquist_rate (only when ok()).
  double reduction_ratio() const;
};

std::string to_string(NyquistEstimate::Verdict v);

class NyquistEstimator {
 public:
  explicit NyquistEstimator(EstimatorConfig config = {});

  const EstimatorConfig& config() const { return config_; }

  /// Estimate from a uniform trace.
  NyquistEstimate estimate(const sig::RegularSeries& trace) const;

  /// Estimate from raw values sampled at sample_rate_hz.
  NyquistEstimate estimate(std::span<const double> values,
                           double sample_rate_hz) const;

 private:
  EstimatorConfig config_;
};

}  // namespace nyqmon::nyq
