// Equal-width histogram — the remaining summary the analysis layer offers
// next to CDFs and box plots; the benches use it for distribution shapes
// that a five-number summary hides (e.g. the bimodal reduction ratios of a
// fleet that mixes idle and hot devices).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace nyqmon::ana {

class Histogram {
 public:
  /// Bins the samples into `bins` equal-width buckets over [min, max].
  /// With log_scale, binning happens in log10 space (all samples must be
  /// positive).
  Histogram(std::span<const double> samples, std::size_t bins,
            bool log_scale = false);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  /// [lo, hi) edges of a bin in the original (linear) domain.
  std::pair<double, double> edges(std::size_t bin) const;
  /// Index of the fullest bin.
  std::size_t mode_bin() const;

  /// ASCII rendering: one bar per bin.
  std::string render(int width = 50) const;

 private:
  bool log_;
  double lo_ = 0.0;
  double hi_ = 0.0;  // in binning space (log10 when log_)
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nyqmon::ana
