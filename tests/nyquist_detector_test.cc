// Dual-rate aliasing detection (Penny et al., paper Section 4.1): true
// positives on undersampled signals, true negatives on oversampled ones,
// noise robustness, and the non-integer-ratio contract.
#include <gtest/gtest.h>

#include <memory>

#include "nyquist/aliasing_detector.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::nyq::DetectionResult;
using nyqmon::nyq::DetectorConfig;
using nyqmon::nyq::DualRateAliasingDetector;
using nyqmon::sig::SumOfSines;
using nyqmon::sig::Tone;

// Probe a source at `slow_rate`; the measurement callback is noiseless.
DetectionResult probe_signal(const nyqmon::sig::ContinuousSignal& s,
                             double slow_rate, double duration = 4096.0,
                             DetectorConfig cfg = {}) {
  const DualRateAliasingDetector det(cfg);
  return det.probe([&s](double t) { return s.value(t); }, 0.0, duration,
                   slow_rate);
}

TEST(Detector, NoAliasingWhenWellSampled) {
  const SumOfSines tone({{0.01, 1.0, 0.0}});
  const auto r = probe_signal(tone, /*slow_rate=*/0.1, /*duration=*/40000.0);
  EXPECT_FALSE(r.aliasing_detected);
  EXPECT_LT(r.discrepancy, 0.1);
}

TEST(Detector, DetectsToneAboveSlowNyquist) {
  // 0.45 Hz tone; slow stream at 0.5 Hz (Nyquist 0.25) aliases it to
  // 0.05 Hz, the fast stream at 0.925 Hz (Nyquist 0.4625) holds it at
  // 0.45 -> spectra disagree on the common band.
  const SumOfSines tone({{0.45, 1.0, 0.0}});
  const auto r = probe_signal(tone, /*slow_rate=*/0.5, /*duration=*/4096.0);
  EXPECT_TRUE(r.aliasing_detected);
  EXPECT_GT(r.discrepancy, 0.5);
}

TEST(Detector, DetectsBroadbandUndersampling) {
  Rng rng(21);
  const auto proc = nyqmon::sig::make_bandlimited_process(
      0.2, 1.0, 64, rng, 0.0, nyqmon::sig::SpectralShape::kFlat);
  const auto r = probe_signal(*proc, /*slow_rate=*/0.1, /*duration=*/20000.0);
  EXPECT_TRUE(r.aliasing_detected);
}

TEST(Detector, CleanOnBandlimitedNoiseWellAboveNyquist) {
  Rng rng(22);
  const auto proc = nyqmon::sig::make_bandlimited_process(0.005, 1.0, 48, rng);
  const auto r = probe_signal(*proc, /*slow_rate=*/0.1, /*duration=*/40000.0);
  EXPECT_FALSE(r.aliasing_detected);
}

TEST(Detector, RobustToSmallAmplitudeNoise) {
  // The paper: "noise especially of a small amplitude can be filtered using
  // standard techniques". A strong in-band tone plus faint measurement
  // noise must not trip the detector.
  Rng rng(23);
  const SumOfSines tone({{0.01, 1.0, 0.0}});
  auto noisy = std::make_shared<Rng>(rng.fork());
  const DualRateAliasingDetector det;
  const auto r = det.probe(
      [&tone, noisy](double t) {
        return tone.value(t) + noisy->normal(0.0, 0.02);
      },
      0.0, 40000.0, 0.1);
  EXPECT_FALSE(r.aliasing_detected) << "discrepancy=" << r.discrepancy;
}

TEST(Detector, FlatSignalDoesNotTrip) {
  const SumOfSines flat({}, /*dc=*/7.0);
  const auto r = probe_signal(flat, 0.05);
  EXPECT_FALSE(r.aliasing_detected);
  EXPECT_DOUBLE_EQ(r.discrepancy, 0.0);
}

TEST(Detector, DirectDetectRequiresFasterFirstStream) {
  const SumOfSines tone({{0.01, 1.0, 0.0}});
  const auto fast = tone.sample(0.0, 1.0, 256);
  const auto slow = tone.sample(0.0, 3.7, 256);
  const DualRateAliasingDetector det;
  EXPECT_NO_THROW((void)det.detect(fast, slow));
  EXPECT_THROW((void)det.detect(slow, fast), std::invalid_argument);
}

TEST(Detector, TinyStreamsRejected) {
  const SumOfSines tone({{0.01, 1.0, 0.0}});
  const auto fast = tone.sample(0.0, 1.0, 4);
  const auto slow = tone.sample(0.0, 2.0, 4);
  EXPECT_THROW((void)DualRateAliasingDetector().detect(fast, slow),
               std::invalid_argument);
}

TEST(Detector, IntegerRatioConfigRejected) {
  DetectorConfig cfg;
  cfg.rate_ratio = 2.0;  // Penny et al. require non-integer ratios
  EXPECT_THROW(DualRateAliasingDetector{cfg}, std::invalid_argument);
  cfg.rate_ratio = 0.5;
  EXPECT_THROW(DualRateAliasingDetector{cfg}, std::invalid_argument);
}

TEST(Detector, ReportsComparedBand) {
  const SumOfSines tone({{0.01, 1.0, 0.0}});
  DetectorConfig cfg;
  cfg.band_guard_fraction = 0.1;
  const auto r = probe_signal(tone, 0.1, 20000.0, cfg);
  EXPECT_NEAR(r.common_band_hz, 0.045, 1e-9);  // 0.05 * (1 - 0.1)
  EXPECT_GT(r.compared_bins, 10u);
}

// Sweep: tone frequency relative to the slow Nyquist frequency. Below ->
// clean; above (up to the fast Nyquist) -> detected.
class DetectorSweep : public ::testing::TestWithParam<double> {};

TEST_P(DetectorSweep, VerdictMatchesGroundTruth) {
  const double ratio = GetParam();  // tone freq / slow Nyquist freq
  const double slow_rate = 0.2;
  const double slow_nyq = slow_rate / 2.0;
  const double tone_hz = ratio * slow_nyq;
  const SumOfSines tone({{tone_hz, 1.0, 0.7}});
  const auto r = probe_signal(tone, slow_rate, 60000.0);
  // Guard band: ratios within +-15% of 1.0 are legitimately ambiguous.
  if (ratio < 0.85) {
    EXPECT_FALSE(r.aliasing_detected) << "ratio=" << ratio;
  } else if (ratio > 1.15) {
    EXPECT_TRUE(r.aliasing_detected) << "ratio=" << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(ToneVsSlowNyquist, DetectorSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.8, 1.2, 1.4,
                                           1.6));

}  // namespace
