// Engine throughput: pairs/sec of the sharded FleetMonitorEngine as the
// worker count grows, over a paper-scale (>= 500 pairs) fleet.
//
// Also cross-checks the engine's determinism contract: the per-pair
// aggregates must be bit-identical whatever the worker count, so the
// scaling numbers describe the *same* computation.
#include <cstdio>
#include <vector>

#include "common.h"
#include "engine/engine.h"
#include "engine/report.h"
#include "obs/metrics.h"
#include "util/ascii.h"
#include "util/csv.h"

using namespace nyqmon;

int main() {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 500;
  fleet_cfg.seed = bench::kFleetSeed;
  const tel::Fleet fleet(fleet_cfg);
  std::printf("fleet: %zu metric-device pairs\n\n", fleet.size());

  AsciiTable table({"workers", "shards", "wall_s", "pairs_per_sec",
                    "speedup", "digest"});
  CsvWriter csv(bench::csv_path("engine_throughput"),
                {"workers", "shards", "wall_s", "pairs_per_sec", "speedup"});

  double base_wall = 0.0;
  std::uint64_t base_digest = 0;
  bool deterministic = true;
  std::string json_workers, json_pps;
  std::vector<double> pps_by_workers;
  std::size_t max_workers = 1;
  for (const std::size_t workers : {1, 2, 4, 8}) {
    eng::EngineConfig cfg;
    cfg.workers = workers;
    eng::FleetMonitorEngine engine(fleet, cfg);
    const eng::FleetRunResult result = engine.run();

    const std::uint64_t d = eng::run_digest(result);
    if (workers == 1) {
      base_wall = result.wall_seconds;
      base_digest = d;
    } else if (d != base_digest) {
      deterministic = false;
    }
    const double pps =
        static_cast<double>(fleet.size()) / result.wall_seconds;
    char dig[24];
    std::snprintf(dig, sizeof(dig), "%016llx",
                  static_cast<unsigned long long>(d));
    table.row({std::to_string(workers), std::to_string(result.shards_used),
               AsciiTable::format_double(result.wall_seconds),
               AsciiTable::format_double(pps),
               AsciiTable::format_double(base_wall / result.wall_seconds),
               dig});
    csv.row_numeric({static_cast<double>(workers),
                     static_cast<double>(result.shards_used),
                     result.wall_seconds, pps,
                     base_wall / result.wall_seconds});
    bench::json_append(json_workers, "%zu", workers);
    bench::json_append(json_pps, "%.1f", pps);
    pps_by_workers.push_back(pps);
    max_workers = workers;
  }

  // Worker-scaling efficiency (ROADMAP item 1's headline number): the
  // widest configuration's speedup over 1 worker, normalized by its worker
  // count — 1.0 is perfect linear scaling, 1/max_workers is flat.
  const double scaling_efficiency =
      pps_by_workers.size() < 2 || pps_by_workers.front() <= 0.0
          ? 0.0
          : pps_by_workers.back() / pps_by_workers.front() /
                static_cast<double>(max_workers);

  // Stage-timing snapshot from the obs layer: where a pair's budget went
  // (sample covers acquisition incl. the FFT slice reported separately).
  AsciiTable stages({"stage", "count", "p50_us", "p99_us", "max_us"});
  for (const char* name :
       {"nyqmon_engine_stage_sample_ns", "nyqmon_engine_stage_fft_ns",
        "nyqmon_engine_stage_reconstruct_ns", "nyqmon_engine_stage_audit_ns"}) {
    const obs::HistogramSnapshot s =
        obs::Registry::instance().histogram_snapshot(name);
    stages.row({name, std::to_string(s.count),
                AsciiTable::format_double(s.quantile(0.50) / 1e3),
                AsciiTable::format_double(s.quantile(0.99) / 1e3),
                AsciiTable::format_double(static_cast<double>(s.max) / 1e3)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", stages.render().c_str());
  std::printf("aggregates bit-identical across worker counts: %s\n",
              deterministic ? "yes" : "NO (BUG)");
  std::printf("scaling efficiency (%zu workers): %.3f\n", max_workers,
              scaling_efficiency);
  char eff[32];
  std::snprintf(eff, sizeof(eff), "%.3f", scaling_efficiency);
  bench::write_json_line(
      "engine_throughput",
      "{\"bench\":\"engine_throughput\",\"pairs\":" +
          std::to_string(fleet.size()) + ",\"workers\":[" + json_workers +
          "],\"pairs_per_sec\":[" + json_pps + "],\"scaling_efficiency\":" +
          eff + ",\"deterministic\":" + (deterministic ? "true" : "false") +
          "}");
  return deterministic ? 0 : 1;
}
