#include "util/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace nyqmon {

AsciiTable::AsciiTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  NYQMON_CHECK(!columns_.empty());
}

void AsciiTable::row(std::vector<std::string> cells) {
  NYQMON_CHECK_MSG(cells.size() == columns_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void AsciiTable::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format_double(v));
  row(std::move(text));
}

std::string AsciiTable::format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size(); ++i)
      widths[i] = std::max(widths[i], r[i].size());

  auto emit = [&](std::ostringstream& os, const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i ? "  " : "") << r[i]
         << std::string(widths[i] - r[i].size(), ' ');
    }
    os << '\n';
  };

  std::ostringstream os;
  emit(os, columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (columns_.size() - 1), '-') << '\n';
  for (const auto& r : rows_) emit(os, r);
  return os.str();
}

std::string ascii_barchart(
    const std::vector<std::pair<std::string, double>>& bars, int width) {
  NYQMON_CHECK(width > 0);
  double maxv = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    maxv = std::max(maxv, v);
    label_w = std::max(label_w, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, v] : bars) {
    const int n = maxv > 0.0
                      ? static_cast<int>(std::lround(v / maxv * width))
                      : 0;
    char num[32];
    std::snprintf(num, sizeof num, "%8.3g", v);
    os << label << std::string(label_w - label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(n), '#')
       << std::string(static_cast<std::size_t>(width - n), ' ') << "| " << num
       << '\n';
  }
  return os.str();
}

std::string ascii_series(const std::vector<double>& values, int width,
                         int height) {
  NYQMON_CHECK(width > 0 && height > 1);
  if (values.empty()) return "(empty series)\n";

  // Downsample (by max-preserving buckets) to `width` columns.
  std::vector<double> cols(static_cast<std::size_t>(width),
                           std::numeric_limits<double>::quiet_NaN());
  const std::size_t n = values.size();
  for (int c = 0; c < width; ++c) {
    const std::size_t lo = static_cast<std::size_t>(c) * n / static_cast<std::size_t>(width);
    std::size_t hi = static_cast<std::size_t>(c + 1) * n / static_cast<std::size_t>(width);
    hi = std::max(hi, lo + 1);
    double m = -std::numeric_limits<double>::infinity();
    for (std::size_t i = lo; i < hi && i < n; ++i) m = std::max(m, values[i]);
    cols[static_cast<std::size_t>(c)] = m;
  }

  double vmin = std::numeric_limits<double>::infinity();
  double vmax = -std::numeric_limits<double>::infinity();
  for (double v : cols) {
    if (std::isfinite(v)) {
      vmin = std::min(vmin, v);
      vmax = std::max(vmax, v);
    }
  }
  if (!std::isfinite(vmin)) return "(no finite values)\n";
  if (vmax == vmin) vmax = vmin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (int c = 0; c < width; ++c) {
    const double v = cols[static_cast<std::size_t>(c)];
    if (!std::isfinite(v)) continue;
    const int r = static_cast<int>(std::lround((v - vmin) / (vmax - vmin) *
                                               (height - 1)));
    grid[static_cast<std::size_t>(height - 1 - r)][static_cast<std::size_t>(c)] = '*';
  }

  std::ostringstream os;
  char buf[48];
  std::snprintf(buf, sizeof buf, "max %.4g\n", vmax);
  os << buf;
  for (const auto& line : grid) os << '|' << line << "|\n";
  std::snprintf(buf, sizeof buf, "min %.4g\n", vmin);
  os << buf;
  return os.str();
}

}  // namespace nyqmon
