// Filters: ideal (spectral) low-pass, windowed-sinc FIR design, convolution,
// moving-average and median smoothing, detrending and Goertzel.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/detrend.h"
#include "dsp/filter.h"
#include "dsp/goertzel.h"
#include "signal/generators.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::dsp::convolve;
using nyqmon::dsp::design_lowpass_fir;
using nyqmon::dsp::filter_same;
using nyqmon::dsp::fit_line;
using nyqmon::dsp::goertzel_power;
using nyqmon::dsp::ideal_lowpass;
using nyqmon::dsp::median_filter;
using nyqmon::dsp::moving_average;
using nyqmon::dsp::remove_linear_trend;
using nyqmon::dsp::remove_mean;
using nyqmon::sig::make_sine;
using nyqmon::sig::make_tones;

TEST(IdealLowpass, PassesInBandToneExactly) {
  const double fs = 1000.0;
  const auto x = make_sine(fs, 1000, 50.0);  // integer cycles in the block
  const auto y = ideal_lowpass(x, fs, 100.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(IdealLowpass, RemovesOutOfBandTone) {
  const double fs = 1000.0;
  std::vector<nyqmon::sig::Tone> tones{{50.0, 1.0, 0.0}, {400.0, 1.0, 0.0}};
  const auto x = make_tones(fs, 1000, tones);
  const auto low = make_sine(fs, 1000, 50.0);
  const auto y = ideal_lowpass(x, fs, 100.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], low[i], 1e-9) << i;
}

TEST(IdealLowpass, ZeroCutoffLeavesOnlyDc) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const auto y = ideal_lowpass(x, 1.0, 0.0);
  for (double v : y) EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(IdealLowpass, CutoffAboveNyquistIsIdentity) {
  Rng rng(1);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.normal(0, 1);
  const auto y = ideal_lowpass(x, 10.0, 100.0);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
}

TEST(FirDesign, UnitDcGain) {
  const auto h = design_lowpass_fir(31, 10.0, 100.0);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FirDesign, SymmetricLinearPhase) {
  const auto h = design_lowpass_fir(51, 5.0, 100.0);
  for (std::size_t i = 0; i < h.size() / 2; ++i)
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
}

TEST(FirDesign, AttenuatesStopband) {
  const double fs = 1000.0;
  const auto h = design_lowpass_fir(101, 50.0, fs);
  const auto pass = make_sine(fs, 2000, 10.0);
  const auto stop = make_sine(fs, 2000, 300.0);
  const auto yp = filter_same(pass, h);
  const auto ys = filter_same(stop, h);
  // Compare RMS in the steady-state middle (away from edge transients).
  auto rms_mid = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (std::size_t i = 200; i + 200 < v.size(); ++i) acc += v[i] * v[i];
    return std::sqrt(acc / static_cast<double>(v.size() - 400));
  };
  EXPECT_GT(rms_mid(yp), 0.6);
  EXPECT_LT(rms_mid(ys), 0.01);
}

TEST(FirDesign, RejectsBadArguments) {
  EXPECT_THROW((void)design_lowpass_fir(30, 10.0, 100.0),
               std::invalid_argument);  // even taps
  EXPECT_THROW((void)design_lowpass_fir(31, 60.0, 100.0),
               std::invalid_argument);  // cutoff above Nyquist
  EXPECT_THROW((void)design_lowpass_fir(31, 0.0, 100.0),
               std::invalid_argument);
}

TEST(Convolve, MatchesHandComputedExample) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> h{1.0, -1.0};
  const auto y = convolve(x, h);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
  EXPECT_DOUBLE_EQ(y[3], -3.0);
}

TEST(Convolve, IdentityKernel) {
  const std::vector<double> x{4.0, 5.0, 6.0};
  const std::vector<double> h{1.0};
  EXPECT_EQ(convolve(x, h), x);
}

TEST(FilterSame, PreservesLengthAndAlignment) {
  const auto x = make_sine(100.0, 500, 2.0);
  const auto h = design_lowpass_fir(31, 20.0, 100.0);
  const auto y = filter_same(x, h);
  ASSERT_EQ(y.size(), x.size());
  // In-band tone passes with ~unit gain and no phase shift in the middle.
  for (std::size_t i = 100; i < 400; ++i) EXPECT_NEAR(y[i], x[i], 0.01);
}

TEST(MovingAverage, FlattensConstant) {
  std::vector<double> x(20, 7.0);
  for (double v : moving_average(x, 5)) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(MovingAverage, WidthOneIsIdentity) {
  const std::vector<double> x{1.0, -2.0, 3.0};
  EXPECT_EQ(moving_average(x, 1), x);
}

TEST(MovingAverage, CentredOnRamp) {
  // On a linear ramp the centred mean equals the sample (away from edges).
  std::vector<double> x(30);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const auto y = moving_average(x, 7);
  for (std::size_t i = 3; i + 3 < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(MedianFilter, RemovesImpulses) {
  std::vector<double> x(50, 1.0);
  x[10] = 100.0;  // impulse
  x[30] = -50.0;
  const auto y = median_filter(x, 5);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(MedianFilter, PreservesStepEdge) {
  std::vector<double> x(40, 0.0);
  for (std::size_t i = 20; i < 40; ++i) x[i] = 10.0;
  const auto y = median_filter(x, 5);
  EXPECT_DOUBLE_EQ(y[10], 0.0);
  EXPECT_DOUBLE_EQ(y[30], 10.0);
  EXPECT_DOUBLE_EQ(y[19], 0.0);
  EXPECT_DOUBLE_EQ(y[20], 10.0);
}

TEST(MedianFilter, EvenWidthThrows) {
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)median_filter(x, 4), std::invalid_argument);
}

TEST(Detrend, RemoveMeanZeroes) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const auto y = remove_mean(x);
  EXPECT_NEAR(y[0] + y[1] + y[2], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
}

TEST(Detrend, FitLineRecoversSlope) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 3.0 + 0.25 * static_cast<double>(i);
  const auto fit = fit_line(x);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 0.25, 1e-12);
}

TEST(Detrend, LinearTrendRemovalLeavesResidual) {
  Rng rng(2);
  std::vector<double> x(200);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 10.0 - 0.5 * static_cast<double>(i) +
           std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 20.0);
  const auto y = remove_linear_trend(x);
  const auto fit = fit_line(y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.0, 0.05);
}

TEST(Detrend, SingleSample) {
  const std::vector<double> x{5.0};
  EXPECT_DOUBLE_EQ(remove_mean(x)[0], 0.0);
  EXPECT_DOUBLE_EQ(remove_linear_trend(x)[0], 0.0);
}

TEST(Goertzel, MatchesPeriodogramForTone) {
  const double fs = 500.0;
  const std::size_t n = 500;
  const auto x = make_sine(fs, n, 25.0, 2.0);
  // Unit-amplitude-normalized power of a 2-amp tone: |X|^2/N^2 = 1.0 at
  // the positive-frequency bin (amplitude a gives (a/2)^2 per side).
  EXPECT_NEAR(goertzel_power(x, fs, 25.0), 1.0, 1e-9);
  EXPECT_NEAR(goertzel_power(x, fs, 100.0), 0.0, 1e-9);
}

TEST(Goertzel, DcBin) {
  const std::vector<double> x(100, 3.0);
  EXPECT_NEAR(goertzel_power(x, 10.0, 0.0), 9.0, 1e-9);
}

TEST(Goertzel, OutOfRangeFrequencyThrows) {
  const std::vector<double> x(16, 1.0);
  EXPECT_THROW((void)goertzel_power(x, 10.0, 6.0), std::invalid_argument);
  EXPECT_THROW((void)goertzel_power(x, 10.0, -1.0), std::invalid_argument);
}

}  // namespace
