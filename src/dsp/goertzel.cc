#include "dsp/goertzel.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace nyqmon::dsp {

double goertzel_power(std::span<const double> x, double sample_rate_hz,
                      double frequency_hz) {
  NYQMON_CHECK(x.size() >= 2);
  NYQMON_CHECK(sample_rate_hz > 0.0);
  NYQMON_CHECK(frequency_hz >= 0.0 && frequency_hz <= sample_rate_hz / 2.0);

  const double n = static_cast<double>(x.size());
  const double omega = 2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
  const double coeff = 2.0 * std::cos(omega);

  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (double v : x) {
    const double s = v + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double power =
      s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
  return power / (n * n);
}

}  // namespace nyqmon::dsp
