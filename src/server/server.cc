#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/selector.h"
#include "storage/segment.h"
#include "util/check.h"

namespace nyqmon::srv {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kIngest: return "INGEST";
    case Verb::kQuery: return "QUERY";
    case Verb::kStats: return "STATS";
    case Verb::kCheckpoint: return "CHECKPOINT";
    case Verb::kMetrics: return "METRICS";
    case Verb::kTrace: return "TRACE";
    case Verb::kHandoff: return "HANDOFF";
    case Verb::kLogs: return "LOGS";
  }
  return "UNKNOWN";
}

#if !defined(NYQMON_OBS_NOOP)
/// Per-verb request latency, dispatch-to-reply-queued. Registered eagerly
/// per verb so every series is present in the exposition from the first
/// frame of any kind.
obs::Histogram* verb_latency_histogram(Verb verb) {
  static obs::Histogram& ingest =
      obs::Registry::instance().histogram("nyqmon_server_ingest_latency_ns");
  static obs::Histogram& query =
      obs::Registry::instance().histogram("nyqmon_server_query_latency_ns");
  static obs::Histogram& stats =
      obs::Registry::instance().histogram("nyqmon_server_stats_latency_ns");
  static obs::Histogram& checkpoint = obs::Registry::instance().histogram(
      "nyqmon_server_checkpoint_latency_ns");
  static obs::Histogram& metrics =
      obs::Registry::instance().histogram("nyqmon_server_metrics_latency_ns");
  static obs::Histogram& trace =
      obs::Registry::instance().histogram("nyqmon_server_trace_latency_ns");
  static obs::Histogram& handoff =
      obs::Registry::instance().histogram("nyqmon_server_handoff_latency_ns");
  static obs::Histogram& logs =
      obs::Registry::instance().histogram("nyqmon_server_logs_latency_ns");
  switch (verb) {
    case Verb::kIngest: return &ingest;
    case Verb::kQuery: return &query;
    case Verb::kStats: return &stats;
    case Verb::kCheckpoint: return &checkpoint;
    case Verb::kMetrics: return &metrics;
    case Verb::kTrace: return &trace;
    case Verb::kHandoff: return &handoff;
    case Verb::kLogs: return &logs;
  }
  return nullptr;  // unknown verbs answer ERR untimed
}
#endif  // NYQMON_OBS_NOOP

}  // namespace

NyqmondServer::NyqmondServer(mon::StripedRetentionStore& store,
                             sto::StorageManager* storage, ServerConfig config)
    : store_(store),
      storage_(storage),
      config_(std::move(config)),
      query_(store, config_.query) {
  NYQMON_CHECK(config_.max_frame_bytes >= 64);
}

NyqmondServer::~NyqmondServer() { stop(); }

void NyqmondServer::start() {
  NYQMON_CHECK_MSG(!running_.load(), "server already started");

#if !defined(NYQMON_OBS_NOOP)
  // Touch the per-verb histograms now: the dispatch path only registers
  // them after a frame completes, which would leave the very first
  // METRICS exposition without the per-verb series.
  verb_latency_histogram(Verb::kMetrics);
#endif

  // Everything before the loop thread spawns can throw; close whatever was
  // opened so a failed (or retried) start never leaks descriptors.
  try {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
        1)
      throw std::runtime_error("bad bind address: " + config_.bind_address);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0)
      throw_errno("bind");
    if (::listen(listen_fd_, static_cast<int>(config_.listen_backlog)) < 0)
      throw_errno("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
        0)
      throw_errno("getsockname");
    port_ = ntohs(addr.sin_port);

    if (::pipe(wake_pipe_) < 0) throw_errno("pipe");
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(listen_fd_);

    const std::size_t n_reactors = std::max<std::size_t>(1, config_.reactors);
    reactors_.reserve(n_reactors);
    for (std::size_t i = 0; i < n_reactors; ++i) {
      auto reactor = std::make_unique<Reactor>();
      reactor->index = i;
      if (::pipe(reactor->wake_pipe) < 0) throw_errno("pipe");
      set_nonblocking(reactor->wake_pipe[0]);
      reactors_.push_back(std::move(reactor));
    }
  } catch (...) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    for (auto& reactor : reactors_) {
      if (reactor->wake_pipe[0] >= 0) ::close(reactor->wake_pipe[0]);
      if (reactor->wake_pipe[1] >= 0) ::close(reactor->wake_pipe[1]);
    }
    reactors_.clear();
    throw;
  }

  stopping_.store(false);
  running_.store(true);
  next_reactor_ = 0;
  quiesce_requested_ = false;
  quiesce_parked_ = 0;
  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->thread = std::thread([this, r] { reactor_loop(*r); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void NyqmondServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Wake the accept thread and every reactor (a parked quiesce barrier
  // also re-checks stopping_ on notify).
  const char byte = 'x';
  [[maybe_unused]] auto n = ::write(wake_pipe_[1], &byte, 1);
  for (auto& reactor : reactors_)
    n = ::write(reactor->wake_pipe[1], &byte, 1);
  quiesce_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& reactor : reactors_)
    if (reactor->thread.joinable()) reactor->thread.join();

  for (auto& reactor : reactors_) {
    // Connections the accept thread dealt but the reactor never adopted.
    for (const int fd : reactor->inbox) ::close(fd);
    reactor->inbox.clear();
    // Drain: a reply the reactor already queued belongs to a fully
    // processed request — give each such connection one bounded blocking
    // flush before closing, so clients aren't cut off mid-read for work
    // the server did.
    for (auto& conn : reactor->conns) {
      if (conn->out_sent >= conn->out.size()) continue;
      const int flags = ::fcntl(conn->fd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(conn->fd, F_SETFL, flags & ~O_NONBLOCK);
      timeval timeout{0, 200000};  // 200 ms cap per connection
      ::setsockopt(conn->fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                   sizeof(timeout));
      while (conn->out_sent < conn->out.size()) {
        const ssize_t sent =
            ::send(conn->fd, conn->out.data() + conn->out_sent,
                   conn->out.size() - conn->out_sent, MSG_NOSIGNAL);
        if (sent <= 0) break;
        conn->out_sent += static_cast<std::size_t>(sent);
      }
    }
    for (auto& conn : reactor->conns) ::close(conn->fd);
    reactor->conns.clear();
    ::close(reactor->wake_pipe[0]);
    ::close(reactor->wake_pipe[1]);
  }
  reactors_.clear();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;

  // Final checkpoint: everything the server ingested is sealed into
  // segments and the WAL swaps fresh, so the directory recovers to exactly
  // the served state. No quiesce needed — every reactor has joined.
  checkpoint_now();
}

void NyqmondServer::accept_loop() {
  obs::set_thread_node(config_.node_name);
  pollfd fds[2];
  while (!stopping_.load()) {
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, 1000) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) continue;  // wake for shutdown
    if (fds[0].revents & POLLIN) accept_clients();
  }
}

void NyqmondServer::adopt_inbox(Reactor& reactor) {
  std::vector<int> fds;
  {
    const std::lock_guard<std::mutex> lock(reactor.inbox_mu);
    fds.swap(reactor.inbox);
  }
  for (const int fd : fds) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    reactor.conns.push_back(std::move(conn));
  }
}

void NyqmondServer::park_for_quiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  if (!quiesce_requested_) return;
  ++quiesce_parked_;
  quiesce_cv_.notify_all();
  quiesce_cv_.wait(lock, [this] {
    return !quiesce_requested_ || stopping_.load();
  });
  --quiesce_parked_;
  quiesce_cv_.notify_all();
}

sto::FlushStats NyqmondServer::run_quiesced(
    const std::function<sto::FlushStats()>& fn) {
  // Must run on a reactor thread: the barrier below waits for every
  // *other* reactor to park, counting this thread as already parked.
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  while (quiesce_requested_) {
    // Another reactor is already quiescing: park like any reactor so its
    // barrier completes, then take our turn.
    ++quiesce_parked_;
    quiesce_cv_.notify_all();
    quiesce_cv_.wait(lock, [this] {
      return !quiesce_requested_ || stopping_.load();
    });
    --quiesce_parked_;
    quiesce_cv_.notify_all();
    if (stopping_.load()) {
      sto::FlushStats bail;
      bail.skipped = true;
      return bail;
    }
  }
  quiesce_requested_ = true;
  // Wake every reactor out of poll(2) so each reaches its loop-top park.
  const char byte = 'q';
  for (auto& reactor : reactors_)
    [[maybe_unused]] const auto n = ::write(reactor->wake_pipe[1], &byte, 1);
  quiesce_cv_.wait(lock, [this] {
    return quiesce_parked_ >= reactors_.size() - 1 || stopping_.load();
  });
  NYQMON_OBS_COUNT("nyqmon_reactor_quiesce_total", 1);
  NYQMON_OBS_RECORD(
      "nyqmon_reactor_quiesce_wait_ns",
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
  sto::FlushStats out;
  try {
    // Every other reactor is parked between dispatches: no server-side
    // INGEST can land between the flush's store snapshot and WAL swap.
    out = fn();
  } catch (...) {
    quiesce_requested_ = false;
    quiesce_cv_.notify_all();
    throw;
  }
  quiesce_requested_ = false;
  quiesce_cv_.notify_all();
  return out;
}

sto::FlushStats NyqmondServer::checkpoint_now() {
  if (config_.checkpoint_fn) return config_.checkpoint_fn();
  if (storage_ != nullptr) {
    storage_->sync();
    return storage_->flush(store_);
  }
  sto::FlushStats skipped;
  skipped.skipped = true;
  return skipped;
}

void NyqmondServer::reactor_loop(Reactor& reactor) {
  // Every span and log record produced on this thread (dispatch, engine
  // fan-out entry, checkpoint) carries the node's fleet identity, which is
  // what lets a stitched fleet timeline attribute spans to nodes.
  obs::set_thread_node(config_.node_name);
  std::vector<pollfd> fds;
  auto& conns_ = reactor.conns;
  while (!stopping_.load()) {
    // Quiesce barrier: between dispatch rounds only, so a CHECKPOINT on
    // another reactor never interleaves with a half-applied frame here.
    park_for_quiesce();
    adopt_inbox(reactor);
    fds.clear();
    fds.push_back({reactor.wake_pipe[0], POLLIN, 0});
    std::size_t reply_backlog = 0;
    std::size_t reply_frames = 0;
    bool any_stalled = false;
    for (const auto& conn : conns_) {
      const std::size_t backlog = conn->out.size() - conn->out_sent;
      reply_backlog += backlog;
      reply_frames += conn->out_frames;
      any_stalled |= conn->stalled;
      short events = 0;
      // Backpressure: stop reading once a connection is closing or its
      // reply queue is at its bound — a client that pipelines requests
      // without draining replies must not grow server memory without bound.
      if (!conn->close_after_flush && !reply_queue_full(*conn))
        events |= POLLIN;
      if (backlog > 0) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    // Undelivered reply bytes/frames across all connections: a sustained
    // non-zero value means clients aren't draining as fast as the reactors
    // serve. Each reactor publishes its share, then one thread sums.
    reactor.reply_backlog.store(reply_backlog, std::memory_order_relaxed);
    reactor.reply_frames.store(reply_frames, std::memory_order_relaxed);
#if !defined(NYQMON_OBS_NOOP)
    {
      std::size_t total_backlog = 0;
      std::size_t total_frames = 0;
      for (const auto& r : reactors_) {
        total_backlog += r->reply_backlog.load(std::memory_order_relaxed);
        total_frames += r->reply_frames.load(std::memory_order_relaxed);
      }
      NYQMON_OBS_GAUGE_SET("nyqmon_server_reply_queue_bytes", total_backlog);
      NYQMON_OBS_GAUGE_SET("nyqmon_server_reply_queue_frames_depth",
                           total_frames);
    }
#endif

    // A stalled connection makes no socket events until the client drains,
    // so its drop deadline must be enforced on a timeout tick.
    int poll_timeout_ms = 1000;
    if (any_stalled && config_.slow_client_timeout_ms > 0)
      poll_timeout_ms =
          std::min(poll_timeout_ms,
                   static_cast<int>(config_.slow_client_timeout_ms));
    if (::poll(fds.data(), fds.size(), poll_timeout_ms) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      // Drain the wake pipe (quiesce requests, new-connection deals,
      // shutdown) and restart the round: the loop top parks or adopts.
      NYQMON_OBS_COUNT("nyqmon_reactor_wakeups_total", 1);
      std::uint8_t drain[64];
      while (::read(reactor.wake_pipe[0], drain, sizeof(drain)) > 0) {
      }
      continue;
    }

    // Scan only the connections that were actually polled this round —
    // adoption above appends to conns, and fresh connections have no
    // pollfd entry (they are served from the next round on).
    const std::size_t polled = fds.size() - 1;

    // Serve clients; reap the dead ones after the scan.
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = *conns_[i];
      const short revents = fds[i + 1].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
      if (alive && (revents & POLLIN)) alive = read_client(conn);
      if (alive && conn.out_sent < conn.out.size()) alive = write_client(conn);
      // Requests buffered past an earlier backpressure break generate no
      // further socket events — re-dispatch them as the reply queue
      // drains. Each pass consumes at least one whole frame; a pass that
      // consumes nothing (partial frame, or the queue refilled) is done.
      while (alive && !conn.in.empty() && !reply_queue_full(conn)) {
        const std::size_t before = conn.in.size();
        alive = drain_frames(conn);
        if (conn.in.size() == before) break;
      }
      if (alive && conn.close_after_flush && conn.out_sent == conn.out.size())
        alive = false;
      // Slow-client tracking: a connection whose bounded reply queue is
      // still full after this round's send attempt is stalled; one that
      // stays stalled past the timeout is dropped (its replies are the
      // only thing pinning server memory).
      if (alive && reply_queue_full(conn)) {
        if (!conn.stalled) {
          conn.stalled = true;
          conn.stall_since = now;
          backpressure_stalls_.fetch_add(1);
          NYQMON_OBS_COUNT("nyqmon_server_backpressure_stalls_total", 1);
        } else if (config_.slow_client_timeout_ms > 0 &&
                   now - conn.stall_since >= std::chrono::milliseconds(
                                                 config_.slow_client_timeout_ms)) {
          slow_clients_dropped_.fetch_add(1);
          NYQMON_OBS_COUNT("nyqmon_server_slow_clients_dropped_total", 1);
          NYQMON_LOG_WARN(
              "server.slow_client_dropped",
              "fd=" + std::to_string(conn.fd) + " stalled_ms=" +
                  std::to_string(std::chrono::duration_cast<
                                     std::chrono::milliseconds>(
                                     now - conn.stall_since)
                                     .count()) +
                  " queued_bytes=" +
                  std::to_string(conn.out.size() - conn.out_sent));
          alive = false;
        }
      } else {
        conn.stalled = false;
      }
      if (!alive) dead.push_back(i);
    }
    for (std::size_t k = dead.size(); k-- > 0;) {
      ::close(conns_[dead[k]]->fd);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(dead[k]));
      connections_closed_.fetch_add(1);
    }
  }
}

void NyqmondServer::accept_clients() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      // EMFILE/ENFILE etc. leave the pending connection queued and the
      // level-triggered POLLIN hot — back off briefly instead of spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Deal to the next reactor round-robin; the reactor adopts the fd at
    // its next loop top and owns it exclusively from then on.
    Reactor& reactor = *reactors_[next_reactor_];
    next_reactor_ = (next_reactor_ + 1) % reactors_.size();
    {
      const std::lock_guard<std::mutex> lock(reactor.inbox_mu);
      reactor.inbox.push_back(fd);
    }
    const char byte = 'c';
    [[maybe_unused]] const auto n = ::write(reactor.wake_pipe[1], &byte, 1);
    connections_accepted_.fetch_add(1);
    NYQMON_OBS_COUNT("nyqmon_reactor_clients_assigned_total", 1);
  }
}

bool NyqmondServer::read_client(Connection& conn) {
  std::uint8_t buf[16384];
  while (true) {
    // Backpressure inside the read burst too: once this client's reply
    // queue hits its bound, stop pulling bytes (the kernel buffer and the
    // peer's send window hold the rest until the client drains replies).
    if (reply_queue_full(conn)) break;
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), buf, buf + n);
      if (conn.in.size() > config_.max_frame_bytes + 5) {
        // Drain complete frames first — a burst of legally pipelined
        // frames may exceed one frame's cap; only an *undrainable* buffer
        // this large means a single over-cap frame.
        if (!drain_frames(conn)) return false;
        if (conn.in.size() > config_.max_frame_bytes + 5) {
          protocol_errors_.fetch_add(1);
          NYQMON_OBS_COUNT("nyqmon_server_protocol_errors_total", 1);
          NYQMON_LOG_ERROR("server.protocol_error",
                           "reason=frame_overflow buffered=" +
                               std::to_string(conn.in.size()));
          return false;
        }
      }
      continue;
    }
    if (n == 0) return false;  // orderly disconnect (possibly mid-frame)
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return drain_frames(conn);
}

bool NyqmondServer::write_client(Connection& conn) {
  while (conn.out_sent < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_sent,
                             conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // client went away mid-reply
  }
  if (conn.out_sent == conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
    conn.out_frames = 0;
  }
  return true;
}

bool NyqmondServer::drain_frames(Connection& conn) {
  // Past a corrupt length prefix the byte stream has no trustworthy frame
  // boundaries — never parse again on this connection, just flush the ERR.
  if (conn.close_after_flush) return write_client(conn);
  std::size_t consumed = 0;
  while (conn.in.size() - consumed >= 4) {
    // Stop dispatching once the reply queue hits its bound; the remaining
    // input stays buffered and POLLIN stays suppressed until the client
    // reads its replies. Bounds conn.out at the byte bound + one reply.
    if (reply_queue_full(conn)) break;
    sto::ByteReader prefix(
        std::span<const std::uint8_t>(conn.in).subspan(consumed, 4));
    const std::uint32_t body_len = prefix.get_u32();
    if (body_len == 0 || body_len > config_.max_frame_bytes) {
      // Unsynchronizable: answer and close once the error is flushed.
      protocol_errors_.fetch_add(1);
      NYQMON_OBS_COUNT("nyqmon_server_protocol_errors_total", 1);
      NYQMON_LOG_ERROR("server.protocol_error",
                       "reason=bad_frame_length body_len=" +
                           std::to_string(body_len));
      const auto err = error_frame("bad frame length");
      conn.out.insert(conn.out.end(), err.begin(), err.end());
      conn.close_after_flush = true;
      conn.in.clear();
      consumed = 0;
      break;
    }
    if (conn.in.size() - consumed < 4u + body_len) break;  // partial frame
    dispatch(conn, std::span<const std::uint8_t>(conn.in)
                       .subspan(consumed + 4, body_len));
    consumed += 4u + body_len;
  }
  if (consumed > 0)
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(consumed));
  // Opportunistic flush; POLLOUT picks up whatever the socket won't take.
  return write_client(conn);
}

void NyqmondServer::dispatch(Connection& conn,
                             std::span<const std::uint8_t> body) {
  frames_.fetch_add(1);
  NYQMON_OBS_COUNT("nyqmon_server_frames_total", 1);
  // Distributed tracing: peel the optional TraceContext trailer off the
  // body *before* any decoding (payload decoders enforce exact-remaining),
  // then adopt it for the handler's duration so the verb span — and every
  // span nested under it — joins the remote caller's trace. A request with
  // no context originates a fresh trace when capture is armed, so even a
  // direct `nyqmon_ctl` query gets one coherent trace_id.
  TraceContext trace_ctx = strip_trace_context(body);
  if (!trace_ctx.active() && obs::TraceRecorder::instance().enabled())
    trace_ctx.trace_id = obs::next_span_id();
  obs::ScopedThreadTraceContext adopt(trace_ctx.trace_id,
                                      trace_ctx.parent_span_id);
  sto::ByteReader reader(body);
  const auto verb = static_cast<Verb>(reader.get_u8());
  NYQMON_TRACE_SPAN(verb_name(verb), "server");
  [[maybe_unused]] const auto t_dispatch = std::chrono::steady_clock::now();

  std::vector<std::uint8_t> reply;
  bool intercepted = false;
  try {
    if (config_.intercept) {
      if (auto hooked = config_.intercept(verb, reader)) {
        reply = std::move(*hooked);
        intercepted = true;
      }
    }
    if (!intercepted) switch (verb) {
      case Verb::kIngest:
        ingest_frames_.fetch_add(1);
        reply = handle_ingest(reader);
        break;
      case Verb::kQuery:
        query_frames_.fetch_add(1);
        reply = handle_query(reader);
        break;
      case Verb::kStats:
        stats_frames_.fetch_add(1);
        reply = handle_stats();
        break;
      case Verb::kCheckpoint:
        checkpoint_frames_.fetch_add(1);
        reply = handle_checkpoint();
        break;
      case Verb::kMetrics:
        metrics_frames_.fetch_add(1);
        reply = handle_metrics();
        break;
      case Verb::kTrace:
        trace_frames_.fetch_add(1);
        reply = handle_trace();
        break;
      case Verb::kHandoff:
        handoff_frames_.fetch_add(1);
        reply = handle_handoff(reader);
        break;
      case Verb::kLogs:
        logs_frames_.fetch_add(1);
        reply = handle_logs();
        break;
      default:
        protocol_errors_.fetch_add(1);
        NYQMON_OBS_COUNT("nyqmon_server_protocol_errors_total", 1);
        NYQMON_LOG_ERROR("server.protocol_error",
                         "reason=unknown_verb verb=" +
                             std::to_string(static_cast<unsigned>(verb)));
        reply = error_frame("unknown verb");
        break;
    }
  } catch (const std::exception& e) {
    protocol_errors_.fetch_add(1);
    NYQMON_OBS_COUNT("nyqmon_server_protocol_errors_total", 1);
    NYQMON_LOG_ERROR("server.dispatch_error",
                     std::string("verb=") + verb_name(verb) +
                         " what=" + e.what());
    reply = error_frame(e.what());
  }
#if !defined(NYQMON_OBS_NOOP)
  if (obs::Histogram* h = verb_latency_histogram(verb))
    h->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t_dispatch)
            .count()));
#endif
  conn.out.insert(conn.out.end(), reply.begin(), reply.end());
  ++conn.out_frames;
}

std::vector<std::uint8_t> NyqmondServer::handle_ingest(
    sto::ByteReader& reader) {
  const auto req = decode_ingest(reader);
  if (!req.has_value()) return error_frame("malformed INGEST payload");
  if (!store_.find_meta(req->stream).has_value()) {
    if (!(req->rate_hz > 0.0))
      return error_frame("stream creation needs rate_hz > 0");
    store_.create_stream(req->stream, req->rate_hz, req->t0);
  }
  store_.append_series(req->stream, req->values);
  samples_ingested_.fetch_add(req->values.size());
  std::vector<std::uint8_t> payload;
  sto::put_u64(payload, store_.meta(req->stream).ingested_samples);
  return ok_frame(payload);
}

std::vector<std::uint8_t> NyqmondServer::handle_query(sto::ByteReader& reader) {
  std::uint8_t flags = 0;
  const auto spec = decode_query(reader, flags);
  if (!spec.has_value()) return error_frame("malformed QUERY payload");
  spec->validate();  // throws -> ERR via dispatch
  const qry::QueryResponse response = query_.run(*spec);
  QueryExplainBlock explain;
  if ((flags & kQueryWantExplain) != 0) {
    explain.total_ns = response.total_ns;
    explain.stages.reserve(response.stages.size());
    for (const qry::QueryStageTiming& st : response.stages)
      explain.stages.push_back({st.stage, st.ns});
  }
  auto payload = encode_query_reply(
      *response.result, response.cache_hit, (flags & kQueryWantMatched) != 0,
      (flags & kQueryWantExplain) != 0 ? &explain : nullptr);
  // A reply must fit one frame: clients reject bodies over their cap, and
  // past 4 GiB the u32 length prefix would wrap. Refuse rather than emit
  // an undeliverable frame.
  if (payload.size() >= config_.max_frame_bytes)
    return error_frame(
        "query result exceeds the frame cap; narrow the selector/range or "
        "coarsen step_s");
  return ok_frame(payload);
}

std::vector<std::uint8_t> NyqmondServer::handle_stats() {
  const mon::StoreRollup rollup = store_.rollup();
  const qry::QueryEngineStats q = query_.stats();
  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"streams\":%zu,\"ingested_samples\":%zu,\"stored_samples\":%zu,"
      "\"bytes_raw\":%llu,\"bytes_stored\":%llu,"
      "\"queries\":%llu,\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"frames\":%llu,\"ingest_frames\":%llu,\"query_frames\":%llu,"
      "\"protocol_errors\":%llu,\"samples_ingested\":%llu,"
      "\"connections_accepted\":%llu}",
      rollup.streams, rollup.ingested_samples, rollup.stored_samples,
      static_cast<unsigned long long>(rollup.bytes_raw),
      static_cast<unsigned long long>(rollup.bytes_stored),
      static_cast<unsigned long long>(q.queries),
      static_cast<unsigned long long>(q.cache.hits),
      static_cast<unsigned long long>(q.cache.misses),
      static_cast<unsigned long long>(frames_.load()),
      static_cast<unsigned long long>(ingest_frames_.load()),
      static_cast<unsigned long long>(query_frames_.load()),
      static_cast<unsigned long long>(protocol_errors_.load()),
      static_cast<unsigned long long>(samples_ingested_.load()),
      static_cast<unsigned long long>(connections_accepted_.load()));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(json);
  return ok_frame(std::span<const std::uint8_t>(bytes, std::strlen(json)));
}

std::vector<std::uint8_t> NyqmondServer::handle_checkpoint() {
  CheckpointReply reply;
  if (config_.checkpoint_fn || storage_ != nullptr) {
    // Reactor-aware quiesce: park every other reactor before the flush so
    // no server-side INGEST lands between the store snapshot and the WAL
    // swap (the checkpoint delegate only quiesces *its own* writers, e.g.
    // the StreamingRuntime scheduler).
    const sto::FlushStats flush =
        run_quiesced([this] { return checkpoint_now(); });
    reply.persisted = config_.checkpoint_fn ? !flush.skipped : true;
    reply.chunks = flush.chunks;
    reply.bytes_written = flush.bytes_written;
  }
  return ok_frame(encode_checkpoint_reply(reply));
}

std::vector<std::uint8_t> NyqmondServer::handle_metrics() {
  const std::string text = obs::Registry::instance().render_prometheus();
  if (text.size() >= config_.max_frame_bytes)
    return error_frame("metrics exposition exceeds the frame cap");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(text.data());
  return ok_frame(std::span<const std::uint8_t>(bytes, text.size()));
}

std::vector<std::uint8_t> NyqmondServer::handle_trace() {
  // Draining consumes the buffered events: two TRACE frames in a row
  // return disjoint windows of activity.
  const std::string json = obs::TraceRecorder::instance().export_chrome_json();
  if (json.size() >= config_.max_frame_bytes)
    return error_frame("trace export exceeds the frame cap");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(json.data());
  return ok_frame(std::span<const std::uint8_t>(bytes, json.size()));
}

std::vector<std::uint8_t> NyqmondServer::handle_logs() {
  // Consuming drain, like TRACE: two LOGS frames in a row return disjoint
  // batches of records.
  const std::string text = obs::LogRecorder::instance().export_text();
  if (text.size() >= config_.max_frame_bytes)
    return error_frame("log export exceeds the frame cap");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(text.data());
  return ok_frame(std::span<const std::uint8_t>(bytes, text.size()));
}

std::vector<std::uint8_t> NyqmondServer::handle_handoff(
    sto::ByteReader& reader) {
  const auto direction = static_cast<HandoffDirection>(reader.get_u8());
  if (!reader.ok()) return error_frame("malformed HANDOFF payload");

  if (direction == HandoffDirection::kExport) {
    const std::string selector = reader.get_string();
    if (!reader.ok() || reader.remaining() != 0 || selector.empty())
      return error_frame("malformed HANDOFF payload");
    std::vector<std::string> names;
    if (qry::is_exact(selector)) {
      if (store_.find_meta(selector).has_value()) names.push_back(selector);
    } else {
      for (auto& name : store_.stream_names())
        if (qry::match_glob(selector, name)) names.push_back(std::move(name));
    }
    // Non-destructive: the exporter keeps serving its copy until the
    // operator retires it; mid-handoff duplicates are deduped at query
    // merge time (query/merge.h). One snapshot acquisition covers every
    // matched stream — the segment encoding below runs lock-free against
    // the epoch-stamped view instead of re-locking per stream.
    const mon::ReadSnapshot snap = store_.acquire_snapshot(names);
    sto::SegmentWriter writer;
    for (const std::string& name : names)
      writer.add_stream(snap.export_stream(name));
    HandoffExportReply reply;
    reply.streams = static_cast<std::uint32_t>(writer.stats().streams);
    reply.samples = writer.stats().samples;
    if (4 + 8 + writer.bytes().size() + 1 >= config_.max_frame_bytes)
      return error_frame(
          "handoff export exceeds the frame cap; narrow the selector");
    reply.segment = writer.bytes();
    return ok_frame(encode_handoff_export_reply(reply));
  }

  if (direction == HandoffDirection::kImport) {
    const auto segment = reader.get_bytes(reader.remaining());
    std::map<std::string, mon::StreamSnapshot> streams;
    sto::read_segment_bytes(segment, streams);  // throws -> ERR via dispatch
    // Refuse before restoring anything: an import must not silently merge
    // into streams this node already owns (that would double-count on a
    // repeated handoff). The detail block names every conflict.
    std::vector<ErrorDetail> conflicts;
    for (const auto& [name, snap] : streams)
      if (store_.find_meta(name).has_value())
        conflicts.push_back({name, "stream already exists"});
    if (!conflicts.empty())
      return error_frame_with_detail("handoff import refused", conflicts);
    HandoffImportReply reply;
    for (auto& [name, snap] : streams) {
      for (const auto& chunk : snap.chunks) reply.samples += chunk.values.size();
      reply.samples += snap.hot.size();
      store_.restore_stream(std::move(snap));
      ++reply.streams;
    }
    // restore_stream bypasses the ingest sink (it is the recovery path and
    // must not re-log), so durability comes from checkpointing through the
    // manifest's atomic commit before OK is answered: after this, a crash
    // recovers the imported streams. Quiesced like CHECKPOINT — other
    // reactors' INGEST must not race the flush.
    if (config_.checkpoint_fn || storage_ != nullptr) {
      const sto::FlushStats flush =
          run_quiesced([this] { return checkpoint_now(); });
      reply.persisted = config_.checkpoint_fn ? !flush.skipped : true;
    }
    return ok_frame(encode_handoff_import_reply(reply));
  }

  return error_frame("unknown HANDOFF direction");
}

ServerStats NyqmondServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_closed = connections_closed_.load();
  s.frames = frames_.load();
  s.ingest_frames = ingest_frames_.load();
  s.query_frames = query_frames_.load();
  s.stats_frames = stats_frames_.load();
  s.checkpoint_frames = checkpoint_frames_.load();
  s.metrics_frames = metrics_frames_.load();
  s.trace_frames = trace_frames_.load();
  s.handoff_frames = handoff_frames_.load();
  s.logs_frames = logs_frames_.load();
  s.protocol_errors = protocol_errors_.load();
  s.samples_ingested = samples_ingested_.load();
  s.backpressure_stalls = backpressure_stalls_.load();
  s.slow_clients_dropped = slow_clients_dropped_.load();
  return s;
}

}  // namespace nyqmon::srv
