// Durable-tier throughput: WAL-logged ingest, flush (codec encode + fsync),
// and cold recovery, over a synthetic metric mix, plus the end-to-end
// compression ratio (Nyquist re-sampling x Gorilla-XOR value codec).
//
// Usage: bench_storage_throughput [streams] [samples_per_stream]
//        (defaults: 256 streams, 8192 samples each)
//
// The stream mix cycles four shapes with very different compressibility:
// a smooth oversampled sine, a quantized gauge, a bursty counter, and a
// near-constant health flag. Emits one BENCH_storage_throughput.json line
// (flush/recover MB/s measured against the raw f64 bytes represented).
// Exits non-zero if a recovered stream fails the bit-identity spot check.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common.h"
#include "monitor/store.h"
#include "storage/manager.h"
#include "util/rng.h"

using namespace nyqmon;
namespace fs = std::filesystem;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<double> make_stream_values(std::size_t shape, std::size_t n,
                                       Rng& rng) {
  std::vector<double> v(n);
  switch (shape % 4) {
    case 0:  // smooth oversampled sine + slow drift
      for (std::size_t i = 0; i < n; ++i)
        v[i] = 40.0 + 5.0 * std::sin(2.0 * M_PI * 0.002 * double(i)) +
               1e-4 * double(i);
      break;
    case 1:  // quantized gauge (finite resolution)
      for (std::size_t i = 0; i < n; ++i)
        v[i] = std::round(8.0 * (50.0 +
                                 20.0 * std::sin(2.0 * M_PI * 0.01 * double(i)) +
                                 rng.uniform(-1.0, 1.0))) /
               8.0;
      break;
    case 2:  // bursty counter: mostly zero, occasional spikes
      for (std::size_t i = 0; i < n; ++i)
        v[i] = rng.uniform(0.0, 1.0) < 0.02 ? rng.uniform(10.0, 500.0) : 0.0;
      break;
    default:  // near-constant health flag
      for (std::size_t i = 0; i < n; ++i)
        v[i] = rng.uniform(0.0, 1.0) < 0.001 ? 0.0 : 1.0;
      break;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t streams =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 256;
  const std::size_t samples =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
               : 8192;
  if (streams == 0 || samples == 0) {
    std::fprintf(stderr, "usage: %s [streams] [samples_per_stream]\n",
                 argv[0]);
    return 2;
  }

  const std::string dir =
      (fs::temp_directory_path() / "nyqmon_bench_storage").string();
  fs::remove_all(dir);

  mon::StoreConfig store_cfg;
  store_cfg.chunk_samples = 256;

  sto::StorageConfig storage_cfg;
  storage_cfg.dir = dir;
  storage_cfg.truncate_existing = true;
  storage_cfg.wal_sync_interval_batches = 64;

  const double raw_mb =
      8.0 * double(streams) * double(samples) / 1.0e6;
  std::printf("storage throughput: %zu streams x %zu samples (%.1f MB raw)\n",
              streams, samples, raw_mb);

  // ------------------------------------------------------- ingest + WAL --
  sto::StorageManager manager(storage_cfg);
  mon::RetentionStore store(store_cfg);
  store.set_ingest_sink(&manager);
  Rng rng(bench::kFleetSeed);
  const double t_ingest = now_s();
  constexpr std::size_t kBatch = 512;
  for (std::size_t s = 0; s < streams; ++s) {
    char name[64];
    std::snprintf(name, sizeof(name), "dev%03zu/metric%zu", s, s % 4);
    store.create_stream(name, 1.0);
    const auto values = make_stream_values(s, samples, rng);
    for (std::size_t off = 0; off < values.size(); off += kBatch) {
      const std::size_t len = std::min(kBatch, values.size() - off);
      store.append_series(
          name, std::span<const double>(values.data() + off, len));
    }
  }
  manager.sync();
  const double ingest_s = now_s() - t_ingest;

  // --------------------------------------------------------------- flush --
  const sto::FlushStats flushed = manager.flush(store);
  const auto rollup = store.rollup();
  const auto disk = manager.stats();
  // Rate everything against the same denominator (raw f64 bytes the flush
  // represents — this single flush covers the whole run) so the three
  // headline MB/s figures are comparable.
  const double flush_mb_s =
      double(rollup.bytes_raw) / 1.0e6 / flushed.seconds;
  std::printf(
      "ingest+WAL: %.2fs (%.1f MB/s raw) | flush: %.3fs (%.1f MB/s raw) -> "
      "%.2f MB segment\n",
      ingest_s, raw_mb / ingest_s, flushed.seconds, flush_mb_s,
      double(flushed.bytes_written) / 1.0e6);
  std::printf(
      "compression: %.1f MB raw -> %.2f MB stored (%.2fx end-to-end: "
      "%.2fx Nyquist x codec)\n",
      double(rollup.bytes_raw) / 1.0e6, double(rollup.bytes_stored) / 1.0e6,
      rollup.compression_ratio(), rollup.sealed_reduction());

  // ------------------------------------------------------------- recover --
  sto::StorageConfig read_cfg;
  read_cfg.dir = dir;
  sto::StorageManager reopened(read_cfg);
  mon::RetentionStore cold(store_cfg);
  const sto::RecoveryStats rec = reopened.recover(cold);
  const double recover_mb_s = double(rollup.bytes_raw) / 1.0e6 / rec.seconds;
  std::printf("recover: %.3fs (%.1f MB/s raw), %zu chunks, %zu streams\n",
              rec.seconds, recover_mb_s, rec.chunks, rec.streams);

  // Bit-identity spot check: a recovered stream must answer exactly like
  // the live one.
  const auto meta = store.meta("dev000/metric0");
  const auto live_q = store.query("dev000/metric0", meta.t0, meta.t_end);
  const auto cold_q = cold.query("dev000/metric0", meta.t0, meta.t_end);
  if (live_q.size() != cold_q.size() ||
      std::memcmp(live_q.values().data(), cold_q.values().data(),
                  8 * live_q.size()) != 0) {
    std::fprintf(stderr, "FAIL: recovered reconstruction differs\n");
    return 1;
  }

  std::string json = "{\"bench\":\"storage_throughput\"";
  bench::json_append(json, "\"streams\":%zu", streams);
  bench::json_append(json, "\"samples_per_stream\":%zu", samples);
  bench::json_append(json, "\"raw_mb\":%.2f", raw_mb);
  bench::json_append(json, "\"ingest_wal_mb_s\":%.2f", raw_mb / ingest_s);
  bench::json_append(json, "\"flush_mb_s\":%.2f", flush_mb_s);
  bench::json_append(json, "\"recover_mb_s\":%.2f", recover_mb_s);
  bench::json_append(json, "\"segment_mb\":%.3f",
                     double(disk.segment_bytes) / 1.0e6);
  bench::json_append(json, "\"compression_ratio\":%.3f",
                     rollup.compression_ratio());
  bench::json_append(json, "\"nyquist_reduction\":%.3f",
                     rollup.sealed_reduction());
  bench::json_append(json, "\"wal_records\":%llu",
                     static_cast<unsigned long long>(disk.wal_records));
  json += "}";
  bench::write_json_line("storage_throughput", json);

  fs::remove_all(dir);
  return 0;
}
