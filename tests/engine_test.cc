// FleetMonitorEngine: shard partitioning, the striped store's thread
// safety, end-to-end fleet runs, and the determinism contract (identical
// fleet aggregates whatever the worker count).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <thread>

#include "dsp/simd.h"
#include "engine/engine.h"
#include "engine/report.h"
#include "engine/shard.h"
#include "monitor/striped_store.h"
#include "telemetry/fleet.h"

namespace {

using namespace nyqmon;

// --------------------------------------------------------------- shards --

TEST(Shard, EveryPairAssignedExactlyOnce) {
  for (const std::size_t n_pairs : {0u, 1u, 7u, 64u, 1613u}) {
    for (const std::size_t n_shards : {1u, 3u, 16u, 2000u}) {
      const auto shards = eng::partition_shards(n_pairs, n_shards);
      std::set<std::size_t> seen;
      std::size_t total = 0;
      for (const auto& shard : shards) {
        for (const std::size_t i : shard.pair_indices) {
          EXPECT_LT(i, n_pairs);
          seen.insert(i);
          ++total;
        }
      }
      EXPECT_EQ(total, n_pairs) << n_pairs << " pairs / " << n_shards;
      EXPECT_EQ(seen.size(), n_pairs);
    }
  }
}

TEST(Shard, BalancedWithinOne) {
  const auto shards = eng::partition_shards(100, 8);
  ASSERT_EQ(shards.size(), 8u);
  std::size_t lo = 100, hi = 0;
  for (const auto& s : shards) {
    lo = std::min(lo, s.pair_indices.size());
    hi = std::max(hi, s.pair_indices.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Shard, ClampsShardCount) {
  EXPECT_EQ(eng::partition_shards(3, 100).size(), 3u);
  EXPECT_EQ(eng::partition_shards(10, 0).size(), 1u);
  EXPECT_EQ(eng::partition_shards(0, 4).size(), 1u);
}

// -------------------------------------------------------- striped store --

TEST(StripedStore, ConcurrentIngestMatchesSerial) {
  const std::size_t kStreams = 32;
  const std::size_t kSamples = 300;

  auto ingest = [&](mon::StripedRetentionStore& store, bool concurrent) {
    for (std::size_t s = 0; s < kStreams; ++s)
      store.create_stream("stream" + std::to_string(s), 1.0);
    auto fill = [&store](std::size_t s) {
      std::vector<double> values(kSamples);
      for (std::size_t i = 0; i < kSamples; ++i)
        values[i] = std::sin(0.01 * static_cast<double>(i * (s + 1)));
      store.append_series("stream" + std::to_string(s), values);
    };
    if (concurrent) {
      std::vector<std::thread> pool;
      for (std::size_t s = 0; s < kStreams; ++s) pool.emplace_back(fill, s);
      for (auto& t : pool) t.join();
    } else {
      for (std::size_t s = 0; s < kStreams; ++s) fill(s);
    }
  };

  mon::StoreConfig cfg;
  cfg.chunk_samples = 64;
  mon::StripedRetentionStore serial(cfg, 4);
  mon::StripedRetentionStore parallel(cfg, 4);
  ingest(serial, false);
  ingest(parallel, true);

  const auto a = serial.rollup();
  const auto b = parallel.rollup();
  EXPECT_EQ(a.streams, kStreams);
  EXPECT_EQ(a.ingested_samples, b.ingested_samples);
  EXPECT_EQ(a.stored_samples, b.stored_samples);
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.chunks_reduced, b.chunks_reduced);
  for (std::size_t s = 0; s < kStreams; ++s) {
    const std::string name = "stream" + std::to_string(s);
    const auto qa = serial.query(name, 0.0, 100.0);
    const auto qb = parallel.query(name, 0.0, 100.0);
    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_EQ(qa[i], qb[i]);
  }
  EXPECT_EQ(serial.stream_names(), parallel.stream_names());
}

TEST(StripedStore, DelegatesStreamApi) {
  mon::StripedRetentionStore store({}, 8);
  store.create_stream("a", 1.0);
  EXPECT_THROW(store.create_stream("a", 1.0), std::invalid_argument);
  EXPECT_THROW(store.append("missing", 1.0), std::invalid_argument);
  for (int i = 0; i < 10; ++i) store.append("a", 3.0);
  EXPECT_EQ(store.stats("a").ingested_samples, 10u);
  EXPECT_EQ(store.streams(), 1u);
  const auto series = store.query("a", 0.0, 10.0);
  EXPECT_EQ(series.size(), 10u);
  EXPECT_NEAR(series[0], 3.0, 1e-12);
}

// ---------------------------------------------------------------- engine --

// Bit-exact double comparison (NaN-safe: NRMSE can legitimately be inf/nan
// for flat bursty traces, and nan == nan is false).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(Engine, FivehundredPairsDeterministicAcrossWorkerCounts) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 500;
  fleet_cfg.seed = 99;
  const tel::Fleet fleet(fleet_cfg);
  ASSERT_GE(fleet.size(), 500u);

  auto run_with = [&fleet](std::size_t workers) {
    eng::EngineConfig cfg;
    cfg.workers = workers;
    // Trim per-pair work: determinism is about scheduling, not trace length.
    cfg.samples_per_window = 48;
    cfg.windows_per_pair = 4;
    eng::FleetMonitorEngine engine(fleet, cfg);
    return engine.run();
  };

  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  EXPECT_EQ(serial.workers_used, 1u);
  EXPECT_EQ(parallel.workers_used, 4u);

  ASSERT_EQ(serial.pairs.size(), fleet.size());
  ASSERT_EQ(parallel.pairs.size(), fleet.size());
  for (std::size_t i = 0; i < serial.pairs.size(); ++i) {
    const auto& a = serial.pairs[i];
    const auto& b = parallel.pairs[i];
    EXPECT_EQ(a.stream_id, b.stream_id);
    EXPECT_TRUE(same_bits(a.cost_savings, b.cost_savings)) << a.stream_id;
    EXPECT_TRUE(same_bits(a.nrmse, b.nrmse)) << a.stream_id;
    EXPECT_TRUE(same_bits(a.max_abs_error, b.max_abs_error)) << a.stream_id;
    EXPECT_EQ(a.adaptive_samples, b.adaptive_samples) << a.stream_id;
    EXPECT_EQ(a.baseline_samples, b.baseline_samples) << a.stream_id;
    EXPECT_EQ(a.audit.windows, b.audit.windows);
    EXPECT_EQ(a.audit.aliased_windows, b.audit.aliased_windows);
    EXPECT_EQ(a.audit.probe_windows, b.audit.probe_windows);
    EXPECT_TRUE(same_bits(a.audit.final_rate_hz, b.audit.final_rate_hz));
  }

  // Store fan-in and cost aggregates must match too.
  EXPECT_EQ(serial.store.ingested_samples, parallel.store.ingested_samples);
  EXPECT_EQ(serial.store.stored_samples, parallel.store.stored_samples);
  EXPECT_EQ(serial.store.chunks_reduced, parallel.store.chunks_reduced);
  EXPECT_EQ(serial.adaptive_cost.samples, parallel.adaptive_cost.samples);
  EXPECT_EQ(serial.baseline_cost.samples, parallel.baseline_cost.samples);
  EXPECT_TRUE(same_bits(serial.fleet_cost_savings(),
                        parallel.fleet_cost_savings()));
}

TEST(Engine, DeterminismStressAcrossWorkersSimdAndArenaModes) {
  // The full matrix the scaling work must not perturb: every worker count
  // x every SIMD dispatch level x arena retained/wiped has to produce the
  // same run digest over a 500-pair fleet. This is what lets the repo
  // change FFT internals, vectorize kernels, or reuse scratch buffers
  // without ever re-baselining a digest: the digest is defined by the
  // computation, not by the execution strategy.
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 500;
  fleet_cfg.seed = 424242;
  const tel::Fleet fleet(fleet_cfg);
  ASSERT_GE(fleet.size(), 500u);

  // Scalar reference plus the widest level this CPU has (the levels in
  // between share their kernels' definitions, and the kernel-equivalence
  // suite covers all of them element-wise).
  std::vector<dsp::simd::Level> levels = {dsp::simd::Level::kScalar};
  if (dsp::simd::detected_level() != dsp::simd::Level::kScalar)
    levels.push_back(dsp::simd::detected_level());

  const dsp::simd::Level original = dsp::simd::active_level();
  std::uint64_t reference_digest = 0;
  bool have_reference = false;
  for (const dsp::simd::Level level : levels) {
    dsp::simd::set_level(level);
    for (const bool arena_retain : {true, false}) {
      for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        eng::EngineConfig cfg;
        cfg.workers = workers;
        cfg.arena_retain = arena_retain;
        // Trim per-pair work: the matrix is about scheduling, dispatch and
        // buffer reuse, not trace length.
        cfg.samples_per_window = 48;
        cfg.windows_per_pair = 4;
        eng::FleetMonitorEngine engine(fleet, cfg);
        const auto result = engine.run();
        const std::uint64_t digest = eng::run_digest(result);
        if (!have_reference) {
          reference_digest = digest;
          have_reference = true;
        }
        EXPECT_EQ(digest, reference_digest)
            << "level=" << dsp::simd::level_name(level)
            << " arena_retain=" << arena_retain << " workers=" << workers;
        EXPECT_EQ(result.arena.pairs_processed, fleet.size());
        if (!arena_retain) {
          // Wiped between pairs: every warm pair re-allocates, by design.
          EXPECT_GE(result.arena.warm_pairs_with_allocations,
                    fleet.size() - workers)
              << "workers=" << workers;
        }
      }
    }
  }
  dsp::simd::set_level(original);
}

TEST(Engine, RetainsQueryableStreamsAndReports) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 40;
  fleet_cfg.seed = 5;
  fleet_cfg.topology.pods = 2;
  const tel::Fleet fleet(fleet_cfg);

  eng::EngineConfig cfg;
  cfg.workers = 2;
  cfg.samples_per_window = 48;
  cfg.windows_per_pair = 4;
  eng::FleetMonitorEngine engine(fleet, cfg);
  const auto result = engine.run();

  EXPECT_EQ(result.pairs.size(), 40u);
  EXPECT_EQ(engine.store().streams(), 40u);
  for (const auto& pair : fleet.pairs()) {
    const std::string id = tel::stream_id(pair);
    const auto stats = engine.store().stats(id);
    EXPECT_GT(stats.ingested_samples, 0u) << id;
    const auto series =
        engine.store().query(id, 0.0, 8.0 * pair.metric.poll_interval_s);
    EXPECT_EQ(series.size(), 8u) << id;
  }

  const auto report = eng::build_report(result);
  EXPECT_EQ(report.pairs, 40u);
  std::size_t pairs_in_report = 0;
  for (const auto& [kind, m] : report.by_metric) {
    pairs_in_report += m.pairs;
    EXPECT_EQ(m.cost_savings.size(), m.pairs);
    EXPECT_EQ(m.nrmse.size() + m.nrmse_degenerate, m.pairs);
  }
  EXPECT_EQ(pairs_in_report, 40u);
  const std::string rendered = eng::render(report);
  EXPECT_NE(rendered.find("fleet-wide cost savings"), std::string::npos);

  // Engines are single-shot.
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

TEST(Engine, WorkerExceptionsPropagateToCaller) {
  // A throwing task on a pooled std::thread used to std::terminate the
  // process; parallel_claim must surface it on the calling thread whatever
  // the worker count.
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 16;
  fleet_cfg.topology.pods = 2;
  const tel::Fleet fleet(fleet_cfg);

  for (const std::size_t workers : {1u, 4u}) {
    eng::EngineConfig cfg;
    cfg.workers = workers;
    cfg.sampler.probe_factor = 1.0;  // rejected inside each pair's sampler
    eng::FleetMonitorEngine engine(fleet, cfg);
    EXPECT_THROW(engine.run(), std::invalid_argument) << workers;
  }
}

TEST(Engine, StreamIdsAreUniquePerPair) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 200;
  const tel::Fleet fleet(fleet_cfg);
  std::set<std::string> ids;
  for (const auto& pair : fleet.pairs()) ids.insert(tel::stream_id(pair));
  EXPECT_EQ(ids.size(), fleet.size());
}

TEST(Engine, SchedulePairScalesWithPollInterval) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 10;
  fleet_cfg.topology.pods = 2;
  const tel::Fleet fleet(fleet_cfg);
  for (const auto& pair : fleet.pairs()) {
    const auto s = tel::schedule_pair(pair, 64, 8);
    EXPECT_DOUBLE_EQ(s.production_rate_hz, 1.0 / pair.metric.poll_interval_s);
    EXPECT_DOUBLE_EQ(s.window_duration_s, 64.0 * pair.metric.poll_interval_s);
    EXPECT_DOUBLE_EQ(s.duration_s, 8.0 * s.window_duration_s);
  }
}

}  // namespace
