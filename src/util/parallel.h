// Deterministic fan-out helper shared by the fleet audit and the engine.
//
// Runs `task(i)` for every i in [0, n_tasks) on a fixed pool of worker
// threads that claim indices from a shared atomic counter. Callers keep
// results deterministic by pre-forking any randomness sequentially and
// writing each task's output to its own pre-allocated slot; this helper
// only guarantees every index runs exactly once.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#include <unistd.h>
#endif

namespace nyqmon {

/// Best-effort: pin the calling thread to CPU `cpu % online CPUs`. Keeps a
/// worker's scratch arena and its cache footprint on one core instead of
/// migrating mid-run. Returns false (and changes nothing) when the platform
/// or the container's CPU mask does not allow it.
inline bool pin_this_thread(std::size_t cpu) {
#ifdef __linux__
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % static_cast<std::size_t>(online)), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

/// Resolve a requested worker count: 0 means hardware concurrency, and the
/// result is clamped to [1, max(n_tasks, 1)].
inline std::size_t resolve_workers(std::size_t requested,
                                   std::size_t n_tasks) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::max<std::size_t>(
      1, std::min(requested == 0 ? hw : requested,
                  std::max<std::size_t>(n_tasks, 1)));
}

/// Run task(0) .. task(n_tasks-1), each exactly once, on `workers` threads
/// (after resolve_workers clamping). workers == 1 runs inline. Returns the
/// worker count actually used. If a task throws, remaining tasks are
/// abandoned and one of the thrown exceptions is rethrown on the calling
/// thread after all workers join — an escape from a bare std::thread would
/// std::terminate the process instead.
inline std::size_t parallel_claim(
    std::size_t n_tasks, std::size_t workers,
    const std::function<void(std::size_t)>& task) {
  workers = resolve_workers(workers, n_tasks);
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker_loop = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n_tasks) break;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        next.store(n_tasks);  // stop other workers claiming new tasks
        break;
      }
    }
  };
  if (workers == 1) {
    worker_loop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
    for (auto& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
  return workers;
}

}  // namespace nyqmon
