#include "reconstruct/compressive.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/simd.h"
#include "dsp/workspace.h"
#include "util/check.h"

namespace nyqmon::rec {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Solve the dense symmetric positive-definite system A x = b in place via
// Gaussian elimination with partial pivoting. Dimensions here are
// 2*sparsity+1 (tiny), so numerical sophistication is unnecessary.
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    NYQMON_ENSURE(std::abs(a[col][col]) > 1e-30);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t c = row + 1; c < n; ++c) acc -= a[row][c] * x[c];
    x[row] = acc / a[row][row];
  }
  return x;
}

}  // namespace

double CompressiveModel::value(double t) const {
  double v = dc;
  for (const auto& atom : atoms) {
    const double arg = kTwoPi * atom.frequency_hz * t;
    v += atom.cos_amp * std::cos(arg) + atom.sin_amp * std::sin(arg);
  }
  return v;
}

sig::RegularSeries CompressiveModel::sample(double t0, double dt,
                                            std::size_t n) const {
  NYQMON_CHECK(dt > 0.0);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = value(t0 + static_cast<double>(i) * dt);
  return sig::RegularSeries(t0, dt, std::move(v));
}

CompressiveModel compressive_recover(const sig::TimeSeries& samples,
                                     const CompressiveConfig& config) {
  NYQMON_CHECK_MSG(samples.size() >= 8, "compressive_recover needs >= 8 samples");
  NYQMON_CHECK(config.sparsity >= 1);
  NYQMON_CHECK(config.grid_bins >= 2);
  NYQMON_CHECK(config.max_frequency_hz > 0.0);
  NYQMON_CHECK_MSG(2 * config.sparsity + 1 < samples.size(),
                   "sparsity too high for the sample budget");

  const std::size_t n = samples.size();
  std::vector<double> t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = samples[i].t;
    y[i] = samples[i].v;
  }

  const auto& kn = dsp::simd::ops();
  auto& ws = dsp::this_thread_workspace();
  auto frame = ws.frame();

  CompressiveModel model;
  // DC first (always in the model).
  const double mean = kn.sum(y.data(), n) / static_cast<double>(n);
  model.dc = mean;

  std::vector<double> residual(y);
  kn.sub_scalar_inplace(residual.data(), mean, n);
  const double input_energy = kn.dot(residual.data(), residual.data(), n);
  if (input_energy == 0.0) {
    model.residual_energy_fraction = 0.0;
    return model;
  }

  // Scratch for one candidate's cos/sin columns (greedy scoring) and for
  // the design matrix columns of the joint solve. Two passes per
  // candidate: scalar trig fills the columns, then the dispatched dot
  // kernels compute every correlation — the reductions are where the
  // vector lanes pay off.
  double* cand_c = frame.doubles(n);
  double* cand_s = frame.doubles(n);
  const std::size_t max_dims = 1 + 2 * config.sparsity;
  double* columns = frame.doubles(max_dims * n);

  std::vector<double> selected;  // chosen frequencies
  for (std::size_t iter = 0; iter < config.sparsity; ++iter) {
    // Greedy step: frequency whose cos/sin pair best matches the residual
    // (Lomb-like correlation).
    double best_score = -1.0;
    double best_f = 0.0;
    for (std::size_t k = 0; k < config.grid_bins; ++k) {
      const double f = config.max_frequency_hz *
                       static_cast<double>(k + 1) /
                       static_cast<double>(config.grid_bins);
      if (std::find_if(selected.begin(), selected.end(), [f](double g) {
            return std::abs(g - f) < 1e-15;
          }) != selected.end()) {
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double arg = kTwoPi * f * t[i];
        cand_c[i] = std::cos(arg);
        cand_s[i] = std::sin(arg);
      }
      const double rc = kn.dot(residual.data(), cand_c, n);
      const double rs = kn.dot(residual.data(), cand_s, n);
      const double cc = kn.dot(cand_c, cand_c, n);
      const double ss = kn.dot(cand_s, cand_s, n);
      double score = 0.0;
      if (cc > 0.0) score += rc * rc / cc;
      if (ss > 0.0) score += rs * rs / ss;
      if (score > best_score) {
        best_score = score;
        best_f = f;
      }
    }
    selected.push_back(best_f);

    // Joint least squares over DC + all selected cos/sin atoms.
    // Materialize the design-matrix columns once, then every Gram entry is
    // a dot product — the old formulation recomputed cos/sin for each of
    // the n * dims^2 / 2 matrix entries.
    const std::size_t dims = 1 + 2 * selected.size();
    for (std::size_t i = 0; i < n; ++i) columns[i] = 1.0;
    for (std::size_t a = 0; a < selected.size(); ++a) {
      double* col_c = columns + (1 + 2 * a) * n;
      double* col_s = columns + (2 + 2 * a) * n;
      for (std::size_t i = 0; i < n; ++i) {
        const double arg = kTwoPi * selected[a] * t[i];
        col_c[i] = std::cos(arg);
        col_s[i] = std::sin(arg);
      }
    }
    std::vector<std::vector<double>> gram(dims, std::vector<double>(dims, 0.0));
    std::vector<double> rhs(dims, 0.0);
    for (std::size_t a = 0; a < dims; ++a) {
      const double* col_a = columns + a * n;
      rhs[a] = kn.dot(col_a, y.data(), n);
      for (std::size_t b = a; b < dims; ++b)
        gram[a][b] = kn.dot(col_a, columns + b * n, n);
    }
    for (std::size_t a = 0; a < dims; ++a)
      for (std::size_t b = 0; b < a; ++b) gram[a][b] = gram[b][a];
    const auto coeff = solve_dense(gram, rhs);

    model.dc = coeff[0];
    model.atoms.clear();
    for (std::size_t a = 0; a < selected.size(); ++a) {
      CompressiveModel::Atom atom;
      atom.frequency_hz = selected[a];
      atom.cos_amp = coeff[1 + 2 * a];
      atom.sin_amp = coeff[2 + 2 * a];
      model.atoms.push_back(atom);
    }

    // Update the residual (y minus the fitted columns — axpy over the
    // already-materialized design matrix) and test the stopping rule.
    std::copy(y.begin(), y.end(), residual.begin());
    kn.sub_scalar_inplace(residual.data(), coeff[0], n);
    for (std::size_t d = 1; d < dims; ++d)
      kn.axpy(-coeff[d], columns + d * n, residual.data(), n);
    const double res_energy = kn.dot(residual.data(), residual.data(), n);
    model.residual_energy_fraction = res_energy / input_energy;
    if (model.residual_energy_fraction < config.residual_tolerance) break;
  }
  return model;
}

}  // namespace nyqmon::rec
