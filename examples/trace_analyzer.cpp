// trace_analyzer: the adoption-path CLI. Feed it a CSV of
// "timestamp_seconds,value" rows from *your* monitoring system and it
// prints the paper's analysis for that trace: the estimated Nyquist rate,
// the possible sampling-rate reduction, and the reconstruction error you
// would incur at the reduced rate.
//
// Usage:
//   trace_analyzer <trace.csv> [energy_cutoff]
//   trace_analyzer --demo            # run on a bundled synthetic trace
//
// CSV format: one sample per line, "t,v" (header lines are skipped).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "nyquist/estimator.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "signal/preclean.h"
#include "util/rng.h"

namespace {

nyqmon::sig::TimeSeries load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  nyqmon::sig::TimeSeries trace;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    double t = 0.0, v = 0.0;
    char comma = 0;
    if (row >> t >> comma >> v && comma == ',') trace.push(t, v);
    // non-numeric rows (headers, blanks) are skipped silently
  }
  if (trace.size() < 16)
    throw std::runtime_error("need at least 16 samples, got " +
                             std::to_string(trace.size()));
  return trace;
}

nyqmon::sig::TimeSeries demo_trace() {
  nyqmon::Rng rng(4242);
  const auto proc = nyqmon::sig::make_bandlimited_process(
      1e-3, 8.0, 32, rng, /*dc=*/40.0);
  nyqmon::sig::TimeSeries trace;
  for (int i = 0; i < 2880; ++i) {
    const double t = i * 30.0 + rng.uniform(-1.5, 1.5);
    trace.push(t, std::round(proc->value(t)));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nyqmon;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.csv> [energy_cutoff]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }

  try {
    const sig::TimeSeries raw = std::strcmp(argv[1], "--demo") == 0
                                    ? demo_trace()
                                    : load_csv(argv[1]);
    std::printf("trace: %zu samples over %.1f s (median interval %.2f s)\n",
                raw.size(), raw.duration(), raw.median_interval());

    sig::PrecleanConfig clean;
    sig::PrecleanReport report;
    const auto trace = sig::regularize(raw, clean, &report);
    if (report.dropped_nonfinite > 0 || report.collapsed_duplicates > 0) {
      std::printf("preclean: dropped %zu non-finite, merged %zu duplicate "
                  "timestamps\n",
                  report.dropped_nonfinite, report.collapsed_duplicates);
    }

    nyq::EstimatorConfig cfg;
    if (argc >= 3) cfg.energy_cutoff = std::stod(argv[2]);
    const auto est = nyq::NyquistEstimator(cfg).estimate(trace);

    std::printf("current sampling rate: %.6g Hz (every %.1f s)\n",
                trace.sample_rate_hz(), trace.dt());
    switch (est.verdict) {
      case nyq::NyquistEstimate::Verdict::kAliased:
        std::printf("verdict: ALIASED — this trace looks under-sampled; its\n"
                    "true Nyquist rate is not recoverable from it. Consider\n"
                    "probing at a higher rate (see the dual-rate detector).\n");
        return 1;
      case nyq::NyquistEstimate::Verdict::kTooShort:
        std::printf("verdict: trace too short for a reliable estimate.\n");
        return 1;
      case nyq::NyquistEstimate::Verdict::kFlat:
        std::printf("verdict: flat signal — any low sampling rate works.\n");
        return 0;
      case nyq::NyquistEstimate::Verdict::kOk:
        break;
    }

    std::printf("estimated Nyquist rate (%.4g%% energy rule): %.6g Hz\n",
                100.0 * cfg.energy_cutoff, est.nyquist_rate_hz);
    std::printf("possible sampling-rate reduction: %.1fx\n",
                est.reduction_ratio());

    // Show the damage (or lack of it) at the reduced rate.
    const double target = 1.5 * est.nyquist_rate_hz;
    const auto factor = static_cast<std::size_t>(
        std::max(1.0, std::floor(trace.sample_rate_hz() / target)));
    if (factor > 1) {
      const auto recon = rec::round_trip(trace, factor);
      std::printf("at 1/%zu of today's rate (1.5x headroom), reconstruction "
                  "NRMSE = %.4f\n",
                  factor, rec::nrmse(trace.span(), recon.span()));
    } else {
      std::printf("the current rate is already near the Nyquist rate — no "
                  "safe reduction.\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
