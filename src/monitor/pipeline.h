// The end-to-end adaptive monitoring pipeline (paper Section 4).
//
// Wires together the pieces into the system the paper proposes: an
// AdaptiveSampler measures a live (noisy, quantized) signal at a
// self-chosen rate; the collected samples are reconstructed onto the
// original production grid; the result is scored for cost (vs the
// fixed-rate production poller) and quality (vs dense ground truth).
#pragma once

#include <functional>

#include "monitor/cost_model.h"
#include "nyquist/adaptive_sampler.h"
#include "signal/source.h"

namespace nyqmon::mon {

struct PipelineConfig {
  nyq::AdaptiveConfig sampler;
  CostModel cost;
  /// Measurement imperfections applied to every acquisition.
  double noise_stddev = 0.0;
  double quantization_step = 0.0;
  /// Re-apply the quantizer to the reconstruction (Section 4.3).
  bool requantize_reconstruction = true;
};

struct PipelineResult {
  nyq::AdaptiveRun run;
  Cost adaptive_cost;
  Cost baseline_cost;        ///< fixed production-rate poller over same span
  double cost_savings = 0.0; ///< baseline samples / adaptive samples
  /// Reconstruction quality against the ground-truth signal evaluated on
  /// the production grid.
  double l2 = 0.0;
  double nrmse = 0.0;
  double max_abs_error = 0.0;
  sig::RegularSeries reconstruction;  ///< on the production grid
  sig::RegularSeries ground_truth;    ///< same grid, noiseless
};

class AdaptiveMonitoringPipeline {
 public:
  explicit AdaptiveMonitoringPipeline(PipelineConfig config = {});

  const PipelineConfig& config() const { return config_; }

  /// Monitor `truth` over [t0, t0+duration); `production_rate_hz` is the
  /// rate the existing deployment uses (baseline cost and evaluation grid).
  PipelineResult run(const sig::ContinuousSignal& truth, double t0,
                     double duration_s, double production_rate_hz,
                     std::uint64_t noise_seed = 1) const;

 private:
  PipelineConfig config_;
};

}  // namespace nyqmon::mon
