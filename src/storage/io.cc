#include "storage/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

namespace nyqmon::sto {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " failed for " + path + ": " +
                           std::string(std::strerror(errno)));
}

int open_or_throw(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open", path);
  return fd;
}

}  // namespace

File::File(int fd, std::string path, std::uint64_t size)
    : fd_(fd), path_(std::move(path)), written_(size) {}

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      written_(other.written_) {}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File File::create(const std::string& path) {
  return File(open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC), path, 0);
}

File File::append(const std::string& path) {
  const int fd = open_or_throw(path, O_WRONLY | O_CREAT | O_APPEND);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat", path);
  }
  return File(fd, path, static_cast<std::uint64_t>(st.st_size));
}

void File::write(std::span<const std::uint8_t> bytes) {
  const std::uint8_t* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  written_ += bytes.size();
}

void File::sync() {
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

void File::close() {
  if (fd_ >= 0 && ::close(std::exchange(fd_, -1)) != 0)
    throw_errno("close", path_);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = open_or_throw(path, O_RDONLY);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat", path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read", path);
    }
    if (n == 0) break;  // shrank underneath us; keep what we have
    got += static_cast<std::size_t>(n);
  }
  bytes.resize(got);
  ::close(fd);
  return bytes;
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    File f = File::create(tmp);
    f.write(bytes);
    f.sync();
    f.close();
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) throw_errno("rename", path);
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
}

void truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    throw_errno("truncate", path);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open dir", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync dir", dir);
  }
  ::close(fd);
}

}  // namespace nyqmon::sto
