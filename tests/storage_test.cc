// Durable tier (src/storage/): codec bit-exactness, WAL replay under torn
// writes, segment CRC corruption handling, flush -> reopen round trips
// (bit-identical reconstruction, monotonic generations), compaction, and
// the 500-pair engine-level cold-start equivalence.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "monitor/store.h"
#include "monitor/striped_store.h"
#include "query/engine.h"
#include "signal/generators.h"
#include "storage/codec.h"
#include "storage/crc32.h"
#include "storage/manager.h"
#include "storage/segment.h"
#include "storage/wal.h"
#include "telemetry/fleet.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace nyqmon;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_bits(a[i], b[i])) return false;
  return true;
}

/// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / ("nyqmon_storage_test_" + name))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<double> noisy_sine(std::size_t n, double freq, Rng& rng) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(2.0 * M_PI * freq * static_cast<double>(i)) +
           0.05 * rng.uniform(-1.0, 1.0);
  return v;
}

// ------------------------------------------------------------------ codec --

TEST(Crc32, KnownAnswer) {
  const std::string s = "123456789";
  EXPECT_EQ(sto::crc32(std::span(
                reinterpret_cast<const std::uint8_t*>(s.data()), s.size())),
            0xCBF43926u);
  EXPECT_EQ(sto::crc32({}), 0u);
}

TEST(XorCodec, RoundTripIsBitExact) {
  Rng rng(7);
  std::vector<std::vector<double>> cases;
  cases.push_back({});
  cases.push_back({42.0});
  cases.push_back(std::vector<double>(100, 3.14159));
  cases.push_back(noisy_sine(777, 0.013, rng));
  std::vector<double> specials = {0.0,
                                  -0.0,
                                  1.0,
                                  -1.0,
                                  std::numeric_limits<double>::infinity(),
                                  -std::numeric_limits<double>::infinity(),
                                  std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::denorm_min(),
                                  std::numeric_limits<double>::max(),
                                  std::numeric_limits<double>::epsilon()};
  cases.push_back(specials);
  std::vector<double> ramp(513);
  for (std::size_t i = 0; i < ramp.size(); ++i)
    ramp[i] = static_cast<double>(i) * 0.1;
  cases.push_back(ramp);
  std::vector<double> random(1000);
  for (auto& v : random) v = rng.uniform(-1e12, 1e12);
  cases.push_back(random);

  for (const auto& values : cases) {
    const auto bytes = sto::xor_encode(values);
    EXPECT_EQ(bytes.size(), sto::xor_encoded_size(values));
    const auto decoded = sto::xor_decode(bytes, values.size());
    ASSERT_EQ(decoded.size(), values.size());
    EXPECT_TRUE(same_bits(values, decoded));
  }
}

TEST(XorCodec, ConstantAndSmoothSeriesCompress) {
  const std::vector<double> constant(4096, 21.5);
  const auto const_bytes = sto::xor_encoded_size(constant);
  // One full value + ~1 bit per repeat.
  EXPECT_LT(const_bytes, 8 + 4096 / 8 + 16);

  // Quantized telemetry (finite-resolution counters/gauges) shares trailing
  // zero bits between neighbours — the codec's sweet spot. Full-entropy
  // noise mantissas, by contrast, stay near 8 B/sample.
  std::vector<double> quantized(4096);
  for (std::size_t i = 0; i < quantized.size(); ++i)
    quantized[i] = std::round(64.0 * std::sin(2.0 * M_PI * 0.004 *
                                              static_cast<double>(i))) /
                   64.0;
  EXPECT_LT(sto::xor_encoded_size(quantized), 4 * quantized.size());
}

TEST(XorCodec, DecodeOfTruncatedStreamThrows) {
  const std::vector<double> values(64, 1.25);
  auto bytes = sto::xor_encode(values);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(sto::xor_decode(bytes, values.size()), std::runtime_error);
}

// -------------------------------------------------------------------- WAL --

TEST(Wal, AppendReplayRoundTrip) {
  TempDir dir("wal_roundtrip");
  fs::create_directories(dir.path);
  const std::string path = dir.path + "/wal-000001.log";
  sto::WriteAheadLog::create(path);
  {
    sto::WriteAheadLog wal(path, 1);
    wal.append_create("a/x", 2.0, 0.5);
    wal.append_batch("a/x", std::vector<double>{1.0, 2.0, 3.0});
    wal.append_batch("a/x", std::vector<double>{4.0});
    wal.sync();
  }
  std::vector<sto::WalRecord> seen;
  const auto stats = sto::WriteAheadLog::replay(
      path, [&](const sto::WalRecord& r) { seen.push_back(r); });
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_EQ(stats.records_truncated, 0u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].type, sto::WalRecord::Type::kCreate);
  EXPECT_EQ(seen[0].stream, "a/x");
  EXPECT_EQ(seen[0].collection_rate_hz, 2.0);
  EXPECT_EQ(seen[0].t0, 0.5);
  EXPECT_EQ(seen[1].values, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(seen[2].values, (std::vector<double>{4.0}));
}

TEST(Wal, TruncatedTailDropsOnlyLastRecordAndStaysAppendable) {
  TempDir dir("wal_torn");
  fs::create_directories(dir.path);
  const std::string path = dir.path + "/wal-000001.log";
  sto::WriteAheadLog::create(path);
  {
    sto::WriteAheadLog wal(path, 1);
    wal.append_batch("s", std::vector<double>{1.0, 2.0});
    wal.append_batch("s", std::vector<double>{3.0, 4.0});
  }
  // Tear the last record's tail off (a crash mid-write).
  const auto full = fs::file_size(path);
  sto::truncate_file(path, full - 5);

  std::size_t batches = 0;
  auto stats = sto::WriteAheadLog::replay(
      path, [&](const sto::WalRecord&) { ++batches; });
  EXPECT_EQ(batches, 1u);
  EXPECT_EQ(stats.records_replayed, 1u);
  EXPECT_EQ(stats.records_truncated, 1u);

  // Replay truncated the torn tail: the log keeps appending cleanly.
  {
    sto::WriteAheadLog wal(path, 1);
    wal.append_batch("s", std::vector<double>{5.0});
  }
  std::vector<sto::WalRecord> seen;
  stats = sto::WriteAheadLog::replay(
      path, [&](const sto::WalRecord& r) { seen.push_back(r); });
  EXPECT_EQ(stats.records_truncated, 0u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].values, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(seen[1].values, (std::vector<double>{5.0}));
}

// --------------------------------------------------- flush/reopen fidelity --

mon::StoreConfig small_chunks() {
  mon::StoreConfig cfg;
  cfg.chunk_samples = 64;
  return cfg;
}

/// Ingest a deterministic two-stream workload through `store`.
template <typename Store>
void ingest_workload(Store& store, std::size_t batches, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t b = 0; b < batches; ++b) {
    store.append_series("dev0/temp", noisy_sine(37, 0.01, rng));
    store.append_series("dev1/drops", noisy_sine(23, 0.21, rng));
  }
}

template <typename Store>
void create_workload_streams(Store& store) {
  store.create_stream("dev0/temp", 1.0);
  store.create_stream("dev1/drops", 4.0, 100.0);
}

TEST(StorageManager, FlushReopenQueriesBitIdentical) {
  TempDir dir("flush_reopen");
  mon::RetentionStore live(small_chunks());
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    cfg.truncate_existing = true;
    sto::StorageManager manager(cfg);
    live.set_ingest_sink(&manager);
    create_workload_streams(live);
    ingest_workload(live, 40, 11);
    const auto flushed = manager.flush(live);
    EXPECT_EQ(flushed.streams, 2u);
    EXPECT_GT(flushed.chunks, 0u);
    EXPECT_GT(flushed.bytes_written, 0u);
  }

  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  sto::StorageManager reopened(cfg);
  const auto geom = reopened.manifest_geometry();
  ASSERT_TRUE(geom.has_value());
  EXPECT_EQ(geom->chunk_samples, 64u);

  mon::RetentionStore cold(small_chunks());
  const auto rec = reopened.recover(cold);
  EXPECT_EQ(rec.streams, 2u);
  EXPECT_EQ(rec.crc_skipped_blocks, 0u);
  EXPECT_EQ(rec.wal_records_replayed, 0u);  // fresh WAL after flush

  for (const std::string name : {"dev0/temp", "dev1/drops"}) {
    const auto live_meta = live.meta(name);
    const auto cold_meta = cold.meta(name);
    EXPECT_EQ(live_meta.generation, cold_meta.generation) << name;
    EXPECT_EQ(live_meta.ingested_samples, cold_meta.ingested_samples);
    EXPECT_TRUE(same_bits(live_meta.t0, cold_meta.t0));
    EXPECT_TRUE(same_bits(live_meta.t_end, cold_meta.t_end));

    const auto live_stats = live.stats(name);
    const auto cold_stats = cold.stats(name);
    EXPECT_EQ(live_stats.stored_samples, cold_stats.stored_samples);
    EXPECT_EQ(live_stats.chunks, cold_stats.chunks);
    EXPECT_EQ(live_stats.bytes_raw, cold_stats.bytes_raw);
    EXPECT_EQ(live_stats.bytes_stored, cold_stats.bytes_stored);

    // The acceptance bar: band-limited reconstruction from the reopened
    // store is bit-identical to the live in-memory store.
    const double t0 = live_meta.t0;
    const double t_end = live_meta.t_end;
    const auto a = live.query(name, t0, t_end);
    const auto b = cold.query(name, t0, t_end);
    EXPECT_TRUE(same_bits(a.values(), b.values())) << name;
    const auto a_mid = live.query(name, t0 + 13.0, t_end - 17.0);
    const auto b_mid = cold.query(name, t0 + 13.0, t_end - 17.0);
    EXPECT_TRUE(same_bits(a_mid.values(), b_mid.values())) << name;
  }
}

TEST(StorageManager, ReopenThenAppendContinuesGenerationsAndSealing) {
  TempDir dir("reopen_append");
  // Reference: one uninterrupted in-memory store over the full workload.
  mon::RetentionStore reference(small_chunks());
  create_workload_streams(reference);
  ingest_workload(reference, 30, 5);
  ingest_workload(reference, 30, 6);

  // Durable run, phase 1, flushed checkpoint.
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    cfg.truncate_existing = true;
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    store.set_ingest_sink(&manager);
    create_workload_streams(store);
    ingest_workload(store, 30, 5);
    manager.flush(store);
  }

  // Reopen, then keep appending phase 2 through a fresh manager.
  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  const std::uint64_t gen_before = [&] {
    const auto rec = manager.recover(store);
    EXPECT_EQ(rec.streams, 2u);
    return store.meta("dev0/temp").generation;
  }();
  EXPECT_EQ(gen_before, 30u);  // one generation bump per append batch
  store.set_ingest_sink(&manager);
  ingest_workload(store, 30, 6);

  // Generations continue monotonically across the reopen (PR 2 query-cache
  // invalidation stays correct), and the merged history seals exactly like
  // the uninterrupted run.
  for (const std::string name : {"dev0/temp", "dev1/drops"}) {
    const auto ref_meta = reference.meta(name);
    const auto got_meta = store.meta(name);
    EXPECT_EQ(ref_meta.generation, got_meta.generation) << name;
    EXPECT_EQ(ref_meta.ingested_samples, got_meta.ingested_samples);
    const auto ref_stats = reference.stats(name);
    const auto got_stats = store.stats(name);
    EXPECT_EQ(ref_stats.chunks, got_stats.chunks);
    EXPECT_EQ(ref_stats.stored_samples, got_stats.stored_samples);
    EXPECT_EQ(ref_stats.bytes_stored, got_stats.bytes_stored);
    const auto a = reference.query(name, ref_meta.t0, ref_meta.t_end);
    const auto b = store.query(name, ref_meta.t0, ref_meta.t_end);
    EXPECT_TRUE(same_bits(a.values(), b.values())) << name;
  }
}

TEST(StorageManager, MidRunKillLosesAtMostTheTornBatch) {
  TempDir dir("midrun_kill");
  std::string wal_file;
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    cfg.truncate_existing = true;
    cfg.wal_sync_interval_batches = 1;  // fsync every batch
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    store.set_ingest_sink(&manager);
    create_workload_streams(store);
    ingest_workload(store, 25, 9);
    // Never flushed: the WAL alone carries the run. "Kill" the process by
    // simply abandoning the objects (no checkpoint, no clean shutdown).
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("wal-", 0) == 0) wal_file = entry.path().string();
    }
  }
  ASSERT_FALSE(wal_file.empty());

  // First recovery: every batch was fsync'd, so nothing is lost.
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    const auto rec = manager.recover(store);
    EXPECT_EQ(rec.wal_records_replayed, 2u + 50u);  // 2 creates + 50 batches
    EXPECT_EQ(rec.wal_records_truncated, 0u);
    EXPECT_EQ(store.stats("dev0/temp").ingested_samples, 25u * 37u);
    EXPECT_EQ(store.stats("dev1/drops").ingested_samples, 25u * 23u);
  }

  // Torn write: chop a few bytes off the last record. Recovery drops only
  // that batch.
  sto::truncate_file(wal_file, fs::file_size(wal_file) - 3);
  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  const auto rec = manager.recover(store);
  EXPECT_EQ(rec.wal_records_replayed, 2u + 49u);
  EXPECT_EQ(rec.wal_records_truncated, 1u);
  // The last batch in the workload was dev1/drops: it lost exactly one.
  EXPECT_EQ(store.stats("dev0/temp").ingested_samples, 25u * 37u);
  EXPECT_EQ(store.stats("dev1/drops").ingested_samples, 24u * 23u);
}

TEST(StorageManager, CrcCorruptedChunkBlockSkippedAndCounted) {
  TempDir dir("crc_corrupt");
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    cfg.truncate_existing = true;
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    store.set_ingest_sink(&manager);
    create_workload_streams(store);
    ingest_workload(store, 40, 13);
    manager.flush(store);
  }

  // Find the segment and flip one byte inside the first chunk block's
  // payload (walking the block framing: magic, then type|len|crc|payload).
  std::string seg_file;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) seg_file = entry.path().string();
  }
  ASSERT_FALSE(seg_file.empty());
  auto bytes = sto::read_file(seg_file);
  std::size_t pos = 8;
  bool corrupted = false;
  while (pos + 9 <= bytes.size()) {
    const std::uint8_t type = bytes[pos];
    std::uint32_t len = 0;
    std::memcpy(&len, &bytes[pos + 1], 4);
    if (type == 2) {  // chunk block: flip a value byte past the header
      bytes[pos + 9 + 24] ^= 0xFF;
      corrupted = true;
      break;
    }
    pos += 9 + len;
  }
  ASSERT_TRUE(corrupted);
  {
    std::ofstream out(seg_file, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  const auto rec = manager.recover(store);
  // The damaged block is skipped with a counted warning; everything else
  // survives, including the sibling stream.
  EXPECT_EQ(rec.crc_skipped_blocks, 1u);
  EXPECT_EQ(rec.chunks_missing, 1u);
  EXPECT_EQ(rec.streams, 2u);
  // Restored stats keep the writer's cumulative counters; chunks_missing is
  // exactly the gap between them and what actually survived.
  EXPECT_EQ(store.stats("dev0/temp").chunks +
                store.stats("dev1/drops").chunks,
            rec.chunks + rec.chunks_missing);
  // Queries still answer over the surviving data.
  const auto meta = store.meta("dev0/temp");
  EXPECT_GT(store.query("dev0/temp", meta.t0, meta.t_end).size(), 0u);
}

TEST(StorageManager, CorruptNewestHeaderDropsWalGraftsForThatStreamOnly) {
  TempDir dir("stale_header");
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    cfg.truncate_existing = true;
    cfg.wal_sync_interval_batches = 1;
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    store.set_ingest_sink(&manager);
    create_workload_streams(store);
    ingest_workload(store, 10, 3);
    manager.flush(store);
    ingest_workload(store, 10, 4);
    manager.flush(store);
    // Post-flush WAL epoch: these batches belong to the flush-2 state.
    ingest_workload(store, 5, 8);
  }

  // Corrupt the LAST segment's header block for dev0/temp (name appears in
  // the payload right after the str16 length prefix).
  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) segs.push_back(entry.path().string());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_EQ(segs.size(), 2u);
  auto bytes = sto::read_file(segs.back());
  std::size_t pos = 8;
  bool corrupted = false;
  while (pos + 9 <= bytes.size()) {
    const std::uint8_t type = bytes[pos];
    std::uint32_t len = 0;
    std::memcpy(&len, &bytes[pos + 1], 4);
    if (type == 1 &&
        std::memcmp(&bytes[pos + 9 + 2], "dev0/temp", 9) == 0) {
      bytes[pos + 9 + 20] ^= 0xFF;  // damage a header field
      corrupted = true;
      break;
    }
    pos += 9 + len;
  }
  ASSERT_TRUE(corrupted);
  {
    std::ofstream out(segs.back(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  const auto rec = manager.recover(store);
  // dev0/temp restored to its flush-1 epoch (a consistent older snapshot);
  // its post-flush-2 WAL batches were dropped, not grafted onto stale grid
  // positions. dev1/drops is untouched: full history incl. WAL replay.
  EXPECT_EQ(rec.stale_streams, 1u);
  EXPECT_EQ(rec.wal_records_replayed, 10u);  // read from the log...
  EXPECT_EQ(rec.wal_records_dropped, 5u);    // ...of which these not applied
  EXPECT_EQ(store.stats("dev0/temp").ingested_samples, 10u * 37u);
  EXPECT_EQ(store.stats("dev1/drops").ingested_samples, 25u * 23u);
}

TEST(StorageManager, CorruptTailBlockDropsTailInsteadOfResurrectingStaleOne) {
  TempDir dir("stale_tail");
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    cfg.truncate_existing = true;
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    store.set_ingest_sink(&manager);
    store.create_stream("dev/t", 1.0);
    // Flush 1 checkpoints a 31 x 5.0 tail (t = 64..95). The next batch
    // seals that tail into a chunk and leaves a fresh 7 x 2.0 tail at
    // t = 128 — so segment 1's tail is stale by flush 2.
    std::vector<double> first(64, 1.0);
    first.insert(first.end(), 31, 5.0);
    store.append_series("dev/t", first);
    manager.flush(store);
    store.append_series("dev/t", std::vector<double>(40, 2.0));
    manager.flush(store);
  }

  // Corrupt the LAST segment's tail block (type 3). The previous segment's
  // tail (31 x 1.0) is stale: it must NOT be served under the new header.
  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) segs.push_back(entry.path().string());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_EQ(segs.size(), 2u);
  auto bytes = sto::read_file(segs.back());
  std::size_t pos = 8;
  bool corrupted = false;
  while (pos + 9 <= bytes.size()) {
    const std::uint8_t type = bytes[pos];
    std::uint32_t len = 0;
    std::memcpy(&len, &bytes[pos + 1], 4);
    if (type == 3) {
      bytes[pos + 9] ^= 0xFF;
      corrupted = true;
      break;
    }
    pos += 9 + len;
  }
  ASSERT_TRUE(corrupted);
  {
    std::ofstream out(segs.back(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  const auto rec = manager.recover(store);
  EXPECT_EQ(rec.crc_skipped_blocks, 1u);
  // The tail is dropped (bounded, counted loss) — segment 1's 5.0 tail must
  // not reappear at segment 2's hot_t0 (t = 128, where 2.0s lived).
  const auto snap = store.snapshot_stream("dev/t");
  EXPECT_TRUE(snap.hot.empty());
  const auto series = store.query("dev/t", 128.0, 135.0);
  ASSERT_EQ(series.size(), 7u);
  for (const double v : series.values()) EXPECT_NE(v, 5.0);
}

TEST(StorageManager, TruncationAfterHeaderLeavesEmptyTailNotStaleOne) {
  TempDir dir("trunc_after_header");
  {
    sto::StorageConfig cfg;
    cfg.dir = dir.path;
    cfg.truncate_existing = true;
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    store.set_ingest_sink(&manager);
    store.create_stream("dev/t", 1.0);
    std::vector<double> first(64, 1.0);
    first.insert(first.end(), 31, 5.0);
    store.append_series("dev/t", first);  // tail 31 x 5.0 at t = 64
    manager.flush(store);
    store.append_series("dev/t", std::vector<double>(40, 2.0));
    manager.flush(store);  // seals the 5.0s; new tail 7 x 2.0 at t = 128
  }

  // Truncate the last segment right after its first (header) block: its
  // chunk + tail blocks vanish mid-file, the classic torn-copy shape.
  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) segs.push_back(entry.path().string());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_EQ(segs.size(), 2u);
  const auto bytes = sto::read_file(segs.back());
  std::uint32_t header_len = 0;
  std::memcpy(&header_len, &bytes[8 + 1], 4);
  // ... keeping the header plus a sliver of the chunk block's frame.
  sto::truncate_file(segs.back(), 8 + 9 + header_len + 10);

  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  const auto rec = manager.recover(store);
  EXPECT_GE(rec.crc_skipped_blocks, 1u);  // the truncated remainder
  EXPECT_EQ(rec.chunks_missing, 1u);      // the sealed chunk block is gone
  // Segment 1's stale 5.0 tail must NOT reappear at the new hot_t0 = 128.
  EXPECT_TRUE(store.snapshot_stream("dev/t").hot.empty());
  const auto series = store.query("dev/t", 128.0, 135.0);
  for (const double v : series.values()) EXPECT_NE(v, 5.0);
}

TEST(StorageManager, UnreadableSegmentDegradesRecoveryAndBlocksCompaction) {
  TempDir dir("unreadable_seg");
  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  cfg.truncate_existing = true;
  cfg.compact_min_segments = 100;
  {
    sto::StorageManager manager(cfg);
    mon::RetentionStore store(small_chunks());
    store.set_ingest_sink(&manager);
    create_workload_streams(store);
    ingest_workload(store, 10, 21);
    manager.flush(store);
    ingest_workload(store, 10, 22);
    manager.flush(store);
  }

  // Smash the FIRST segment's magic (bit rot on the file head).
  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) segs.push_back(entry.path().string());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_EQ(segs.size(), 2u);
  {
    std::ofstream out(segs.front(),
                      std::ios::binary | std::ios::in | std::ios::out);
    out.write("XXXXXXXX", 8);
  }

  // Compaction must refuse to fold (a rewrite would delete the only copy
  // of whatever the unreadable segment held)...
  sto::StorageConfig attach_cfg;
  attach_cfg.dir = dir.path;
  sto::StorageManager attach(attach_cfg);
  EXPECT_EQ(attach.compact(), 0u);

  // ...while recovery degrades past it with counted warnings and still
  // serves everything the surviving segment + WAL hold.
  mon::RetentionStore store(small_chunks());
  const auto rec = attach.recover(store);
  EXPECT_EQ(rec.segments_unreadable, 1u);
  EXPECT_EQ(rec.segments, 1u);
  EXPECT_EQ(rec.streams, 2u);
  EXPECT_GT(rec.chunks_missing, 0u);  // seg-1's chunks are gone
  const auto meta = store.meta("dev0/temp");
  EXPECT_GT(store.query("dev0/temp", meta.t0, meta.t_end).size(), 0u);
}

TEST(XorCodec, CorruptWindowThrowsInsteadOfUndefinedShift) {
  // Hand-craft a stream: one raw value, then control '11', lead=31,
  // sig=34 (lead + sig = 65 > 64) — the encoder never emits this; the
  // decoder must throw, not shift by a wrapped-around count. Bit layout
  // after the 8 raw bytes: 11 11111 100010 -> 0xFF 0x88.
  const std::vector<double> one = {1.0};
  auto bytes = sto::xor_encode(one);
  ASSERT_EQ(bytes.size(), 8u);  // raw first value, byte-aligned
  bytes.push_back(0xFF);
  bytes.push_back(0x88);
  EXPECT_THROW(sto::xor_decode(bytes, 2), std::runtime_error);
}

TEST(StorageManager, CompactionFoldsSegmentsPreservingData) {
  TempDir dir("compaction");
  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  cfg.truncate_existing = true;
  cfg.compact_min_segments = 100;  // no auto-compaction; we drive it
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  store.set_ingest_sink(&manager);
  create_workload_streams(store);
  for (int round = 0; round < 5; ++round) {
    ingest_workload(store, 8, 17 + static_cast<std::uint64_t>(round));
    manager.flush(store);
  }
  EXPECT_EQ(manager.stats().segments, 5u);

  const std::size_t folded = manager.compact();
  EXPECT_EQ(folded, 5u);
  EXPECT_EQ(manager.stats().segments, 1u);
  EXPECT_EQ(manager.stats().compactions, 1u);

  // The folded segment still recovers to the live store, bit-identically.
  sto::StorageConfig read_cfg;
  read_cfg.dir = dir.path;
  sto::StorageManager reopened(read_cfg);
  mon::RetentionStore cold(small_chunks());
  const auto rec = reopened.recover(cold);
  EXPECT_EQ(rec.segments, 1u);
  EXPECT_EQ(rec.crc_skipped_blocks, 0u);
  for (const std::string name : {"dev0/temp", "dev1/drops"}) {
    const auto meta = store.meta(name);
    EXPECT_EQ(cold.meta(name).generation, meta.generation);
    const auto a = store.query(name, meta.t0, meta.t_end);
    const auto b = cold.query(name, meta.t0, meta.t_end);
    EXPECT_TRUE(same_bits(a.values(), b.values())) << name;
  }

  // Delta flushes keep working after compaction.
  ingest_workload(store, 8, 99);
  const auto flushed = manager.flush(store);
  EXPECT_FALSE(flushed.skipped);
  EXPECT_EQ(manager.stats().segments, 2u);
}

TEST(StorageManager, BackgroundCompactionKicksInAfterFlushes) {
  TempDir dir("bg_compaction");
  sto::StorageConfig cfg;
  cfg.dir = dir.path;
  cfg.truncate_existing = true;
  cfg.compact_min_segments = 3;
  cfg.background_compaction = true;
  sto::StorageManager manager(cfg);
  mon::RetentionStore store(small_chunks());
  store.set_ingest_sink(&manager);
  create_workload_streams(store);
  for (int round = 0; round < 6; ++round) {
    ingest_workload(store, 4, 31 + static_cast<std::uint64_t>(round));
    manager.flush(store);
  }
  // The compactor runs asynchronously; give it a bounded grace period.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (manager.stats().compactions == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(manager.stats().compactions, 1u);
  EXPECT_LE(manager.stats().segments, cfg.compact_min_segments + 1);
}

// -------------------------------------------------- engine-level round trip --

TEST(StorageEngine, FivehundredPairColdStartIsBitIdentical) {
  TempDir dir("engine_roundtrip");
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 500;
  fleet_cfg.seed = 42;
  const tel::Fleet fleet(fleet_cfg);
  ASSERT_GE(fleet.size(), 500u);

  eng::EngineConfig cfg;
  cfg.workers = 4;
  cfg.samples_per_window = 48;
  cfg.windows_per_pair = 4;
  cfg.storage.dir = dir.path;
  eng::FleetMonitorEngine engine(fleet, cfg);
  const auto result = engine.run();
  ASSERT_TRUE(result.persisted);
  EXPECT_EQ(result.flush.streams, fleet.size());
  EXPECT_GT(result.storage.segment_bytes, 0u);
  EXPECT_GT(result.store.bytes_raw, result.store.bytes_stored);

  // Reopen cold with the geometry the manifest recorded.
  sto::StorageConfig read_cfg;
  read_cfg.dir = dir.path;
  sto::StorageManager reopened(read_cfg);
  mon::StoreConfig store_cfg = cfg.store;
  const auto geom = reopened.manifest_geometry();
  ASSERT_TRUE(geom.has_value());
  EXPECT_EQ(geom->chunk_samples, cfg.store.chunk_samples);
  mon::StripedRetentionStore cold(store_cfg, cfg.store_stripes);
  const auto rec = reopened.recover(cold);
  EXPECT_EQ(rec.streams, fleet.size());
  EXPECT_EQ(rec.crc_skipped_blocks, 0u);

  // Store-level equivalence: every stream's rollup and metadata match.
  const auto live_rollup = engine.store().rollup();
  const auto cold_rollup = cold.rollup();
  EXPECT_EQ(live_rollup.ingested_samples, cold_rollup.ingested_samples);
  EXPECT_EQ(live_rollup.stored_samples, cold_rollup.stored_samples);
  EXPECT_EQ(live_rollup.chunks, cold_rollup.chunks);
  EXPECT_EQ(live_rollup.bytes_raw, cold_rollup.bytes_raw);
  EXPECT_EQ(live_rollup.bytes_stored, cold_rollup.bytes_stored);

  // QueryEngine over the reopened store answers bit-identically to the
  // live serving session — exact streams and fleet-wide aggregates.
  qry::QueryEngine live_qe = engine.serve();
  qry::QueryEngine cold_qe(cold);

  std::vector<qry::QuerySpec> specs;
  for (const std::size_t pair_index : {std::size_t{0}, fleet.size() / 2}) {
    const auto& pair = fleet.pairs()[pair_index];
    qry::QuerySpec spec;
    spec.selector = tel::stream_id(pair);
    spec.t_begin = 0.0;
    spec.t_end = 64.0 * pair.metric.poll_interval_s;
    spec.step_s = pair.metric.poll_interval_s;
    specs.push_back(spec);
  }
  qry::QuerySpec agg;
  agg.selector = "*/" + tel::metric_name(tel::MetricKind::kTemperature);
  agg.t_begin = 0.0;
  agg.t_end = 1800.0;
  agg.step_s = 30.0;
  agg.aggregate = qry::Aggregation::kP95;
  specs.push_back(agg);

  for (const auto& spec : specs) {
    const auto live_resp = live_qe.run(spec);
    const auto cold_resp = cold_qe.run(spec);
    ASSERT_EQ(live_resp.result->matched.size(),
              cold_resp.result->matched.size());
    ASSERT_EQ(live_resp.result->series.size(),
              cold_resp.result->series.size());
    for (std::size_t i = 0; i < live_resp.result->series.size(); ++i) {
      const auto& a = live_resp.result->series[i];
      const auto& b = cold_resp.result->series[i];
      EXPECT_EQ(a.label, b.label);
      EXPECT_TRUE(same_bits(a.series.values(), b.series.values()))
          << spec.selector << " series " << a.label;
    }
  }
}

}  // namespace
