// Fleet-level aggregation of an engine run.
//
// Rolls per-pair outcomes up into per-metric-kind distributions of cost
// savings and reconstruction NRMSE (the fleet-scale analogue of the paper's
// Figure 4 reduction CDFs), plus the engine-wide cost/retention summary.
// Rendering reuses the analysis layer (Cdf quantiles, ASCII tables) and the
// whole report exports to CSV for downstream plotting.
//
// Ownership: reports are self-contained value types copied out of a
// FleetRunResult; they hold no references into the engine. Threading:
// build/render/write are pure functions of their input — safe to call
// concurrently on distinct results. Determinism: everything derived here
// is a pure fold over per-pair outcomes in pair order, so reports (and
// run_digest below) inherit the engine's bit-identical-across-workers
// guarantee; only wall_seconds and shard/worker accounting vary.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace nyqmon::eng {

/// Aggregates for one metric kind.
struct MetricFleetReport {
  tel::MetricKind kind = tel::MetricKind::kTemperature;
  std::size_t pairs = 0;
  std::vector<double> cost_savings;  ///< one entry per pair
  /// Finite NRMSE values only. A bursty counter whose ground truth stays
  /// flat over the run has no meaningful range normalization; those pairs
  /// are counted in nrmse_degenerate instead.
  std::vector<double> nrmse;
  std::size_t nrmse_degenerate = 0;
  std::size_t windows = 0;
  std::size_t aliased_windows = 0;
  std::size_t probe_windows = 0;
  /// Retention byte bill summed over this kind's pairs: raw f64 bytes vs
  /// the codec-encoded footprint (Nyquist re-sampling × Gorilla-XOR).
  std::uint64_t bytes_raw = 0;
  std::uint64_t bytes_stored = 0;

  double compression_ratio() const {
    return mon::ratio_or_one(bytes_raw, bytes_stored);
  }

  double aliased_fraction() const {
    return windows == 0 ? 0.0
                        : static_cast<double>(aliased_windows) /
                              static_cast<double>(windows);
  }
};

struct EngineReport {
  std::map<tel::MetricKind, MetricFleetReport> by_metric;
  /// Per-pair production_rate / final_rate: where the sampler settled after
  /// the probe/track transient. > 1 means the pair settled below its
  /// production rate (the paper's oversampling headroom); < 1 means the
  /// dual-rate detector kept firing and the sampler drove the rate up —
  /// the pair was undersampled at its production rate, so the extra cost
  /// buys back fidelity rather than being waste.
  std::vector<double> steady_rate_reduction;
  std::size_t pairs = 0;
  mon::Cost adaptive_cost;
  mon::Cost baseline_cost;
  double fleet_cost_savings = 0.0;
  mon::StoreRollup store;
  std::size_t workers_used = 0;
  std::size_t shards_used = 0;
  double wall_seconds = 0.0;
  /// Durable-tier outcome (meaningful when persisted: see FleetRunResult).
  bool persisted = false;
  sto::FlushStats flush;
  sto::StorageStats storage;
};

EngineReport build_report(const FleetRunResult& result);

/// Bitwise FNV-1a digest of a run's deterministic content: per-pair
/// outcomes (cost/NRMSE/sample counts/audit, NaN-safe via bit patterns)
/// plus the store fan-in aggregates. Two runs over the same fleet, seed
/// and config must digest identically whatever the worker count — the
/// compact form of the engine's determinism contract, shared by
/// bench_engine_throughput, bench_scenario_frontier and the scenario
/// tests. Excludes wall_seconds, shard accounting and durable-tier stats.
std::uint64_t run_digest(const FleetRunResult& result);

/// Render the per-metric quantile tables plus the fleet summary block.
std::string render(const EngineReport& report);

/// One CSV row per metric kind (savings/NRMSE quantiles, aliasing).
void write_csv(const EngineReport& report, const std::string& path);

}  // namespace nyqmon::eng
