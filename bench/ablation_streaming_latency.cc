// Ablation (Section 4.3): reconstruction latency vs fidelity.
// "This reconstruction takes time and may not be acceptable to applications
//  that expect low-latency."
//
// The offline reconstructor needs the whole trace; the streaming upsampler
// delivers each dense sample after a fixed delay of `half_taps` input
// periods. The harness sweeps that delay and reports fidelity against the
// offline (full-FFT) reconstruction and against ground truth.
#include <cstdio>

#include "common.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "reconstruct/streaming.h"
#include "signal/generators.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Ablation: streaming reconstruction latency vs fidelity "
              "===\n\n");

  Rng rng(1000);
  const auto proc = sig::make_bandlimited_process(0.01, 5.0, 24, rng, 40.0);
  const std::size_t factor = 4;
  const auto sparse = proc->sample(0.0, 10.0, 2048);  // 5x oversampled
  const auto truth = proc->sample(0.0, 10.0 / factor, 2048 * factor);

  // Offline reference: whole-trace Fourier reconstruction.
  const auto offline = rec::reconstruct(sparse, sparse.size() * factor);
  auto interior_rmse = [&](const sig::RegularSeries& recon) {
    std::vector<double> t_mid, r_mid;
    for (std::size_t i = recon.size() / 8; i < recon.size() * 7 / 8; ++i) {
      t_mid.push_back(truth[i]);
      r_mid.push_back(recon[i]);
    }
    return rec::rmse(t_mid, r_mid);
  };
  std::printf("offline (full-trace FFT) reference: RMSE %.5f, latency = "
              "whole trace (%zu samples)\n\n",
              interior_rmse(offline), sparse.size());

  AsciiTable table({"half taps", "delay (input samples)", "delay (s)",
                    "RMSE vs truth"});
  CsvWriter csv(bench::csv_path("ablation_streaming_latency"),
                {"half_taps", "delay_samples", "delay_s", "rmse"});

  for (std::size_t taps : {1u, 2u, 4u, 8u, 16u, 32u}) {
    rec::StreamingConfig cfg;
    cfg.factor = factor;
    cfg.half_taps = taps;
    const auto dense = rec::StreamingUpsampler::upsample(sparse, cfg);
    const double err = interior_rmse(dense);
    table.row({std::to_string(taps), std::to_string(taps),
               AsciiTable::format_double(static_cast<double>(taps) * 10.0),
               AsciiTable::format_double(err)});
    csv.row_numeric({static_cast<double>(taps), static_cast<double>(taps),
                     static_cast<double>(taps) * 10.0, err});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: a few input-sample periods of delay already get\n"
              "within a whisker of the offline reconstruction — the paper's\n"
              "latency concern is real but cheap to buy off.\n");
  return 0;
}
