// The production poller: turns a ground-truth signal into the trace a real
// monitoring system would record.
//
// Real collectors are imperfect — Section 3.2: "monitoring systems do not
// produce perfectly sampled signals — samples are not always spaced at
// equi-distant points in time". The poller models:
//   * timestamp jitter (a fraction of the polling interval),
//   * dropped polls (collector timeouts / lost reports),
//   * additive measurement noise,
//   * reading quantization (integer counters, rounded temperatures).
#pragma once

#include "dsp/quantize.h"
#include "signal/source.h"
#include "signal/timeseries.h"
#include "util/rng.h"

namespace nyqmon::tel {

struct PollerConfig {
  double interval_s = 60.0;
  /// Uniform timestamp jitter as a fraction of the interval (0 = none;
  /// 0.2 means each poll lands within +-20% of its nominal slot).
  double jitter_frac = 0.1;
  /// Probability that an individual poll is lost.
  double drop_prob = 0.01;
  /// Std-dev of additive Gaussian measurement noise (0 = noiseless).
  double noise_stddev = 0.0;
  /// Reading quantization step (0 = no quantization).
  double quantization_step = 0.0;
};

/// Poll `signal` over [t0, t0 + duration). Returns the (possibly jittered
/// and gappy) trace; at least two samples are guaranteed, otherwise the
/// function throws (duration too short for the interval).
sig::TimeSeries poll(const sig::ContinuousSignal& signal, double t0,
                     double duration_s, const PollerConfig& config, Rng& rng);

}  // namespace nyqmon::tel
