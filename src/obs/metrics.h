// Self-telemetry primitives: counters, gauges, and latency histograms.
//
// The system reproduces a paper about monitoring other systems' telemetry;
// this layer is the telemetry it keeps about itself. Three primitives, all
// designed so the hot path (engine windows, store appends, query serving)
// pays a few relaxed atomic operations and nothing else:
//
//   Counter    monotonic u64, striped over cache-line-padded cells indexed
//              by a thread-local slot — concurrent add() never contends on
//              one cache line; value() sums the cells.
//   Gauge      a single last-write-wins i64 (queue depths, backlogs).
//   Histogram  64 log2-width buckets of nanosecond values plus count/sum
//              and a CAS-maintained max. record() is lock-free and
//              wait-free except the (rare) max update; snapshots merge the
//              per-bucket totals written by every thread and interpolate
//              p50/p90/p99 inside the landing bucket.
//
// All metrics live in the process-wide Registry, created on first use and
// never removed — call sites cache the returned reference in a function-
// local static, so the registry mutex is paid once per site, not per event.
// Naming convention (enforced by tools/check_metrics_doc.py against the
// catalog in docs/OBSERVABILITY.md): `nyqmon_<layer>_<what>_<unit>` where
// the unit suffix is `_total` (counter), `_ns` (latency histogram), or
// `_bytes`/`_depth` (gauge).
//
// Counters and histograms are monotonic and racily-read by design: a
// value() or snapshot() taken while writers run is a consistent-enough
// sum (every completed add is eventually visible; a join or other
// happens-before edge makes it exact). reset() exists for tests and
// benches that need a clean slate and must only run while writers are
// quiesced.
//
// Compile-time kill switch: building with -DNYQMON_OBS_NOOP turns the
// NYQMON_OBS_* macros below into no-ops (the types stay available).
// bench/obs_overhead.cc holds the instrumented build to <3% overhead
// against that baseline.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nyqmon::obs {

/// Small dense thread id used to stripe counter cells: assigned once per
/// thread on first use, monotonically increasing from 0.
std::size_t thread_slot();

/// Monotonic counter, striped to keep concurrent writers off each other's
/// cache lines. value() is a relaxed sum — exact once writers are joined.
class Counter {
 public:
  static constexpr std::size_t kCells = 16;  // power of two

  void add(std::uint64_t n = 1) noexcept {
    cells_[thread_slot() & (kCells - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_{};
};

/// Last-write-wins instantaneous value (queue depths, reply backlogs).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time copy of a histogram, mergeable and queryable offline.
struct HistogramSnapshot {
  /// Bucket b (b >= 1) holds values v with bit_width(v) == b, i.e.
  /// v in [2^(b-1), 2^b - 1]; bucket 0 holds exactly v == 0.
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Inclusive lower/upper value bounds of bucket b.
  static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  static std::uint64_t bucket_hi(std::size_t b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
  }

  /// q in [0, 1]. Finds the bucket holding the q-th ranked value and
  /// interpolates linearly inside it (clamped to the observed max for the
  /// top occupied bucket). Returns 0 for an empty histogram.
  double quantile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  HistogramSnapshot& merge(const HistogramSnapshot& other);
};

/// Log2-bucketed latency histogram (values in nanoseconds by convention).
/// record() is a handful of relaxed atomics; no locks anywhere.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (v > m && !max_.compare_exchange_weak(m, v,
                                                std::memory_order_relaxed)) {
    }
  }

  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));  // 0 for v == 0
  }

  HistogramSnapshot snapshot() const;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII nanosecond timer: records the scope's duration on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(&h), t0_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

/// Process-wide metric registry. Lookup takes a mutex; instruments are
/// never removed, so the returned references stay valid for the process
/// lifetime and call sites cache them in function-local statics.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Snapshot of one histogram by name; an all-zero snapshot when the
  /// metric has never been registered (benches read through this).
  HistogramSnapshot histogram_snapshot(std::string_view name) const;
  /// Current value of one counter; 0 when never registered.
  std::uint64_t counter_value(std::string_view name) const;

  /// Prometheus text exposition of every registered metric, names sorted.
  /// Histograms render as summaries: quantile-labelled samples plus
  /// `_count`/`_sum`/`_max` series.
  std::string render_prometheus() const;

  /// Zero every instrument (registrations stay). Writers must be quiesced
  /// — tests and benches only.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace nyqmon::obs

// --------------------------------------------------------------- macros ----
// The instrumentation idiom: each macro caches the Registry reference in a
// function-local static, so steady state is the primitive's few relaxed
// atomics. NYQMON_OBS_NOOP compiles every site away (bench/obs_overhead.cc
// measures the difference).

#ifndef NYQMON_OBS_CAT
#define NYQMON_OBS_CAT2(a, b) a##b
#define NYQMON_OBS_CAT(a, b) NYQMON_OBS_CAT2(a, b)
#endif

#if defined(NYQMON_OBS_NOOP)

#define NYQMON_OBS_COUNT(name, n) \
  do {                            \
  } while (0)
#define NYQMON_OBS_GAUGE_SET(name, v) \
  do {                                \
  } while (0)
#define NYQMON_OBS_RECORD(name, v) \
  do {                             \
  } while (0)
#define NYQMON_OBS_TIMER(name)

#else

/// Add `n` to the counter `name`.
#define NYQMON_OBS_COUNT(name, n)                              \
  do {                                                         \
    static ::nyqmon::obs::Counter& nyqmon_obs_counter_ =       \
        ::nyqmon::obs::Registry::instance().counter(name);     \
    nyqmon_obs_counter_.add(n);                                \
  } while (0)

/// Set the gauge `name` to `v`.
#define NYQMON_OBS_GAUGE_SET(name, v)                          \
  do {                                                         \
    static ::nyqmon::obs::Gauge& nyqmon_obs_gauge_ =           \
        ::nyqmon::obs::Registry::instance().gauge(name);       \
    nyqmon_obs_gauge_.set(static_cast<std::int64_t>(v));       \
  } while (0)

/// Record value `v` (nanoseconds by convention) into histogram `name`.
#define NYQMON_OBS_RECORD(name, v)                             \
  do {                                                         \
    static ::nyqmon::obs::Histogram& nyqmon_obs_histo_ =       \
        ::nyqmon::obs::Registry::instance().histogram(name);   \
    nyqmon_obs_histo_.record(static_cast<std::uint64_t>(v));   \
  } while (0)

/// Time the rest of the enclosing scope into histogram `name`.
#define NYQMON_OBS_TIMER(name)                                             \
  static ::nyqmon::obs::Histogram& NYQMON_OBS_CAT(nyqmon_obs_th_,          \
                                                  __LINE__) =              \
      ::nyqmon::obs::Registry::instance().histogram(name);                 \
  ::nyqmon::obs::ScopedTimer NYQMON_OBS_CAT(nyqmon_obs_timer_, __LINE__)(  \
      NYQMON_OBS_CAT(nyqmon_obs_th_, __LINE__))

#endif  // NYQMON_OBS_NOOP
