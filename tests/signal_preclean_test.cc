// Pre-cleaning: nearest-neighbour regularization of jittered/gappy traces,
// NaN handling, duplicate collapsing — the paper's Section 3.2 pipeline
// front-end, including failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "signal/preclean.h"

namespace {

using nyqmon::sig::InterpKind;
using nyqmon::sig::PrecleanConfig;
using nyqmon::sig::PrecleanReport;
using nyqmon::sig::regularize;
using nyqmon::sig::Sample;
using nyqmon::sig::TimeSeries;

TEST(Preclean, PerfectGridPassesThrough) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.push(i * 5.0, i * 1.0);
  PrecleanConfig cfg;
  cfg.dt = 5.0;
  const auto rs = regularize(ts, cfg);
  ASSERT_EQ(rs.size(), 10u);
  EXPECT_DOUBLE_EQ(rs.dt(), 5.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rs[static_cast<std::size_t>(i)], i * 1.0);
}

TEST(Preclean, InfersDtFromMedianInterval) {
  TimeSeries ts;
  for (int i = 0; i < 20; ++i) ts.push(i * 2.0 + (i % 2 ? 0.05 : -0.05), 1.0);
  PrecleanReport report;
  const auto rs = regularize(ts, {}, &report);
  EXPECT_NEAR(report.chosen_dt, 2.0, 0.2);
  EXPECT_NEAR(rs.dt(), report.chosen_dt, 1e-12);
}

TEST(Preclean, NearestPicksClosestSample) {
  TimeSeries ts;
  ts.push(0.0, 10.0);
  ts.push(0.9, 20.0);  // closest to grid t=1
  ts.push(2.1, 30.0);  // closest to grid t=2
  ts.push(3.0, 40.0);
  PrecleanConfig cfg;
  cfg.dt = 1.0;
  const auto rs = regularize(ts, cfg);
  ASSERT_GE(rs.size(), 4u);
  EXPECT_DOUBLE_EQ(rs[0], 10.0);
  EXPECT_DOUBLE_EQ(rs[1], 20.0);
  EXPECT_DOUBLE_EQ(rs[2], 30.0);
  EXPECT_DOUBLE_EQ(rs[3], 40.0);
}

TEST(Preclean, LinearInterpolatesBetweenSamples) {
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(4.0, 40.0);
  PrecleanConfig cfg;
  cfg.dt = 1.0;
  cfg.interp = InterpKind::kLinear;
  const auto rs = regularize(ts, cfg);
  ASSERT_EQ(rs.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(rs[i], 10.0 * static_cast<double>(i), 1e-12);
}

TEST(Preclean, DropsNaNAndInf) {
  TimeSeries ts;
  ts.push(0.0, 1.0);
  ts.push(1.0, std::numeric_limits<double>::quiet_NaN());
  ts.push(2.0, std::numeric_limits<double>::infinity());
  ts.push(3.0, 4.0);
  PrecleanConfig cfg;
  cfg.dt = 1.0;
  PrecleanReport report;
  const auto rs = regularize(ts, cfg, &report);
  EXPECT_EQ(report.dropped_nonfinite, 2u);
  for (std::size_t i = 0; i < rs.size(); ++i)
    EXPECT_TRUE(std::isfinite(rs[i]));
}

TEST(Preclean, CollapsesDuplicateTimestamps) {
  TimeSeries ts;
  ts.push(0.0, 10.0);
  ts.push(0.0, 20.0);  // duplicate: averaged to 15
  ts.push(1.0, 30.0);
  PrecleanConfig cfg;
  cfg.dt = 1.0;
  PrecleanReport report;
  const auto rs = regularize(ts, cfg, &report);
  EXPECT_EQ(report.collapsed_duplicates, 1u);
  EXPECT_DOUBLE_EQ(rs[0], 15.0);
}

TEST(Preclean, FillsGapsAndReportsThem) {
  TimeSeries ts;
  ts.push(0.0, 1.0);
  ts.push(1.0, 1.0);
  ts.push(100.0, 2.0);  // 99-step gap
  ts.push(101.0, 2.0);
  PrecleanConfig cfg;
  cfg.dt = 1.0;
  PrecleanReport report;
  const auto rs = regularize(ts, cfg, &report);
  EXPECT_EQ(rs.size(), 102u);
  EXPECT_GT(report.filled_in_long_gaps, 50u);
  // Nearest-neighbour: first half of the gap holds 1.0, second half 2.0.
  EXPECT_DOUBLE_EQ(rs[10], 1.0);
  EXPECT_DOUBLE_EQ(rs[95], 2.0);
}

TEST(Preclean, TooFewSamplesThrows) {
  TimeSeries one;
  one.push(0.0, 1.0);
  EXPECT_THROW((void)regularize(one), std::invalid_argument);

  TimeSeries all_nan;
  all_nan.push(0.0, std::numeric_limits<double>::quiet_NaN());
  all_nan.push(1.0, std::numeric_limits<double>::quiet_NaN());
  all_nan.push(2.0, 1.0);
  EXPECT_THROW((void)regularize(all_nan), std::invalid_argument);
}

TEST(Preclean, ReportCountsInputs) {
  TimeSeries ts;
  for (int i = 0; i < 7; ++i) ts.push(i, 1.0);
  PrecleanReport report;
  (void)regularize(ts, {}, &report);
  EXPECT_EQ(report.input_samples, 7u);
  EXPECT_EQ(report.grid_points, 7u);
}

}  // namespace
