// Dynamic sampling-rate adaptation (paper Section 4.2).
//
// The sampler measures a live signal window by window and adjusts its rate:
//
//   * Each window the sampler acquires a primary stream at its operating
//     rate plus a checker stream at ratio * rate (non-integer ratio); the
//     Penny comparison of the two spectra on [0, rate/2) certifies or
//     indicts the operating rate. This is the "roughly doubles measurement
//     cost" configuration of Section 4.1.
//   * PROBE mode — while aliasing persists, multiplicatively increase the
//     rate ("we must probe, i.e., multiplicatively increase the measurement
//     rate along with the method in Section 4.1").
//   * TRACK mode — once a window is alias-free, run the Section 3.2
//     estimator on it and settle at headroom * estimated-Nyquist;
//     adaptively decrease when the estimate falls, and re-enter PROBE the
//     moment the dual-rate detector fires again.
//   * RATE MEMORY — optionally "remember previous maximum Nyquist rates to
//     ramp up more quickly in the future": on a new aliasing event, jump
//     straight to the remembered rate instead of doubling step by step.
//
// Every acquired sample (both detector streams) is counted, so experiments
// can report true measurement cost against a fixed-rate baseline.
#pragma once

#include <functional>
#include <vector>

#include "nyquist/aliasing_detector.h"
#include "nyquist/estimator.h"
#include "signal/timeseries.h"

namespace nyqmon::nyq {

struct AdaptiveConfig {
  double initial_rate_hz = 1.0 / 300.0;  ///< typical production default: 5 min
  double min_rate_hz = 1.0 / 7200.0;     ///< never slower than one sample/2h
  double max_rate_hz = 1.0;              ///< hardware/poller ceiling
  /// Multiplicative increase factor while probing.
  double probe_factor = 2.0;
  /// Sampling-rate headroom above the estimated Nyquist rate when tracking
  /// (the paper recommends "maintaining ample headroom").
  double headroom = 1.5;
  /// Maximum multiplicative decrease per window (gradual ramp-down).
  double max_decrease_factor = 2.0;
  /// Duration of each adaptation window (seconds).
  double window_duration_s = 3600.0;
  /// Remember the highest rate that was ever needed and jump straight back
  /// to it when aliasing recurs.
  bool use_rate_memory = true;
  /// While tracking, run the dual-rate check only every this many windows
  /// ("leverage temporal stability to make adaptation ... less expensive");
  /// probing windows always check. 1 = check every window.
  std::size_t recheck_interval_windows = 4;
  DetectorConfig detector;
  EstimatorConfig estimator;
};

enum class SamplerMode { kProbe, kTrack };

/// Per-window log entry.
struct AdaptiveStep {
  double window_start_s = 0.0;
  SamplerMode mode = SamplerMode::kProbe;
  double rate_hz = 0.0;            ///< primary acquisition rate this window
  bool aliasing_detected = false;  ///< dual-rate verdict for this window
  NyquistEstimate estimate;        ///< Section 3.2 estimate on the window
  double next_rate_hz = 0.0;       ///< rate chosen for the following window
  std::size_t samples_acquired = 0;///< primary + detector stream samples
};

struct AdaptiveRun {
  std::vector<AdaptiveStep> steps;
  /// All primary-stream samples (timestamps are real acquisition times).
  sig::TimeSeries collected;
  std::size_t total_samples = 0;   ///< includes detector overhead
  double final_rate_hz = 0.0;

  /// Samples a fixed-rate poller would have taken over the same span.
  std::size_t baseline_samples(double baseline_rate_hz) const;
  double duration_s = 0.0;
};

/// Post-hoc aliasing audit of one adaptive run: how often the dual-rate
/// detector fired, how long the sampler spent probing, and (per pair) the
/// rate ceiling it needed. The fleet engine rolls the window counts up per
/// metric to report which parts of the fleet are hard to track.
struct RunAudit {
  std::size_t windows = 0;
  std::size_t aliased_windows = 0;  ///< dual-rate verdict fired
  std::size_t probe_windows = 0;    ///< sampler was in PROBE mode
  double max_rate_hz = 0.0;         ///< highest primary rate used
  double final_rate_hz = 0.0;

  double aliased_fraction() const {
    return windows == 0 ? 0.0
                        : static_cast<double>(aliased_windows) /
                              static_cast<double>(windows);
  }
};

RunAudit audit_run(const AdaptiveRun& run);

class AdaptiveSampler {
 public:
  explicit AdaptiveSampler(AdaptiveConfig config = {});

  const AdaptiveConfig& config() const { return config_; }

  /// Run over [t0, t0 + duration): `measure(t)` returns the metric reading
  /// at time t (the live signal, possibly noisy/quantized).
  AdaptiveRun run(const std::function<double(double)>& measure, double t0,
                  double duration_s) const;

 private:
  AdaptiveConfig config_;
};

/// Incremental form of AdaptiveSampler::run for the streaming runtime: one
/// step_window() call acquires and adapts exactly one adaptation window, so
/// a deadline scheduler can interleave hundreds of pairs and serve queries
/// between windows. AdaptiveSampler::run() itself is implemented as
/// "construct a stepper, step until done, finish" — batch and streaming
/// drives are bit-identical by construction.
class AdaptiveStepper {
 public:
  /// Stream [t0, t0 + duration) in windows of config.window_duration_s.
  AdaptiveStepper(const AdaptiveConfig& config, double t0, double duration_s);

  bool done() const { return !(t_ + 1e-9 < t0_ + duration_s_); }

  /// Start of the next (not yet acquired) window; meaningless once done().
  double window_start_s() const { return t_; }

  /// Time at which the next window's data is complete — the deadline a
  /// scheduler should wake this pair at. Meaningless once done().
  double window_end_s() const;

  /// The rate the next window will be acquired at (the sampler's current
  /// operating rate, re-planned every window by the dual-rate detector).
  double current_rate_hz() const { return rate_; }

  /// Acquire one window at the current rate (plus the checker stream when
  /// the detector is due), adapt the rate, and log the step. Returns the
  /// step just taken. Must not be called once done().
  const AdaptiveStep& step_window(const std::function<double(double)>& measure);

  /// The run so far; collected/steps grow with every step_window().
  const AdaptiveRun& run_so_far() const { return run_; }

  /// Finalize and take the run. Requires done().
  AdaptiveRun finish();

 private:
  AdaptiveConfig config_;
  DualRateAliasingDetector detector_;
  NyquistEstimator estimator_;
  double t0_ = 0.0;
  double duration_s_ = 0.0;
  double t_ = 0.0;      ///< next window start
  double rate_ = 0.0;   ///< operating rate for the next window
  SamplerMode mode_ = SamplerMode::kProbe;
  double remembered_max_ = 0.0;
  std::size_t windows_since_check_ = 0;
  AdaptiveRun run_;
};

}  // namespace nyqmon::nyq
