// StorageManager — the durable tier under the retention store.
//
// Owns a directory with a three-part layout (canonical spec, including
// the MANIFEST line format and durability contract: docs/FORMATS.md):
//   MANIFEST        text file naming the live segments (in logical order),
//                   the active WAL, the next file sequence number, and the
//                   store geometry (chunk_samples/headroom) — committed
//                   atomically (tmp + rename + dir fsync);
//   seg-NNNNNN.seg  immutable compressed segments (storage/segment.h);
//   wal-NNNNNN.log  the active write-ahead log (storage/wal.h).
//
// Lifecycle:
//   * Attached as the store's IngestSink, it WAL-logs stream creations and
//     every append batch — a mid-run crash loses at most the records after
//     the last fsync (wal_sync_interval_batches).
//   * flush() checkpoints the store: chunks sealed since the last flush are
//     codec-encoded into a new delta segment, a fresh WAL replaces the old
//     one, and the manifest commit makes the whole step atomic. Requires
//     quiesced ingest (call it post-run or between batches; concurrent
//     appends may fall between the snapshot and the WAL swap).
//   * recover() rebuilds a store from the manifest: segments are merged in
//     order (CRC-bad blocks skipped with a counted warning), then the WAL
//     is replayed through the store's normal ingest path — chunk re-sealing
//     is deterministic, so the result is bit-identical to the live store at
//     the equivalent point. The torn tail, if any, is truncated so the log
//     can continue appending. Generation counters resume monotonically.
//   * Compaction folds all live segments into one (chunk order preserved);
//     opportunistically after flush once `compact_min_segments` accumulate,
//     on a background thread when `background_compaction` is set.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "monitor/store.h"
#include "monitor/striped_store.h"
#include "storage/wal.h"

namespace nyqmon::sto {

struct StorageConfig {
  /// Directory of the manifest/segments/WAL. Must be non-empty.
  std::string dir;
  /// Wipe any existing nyqmon layout in `dir` (fresh generation) instead of
  /// attaching to it. Attach mode requires recover() before any ingest.
  bool truncate_existing = false;
  /// fsync the WAL every N appended records (1 = every record). The
  /// durability window: a crash loses at most the unsynced records.
  std::size_t wal_sync_interval_batches = 64;
  /// Fold segments into one when a flush leaves more than this many live.
  std::size_t compact_min_segments = 8;
  /// Run compaction on a background thread instead of inline after flush().
  bool background_compaction = false;
};

/// Store geometry recorded in the manifest (at manager attach via
/// record_geometry(), and refreshed on every flush). WAL replay re-seals
/// chunks — the recovering store must be built with the same chunk size,
/// headroom, AND estimator settings for bit-identical recovery; recover()
/// enforces the match against everything recorded here.
struct StoreGeometry {
  std::size_t chunk_samples = 0;
  double headroom = 0.0;
  nyq::EstimatorConfig estimator;

  static StoreGeometry of(const mon::StoreConfig& config) {
    return {config.chunk_samples, config.headroom, config.estimator};
  }

  /// Apply the recorded geometry onto a StoreConfig (the cold-start hook).
  void apply(mon::StoreConfig& config) const {
    config.chunk_samples = chunk_samples;
    config.headroom = headroom;
    config.estimator = estimator;
  }

  bool matches(const mon::StoreConfig& config) const {
    const auto& e = config.estimator;
    return chunk_samples == config.chunk_samples &&
           headroom == config.headroom &&
           estimator.energy_cutoff == e.energy_cutoff &&
           estimator.detrend == e.detrend && estimator.window == e.window &&
           estimator.welch_segments == e.welch_segments &&
           estimator.aliased_bin_fraction == e.aliased_bin_fraction &&
           estimator.min_samples == e.min_samples;
  }
};

struct FlushStats {
  std::size_t streams = 0;
  std::size_t chunks = 0;        ///< chunk blocks written by this flush
  std::uint64_t samples = 0;     ///< samples represented (chunks + tails)
  std::uint64_t bytes_written = 0;  ///< size of the new segment file
  double seconds = 0.0;
  bool skipped = false;  ///< store had no streams; nothing written
};

struct RecoveryStats {
  std::size_t segments = 0;  ///< segments read successfully
  /// Manifest-listed segments that were missing or unreadable as files
  /// (bad magic, I/O error). Recovery degrades past them — streams whose
  /// newest state lived there surface via stale_streams/chunks_missing.
  std::size_t segments_unreadable = 0;
  std::size_t streams = 0;
  std::size_t chunks = 0;
  /// Corrupt segment blocks skipped (the counted warning).
  std::size_t crc_skipped_blocks = 0;
  /// Streams whose merged chunk count fell short of the header's cumulative
  /// count — the visible footprint of skipped chunk blocks.
  std::size_t chunks_missing = 0;
  /// Streams whose newest header block was corrupt: they restored to the
  /// previous flush's (consistent, older) state, and their WAL records —
  /// which belong to the newest epoch — were dropped rather than grafted
  /// onto stale grid positions.
  std::size_t stale_streams = 0;
  std::size_t wal_records_replayed = 0;
  std::size_t wal_records_dropped = 0;  ///< appends to stale/lost streams
  std::size_t wal_records_truncated = 0;  ///< torn tail dropped (0 or 1)
  std::uint64_t wal_bytes_replayed = 0;
  double seconds = 0.0;
};

/// Monotonic counters over the manager's lifetime plus the current layout.
struct StorageStats {
  std::size_t segments = 0;
  std::uint64_t segment_bytes = 0;  ///< on-disk bytes across live segments
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_records = 0;  ///< appended through this manager
  std::uint64_t wal_syncs = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  /// Raw bytes (8 × samples) represented by everything flushed so far vs
  /// the segment bytes holding them — the durable tier's compression view.
  std::uint64_t bytes_raw_flushed = 0;
  std::uint64_t crc_skipped_blocks = 0;     ///< seen by recover()/compact()
  std::uint64_t wal_records_truncated = 0;  ///< seen by recover()

  double disk_compression_ratio() const {
    return segment_bytes == 0 ? 1.0
                              : static_cast<double>(bytes_raw_flushed) /
                                    static_cast<double>(segment_bytes);
  }
};

class StorageManager final : public mon::IngestSink {
 public:
  explicit StorageManager(StorageConfig config);
  ~StorageManager() override;

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  // mon::IngestSink — thread-safe (serialized on the WAL lock).
  void on_create_stream(const std::string& name, double collection_rate_hz,
                        double t0) override;
  void on_append(const std::string& name,
                 std::span<const double> values) override;

  /// Force-fsync the WAL (normally automatic per the sync interval).
  void sync();

  /// Record the writing store's geometry in the manifest *now*, before any
  /// flush — so a mid-run crash (the WAL's whole reason to exist) still
  /// recovers with verified seal boundaries. The engine calls this at
  /// construction; flush() refreshes it. No-op when unchanged.
  void record_geometry(const mon::StoreConfig& config);

  /// Checkpoint the store (see class comment). Quiesced ingest required.
  FlushStats flush(const mon::RetentionStore& store);
  FlushStats flush(const mon::StripedRetentionStore& store);

  /// Rebuild `store` (which must be freshly constructed and empty) from the
  /// directory. Attach-mode managers must recover before any ingest.
  RecoveryStats recover(mon::RetentionStore& store);
  RecoveryStats recover(mon::StripedRetentionStore& store);

  /// Fold all live segments into one. Returns how many were folded (0 if
  /// fewer than two live segments).
  std::size_t compact();

  StorageStats stats() const;
  const StorageConfig& config() const { return config_; }
  const std::string& dir() const { return config_.dir; }

  /// Geometry recorded by the writing store's first flush; nullopt for a
  /// directory that has never been flushed. The cold-start hook: build the
  /// reading store's StoreConfig from this before recover().
  std::optional<StoreGeometry> manifest_geometry() const;

 private:
  struct Manifest {
    std::vector<std::string> segments;  ///< file names, logical order
    std::string wal;                    ///< active WAL file name
    std::uint64_t next_seq = 1;
    std::optional<StoreGeometry> geometry;
  };

  std::string path_of(const std::string& file) const;
  std::string seq_name(const char* prefix, const char* suffix);
  void write_manifest_locked();
  void read_manifest();
  void init_fresh_layout();
  void remove_orphans_locked();
  std::size_t compact_locked();
  void compaction_loop();

  template <typename Store>
  FlushStats flush_impl(const Store& store);
  template <typename Store>
  RecoveryStats recover_impl(Store& store);

  StorageConfig config_;

  /// Guards the manifest, segment set, flushed-chunk bookkeeping, and
  /// lifetime counters. Lock order: manifest_mu_ before wal_mu_ (flush
  /// takes both); the ingest path takes only wal_mu_.
  mutable std::mutex manifest_mu_;
  Manifest manifest_;
  std::map<std::string, std::size_t> flushed_chunks_;
  std::uint64_t segment_bytes_ = 0;
  StorageStats counters_;
  /// Set once (fresh layout, or after recover()) before ingest can begin;
  /// atomic because the ingest path reads it under wal_mu_ only.
  std::atomic<bool> recovered_{false};

  mutable std::mutex wal_mu_;
  std::unique_ptr<WriteAheadLog> wal_;

  std::condition_variable compact_cv_;
  bool compact_kick_ = false;
  bool stopping_ = false;
  std::thread compactor_;
};

}  // namespace nyqmon::sto
