// NyquistEstimator — the paper's Section 3.2 method. Ground truth is known
// for every synthetic input, so the estimator's accuracy is directly
// checkable: estimates must bracket the true Nyquist rate (2x band limit)
// for oversampled traces and report "aliased" for undersampled ones.
#include <gtest/gtest.h>

#include <cmath>

#include "nyquist/estimator.h"
#include "nyquist/reduction.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::nyq::classify_sampling;
using nyqmon::nyq::DetrendMode;
using nyqmon::nyq::EstimatorConfig;
using nyqmon::nyq::NyquistEstimate;
using nyqmon::nyq::NyquistEstimator;
using nyqmon::nyq::reduction_ratio;
using nyqmon::nyq::SamplingClass;
using nyqmon::sig::RegularSeries;
using nyqmon::sig::SumOfSines;
using nyqmon::sig::Tone;

using Verdict = NyquistEstimate::Verdict;

RegularSeries sample_tone(double tone_hz, double fs, std::size_t n) {
  const SumOfSines s({{tone_hz, 1.0, 0.4}});
  return s.sample(0.0, 1.0 / fs, n);
}

TEST(Estimator, RecoversToneNyquistRate) {
  // 1 Hz tone sampled at 50 Hz for 64 s: Nyquist estimate ~2 Hz.
  const auto trace = sample_tone(1.0, 50.0, 3200);
  const NyquistEstimator est;
  const auto r = est.estimate(trace);
  ASSERT_EQ(r.verdict, Verdict::kOk);
  EXPECT_NEAR(r.nyquist_rate_hz, 2.0, 0.1);
  EXPECT_NEAR(r.reduction_ratio(), 25.0, 2.0);
}

TEST(Estimator, OversampledTwoToneUsesHighestTone) {
  const SumOfSines s({{0.5, 1.0, 0.0}, {2.0, 0.8, 1.0}});
  const auto trace = s.sample(0.0, 1.0 / 64.0, 8192);
  const auto r = NyquistEstimator().estimate(trace);
  ASSERT_EQ(r.verdict, Verdict::kOk);
  EXPECT_NEAR(r.nyquist_rate_hz, 4.0, 0.2);
}

TEST(Estimator, ReportsAliasedWhenUndersampled) {
  // Broadband process (bw=50 Hz, flat spectrum) sampled at 4 Hz: folded
  // energy fills the whole measured band -> aliased verdict (paper: -1).
  Rng rng(11);
  const auto proc = nyqmon::sig::make_bandlimited_process(
      50.0, 1.0, 128, rng, 0.0, nyqmon::sig::SpectralShape::kFlat);
  const auto trace = proc->sample(0.0, 1.0 / 4.0, 2048);
  const auto r = NyquistEstimator().estimate(trace);
  EXPECT_EQ(r.verdict, Verdict::kAliased);
  EXPECT_DOUBLE_EQ(r.nyquist_rate_hz, -1.0);
  EXPECT_EQ(classify_sampling(r), SamplingClass::kUndersampled);
  EXPECT_FALSE(reduction_ratio(r).has_value());
}

TEST(Estimator, FlatSignalVerdict) {
  const RegularSeries flat(0.0, 1.0, std::vector<double>(512, 42.0));
  const auto r = NyquistEstimator().estimate(flat);
  EXPECT_EQ(r.verdict, Verdict::kFlat);
  EXPECT_DOUBLE_EQ(r.nyquist_rate_hz, 0.0);
  EXPECT_EQ(classify_sampling(r), SamplingClass::kOversampled);
}

TEST(Estimator, TooShortVerdict) {
  const RegularSeries tiny(0.0, 1.0, {1.0, 2.0, 3.0});
  const auto r = NyquistEstimator().estimate(tiny);
  EXPECT_EQ(r.verdict, Verdict::kTooShort);
  EXPECT_EQ(classify_sampling(r), SamplingClass::kUnknown);
}

TEST(Estimator, HigherCutoffNeverLowersEstimate) {
  // Monotonicity: the 99.99% band edge is at or above the 99% band edge
  // (the paper's discussion of cutoff choice).
  Rng rng(12);
  const auto proc = nyqmon::sig::make_bandlimited_process(0.02, 1.0, 48, rng);
  const auto trace = proc->sample(0.0, 5.0, 8192);
  double prev = 0.0;
  for (double cutoff : {0.9, 0.99, 0.999, 0.9999}) {
    EstimatorConfig cfg;
    cfg.energy_cutoff = cutoff;
    const auto r = NyquistEstimator(cfg).estimate(trace);
    ASSERT_EQ(r.verdict, Verdict::kOk) << cutoff;
    EXPECT_GE(r.nyquist_rate_hz, prev - 1e-12);
    prev = r.nyquist_rate_hz;
  }
}

TEST(Estimator, NoiseRobustnessOfNinetyNinePercentRule) {
  // A tone plus faint wideband noise: the 99% rule should ignore the noise
  // tail; demanding 100% of the energy would not.
  Rng rng(13);
  const SumOfSines tone({{0.5, 1.0, 0.0}});
  auto trace = tone.sample(0.0, 0.05, 4096);
  for (auto& v : trace.mutable_values()) v += rng.normal(0.0, 0.01);

  EstimatorConfig cfg99;
  cfg99.energy_cutoff = 0.99;
  const auto r99 = NyquistEstimator(cfg99).estimate(trace);
  ASSERT_EQ(r99.verdict, Verdict::kOk);
  EXPECT_NEAR(r99.nyquist_rate_hz, 1.0, 0.1);

  EstimatorConfig cfg100;
  cfg100.energy_cutoff = 1.0;
  const auto r100 = NyquistEstimator(cfg100).estimate(trace);
  // All-bins-needed: the noise makes the full-energy estimate aliased or
  // near the trace rate.
  EXPECT_TRUE(r100.verdict == Verdict::kAliased ||
              r100.nyquist_rate_hz > 5.0);
}

TEST(Estimator, LinearDetrendHandlesDriftingCounter) {
  // Tone on a strong linear ramp: without linear detrending the ramp's
  // broadband spectral content dominates.
  const SumOfSines tone({{0.2, 1.0, 0.0}});
  std::vector<double> v;
  for (int i = 0; i < 4096; ++i)
    v.push_back(tone.value(i * 0.1) + 0.05 * i);
  const RegularSeries trace(0.0, 0.1, v);

  EstimatorConfig lin;
  lin.detrend = DetrendMode::kLinear;
  const auto r = NyquistEstimator(lin).estimate(trace);
  ASSERT_EQ(r.verdict, Verdict::kOk);
  EXPECT_NEAR(r.nyquist_rate_hz, 0.4, 0.1);
}

TEST(Estimator, WelchSmoothingStillFindsBandEdge) {
  Rng rng(14);
  const auto proc = nyqmon::sig::make_bandlimited_process(0.01, 1.0, 32, rng);
  auto trace = proc->sample(0.0, 10.0, 8192);
  for (auto& v : trace.mutable_values()) v += rng.normal(0.0, 0.05);
  EstimatorConfig cfg;
  cfg.welch_segments = 8;
  const auto r = NyquistEstimator(cfg).estimate(trace);
  ASSERT_EQ(r.verdict, Verdict::kOk);
  EXPECT_GT(r.nyquist_rate_hz, 0.005);
  EXPECT_LT(r.nyquist_rate_hz, 0.03);
}

TEST(Estimator, QuantizedToneStillEstimates) {
  // Integer quantization (Section 4.3) adds wideband noise; the 99% rule
  // absorbs it.
  const SumOfSines tone({{0.02, 3.0, 0.0}}, /*dc=*/45.0);
  auto trace = tone.sample(0.0, 5.0, 4096);
  for (auto& v : trace.mutable_values()) v = std::round(v);
  const auto r = NyquistEstimator().estimate(trace);
  ASSERT_EQ(r.verdict, Verdict::kOk);
  EXPECT_NEAR(r.nyquist_rate_hz, 0.04, 0.01);
}

TEST(Estimator, ConfigValidation) {
  EstimatorConfig bad;
  bad.energy_cutoff = 0.0;
  EXPECT_THROW(NyquistEstimator{bad}, std::invalid_argument);
  bad.energy_cutoff = 1.5;
  EXPECT_THROW(NyquistEstimator{bad}, std::invalid_argument);
  EstimatorConfig small;
  small.min_samples = 2;
  EXPECT_THROW(NyquistEstimator{small}, std::invalid_argument);
  EstimatorConfig frac;
  frac.aliased_bin_fraction = 0.0;
  EXPECT_THROW(NyquistEstimator{frac}, std::invalid_argument);
}

TEST(Estimator, ReductionRatioThrowsUnlessOk) {
  NyquistEstimate bad;
  bad.verdict = Verdict::kAliased;
  EXPECT_THROW((void)bad.reduction_ratio(), std::invalid_argument);
}

TEST(Estimator, VerdictNames) {
  EXPECT_EQ(to_string(Verdict::kOk), "ok");
  EXPECT_EQ(to_string(Verdict::kAliased), "aliased");
  EXPECT_EQ(to_string(Verdict::kTooShort), "too-short");
  EXPECT_EQ(to_string(Verdict::kFlat), "flat");
}

TEST(SamplingClass, Names) {
  EXPECT_EQ(nyqmon::nyq::to_string(SamplingClass::kOversampled), "oversampled");
  EXPECT_EQ(nyqmon::nyq::to_string(SamplingClass::kUndersampled), "undersampled");
  EXPECT_EQ(nyqmon::nyq::to_string(SamplingClass::kAtRate), "at-rate");
  EXPECT_EQ(nyqmon::nyq::to_string(SamplingClass::kUnknown), "unknown");
}

// Property sweep: for a grid of (true bandwidth, oversampling factor) the
// estimator must land within a factor of ~2 of the true Nyquist rate and
// never *above* the trace rate.
class EstimatorSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EstimatorSweep, BracketsTrueNyquistRate) {
  const auto [bandwidth, oversample] = GetParam();
  Rng rng(static_cast<std::uint64_t>(bandwidth * 1e9) ^
          static_cast<std::uint64_t>(oversample * 100));
  const auto proc =
      nyqmon::sig::make_bandlimited_process(bandwidth, 1.0, 48, rng);
  const double true_nyquist = 2.0 * bandwidth;
  const double fs = true_nyquist * oversample;
  // Enough samples for ~40 periods of the slowest resolvable content.
  const auto trace = proc->sample(0.0, 1.0 / fs, 8192);

  const auto r = NyquistEstimator().estimate(trace);
  ASSERT_EQ(r.verdict, Verdict::kOk)
      << "bw=" << bandwidth << " os=" << oversample;
  // The 99% rule may sit below the hard band edge (red spectrum), but the
  // estimate must stay within [true/20, true*1.3] and below the trace rate.
  EXPECT_LE(r.nyquist_rate_hz, 1.3 * true_nyquist);
  EXPECT_GE(r.nyquist_rate_hz, true_nyquist / 20.0);
  EXPECT_LE(r.nyquist_rate_hz, fs);
  const double ratio = r.reduction_ratio();
  EXPECT_GE(ratio, oversample / 1.3);
}

INSTANTIATE_TEST_SUITE_P(
    BandwidthByOversampling, EstimatorSweep,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1, 1.0),
                       ::testing::Values(4.0, 16.0, 64.0, 256.0)));

}  // namespace
