#include "reconstruct/lowpass_reconstructor.h"

#include "dsp/filter.h"
#include "dsp/resample.h"
#include "util/check.h"

namespace nyqmon::rec {

sig::RegularSeries reconstruct(const sig::RegularSeries& sparse,
                               std::size_t n_out,
                               const ReconstructionConfig& config) {
  NYQMON_CHECK(!sparse.empty());
  NYQMON_CHECK_MSG(n_out >= sparse.size(),
                   "reconstruct only upsamples; n_out < input length");

  auto values = dsp::resample_fourier(sparse.span(), n_out);
  const double out_rate = static_cast<double>(n_out) /
                          (sparse.dt() * static_cast<double>(sparse.size()));
  if (config.lowpass_cutoff_hz) {
    NYQMON_CHECK(*config.lowpass_cutoff_hz > 0.0);
    values = dsp::ideal_lowpass(values, out_rate, *config.lowpass_cutoff_hz);
  }
  if (config.requantize) {
    values = config.requantize->apply(values);
  }
  // The reconstructed grid covers the same duration with n_out points:
  // dt_out = dt_in * n_in / n_out.
  const double dt_out = sparse.dt() * static_cast<double>(sparse.size()) /
                        static_cast<double>(n_out);
  return sig::RegularSeries(sparse.t0(), dt_out, std::move(values));
}

sig::RegularSeries round_trip(const sig::RegularSeries& dense,
                              std::size_t factor,
                              const ReconstructionConfig& config) {
  NYQMON_CHECK(factor >= 1);
  NYQMON_CHECK(!dense.empty());
  const auto down = dsp::decimate(dense.span(), factor);
  const sig::RegularSeries sparse(dense.t0(),
                                  dense.dt() * static_cast<double>(factor),
                                  down);
  return reconstruct(sparse, dense.size(), config);
}

}  // namespace nyqmon::rec
