#include "scenario/frontier.h"

#include <chrono>
#include <cmath>

#include "analysis/cdf.h"
#include "monitor/store.h"
#include "util/ascii.h"
#include "util/check.h"
#include "util/csv.h"

namespace nyqmon::scn {

namespace {

FrontierCell make_cell(const GroupRange& group,
                       const eng::FleetRunResult& result, double cutoff,
                       double slowdown) {
  FrontierCell cell;
  cell.group = group.name;
  cell.family = group.family;
  cell.metric = group.metric;
  cell.energy_cutoff = cutoff;
  cell.max_slowdown = slowdown;
  cell.pairs = group.pairs;

  std::size_t adaptive = 0, baseline = 0, windows = 0, aliased = 0;
  std::uint64_t bytes_raw = 0, bytes_stored = 0;
  std::vector<double> nrmse;
  nrmse.reserve(group.pairs);
  for (std::size_t i = group.first_pair; i < group.first_pair + group.pairs;
       ++i) {
    const eng::PairOutcome& p = result.pairs[i];
    adaptive += p.adaptive_samples;
    baseline += p.baseline_samples;
    windows += p.audit.windows;
    aliased += p.audit.aliased_windows;
    bytes_raw += p.store_bytes_raw;
    bytes_stored += p.store_bytes_stored;
    if (std::isfinite(p.nrmse))
      nrmse.push_back(p.nrmse);
    else
      ++cell.nrmse_degenerate;
  }
  cell.cost_savings = mon::ratio_or_one(baseline, adaptive);
  cell.byte_compression = mon::ratio_or_one(bytes_raw, bytes_stored);
  cell.aliased_fraction =
      windows == 0 ? 0.0
                   : static_cast<double>(aliased) / static_cast<double>(windows);
  if (!nrmse.empty()) {
    const ana::Cdf cdf(nrmse);
    cell.nrmse_p50 = cdf.quantile(0.50);
    cell.nrmse_p95 = cdf.quantile(0.95);
  }
  return cell;
}

}  // namespace

FrontierResult run_frontier(const BuiltScenario& built,
                            const FrontierConfig& config) {
  NYQMON_CHECK(!config.energy_cutoffs.empty());
  NYQMON_CHECK(!config.max_slowdowns.empty());
  const auto t_start = std::chrono::steady_clock::now();

  FrontierResult result;
  result.scenario = built.name;
  result.grid_points = config.energy_cutoffs.size() *
                       config.max_slowdowns.size();
  for (const double cutoff : config.energy_cutoffs) {
    for (const double slowdown : config.max_slowdowns) {
      eng::EngineConfig cfg = config.engine;
      cfg.sampler.estimator.energy_cutoff = cutoff;
      cfg.max_slowdown = slowdown;
      eng::FleetMonitorEngine engine(built.fleet, cfg);
      const eng::FleetRunResult run = engine.run();
      result.pair_runs += run.pairs.size();
      for (const GroupRange& group : built.groups)
        result.cells.push_back(make_cell(group, run, cutoff, slowdown));
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return result;
}

std::string render(const FrontierResult& result) {
  AsciiTable table({"group", "family", "cutoff", "max_slowdown", "pairs",
                    "savings", "nrmse_p50", "nrmse_p95", "bytes_x",
                    "aliased"});
  for (const FrontierCell& c : result.cells) {
    table.row({c.group, family_name(c.family),
               AsciiTable::format_double(c.energy_cutoff),
               AsciiTable::format_double(c.max_slowdown),
               std::to_string(c.pairs),
               AsciiTable::format_double(c.cost_savings),
               AsciiTable::format_double(c.nrmse_p50),
               AsciiTable::format_double(c.nrmse_p95),
               AsciiTable::format_double(c.byte_compression),
               AsciiTable::format_double(c.aliased_fraction)});
  }
  return table.render();
}

void write_csv(const FrontierResult& result, const std::string& path) {
  CsvWriter csv(path, {"group", "family", "metric", "energy_cutoff",
                       "max_slowdown", "pairs", "cost_savings", "nrmse_p50",
                       "nrmse_p95", "nrmse_degenerate", "byte_compression",
                       "aliased_fraction"});
  for (const FrontierCell& c : result.cells) {
    csv.row({c.group, family_name(c.family), tel::metric_name(c.metric),
             CsvWriter::format_double(c.energy_cutoff),
             CsvWriter::format_double(c.max_slowdown), std::to_string(c.pairs),
             CsvWriter::format_double(c.cost_savings),
             CsvWriter::format_double(c.nrmse_p50),
             CsvWriter::format_double(c.nrmse_p95),
             std::to_string(c.nrmse_degenerate),
             CsvWriter::format_double(c.byte_compression),
             CsvWriter::format_double(c.aliased_fraction)});
  }
}

}  // namespace nyqmon::scn
