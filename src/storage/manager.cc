#include "storage/manager.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>
#include <system_error>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/segment.h"
#include "util/check.h"

namespace nyqmon::sto {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "nyqmon-storage v1";

double elapsed_s(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

bool has_affix(const std::string& name, const char* prefix,
               const char* suffix) {
  const std::string p(prefix);
  const std::string s(suffix);
  return name.size() > p.size() + s.size() && name.rfind(p, 0) == 0 &&
         name.compare(name.size() - s.size(), s.size(), s) == 0;
}

}  // namespace

StorageManager::StorageManager(StorageConfig config)
    : config_(std::move(config)) {
  NYQMON_CHECK_MSG(!config_.dir.empty(), "StorageConfig.dir must be set");
  fs::create_directories(config_.dir);
  if (config_.truncate_existing || !fs::exists(path_of(kManifestName))) {
    init_fresh_layout();
  } else {
    read_manifest();
    for (const auto& seg : manifest_.segments) {
      std::error_code ec;
      const auto size = fs::file_size(path_of(seg), ec);
      if (!ec) segment_bytes_ += size;
    }
    // Attach mode: the WAL may have a torn tail and the segments unknown
    // contents — recover() must run before any ingest or flush.
  }
  if (config_.background_compaction)
    compactor_ = std::thread([this] { compaction_loop(); });
}

StorageManager::~StorageManager() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(manifest_mu_);
      stopping_ = true;
    }
    compact_cv_.notify_all();
    compactor_.join();
  }
  try {
    sync();
  } catch (...) {
    // Destructor best-effort; the periodic syncs already bounded the loss.
  }
}

std::string StorageManager::path_of(const std::string& file) const {
  return config_.dir + "/" + file;
}

std::string StorageManager::seq_name(const char* prefix, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%06" PRIu64 "%s", prefix,
                manifest_.next_seq++, suffix);
  return buf;
}

void StorageManager::init_fresh_layout() {
  // Drop any previous generation's files we recognize; leave foreign files.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == kManifestName || name == std::string(kManifestName) + ".tmp" ||
        has_affix(name, "seg-", ".seg") || has_affix(name, "wal-", ".log"))
      fs::remove(entry.path(), ec);
  }
  manifest_ = Manifest{};
  manifest_.next_seq = 1;
  manifest_.wal = seq_name("wal-", ".log");
  WriteAheadLog::create(path_of(manifest_.wal));
  write_manifest_locked();
  wal_ = std::make_unique<WriteAheadLog>(path_of(manifest_.wal),
                                         config_.wal_sync_interval_batches);
  recovered_ = true;
}

void StorageManager::write_manifest_locked() {
  std::ostringstream os;
  os << kManifestHeader << '\n';
  os << "next " << manifest_.next_seq << '\n';
  os << "wal " << manifest_.wal << '\n';
  if (manifest_.geometry) {
    const StoreGeometry& g = *manifest_.geometry;
    char buf[96];
    os << "chunk_samples " << g.chunk_samples << '\n';
    std::snprintf(buf, sizeof(buf), "headroom %.17g\n", g.headroom);
    os << buf;
    // The full sealing recipe: estimator settings change chunk re-sampling,
    // so recovery must verify them too (%.17g round-trips doubles exactly).
    std::snprintf(buf, sizeof(buf), "est_energy_cutoff %.17g\n",
                  g.estimator.energy_cutoff);
    os << buf;
    os << "est_detrend " << static_cast<int>(g.estimator.detrend) << '\n';
    os << "est_window " << static_cast<int>(g.estimator.window) << '\n';
    os << "est_welch " << g.estimator.welch_segments << '\n';
    std::snprintf(buf, sizeof(buf), "est_aliased_frac %.17g\n",
                  g.estimator.aliased_bin_fraction);
    os << buf;
    os << "est_min_samples " << g.estimator.min_samples << '\n';
  }
  for (const auto& seg : manifest_.segments) os << "segment " << seg << '\n';
  const std::string text = os.str();
  write_file_atomic(
      path_of(kManifestName),
      std::span(reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()));
}

void StorageManager::read_manifest() {
  const std::vector<std::uint8_t> bytes = read_file(path_of(kManifestName));
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  std::string line;
  NYQMON_CHECK_MSG(std::getline(is, line) && line == kManifestHeader,
                   "unrecognized manifest in " + config_.dir);
  manifest_ = Manifest{};
  StoreGeometry geom;
  bool have_chunk = false;
  bool have_headroom = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "next") {
      ls >> manifest_.next_seq;
    } else if (key == "wal") {
      ls >> manifest_.wal;
    } else if (key == "segment") {
      std::string name;
      ls >> name;
      manifest_.segments.push_back(name);
    } else if (key == "chunk_samples") {
      ls >> geom.chunk_samples;
      have_chunk = true;
    } else if (key == "headroom") {
      ls >> geom.headroom;
      have_headroom = true;
    } else if (key == "est_energy_cutoff") {
      ls >> geom.estimator.energy_cutoff;
    } else if (key == "est_detrend") {
      int v = 0;
      ls >> v;
      geom.estimator.detrend = static_cast<nyq::DetrendMode>(v);
    } else if (key == "est_window") {
      int v = 0;
      ls >> v;
      geom.estimator.window = static_cast<dsp::WindowType>(v);
    } else if (key == "est_welch") {
      ls >> geom.estimator.welch_segments;
    } else if (key == "est_aliased_frac") {
      ls >> geom.estimator.aliased_bin_fraction;
    } else if (key == "est_min_samples") {
      ls >> geom.estimator.min_samples;
    }
    // Unknown keys: forward-compatible skip.
  }
  NYQMON_CHECK_MSG(!manifest_.wal.empty(),
                   "manifest names no WAL in " + config_.dir);
  if (have_chunk && have_headroom) manifest_.geometry = geom;
}

void StorageManager::remove_orphans_locked() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool known =
        name == kManifestName || name == manifest_.wal ||
        std::find(manifest_.segments.begin(), manifest_.segments.end(),
                  name) != manifest_.segments.end();
    if (known) continue;
    if (name == std::string(kManifestName) + ".tmp" ||
        has_affix(name, "seg-", ".seg") || has_affix(name, "wal-", ".log"))
      fs::remove(entry.path(), ec);
  }
}

void StorageManager::on_create_stream(const std::string& name,
                                      double collection_rate_hz, double t0) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  NYQMON_CHECK_MSG(recovered_ && wal_ != nullptr,
                   "attach-mode StorageManager: recover() before ingest");
  wal_->append_create(name, collection_rate_hz, t0);
}

void StorageManager::on_append(const std::string& name,
                               std::span<const double> values) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  NYQMON_CHECK_MSG(recovered_ && wal_ != nullptr,
                   "attach-mode StorageManager: recover() before ingest");
  wal_->append_batch(name, values);
}

void StorageManager::sync() {
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (wal_) wal_->sync();
}

void StorageManager::record_geometry(const mon::StoreConfig& config) {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  NYQMON_CHECK_MSG(recovered_,
                   "attach-mode StorageManager: recover() before "
                   "record_geometry()");
  if (manifest_.geometry && manifest_.geometry->matches(config)) return;
  manifest_.geometry = StoreGeometry::of(config);
  write_manifest_locked();
}

template <typename Store>
FlushStats StorageManager::flush_impl(const Store& store) {
  NYQMON_TRACE_SPAN("flush", "storage");
  const auto t_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(manifest_mu_);
  NYQMON_CHECK_MSG(recovered_,
                   "attach-mode StorageManager: recover() before flush()");
  FlushStats out;
  // One snapshot acquisition replaces the per-stream locked
  // snapshot_stream() walk: stripe locks are held only during the brief
  // capture, and the (comparatively slow) segment encoding below runs
  // against the immutable epoch-stamped view.
  const mon::ReadSnapshot snapshot = store.acquire_snapshot();
  const std::vector<std::string> names = snapshot.stream_names();
  if (names.empty()) {
    out.skipped = true;
    return out;
  }

  SegmentWriter writer;
  std::vector<std::pair<std::string, std::size_t>> new_counts;
  new_counts.reserve(names.size());
  for (const auto& name : names) {
    const auto it = flushed_chunks_.find(name);
    const std::size_t skip = it == flushed_chunks_.end() ? 0 : it->second;
    const mon::StreamSnapshot snap = snapshot.export_stream(name, skip);
    new_counts.emplace_back(name, skip + snap.chunks.size());
    writer.add_stream(snap);
  }

  // 1. The immutable segment reaches disk (and the platters) first.
  const std::string seg = seq_name("seg-", ".seg");
  {
    File f = File::create(path_of(seg));
    f.write(writer.bytes());
    f.sync();
    f.close();
  }

  // 2. A fresh WAL: everything the old one protected is in the segment now.
  const std::string new_wal = seq_name("wal-", ".log");
  WriteAheadLog::create(path_of(new_wal));

  // 3. Commit point: one atomic manifest update names both. A crash before
  //    this line leaves the old manifest + old WAL (the new files are
  //    orphans, cleaned at next open); a crash after it is the new state.
  const std::string old_wal = manifest_.wal;
  manifest_.segments.push_back(seg);
  manifest_.wal = new_wal;
  manifest_.geometry = StoreGeometry::of(store.config());
  write_manifest_locked();

  // 4. Swap the live WAL and drop the superseded file.
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    if (wal_) {
      counters_.wal_records += wal_->batches();
      counters_.wal_syncs += wal_->syncs();
    }
    wal_ = std::make_unique<WriteAheadLog>(
        path_of(new_wal), config_.wal_sync_interval_batches);
  }
  std::error_code ec;
  fs::remove(path_of(old_wal), ec);

  for (const auto& [name, count] : new_counts) flushed_chunks_[name] = count;
  segment_bytes_ += writer.bytes().size();
  ++counters_.flushes;
  counters_.bytes_raw_flushed += sizeof(double) * writer.stats().samples;

  out.streams = writer.stats().streams;
  out.chunks = writer.stats().chunks;
  out.samples = writer.stats().samples;
  out.bytes_written = writer.bytes().size();
  out.seconds = elapsed_s(t_start);
  NYQMON_OBS_RECORD("nyqmon_storage_flush_ns", out.seconds * 1e9);
  NYQMON_OBS_COUNT("nyqmon_storage_flush_bytes_total", out.bytes_written);

  if (manifest_.segments.size() > config_.compact_min_segments) {
    if (config_.background_compaction) {
      compact_kick_ = true;
      compact_cv_.notify_one();
    } else {
      compact_locked();
    }
  }
  return out;
}

FlushStats StorageManager::flush(const mon::RetentionStore& store) {
  return flush_impl(store);
}

FlushStats StorageManager::flush(const mon::StripedRetentionStore& store) {
  return flush_impl(store);
}

template <typename Store>
RecoveryStats StorageManager::recover_impl(Store& store) {
  const auto t_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(manifest_mu_);
  NYQMON_CHECK_MSG(store.streams() == 0, "recover() needs an empty store");
  // The replay below drives the store's normal ingest path; make sure it
  // cannot echo into a sink (re-logging recovery would double the WAL).
  store.set_ingest_sink(nullptr);
  if (manifest_.geometry) {
    NYQMON_CHECK_MSG(
        manifest_.geometry->matches(store.config()),
        "store geometry (chunk_samples/headroom/estimator) differs from the "
        "manifest; WAL replay would re-seal chunks differently");
  }

  RecoveryStats out;
  std::map<std::string, mon::StreamSnapshot> streams;
  std::map<std::string, std::size_t> last_header_seg;
  for (std::size_t i = 0; i < manifest_.segments.size(); ++i) {
    try {
      const SegmentReadStats s =
          read_segment(path_of(manifest_.segments[i]), streams);
      out.crc_skipped_blocks += s.crc_skipped_blocks;
      for (const auto& name : s.header_streams) last_header_seg[name] = i;
      ++out.segments;
    } catch (const std::runtime_error&) {
      // Missing/unreadable file: degrade past it with a counted warning,
      // same contract as per-block corruption. Streams whose newest header
      // lived here fall out via the stale-stream guard below.
      ++out.segments_unreadable;
    }
  }

  // Every flush writes every stream a header, so in a healthy layout each
  // stream's newest header lives in the last segment. A stream whose last
  // good header is older lost its newest header to corruption and restored
  // to the previous flush's (consistent but stale) epoch — WAL records
  // belong to the newest epoch and must not be grafted onto it.
  std::set<std::string> stale;
  if (!manifest_.segments.empty()) {
    const std::size_t last = manifest_.segments.size() - 1;
    for (const auto& [name, snap] : streams) {
      const auto it = last_header_seg.find(name);
      if (it == last_header_seg.end() || it->second != last)
        stale.insert(name);
    }
  }
  out.stale_streams = stale.size();

  out.streams = streams.size();
  for (auto& [name, snap] : streams) {
    if (snap.chunks.size() < snap.stats.chunks)
      out.chunks_missing += snap.stats.chunks - snap.chunks.size();
    out.chunks += snap.chunks.size();
    flushed_chunks_[name] = snap.chunks.size();
    store.restore_stream(std::move(snap));
  }

  // WAL replay through the normal ingest path: re-sealing is deterministic,
  // so the store converges to exactly the pre-crash state (minus any torn
  // tail, which is truncated so the log can keep appending).
  const WalReplayStats wal_stats = WriteAheadLog::replay(
      path_of(manifest_.wal), [&](const WalRecord& rec) {
        if (rec.type == WalRecord::Type::kCreate) {
          if (!store.find_meta(rec.stream))
            store.create_stream(rec.stream, rec.collection_rate_hz, rec.t0);
        } else if (stale.count(rec.stream) != 0 ||
                   !store.find_meta(rec.stream)) {
          // Appends to stale or lost streams are dropped (counted), never
          // grafted onto wrong grid positions.
          ++out.wal_records_dropped;
        } else {
          store.append_series(rec.stream, rec.values);
        }
      });
  out.wal_records_replayed = wal_stats.records_replayed;
  out.wal_records_truncated = wal_stats.records_truncated;
  out.wal_bytes_replayed = wal_stats.bytes_replayed;

  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    wal_ = std::make_unique<WriteAheadLog>(
        path_of(manifest_.wal), config_.wal_sync_interval_batches);
  }
  remove_orphans_locked();
  counters_.crc_skipped_blocks += out.crc_skipped_blocks;
  counters_.wal_records_truncated += out.wal_records_truncated;
  recovered_ = true;
  out.seconds = elapsed_s(t_start);
  return out;
}

RecoveryStats StorageManager::recover(mon::RetentionStore& store) {
  return recover_impl(store);
}

RecoveryStats StorageManager::recover(mon::StripedRetentionStore& store) {
  return recover_impl(store);
}

std::size_t StorageManager::compact_locked() {
  if (manifest_.segments.size() < 2) return 0;
  NYQMON_OBS_TIMER("nyqmon_storage_compact_ns");
  NYQMON_TRACE_SPAN("compact", "storage");
  std::map<std::string, mon::StreamSnapshot> streams;
  std::size_t skipped = 0;
  for (const auto& seg : manifest_.segments) {
    try {
      skipped += read_segment(path_of(seg), streams).crc_skipped_blocks;
    } catch (const std::runtime_error&) {
      // An unreadable input makes folding lossy (the rewrite would delete
      // the one copy of whatever it held): leave the layout as-is and let
      // recover() degrade with its counted warnings instead.
      return 0;
    }
  }

  SegmentWriter writer;
  for (const auto& [name, snap] : streams) writer.add_stream(snap);
  const std::string seg = seq_name("seg-", ".seg");
  {
    File f = File::create(path_of(seg));
    f.write(writer.bytes());
    f.sync();
    f.close();
  }

  std::vector<std::string> old = std::move(manifest_.segments);
  manifest_.segments = {seg};
  write_manifest_locked();
  std::error_code ec;
  for (const auto& name : old) fs::remove(path_of(name), ec);

  segment_bytes_ = writer.bytes().size();
  ++counters_.compactions;
  NYQMON_OBS_COUNT("nyqmon_storage_compactions_total", 1);
  counters_.crc_skipped_blocks += skipped;
  return old.size();
}

std::size_t StorageManager::compact() {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return compact_locked();
}

void StorageManager::compaction_loop() {
  std::unique_lock<std::mutex> lock(manifest_mu_);
  while (true) {
    compact_cv_.wait(lock, [this] { return stopping_ || compact_kick_; });
    if (stopping_) return;
    compact_kick_ = false;
    if (manifest_.segments.size() > config_.compact_min_segments)
      compact_locked();
  }
}

StorageStats StorageManager::stats() const {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  StorageStats s = counters_;
  s.segments = manifest_.segments.size();
  s.segment_bytes = segment_bytes_;
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    if (wal_) {
      s.wal_bytes = wal_->bytes();
      s.wal_records += wal_->batches();
      s.wal_syncs += wal_->syncs();
    }
  }
  return s;
}

std::optional<StoreGeometry> StorageManager::manifest_geometry() const {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return manifest_.geometry;
}

}  // namespace nyqmon::sto
