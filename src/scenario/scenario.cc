#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "scenario/waveforms.h"
#include "signal/generators.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace nyqmon::scn {

namespace {

constexpr double kDay = 86400.0;

/// Sentinel stream index for a group's shared (correlated) component.
constexpr std::size_t kSharedIndex = std::numeric_limits<std::size_t>::max();

/// Group knobs with every kUnset resolved against the metric spec.
struct ResolvedGroup {
  tel::MetricKind metric = tel::MetricKind::kTemperature;
  double poll_interval_s = 0.0;
  double bandwidth_lo_hz = 0.0;
  double bandwidth_hi_hz = 0.0;
  double dc_level = 0.0;
  double fluctuation_rms = 0.0;
  double quantization_step = 0.0;
  double horizon_s = 0.0;
  /// The span a standard run drives (spec.run_samples production samples):
  /// regime and outage windows are placed inside it so the driven portion
  /// of the trace exhibits the declared behaviour.
  double run_window_s = 0.0;
};

ResolvedGroup resolve(const StreamGroupSpec& g, std::size_t run_samples) {
  ResolvedGroup r;
  r.metric = effective_metric(g);
  const tel::MetricSpec& ms = tel::metric_spec(r.metric);
  r.poll_interval_s = g.is_set(g.poll_interval_s) ? g.poll_interval_s
                                                  : ms.poll_interval_s;
  r.bandwidth_lo_hz =
      g.is_set(g.bandwidth_lo_hz) ? g.bandwidth_lo_hz : ms.bandwidth_lo_hz;
  r.bandwidth_hi_hz =
      g.is_set(g.bandwidth_hi_hz) ? g.bandwidth_hi_hz : ms.bandwidth_hi_hz;
  r.dc_level = g.is_set(g.dc_level) ? g.dc_level : ms.dc_level;
  r.fluctuation_rms =
      g.is_set(g.fluctuation_rms) ? g.fluctuation_rms : ms.fluctuation_rms;
  r.quantization_step = g.is_set(g.quantization_step) ? g.quantization_step
                                                      : ms.quantization_step;
  // Event trains must cover any plausible run: twice the declared run
  // geometry, with the metric's own study duration as the floor.
  r.run_window_s = static_cast<double>(run_samples) * r.poll_interval_s;
  r.horizon_s = std::max(ms.trace_duration_s, 2.0 * r.run_window_s);
  return r;
}

/// The group's base waveform for one stream (dc folded in only when
/// `with_dc` — the shared correlated component is built around zero so the
/// weighted mix does not double the DC level).
std::shared_ptr<const sig::ContinuousSignal> make_family_signal(
    SignalFamily family, const ResolvedGroup& r, bool with_dc, Rng& rng) {
  const double dc = with_dc ? r.dc_level : 0.0;
  const double rms = r.fluctuation_rms;
  const double bandwidth =
      rng.log_uniform(r.bandwidth_lo_hz, r.bandwidth_hi_hz);

  switch (family) {
    case SignalFamily::kDiurnal: {
      auto composite = std::make_shared<sig::CompositeSignal>();
      const auto harmonics =
          static_cast<std::size_t>(1 + rng.index(3));  // 1..3
      composite->add(
          sig::make_diurnal(rms * rng.uniform(1.0, 2.0), harmonics, rng, dc));
      composite->add(sig::make_bandlimited_process(bandwidth, rms * 0.4, 24,
                                                   rng));
      return composite;
    }
    case SignalFamily::kSeasonal: {
      // Weekly fundamental plus two harmonics with decaying amplitudes —
      // the multi-day analogue of the diurnal shape.
      const double f0 = 1.0 / (7.0 * kDay);
      std::vector<sig::Tone> tones;
      double amp = rms;
      for (std::size_t h = 1; h <= 3; ++h) {
        tones.push_back({f0 * static_cast<double>(h), amp,
                         rng.uniform(0.0, 2.0 * M_PI)});
        amp *= rng.uniform(0.25, 0.5);
      }
      auto composite = std::make_shared<sig::CompositeSignal>();
      composite->add(std::make_shared<sig::SumOfSines>(std::move(tones), dc));
      composite->add(
          sig::make_bandlimited_process(bandwidth, rms * 0.2, 16, rng));
      return composite;
    }
    case SignalFamily::kGauge:
      return sig::make_bandlimited_process(bandwidth, rms, 32, rng, dc);
    case SignalFamily::kBursty: {
      const double sigma = 0.8365 / bandwidth;
      const double bursts_per_day = rng.uniform(8.0, 40.0);
      return sig::make_burst_process(r.horizon_s, bursts_per_day / kDay,
                                     sigma, rms, rng, dc);
    }
    case SignalFamily::kHeavyTailed: {
      // Poisson arrivals with Pareto(alpha=1.5) amplitudes: most bursts are
      // small, the occasional one is an order of magnitude above the scale
      // (capped at 50x so a single draw cannot swamp NRMSE normalization).
      const double sigma = 0.8365 / bandwidth;
      const double rate_per_s = rng.uniform(8.0, 40.0) / kDay;
      std::vector<sig::GaussianBumpTrain::Bump> bumps;
      double t = rng.exponential(rate_per_s);
      while (t < r.horizon_s) {
        const double amp = std::min(rng.pareto(rms * 0.4, 1.5), rms * 50.0);
        bumps.push_back({t, amp});
        t += rng.exponential(rate_per_s);
      }
      return std::make_shared<sig::GaussianBumpTrain>(std::move(bumps), sigma,
                                                      dc);
    }
    case SignalFamily::kRegimeSwitching: {
      // A calm slow wander that starts flapping during 1-2 active regimes
      // and calms down again — the adaptive sampler's probe/track workload
      // at fleet scale. The flapping component is gated *smoothly* (an
      // inverted OutageGate: zero outside its active windows), so the
      // signal stays continuous and band-limited while its local band
      // limit switches by ~50x at the regime boundaries. Regimes are
      // placed inside the standard run window; the calm wander's band
      // limit is floored at a few cycles per run so quantization never
      // dominates a near-flat driven trace.
      auto calm = sig::make_bandlimited_process(
          std::max(bandwidth * 0.02, 3.0 / r.run_window_s), rms * 0.4, 16,
          rng, dc);
      auto flappy = sig::make_flap_process(
          r.horizon_s, rng.uniform(8.0, 24.0) / r.run_window_s,
          1.4 / bandwidth, rms, rng, 0.0);

      const std::size_t regimes = 1 + rng.index(2);  // 1..2 active windows
      std::vector<double> edges;                     // regime boundaries
      for (std::size_t s = 0; s < 2 * regimes; ++s)
        edges.push_back(
            rng.uniform(0.05 * r.run_window_s, 0.95 * r.run_window_s));
      std::sort(edges.begin(), edges.end());
      // Complement intervals: the gate dips to zero *outside* the active
      // regimes, leaving the flap process visible only inside them.
      std::vector<OutageWindow> off;
      off.push_back({-2.0 * r.horizon_s, edges[0]});
      for (std::size_t s = 1; s + 1 < edges.size(); s += 2)
        off.push_back({edges[s], edges[s + 1]});
      off.push_back({edges.back(), 3.0 * r.horizon_s});
      const double edge_width = std::max(0.01 * r.run_window_s,
                                         4.0 * r.poll_interval_s);
      auto gated = std::make_shared<OutageGate>(std::move(flappy),
                                                std::move(off), edge_width,
                                                0.0);

      auto composite = std::make_shared<sig::CompositeSignal>();
      composite->add(std::move(calm));
      composite->add(std::move(gated));
      return composite;
    }
    case SignalFamily::kMonotoneCounter: {
      // Non-decreasing by construction: a positive linear drift plus a
      // train of positive smooth steps (traffic-byte-counter shape).
      const double width = 1.4 / bandwidth;
      const double steps_per_day = rng.uniform(10.0, 50.0);
      const double rate_per_s = steps_per_day / kDay;
      std::vector<sig::SmoothStepTrain::Step> steps;
      double t = rng.exponential(rate_per_s);
      while (t < r.horizon_s) {
        steps.push_back({t, rms * rng.log_uniform(0.2, 3.0)});
        t += rng.exponential(rate_per_s);
      }
      auto train = std::make_shared<sig::SmoothStepTrain>(std::move(steps),
                                                          width, 0.0);
      const double slope = rms * rng.uniform(2.0, 8.0) / kDay;
      return std::make_shared<LinearDrift>(std::move(train), dc, slope);
    }
  }
  throw std::logic_error("make_family_signal: unknown SignalFamily");
}

/// One stream's fully composed signal: weighted shared+own mix, then the
/// outage gate, then the clock warp (outages happen in device-local time).
std::shared_ptr<const sig::ContinuousSignal> make_stream_signal(
    const StreamGroupSpec& g, const ResolvedGroup& r,
    const std::shared_ptr<const sig::ContinuousSignal>& shared, Rng& rng) {
  std::shared_ptr<const sig::ContinuousSignal> signal =
      make_family_signal(g.family, r, /*with_dc=*/true, rng);

  if (g.correlation > 0.0) {
    NYQMON_CHECK(shared != nullptr);
    auto mixed = std::make_shared<sig::CompositeSignal>();
    mixed->add(shared, g.correlation);
    mixed->add(signal, 1.0 - g.correlation);
    signal = mixed;
  }

  if (g.dropout_per_day > 0.0) {
    std::vector<OutageWindow> outages;
    double t = rng.exponential(g.dropout_per_day / kDay);
    while (t < r.horizon_s) {
      const double len = g.dropout_duration_s * rng.uniform(0.5, 1.5);
      outages.push_back({t, t + len});
      t += len + rng.exponential(g.dropout_per_day / kDay);
    }
    // Edge width bounded below by the polling interval so the gate's own
    // band limit stays near the production Nyquist rate instead of making
    // every outage an unresolvable wideband event.
    const double edge =
        std::max(4.0 * r.poll_interval_s, 0.1 * g.dropout_duration_s);
    signal = std::make_shared<OutageGate>(std::move(signal),
                                          std::move(outages), edge,
                                          r.dc_level);
  }

  if (g.clock_skew_max_s > 0.0 || g.clock_drift_max_ppm > 0.0) {
    const double offset = g.clock_skew_max_s > 0.0
                              ? rng.uniform(-g.clock_skew_max_s,
                                            g.clock_skew_max_s)
                              : 0.0;
    const double drift = g.clock_drift_max_ppm > 0.0
                             ? rng.uniform(-g.clock_drift_max_ppm,
                                           g.clock_drift_max_ppm) * 1e-6
                             : 0.0;
    signal = std::make_shared<ClockWarp>(std::move(signal), offset, drift);
  }
  return signal;
}

}  // namespace

std::uint64_t stream_seed(const ScenarioSpec& spec,
                          const StreamGroupSpec& group, std::size_t index) {
  Fnv1a h;
  h.mix(spec.seed);
  h.mix(fnv1a(group.name));
  h.mix(static_cast<std::uint64_t>(index) + 1);
  return h.value();
}

BuiltScenario build_scenario(const ScenarioSpec& spec) {
  validate(spec);
  const std::size_t total = spec.total_streams();

  // Size the synthetic topology to the stream count: one device per stream,
  // assigned in sequence (a default pod contributes 42 devices + 4 core).
  tel::TopologyConfig topo_cfg;
  const std::size_t per_pod =
      topo_cfg.racks_per_pod * (1 + topo_cfg.servers_per_rack) +
      topo_cfg.agg_per_pod;
  topo_cfg.pods = std::max<std::size_t>(1, (total + per_pod - 1) / per_pod);
  tel::Topology topology(topo_cfg);
  NYQMON_ENSURE(topology.size() >= total);
  const auto& devices = topology.devices();

  std::vector<tel::FleetPair> pairs;
  pairs.reserve(total);
  std::vector<GroupRange> ranges;

  std::size_t next_device = 0;
  for (const auto& g : spec.groups) {
    const ResolvedGroup r = resolve(g, spec.run_samples);

    // The group-shared component for correlated streams: built around zero
    // from the group's own sentinel seed, shared by pointer.
    std::shared_ptr<const sig::ContinuousSignal> shared;
    if (g.correlation > 0.0) {
      Rng shared_rng(stream_seed(spec, g, kSharedIndex));
      shared = make_family_signal(g.family, r, /*with_dc=*/false, shared_rng);
    }

    GroupRange range;
    range.name = g.name;
    range.family = g.family;
    range.metric = r.metric;
    range.first_pair = pairs.size();
    range.pairs = g.streams;

    for (std::size_t i = 0; i < g.streams; ++i) {
      Rng rng(stream_seed(spec, g, i));
      tel::FleetPair pair;
      pair.device = devices[next_device++];
      pair.metric.kind = r.metric;
      pair.metric.signal = make_stream_signal(g, r, shared, rng);
      pair.metric.true_bandwidth_hz = pair.metric.signal->bandwidth_hz();
      pair.metric.poll_interval_s = r.poll_interval_s;
      pair.metric.quantization_step = r.quantization_step;
      pair.metric.trace_duration_s = r.horizon_s;
      pairs.push_back(std::move(pair));
    }
    ranges.push_back(std::move(range));
  }

  return BuiltScenario{spec.name,
                       tel::Fleet(std::move(topology), std::move(pairs)),
                       std::move(ranges)};
}

ScenarioSpec default_scenario(std::size_t target_streams, std::uint64_t seed) {
  NYQMON_CHECK_MSG(target_streams >= 7,
                   "default_scenario needs at least one stream per family");
  ScenarioSpec spec;
  spec.name = "default-mix";
  spec.seed = seed;

  // Family weights roughly matching a production fleet: mostly gauges and
  // event counters, a thin tail of regime-switchers.
  struct Slot {
    const char* name;
    SignalFamily family;
    double weight;
  };
  const Slot slots[kFamilyCount] = {
      {"diurnal-temps", SignalFamily::kDiurnal, 0.20},
      {"seasonal-memory", SignalFamily::kSeasonal, 0.10},
      {"util-gauges", SignalFamily::kGauge, 0.25},
      {"drop-bursts", SignalFamily::kBursty, 0.15},
      {"fcs-heavy-tail", SignalFamily::kHeavyTailed, 0.10},
      {"lossy-regimes", SignalFamily::kRegimeSwitching, 0.10},
      {"byte-counters", SignalFamily::kMonotoneCounter, 0.10},
  };

  std::size_t assigned = 0;
  for (const Slot& s : slots) {
    StreamGroupSpec g;
    g.name = s.name;
    g.family = s.family;
    g.streams = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(s.weight * static_cast<double>(target_streams))));
    assigned += g.streams;
    spec.groups.push_back(std::move(g));
  }
  // Put the rounding remainder on the biggest group (gauges).
  if (assigned < target_streams)
    spec.groups[2].streams += target_streams - assigned;

  // Exercise the orthogonal modifiers on a subset of groups.
  spec.groups[0].correlation = 0.5;          // temperatures move together
  spec.groups[2].clock_skew_max_s = 5.0;     // skewed gauge pollers
  spec.groups[2].clock_drift_max_ppm = 200.0;
  // Flaky burst exporters: ~2 outages across a standard 512-sample run
  // (UnicastDrops polls every 15 s, so a run spans ~2 hours).
  spec.groups[3].dropout_per_day = 24.0;
  spec.groups[3].dropout_duration_s = 600.0;

  validate(spec);
  return spec;
}

}  // namespace nyqmon::scn
