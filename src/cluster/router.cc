#include "cluster/router.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nyqmon::clu {

namespace {

/// "k of n backends failed" — the ERR message of a partial-failure reply;
/// the detail block carries the per-node reasons.
std::string partial_failure_message(std::size_t failed, std::size_t total) {
  return "partial failure: " + std::to_string(failed) + " of " +
         std::to_string(total) + " backends failed";
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::vector<std::uint8_t> text_frame(const std::string& text,
                                     std::size_t max_frame_bytes,
                                     const char* what) {
  if (text.size() >= max_frame_bytes)
    return srv::error_frame(std::string(what) + " exceeds the frame cap");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(text.data());
  return srv::ok_frame(std::span<const std::uint8_t>(bytes, text.size()));
}

}  // namespace

NyqmonRouter::NyqmonRouter(RouterConfig config)
    : config_(std::move(config)), cluster_(config_.cluster) {}

NyqmonRouter::~NyqmonRouter() { stop(); }

void NyqmonRouter::start() {
  srv::ServerConfig front;
  front.bind_address = config_.bind_address;
  front.port = config_.port;
  front.max_frame_bytes = config_.max_frame_bytes;
  front.max_reply_queue_bytes = config_.max_reply_queue_bytes;
  front.max_reply_queue_frames = config_.max_reply_queue_frames;
  front.slow_client_timeout_ms = config_.slow_client_timeout_ms;
  front.node_name = config_.node_name;
  front.intercept = [this](srv::Verb verb, sto::ByteReader& reader) {
    return intercept(verb, reader);
  };
  front_ = std::make_unique<srv::NyqmondServer>(empty_store_, nullptr,
                                                std::move(front));
  front_->start();
  NYQMON_OBS_GAUGE_SET("nyqmon_router_ring_nodes_depth", cluster_.nodes());
}

void NyqmonRouter::stop() {
  if (front_ != nullptr) front_->stop();
}

void NyqmonRouter::count_failures(
    const std::vector<srv::ErrorDetail>& failures) {
  if (failures.empty()) return;
  partial_failures_.fetch_add(1);
  backend_errors_.fetch_add(failures.size());
  NYQMON_OBS_COUNT("nyqmon_router_partial_failures_total", 1);
  NYQMON_OBS_COUNT("nyqmon_router_backend_errors_total", failures.size());
}

std::optional<std::vector<std::uint8_t>> NyqmonRouter::intercept(
    srv::Verb verb, sto::ByteReader& reader) {
  frames_.fetch_add(1);
  NYQMON_OBS_COUNT("nyqmon_router_frames_total", 1);
  switch (verb) {
    case srv::Verb::kIngest:
      return route_ingest(reader);
    case srv::Verb::kQuery:
      return scatter_query(reader);
    case srv::Verb::kStats:
      return fleet_stats_json();
    case srv::Verb::kCheckpoint:
      return scatter_checkpoint();
    case srv::Verb::kHandoff:
      return srv::error_frame(
          "HANDOFF addresses a backend node directly, not the router");
    case srv::Verb::kLogs:
      // The router's own structured-log rings: built-in handler.
      return std::nullopt;
    case srv::Verb::kMetrics: {
      if (reader.remaining() == 0)
        return std::nullopt;  // router's own registry: built-in handler
      const std::uint8_t flags = reader.get_u8();
      if (!reader.ok() || reader.remaining() != 0)
        return srv::error_frame("malformed METRICS payload");
      if ((flags & srv::kMetricsFleet) != 0) return fleet_metrics_text();
      // Flags byte consumed, so serve the local exposition here instead of
      // falling through (nullopt promises an untouched reader).
      return text_frame(obs::Registry::instance().render_prometheus(),
                        config_.max_frame_bytes, "metrics exposition");
    }
    case srv::Verb::kTrace: {
      if (reader.remaining() == 0)
        return std::nullopt;  // router's own rings: built-in handler
      const std::uint8_t flags = reader.get_u8();
      if (!reader.ok() || reader.remaining() != 0)
        return srv::error_frame("malformed TRACE payload");
      if ((flags & srv::kTraceFleet) != 0) return fleet_trace_json();
      return text_frame(obs::TraceRecorder::instance().export_chrome_json(),
                        config_.max_frame_bytes, "trace export");
    }
  }
  return std::nullopt;  // unknown verb: built-in ERR path
}

std::vector<std::uint8_t> NyqmonRouter::route_ingest(sto::ByteReader& reader) {
  const auto req = srv::decode_ingest(reader);
  if (!req.has_value()) return srv::error_frame("malformed INGEST payload");
  ingests_routed_.fetch_add(1);
  try {
    const std::uint64_t total =
        cluster_.ingest(req->stream, req->rate_hz, req->t0, req->values);
    std::vector<std::uint8_t> payload;
    sto::put_u64(payload, total);
    return srv::ok_frame(payload);
  } catch (const srv::ServerError& e) {
    count_failures({{cluster_.ring().owner_node(req->stream).id, e.what()}});
    return srv::error_frame_with_detail(
        e.what(),
        e.details().empty()
            ? std::vector<srv::ErrorDetail>{
                  {cluster_.ring().owner_node(req->stream).id, e.what()}}
            : e.details());
  } catch (const std::exception& e) {
    const std::vector<srv::ErrorDetail> detail{
        {cluster_.ring().owner_node(req->stream).id, e.what()}};
    count_failures(detail);
    return srv::error_frame_with_detail("ingest owner unreachable", detail);
  }
}

std::vector<std::uint8_t> NyqmonRouter::scatter_query(
    sto::ByteReader& reader) {
  std::uint8_t flags = 0;
  const auto spec = srv::decode_query(reader, flags);
  if (!spec.has_value()) return srv::error_frame("malformed QUERY payload");
  queries_scattered_.fetch_add(1);
  NYQMON_OBS_TIMER("nyqmon_router_fanout_latency_ns");

  const auto t0 = std::chrono::steady_clock::now();
  FleetQuery fleet = cluster_.query(*spec);  // validate() throws -> ERR
  if (!fleet.failures.empty()) {
    count_failures(fleet.failures);
    return srv::error_frame_with_detail(
        partial_failure_message(fleet.failures.size(), cluster_.nodes()),
        fleet.failures);
  }
  qry::QueryResult result;
  result.spec = *spec;
  result.matched = std::move(fleet.merged.matched);
  result.reconstructed = std::move(fleet.merged.reconstructed);
  result.series = std::move(fleet.merged.series);
  // The router's EXPLAIN: scatter + merge partition the measured total;
  // the per-backend gather rows overlap scatter (informational, see
  // protocol.h), so renderers exclude backend/* from percentage sums.
  srv::QueryExplainBlock explain;
  if ((flags & srv::kQueryWantExplain) != 0) {
    explain.stages.push_back({"scatter", fleet.scatter_ns});
    explain.stages.push_back({"merge", fleet.merge_ns});
    for (std::size_t i = 0; i < fleet.gather_ns.size(); ++i)
      if (fleet.gather_ns[i] != 0)
        explain.stages.push_back(
            {"backend/" + config_.cluster.nodes[i].id, fleet.gather_ns[i]});
    explain.total_ns = elapsed_ns(t0);
  }
  auto payload = srv::encode_query_reply(
      result, fleet.cache_hit, (flags & srv::kQueryWantMatched) != 0,
      (flags & srv::kQueryWantExplain) != 0 ? &explain : nullptr);
  if (payload.size() >= config_.max_frame_bytes)
    return srv::error_frame(
        "query result exceeds the frame cap; narrow the selector/range or "
        "coarsen step_s");
  return srv::ok_frame(payload);
}

std::vector<std::uint8_t> NyqmonRouter::fleet_stats_json() {
  const std::vector<NodeText> backends = cluster_.fleet_stats();
  char head[256];
  std::snprintf(
      head, sizeof(head),
      "{\"router\":{\"nodes\":%zu,\"frames\":%llu,\"ingests_routed\":%llu,"
      "\"queries_scattered\":%llu,\"partial_failures\":%llu,"
      "\"backend_errors\":%llu},\"backends\":[",
      cluster_.nodes(), static_cast<unsigned long long>(frames_.load()),
      static_cast<unsigned long long>(ingests_routed_.load()),
      static_cast<unsigned long long>(queries_scattered_.load()),
      static_cast<unsigned long long>(partial_failures_.load()),
      static_cast<unsigned long long>(backend_errors_.load()));
  std::string json(head);
  for (std::size_t i = 0; i < backends.size(); ++i) {
    if (i > 0) json += ',';
    json += "{\"node\":\"" + backends[i].node + "\",";
    if (backends[i].error.empty()) {
      json += "\"stats\":" +
              (backends[i].text.empty() ? std::string("{}")
                                        : backends[i].text);
    } else {
      json += "\"error\":\"" + backends[i].error + "\"";
    }
    json += '}';
  }
  json += "]}";
  if (json.size() >= config_.max_frame_bytes)
    return srv::error_frame("fleet stats exceed the frame cap");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(json.data());
  return srv::ok_frame(std::span<const std::uint8_t>(bytes, json.size()));
}

std::vector<std::uint8_t> NyqmonRouter::scatter_checkpoint() {
  std::vector<srv::ErrorDetail> failures;
  const auto replies = cluster_.checkpoint_all(failures);
  if (!failures.empty()) {
    count_failures(failures);
    return srv::error_frame_with_detail(
        partial_failure_message(failures.size(), cluster_.nodes()), failures);
  }
  srv::CheckpointReply merged;
  merged.persisted = true;
  for (const auto& reply : replies) {
    if (!reply.has_value()) continue;
    merged.persisted = merged.persisted && reply->persisted;
    merged.chunks += reply->chunks;
    merged.bytes_written += reply->bytes_written;
  }
  return srv::ok_frame(srv::encode_checkpoint_reply(merged));
}

std::vector<std::uint8_t> NyqmonRouter::fleet_trace_json() {
  // Scatter first: the fan-out spans of this very TRACE round settle
  // before the router drains its own rings, so they make the stitch too.
  // Stitching is best-effort — an unreachable backend just contributes no
  // spans (its failure is still counted) rather than failing the drain.
  ScatterOutcome scattered = cluster_.scatter(srv::Verb::kTrace, {});
  count_failures(scattered.failures);
  std::vector<std::string> parts;
  parts.reserve(scattered.payloads.size() + 1);
  for (const auto& payload : scattered.payloads)
    if (payload.has_value())
      parts.emplace_back(payload->begin(), payload->end());
  parts.push_back(obs::TraceRecorder::instance().export_chrome_json());
  return text_frame(obs::merge_chrome_json(parts), config_.max_frame_bytes,
                    "stitched trace export");
}

std::vector<std::uint8_t> NyqmonRouter::fleet_metrics_text() {
  const std::vector<NodeText> backends = cluster_.fleet_metrics();
  std::string text = "# == node " + config_.node_name + " ==\n" +
                     obs::Registry::instance().render_prometheus();
  for (const NodeText& backend : backends) {
    text += "# == node " + backend.node + " ==\n";
    if (backend.error.empty())
      text += backend.text;
    else
      text += "# error: " + backend.error + "\n";
  }
  return text_frame(text, config_.max_frame_bytes, "fleet metrics");
}

RouterStats NyqmonRouter::stats() const {
  RouterStats s;
  s.frames = frames_.load();
  s.ingests_routed = ingests_routed_.load();
  s.queries_scattered = queries_scattered_.load();
  s.partial_failures = partial_failures_.load();
  s.backend_errors = backend_errors_.load();
  return s;
}

}  // namespace nyqmon::clu
