// Reconstruction-quality metrics: how far a reconstructed trace is from the
// original. Figure 6 reports the L2 distance; the benches additionally use
// normalized RMSE so errors are comparable across metrics with different
// value ranges, and a PSD distortion measure that captures the spectral
// information loss aliasing causes (Section 2's "the extent of the
// information loss depends on the difference between the PSD of the aliased
// signal and that of the original").
#pragma once

#include <span>

namespace nyqmon::rec {

/// Euclidean distance sqrt(sum (a-b)^2); sizes must match.
double l2_distance(std::span<const double> a, std::span<const double> b);

/// Root-mean-square error.
double rmse(std::span<const double> a, std::span<const double> b);

/// RMSE normalized by the range (max-min) of `a`; 0 when `a` is constant
/// and the sequences are equal, +inf when constant but different.
double nrmse(std::span<const double> a, std::span<const double> b);

/// Largest absolute pointwise difference.
double max_abs_error(std::span<const double> a, std::span<const double> b);

/// Total-variation distance between the normalized one-sided PSDs of two
/// equal-rate sequences (in [0, 2]); the spectral information-loss measure.
double psd_distortion(std::span<const double> a, std::span<const double> b,
                      double sample_rate_hz);

}  // namespace nyqmon::rec
