// FFT correctness: against the O(N^2) reference DFT, analytic spectra,
// round trips, Parseval's theorem, and the Bluestein arbitrary-N path.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.h"
#include "signal/generators.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::dsp::cdouble;
using nyqmon::dsp::dft_reference;
using nyqmon::dsp::fft;
using nyqmon::dsp::fft_real;
using nyqmon::dsp::ifft;
using nyqmon::dsp::irfft;
using nyqmon::dsp::is_power_of_two;
using nyqmon::dsp::next_power_of_two;
using nyqmon::dsp::rfft;

std::vector<cdouble> random_complex(std::size_t n, Rng& rng) {
  std::vector<cdouble> x(n);
  for (auto& v : x) v = cdouble(rng.normal(0, 1), rng.normal(0, 1));
  return x;
}

double max_err(const std::vector<cdouble>& a, const std::vector<cdouble>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(PowerOfTwo, Detection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(6));
  EXPECT_FALSE(is_power_of_two(1023));
}

TEST(PowerOfTwo, Next) {
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(Fft, MatchesReferenceDftPow2) {
  Rng rng(1);
  const auto x = random_complex(64, rng);
  EXPECT_LT(max_err(fft(x), dft_reference(x)), 1e-9);
}

TEST(Fft, MatchesReferenceDftArbitraryN) {
  Rng rng(2);
  for (std::size_t n : {3u, 5u, 7u, 12u, 17u, 100u, 121u}) {
    const auto x = random_complex(n, rng);
    EXPECT_LT(max_err(fft(x), dft_reference(x)), 1e-8) << "n=" << n;
  }
}

TEST(Fft, SingleSample) {
  const std::vector<cdouble> x{cdouble(3.5, -1.0)};
  const auto spec = fft(x);
  ASSERT_EQ(spec.size(), 1u);
  EXPECT_NEAR(spec[0].real(), 3.5, 1e-12);
  EXPECT_NEAR(spec[0].imag(), -1.0, 1e-12);
}

TEST(Fft, EmptyThrows) {
  const std::vector<cdouble> x;
  EXPECT_THROW((void)fft(x), std::invalid_argument);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<cdouble> x(32, cdouble(0, 0));
  x[0] = cdouble(1, 0);
  for (const auto& bin : fft(x)) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcSignalConcentratesInBinZero) {
  const std::vector<cdouble> x(16, cdouble(2.0, 0));
  const auto spec = fft(x);
  EXPECT_NEAR(spec[0].real(), 32.0, 1e-10);
  for (std::size_t k = 1; k < spec.size(); ++k)
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-10) << "k=" << k;
}

TEST(Fft, PureToneLandsInItsBin) {
  // sin(2 pi * 5 * t/N): energy at bins 5 and N-5 with magnitude N/2.
  const std::size_t n = 128;
  std::vector<cdouble> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  const auto spec = fft(x);
  EXPECT_NEAR(std::abs(spec[5]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[n - 5]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[4]), 0.0, 1e-9);
}

TEST(Fft, Linearity) {
  Rng rng(3);
  const auto a = random_complex(50, rng);
  const auto b = random_complex(50, rng);
  std::vector<cdouble> sum(50);
  for (std::size_t i = 0; i < 50; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t k = 0; k < 50; ++k)
    EXPECT_LT(std::abs(fsum[k] - (2.0 * fa[k] + 3.0 * fb[k])), 1e-9);
}

TEST(Fft, RealInputSpectrumIsConjugateSymmetric) {
  Rng rng(4);
  std::vector<double> x(40);
  for (auto& v : x) v = rng.normal(0, 1);
  const auto spec = fft_real(x);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_LT(std::abs(spec[k] - std::conj(spec[x.size() - k])), 1e-10);
  }
}

TEST(Rfft, HalfSpectrumMatchesFullAndInverts) {
  Rng rng(5);
  for (std::size_t n : {16u, 17u, 33u, 64u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.normal(0, 1);
    const auto half = rfft(x);
    ASSERT_EQ(half.size(), n / 2 + 1);
    const auto full = fft_real(x);
    for (std::size_t k = 0; k < half.size(); ++k)
      EXPECT_LT(std::abs(half[k] - full[k]), 1e-10);
    const auto back = irfft(half, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST(Irfft, SizeMismatchThrows) {
  const std::vector<cdouble> half(5);
  EXPECT_THROW((void)irfft(half, 16), std::invalid_argument);
}

// Parameterized round-trip + Parseval sweep over lengths (both power-of-two
// and Bluestein paths) and seeds.
class FftRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto x = random_complex(static_cast<std::size_t>(n), rng);
  const auto back = ifft(fft(x));
  EXPECT_LT(max_err(back, x), 1e-8) << "n=" << n;
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  const auto x = random_complex(static_cast<std::size_t>(n), rng);
  const auto spec = fft(x);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndSeeds, FftRoundTrip,
    ::testing::Combine(::testing::Values(2, 4, 8, 15, 16, 27, 64, 100, 255,
                                         256, 1000, 1024),
                       ::testing::Values(11, 22, 33)));

}  // namespace
