// SIMD kernel equivalence: every dispatch level of every dsp::simd kernel
// must produce bit-identical output to the scalar reference — the contract
// (simd.h) that keeps the engine's worker-count determinism digests and
// the storage layer's cold-start bit-identity independent of the host CPU.
//
// The suite compares ops_for(kScalar) against every other available table
// over adversarial inputs: odd lengths, non-aligned buffers, denormals,
// NaN, infinities and signed zeros. It also exercises the process-wide
// dispatch override paths (set_level and, when the CI leg sets it, the
// NYQMON_SIMD environment variable) and proves a full FFT round-trip is
// bit-stable across levels, not just the leaf kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "dsp/fft.h"
#include "dsp/simd.h"

namespace {

using namespace nyqmon;
using dsp::simd::Level;
using dsp::simd::Ops;
using cdouble = std::complex<double>;

// Lengths chosen to cover empty, sub-vector-width, every tail residue of
// the 2- and 4-lane kernels, and a few larger blocks.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                                13, 16, 17, 31, 32, 33, 64, 97};

std::vector<const Ops*> available_levels() {
  std::vector<const Ops*> out;
  for (const Level level : {Level::kScalar, Level::kSSE2, Level::kAVX2}) {
    if (const Ops* t = dsp::simd::ops_for(level)) out.push_back(t);
  }
  return out;
}

// Deterministic value stream with adversarial IEEE-754 specials mixed in:
// denormals, NaN, +/-inf, -0.0 and huge/tiny magnitudes all appear, so a
// kernel that diverges from the scalar reference only on special values
// still fails the bit comparison.
class ValueStream {
 public:
  explicit ValueStream(std::uint64_t seed) : state_(seed | 1) {}

  double next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t r = state_ >> 33;
    switch (r % 16) {
      case 0:
        return 4.9406564584124654e-324;  // smallest denormal
      case 1:
        return -1.2345e-310;  // denormal
      case 2:
        return std::numeric_limits<double>::quiet_NaN();
      case 3:
        return std::numeric_limits<double>::infinity();
      case 4:
        return -std::numeric_limits<double>::infinity();
      case 5:
        return -0.0;
      case 6:
        return 1e300;
      case 7:
        return -1e-300;
      default:
        return (static_cast<double>(r % 20011) - 10005.0) / 97.0;
    }
  }

  void fill(double* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) p[i] = next();
  }
  void fill(cdouble* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) p[i] = cdouble(next(), next());
  }

 private:
  std::uint64_t state_;
};

// Buffers handed to kernels at a deliberate 8-byte offset from the vector's
// natural (16/32-byte) alignment, so an implementation that silently
// assumed aligned loads would fault or diverge.
struct UnalignedDoubles {
  explicit UnalignedDoubles(std::size_t n) : storage(n + 1) {}
  double* data() { return storage.data() + 1; }
  std::vector<double> storage;
};

struct UnalignedCdoubles {
  explicit UnalignedCdoubles(std::size_t n) : storage(2 * (n + 1)) {}
  cdouble* data() {
    return reinterpret_cast<cdouble*>(storage.data() + 1);
  }
  std::vector<double> storage;  // doubles, so +1 is a half-cdouble offset
};

// Bit equality with one carve-out: when an element is NaN at both levels
// it matches regardless of payload/sign. An operation with *two* NaN
// operands (or that creates NaN, e.g. inf*0) has an IEEE-754-unspecified
// result payload, and the compiler may commute the scalar reference's adds
// — so payload-exact NaN equivalence is unattainable by any implementation.
// What the kernels do guarantee (and this checks) is that no level ever
// turns a NaN into a finite value or vice versa, and every non-NaN result
// — denormals, signed zeros, infinities included — is bit-exact.
bool bits_equal(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}
bool bits_equal(const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (!bits_equal(a[i], b[i])) return false;
  return true;
}
bool bits_equal(const cdouble* a, const cdouble* b, std::size_t n) {
  return bits_equal(reinterpret_cast<const double*>(a),
                    reinterpret_cast<const double*>(b), 2 * n);
}

// ------------------------------------------------------ per-kernel tests --

TEST(DspKernel, LevelsAvailable) {
  ASSERT_NE(dsp::simd::ops_for(Level::kScalar), nullptr);
  const auto levels = available_levels();
  ASSERT_GE(levels.size(), 1u);
  for (const Ops* t : levels) {
    SCOPED_TRACE(t->name);
    EXPECT_LE(static_cast<int>(t->level),
              static_cast<int>(dsp::simd::detected_level()));
  }
}

TEST(DspKernel, FftButterflyBlockBitEquivalent) {
  const Ops* scalar = dsp::simd::ops_for(Level::kScalar);
  for (const Ops* t : available_levels()) {
    SCOPED_TRACE(t->name);
    for (const std::size_t half : kLengths) {
      ValueStream vs(half * 7919 + 1);
      UnalignedCdoubles ref(2 * half), alt(2 * half), tw(half);
      vs.fill(ref.data(), 2 * half);
      vs.fill(tw.data(), half);
      std::memcpy(alt.data(), ref.data(), 2 * half * sizeof(cdouble));
      scalar->fft_butterfly_block(ref.data(), tw.data(), half);
      t->fft_butterfly_block(alt.data(), tw.data(), half);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), 2 * half))
          << "half=" << half;
    }
  }
}

TEST(DspKernel, ComplexMulBitEquivalent) {
  const Ops* scalar = dsp::simd::ops_for(Level::kScalar);
  for (const Ops* t : available_levels()) {
    SCOPED_TRACE(t->name);
    for (const std::size_t n : kLengths) {
      ValueStream vs(n * 104729 + 2);
      UnalignedCdoubles a(n), b(n), ref(n), alt(n), ref_ip(n), alt_ip(n);
      vs.fill(a.data(), n);
      vs.fill(b.data(), n);
      scalar->complex_mul(ref.data(), a.data(), b.data(), n);
      t->complex_mul(alt.data(), a.data(), b.data(), n);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), n)) << "n=" << n;

      std::memcpy(ref_ip.data(), a.data(), n * sizeof(cdouble));
      std::memcpy(alt_ip.data(), a.data(), n * sizeof(cdouble));
      scalar->complex_mul_inplace(ref_ip.data(), b.data(), n);
      t->complex_mul_inplace(alt_ip.data(), b.data(), n);
      EXPECT_TRUE(bits_equal(ref_ip.data(), alt_ip.data(), n)) << "n=" << n;
    }
  }
}

TEST(DspKernel, ElementwiseDoubleKernelsBitEquivalent) {
  const Ops* scalar = dsp::simd::ops_for(Level::kScalar);
  for (const Ops* t : available_levels()) {
    SCOPED_TRACE(t->name);
    for (const std::size_t n : kLengths) {
      ValueStream vs(n * 31337 + 3);
      UnalignedDoubles x(n), w(n), ref(n), alt(n);
      vs.fill(x.data(), n);
      vs.fill(w.data(), n);
      const double c = vs.next();

      auto reset = [&] {
        std::memcpy(ref.data(), x.data(), n * sizeof(double));
        std::memcpy(alt.data(), x.data(), n * sizeof(double));
      };

      reset();
      scalar->mul_inplace(ref.data(), w.data(), n);
      t->mul_inplace(alt.data(), w.data(), n);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), n))
          << "mul_inplace n=" << n;

      reset();
      scalar->sub_scalar_inplace(ref.data(), c, n);
      t->sub_scalar_inplace(alt.data(), c, n);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), n))
          << "sub_scalar n=" << n;

      reset();
      scalar->div_scalar_inplace(ref.data(), c, n);
      t->div_scalar_inplace(alt.data(), c, n);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), n))
          << "div_scalar n=" << n;

      reset();
      const double a = vs.next();
      scalar->axpy(a, w.data(), ref.data(), n);
      t->axpy(a, w.data(), alt.data(), n);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), n)) << "axpy n=" << n;
    }
  }
}

TEST(DspKernel, ComplexScalarDivideBitEquivalent) {
  const Ops* scalar = dsp::simd::ops_for(Level::kScalar);
  for (const Ops* t : available_levels()) {
    SCOPED_TRACE(t->name);
    for (const std::size_t n : kLengths) {
      ValueStream vs(n * 271 + 4);
      UnalignedCdoubles ref(n), alt(n);
      vs.fill(ref.data(), n);
      std::memcpy(alt.data(), ref.data(), n * sizeof(cdouble));
      const double c = vs.next();
      scalar->div_scalar_complex_inplace(ref.data(), c, n);
      t->div_scalar_complex_inplace(alt.data(), c, n);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), n)) << "n=" << n;
    }
  }
}

TEST(DspKernel, ReductionsBitEquivalent) {
  const Ops* scalar = dsp::simd::ops_for(Level::kScalar);
  for (const Ops* t : available_levels()) {
    SCOPED_TRACE(t->name);
    for (const std::size_t n : kLengths) {
      ValueStream vs(n * 65537 + 5);
      UnalignedDoubles x(n), y(n);
      vs.fill(x.data(), n);
      vs.fill(y.data(), n);
      EXPECT_TRUE(bits_equal(scalar->sum(x.data(), n), t->sum(x.data(), n)))
          << "sum n=" << n;
      EXPECT_TRUE(bits_equal(scalar->dot(x.data(), y.data(), n),
                             t->dot(x.data(), y.data(), n)))
          << "dot n=" << n;
    }
  }
}

TEST(DspKernel, SquaredMagnitudeBitEquivalent) {
  const Ops* scalar = dsp::simd::ops_for(Level::kScalar);
  for (const Ops* t : available_levels()) {
    SCOPED_TRACE(t->name);
    for (const std::size_t n : kLengths) {
      ValueStream vs(n * 911 + 6);
      UnalignedCdoubles x(n);
      UnalignedDoubles ref(n), alt(n);
      vs.fill(x.data(), n);
      scalar->squared_magnitude(x.data(), ref.data(), n);
      t->squared_magnitude(x.data(), alt.data(), n);
      EXPECT_TRUE(bits_equal(ref.data(), alt.data(), n)) << "n=" << n;
    }
  }
}

TEST(DspKernel, Goertzel4BitEquivalent) {
  const Ops* scalar = dsp::simd::ops_for(Level::kScalar);
  for (const Ops* t : available_levels()) {
    SCOPED_TRACE(t->name);
    for (const std::size_t n : kLengths) {
      ValueStream vs(n * 48611 + 7);
      UnalignedDoubles x(n);
      vs.fill(x.data(), n);
      // Realistic Goertzel coefficients (2*cos(w)) plus an idle zero lane,
      // the shape the targeted detector batches with.
      const double coeff[4] = {2.0 * std::cos(0.3), 2.0 * std::cos(1.1),
                               -1.3125, 0.0};
      double ref_s1[4] = {0, 0, 0, 0}, ref_s2[4] = {0, 0, 0, 0};
      double alt_s1[4] = {0, 0, 0, 0}, alt_s2[4] = {0, 0, 0, 0};
      scalar->goertzel4(x.data(), n, coeff, ref_s1, ref_s2);
      t->goertzel4(x.data(), n, coeff, alt_s1, alt_s2);
      EXPECT_TRUE(bits_equal(ref_s1, alt_s1, 4)) << "s1 n=" << n;
      EXPECT_TRUE(bits_equal(ref_s2, alt_s2, 4)) << "s2 n=" << n;
    }
  }
}

// ----------------------------------------------------- dispatch override --

TEST(DspKernel, SetLevelForcesEachAvailablePath) {
  const Level original = dsp::simd::active_level();
  for (const Ops* t : available_levels()) {
    const Level installed = dsp::simd::set_level(t->level);
    EXPECT_EQ(installed, t->level);
    EXPECT_EQ(dsp::simd::active_level(), t->level);
    EXPECT_EQ(&dsp::simd::ops(), t);
    EXPECT_STREQ(dsp::simd::level_name(dsp::simd::ops().level), t->name);
  }
  // Requests above the CPU's capability clamp down, never up.
  const Level clamped = dsp::simd::set_level(Level::kAVX2);
  EXPECT_LE(static_cast<int>(clamped),
            static_cast<int>(dsp::simd::detected_level()));
  dsp::simd::set_level(original);
}

TEST(DspKernel, EnvironmentOverrideIsHonored) {
  // The CI sanitizer leg runs this binary with NYQMON_SIMD set to scalar
  // and then to the widest level; active_level() must have started from
  // that value. Without the variable the default is full CPU capability.
  // (set_level tests run after this one alphabetically within a fixture
  // but gtest gives no cross-test ordering guarantee, so this only checks
  // the *initial* parse result when it can still observe it.)
  const char* env = std::getenv("NYQMON_SIMD");
  if (env == nullptr) {
    SUCCEED() << "NYQMON_SIMD not set; env path exercised by the CI leg";
    return;
  }
  const std::string want(env);
  Level expected = dsp::simd::detected_level();
  if (want == "scalar") expected = Level::kScalar;
  else if (want == "sse2") expected = Level::kSSE2;
  else if (want == "avx2") expected = Level::kAVX2;
  if (static_cast<int>(expected) >
      static_cast<int>(dsp::simd::detected_level()))
    expected = dsp::simd::detected_level();
  EXPECT_EQ(dsp::simd::active_level(), expected)
      << "NYQMON_SIMD=" << want << " was not honored at first dispatch";
}

// ------------------------------------------------- end-to-end transforms --

TEST(DspKernel, FftBitIdenticalAcrossDispatchLevels) {
  const Level original = dsp::simd::active_level();
  // Power-of-two (radix-2 path) and odd (Bluestein path) sizes.
  for (const std::size_t n : {64u, 129u, 200u}) {
    std::vector<cdouble> input(n);
    ValueStream vs(n * 17 + 8);
    for (auto& v : input) {
      // Finite values only: this test round-trips through the full FFT,
      // whose *value* (not just bits) should survive a forward/inverse
      // pair; the NaN/denormal torture lives in the kernel tests above.
      double re = vs.next(), im = vs.next();
      if (!std::isfinite(re)) re = 1.25;
      if (!std::isfinite(im)) im = -0.5;
      v = cdouble(re, im);
    }

    std::vector<std::vector<cdouble>> spectra;
    std::vector<std::vector<cdouble>> rfft_out;
    for (const Ops* t : available_levels()) {
      dsp::simd::set_level(t->level);
      // fft() picks radix-2 for n=64 and Bluestein for 129/200, so both
      // transform paths cross every dispatch level.
      spectra.push_back(dsp::fft(input));

      std::vector<double> real(n);
      for (std::size_t i = 0; i < n; ++i) real[i] = input[i].real();
      rfft_out.push_back(dsp::rfft(real));
    }
    dsp::simd::set_level(original);

    for (std::size_t i = 1; i < spectra.size(); ++i) {
      EXPECT_TRUE(bits_equal(spectra[0].data(), spectra[i].data(),
                             spectra[0].size()))
          << "fft n=" << n << " level " << available_levels()[i]->name;
      ASSERT_EQ(rfft_out[0].size(), rfft_out[i].size());
      EXPECT_TRUE(bits_equal(rfft_out[0].data(), rfft_out[i].data(),
                             rfft_out[0].size()))
          << "rfft n=" << n << " level " << available_levels()[i]->name;
    }
  }
}

}  // namespace
