// Compressive-sensing reconstruction (paper Section 5 / Section 1):
//
// "While signal processing techniques such as compressive sensing and
//  sparse FFT have been applied before ..." — the paper positions these as
//  complementary to the Nyquist analysis. This module makes the comparison
//  concrete: when a signal's spectrum is *sparse* (a handful of tones), it
//  can be recovered from far fewer than Nyquist-rate samples taken at
//  random times.
//
// Implementation: Orthogonal Matching Pursuit (OMP) over a real
// cosine/sine dictionary on a candidate frequency grid. Each iteration
// picks the frequency most correlated with the residual, then solves the
// small least-squares problem over all selected atoms (via normal
// equations + Gaussian elimination — the dictionaries here are tiny).
#pragma once

#include <vector>

#include "signal/timeseries.h"

namespace nyqmon::rec {

struct CompressiveConfig {
  /// Number of frequency atoms to recover (the assumed spectral sparsity).
  std::size_t sparsity = 4;
  /// Candidate frequency grid: `grid_bins` frequencies spread uniformly
  /// over (0, max_frequency_hz].
  std::size_t grid_bins = 256;
  double max_frequency_hz = 1.0;
  /// Stop early when the residual energy falls below this fraction of the
  /// input energy.
  double residual_tolerance = 1e-6;
};

struct CompressiveModel {
  /// Recovered atoms: frequency + cosine/sine amplitudes, plus a DC term.
  struct Atom {
    double frequency_hz = 0.0;
    double cos_amp = 0.0;
    double sin_amp = 0.0;
  };
  double dc = 0.0;
  std::vector<Atom> atoms;
  double residual_energy_fraction = 1.0;

  /// Evaluate the recovered model at time t.
  double value(double t) const;

  /// Sample the model on a uniform grid.
  sig::RegularSeries sample(double t0, double dt, std::size_t n) const;
};

/// Fit a sparse spectral model to irregular (e.g. randomly timed) samples.
CompressiveModel compressive_recover(const sig::TimeSeries& samples,
                                     const CompressiveConfig& config);

}  // namespace nyqmon::rec
