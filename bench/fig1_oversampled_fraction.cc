// Figure 1: "The fraction of devices (collection points) at which our
// production data center currently measures various metrics above the
// Nyquist rate; each bar coalesces information from O(10^3) devices."
//
// Regenerates the bar chart from the synthetic fleet audit: one bar per
// metric, height = fraction of that metric's device pairs whose current
// sampling rate exceeds the estimated Nyquist rate.
#include <cstdio>

#include "common.h"
#include "util/ascii.h"
#include "util/csv.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Figure 1: fraction of devices sampled above the Nyquist "
              "rate, per metric ===\n\n");

  const auto audit = bench::run_paper_audit();

  std::vector<std::pair<std::string, double>> bars;
  CsvWriter csv(bench::csv_path("fig1_oversampled_fraction"),
                {"metric", "pairs", "fraction_above_nyquist"});
  for (auto kind : tel::all_metrics()) {
    const auto it = audit.by_metric.find(kind);
    if (it == audit.by_metric.end()) continue;
    const auto& agg = it->second;
    const double frac = agg.fraction_oversampled();
    bars.emplace_back(tel::metric_name(kind), frac);
    csv.row({tel::metric_name(kind), std::to_string(agg.pairs),
             CsvWriter::format_double(frac)});
  }

  std::printf("%s\n", ascii_barchart(bars, 50).c_str());
  std::printf("Paper shape: the vast majority of collection points sit "
              "above the Nyquist rate for every metric.\n");
  std::printf("Fleet-wide: %.1f%% of %zu metric-device pairs over-sampled.\n",
              100.0 * audit.fraction_oversampled(), audit.total_pairs());
  return 0;
}
