// Figure 4: "CDFs of the ratio between the actual sampling rate and the
// computed Nyquist rate. x axes in log scale; x = 10 indicates 10x
// over-sampling. Each datapoint is one day's worth of data from a distinct
// device. We do not show the cases where we cannot reliably detect the
// Nyquist rate."
//
// One CDF per metric (the paper shows 12 panels), evaluated at log-spaced
// ratios 10^0 .. 10^3, plus the headline "in 20% of the examples the
// sampling rate can be reduced by a factor of 1000x".
#include <algorithm>
#include <cstdio>

#include "analysis/cdf.h"
#include "common.h"
#include "util/ascii.h"
#include "util/csv.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Figure 4: CDFs of the possible reduction ratio, per "
              "metric ===\n\n");

  const auto audit = bench::run_paper_audit();

  CsvWriter csv(bench::csv_path("fig4_reduction_cdfs"),
                {"metric", "ratio", "cdf"});
  AsciiTable table({"metric", "n", "CDF@1", "CDF@10", "CDF@100", "CDF@1000",
                    "frac>=1000x"});

  std::vector<double> all_ratios;
  for (auto kind : tel::all_metrics()) {
    const auto it = audit.by_metric.find(kind);
    if (it == audit.by_metric.end() || it->second.reduction_ratios.empty())
      continue;
    const auto& ratios = it->second.reduction_ratios;
    all_ratios.insert(all_ratios.end(), ratios.begin(), ratios.end());

    const ana::Cdf cdf(ratios);
    for (const auto& [x, f] : cdf.log_rows(0, 3, 4)) {
      csv.row({tel::metric_name(kind), CsvWriter::format_double(x),
               CsvWriter::format_double(f)});
    }
    table.row({tel::metric_name(kind), std::to_string(ratios.size()),
               AsciiTable::format_double(cdf.fraction_at(1.0)),
               AsciiTable::format_double(cdf.fraction_at(10.0)),
               AsciiTable::format_double(cdf.fraction_at(100.0)),
               AsciiTable::format_double(cdf.fraction_at(1000.0)),
               AsciiTable::format_double(1.0 - cdf.fraction_at(1000.0))});
  }

  std::printf("%s\n", table.render().c_str());

  const ana::Cdf overall(all_ratios);
  std::printf("Fleet-wide: %.1f%% of pairs with a reliable estimate can "
              "reduce their rate by >= 10x;\n"
              "            %.1f%% by >= 100x; %.1f%% by >= 1000x "
              "(paper: ~20%% at 1000x).\n",
              100.0 * (1.0 - overall.fraction_at(10.0)),
              100.0 * (1.0 - overall.fraction_at(100.0)),
              100.0 * (1.0 - overall.fraction_at(1000.0)));
  return 0;
}
