// Shard partitioning and the worker execution model for the fleet engine.
//
// The engine splits a fleet's metric-device pairs into shards — the unit of
// work a worker thread claims. Pairs are dealt round-robin so every shard
// mixes fast- and slow-polling metrics (fleet construction shuffles pairs,
// so consecutive indices are already de-correlated); workers then pull whole
// shards from a shared queue, which batches the handoff: one atomic claim
// per shard, not per pair.
//
// run_sharded() is the worker loop itself: each worker thread optionally
// pins to a CPU, constructs a per-worker WorkArena (binding the thread's
// dsp::Workspace — FFT plans, window caches, scratch stack), claims shards
// until the queue drains, and brackets every pair with the arena so
// allocation accounting is per-pair. Arena statistics from all workers sum
// into the returned ShardRunStats.
//
// Ownership/threading: partition_shards() is a pure function returning a
// value; shards hold indices only, never pointers into the fleet.
// Determinism: the partition depends only on (n_pairs, n_shards) — never
// on which worker later claims which shard — which is one leg of the
// engine's bit-identical-across-workers contract. The arena does not
// weaken it: plans are deterministic per shape and scratch never carries
// values between windows (Debug builds poison-fill on frame pop).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "engine/arena.h"

namespace nyqmon::eng {

/// One shard: the pair indices (into Fleet::pairs()) it owns.
struct Shard {
  std::size_t id = 0;
  std::vector<std::size_t> pair_indices;
};

/// Deal `n_pairs` indices round-robin into `n_shards` shards. Every index in
/// [0, n_pairs) appears in exactly one shard; shard sizes differ by at most
/// one. `n_shards` is clamped to [1, max(n_pairs, 1)].
std::vector<Shard> partition_shards(std::size_t n_pairs, std::size_t n_shards);

struct ShardRunOptions {
  /// Worker threads (0 = hardware concurrency; clamped to shard count).
  std::size_t workers = 0;
  /// Pin worker w to CPU w (best-effort; see pin_this_thread).
  bool pin_threads = false;
  /// Per-worker arena behavior (retain vs wipe between pairs).
  WorkArenaConfig arena;
};

struct ShardRunStats {
  std::size_t workers_used = 0;
  std::size_t threads_pinned = 0;
  /// Sum of every worker's arena deltas for this run.
  WorkArenaStats arena;
};

/// Run `pair_fn(pair_index)` for every pair of every shard on a pool of
/// worker threads claiming whole shards from a shared atomic queue, each
/// worker owning a WorkArena for its lifetime. workers == 1 runs inline on
/// the calling thread. If pair_fn throws, remaining shards are abandoned
/// and one of the exceptions is rethrown after all workers join.
ShardRunStats run_sharded(const std::vector<Shard>& shards,
                          const ShardRunOptions& options,
                          const std::function<void(std::size_t)>& pair_fn);

}  // namespace nyqmon::eng
