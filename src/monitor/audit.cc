#include "monitor/audit.h"

#include <cmath>

#include "signal/preclean.h"
#include "util/check.h"
#include "util/parallel.h"

namespace nyqmon::mon {

double MetricAudit::fraction_oversampled() const {
  return pairs == 0 ? 0.0
                    : static_cast<double>(oversampled) /
                          static_cast<double>(pairs);
}

double AuditResult::fraction_oversampled() const {
  if (pairs.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& p : pairs)
    if (p.sampling_class == nyq::SamplingClass::kOversampled) ++n;
  return static_cast<double>(n) / static_cast<double>(pairs.size());
}

double AuditResult::fraction_undersampled() const {
  if (pairs.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& p : pairs)
    if (p.sampling_class == nyq::SamplingClass::kUndersampled) ++n;
  return static_cast<double>(n) / static_cast<double>(pairs.size());
}

double AuditResult::fraction_reducible_by(double x) const {
  NYQMON_CHECK(x > 0.0);
  std::size_t ok = 0;
  std::size_t reducible = 0;
  for (const auto& p : pairs) {
    if (!p.reduction_ratio) continue;
    ++ok;
    if (*p.reduction_ratio >= x) ++reducible;
  }
  return ok == 0 ? 0.0 : static_cast<double>(reducible) / static_cast<double>(ok);
}

Cost AuditResult::current_cost(double duration_s, const CostModel& model) const {
  Cost total;
  for (const auto& p : pairs) {
    total += cost_of_samples(
        static_cast<std::size_t>(std::floor(duration_s * p.poll_rate_hz)),
        model);
  }
  return total;
}

Cost AuditResult::nyquist_cost(double duration_s, const CostModel& model) const {
  Cost total;
  for (const auto& p : pairs) {
    // Pairs without a usable estimate keep their current rate (the paper
    // defers them to "more careful inspection"); under-sampled pairs would
    // *raise* their rate to the estimate.
    double rate = p.poll_rate_hz;
    if (p.estimate.ok()) rate = p.estimate.nyquist_rate_hz;
    total += cost_of_samples(
        static_cast<std::size_t>(std::floor(duration_s * rate)), model);
  }
  return total;
}

namespace {

// The per-pair work: poll, pre-clean, estimate, classify. Pure function of
// (pair, its pre-forked rng) — safe to run on any thread.
AuditPairResult audit_one(const tel::FleetPair& pair, Rng rng,
                          const AuditConfig& config,
                          const nyq::NyquistEstimator& estimator) {
  const auto& m = pair.metric;
  const auto& spec = tel::metric_spec(m.kind);

  tel::PollerConfig pc;
  pc.interval_s = m.poll_interval_s;
  pc.jitter_frac = config.jitter_frac;
  pc.drop_prob = config.drop_prob;
  pc.noise_stddev = config.relative_noise * spec.fluctuation_rms;
  pc.quantization_step = m.quantization_step;

  const sig::TimeSeries raw =
      tel::poll(*m.signal, 0.0, m.trace_duration_s, pc, rng);

  sig::PrecleanConfig clean;
  clean.dt = m.poll_interval_s;  // analyse on the nominal grid
  clean.interp = sig::InterpKind::kNearest;
  const sig::RegularSeries trace = sig::regularize(raw, clean);

  AuditPairResult pr;
  pr.kind = m.kind;
  pr.device_name = pair.device.name();
  pr.poll_rate_hz = 1.0 / m.poll_interval_s;
  pr.true_bandwidth_hz = m.true_bandwidth_hz;
  pr.estimate = estimator.estimate(trace);
  pr.sampling_class = nyq::classify_sampling(pr.estimate);
  pr.reduction_ratio = nyq::reduction_ratio(pr.estimate);
  return pr;
}

}  // namespace

AuditResult run_audit(const tel::Fleet& fleet, const AuditConfig& config) {
  const nyq::NyquistEstimator estimator(config.estimator);

  // Fork every pair's random stream sequentially so the outcome does not
  // depend on scheduling, then fan the (independent) per-pair work out.
  Rng rng(config.seed);
  std::vector<Rng> streams;
  streams.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) streams.push_back(rng.fork());

  AuditResult result;
  result.pairs.resize(fleet.size());
  parallel_claim(fleet.size(), config.threads, [&](std::size_t i) {
    result.pairs[i] =
        audit_one(fleet.pairs()[i], streams[i], config, estimator);
  });

  // Aggregate (order-stable: iterate results in pair order).
  for (const auto& pr : result.pairs) {
    auto& agg = result.by_metric[pr.kind];
    agg.kind = pr.kind;
    ++agg.pairs;
    switch (pr.sampling_class) {
      case nyq::SamplingClass::kOversampled: ++agg.oversampled; break;
      case nyq::SamplingClass::kUndersampled: ++agg.undersampled; break;
      case nyq::SamplingClass::kAtRate: ++agg.at_rate; break;
      case nyq::SamplingClass::kUnknown: ++agg.unknown; break;
    }
    if (pr.reduction_ratio) agg.reduction_ratios.push_back(*pr.reduction_ratio);
    if (pr.estimate.ok())
      agg.nyquist_rates_hz.push_back(pr.estimate.nyquist_rate_hz);
  }
  return result;
}

}  // namespace nyqmon::mon
