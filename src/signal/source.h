// Continuous ground-truth signals.
//
// A ContinuousSignal can be evaluated at any time t — it models the
// underlying physical metric (a temperature, a link's utilization) that a
// monitoring system samples. Synthetic sources report their true band
// limit, which is what lets nyqmon *validate* Nyquist-rate estimates —
// something the paper could not do against production data.
//
// All concrete sources here are built from finite sums of band-limited
// atoms (sines, Gaussian bumps, smooth steps), so they are exactly or
// almost-exactly band-limited by construction.
#pragma once

#include <memory>
#include <vector>

#include "signal/timeseries.h"

namespace nyqmon::sig {

class ContinuousSignal {
 public:
  virtual ~ContinuousSignal() = default;

  /// Signal value at time t (seconds).
  virtual double value(double t) const = 0;

  /// Frequency above which the signal carries (essentially) no energy.
  /// The true Nyquist rate of the signal is twice this.
  virtual double bandwidth_hz() const = 0;

  /// Sample uniformly: n samples starting at t0, spaced dt.
  RegularSeries sample(double t0, double dt, std::size_t n) const;
};

/// One sinusoidal component.
struct Tone {
  double frequency_hz = 0.0;
  double amplitude = 1.0;
  double phase = 0.0;
};

/// Finite sum of sinusoids plus a DC offset: exactly band-limited at the
/// highest component frequency.
class SumOfSines final : public ContinuousSignal {
 public:
  SumOfSines(std::vector<Tone> tones, double dc_offset = 0.0);

  double value(double t) const override;
  double bandwidth_hz() const override;
  const std::vector<Tone>& tones() const { return tones_; }

 private:
  std::vector<Tone> tones_;
  double dc_;
};

/// Train of Gaussian bumps sum_i a_i * exp(-(t-t_i)^2 / (2 sigma^2)) —
/// models bursty event metrics (drops, FCS errors). A Gaussian bump's
/// spectrum decays as exp(-2 pi^2 f^2 sigma^2); we report the frequency
/// where it falls to 1e-6 of peak as the effective bandwidth.
class GaussianBumpTrain final : public ContinuousSignal {
 public:
  struct Bump {
    double center_s = 0.0;
    double amplitude = 1.0;
  };
  GaussianBumpTrain(std::vector<Bump> bumps, double sigma_s,
                    double baseline = 0.0);

  double value(double t) const override;
  double bandwidth_hz() const override;

 private:
  std::vector<Bump> bumps_;  // sorted by center
  double sigma_;
  double baseline_;
};

/// Sum of smooth level shifts a_i * 0.5*(1 + tanh((t - t_i)/w)) — models
/// fail-stop / link-flap style regime changes with transition width w.
/// The tanh edge's spectrum decays exponentially with f*w; bandwidth is
/// reported at the 1e-6 point.
class SmoothStepTrain final : public ContinuousSignal {
 public:
  struct Step {
    double center_s = 0.0;
    double amplitude = 1.0;  ///< level change (may be negative)
  };
  SmoothStepTrain(std::vector<Step> steps, double width_s,
                  double baseline = 0.0);

  double value(double t) const override;
  double bandwidth_hz() const override;

 private:
  std::vector<Step> steps_;
  double width_;
  double baseline_;
};

/// Weighted sum of other signals; bandwidth is the max of the parts.
class CompositeSignal final : public ContinuousSignal {
 public:
  void add(std::shared_ptr<const ContinuousSignal> part, double weight = 1.0);

  double value(double t) const override;
  double bandwidth_hz() const override;
  std::size_t parts() const { return parts_.size(); }

 private:
  std::vector<std::pair<std::shared_ptr<const ContinuousSignal>, double>> parts_;
};

/// A signal whose band limit changes at known switch times — the workload
/// for the adaptive sampler (Section 4.2): e.g. a calm metric that starts
/// flapping at t=T1 and calms again at t=T2.
class PiecewiseSignal final : public ContinuousSignal {
 public:
  /// Segment i is active on [switch_times[i-1], switch_times[i]) with
  /// switch_times[-1] = -inf and switch_times[n-1] = +inf.
  PiecewiseSignal(std::vector<std::shared_ptr<const ContinuousSignal>> segments,
                  std::vector<double> switch_times);

  double value(double t) const override;
  /// Overall band limit (max over segments).
  double bandwidth_hz() const override;
  /// Band limit of the segment active at time t.
  double bandwidth_at(double t) const;

 private:
  std::size_t segment_index(double t) const;
  std::vector<std::shared_ptr<const ContinuousSignal>> segments_;
  std::vector<double> switch_times_;
};

}  // namespace nyqmon::sig
