// Minimal CSV writer used by the bench harnesses to persist experiment
// results next to the printed tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace nyqmon {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Writes one row; the number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with %.9g.
  void row_numeric(const std::vector<double>& cells);

  static std::string format_double(double v);

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace nyqmon
