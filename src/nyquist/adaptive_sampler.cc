#include "nyquist/adaptive_sampler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace nyqmon::nyq {

std::size_t AdaptiveRun::baseline_samples(double baseline_rate_hz) const {
  NYQMON_CHECK(baseline_rate_hz > 0.0);
  return static_cast<std::size_t>(std::floor(duration_s * baseline_rate_hz));
}

AdaptiveSampler::AdaptiveSampler(AdaptiveConfig config) : config_(config) {
  NYQMON_CHECK(config_.initial_rate_hz > 0.0);
  NYQMON_CHECK(config_.min_rate_hz > 0.0);
  NYQMON_CHECK(config_.min_rate_hz <= config_.max_rate_hz);
  NYQMON_CHECK(config_.probe_factor > 1.0);
  NYQMON_CHECK(config_.headroom >= 1.0);
  NYQMON_CHECK(config_.max_decrease_factor > 1.0);
  NYQMON_CHECK(config_.window_duration_s > 0.0);
}

AdaptiveRun AdaptiveSampler::run(const std::function<double(double)>& measure,
                                 double t0, double duration_s) const {
  AdaptiveStepper stepper(config_, t0, duration_s);
  while (!stepper.done()) stepper.step_window(measure);
  return stepper.finish();
}

AdaptiveStepper::AdaptiveStepper(const AdaptiveConfig& config, double t0,
                                 double duration_s)
    : config_(config),
      detector_(config.detector),
      estimator_(config.estimator),
      t0_(t0),
      duration_s_(duration_s),
      t_(t0),
      mode_(SamplerMode::kProbe) {  // start conservative: verify first
  NYQMON_CHECK(duration_s > 0.0);
  NYQMON_CHECK(config_.initial_rate_hz > 0.0);
  NYQMON_CHECK(config_.min_rate_hz > 0.0);
  NYQMON_CHECK(config_.min_rate_hz <= config_.max_rate_hz);
  NYQMON_CHECK(config_.probe_factor > 1.0);
  NYQMON_CHECK(config_.headroom >= 1.0);
  NYQMON_CHECK(config_.max_decrease_factor > 1.0);
  NYQMON_CHECK(config_.window_duration_s > 0.0);
  // After the bound checks: clamp with lo > hi is undefined behavior.
  rate_ = std::clamp(config_.initial_rate_hz, config_.min_rate_hz,
                     config_.max_rate_hz);
  run_.duration_s = duration_s;
}

double AdaptiveStepper::window_end_s() const {
  const double win =
      std::min(config_.window_duration_s, t0_ + duration_s_ - t_);
  return t_ + win;
}

const AdaptiveStep& AdaptiveStepper::step_window(
    const std::function<double(double)>& measure) {
  NYQMON_CHECK(measure != nullptr);
  NYQMON_CHECK_MSG(!done(), "step_window() past the end of the run");

  const double t = t_;
  const double win = std::min(config_.window_duration_s, t0_ + duration_s_ - t);
  const double rate = rate_;

  AdaptiveStep step;
  step.window_start_s = t;
  step.mode = mode_;
  step.rate_hz = rate;

  // Acquire the primary stream at `rate`.
  const std::size_t n_primary = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::floor(win * rate)));
  const double dt = 1.0 / rate;
  std::vector<double> primary(n_primary);
  for (std::size_t i = 0; i < n_primary; ++i) {
    const double ts = t + static_cast<double>(i) * dt;
    primary[i] = measure(ts);
    run_.collected.push(ts, primary[i]);
  }
  const sig::RegularSeries primary_series(t, dt, primary);

  // While probing (and periodically while tracking — "leverage temporal
  // stability to make adaptation less expensive"), acquire a faster
  // checker stream and run the Penny comparison (fast = ratio * rate vs
  // primary = rate) on the common band [0, rate/2): a discrepancy there
  // means the signal carries energy the primary stream folds — the
  // *operating rate* is insufficient. This is the configuration whose
  // cost is "roughly double" the primary's, as the paper notes.
  const bool check_this_window =
      mode_ == SamplerMode::kProbe ||
      windows_since_check_ + 1 >= config_.recheck_interval_windows;

  DetectionResult det;
  step.samples_acquired = n_primary;
  if (check_this_window) {
    windows_since_check_ = 0;
    const double fast_rate = rate * config_.detector.rate_ratio;
    const std::size_t n_fast = std::max<std::size_t>(
        8, static_cast<std::size_t>(std::floor(win * fast_rate)));
    const double dtf = 1.0 / fast_rate;
    std::vector<double> fast(n_fast);
    for (std::size_t i = 0; i < n_fast; ++i)
      fast[i] = measure(t + static_cast<double>(i) * dtf);
    const sig::RegularSeries fast_series(t, dtf, fast);
    det = detector_.detect(fast_series, primary_series);
    step.samples_acquired += n_fast;
    // Estimate the Nyquist rate from the checker stream — the widest
    // clean band available this window (Section 3.2's method).
    step.estimate = estimator_.estimate(fast_series);
  } else {
    ++windows_since_check_;
    step.estimate = estimator_.estimate(primary_series);
  }
  step.aliasing_detected = det.aliasing_detected;
  run_.total_samples += step.samples_acquired;

  const bool fast_aliased =
      step.estimate.verdict == NyquistEstimate::Verdict::kAliased;

  // --- Rate adaptation ----------------------------------------------
  double next = rate;
  if (det.aliasing_detected || fast_aliased) {
    // The operating rate folds signal energy (or even the checker stream
    // is aliased): probe upward multiplicatively; with rate memory, jump
    // straight to the highest rate that was ever needed.
    next = rate * config_.probe_factor;
    if (config_.use_rate_memory && remembered_max_ > next)
      next = remembered_max_;
    mode_ = SamplerMode::kProbe;
  } else {
    // Clean window: settle toward headroom * estimated Nyquist rate.
    mode_ = SamplerMode::kTrack;
    remembered_max_ = std::max(remembered_max_, rate);
    if (step.estimate.ok()) {
      const double target = config_.headroom * step.estimate.nyquist_rate_hz;
      if (target < rate) {
        next = std::max(target, rate / config_.max_decrease_factor);
      } else {
        next = target;
      }
    } else if (step.estimate.verdict == NyquistEstimate::Verdict::kFlat) {
      next = rate / config_.max_decrease_factor;  // calm signal: back off
    }
  }
  next = std::clamp(next, config_.min_rate_hz, config_.max_rate_hz);
  step.next_rate_hz = next;
  run_.steps.push_back(step);
  rate_ = next;
  t_ += config_.window_duration_s;
  return run_.steps.back();
}

AdaptiveRun AdaptiveStepper::finish() {
  NYQMON_CHECK_MSG(done(), "finish() before the run is complete");
  run_.final_rate_hz = rate_;
  return std::move(run_);
}

RunAudit audit_run(const AdaptiveRun& run) {
  RunAudit audit;
  audit.windows = run.steps.size();
  audit.final_rate_hz = run.final_rate_hz;
  for (const auto& step : run.steps) {
    if (step.aliasing_detected) ++audit.aliased_windows;
    if (step.mode == SamplerMode::kProbe) ++audit.probe_windows;
    audit.max_rate_hz = std::max(audit.max_rate_hz, step.rate_hz);
  }
  return audit;
}

}  // namespace nyqmon::nyq
