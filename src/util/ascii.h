// ASCII rendering helpers for the bench harnesses: fixed-width tables,
// horizontal bar charts and sparkline-style series so every paper figure has
// a terminal-readable analogue.
#pragma once

#include <string>
#include <vector>

namespace nyqmon {

/// Fixed-width text table. Column widths auto-size to content.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> columns);

  void row(std::vector<std::string> cells);
  void row_numeric(const std::vector<double>& cells);

  /// Render with a header rule; every cell right-padded to column width.
  std::string render() const;

  static std::string format_double(double v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal bar chart: one labelled bar per entry, scaled to `width` chars.
std::string ascii_barchart(const std::vector<std::pair<std::string, double>>& bars,
                           int width = 50);

/// Render a numeric series as a fixed-height character plot (rows = height).
std::string ascii_series(const std::vector<double>& values, int width = 72,
                         int height = 12);

}  // namespace nyqmon
