#include "engine/engine.h"

#include <atomic>
#include <chrono>

#include "engine/shard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "telemetry/metric_model.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace nyqmon::eng {

double FleetRunResult::fleet_cost_savings() const {
  std::size_t adaptive = 0;
  std::size_t baseline = 0;
  for (const auto& p : pairs) {
    adaptive += p.adaptive_samples;
    baseline += p.baseline_samples;
  }
  return mon::ratio_or_one(baseline, adaptive);
}

FleetMonitorEngine::FleetMonitorEngine(const tel::Fleet& fleet,
                                       EngineConfig config)
    : fleet_(fleet),
      config_(config),
      store_(config.store, config.store_stripes) {
  NYQMON_CHECK(config_.samples_per_window >= 2);
  NYQMON_CHECK(config_.windows_per_pair >= 1);
  NYQMON_CHECK(config_.max_speedup >= 1.0);
  NYQMON_CHECK(config_.max_slowdown >= 1.0);

  // Durable tier before any stream exists, so the creations below are
  // WAL-logged too: each engine run is a fresh storage generation.
  if (!config_.storage.dir.empty()) {
    config_.storage.truncate_existing = true;
    storage_ = std::make_unique<sto::StorageManager>(config_.storage);
    // Geometry into the manifest before any ingest: a mid-run crash must
    // recover with verified seal boundaries even though no flush ever ran.
    storage_->record_geometry(config_.store);
    store_.set_ingest_sink(storage_.get());
  }

  // Scheduling pass: derive every pair's collection plan and register its
  // retention stream up front (sequential, so stream creation needs no
  // coordination during the fan-out).
  schedules_.reserve(fleet_.size());
  for (const auto& pair : fleet_.pairs()) {
    const tel::PairSchedule s = tel::schedule_pair(
        pair, config_.samples_per_window, config_.windows_per_pair);
    store_.create_stream(tel::stream_id(pair), s.production_rate_hz);
    schedules_.push_back(s);
  }
}

std::vector<std::uint64_t> fork_noise_seeds(std::uint64_t seed,
                                            std::size_t n) {
  // Sequential forking, so per-pair outcomes cannot depend on the order in
  // which worker threads (or the streaming scheduler) pick pairs up.
  Rng rng(seed);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(rng.engine()());
  return seeds;
}

mon::PipelineConfig pair_pipeline_config(const EngineConfig& config,
                                         const tel::FleetPair& pair,
                                         const tel::PairSchedule& sched) {
  const auto& spec = tel::metric_spec(pair.metric.kind);
  mon::PipelineConfig pc;
  pc.sampler = config.sampler;
  pc.sampler.initial_rate_hz = sched.production_rate_hz;
  pc.sampler.min_rate_hz = sched.production_rate_hz / config.max_slowdown;
  pc.sampler.max_rate_hz = sched.production_rate_hz * config.max_speedup;
  pc.sampler.window_duration_s = sched.window_duration_s;
  pc.cost = config.cost;
  pc.noise_stddev = config.relative_noise * spec.fluctuation_rms;
  pc.quantization_step = pair.metric.quantization_step;
  return pc;
}

PairOutcome make_pair_outcome(std::size_t index, const tel::FleetPair& pair,
                              const tel::PairSchedule& sched,
                              const mon::PipelineResult& result) {
  PairOutcome out;
  out.pair_index = index;
  out.stream_id = tel::stream_id(pair);
  out.kind = pair.metric.kind;
  out.production_rate_hz = sched.production_rate_hz;
  out.cost_savings = result.cost_savings;
  out.nrmse = result.nrmse;
  out.max_abs_error = result.max_abs_error;
  out.adaptive_samples = result.run.total_samples;
  out.baseline_samples = result.run.baseline_samples(sched.production_rate_hz);
  {
    // Last of the four per-pair stage timings (sample and reconstruct in
    // monitor/pipeline.cc, FFT in nyquist/estimator.cc). Shared with the
    // streaming runtime, so both execution modes fill the same histograms.
    NYQMON_OBS_TIMER("nyqmon_engine_stage_audit_ns");
    out.audit = nyq::audit_run(result.run);
  }
  NYQMON_OBS_COUNT("nyqmon_engine_pairs_total", 1);
  return out;
}

PairOutcome FleetMonitorEngine::drive_pair(std::size_t index,
                                           std::uint64_t noise_seed) {
  const tel::FleetPair& pair = fleet_.pairs()[index];
  const tel::PairSchedule& sched = schedules_[index];

  const mon::AdaptiveMonitoringPipeline pipeline(
      pair_pipeline_config(config_, pair, sched));
  const mon::PipelineResult result = pipeline.run(
      *pair.metric.signal, 0.0, sched.duration_s, sched.production_rate_hz,
      noise_seed);

  PairOutcome out = make_pair_outcome(index, pair, sched, result);

  // Fan-in: retain the reconstruction (on the production grid) under this
  // pair's stream ID. One bulk append = one stripe-lock acquisition.
  store_.append_series(out.stream_id, result.reconstruction.span());

  // Byte bill after ingest: each stream has exactly one producer (this
  // pair), so the stats are final for the run and worker-count invariant.
  const mon::StreamStats retained = store_.stats(out.stream_id);
  out.store_bytes_raw = retained.bytes_raw;
  out.store_bytes_stored = retained.bytes_stored;
  return out;
}

qry::QueryEngine FleetMonitorEngine::serve(qry::QueryEngineConfig config)
    const {
  NYQMON_CHECK_MSG(ran_, "serve() needs a completed run()");
  return qry::QueryEngine(store_, config);
}

FleetRunResult FleetMonitorEngine::run() {
  NYQMON_CHECK_MSG(!ran_, "FleetMonitorEngine::run() is single-shot");
  ran_ = true;

  const auto t_start = std::chrono::steady_clock::now();

  // Fork every pair's noise seed sequentially so outcomes cannot depend on
  // thread scheduling.
  const std::vector<std::uint64_t> noise_seeds =
      fork_noise_seeds(config_.seed, fleet_.size());

  const std::size_t workers = resolve_workers(config_.workers, fleet_.size());
  const std::size_t want_shards =
      config_.shards == 0 ? 4 * workers : config_.shards;
  const std::vector<Shard> shards =
      partition_shards(fleet_.size(), want_shards);

  FleetRunResult result;
  result.pairs.resize(fleet_.size());
  result.shards_used = shards.size();

  // Round-robin shard queue: workers claim whole shards until none remain
  // (one atomic claim per shard — the batched handoff), each worker owning
  // a warm per-thread scratch arena for DSP plans and buffers.
  NYQMON_TRACE_SPAN("fleet_run", "engine");
  ShardRunOptions run_options;
  run_options.workers = workers;
  run_options.pin_threads = config_.pin_workers;
  run_options.arena.retain_across_pairs = config_.arena_retain;
  const ShardRunStats shard_stats =
      run_sharded(shards, run_options, [&](std::size_t i) {
        result.pairs[i] = drive_pair(i, noise_seeds[i]);
      });
  result.workers_used = shard_stats.workers_used;
  result.threads_pinned = shard_stats.threads_pinned;
  result.arena = shard_stats.arena;

  // Aggregate in pair order (order-stable regardless of worker count).
  for (const auto& p : result.pairs) {
    result.adaptive_cost +=
        mon::cost_of_samples(p.adaptive_samples, config_.cost);
    result.baseline_cost +=
        mon::cost_of_samples(p.baseline_samples, config_.cost);
  }
  result.store = store_.rollup();

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();

  // End-of-run checkpoint: seal the WAL-protected run into compressed
  // segments (kept out of wall_seconds — compute vs durability split).
  if (storage_ != nullptr) {
    storage_->sync();
    result.flush = storage_->flush(store_);
    result.storage = storage_->stats();
    result.persisted = true;
  }
  return result;
}

}  // namespace nyqmon::eng
