// TimeSeries / RegularSeries container semantics.
#include <gtest/gtest.h>

#include "signal/timeseries.h"

namespace {

using nyqmon::sig::RegularSeries;
using nyqmon::sig::Sample;
using nyqmon::sig::TimeSeries;

TEST(TimeSeries, PushKeepsOrderWhenMonotone) {
  TimeSeries ts;
  ts.push(0.0, 1.0);
  ts.push(1.0, 2.0);
  ts.push(2.0, 3.0);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].v, 1.0);
  EXPECT_EQ(ts[2].v, 3.0);
}

TEST(TimeSeries, PushSortsOutOfOrderSamples) {
  TimeSeries ts;
  ts.push(2.0, 30.0);
  ts.push(0.0, 10.0);
  ts.push(1.0, 20.0);
  EXPECT_EQ(ts[0].t, 0.0);
  EXPECT_EQ(ts[1].t, 1.0);
  EXPECT_EQ(ts[2].t, 2.0);
}

TEST(TimeSeries, ConstructorSortsVector) {
  TimeSeries ts(std::vector<Sample>{{3.0, 3.0}, {1.0, 1.0}, {2.0, 2.0}});
  EXPECT_EQ(ts.start_time(), 1.0);
  EXPECT_EQ(ts.end_time(), 3.0);
  EXPECT_EQ(ts.duration(), 2.0);
}

TEST(TimeSeries, StableSortPreservesDuplicateOrder) {
  TimeSeries ts(std::vector<Sample>{{1.0, 10.0}, {1.0, 20.0}});
  EXPECT_EQ(ts[0].v, 10.0);
  EXPECT_EQ(ts[1].v, 20.0);
}

TEST(TimeSeries, MedianIntervalRobustToJitterAndGaps) {
  TimeSeries ts;
  // Nominal 10 s cadence with one big gap.
  for (double t : {0.0, 10.0, 20.1, 29.9, 40.0, 200.0, 210.0}) ts.push(t, 0.0);
  EXPECT_NEAR(ts.median_interval(), 10.0, 0.2);
  EXPECT_GT(ts.mean_interval(), 30.0);  // the mean is skewed by the gap
}

TEST(TimeSeries, ValuesAndTimesExtract) {
  TimeSeries ts(std::vector<Sample>{{0.0, 5.0}, {1.0, 6.0}});
  EXPECT_EQ(ts.values(), (std::vector<double>{5.0, 6.0}));
  EXPECT_EQ(ts.times(), (std::vector<double>{0.0, 1.0}));
}

TEST(TimeSeries, EmptyAccessorsThrow) {
  const TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_THROW((void)ts.start_time(), std::invalid_argument);
  EXPECT_THROW((void)ts.median_interval(), std::invalid_argument);
}

TEST(RegularSeries, BasicAccessors) {
  const RegularSeries rs(100.0, 0.5, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(rs.size(), 4u);
  EXPECT_DOUBLE_EQ(rs.t0(), 100.0);
  EXPECT_DOUBLE_EQ(rs.dt(), 0.5);
  EXPECT_DOUBLE_EQ(rs.sample_rate_hz(), 2.0);
  EXPECT_DOUBLE_EQ(rs.duration(), 1.5);
  EXPECT_DOUBLE_EQ(rs.time_at(3), 101.5);
  EXPECT_DOUBLE_EQ(rs[2], 3.0);
}

TEST(RegularSeries, NonPositiveDtThrows) {
  EXPECT_THROW(RegularSeries(0.0, 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(RegularSeries(0.0, -1.0, {1.0}), std::invalid_argument);
}

TEST(RegularSeries, SliceSharesGrid) {
  const RegularSeries rs(0.0, 1.0, {0.0, 1.0, 2.0, 3.0, 4.0});
  const RegularSeries s = rs.slice(2, 2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.t0(), 2.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
}

TEST(RegularSeries, SliceOutOfRangeThrows) {
  const RegularSeries rs(0.0, 1.0, {1.0, 2.0});
  EXPECT_THROW((void)rs.slice(1, 2), std::invalid_argument);
}

TEST(RegularSeries, ToTimeSeriesRoundTrip) {
  const RegularSeries rs(10.0, 2.0, {7.0, 8.0, 9.0});
  const auto ts = rs.to_timeseries();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts[0].t, 10.0);
  EXPECT_DOUBLE_EQ(ts[2].t, 14.0);
  EXPECT_DOUBLE_EQ(ts[2].v, 9.0);
}

TEST(RegularSeries, EmptyDuration) {
  const RegularSeries rs(0.0, 1.0, {});
  EXPECT_TRUE(rs.empty());
  EXPECT_DOUBLE_EQ(rs.duration(), 0.0);
}

}  // namespace
