#include "query/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "dsp/resample.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/merge.h"
#include "query/selector.h"
#include "util/hash.h"
#include "util/parallel.h"

// The per-stream transform and the cross-stream column reduction live in
// query/merge.cc — shared with the cluster layer's scatter-gather merge so
// a sharded fleet reduces with byte-identical FP semantics.

namespace nyqmon::qry {

namespace {

// Contiguous stage marks for the EXPLAIN breakdown: every mark() closes
// the stage that started at the previous mark, so stage durations
// partition the elapsed time with only call-overhead gaps between them.
class StageClock {
 public:
  explicit StageClock(std::vector<QueryStageTiming>& stages)
      : stages_(stages), last_(std::chrono::steady_clock::now()) {}

  void mark(const char* stage) {
    const auto now = std::chrono::steady_clock::now();
    stages_.push_back(
        {stage, static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - last_)
                        .count())});
    last_ = now;
  }

 private:
  std::vector<QueryStageTiming>& stages_;
  std::chrono::steady_clock::time_point last_;
};

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

QueryEngine::QueryEngine(const mon::StripedRetentionStore& store,
                         QueryEngineConfig config)
    : store_(store),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards) {}

QueryResponse QueryEngine::run(const QuerySpec& spec) {
  spec.validate();
  // End-to-end latency including the cache path: the p50-vs-p99 spread of
  // this histogram is ROADMAP item 2's tail, measured per query.
  NYQMON_OBS_TIMER("nyqmon_query_latency_ns");
  NYQMON_TRACE_SPAN("query", "query");
  queries_.fetch_add(1, std::memory_order_relaxed);

  QueryResponse resp;
  const auto t_start = std::chrono::steady_clock::now();
  StageClock clock(resp.stages);

  // Metadata pass: selector match + invalidation fingerprint, no
  // reconstruction. A wildcard-free selector names at most one stream, so
  // it skips the fleet-wide scan and hits its stripe directly; globs walk
  // list_meta(), which is lexicographically sorted, so the matched order
  // (and with it every downstream reduction) is stable either way.
  std::vector<std::pair<std::string, mon::StreamMeta>> matched_meta;
  std::size_t considered = 0;
  if (is_exact(spec.selector)) {
    considered = 1;
    if (const auto m = store_.find_meta(spec.selector))
      matched_meta.emplace_back(spec.selector, *m);
  } else {
    auto meta = store_.list_meta();
    considered = meta.size();
    for (auto& [name, m] : meta)
      if (match_glob(spec.selector, name))
        matched_meta.emplace_back(std::move(name), m);
  }
  Fnv1a fp;
  for (const auto& [name, m] : matched_meta)
    fp.mix(fnv1a(name)).mix(m.generation);
  clock.mark("match");

  const std::string key = spec.canonical_key();
  if (config_.cache_enabled) {
    if (auto hit = cache_.lookup(key, fp.value())) {
      NYQMON_OBS_COUNT("nyqmon_query_cache_hits_total", 1);
      clock.mark("cache");
      resp.result = std::move(hit);
      resp.cache_hit = true;
      resp.total_ns = ns_since(t_start);
      return resp;
    }
    NYQMON_OBS_COUNT("nyqmon_query_cache_misses_total", 1);
  }
  clock.mark("cache");

  streams_considered_.fetch_add(considered, std::memory_order_relaxed);
  auto result = execute(spec, matched_meta, resp.stages);
  StageClock store_clock(resp.stages);
  if (config_.cache_enabled) cache_.insert(key, fp.value(), result);
  store_clock.mark("cache_store");
  resp.result = std::move(result);
  resp.total_ns = ns_since(t_start);
  return resp;
}

std::shared_ptr<const QueryResult> QueryEngine::execute(
    const QuerySpec& spec,
    const std::vector<std::pair<std::string, mon::StreamMeta>>& matched_meta,
    std::vector<QueryStageTiming>& stages) {
  StageClock clock(stages);
  auto result = std::make_shared<QueryResult>();
  result->spec = spec;

  // Range prune on metadata alone: a stream whose ingested span [t0, t_end)
  // misses the query range contributes nothing worth reconstructing.
  std::vector<mon::StreamMeta> kept_meta;
  for (const auto& [name, m] : matched_meta) {
    result->matched.push_back(name);
    if (m.ingested_samples > 0 && m.t0 < spec.t_end && m.t_end > spec.t_begin) {
      result->reconstructed.push_back(name);
      kept_meta.push_back(m);
    }
  }
  streams_matched_.fetch_add(result->matched.size(),
                             std::memory_order_relaxed);
  streams_pruned_.fetch_add(
      result->matched.size() - result->reconstructed.size(),
      std::memory_order_relaxed);
  streams_reconstructed_.fetch_add(result->reconstructed.size(),
                                   std::memory_order_relaxed);
  NYQMON_OBS_COUNT("nyqmon_query_streams_reconstructed_total",
                   result->reconstructed.size());
  clock.mark("prune");
  if (result->reconstructed.empty()) return result;

  // Snapshot-isolated read: capture the surviving streams' state (chunk
  // refs + hot-tail copies, briefly under each owning stripe's lock) into
  // one epoch-stamped handle. Reconstruction below never takes a stripe
  // lock — a slow query no longer blocks ingest, and ingest no longer
  // stretches the query tail (ROADMAP item 2's 1000x p50/p99 split).
  const mon::ReadSnapshot snap = store_.acquire_snapshot(result->reconstructed);
  clock.mark("snapshot");

  // Output grid timestamps, relative to t_begin (which is also where the
  // store's reconstruction grid is anchored).
  const std::size_t n_out = spec.grid_points();
  std::vector<double> rel_times(n_out);
  for (std::size_t i = 0; i < n_out; ++i)
    rel_times[i] = static_cast<double>(i) * spec.step_s;

  // Fan-out: each stream reconstructs into its pre-allocated slot; slot
  // order is the lexicographic stream order, so results are independent of
  // the worker count.
  std::vector<std::vector<double>> slots(result->reconstructed.size());
  parallel_claim(
      slots.size(), config_.workers, [&](std::size_t i) {
        auto base =
            snap.query(result->reconstructed[i], spec.t_begin, spec.t_end);
        if (base.empty()) {
          // The window is shorter than half this stream's collection
          // interval, so the store's grid rounds to zero points. Widen to
          // one collection interval: the single reconstructed point then
          // holds across the output grid (interp clamps to its support)
          // instead of fabricating zeros into aggregations.
          base = snap.query(
              result->reconstructed[i], spec.t_begin,
              spec.t_begin + 1.0 / kept_meta[i].collection_rate_hz);
        }
        slots[i] = base.empty()
                       ? std::vector<double>(n_out, 0.0)
                       : dsp::interp_linear(base.values(),
                                            base.sample_rate_hz(), rel_times);
        apply_transform(spec.transform, spec.step_s, slots[i]);
      });
  clock.mark("reconstruct");

  if (spec.aggregate == Aggregation::kNone) {
    result->series.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i)
      result->series.push_back(
          {result->reconstructed[i],
           sig::RegularSeries(spec.t_begin, spec.step_s,
                              std::move(slots[i]))});
    clock.mark("aggregate");
    return result;
  }

  // Cross-stream reduction per output timestamp, iterating streams in
  // lexicographic order (deterministic FP accumulation).
  std::vector<double> reduced(n_out, 0.0);
  std::vector<double> column(slots.size());
  for (std::size_t t = 0; t < n_out; ++t) {
    for (std::size_t i = 0; i < slots.size(); ++i) column[i] = slots[i][t];
    reduced[t] = aggregate_column(spec.aggregate, column);
  }
  result->series.push_back(
      {std::string(to_string(spec.aggregate)) + "(" + spec.selector + ")",
       sig::RegularSeries(spec.t_begin, spec.step_s, std::move(reduced))});
  clock.mark("aggregate");
  return result;
}

QueryEngineStats QueryEngine::stats() const {
  QueryEngineStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.streams_considered = streams_considered_.load(std::memory_order_relaxed);
  s.streams_matched = streams_matched_.load(std::memory_order_relaxed);
  s.streams_pruned = streams_pruned_.load(std::memory_order_relaxed);
  s.streams_reconstructed =
      streams_reconstructed_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

}  // namespace nyqmon::qry
