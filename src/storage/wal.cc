#include "storage/wal.h"

#include <filesystem>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/crc32.h"
#include "util/check.h"

namespace nyqmon::sto {

void WriteAheadLog::create(const std::string& path) {
  File f = File::create(path);
  f.write(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kWalMagic), sizeof(kWalMagic)));
  f.sync();
  f.close();
}

WriteAheadLog::WriteAheadLog(std::string path,
                             std::size_t sync_interval_batches)
    : path_(std::move(path)),
      file_(File::append(path_)),
      sync_interval_(sync_interval_batches == 0 ? 1 : sync_interval_batches) {
  NYQMON_CHECK_MSG(file_.bytes_written() >= sizeof(kWalMagic),
                   "not a WAL file: " + path_);
}

void WriteAheadLog::append_record(WalRecord::Type type,
                                  const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(9 + payload.size());
  put_u8(frame, static_cast<std::uint8_t>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  put_bytes(frame, payload);
  file_.write(frame);
  ++batches_;
  NYQMON_OBS_COUNT("nyqmon_wal_records_total", 1);
  if (++unsynced_ >= sync_interval_) sync();
}

void WriteAheadLog::append_create(const std::string& stream,
                                  double collection_rate_hz, double t0) {
  std::vector<std::uint8_t> payload;
  put_string(payload, stream);
  put_f64(payload, collection_rate_hz);
  put_f64(payload, t0);
  append_record(WalRecord::Type::kCreate, payload);
}

void WriteAheadLog::append_batch(const std::string& stream,
                                 std::span<const double> values) {
  std::vector<std::uint8_t> payload;
  payload.reserve(2 + stream.size() + 4 + 8 * values.size());
  put_string(payload, stream);
  put_u32(payload, static_cast<std::uint32_t>(values.size()));
  for (const double v : values) put_f64(payload, v);
  append_record(WalRecord::Type::kAppend, payload);
}

void WriteAheadLog::sync() {
  if (unsynced_ == 0) return;
  try {
    // ROADMAP item 3 (WAL at 44 MB/s vs flush at 447 MB/s): the fsync
    // distribution is the durability tax, measured at its source.
    NYQMON_OBS_TIMER("nyqmon_wal_fsync_ns");
    NYQMON_TRACE_SPAN("wal_fsync", "storage");
    file_.sync();
  } catch (const std::exception& e) {
    // A failed fsync means durability of the unsynced records is unknown
    // (and on most filesystems unrecoverable for this write window) —
    // loud, then rethrown: callers must see it, but the record survives
    // in the log ring even if they swallow the throw.
    NYQMON_LOG_ERROR("storage.wal_fsync_failed",
                     "path=" + path_ + " unsynced_batches=" +
                         std::to_string(unsynced_) + " what=" + e.what());
    throw;
  }
  unsynced_ = 0;
  ++syncs_;
}

WalReplayStats WriteAheadLog::replay(
    const std::string& path,
    const std::function<void(const WalRecord&)>& apply) {
  WalReplayStats stats;
  if (!std::filesystem::exists(path)) {
    create(path);
    stats.bytes_replayed = sizeof(kWalMagic);
    return stats;
  }
  const std::vector<std::uint8_t> bytes = read_file(path);
  if (bytes.size() < sizeof(kWalMagic) ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    // Unrecognizable file: treat everything as a torn tail.
    stats.records_truncated = bytes.empty() ? 0 : 1;
    create(path);
    stats.bytes_replayed = sizeof(kWalMagic);
    return stats;
  }

  std::size_t pos = sizeof(kWalMagic);
  std::size_t good_end = pos;
  bool tail_bad = false;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 9) {  // incomplete frame header
      tail_bad = true;
      break;
    }
    ByteReader frame{std::span<const std::uint8_t>(bytes).subspan(pos, 9)};
    const std::uint8_t type = frame.get_u8();
    const std::uint32_t len = frame.get_u32();
    const std::uint32_t crc = frame.get_u32();
    if ((type != 1 && type != 2) || bytes.size() - pos - 9 < len) {
      tail_bad = true;
      break;
    }
    const auto payload = std::span(bytes).subspan(pos + 9, len);
    if (crc32(payload) != crc) {
      tail_bad = true;
      break;
    }
    ByteReader r(payload);
    WalRecord rec;
    rec.type = static_cast<WalRecord::Type>(type);
    rec.stream = r.get_string();
    if (rec.type == WalRecord::Type::kCreate) {
      rec.collection_rate_hz = r.get_f64();
      rec.t0 = r.get_f64();
    } else {
      const std::uint32_t count = r.get_u32();
      rec.values.reserve(count);
      for (std::uint32_t i = 0; i < count && r.ok(); ++i)
        rec.values.push_back(r.get_f64());
      if (rec.values.size() != count) {
        tail_bad = true;  // CRC collided with a short payload; stop here
        break;
      }
    }
    if (!r.ok()) {
      tail_bad = true;
      break;
    }
    apply(rec);
    pos += 9 + len;
    good_end = pos;
    ++stats.records_replayed;
  }
  if (tail_bad) ++stats.records_truncated;
  stats.bytes_replayed = good_end;
  if (good_end < bytes.size()) truncate_file(path, good_end);
  return stats;
}

}  // namespace nyqmon::sto
