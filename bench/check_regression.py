#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json lines.

Compares the bench_results/ JSON emitted by the current build against the
checked-in baseline and fails (exit 1) when any tracked metric moves past
the allowed fraction (default 30%): higher-is-better metrics may not drop
below baseline * (1 - threshold), lower-is-better metrics (latency tails)
may not rise above baseline * (1 + threshold).

Usage:
    python3 bench/check_regression.py \
        --baseline bench_results --current build/bench_results \
        [--threshold 0.30]

A missing baseline file, missing current result, or missing tracked metric
is a hard failure, not a skip: every tracked bench has a checked-in
baseline, so an absence means the smoke silently stopped emitting (or the
baseline was dropped) and the gate would otherwise pass while checking
nothing. When adding a bench to TRACKED, commit its BENCH_*.json baseline
in the same change.
"""

import argparse
import json
import pathlib
import sys

# Tracked higher-is-better metrics per bench. List-valued metrics (e.g. a
# per-worker-count sweep) are compared on their maximum.
TRACKED = {
    "engine_throughput": ["pairs_per_sec", "scaling_efficiency"],
    "fleet_scatter": ["router_qps"],
    "query_throughput": ["qps"],
    "scenario_frontier": ["sweep_pairs_per_sec"],
    "storage_throughput": ["ingest_wal_mb_s", "flush_mb_s", "recover_mb_s"],
    "streaming_throughput": ["samples_per_sec", "qps", "concurrent_clients"],
}

# Tracked lower-is-better metrics (latency tails): fail when the current
# value exceeds baseline * (1 + threshold).
TRACKED_LOWER = {
    "streaming_throughput": ["query_p99"],
}

# Each gated metric's unit, printed with every gate line so a reader can
# tell a 35.95 ms latency tail from a 35.95 qps throughput at a glance.
# (query_p99 is the p99 latency the streaming bench's TCP query clients
# observe against the multi-reactor server under live ingest, in
# milliseconds; concurrent_clients is how many of those clients completed
# their loop without an error.) Metrics absent here print without a unit.
UNITS = {
    "pairs_per_sec": "pairs/s",
    "scaling_efficiency": "ratio",
    "router_qps": "qps",
    "qps": "qps",
    "sweep_pairs_per_sec": "pairs/s",
    "ingest_wal_mb_s": "MB/s",
    "flush_mb_s": "MB/s",
    "recover_mb_s": "MB/s",
    "samples_per_sec": "samples/s",
    "query_p99": "ms",
    "concurrent_clients": "clients",
}


def load(path: pathlib.Path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: unreadable {path}: {err}")
        return None


def metric_value(doc, key):
    value = doc.get(key)
    if isinstance(value, list):
        numeric = [v for v in value if isinstance(v, (int, float))]
        return max(numeric) if numeric else None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=pathlib.Path)
    parser.add_argument("--current", required=True, type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional move (default 0.30)")
    args = parser.parse_args()

    benches = sorted(set(TRACKED) | set(TRACKED_LOWER))
    failures = []
    checked = 0
    for bench in benches:
        name = f"BENCH_{bench}.json"
        base_doc = load(args.baseline / name)
        cur_doc = load(args.current / name)
        if base_doc is None:
            failures.append((bench, "<baseline>",
                             f"missing baseline {args.baseline / name}"))
            continue
        if cur_doc is None:
            failures.append((bench, "<current>",
                             f"missing current result {args.current / name}"))
            continue
        tracked = [(k, False) for k in TRACKED.get(bench, [])] + \
                  [(k, True) for k in TRACKED_LOWER.get(bench, [])]
        for key, lower_is_better in tracked:
            base = metric_value(base_doc, key)
            cur = metric_value(cur_doc, key)
            if base is None or cur is None or base <= 0:
                failures.append((bench, key,
                                 f"missing or non-positive value "
                                 f"(baseline={base}, current={cur})"))
                continue
            checked += 1
            ratio = cur / base
            regressed = (ratio > 1.0 + args.threshold if lower_is_better
                         else ratio < 1.0 - args.threshold)
            status = "REGRESSION" if regressed else "OK"
            arrow = "v" if lower_is_better else "^"
            unit = UNITS.get(key, "")
            unit_sfx = f" {unit}" if unit else ""
            if regressed:
                failures.append((bench, key,
                                 f"baseline {base:.3f} -> current "
                                 f"{cur:.3f}{unit_sfx} ({ratio:.2%})"))
            print(f"{status:>10}  [{arrow}] {bench}.{key}: "
                  f"baseline {base:.3f} -> current {cur:.3f}{unit_sfx}  "
                  f"({ratio:.2%})")

    if failures:
        print(f"\nFAIL: {len(failures)} gate violation(s) at threshold "
              f"{args.threshold:.0%}:")
        for bench, key, detail in failures:
            print(f"  {bench}.{key}: {detail}")
        return 1
    print(f"\nperf gate passed: {checked} metric(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
