// WorkArena accounting: the per-worker scratch arena must reach zero
// workspace heap allocations once shapes repeat (the steady-state
// guarantee the engine's throughput depends on), count re-warms honestly
// in arena-off mode, and — in Debug builds — poison-fill popped scratch
// frames and canary-check every allocation so cross-pair buffer reuse can
// never leak stale samples silently.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "dsp/fft.h"
#include "dsp/goertzel.h"
#include "dsp/workspace.h"
#include "engine/arena.h"

namespace {

using namespace nyqmon;

// One pair's worth of fixed-shape DSP work: a radix-2 rfft round trip, a
// Bluestein-length transform and a batched Goertzel — together they touch
// every workspace plan cache and the scratch stack.
void process_fixed_shape_pair() {
  std::vector<double> x(256);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.05 * static_cast<double>(i));
  const auto half = dsp::rfft(x);
  const auto back = dsp::irfft(half, x.size());
  ASSERT_EQ(back.size(), x.size());

  std::vector<double> odd(100);
  for (std::size_t i = 0; i < odd.size(); ++i)
    odd[i] = static_cast<double>(i % 7) - 3.0;
  const auto spec = dsp::fft_real(odd);
  ASSERT_EQ(spec.size(), odd.size());

  const double freqs[] = {1.0, 2.5, 7.75};
  const auto powers = dsp::goertzel_power_multi(x, 64.0, freqs);
  ASSERT_EQ(powers.size(), 3u);
}

TEST(WorkArena, ZeroWorkspaceAllocationsAfterWarmup) {
  // A prior test on this thread may have warmed the workspace; wipe it so
  // this arena observes a genuine cold start.
  dsp::this_thread_workspace().reset();

  eng::WorkArena arena;  // retain_across_pairs defaults on
  constexpr std::size_t kPairs = 8;
  std::uint64_t first_pair_allocs = 0;
  for (std::size_t p = 0; p < kPairs; ++p) {
    arena.begin_pair();
    process_fixed_shape_pair();
    const std::uint64_t allocs = arena.end_pair();
    if (p == 0) {
      first_pair_allocs = allocs;
      EXPECT_GT(allocs, 0u) << "cold pair must build plans and scratch";
    } else {
      EXPECT_EQ(allocs, 0u) << "warm pair " << p << " allocated";
    }
  }

  const eng::WorkArenaStats stats = arena.stats();
  EXPECT_EQ(stats.pairs_processed, kPairs);
  EXPECT_EQ(stats.warm_pairs_with_allocations, 0u);
  EXPECT_EQ(stats.heap_allocations, first_pair_allocs);
  EXPECT_EQ(stats.heap_allocations,
            stats.plan_builds + stats.scratch_block_allocs);
  EXPECT_GT(stats.plan_cache_bytes, 0u);
  EXPECT_GT(stats.scratch_capacity_bytes, 0u);
  EXPECT_EQ(stats.cache_flushes, 0u);
}

TEST(WorkArena, RetainOffRewarmsEveryPair) {
  dsp::this_thread_workspace().reset();

  eng::WorkArenaConfig cfg;
  cfg.retain_across_pairs = false;
  eng::WorkArena arena(cfg);
  constexpr std::size_t kPairs = 5;
  for (std::size_t p = 0; p < kPairs; ++p) {
    arena.begin_pair();
    process_fixed_shape_pair();
    EXPECT_GT(arena.end_pair(), 0u)
        << "arena-off pair " << p << " should re-warm from scratch";
  }
  const eng::WorkArenaStats stats = arena.stats();
  EXPECT_EQ(stats.pairs_processed, kPairs);
  // Every pair after the first allocated (the wipe forces it).
  EXPECT_EQ(stats.warm_pairs_with_allocations, kPairs - 1);
}

TEST(WorkArena, StatsSumAcrossWorkers) {
  eng::WorkArenaStats a;
  a.heap_allocations = 3;
  a.plan_builds = 2;
  a.pairs_processed = 10;
  a.scratch_capacity_bytes = 100;
  eng::WorkArenaStats b;
  b.heap_allocations = 4;
  b.warm_pairs_with_allocations = 1;
  b.pairs_processed = 6;
  b.scratch_capacity_bytes = 250;
  a += b;
  EXPECT_EQ(a.heap_allocations, 7u);
  EXPECT_EQ(a.plan_builds, 2u);
  EXPECT_EQ(a.pairs_processed, 16u);
  EXPECT_EQ(a.warm_pairs_with_allocations, 1u);
  // Byte gauges combine as totals too (fleet-wide footprint).
  EXPECT_EQ(a.scratch_capacity_bytes, 350u);
}

TEST(Workspace, CountersSurviveReset) {
  dsp::Workspace ws;
  ws.radix2_plan(64);
  const std::uint64_t builds = ws.plan_builds();
  EXPECT_GT(builds, 0u);
  ws.reset();
  EXPECT_EQ(ws.plan_builds(), builds);  // cumulative
  EXPECT_EQ(ws.plan_cache_bytes(), 0u);
  ws.radix2_plan(64);
  EXPECT_GT(ws.plan_builds(), builds);  // rebuilt after the wipe
}

TEST(Workspace, ResetWithOpenFrameIsRejected) {
  dsp::Workspace ws;
  auto frame = ws.frame();
  frame.doubles(8);
  EXPECT_THROW(ws.reset(), std::invalid_argument);
}

#ifndef NDEBUG
TEST(Workspace, DebugPoisonFillsPoppedFrames) {
  dsp::Workspace ws;
  constexpr std::size_t kN = 32;
  {
    auto frame = ws.frame();
    double* p = frame.doubles(kN);
    for (std::size_t i = 0; i < kN; ++i) p[i] = 42.0;
  }
  // The next frame's identically-shaped allocation lands on the same
  // bytes; they must read back as poison, not as the 42.0s of the prior
  // "pair".
  auto frame = ws.frame();
  const auto* bytes =
      reinterpret_cast<const unsigned char*>(frame.doubles(kN));
  for (std::size_t i = 0; i < kN * sizeof(double); ++i)
    ASSERT_EQ(bytes[i], 0xA5u) << "byte " << i << " not poisoned";
}

using WorkspaceDeathTest = ::testing::Test;

TEST(WorkspaceDeathTest, DebugCanaryCatchesOverrun) {
  // Writing one element past an allocation smashes its trailing canary;
  // the frame pop must abort loudly (the check throws from a destructor,
  // which terminates) instead of corrupting a neighbouring buffer.
  EXPECT_DEATH(
      {
        dsp::Workspace ws;
        auto frame = ws.frame();
        double* p = frame.doubles(4);
        p[4] = 1.0;  // overrun into the canary
      },
      "canary");
}
#endif  // !NDEBUG

}  // namespace
