#include "monitor/store.h"

#include <algorithm>
#include <cmath>

#include "dsp/resample.h"
#include "storage/codec.h"
#include "util/check.h"

namespace nyqmon::mon {

RetentionStore::RetentionStore(StoreConfig config) : config_(config) {
  NYQMON_CHECK(config_.chunk_samples >= 32);
  NYQMON_CHECK(config_.headroom >= 1.0);
}

void RetentionStore::create_stream(const std::string& name,
                                   double collection_rate_hz, double t0) {
  NYQMON_CHECK(collection_rate_hz > 0.0);
  NYQMON_CHECK_MSG(streams_.find(name) == streams_.end(),
                   "stream already exists: " + name);
  if (sink_ != nullptr) sink_->on_create_stream(name, collection_rate_hz, t0);
  Stream s;
  s.collection_rate_hz = collection_rate_hz;
  s.t0 = t0;
  s.hot_t0 = t0;
  streams_.emplace(name, std::move(s));
}

void RetentionStore::append(const std::string& name, double value) {
  append_series(name, std::span<const double>(&value, 1));
}

void RetentionStore::append_series(const std::string& name,
                                   std::span<const double> values) {
  const auto it = streams_.find(name);
  NYQMON_CHECK_MSG(it != streams_.end(), "unknown stream: " + name);
  Stream& s = it->second;
  if (values.empty()) return;
  // Write-ahead: the sink logs the batch before any in-memory mutation, so
  // a crash mid-batch replays to a state at or before this append.
  if (sink_ != nullptr) sink_->on_append(name, values);
  ++s.generation;
  for (const double value : values) {
    s.hot.push_back(value);
    ++s.ingested;
    ++s.stats.ingested_samples;
    s.stats.bytes_raw += sizeof(double);
    s.stats.bytes_stored += sizeof(double);  // tail held raw until sealed
    if (s.hot.size() >= config_.chunk_samples) seal_chunk(s);
  }
}

void RetentionStore::seal_chunk(Stream& s) {
  NYQMON_ENSURE(!s.hot.empty());
  const double raw_dt = 1.0 / s.collection_rate_hz;

  Chunk chunk;
  chunk.t0 = s.hot_t0;
  chunk.dt = raw_dt;
  chunk.values = s.hot;

  // A-posteriori re-sampling: estimate the chunk's Nyquist rate and keep
  // only headroom * that rate when it undercuts the collection rate.
  const nyq::NyquistEstimator estimator(config_.estimator);
  const auto est = estimator.estimate(s.hot, s.collection_rate_hz);
  if (est.ok()) {
    const double keep_rate =
        std::min(s.collection_rate_hz, config_.headroom * est.nyquist_rate_hz);
    const auto n_keep = static_cast<std::size_t>(std::max(
        2.0, std::ceil(static_cast<double>(s.hot.size()) * keep_rate /
                       s.collection_rate_hz)));
    if (n_keep < s.hot.size()) {
      chunk.values = dsp::resample_fourier(s.hot, n_keep);
      chunk.dt = raw_dt * static_cast<double>(s.hot.size()) /
                 static_cast<double>(n_keep);
      ++s.stats.chunks_reduced;
    }
  }

  // Byte accounting: the sealed samples leave the raw tail tier and land on
  // disk (at flush) codec-encoded plus fixed per-chunk framing.
  s.stats.bytes_stored -= sizeof(double) * s.hot.size();
  s.stats.bytes_stored +=
      sto::xor_encoded_size(chunk.values) + sto::kChunkDiskOverheadBytes;

  s.stats.sealed_ingested_samples += s.hot.size();
  s.stats.stored_samples += chunk.values.size();
  ++s.stats.chunks;
  s.hot_t0 += raw_dt * static_cast<double>(s.hot.size());
  s.hot.clear();
  s.chunks.push_back(std::move(chunk));
}

const RetentionStore::Stream& RetentionStore::stream(
    const std::string& name) const {
  const auto it = streams_.find(name);
  NYQMON_CHECK_MSG(it != streams_.end(), "unknown stream: " + name);
  return it->second;
}

sig::RegularSeries RetentionStore::query(const std::string& name,
                                         double t_begin, double t_end) const {
  const Stream& s = stream(name);
  const double dt = 1.0 / s.collection_rate_hz;

  // Half-open [t_begin, t_end): inverted/empty ranges clamp to a defined
  // empty series on the collection grid instead of reaching reconstruction.
  const auto n = t_end > t_begin
                     ? static_cast<std::size_t>(
                           std::floor((t_end - t_begin) / dt + 0.5))
                     : 0;
  if (n == 0) return sig::RegularSeries(t_begin, dt, {});

  // Assemble the query grid and fill it chunk by chunk; each sealed chunk
  // is reconstructed onto the collection grid by band-limited resampling,
  // the hot tail is already on it.
  std::vector<double> grid(n, 0.0);
  std::vector<bool> filled(n, false);

  auto fill_from = [&](double c_t0, double c_dt,
                       const std::vector<double>& values) {
    if (values.empty()) return;
    const double c_end = c_t0 + c_dt * static_cast<double>(values.size());
    // Dense representation of this chunk on the collection grid.
    const auto dense_n = static_cast<std::size_t>(std::max(
        2.0, std::round((c_end - c_t0) / dt)));
    std::vector<double> dense =
        values.size() == dense_n
            ? values
            : dsp::resample_fourier(values, dense_n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = t_begin + static_cast<double>(i) * dt;
      if (t < c_t0 - 1e-9 || t >= c_end - 1e-9) continue;
      const auto j = static_cast<std::size_t>(
          std::min(static_cast<double>(dense.size() - 1),
                   std::max(0.0, std::round((t - c_t0) / dt))));
      grid[i] = dense[j];
      filled[i] = true;
    }
  };

  for (const auto& chunk : s.chunks) fill_from(chunk.t0, chunk.dt, chunk.values);
  fill_from(s.hot_t0, dt, s.hot);

  // Holes (queries beyond stored data) hold the nearest filled value.
  double last = 0.0;
  bool seen = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (filled[i]) {
      last = grid[i];
      seen = true;
    } else if (seen) {
      grid[i] = last;
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    if (filled[i]) {
      last = grid[i];
      seen = true;
    } else if (seen) {
      grid[i] = last;
    }
  }

  // Range entirely disjoint from stored data: hold the nearest stored
  // value (the first for grids before the data, the last for grids past
  // its end — judged by the last actual grid point, not t_end, which can
  // overshoot the final point by up to a step). A stream with no data at
  // all stays zero.
  if (!seen && (!s.hot.empty() || !s.chunks.empty())) {
    const double data_t0 = s.chunks.empty() ? s.hot_t0 : s.chunks.front().t0;
    const double first =
        s.chunks.empty() ? s.hot.front() : s.chunks.front().values.front();
    const double final_value =
        s.hot.empty() ? s.chunks.back().values.back() : s.hot.back();
    const double t_last = t_begin + dt * static_cast<double>(n - 1);
    std::fill(grid.begin(), grid.end(),
              t_last < data_t0 ? first : final_value);
  }
  return sig::RegularSeries(t_begin, dt, std::move(grid));
}

StreamStats RetentionStore::stats(const std::string& name) const {
  return stream(name).stats;
}

namespace {

StreamMeta make_meta(double rate_hz, double t0, std::size_t ingested,
                     std::uint64_t generation) {
  StreamMeta m;
  m.collection_rate_hz = rate_hz;
  m.t0 = t0;
  m.t_end = t0 + static_cast<double>(ingested) / rate_hz;
  m.generation = generation;
  m.ingested_samples = ingested;
  return m;
}

}  // namespace

StreamMeta RetentionStore::meta(const std::string& name) const {
  const Stream& s = stream(name);
  return make_meta(s.collection_rate_hz, s.t0, s.ingested, s.generation);
}

std::optional<StreamMeta> RetentionStore::find_meta(
    const std::string& name) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) return std::nullopt;
  const Stream& s = it->second;
  return make_meta(s.collection_rate_hz, s.t0, s.ingested, s.generation);
}

std::vector<std::pair<std::string, StreamMeta>> RetentionStore::list_meta()
    const {
  std::vector<std::pair<std::string, StreamMeta>> out;
  out.reserve(streams_.size());
  for (const auto& [name, s] : streams_)
    out.emplace_back(
        name, make_meta(s.collection_rate_hz, s.t0, s.ingested, s.generation));
  return out;
}

StoreRollup& StoreRollup::operator+=(const StoreRollup& other) {
  streams += other.streams;
  ingested_samples += other.ingested_samples;
  sealed_ingested_samples += other.sealed_ingested_samples;
  stored_samples += other.stored_samples;
  chunks += other.chunks;
  chunks_reduced += other.chunks_reduced;
  bytes_raw += other.bytes_raw;
  bytes_stored += other.bytes_stored;
  return *this;
}

StreamSnapshot RetentionStore::snapshot_stream(const std::string& name,
                                               std::size_t skip_chunks) const {
  const Stream& s = stream(name);
  NYQMON_CHECK(skip_chunks <= s.chunks.size());
  StreamSnapshot snap;
  snap.name = name;
  snap.collection_rate_hz = s.collection_rate_hz;
  snap.t0 = s.t0;
  snap.hot_t0 = s.hot_t0;
  snap.generation = s.generation;
  snap.chunks_before = skip_chunks;
  snap.chunks.reserve(s.chunks.size() - skip_chunks);
  for (std::size_t i = skip_chunks; i < s.chunks.size(); ++i)
    snap.chunks.push_back({s.chunks[i].t0, s.chunks[i].dt, s.chunks[i].values});
  snap.hot = s.hot;
  snap.stats = s.stats;
  return snap;
}

void RetentionStore::restore_stream(StreamSnapshot snapshot) {
  NYQMON_CHECK(snapshot.collection_rate_hz > 0.0);
  NYQMON_CHECK_MSG(snapshot.chunks_before == 0,
                   "restore needs a full snapshot: " + snapshot.name);
  NYQMON_CHECK_MSG(streams_.find(snapshot.name) == streams_.end(),
                   "stream already exists: " + snapshot.name);
  Stream s;
  s.collection_rate_hz = snapshot.collection_rate_hz;
  s.t0 = snapshot.t0;
  s.hot_t0 = snapshot.hot_t0;
  s.ingested = snapshot.stats.ingested_samples;
  s.hot = std::move(snapshot.hot);
  s.chunks.reserve(snapshot.chunks.size());
  for (auto& c : snapshot.chunks)
    s.chunks.push_back({c.t0, c.dt, std::move(c.values)});
  s.stats = snapshot.stats;
  s.generation = snapshot.generation;
  streams_.emplace(std::move(snapshot.name), std::move(s));
}

std::vector<std::string> RetentionStore::stream_names() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, s] : streams_) names.push_back(name);
  return names;
}

StoreRollup RetentionStore::rollup() const {
  StoreRollup total;
  total.streams = streams_.size();
  for (const auto& [name, s] : streams_) {
    total.ingested_samples += s.stats.ingested_samples;
    total.sealed_ingested_samples += s.stats.sealed_ingested_samples;
    total.stored_samples += s.stats.stored_samples;
    total.chunks += s.stats.chunks;
    total.chunks_reduced += s.stats.chunks_reduced;
    total.bytes_raw += s.stats.bytes_raw;
    total.bytes_stored += s.stats.bytes_stored;
  }
  return total;
}

Cost RetentionStore::storage_cost() const {
  std::size_t samples = 0;
  for (const auto& [name, s] : streams_) {
    samples += s.hot.size();
    for (const auto& chunk : s.chunks) samples += chunk.values.size();
  }
  return cost_of_samples(samples, config_.cost);
}

}  // namespace nyqmon::mon
