// Per-thread DSP workspace: plan caches + a frame-based scratch stack.
//
// The fleet engine processes hundreds of thousands of windows per run, and
// before this existed every FFT call recomputed its twiddle factors (67% of
// fleet CPU went to fft_radix2_inplace alone), every Bluestein transform
// rebuilt its chirp and re-transformed the b sequence, and every
// periodogram regenerated its window with a cos() per coefficient. The
// workspace makes all of that a once-per-shape cost:
//
//   * radix-2 twiddle plans (forward + inverse tables, per stage);
//   * Bluestein plans (chirp + the cached FFT of the b sequence — saves one
//     of the three radix-2 FFTs per call plus all the chirp trig);
//   * rfft unpack twiddle tables;
//   * window coefficient vectors and their energies.
//
// Plans affect the computed bits (a twiddle table is more accurate than the
// w *= wlen recurrence it replaced), but identically so at every SIMD
// dispatch level — the bit-identity contract in simd.h is between levels,
// and every plan is built by shared scalar code.
//
// The scratch stack is a block-chained bump allocator with RAII frames:
//
//   auto frame = ws.frame();
//   double* buf = frame.doubles(n);   // freed when `frame` pops
//
// Steady-state window processing allocates nothing: blocks are retained
// across frames, so after warmup heap_allocations() stops moving — that
// counter is what the arena accounting test and the throughput bench
// watch. Debug builds poison-fill popped frames (0xA5) and place a canary
// after every allocation, so cross-pair reuse of stale samples or a buffer
// overrun aborts loudly instead of corrupting a digest.
//
// A Workspace is single-threaded by design; this_thread_workspace() hands
// each engine worker its own instance (eng::WorkArena scopes and accounts
// for it).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dsp/window.h"

namespace nyqmon::dsp {

using cdouble = std::complex<double>;

class Workspace {
 public:
  Workspace();
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // ------------------------------------------------------------ plans ----

  // Twiddle tables for the iterative radix-2 FFT of size n. Stage
  // len = 2, 4, ..., n contributes len/2 consecutive entries
  // exp(sign*2*pi*i*k/len), k in [0, len/2); stages are concatenated in
  // ascending len order (total n-1 entries).
  struct Radix2Plan {
    std::size_t n = 0;
    std::vector<cdouble> forward;  // sign = -1
    std::vector<cdouble> inverse;  // sign = +1
  };
  const Radix2Plan& radix2_plan(std::size_t n);

  // Bluestein chirp-z plan for an arbitrary-length DFT of size n.
  struct BluesteinPlan {
    std::size_t n = 0;
    std::size_t m = 0;  // next_power_of_two(2n - 1)
    std::vector<cdouble> chirp;     // w[k] = exp(sign*i*pi*k^2/n), length n
    std::vector<cdouble> b_fft;     // forward FFT of the b sequence, length m
  };
  const BluesteinPlan& bluestein_plan(std::size_t n, bool inverse);

  // Unpack twiddles for the packed real FFT of (even) size n:
  // exp(-2*pi*i*k/n) for k in [0, n/2].
  const std::vector<cdouble>& rfft_unpack_table(std::size_t n);

  // Cached window coefficients / energy (sum of squared coefficients).
  const std::vector<double>& window(WindowType type, std::size_t n,
                                    bool symmetric = false);
  double window_energy(WindowType type, std::size_t n,
                       bool symmetric = false);

  // ---------------------------------------------------------- scratch ----

  // RAII scratch frame: everything allocated through it is released (and,
  // in Debug, canary-checked + poison-filled) when the frame pops. Frames
  // nest; pop order must match construction order (guaranteed by scoping).
  class Frame {
   public:
    explicit Frame(Workspace& ws);
    ~Frame();
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    double* doubles(std::size_t n);
    cdouble* cdoubles(std::size_t n);

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t offset_;
  };
  Frame frame() { return Frame(*this); }

  /// Drop every plan cache and scratch block (counters are cumulative and
  /// survive). Must not be called with a frame open. Arena-off mode wipes
  /// the workspace between pairs with this; it is also the test hook for
  /// forcing re-warmup.
  void reset();

  // --------------------------------------------------------- counters ----

  // Heap allocations attributable to this workspace: scratch block growth
  // plus plan/window cache builds. Flat after warmup — the zero-allocation
  // guarantee the arena test asserts.
  std::uint64_t heap_allocations() const {
    return scratch_block_allocs_ + plan_builds_;
  }
  std::uint64_t scratch_block_allocs() const { return scratch_block_allocs_; }
  std::uint64_t plan_builds() const { return plan_builds_; }
  // Times the plan caches overflowed their byte cap and were dropped.
  std::uint64_t cache_flushes() const { return cache_flushes_; }
  std::size_t scratch_capacity_bytes() const;
  std::size_t plan_cache_bytes() const { return plan_cache_bytes_; }

 private:
  friend class Frame;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;  // end of the last allocation in this block
  };

  std::byte* scratch_alloc(std::size_t bytes);
  void maybe_flush_plans();

  // Scratch stack state.
  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;
  std::size_t cur_off_ = 0;
  int frame_depth_ = 0;

  // Plan caches.
  std::map<std::size_t, Radix2Plan> radix2_;
  std::map<std::pair<std::size_t, bool>, BluesteinPlan> bluestein_;
  std::map<std::size_t, std::vector<cdouble>> rfft_unpack_;
  struct WindowEntry {
    std::vector<double> coeffs;
    double energy = 0.0;
  };
  std::map<std::tuple<int, std::size_t, bool>, WindowEntry> windows_;
  const WindowEntry& window_entry(WindowType type, std::size_t n,
                                  bool symmetric);

  std::size_t plan_cache_bytes_ = 0;
  std::uint64_t scratch_block_allocs_ = 0;
  std::uint64_t plan_builds_ = 0;
  std::uint64_t cache_flushes_ = 0;
};

/// The calling thread's workspace (created on first use). Engine workers
/// pin their per-worker arenas to this.
Workspace& this_thread_workspace();

}  // namespace nyqmon::dsp
