#include "analysis/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/ascii.h"
#include "util/check.h"

namespace nyqmon::ana {

Histogram::Histogram(std::span<const double> samples, std::size_t bins,
                     bool log_scale)
    : log_(log_scale), counts_(bins, 0) {
  NYQMON_CHECK(bins >= 1);
  NYQMON_CHECK(!samples.empty());

  auto to_space = [this](double v) { return log_ ? std::log10(v) : v; };
  lo_ = hi_ = 0.0;
  bool first = true;
  for (double v : samples) {
    if (log_) NYQMON_CHECK_MSG(v > 0.0, "log histogram needs positive samples");
    const double x = to_space(v);
    if (first) {
      lo_ = hi_ = x;
      first = false;
    } else {
      lo_ = std::min(lo_, x);
      hi_ = std::max(hi_, x);
    }
  }
  if (hi_ == lo_) hi_ = lo_ + 1.0;  // degenerate: single-valued input

  const double width = (hi_ - lo_) / static_cast<double>(bins);
  for (double v : samples) {
    const double x = to_space(v);
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    idx = std::min(idx, bins - 1);
    ++counts_[idx];
    ++total_;
  }
}

std::pair<double, double> Histogram::edges(std::size_t bin) const {
  NYQMON_CHECK(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double a = lo_ + width * static_cast<double>(bin);
  const double b = a + width;
  if (log_) return {std::pow(10.0, a), std::pow(10.0, b)};
  return {a, b};
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(int width) const {
  std::vector<std::pair<std::string, double>> bars;
  bars.reserve(counts_.size());
  char label[48];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [lo, hi] = edges(b);
    std::snprintf(label, sizeof label, "[%.3g, %.3g)", lo, hi);
    bars.emplace_back(label, static_cast<double>(counts_[b]));
  }
  return ascii_barchart(bars, width);
}

}  // namespace nyqmon::ana
