// nyqmon_top — live terminal dashboard for a nyqmond fleet.
//
// Usage:
//   nyqmon_top <host> <port> [--interval <ms>] [--count <n>] [--plain]
//
// Polls METRICS with the fleet flag each interval: against a router the
// reply carries one `# == node <name> ==` Prometheus section per node
// (router first), against a plain nyqmond it is a single unnamed section.
// Each refresh shows, per node:
//
//   qps      queries answered per second      (Δ query latency _count)
//   ingest/s ingest frames per second         (Δ ingest latency _count)
//   replyq   reply-queue bytes gauge          (backpressure indicator)
//   lockc/s  contended store-lock acquisitions per second
//   p50/p99  query latency quantiles, ms      (summary quantile lines)
//
// plus a QPS sparkline over the last kHistory refreshes. The screen is
// redrawn with ANSI clear; --plain suppresses the clear and uses ASCII
// sparkline glyphs (for logs / dumb terminals). --count bounds the number
// of refreshes (0 = run until interrupted), which is also how the smoke
// path exercises this tool non-interactively.
//
// A poll that fails (router restarting, node unreachable) prints the error
// and keeps polling; the connection is re-opened on the next tick.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

using namespace nyqmon;

namespace {

constexpr std::size_t kHistory = 32;

int usage() {
  std::fprintf(stderr,
               "usage: nyqmon_top <host> <port> [--interval <ms>] "
               "[--count <n>] [--plain]\n");
  return 2;
}

/// One node's parsed exposition: metric line -> value. Keys keep their
/// label set verbatim (`foo{quantile="0.99"}`), so quantile lines are
/// addressable without a label parser.
using MetricMap = std::map<std::string, double>;

struct NodeSection {
  std::string name;
  MetricMap metrics;
};

/// Split a (possibly fleet) exposition into per-node sections. Without any
/// `# == node <name> ==` marker the whole text is one section named
/// `fallback_name`.
std::vector<NodeSection> parse_sections(const std::string& text,
                                        const std::string& fallback_name) {
  std::vector<NodeSection> sections;
  std::size_t pos = 0;
  NodeSection current;
  current.name = fallback_name;
  bool saw_marker = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# == node ", 0) == 0 && line.size() > 13 &&
        line.compare(line.size() - 3, 3, " ==") == 0) {
      if (saw_marker || !current.metrics.empty())
        sections.push_back(std::move(current));
      current = NodeSection{};
      current.name = line.substr(10, line.size() - 13);
      saw_marker = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0) continue;
    current.metrics[line.substr(0, space)] =
        std::atof(line.c_str() + space + 1);
  }
  if (saw_marker || !current.metrics.empty())
    sections.push_back(std::move(current));
  return sections;
}

double metric_or(const MetricMap& m, const std::string& key, double fallback) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

/// Rate of a cumulative counter between two polls (0 on the first poll or
/// after a counter reset).
double rate_per_s(const MetricMap& now, const MetricMap* prev,
                  const std::string& key, double dt_s) {
  if (prev == nullptr || dt_s <= 0) return 0.0;
  const double delta = metric_or(now, key, 0) - metric_or(*prev, key, 0);
  return delta < 0 ? 0.0 : delta / dt_s;
}

std::string sparkline(const std::deque<double>& history, bool plain) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  static const char kAscii[] = {'_', '.', ':', '-', '=', '+', '*', '#'};
  double peak = 0;
  for (const double v : history) peak = v > peak ? v : peak;
  std::string out;
  for (const double v : history) {
    const int level =
        peak <= 0 ? 0
                  : static_cast<int>(v / peak * 7.0 + 0.5);
    const int clamped = level < 0 ? 0 : (level > 7 ? 7 : level);
    if (plain)
      out.push_back(kAscii[clamped]);
    else
      out += kBlocks[clamped];
  }
  return out;
}

struct NodeHistory {
  MetricMap last;
  bool has_last = false;
  std::deque<double> qps;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string host = argv[1];
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  long interval_ms = 1000;
  long count = 0;  // 0 = forever
  bool plain = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_ms = std::atol(argv[++i]);
      if (interval_ms <= 0) return usage();
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--plain") == 0) {
      plain = true;
    } else {
      return usage();
    }
  }

  const std::string fallback_name = host + ":" + std::to_string(port);
  std::map<std::string, NodeHistory> histories;
  std::unique_ptr<srv::NyqmonClient> client;
  auto t_last = std::chrono::steady_clock::now();
  bool first = true;

  for (long tick = 0; count == 0 || tick < count; ++tick) {
    if (!first)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::string text;
    try {
      if (client == nullptr)
        client = std::make_unique<srv::NyqmonClient>(
            host, port, srv::ClientOptions{2000, 5000, srv::kMaxFrameBytes});
      text = client->metrics_text(/*fleet=*/true);
    } catch (const std::exception& e) {
      client.reset();  // reconnect next tick
      std::printf("nyqmon_top: poll failed: %s\n", e.what());
      first = false;
      continue;
    }
    const auto t_now = std::chrono::steady_clock::now();
    const double dt_s =
        first ? 0.0
              : std::chrono::duration<double>(t_now - t_last).count();
    t_last = t_now;

    const std::vector<NodeSection> nodes =
        parse_sections(text, fallback_name);
    if (!plain) std::printf("\x1b[2J\x1b[H");
    std::printf("nyqmon_top — %s  nodes=%zu  interval=%ldms%s\n\n",
                fallback_name.c_str(), nodes.size(), interval_ms,
                first ? "  (priming counters)" : "");
    std::printf("%-12s %9s %9s %9s %8s %8s %8s  %s\n", "node", "qps",
                "ingest/s", "replyq", "lockc/s", "p50ms", "p99ms", "qps");
    for (const NodeSection& node : nodes) {
      NodeHistory& hist = histories[node.name];
      const MetricMap* prev = hist.has_last ? &hist.last : nullptr;
      const double qps = rate_per_s(
          node.metrics, prev, "nyqmon_server_query_latency_ns_count", dt_s);
      const double ingest = rate_per_s(
          node.metrics, prev, "nyqmon_server_ingest_latency_ns_count", dt_s);
      const double replyq =
          metric_or(node.metrics, "nyqmon_server_reply_queue_bytes", 0);
      const double lockc = rate_per_s(
          node.metrics, prev, "nyqmon_store_lock_contended_total", dt_s);
      const double p50_ms =
          metric_or(node.metrics,
                    "nyqmon_server_query_latency_ns{quantile=\"0.5\"}", 0) /
          1e6;
      const double p99_ms =
          metric_or(node.metrics,
                    "nyqmon_server_query_latency_ns{quantile=\"0.99\"}", 0) /
          1e6;
      hist.qps.push_back(qps);
      while (hist.qps.size() > kHistory) hist.qps.pop_front();
      hist.last = node.metrics;
      hist.has_last = true;
      std::printf("%-12s %9.1f %9.1f %9.0f %8.1f %8.3f %8.3f  %s\n",
                  node.name.empty() ? "(unnamed)" : node.name.c_str(), qps,
                  ingest, replyq, lockc, p50_ms, p99_ms,
                  sparkline(hist.qps, plain).c_str());
    }
    std::fflush(stdout);
    first = false;
  }
  return 0;
}
