#include "nyquist/estimator.h"

#include <cmath>

#include "dsp/detrend.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace nyqmon::nyq {

double NyquistEstimate::reduction_ratio() const {
  NYQMON_CHECK_MSG(verdict == Verdict::kOk,
                   "reduction_ratio requires an Ok estimate");
  NYQMON_ENSURE(nyquist_rate_hz > 0.0);
  return trace_rate_hz / nyquist_rate_hz;
}

std::string to_string(NyquistEstimate::Verdict v) {
  switch (v) {
    case NyquistEstimate::Verdict::kOk: return "ok";
    case NyquistEstimate::Verdict::kAliased: return "aliased";
    case NyquistEstimate::Verdict::kTooShort: return "too-short";
    case NyquistEstimate::Verdict::kFlat: return "flat";
  }
  return "unknown";
}

NyquistEstimator::NyquistEstimator(EstimatorConfig config)
    : config_(config) {
  NYQMON_CHECK(config_.energy_cutoff > 0.0 && config_.energy_cutoff <= 1.0);
  NYQMON_CHECK(config_.aliased_bin_fraction > 0.0 &&
               config_.aliased_bin_fraction <= 1.0);
  NYQMON_CHECK(config_.min_samples >= 4);
}

NyquistEstimate NyquistEstimator::estimate(
    const sig::RegularSeries& trace) const {
  return estimate(trace.span(), trace.sample_rate_hz());
}

NyquistEstimate NyquistEstimator::estimate(std::span<const double> values,
                                           double sample_rate_hz) const {
  NYQMON_CHECK(sample_rate_hz > 0.0);

  NyquistEstimate est;
  est.trace_rate_hz = sample_rate_hz;
  if (values.size() < config_.min_samples) {
    est.verdict = NyquistEstimate::Verdict::kTooShort;
    return est;
  }

  // Detrend. (Mean removal also happens inside the periodogram, but linear
  // detrending must precede windowing, so handle both here and disable the
  // periodogram's own mean removal.)
  std::vector<double> x;
  switch (config_.detrend) {
    case DetrendMode::kNone:
      x.assign(values.begin(), values.end());
      break;
    case DetrendMode::kMean:
      x = dsp::remove_mean(values);
      break;
    case DetrendMode::kLinear:
      x = dsp::remove_linear_trend(values);
      break;
  }

  dsp::Psd psd;
  {
    // The PSD transform is the estimator's FFT-bound core, timed apart
    // from the sample stage that wraps it (nyqmon_engine_stage_sample_ns).
    NYQMON_OBS_TIMER("nyqmon_engine_stage_fft_ns");
    if (config_.welch_segments > 1) {
      dsp::WelchConfig wc;
      wc.segment_length = std::max<std::size_t>(
          config_.min_samples, x.size() / config_.welch_segments * 2);
      wc.overlap = 0.5;
      wc.window = config_.window;
      wc.remove_mean = false;
      psd = dsp::welch(x, sample_rate_hz, wc);
    } else {
      dsp::PeriodogramConfig pc;
      pc.window = config_.window;
      pc.remove_mean = false;
      psd = dsp::periodogram(x, sample_rate_hz, pc);
    }
  }

  est.total_bins = psd.bins();
  est.total_energy = psd.total_energy();

  // A (near-)constant trace has essentially no energy after detrending;
  // relative to the signal magnitude, call it flat.
  double scale = 0.0;
  for (double v : values) scale = std::max(scale, std::abs(v));
  const double flat_floor =
      std::max(1e-24, 1e-20 * scale * scale * static_cast<double>(values.size()));
  if (est.total_energy <= flat_floor) {
    est.verdict = NyquistEstimate::Verdict::kFlat;
    est.nyquist_rate_hz = 0.0;
    return est;
  }

  const std::size_t k = psd.cumulative_energy_bin(config_.energy_cutoff);
  est.cutoff_bin = k;
  est.cutoff_frequency_hz = psd.frequency_hz[k];

  // Paper step (c): if we need (essentially) every bin, the signal is
  // probably aliased already; record -1.
  if (static_cast<double>(k) >=
      config_.aliased_bin_fraction * static_cast<double>(psd.bins() - 1)) {
    est.verdict = NyquistEstimate::Verdict::kAliased;
    est.nyquist_rate_hz = -1.0;
    return est;
  }

  est.verdict = NyquistEstimate::Verdict::kOk;
  est.nyquist_rate_hz = 2.0 * est.cutoff_frequency_hz;
  // A nonzero-energy signal whose occupied band rounds to the DC bin still
  // needs *some* sampling; report one bin's worth of bandwidth as a floor.
  if (est.nyquist_rate_hz <= 0.0)
    est.nyquist_rate_hz = 2.0 * psd.resolution_hz();
  return est;
}

}  // namespace nyqmon::nyq
