// Filtering primitives.
//
// The reconstruction path of the paper (Section 4.3) low-pass filters by
// zeroing FFT bins above the Nyquist cutoff; the noise-robustness
// discussion of Section 4.1 calls for standard small-amplitude noise
// filters. Both families live here:
//   * ideal (spectral) low-pass — exact brick wall via FFT;
//   * windowed-sinc FIR low-pass + direct convolution;
//   * moving-average and median smoothers.
#pragma once

#include <span>
#include <vector>

#include "dsp/window.h"

namespace nyqmon::dsp {

/// Brick-wall low-pass: FFT, zero all bins with |f| > cutoff_hz, IFFT.
/// Exact for band-limited inputs; introduces ringing near sharp edges.
std::vector<double> ideal_lowpass(std::span<const double> x,
                                  double sample_rate_hz, double cutoff_hz);

/// Design a linear-phase windowed-sinc low-pass FIR filter.
/// `taps` must be odd so the filter has integral group delay (taps-1)/2.
/// The result is normalized to unit DC gain.
std::vector<double> design_lowpass_fir(std::size_t taps, double cutoff_hz,
                                       double sample_rate_hz,
                                       WindowType window = WindowType::kHamming);

/// Full convolution of x with kernel h; output length x.size()+h.size()-1.
std::vector<double> convolve(std::span<const double> x,
                             std::span<const double> h);

/// "Same"-size convolution: applies h and trims the group delay so the
/// output aligns with x (length preserved). h.size() must be odd.
std::vector<double> filter_same(std::span<const double> x,
                                std::span<const double> h);

/// Centered moving average of odd width (edges use shrinking windows).
std::vector<double> moving_average(std::span<const double> x,
                                   std::size_t width);

/// Centered median filter of odd width (edges use shrinking windows);
/// the classic small-amplitude impulse-noise remover.
std::vector<double> median_filter(std::span<const double> x,
                                  std::size_t width);

}  // namespace nyqmon::dsp
