// Runtime-dispatched SIMD kernels for the DSP hot loops.
//
// Every kernel has three implementations — scalar, SSE2, AVX2 — selected
// once per process (CPU detection, overridable via the NYQMON_SIMD
// environment variable or set_level(), both test hooks). The contract that
// makes the dispatch invisible to the rest of the system:
//
//   Every level produces BIT-IDENTICAL results for every input — denormal,
//   signed-zero and infinite values included — except that an element
//   whose result is NaN may carry a different NaN payload/sign per level
//   (it is NaN at every level, never finite at one and NaN at another).
//
// The NaN carve-out is forced, not chosen: when an operation has two NaN
// operands (or creates NaN, e.g. inf*0 vs a propagated quiet NaN), IEEE-754
// leaves the result payload unspecified, and the compiler may legally
// commute the scalar reference's adds — so no pair of implementations can
// promise payload-exact NaN bits. Everything else holds by construction,
// not by tolerance:
//   * kernels perform the exact same IEEE-754 operations in the exact same
//     per-element order at every level — no FMA contraction anywhere (the
//     build compiles with -ffp-contract=off so the scalar reference cannot
//     be silently fused either);
//   * reductions (sum/dot) are DEFINED over four striped accumulators with
//     a fixed combine order, and all three implementations realize that
//     same definition (scalar with 4 locals, SSE2 with two 2-lane vectors,
//     AVX2 with one 4-lane vector);
//   * subtractions are real subtractions at every level (never the
//     xor-sign-flip-then-add shortcut, whose NaN sign propagation differs).
//
// This is what lets the engine's 1-vs-N-worker determinism digests and the
// storage layer's cold-start bit-identity guarantees hold unchanged
// whatever the host CPU: scalar and SIMD fleets compute the same bits.
//
// Complex data is std::complex<double> viewed as interleaved re,im pairs
// (layout guaranteed by the standard). All kernels accept unaligned
// pointers and arbitrary (including odd) lengths; tails run scalar code
// that is part of each kernel's definition.
#pragma once

#include <complex>
#include <cstddef>

namespace nyqmon::dsp::simd {

using cdouble = std::complex<double>;

/// Instruction-set level of a kernel table. Order is ascending capability.
enum class Level { kScalar = 0, kSSE2 = 1, kAVX2 = 2 };

/// Highest level this CPU supports (kSSE2 is baseline on x86-64; kScalar
/// on other architectures).
Level detected_level();

/// The level the process is currently dispatching to. Defaults to
/// detected_level() clamped by the NYQMON_SIMD environment variable
/// ("scalar" | "sse2" | "avx2"), read once on first use.
Level active_level();

/// Force the dispatch level (clamped to detected_level()). Returns the
/// level actually installed. Test hook — also how the sanitizer CI legs
/// force both dispatch paths.
Level set_level(Level level);

/// Human-readable level name ("scalar", "sse2", "avx2").
const char* level_name(Level level);

/// One kernel table. ops_for() exposes each level's table directly so the
/// equivalence tests can compare implementations without racing on the
/// process-wide dispatch state.
struct Ops {
  // One radix-2 butterfly sub-block over a contiguous half-length:
  //   for k in [0, half):  u = x[k]; v = x[k+half] * tw[k];
  //                        x[k] = u + v; x[k+half] = u - v;
  // with the complex product expanded as (wr*vr - wi*vi, wr*vi + wi*vr).
  void (*fft_butterfly_block)(cdouble* x, const cdouble* tw,
                              std::size_t half);
  // a[i] *= b[i], plain complex product (no Annex-G NaN recovery).
  void (*complex_mul_inplace)(cdouble* a, const cdouble* b, std::size_t n);
  // out[i] = a[i] * b[i], same product definition.
  void (*complex_mul)(cdouble* out, const cdouble* a, const cdouble* b,
                      std::size_t n);
  // x[i] *= w[i] (windowing).
  void (*mul_inplace)(double* x, const double* w, std::size_t n);
  // x[i] -= c (mean removal).
  void (*sub_scalar_inplace)(double* x, double c, std::size_t n);
  // x[i] /= c (FFT 1/N and PSD normalization keep true division).
  void (*div_scalar_inplace)(double* x, double c, std::size_t n);
  // Component-wise z[i] /= c for complex data.
  void (*div_scalar_complex_inplace)(cdouble* x, double c, std::size_t n);
  // Striped 4-accumulator reduction; see file comment for the definition.
  double (*sum)(const double* x, std::size_t n);
  // Striped 4-accumulator inner product: acc[j] += x[4i+j] * y[4i+j].
  double (*dot)(const double* x, const double* y, std::size_t n);
  // out[i] = re(x[i])*re(x[i]) + im(x[i])*im(x[i]).
  void (*squared_magnitude)(const cdouble* x, double* out, std::size_t n);
  // y[i] += a * x[i].
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  // Four independent Goertzel recurrences (lane j tracks coeff[j]):
  //   s = x[i] + coeff[j]*s1[j] - s2[j]; s2[j] = s1[j]; s1[j] = s;
  // evaluated as ((x[i] + coeff[j]*s1[j]) - s2[j]) in every lane.
  void (*goertzel4)(const double* x, std::size_t n, const double coeff[4],
                    double s1[4], double s2[4]);

  const char* name;
  Level level;
};

/// The table for `level`, or nullptr when this build/CPU cannot run it.
/// ops_for(kScalar) is always available.
const Ops* ops_for(Level level);

/// The table active_level() dispatches to.
const Ops& ops();

}  // namespace nyqmon::dsp::simd
