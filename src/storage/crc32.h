// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for on-disk block
// integrity in the durable tier. Every segment/WAL block carries the CRC of
// its payload so recovery can detect torn writes and bit rot and skip the
// damaged block instead of propagating garbage into reconstruction.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace nyqmon::sto {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

inline constexpr auto kCrc32Table = make_crc32_table();

}  // namespace detail

/// CRC-32 of a byte span (standard init/final XOR: crc32("123456789") ==
/// 0xCBF43926).
inline std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes)
    c = detail::kCrc32Table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace nyqmon::sto
