// NyqmondServer + NyqmonClient: wire round-trips, protocol edge cases
// (truncated frames, oversized length prefixes, unknown verbs, disconnects
// mid-exchange), 4-client concurrent ingest+query determinism, live
// serving in front of a StreamingRuntime, and checkpointed shutdown whose
// WAL/segments recover to the served state.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "monitor/striped_store.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "runtime/clock.h"
#include "runtime/runtime.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/manager.h"
#include "telemetry/fleet.h"

namespace {

using namespace nyqmon;
namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / ("nyqmon_server_test_" + name))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

bool same_values(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), 8 * a.size()) == 0);
}

/// Deterministic per-stream test signal.
std::vector<double> wave(std::size_t n, double phase) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::sin(phase + 0.1 * static_cast<double>(i)) +
           0.01 * static_cast<double>(i);
  return v;
}

/// Wait until the server has reaped its side of a closed connection.
void wait_closed(const srv::NyqmondServer& server, std::uint64_t at_least) {
  for (int i = 0; i < 500 && server.stats().connections_closed < at_least; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

// ------------------------------------------------------------ round trips --

TEST(Server, StartStopAndStats) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  ASSERT_GT(server.port(), 0);

  srv::NyqmonClient client("127.0.0.1", server.port());
  const std::string json = client.stats_json();
  EXPECT_NE(json.find("\"streams\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries\":0"), std::string::npos) << json;

  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().stats_frames, 1u);
}

TEST(Server, IngestThenQueryRoundTrip) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  const auto values = wave(256, 0.0);
  // Two batches: creation + append to an existing stream.
  EXPECT_EQ(client.ingest("rack1/temp", 1.0, 0.0,
                          std::span<const double>(values).first(100)),
            100u);
  EXPECT_EQ(client.ingest("rack1/temp", 1.0, 0.0,
                          std::span<const double>(values).subspan(100)),
            256u);

  qry::QuerySpec spec;
  spec.selector = "rack1/*";
  spec.t_begin = 0.0;
  spec.t_end = 256.0;
  spec.step_s = 1.0;
  const srv::QueryReply reply = client.query(spec);
  EXPECT_EQ(reply.matched, 1u);
  EXPECT_EQ(reply.reconstructed, 1u);
  ASSERT_EQ(reply.series.size(), 1u);
  EXPECT_EQ(reply.series[0].label, "rack1/temp");

  // The wire result must be bit-identical to a local engine over the store.
  qry::QueryEngine local(store);
  const auto direct = local.run(spec);
  ASSERT_EQ(direct.result->series.size(), 1u);
  EXPECT_TRUE(same_values(direct.result->series[0].series.span(),
                          reply.series[0].series.span()));

  // Identical spec again: served from the server-side cache.
  EXPECT_TRUE(client.query(spec).cache_hit);
  server.stop();
}

TEST(Server, IngestIntoUnknownStreamNeedsRate) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());
  const auto values = wave(8, 0.0);
  EXPECT_THROW(client.ingest("x/y", 0.0, 0.0, values), std::runtime_error);
  // The connection survives an application-level error.
  EXPECT_EQ(client.ingest("x/y", 2.0, 0.0, values), 8u);
  server.stop();
}

// ------------------------------------------------------------ edge cases --

TEST(Server, TruncatedFrameThenDisconnectIsHarmless) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  {
    srv::NyqmonClient half("127.0.0.1", server.port());
    // Claim a 100-byte body, deliver 10, vanish.
    std::vector<std::uint8_t> bytes;
    sto::put_u32(bytes, 100);
    for (int i = 0; i < 10; ++i) sto::put_u8(bytes, 0x42);
    half.send_raw(bytes);
  }
  wait_closed(server, 1);

  // Server must still serve.
  srv::NyqmonClient client("127.0.0.1", server.port());
  EXPECT_NE(client.stats_json().find("\"streams\""), std::string::npos);
  EXPECT_EQ(server.stats().protocol_errors, 0u);  // partial ≠ protocol error
  server.stop();
}

TEST(Server, OversizedLengthPrefixAnswersErrorAndCloses) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient bad("127.0.0.1", server.port());
  std::vector<std::uint8_t> bytes;
  sto::put_u32(bytes, 0x7fffffffu);  // way past the frame cap
  bad.send_raw(bytes);

  // The server answers ERR, then closes this connection.
  std::vector<std::uint8_t> body;
  ASSERT_NO_THROW(body = bad.request_raw(0, {}));  // reads the pending ERR
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kError));
  wait_closed(server, 1);
  EXPECT_GE(server.stats().protocol_errors, 1u);

  srv::NyqmonClient client("127.0.0.1", server.port());
  EXPECT_NE(client.stats_json().find("\"streams\""), std::string::npos);
  server.stop();
}

TEST(Server, UnknownVerbKeepsConnectionUsable) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  const auto body = client.request_raw(0x7e, {});
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kError));

  // Same connection still works for a real command.
  EXPECT_NE(client.stats_json().find("\"streams\""), std::string::npos);
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.stop();
}

TEST(Server, MalformedPayloadAnswersError) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  // INGEST whose declared value count exceeds the payload.
  std::vector<std::uint8_t> payload;
  sto::put_string(payload, "a/b");
  sto::put_f64(payload, 1.0);
  sto::put_f64(payload, 0.0);
  sto::put_u32(payload, 1000);  // ...but zero value bytes follow
  const auto body = client.request_raw(
      static_cast<std::uint8_t>(srv::Verb::kIngest), payload);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kError));
  EXPECT_EQ(store.streams(), 0u);

  // A count whose 8×count wraps a 32-bit product to the actual payload
  // size must still be rejected (no multi-GB allocation from a 60-byte
  // frame).
  std::vector<std::uint8_t> wrap;
  sto::put_string(wrap, "a/b");
  sto::put_f64(wrap, 1.0);
  sto::put_f64(wrap, 0.0);
  sto::put_u32(wrap, 0x20000002u);  // 8 * count ≡ 16 (mod 2^32)
  sto::put_f64(wrap, 1.0);
  sto::put_f64(wrap, 2.0);
  const auto wrap_body = client.request_raw(
      static_cast<std::uint8_t>(srv::Verb::kIngest), wrap);
  ASSERT_FALSE(wrap_body.empty());
  EXPECT_EQ(wrap_body[0], static_cast<std::uint8_t>(srv::Status::kError));
  EXPECT_EQ(store.streams(), 0u);

  // Bad query spec (t_begin >= t_end) is rejected, connection survives.
  qry::QuerySpec spec;
  spec.selector = "*";
  spec.t_begin = 5.0;
  spec.t_end = 5.0;
  spec.step_s = 1.0;
  EXPECT_THROW(client.query(spec), std::runtime_error);
  EXPECT_NE(client.stats_json().find("\"streams\""), std::string::npos);
  server.stop();
}

TEST(Server, ClientDisconnectMidQueryIsHarmless) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  {
    srv::NyqmonClient client("127.0.0.1", server.port());
    const auto values = wave(4096, 1.0);
    client.ingest("big/stream", 10.0, 0.0, values);

    // Fire a query whose reply is substantial, then vanish without reading.
    qry::QuerySpec spec;
    spec.selector = "big/*";
    spec.t_begin = 0.0;
    spec.t_end = 409.6;
    spec.step_s = 0.1;
    srv::NyqmonClient dropper("127.0.0.1", server.port());
    dropper.send_raw(srv::request_frame(srv::Verb::kQuery,
                                        srv::encode_query(spec)));
    dropper.close();
  }
  wait_closed(server, 2);

  srv::NyqmonClient client("127.0.0.1", server.port());
  EXPECT_NE(client.stats_json().find("\"streams\":1"), std::string::npos);
  server.stop();
}

// ------------------------------------------- concurrency & determinism ----

TEST(Server, FourClientConcurrentIngestQueryIsDeterministic) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kBatches = 16;
  constexpr std::size_t kBatch = 64;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> failures{0};
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        srv::NyqmonClient client("127.0.0.1", server.port());
        const std::string stream =
            "client" + std::to_string(c) + "/metric";
        const auto values = wave(kBatches * kBatch, static_cast<double>(c));
        for (std::size_t b = 0; b < kBatches; ++b) {
          client.ingest(stream, 1.0, 0.0,
                        std::span<const double>(values).subspan(b * kBatch,
                                                                kBatch));
          // Interleave queries over everyone's streams while others ingest.
          qry::QuerySpec spec;
          spec.selector = "client*/metric";
          spec.t_begin = 0.0;
          spec.t_end = static_cast<double>(kBatches * kBatch);
          spec.step_s = 4.0;
          spec.aggregate = qry::Aggregation::kSum;
          const auto reply = client.query(spec);
          if (reply.series.size() != 1) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0u);

  // Quiesced: every client's view of the same spec must now be identical,
  // and bit-identical to a local query engine over the server's store.
  qry::QuerySpec spec;
  spec.selector = "client*/metric";
  spec.t_begin = 0.0;
  spec.t_end = static_cast<double>(kBatches * kBatch);
  spec.step_s = 2.0;
  spec.aggregate = qry::Aggregation::kP95;

  srv::NyqmonClient a("127.0.0.1", server.port());
  srv::NyqmonClient b("127.0.0.1", server.port());
  const auto reply_a = a.query(spec);
  const auto reply_b = b.query(spec);
  ASSERT_EQ(reply_a.series.size(), 1u);
  ASSERT_EQ(reply_b.series.size(), 1u);
  EXPECT_TRUE(same_values(reply_a.series[0].series.span(),
                          reply_b.series[0].series.span()));
  EXPECT_EQ(reply_a.matched, kClients);

  qry::QueryEngine local(store);
  const auto direct = local.run(spec);
  EXPECT_TRUE(same_values(direct.result->series[0].series.span(),
                          reply_a.series[0].series.span()));
  server.stop();
}

// --------------------------------------------- runtime + durable shutdown --

TEST(Server, ServesLiveStreamingRuntime) {
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 16;
  fleet_cfg.seed = 21;
  const tel::Fleet fleet(fleet_cfg);

  rt::VirtualClock clock;
  rt::RuntimeConfig cfg;
  cfg.engine.workers = 2;
  cfg.engine.samples_per_window = 48;
  cfg.engine.windows_per_pair = 4;
  rt::StreamingRuntime runtime(fleet, clock, cfg);

  srv::ServerConfig server_cfg;
  server_cfg.checkpoint_fn = [&runtime] { return runtime.checkpoint(); };
  srv::NyqmondServer server(runtime.mutable_store(), nullptr, server_cfg);
  server.start();

  std::atomic<bool> stop{false};
  std::thread driver([&] {
    while (!runtime.done() && !stop.load()) runtime.step();
  });

  // Query the fleet over the wire while the runtime ingests it.
  srv::NyqmonClient client("127.0.0.1", server.port());
  qry::QuerySpec spec;
  spec.selector = "*/*";
  spec.t_begin = 0.0;
  spec.t_end = 3600.0;
  spec.step_s = 60.0;
  spec.aggregate = qry::Aggregation::kAvg;
  std::size_t queries = 0;
  while (!runtime.done() && queries < 50) {
    client.query(spec);
    ++queries;
  }
  stop.store(true);
  driver.join();
  while (!runtime.done()) runtime.step();

  EXPECT_GT(queries, 0u);
  const auto reply = client.query(spec);
  ASSERT_EQ(reply.series.size(), 1u);
  EXPECT_EQ(reply.matched, fleet.size());
  server.stop();
}

TEST(Server, CheckpointedShutdownRecoversServedState) {
  TempDir dir("shutdown");
  sto::StorageConfig storage_cfg;
  storage_cfg.dir = dir.path;
  storage_cfg.truncate_existing = true;
  mon::StoreConfig store_cfg;
  store_cfg.chunk_samples = 128;

  std::vector<std::string> names;
  {
    auto storage = std::make_unique<sto::StorageManager>(storage_cfg);
    mon::StripedRetentionStore store(store_cfg);
    storage->record_geometry(store_cfg);
    store.set_ingest_sink(storage.get());

    srv::NyqmondServer server(store, storage.get());
    server.start();
    srv::NyqmonClient client("127.0.0.1", server.port());
    for (std::size_t s = 0; s < 6; ++s) {
      const std::string name = "dev" + std::to_string(s) + "/metric";
      names.push_back(name);
      client.ingest(name, 2.0, 0.0, wave(700, static_cast<double>(s)));
    }
    // Mid-session checkpoint over the wire...
    const auto ck = client.checkpoint();
    EXPECT_TRUE(ck.persisted);
    EXPECT_GT(ck.chunks, 0u);
    // ...more ingest afterwards lands in the fresh WAL only.
    client.ingest(names[0], 2.0, 0.0, wave(100, 42.0));
    server.stop();  // graceful: final checkpoint
  }

  // Cold start from disk: the recovered store serves exactly what the
  // server ingested, including the post-checkpoint tail.
  sto::StorageConfig attach;
  attach.dir = dir.path;
  sto::StorageManager manager(attach);
  mon::StoreConfig recovered_cfg;
  ASSERT_TRUE(manager.manifest_geometry().has_value());
  manager.manifest_geometry()->apply(recovered_cfg);
  mon::StripedRetentionStore recovered(recovered_cfg);
  const auto rec = manager.recover(recovered);
  EXPECT_EQ(rec.crc_skipped_blocks, 0u);
  ASSERT_EQ(recovered.stream_names().size(), names.size());
  EXPECT_EQ(recovered.meta(names[0]).ingested_samples, 800u);
  for (const auto& name : names) {
    const auto meta = recovered.meta(name);
    EXPECT_GT(meta.ingested_samples, 0u) << name;
  }
}

// ------------------------------------------------------- self-telemetry ----

TEST(Server, MetricsVerbReturnsPrometheusText) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  // Drive one ingest and one query so the layer metrics have activity.
  client.ingest("dev/metric", 2.0, 0.0, wave(600, 0.5));
  qry::QuerySpec spec;
  spec.selector = "dev/metric";
  spec.t_begin = 0.0;
  spec.t_end = 300.0;
  spec.step_s = 10.0;
  (void)client.query(spec);

  const std::string text = client.metrics_text();
  server.stop();

  // Prometheus exposition shape, per-verb latency summaries, and the
  // store's lock instrumentation (the ISSUE acceptance bar).
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("nyqmon_server_query_latency_ns{quantile=\"0.99\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nyqmon_server_ingest_latency_ns"), std::string::npos);
  EXPECT_NE(text.find("nyqmon_server_metrics_latency_ns"), std::string::npos);
  EXPECT_NE(text.find("nyqmon_store_lock_acquisitions_total"),
            std::string::npos);
  EXPECT_NE(text.find("nyqmon_store_appends_total"), std::string::npos);
  EXPECT_NE(text.find("nyqmon_query_latency_ns"), std::string::npos);
  EXPECT_EQ(server.stats().metrics_frames, 1u);
}

TEST(Server, TraceVerbDrainsChromeJson) {
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  rec.drain();  // start from an empty capture window
  rec.set_enabled(true);

  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());
  client.ingest("dev/metric", 2.0, 0.0, wave(400, 1.5));
  qry::QuerySpec spec;
  spec.selector = "dev/metric";
  spec.t_begin = 0.0;
  spec.t_end = 200.0;
  spec.step_s = 10.0;
  (void)client.query(spec);

  const std::string json = client.trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"server\""), std::string::npos) << json;

  // TRACE is consuming: an immediately repeated drain returns a window
  // holding at most the spans of the TRACE round-trip itself.
  const std::string second = client.trace_json();
  EXPECT_EQ(second.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(second.find("\"cat\":\"query\""), std::string::npos) << second;

  rec.set_enabled(false);
  server.stop();
  EXPECT_EQ(server.stats().trace_frames, 2u);
}

// ------------------------------------------------------------- handoff ----

TEST(Server, HandoffExportImportRoundTrip) {
  mon::StripedRetentionStore src_store;
  srv::NyqmondServer src(src_store, nullptr);
  src.start();
  srv::NyqmonClient src_client("127.0.0.1", src.port());
  src_client.ingest("podA/cpu", 2.0, 0.0, wave(700, 0.1));
  src_client.ingest("podA/mem", 2.0, 0.0, wave(700, 0.2));
  src_client.ingest("podB/cpu", 2.0, 0.0, wave(700, 0.3));

  // Nothing matches: an empty (but well-formed) export.
  EXPECT_EQ(src_client.handoff_export("no/such").streams, 0u);

  const srv::HandoffExportReply exported =
      src_client.handoff_export("podA/*");
  EXPECT_EQ(exported.streams, 2u);
  // The snapshot carries the retained window (not lifetime ingest).
  EXPECT_GT(exported.samples, 0u);
  ASSERT_FALSE(exported.segment.empty());
  // Non-destructive: the source still serves its copy.
  EXPECT_EQ(src_store.streams(), 3u);

  mon::StripedRetentionStore dst_store;
  srv::NyqmondServer dst(dst_store, nullptr);
  dst.start();
  srv::NyqmonClient dst_client("127.0.0.1", dst.port());
  const srv::HandoffImportReply imported =
      dst_client.handoff_import(exported.segment);
  EXPECT_EQ(imported.streams, 2u);
  EXPECT_EQ(imported.samples, exported.samples);
  EXPECT_FALSE(imported.persisted);  // no durable tier attached

  // The destination answers the moved streams bit-identically.
  qry::QuerySpec spec;
  spec.selector = "podA/*";
  spec.t_begin = 0.0;
  spec.t_end = 350.0;
  spec.step_s = 0.5;
  const srv::QueryReply a = src_client.query(spec);
  const srv::QueryReply b = dst_client.query(spec);
  ASSERT_EQ(a.series.size(), 2u);
  ASSERT_EQ(b.series.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.series[i].label, b.series[i].label);
    EXPECT_TRUE(same_values(a.series[i].series.span(),
                            b.series[i].series.span()));
  }

  // A second import collides and is refused, naming every conflict.
  try {
    dst_client.handoff_import(exported.segment);
    FAIL() << "duplicate import must be refused";
  } catch (const srv::ServerError& e) {
    EXPECT_NE(std::string(e.what()).find("refused"), std::string::npos);
    ASSERT_EQ(e.details().size(), 2u);
    EXPECT_EQ(e.details()[0].node, "podA/cpu");
    EXPECT_EQ(e.details()[1].node, "podA/mem");
  }
  EXPECT_EQ(dst_store.streams(), 2u);  // the refusal restored nothing new
  EXPECT_GE(dst.stats().handoff_frames, 2u);
  src.stop();
  dst.stop();
}

TEST(Server, HandoffImportIsDurableWithStorage) {
  TempDir dir("handoff");
  mon::StripedRetentionStore src_store;
  srv::NyqmondServer src(src_store, nullptr);
  src.start();
  srv::NyqmonClient src_client("127.0.0.1", src.port());
  src_client.ingest("dev0/metric", 2.0, 0.0, wave(600, 0.7));
  const auto exported = src_client.handoff_export("dev0/metric");
  ASSERT_EQ(exported.streams, 1u);
  src.stop();

  {
    sto::StorageConfig storage_cfg;
    storage_cfg.dir = dir.path;
    storage_cfg.truncate_existing = true;
    sto::StorageManager storage(storage_cfg);
    mon::StripedRetentionStore dst_store;
    storage.record_geometry(mon::StoreConfig{});
    dst_store.set_ingest_sink(&storage);
    srv::NyqmondServer dst(dst_store, &storage);
    dst.start();
    srv::NyqmonClient dst_client("127.0.0.1", dst.port());
    const auto imported = dst_client.handoff_import(exported.segment);
    EXPECT_EQ(imported.streams, 1u);
    EXPECT_TRUE(imported.persisted);
    dst.stop();
  }

  // Cold start: the imported stream survives recovery.
  sto::StorageConfig attach;
  attach.dir = dir.path;
  sto::StorageManager manager(attach);
  mon::StripedRetentionStore recovered;
  manager.recover(recovered);
  ASSERT_TRUE(recovered.find_meta("dev0/metric").has_value());
  EXPECT_GT(recovered.meta("dev0/metric").ingested_samples, 0u);
}

// ------------------------------------------------------ query flags -------

TEST(Server, QueryWantMatchedReturnsLabels) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());
  client.ingest("b/metric", 1.0, 0.0, wave(64, 0.1));
  client.ingest("a/metric", 1.0, 0.0, wave(64, 0.2));

  qry::QuerySpec spec;
  spec.selector = "*";
  spec.t_begin = 0.0;
  spec.t_end = 64.0;
  spec.step_s = 1.0;

  // Default: the flag is off and the reply stays in the pre-flag shape.
  EXPECT_TRUE(client.query(spec).matched_labels.empty());

  const srv::QueryReply with = client.query(spec, /*want_matched=*/true);
  EXPECT_EQ(with.matched, 2u);
  EXPECT_EQ(with.matched_labels,
            (std::vector<std::string>{"a/metric", "b/metric"}));
  server.stop();
}

// ------------------------------------------------------- backpressure -----

TEST(Server, SlowClientIsBoundedAndEventuallyDropped) {
  mon::StripedRetentionStore store;
  srv::ServerConfig cfg;
  cfg.max_reply_queue_frames = 2;
  cfg.slow_client_timeout_ms = 100;
  srv::NyqmondServer server(store, nullptr, cfg);
  server.start();

  srv::NyqmonClient feeder("127.0.0.1", server.port());
  feeder.ingest("big/stream", 10.0, 0.0, wave(20000, 0.0));

  // A raw client with a tiny receive buffer pipelines queries with
  // ~160 KB answers and never reads. Enough of them (10 MB of replies)
  // outgrow even an autotuned kernel send buffer: the reply queue hits its
  // frame bound, the connection stalls (POLLIN suppressed — bounded
  // memory), and after slow_client_timeout_ms with no drain the client is
  // dropped.
  qry::QuerySpec spec;
  spec.selector = "big/*";
  spec.t_begin = 0.0;
  spec.t_end = 2000.0;
  spec.step_s = 0.1;
  const auto request =
      srv::request_frame(srv::Verb::kQuery, srv::encode_query(spec));
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < 64; ++i)
    burst.insert(burst.end(), request.begin(), request.end());

  const int slow = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(slow, 0);
  const int rcvbuf = 4096;
  ::setsockopt(slow, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(slow, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(::send(slow, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  wait_closed(server, 1);
  EXPECT_EQ(server.stats().slow_clients_dropped, 1u);
  EXPECT_GE(server.stats().backpressure_stalls, 1u);
  ::close(slow);

  // The drop is surgical: other clients were never blocked.
  EXPECT_NE(feeder.stats_json().find("\"streams\":1"), std::string::npos);
  server.stop();
}

// ------------------------------------------------ trace-context trailer --

TEST(Server, TraceContextTrailerIsPeeledOnEveryVerb) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  // A stamped request must behave exactly like an unstamped one: dispatch
  // peels the 21-byte trailer before any payload decoder runs (the
  // decoders enforce exact-remaining and would reject the extra bytes).
  const srv::TraceContext ctx{/*trace_id=*/0xabcdef12u, /*parent_span_id=*/7,
                              /*sampled=*/true};
  srv::IngestRequest ingest;
  ingest.stream = "dev/metric";
  ingest.rate_hz = 2.0;
  ingest.values = wave(64, 0.4);
  qry::QuerySpec spec;
  spec.selector = "dev/*";
  spec.t_begin = 0.0;
  spec.t_end = 16.0;
  spec.step_s = 1.0;

  const std::pair<srv::Verb, std::vector<std::uint8_t>> requests[] = {
      {srv::Verb::kIngest, srv::encode_ingest(ingest)},
      {srv::Verb::kQuery, srv::encode_query(spec)},
      {srv::Verb::kStats, {}},
      {srv::Verb::kCheckpoint, {}},
      {srv::Verb::kMetrics, {}},
      {srv::Verb::kTrace, {}},
      {srv::Verb::kHandoff, srv::encode_handoff_export("dev/*")},
      {srv::Verb::kLogs, {}},
  };
  for (const auto& [verb, payload] : requests) {
    std::vector<std::uint8_t> stamped = payload;
    srv::append_trace_context(stamped, ctx);
    const auto body =
        client.request_raw(static_cast<std::uint8_t>(verb), stamped);
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kOk))
        << "verb " << static_cast<unsigned>(verb);
  }
  EXPECT_EQ(store.streams(), 1u);  // the stamped INGEST really landed
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  server.stop();
}

TEST(Server, TruncatedOrCorruptTrailerIsJustPayloadBytes) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());
  client.ingest("dev/metric", 2.0, 0.0, wave(64, 0.4));

  qry::QuerySpec spec;
  spec.selector = "dev/*";
  spec.t_begin = 0.0;
  spec.t_end = 16.0;
  spec.step_s = 1.0;
  const srv::TraceContext ctx{/*trace_id=*/1234, /*parent_span_id=*/5,
                              /*sampled=*/true};

  // A trailer cut one byte short is not detected: its bytes stay on the
  // payload and the QUERY decoder's exact-remaining check rejects them.
  std::vector<std::uint8_t> truncated = srv::encode_query(spec);
  srv::append_trace_context(truncated, ctx);
  truncated.pop_back();
  auto body = client.request_raw(static_cast<std::uint8_t>(srv::Verb::kQuery),
                                 truncated);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kError));

  // Right length, wrong magic: not misread as a context either.
  std::vector<std::uint8_t> corrupt = srv::encode_query(spec);
  srv::append_trace_context(corrupt, ctx);
  corrupt.back() ^= 0xff;
  body = client.request_raw(static_cast<std::uint8_t>(srv::Verb::kQuery),
                            corrupt);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kError));

  // trace_id 0 means "no context" and is never stripped, even with the
  // magic intact.
  std::vector<std::uint8_t> zero_id = srv::encode_query(spec);
  srv::append_trace_context(zero_id, srv::TraceContext{});
  body = client.request_raw(static_cast<std::uint8_t>(srv::Verb::kQuery),
                            zero_id);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kError));

  // The connection survived every malformed frame.
  EXPECT_EQ(client.query(spec).matched, 1u);
  server.stop();
}

TEST(Server, PayloadFreeVerbsTolerateNewPeerFlagBytes) {
  // Old-peer compat: a plain nyqmond receiving a router-era flags byte on
  // METRICS/TRACE (or any trailing bytes on the payload-free verbs) must
  // answer its own data rather than ERR — those handlers never read the
  // payload, so the fleet bit degrades to a local answer.
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  const std::vector<std::uint8_t> flag{0x01};
  for (const srv::Verb verb :
       {srv::Verb::kStats, srv::Verb::kCheckpoint, srv::Verb::kMetrics,
        srv::Verb::kTrace, srv::Verb::kLogs}) {
    const auto body =
        client.request_raw(static_cast<std::uint8_t>(verb), flag);
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body[0], static_cast<std::uint8_t>(srv::Status::kOk))
        << "verb " << static_cast<unsigned>(verb);
  }
  // The fleet-flagged METRICS is the plain exposition, not sectioned text.
  const std::string text = client.metrics_text(/*fleet=*/true);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_EQ(text.find("# == node"), std::string::npos);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  server.stop();
}

// -------------------------------------------------------- structured logs --

TEST(Server, LogsVerbDrainsStructuredRecords) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  (void)client.logs_text();  // discard records earlier tests left behind
  // An unknown verb is a logged failure path: server.protocol_error.
  const auto err = client.request_raw(0x7d, {});
  ASSERT_FALSE(err.empty());
  EXPECT_EQ(err[0], static_cast<std::uint8_t>(srv::Status::kError));

  const std::string text = client.logs_text();
  EXPECT_EQ(text.rfind("nyqlog v1 records=", 0), 0u) << text;
  EXPECT_NE(text.find("level=error"), std::string::npos) << text;
  EXPECT_NE(text.find("event=server.protocol_error"), std::string::npos)
      << text;
  EXPECT_NE(text.find("reason=unknown_verb"), std::string::npos) << text;

  // Consuming: an immediate second drain returns an empty window.
  const std::string second = client.logs_text();
  EXPECT_EQ(second.rfind("nyqlog v1 records=0 ", 0), 0u) << second;
  EXPECT_GE(server.stats().logs_frames, 2u);
  server.stop();
}

// ---------------------------------------------------------- query EXPLAIN --

TEST(Server, QueryExplainAttributesLatencyToStages) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());
  client.ingest("dev/metric", 2.0, 0.0, wave(4096, 0.8));

  qry::QuerySpec spec;
  spec.selector = "dev/*";
  spec.t_begin = 0.0;
  spec.t_end = 2000.0;
  spec.step_s = 0.5;

  // Cold cache: the full pipeline breakdown.
  const srv::QueryReply reply = client.query(spec, false, /*want_explain=*/true);
  ASSERT_FALSE(reply.cache_hit);
  ASSERT_TRUE(reply.explain.has_value());
  const srv::QueryExplainBlock& ex = *reply.explain;
  EXPECT_GT(ex.total_ns, 0u);

  std::uint64_t sum = 0;
  std::vector<std::string> names;
  for (const srv::ExplainEntry& e : ex.stages) {
    names.push_back(e.stage);
    sum += e.ns;
  }
  for (const char* stage : {"match", "cache", "prune", "reconstruct",
                            "aggregate", "cache_store"})
    EXPECT_NE(std::find(names.begin(), names.end(), stage), names.end())
        << stage << " missing from the breakdown";
  // StageClock marks are contiguous, so the named stages account for at
  // least 90% of the measured total (the ISSUE acceptance bar).
  EXPECT_GE(sum * 10, ex.total_ns * 9)
      << "stages cover only " << sum << " of " << ex.total_ns << " ns";

  // Without the flag the reply stays in the pre-explain shape.
  EXPECT_FALSE(client.query(spec).explain.has_value());

  // A cache hit explains differently: the breakdown stops at the cache.
  const srv::QueryReply hit = client.query(spec, false, true);
  ASSERT_TRUE(hit.cache_hit);
  ASSERT_TRUE(hit.explain.has_value());
  ASSERT_FALSE(hit.explain->stages.empty());
  EXPECT_EQ(hit.explain->stages.back().stage, "cache");
  server.stop();
}

// ------------------------------------------------- typed client surface ---

TEST(Server, TypedCallSurfaceRoundTripsOkAndErr) {
  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());

  // OK path: a verb with no payload through the typed surface.
  srv::Request stats_req;
  stats_req.verb = srv::Verb::kStats;
  const srv::Response stats = client.call(stats_req);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(std::string(stats.payload.begin(), stats.payload.end())
                .find("\"streams\""),
            std::string::npos);

  // ERR is decoded into the Response, not thrown...
  srv::Request bad;
  bad.verb = srv::Verb::kQuery;  // empty payload = malformed QUERY
  const srv::Response err = client.call(bad);
  ASSERT_FALSE(err.ok());
  EXPECT_FALSE(err.error_message.empty());
  // ...while call_ok unwraps it into the usual ServerError.
  EXPECT_THROW((void)client.call_ok(bad), srv::ServerError);

  // The flags byte rides as the protocol's trailing u8: METRICS with the
  // fleet bit against a plain nyqmond answers its own exposition.
  srv::Request metrics;
  metrics.verb = srv::Verb::kMetrics;
  metrics.flags = srv::kMetricsFleet;
  const auto exposition = client.call_ok(metrics);
  EXPECT_FALSE(exposition.empty());

  // The trace label prefixes transport errors only.
  srv::Request traced;
  traced.verb = srv::Verb::kStats;
  traced.trace = "probe-7";
  client.close();
  try {
    (void)client.call(traced);
    FAIL() << "transport error expected after close()";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("probe-7: ", 0), 0u) << e.what();
  }
  server.stop();
}

TEST(Server, BuilderWireFlagsMatchProtocolBits) {
  EXPECT_EQ(qry::QueryBuilder().want_matched().wire_flags(),
            srv::kQueryWantMatched);
  EXPECT_EQ(qry::QueryBuilder().want_explain().wire_flags(),
            srv::kQueryWantExplain);
}

// ----------------------------------------------------- multi-reactor ------

// The same concurrent ingest+query workload as the four-client test, but
// served by four reactor shards: per-connection ordering must hold on
// every shard, and the quiesced end state must match a local engine
// bit-identically.
TEST(Server, MultiReactorConcurrentClientsAreDeterministic) {
  mon::StripedRetentionStore store;
  srv::ServerConfig server_cfg;
  server_cfg.reactors = 4;
  srv::NyqmondServer server(store, nullptr, server_cfg);
  server.start();

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kBatches = 8;
  constexpr std::size_t kBatch = 64;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> failures{0};
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        srv::NyqmonClient client("127.0.0.1", server.port());
        const std::string stream = "client" + std::to_string(c) + "/metric";
        const auto values = wave(kBatches * kBatch, static_cast<double>(c));
        for (std::size_t b = 0; b < kBatches; ++b) {
          const std::uint64_t total = client.ingest(
              stream, 1.0, 0.0,
              std::span<const double>(values).subspan(b * kBatch, kBatch));
          // Per-connection ordering: this connection's appends are
          // sequential regardless of which reactor owns it.
          if (total != (b + 1) * kBatch) ++failures;
          const srv::QueryReply reply =
              client.query(qry::QueryBuilder()
                               .select("client*/metric")
                               .range(0.0, double(kBatches * kBatch))
                               .align(4.0)
                               .aggregate(qry::Aggregation::kSum)
                               .build());
          if (reply.series.size() != 1) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0u);
  EXPECT_GE(server.stats().connections_accepted, kClients);

  const qry::QuerySpec spec = qry::QueryBuilder()
                                  .select("client*/metric")
                                  .range(0.0, double(kBatches * kBatch))
                                  .align(2.0)
                                  .aggregate(qry::Aggregation::kP95)
                                  .build();
  srv::NyqmonClient a("127.0.0.1", server.port());
  const auto reply_a = a.query(spec);
  ASSERT_EQ(reply_a.series.size(), 1u);
  EXPECT_EQ(reply_a.matched, kClients);

  qry::QueryEngine local(store);
  const auto direct = local.run(spec);
  EXPECT_TRUE(same_values(direct.result->series[0].series.span(),
                          reply_a.series[0].series.span()));
  server.stop();
}

// CHECKPOINT must quiesce every reactor: with 4 shards ingesting at full
// tilt and a durable tier attached, concurrent CHECKPOINTs may never race
// an INGEST dispatch between the flush snapshot and the WAL swap, and the
// recovered state must hold every acknowledged batch.
TEST(Server, MultiReactorCheckpointQuiescesConcurrentIngest) {
  TempDir dir("reactor_quiesce");
  sto::StorageConfig storage_cfg;
  storage_cfg.dir = dir.path;
  storage_cfg.truncate_existing = true;
  mon::StoreConfig store_cfg;
  store_cfg.chunk_samples = 64;
  {
    mon::StripedRetentionStore store(store_cfg, 4);
    sto::StorageManager storage(storage_cfg);
    storage.record_geometry(store_cfg);
    store.set_ingest_sink(&storage);

    srv::ServerConfig server_cfg;
    server_cfg.reactors = 4;
    srv::NyqmondServer server(store, &storage, server_cfg);
    server.start();

    constexpr std::size_t kClients = 6;
    constexpr std::size_t kBatches = 12;
    constexpr std::size_t kBatch = 32;
    std::vector<std::thread> threads;
    std::atomic<std::size_t> failures{0};
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        try {
          srv::NyqmonClient client("127.0.0.1", server.port());
          const std::string stream = "q" + std::to_string(c) + "/metric";
          const auto values =
              wave(kBatches * kBatch, static_cast<double>(c));
          for (std::size_t b = 0; b < kBatches; ++b) {
            client.ingest(
                stream, 1.0, 0.0,
                std::span<const double>(values).subspan(b * kBatch, kBatch));
            // Half the clients also fire CHECKPOINT mid-ingest, so
            // quiesce barriers overlap with live dispatch on every
            // reactor (and with each other).
            if (c % 2 == 0) {
              const srv::CheckpointReply ck = client.checkpoint();
              if (!ck.persisted) ++failures;
            }
          }
        } catch (...) {
          ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0u);
    server.stop();  // final quiesced checkpoint
  }

  // Recover from disk: every acknowledged batch must be there.
  sto::StorageConfig attach;
  attach.dir = dir.path;
  sto::StorageManager manager(attach);
  mon::StripedRetentionStore recovered(store_cfg, 4);
  const auto rec = manager.recover(recovered);
  EXPECT_EQ(rec.crc_skipped_blocks, 0u);
  for (std::size_t c = 0; c < 6; ++c) {
    const std::string stream = "q" + std::to_string(c) + "/metric";
    EXPECT_EQ(recovered.meta(stream).ingested_samples, 12u * 32u) << stream;
  }
}

TEST(Server, TraceVerbDisabledReturnsEmptyCapture) {
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  rec.set_enabled(false);
  rec.drain();

  mon::StripedRetentionStore store;
  srv::NyqmondServer server(store, nullptr);
  server.start();
  srv::NyqmonClient client("127.0.0.1", server.port());
  const std::string json = client.trace_json();
  server.stop();
  EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}") << json;
}

}  // namespace
