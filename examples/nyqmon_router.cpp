// nyqmon_router — scatter-gather front for a sharded nyqmond fleet.
//
// Usage: nyqmon_router <port> <vnodes> <host:port> [host:port ...]
//        nyqmon_router <port> <vnodes> --spawn <n_backends> [serve_seconds]
//
// The first form fronts already-running nyqmond backends: clients speak
// the ordinary nyqmond protocol to <port> (0 = ephemeral) and the router
// routes INGEST to each stream's consistent-hash owner while scattering
// QUERY/STATS/CHECKPOINT across every backend, merging per-stream results
// with the query engine's own reduction so the fleet answers bit-identically
// to one big nyqmond. A failed or timed-out backend turns the reply into
// ERR-with-detail (which nodes failed and why) instead of a silent partial
// answer.
//
// The second form is a self-contained demo: it spawns <n_backends> empty
// in-process nyqmond servers on ephemeral ports, fronts them, prints the
// ring description, and serves for [serve_seconds] (default 60). Try:
//
//   nyqmon_router 7412 64 --spawn 4 600 &
//   nyqmon_ctl 127.0.0.1 7412 ingest lab/sensor 1.0 0 1.5,1.7,2.1,2.4
//   nyqmon_ctl 127.0.0.1 7412 query 'lab/*' 0 4 1
//   nyqmon_ctl 127.0.0.1 7412 stats
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "monitor/striped_store.h"
#include "obs/trace.h"
#include "server/server.h"

using namespace nyqmon;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nyqmon_router <port> <vnodes> <host:port> "
               "[host:port ...]\n"
               "       nyqmon_router <port> <vnodes> --spawn <n_backends> "
               "[serve_seconds]\n");
  return 2;
}

bool parse_endpoint(const std::string& arg, clu::NodeDesc& out) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size())
    return false;
  out.host = arg.substr(0, colon);
  out.port = static_cast<std::uint16_t>(std::atoi(arg.c_str() + colon + 1));
  return out.port != 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  const auto vnodes = static_cast<std::size_t>(std::atoi(argv[2]));
  if (vnodes == 0) return usage();

  // In-process demo backends (--spawn): empty stores on ephemeral ports.
  std::vector<std::unique_ptr<mon::StripedRetentionStore>> stores;
  std::vector<std::unique_ptr<srv::NyqmondServer>> backends;
  double serve_seconds = 0.0;

  clu::RouterConfig cfg;
  cfg.port = port;
  cfg.cluster.vnodes = vnodes;
  if (std::string(argv[3]) == "--spawn") {
    if (argc < 5) return usage();
    const int n = std::atoi(argv[4]);
    if (n < 1) return usage();
    serve_seconds = argc > 5 ? std::atof(argv[5]) : 60.0;
    for (int i = 0; i < n; ++i) {
      stores.push_back(std::make_unique<mon::StripedRetentionStore>());
      srv::ServerConfig backend_cfg;
      backend_cfg.node_name = "node" + std::to_string(i);
      backends.push_back(std::make_unique<srv::NyqmondServer>(
          *stores.back(), nullptr, backend_cfg));
      backends.back()->start();
      cfg.cluster.nodes.push_back({"node" + std::to_string(i), "127.0.0.1",
                                   backends.back()->port()});
    }
  } else {
    for (int i = 3; i < argc; ++i) {
      clu::NodeDesc node;
      node.id = "node" + std::to_string(i - 3);
      if (!parse_endpoint(argv[i], node)) {
        std::fprintf(stderr, "bad endpoint: %s\n", argv[i]);
        return usage();
      }
      cfg.cluster.nodes.push_back(std::move(node));
    }
  }

  // Arm trace capture so `nyqmon_ctl trace --fleet` stitches a live
  // timeline; in --spawn mode the in-process backends share this recorder.
  obs::TraceRecorder::instance().set_enabled(true);

  try {
    clu::NyqmonRouter router(cfg);
    router.start();
    std::printf("nyqmon_router: listening on 127.0.0.1:%u, %zu backend(s)\n",
                router.port(), router.ring().size());
    std::printf("%s", router.ring().describe().c_str());
    for (std::size_t i = 0; i < router.ring().size(); ++i)
      std::printf("  node %zu owns %.1f%% of the keyspace\n", i,
                  router.ring().keyspace_share(i) * 100.0);

    if (serve_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(serve_seconds));
    } else {
      // Fronting external backends: serve until the process is killed.
      while (router.running())
        std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    router.stop();
    const clu::RouterStats s = router.stats();
    std::printf("routed %llu frames (%llu ingests, %llu queries, "
                "%llu partial failures)\n",
                static_cast<unsigned long long>(s.frames),
                static_cast<unsigned long long>(s.ingests_routed),
                static_cast<unsigned long long>(s.queries_scattered),
                static_cast<unsigned long long>(s.partial_failures));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nyqmon_router: %s\n", e.what());
    return 1;
  }
  for (auto& backend : backends) backend->stop();
  return 0;
}
