// Bounded in-process trace capture with a chrome://tracing exporter.
//
// A TraceRecorder keeps one fixed-capacity ring of TraceEvents per writing
// thread. Writers append complete spans ('X' phase in the Trace Event
// Format): the ScopedSpan RAII helper timestamps construction and records
// name/category/start/duration on destruction. When a ring is full the
// oldest event is overwritten and a drop is counted — tracing is a bounded
// window onto recent activity, never a memory hazard on long runs.
//
// Capture is off by default; set_enabled(true) arms it (nyqmond does this
// at startup). Disarmed spans cost one relaxed atomic load. Each ring has
// its own mutex so a writer and a drain() from another thread never race
// on the slots; writers almost always find their ring uncontended.
//
// drain() snapshots and clears every ring, returning events merged in
// timestamp order; export_chrome_json() wraps that in the JSON object
// format ({"traceEvents":[...]}) that chrome://tracing and Perfetto load
// directly. Timestamps are nanoseconds on the recorder's steady-clock
// epoch, exported as fractional microseconds (the format's native unit).
//
// Event names/categories are `const char*` by design: recording does not
// allocate, so callers must pass string literals (or otherwise
// recorder-outliving storage).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nyqmon::obs {

struct TraceEvent {
  const char* name = nullptr;      ///< literal; span label
  const char* category = nullptr;  ///< literal; layer ("engine", "storage", …)
  std::uint64_t ts_ns = 0;         ///< span start, recorder-epoch-relative
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< dense per-recorder writer-thread id, from 1
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  explicit TraceRecorder(std::size_t ring_capacity = kDefaultRingCapacity);

  /// The process-wide recorder every NYQMON_TRACE_SPAN site writes to.
  static TraceRecorder& instance();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since this recorder's epoch (its construction).
  std::uint64_t now_ns() const;

  /// Append one complete span to the calling thread's ring (overwriting
  /// the oldest event, counted as a drop, when full). No-op when disabled.
  void record(const char* name, const char* category, std::uint64_t ts_ns,
              std::uint64_t dur_ns);

  /// Move every buffered event out (rings empty afterwards), merged in
  /// start-timestamp order. Safe concurrently with writers: events recorded
  /// during the drain land in the next one.
  std::vector<TraceEvent> drain();

  /// Events overwritten before any drain could see them.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// drain() + Trace Event Format (JSON object form). Loads directly in
  /// chrome://tracing / Perfetto.
  std::string export_chrome_json();

 private:
  struct Ring {
    explicit Ring(std::size_t capacity, std::uint32_t tid)
        : slots(capacity), tid(tid) {}
    std::mutex mu;
    std::vector<TraceEvent> slots;
    std::size_t head = 0;      ///< next write position
    std::uint64_t written = 0;  ///< total events ever recorded here
    std::uint32_t tid;
  };

  Ring& local_ring();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  /// Process-unique recorder id: the thread-local ring cache keys on this
  /// instead of `this`, so a recorder reallocated at a dead one's address
  /// (stack-local recorders in tests) can never hit a stale cache entry.
  std::uint64_t uid_;
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;  ///< one per writer thread
};

/// RAII span against TraceRecorder::instance(). Costs one atomic load when
/// tracing is disabled. `name`/`category` must be string literals.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category) noexcept {
    TraceRecorder& rec = TraceRecorder::instance();
    if (rec.enabled()) {
      name_ = name;
      category_ = category;
      t0_ns_ = rec.now_ns();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    TraceRecorder& rec = TraceRecorder::instance();
    rec.record(name_, category_, t0_ns_, rec.now_ns() - t0_ns_);
  }

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry
  const char* category_ = nullptr;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace nyqmon::obs

#ifndef NYQMON_OBS_CAT
#define NYQMON_OBS_CAT2(a, b) a##b
#define NYQMON_OBS_CAT(a, b) NYQMON_OBS_CAT2(a, b)
#endif

#if defined(NYQMON_OBS_NOOP)
#define NYQMON_TRACE_SPAN(name, category)
#else
/// Trace the rest of the enclosing scope as one complete event.
#define NYQMON_TRACE_SPAN(name, category)                      \
  ::nyqmon::obs::ScopedSpan NYQMON_OBS_CAT(nyqmon_obs_span_,   \
                                           __LINE__) {         \
    name, category                                             \
  }
#endif
