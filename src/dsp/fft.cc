#include "dsp/fft.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace nyqmon::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

// Bit-reversal permutation for the iterative radix-2 FFT.
void bit_reverse_permute(std::vector<cdouble>& x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

// Bluestein chirp-z transform: DFT of arbitrary length N via a circular
// convolution of length M = next_pow2(2N-1).
std::vector<cdouble> bluestein(std::span<const cdouble> x, bool inverse) {
  const std::size_t n = x.size();
  NYQMON_ENSURE(n >= 1);
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp w[k] = exp(sign * i * pi * k^2 / n). Index k^2 mod 2n keeps the
  // phase argument bounded for large n (k^2 overflows double precision of
  // the angle otherwise).
  std::vector<cdouble> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) /
                         static_cast<double>(n);
    w[k] = cdouble(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<cdouble> a(m, cdouble(0, 0));
  std::vector<cdouble> b(m, cdouble(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * w[k];
  b[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(w[k]);

  fft_radix2_inplace(a, /*inverse=*/false);
  fft_radix2_inplace(b, /*inverse=*/false);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_radix2_inplace(a, /*inverse=*/true);

  std::vector<cdouble> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k];
  if (inverse) {
    for (auto& v : out) v /= static_cast<double>(n);
  }
  return out;
}

std::vector<cdouble> transform(std::span<const cdouble> x, bool inverse) {
  NYQMON_CHECK_MSG(!x.empty(), "FFT of empty sequence");
  if (is_power_of_two(x.size())) {
    std::vector<cdouble> out(x.begin(), x.end());
    fft_radix2_inplace(out, inverse);
    return out;
  }
  return bluestein(x, inverse);
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  NYQMON_CHECK(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2_inplace(std::vector<cdouble>& x, bool inverse) {
  const std::size_t n = x.size();
  NYQMON_CHECK_MSG(is_power_of_two(n), "radix-2 FFT requires power-of-two length");
  bit_reverse_permute(x);

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const cdouble wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cdouble w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = x[i + k];
        const cdouble v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& v : x) v /= static_cast<double>(n);
  }
}

std::vector<cdouble> fft(std::span<const cdouble> x) {
  return transform(x, /*inverse=*/false);
}

std::vector<cdouble> ifft(std::span<const cdouble> x) {
  return transform(x, /*inverse=*/true);
}

std::vector<cdouble> fft_real(std::span<const double> x) {
  std::vector<cdouble> cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = cdouble(x[i], 0.0);
  return fft(cx);
}

std::vector<cdouble> rfft(std::span<const double> x) {
  const std::size_t n = x.size();
  NYQMON_CHECK_MSG(n >= 1, "FFT of empty sequence");
  // Packed real FFT: for even n, fold the real sequence into an n/2-point
  // complex sequence z[k] = x[2k] + i*x[2k+1], transform once, and unpack
  // with the split formula — half the work of the generic complex path.
  if (n >= 4 && n % 2 == 0) {
    const std::size_t half = n / 2;
    std::vector<cdouble> z(half);
    for (std::size_t k = 0; k < half; ++k)
      z[k] = cdouble(x[2 * k], x[2 * k + 1]);
    const auto zf = fft(z);

    std::vector<cdouble> out(half + 1);
    for (std::size_t k = 0; k <= half; ++k) {
      const std::size_t k1 = k % half;
      const std::size_t k2 = (half - k1) % half;
      const cdouble a = zf[k1];
      const cdouble b = std::conj(zf[k2]);
      // Even/odd halves of the original sequence's spectrum.
      const cdouble even = 0.5 * (a + b);
      const cdouble odd = cdouble(0, -0.5) * (a - b);
      const double angle = -2.0 * kPi * static_cast<double>(k) /
                           static_cast<double>(n);
      out[k] = even + cdouble(std::cos(angle), std::sin(angle)) * odd;
    }
    return out;
  }
  auto full = fft_real(x);
  full.resize(n / 2 + 1);
  return full;
}

std::vector<double> irfft(std::span<const cdouble> half, std::size_t n) {
  NYQMON_CHECK(n >= 1);
  NYQMON_CHECK_MSG(half.size() == n / 2 + 1, "irfft: half-spectrum size mismatch");
  std::vector<cdouble> full(n);
  for (std::size_t k = 0; k < half.size(); ++k) full[k] = half[k];
  for (std::size_t k = half.size(); k < n; ++k) full[k] = std::conj(full[n - k]);
  auto time = ifft(full);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = time[i].real();
  return out;
}

std::vector<cdouble> dft_reference(std::span<const cdouble> x) {
  const std::size_t n = x.size();
  NYQMON_CHECK(n >= 1);
  std::vector<cdouble> out(n, cdouble(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      out[k] += x[t] * cdouble(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace nyqmon::dsp
