// End-to-end integration: the full paper pipeline on compact workloads —
// poll -> preclean -> estimate -> downsample -> reconstruct -> verify, the
// Figure 3 two-tone experiment, and failure injection through the whole
// stack.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "dsp/psd.h"
#include "monitor/audit.h"
#include "nyquist/adaptive_sampler.h"
#include "nyquist/estimator.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "signal/preclean.h"
#include "telemetry/fleet.h"
#include "telemetry/poller.h"
#include "util/rng.h"

namespace {

using namespace nyqmon;

TEST(Integration, PollEstimateDownsampleReconstruct) {
  // The full offline loop on one "device": a band-limited utilization
  // signal polled every 30 s with jitter/noise/quantization; the estimator
  // finds a rate far below the poll rate; re-sampling at that rate and
  // reconstructing matches the original within noise.
  Rng rng(61);
  const auto signal = sig::make_bandlimited_process(
      /*bw=*/1e-3, /*rms=*/10.0, 32, rng, /*dc=*/40.0);

  tel::PollerConfig pc;
  pc.interval_s = 30.0;
  pc.jitter_frac = 0.05;
  pc.drop_prob = 0.01;
  pc.noise_stddev = 0.1;
  pc.quantization_step = 1.0;
  const auto raw = tel::poll(*signal, 0.0, 86400.0, pc, rng);

  sig::PrecleanConfig clean;
  clean.dt = 30.0;
  const auto trace = sig::regularize(raw, clean);

  const auto est = nyq::NyquistEstimator().estimate(trace);
  ASSERT_EQ(est.verdict, nyq::NyquistEstimate::Verdict::kOk);
  EXPECT_GT(est.reduction_ratio(), 5.0);
  EXPECT_LE(est.nyquist_rate_hz, 2.5e-3);

  // Downsample to (headroom * estimated Nyquist) and reconstruct. The
  // residual combines the 1% of energy above the 99% cutoff with the
  // quantization/measurement noise in the removed band.
  const double target_rate = 1.5 * est.nyquist_rate_hz;
  const auto factor = static_cast<std::size_t>(
      std::max(1.0, std::floor(trace.sample_rate_hz() / target_rate)));
  const auto recon = rec::round_trip(trace, factor);
  EXPECT_LT(rec::nrmse(trace.span(), recon.span()), 0.08);
}

TEST(Integration, Figure3TwoToneExperiment) {
  // The paper's Figure 3: 400 + 440 Hz tones. Sampled at 890 Hz (above
  // Nyquist 880) both tones are resolvable and reconstruction works;
  // at 800 or 600 Hz aliasing corrupts the spectrum and the
  // reconstruction.
  const std::vector<sig::Tone> tones{{400.0, 1.0, 0.0}, {440.0, 1.0, 0.0}};
  const sig::SumOfSines signal(tones);
  const double duration = 2.0;

  auto sample_at = [&](double fs) {
    const auto n = static_cast<std::size_t>(duration * fs);
    return signal.sample(0.0, 1.0 / fs, n);
  };
  auto spectral_peak_hz = [](const sig::RegularSeries& s) {
    const auto psd = dsp::periodogram(s.span(), s.sample_rate_hz());
    std::size_t peak = 1;
    for (std::size_t k = 1; k < psd.bins(); ++k)
      if (psd.power[k] > psd.power[peak]) peak = k;
    return psd.frequency_hz[peak];
  };

  // Above Nyquist: spectrum peaks at 400/440 and dense reconstruction
  // matches the analytic signal.
  const auto above = sample_at(890.0);
  const double peak_above = spectral_peak_hz(above);
  EXPECT_TRUE(std::abs(peak_above - 400.0) < 2.0 ||
              std::abs(peak_above - 440.0) < 2.0);

  const auto recon = rec::reconstruct(above, above.size() * 4);
  const auto truth = signal.sample(recon.t0(), recon.dt(), recon.size());
  double interior_err = 0.0;
  for (std::size_t i = recon.size() / 8; i < recon.size() * 7 / 8; ++i)
    interior_err = std::max(interior_err, std::abs(recon[i] - truth[i]));
  EXPECT_LT(interior_err, 0.15);

  // Below Nyquist: the 440 Hz tone folds (800-440=360, 600-440=160 etc.);
  // the strongest spectral line sits away from the true tones.
  for (double fs : {800.0, 600.0}) {
    const auto aliased = sample_at(fs);
    const double peak = spectral_peak_hz(aliased);
    const bool truthful = std::abs(peak - 400.0) < 2.0 &&
                          std::abs(peak - 440.0) < 2.0;
    EXPECT_FALSE(truthful) << "fs=" << fs << " peak=" << peak;
    // Reconstruction error is large.
    const auto bad = rec::reconstruct(aliased, truth.size());
    EXPECT_GT(rec::nrmse(truth.span(), bad.span()), 0.2) << "fs=" << fs;
  }
}

TEST(Integration, AdaptiveSamplerOnTelemetryMetric) {
  // Drive the adaptive sampler with a real telemetry metric instance
  // (temperature) including quantized readings.
  Rng rng(62);
  const auto inst =
      tel::make_metric_instance(tel::MetricKind::kTemperature, 7 * 86400.0, rng);
  const dsp::Quantizer quant(inst.quantization_step);
  auto noise = std::make_shared<Rng>(rng.fork());
  auto measure = [&inst, &quant, noise](double t) {
    return quant.apply(inst.signal->value(t) + noise->normal(0.0, 0.02));
  };

  nyq::AdaptiveConfig cfg;
  cfg.initial_rate_hz = 1.0 / 300.0;  // the production 5-min default
  cfg.min_rate_hz = 1.0 / 7200.0;
  cfg.max_rate_hz = 1.0 / 30.0;
  cfg.window_duration_s = 86400.0;
  const auto run = nyq::AdaptiveSampler(cfg).run(measure, 0.0, 7 * 86400.0);

  ASSERT_EQ(run.steps.size(), 7u);
  // The sampler must not blow past the metric's true requirement by more
  // than the probe dynamics allow, and must end within the configured band.
  EXPECT_GE(run.final_rate_hz, cfg.min_rate_hz);
  EXPECT_LE(run.final_rate_hz, cfg.max_rate_hz);
}

TEST(Integration, PrecleanSurvivesHostileTrace) {
  // Failure injection end-to-end: NaNs, duplicate timestamps, out-of-order
  // arrivals, a large gap — the pipeline still produces an estimate.
  Rng rng(63);
  const sig::SumOfSines tone({{0.001, 5.0, 0.0}}, 50.0);
  sig::TimeSeries hostile;
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 10.0;
    if (i % 97 == 0) {
      hostile.push(t, std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    if (i % 101 == 0) hostile.push(t, tone.value(t));  // duplicate below
    if (i > 1000 && i < 1100) continue;                // 1000 s blackout
    hostile.push(t, tone.value(t));
  }
  // Out-of-order late arrival.
  hostile.push(5.0, tone.value(5.0));

  sig::PrecleanConfig clean;
  clean.dt = 10.0;
  sig::PrecleanReport report;
  const auto trace = sig::regularize(hostile, clean, &report);
  EXPECT_GT(report.dropped_nonfinite, 0u);
  EXPECT_GT(report.collapsed_duplicates, 0u);
  EXPECT_GT(report.filled_in_long_gaps, 0u);

  const auto est = nyq::NyquistEstimator().estimate(trace);
  ASSERT_EQ(est.verdict, nyq::NyquistEstimate::Verdict::kOk);
  EXPECT_NEAR(est.nyquist_rate_hz, 0.002, 0.001);
}

TEST(Integration, AuditHeadlineShapeOnMediumFleet) {
  // A 400-pair fleet reproduces the Section 3.2 shape: most pairs
  // over-sampled, a minority under-sampled, some pairs reducible by large
  // factors.
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 400;
  fleet_cfg.seed = 20210527;
  const tel::Fleet fleet(fleet_cfg);
  const auto audit = mon::run_audit(fleet, mon::AuditConfig{});

  EXPECT_GT(audit.fraction_oversampled(), 0.7);
  EXPECT_LT(audit.fraction_undersampled(), 0.3);
  EXPECT_GT(audit.fraction_reducible_by(10.0), 0.2);
  // Every metric present and aggregated.
  EXPECT_EQ(audit.by_metric.size(), tel::kMetricCount);
}

}  // namespace
