// Dynamic sampling-rate adaptation (paper Section 4.2).
//
// The sampler measures a live signal window by window and adjusts its rate:
//
//   * Each window the sampler acquires a primary stream at its operating
//     rate plus a checker stream at ratio * rate (non-integer ratio); the
//     Penny comparison of the two spectra on [0, rate/2) certifies or
//     indicts the operating rate. This is the "roughly doubles measurement
//     cost" configuration of Section 4.1.
//   * PROBE mode — while aliasing persists, multiplicatively increase the
//     rate ("we must probe, i.e., multiplicatively increase the measurement
//     rate along with the method in Section 4.1").
//   * TRACK mode — once a window is alias-free, run the Section 3.2
//     estimator on it and settle at headroom * estimated-Nyquist;
//     adaptively decrease when the estimate falls, and re-enter PROBE the
//     moment the dual-rate detector fires again.
//   * RATE MEMORY — optionally "remember previous maximum Nyquist rates to
//     ramp up more quickly in the future": on a new aliasing event, jump
//     straight to the remembered rate instead of doubling step by step.
//
// Every acquired sample (both detector streams) is counted, so experiments
// can report true measurement cost against a fixed-rate baseline.
#pragma once

#include <functional>
#include <vector>

#include "nyquist/aliasing_detector.h"
#include "nyquist/estimator.h"
#include "signal/timeseries.h"

namespace nyqmon::nyq {

struct AdaptiveConfig {
  double initial_rate_hz = 1.0 / 300.0;  ///< typical production default: 5 min
  double min_rate_hz = 1.0 / 7200.0;     ///< never slower than one sample/2h
  double max_rate_hz = 1.0;              ///< hardware/poller ceiling
  /// Multiplicative increase factor while probing.
  double probe_factor = 2.0;
  /// Sampling-rate headroom above the estimated Nyquist rate when tracking
  /// (the paper recommends "maintaining ample headroom").
  double headroom = 1.5;
  /// Maximum multiplicative decrease per window (gradual ramp-down).
  double max_decrease_factor = 2.0;
  /// Duration of each adaptation window (seconds).
  double window_duration_s = 3600.0;
  /// Remember the highest rate that was ever needed and jump straight back
  /// to it when aliasing recurs.
  bool use_rate_memory = true;
  /// While tracking, run the dual-rate check only every this many windows
  /// ("leverage temporal stability to make adaptation ... less expensive");
  /// probing windows always check. 1 = check every window.
  std::size_t recheck_interval_windows = 4;
  DetectorConfig detector;
  EstimatorConfig estimator;
};

enum class SamplerMode { kProbe, kTrack };

/// Per-window log entry.
struct AdaptiveStep {
  double window_start_s = 0.0;
  SamplerMode mode = SamplerMode::kProbe;
  double rate_hz = 0.0;            ///< primary acquisition rate this window
  bool aliasing_detected = false;  ///< dual-rate verdict for this window
  NyquistEstimate estimate;        ///< Section 3.2 estimate on the window
  double next_rate_hz = 0.0;       ///< rate chosen for the following window
  std::size_t samples_acquired = 0;///< primary + detector stream samples
};

struct AdaptiveRun {
  std::vector<AdaptiveStep> steps;
  /// All primary-stream samples (timestamps are real acquisition times).
  sig::TimeSeries collected;
  std::size_t total_samples = 0;   ///< includes detector overhead
  double final_rate_hz = 0.0;

  /// Samples a fixed-rate poller would have taken over the same span.
  std::size_t baseline_samples(double baseline_rate_hz) const;
  double duration_s = 0.0;
};

/// Post-hoc aliasing audit of one adaptive run: how often the dual-rate
/// detector fired, how long the sampler spent probing, and (per pair) the
/// rate ceiling it needed. The fleet engine rolls the window counts up per
/// metric to report which parts of the fleet are hard to track.
struct RunAudit {
  std::size_t windows = 0;
  std::size_t aliased_windows = 0;  ///< dual-rate verdict fired
  std::size_t probe_windows = 0;    ///< sampler was in PROBE mode
  double max_rate_hz = 0.0;         ///< highest primary rate used
  double final_rate_hz = 0.0;

  double aliased_fraction() const {
    return windows == 0 ? 0.0
                        : static_cast<double>(aliased_windows) /
                              static_cast<double>(windows);
  }
};

RunAudit audit_run(const AdaptiveRun& run);

class AdaptiveSampler {
 public:
  explicit AdaptiveSampler(AdaptiveConfig config = {});

  const AdaptiveConfig& config() const { return config_; }

  /// Run over [t0, t0 + duration): `measure(t)` returns the metric reading
  /// at time t (the live signal, possibly noisy/quantized).
  AdaptiveRun run(const std::function<double(double)>& measure, double t0,
                  double duration_s) const;

 private:
  AdaptiveConfig config_;
};

}  // namespace nyqmon::nyq
