// PSD estimation: normalization (Parseval), tone localization, windows,
// Welch averaging, and the cumulative-energy machinery behind the paper's
// 99% rule.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/psd.h"
#include "dsp/window.h"
#include "signal/generators.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using nyqmon::dsp::make_window;
using nyqmon::dsp::periodogram;
using nyqmon::dsp::PeriodogramConfig;
using nyqmon::dsp::Psd;
using nyqmon::dsp::welch;
using nyqmon::dsp::WelchConfig;
using nyqmon::dsp::window_energy;
using nyqmon::dsp::WindowType;
using nyqmon::sig::make_sine;

PeriodogramConfig rect_config() {
  PeriodogramConfig pc;
  pc.window = WindowType::kRectangular;
  pc.remove_mean = false;
  return pc;
}

TEST(Window, AllTypesHaveCorrectLengthAndBounds) {
  for (auto type : {WindowType::kRectangular, WindowType::kHann,
                    WindowType::kHamming, WindowType::kBlackman,
                    WindowType::kFlatTop}) {
    const auto w = make_window(type, 65);
    ASSERT_EQ(w.size(), 65u);
    for (double v : w) {
      EXPECT_LE(v, 1.0 + 1e-12) << nyqmon::dsp::window_name(type);
      // Flat-top dips slightly negative by design; others stay >= 0.
      if (type != WindowType::kFlatTop) {
        EXPECT_GE(v, -1e-12);
      }
    }
  }
}

TEST(Window, RectangularIsAllOnes) {
  for (double v : make_window(WindowType::kRectangular, 10))
    EXPECT_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(window_energy(WindowType::kRectangular, 10), 10.0);
}

TEST(Window, HannPeriodicFormStartsAtZero) {
  const auto w = make_window(WindowType::kHann, 16);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[8], 1.0, 1e-12);  // midpoint of the periodic Hann
}

TEST(Window, SingleSampleWindowIsOne) {
  for (auto type : {WindowType::kHann, WindowType::kBlackman}) {
    const auto w = make_window(type, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 1.0);
  }
}

TEST(Periodogram, UnitSineTotalEnergyIsHalf) {
  // Bin-centred tone, rectangular window: total one-sided PSD == mean
  // square == 0.5 for a unit sine.
  const auto x = make_sine(/*fs=*/128.0, /*n=*/256, /*freq=*/16.0);
  const Psd psd = periodogram(x, 128.0, rect_config());
  EXPECT_NEAR(psd.total_energy(), 0.5, 1e-9);
}

TEST(Periodogram, ToneAppearsInCorrectBin) {
  const double fs = 1000.0;
  const std::size_t n = 500;
  const auto x = make_sine(fs, n, 100.0);
  const Psd psd = periodogram(x, fs, rect_config());
  // Peak bin should be at 100 Hz: bin index 100/(fs/n) = 50.
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.bins(); ++k)
    if (psd.power[k] > psd.power[peak]) peak = k;
  EXPECT_NEAR(psd.frequency_hz[peak], 100.0, psd.resolution_hz() / 2.0);
}

TEST(Periodogram, FrequencyAxis) {
  const auto x = make_sine(10.0, 100, 1.0);
  const Psd psd = periodogram(x, 10.0, rect_config());
  ASSERT_EQ(psd.bins(), 51u);  // n/2 + 1
  EXPECT_DOUBLE_EQ(psd.frequency_hz.front(), 0.0);
  EXPECT_NEAR(psd.frequency_hz.back(), 5.0, 1e-12);
  EXPECT_NEAR(psd.resolution_hz(), 0.1, 1e-12);
}

TEST(Periodogram, MeanRemovalKillsDcBin) {
  std::vector<double> x(128, 5.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] += 0.1 * std::sin(2.0 * std::numbers::pi * 8.0 *
                           static_cast<double>(i) / 128.0);
  PeriodogramConfig with_mean = rect_config();
  PeriodogramConfig without_mean = rect_config();
  without_mean.remove_mean = true;
  const Psd keep = periodogram(x, 128.0, with_mean);
  const Psd removed = periodogram(x, 128.0, without_mean);
  EXPECT_GT(keep.power[0], 1.0);          // DC dominates
  EXPECT_NEAR(removed.power[0], 0.0, 1e-12);
}

TEST(Periodogram, WindowedToneStillLocalized) {
  PeriodogramConfig pc;
  pc.window = WindowType::kHann;
  pc.remove_mean = true;
  // Non-bin-centred tone: the Hann window keeps leakage local.
  const auto x = make_sine(1000.0, 512, 99.7);
  const Psd psd = periodogram(x, 1000.0, pc);
  double in_band = 0.0;
  for (std::size_t k = 0; k < psd.bins(); ++k)
    if (std::abs(psd.frequency_hz[k] - 99.7) < 10.0) in_band += psd.power[k];
  EXPECT_GT(in_band / psd.total_energy(), 0.99);
}

TEST(Periodogram, RejectsDegenerateInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)periodogram(one, 1.0), std::invalid_argument);
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW((void)periodogram(two, 0.0), std::invalid_argument);
}

TEST(CumulativeEnergy, FindsCutoffBin) {
  Psd psd;
  psd.sample_rate_hz = 10.0;
  psd.frequency_hz = {0.0, 1.0, 2.0, 3.0, 4.0};
  psd.power = {0.0, 80.0, 15.0, 4.0, 1.0};
  EXPECT_EQ(psd.cumulative_energy_bin(0.80), 1u);
  EXPECT_EQ(psd.cumulative_energy_bin(0.95), 2u);
  EXPECT_EQ(psd.cumulative_energy_bin(0.99), 3u);
  EXPECT_EQ(psd.cumulative_energy_bin(1.00), 4u);
  EXPECT_DOUBLE_EQ(psd.cumulative_energy_frequency(0.95), 2.0);
}

TEST(CumulativeEnergy, MonotoneInCutoff) {
  Rng rng(9);
  std::vector<double> x(256);
  for (auto& v : x) v = rng.normal(0, 1);
  const Psd psd = periodogram(x, 1.0);
  std::size_t prev = 0;
  for (double cut : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::size_t bin = psd.cumulative_energy_bin(cut);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
}

TEST(CumulativeEnergy, InvalidFractionThrows) {
  Psd psd;
  psd.frequency_hz = {0.0, 1.0};
  psd.power = {1.0, 1.0};
  EXPECT_THROW((void)psd.cumulative_energy_bin(0.0), std::invalid_argument);
  EXPECT_THROW((void)psd.cumulative_energy_bin(1.5), std::invalid_argument);
}

TEST(Welch, ReducesVarianceOnWhiteNoise) {
  Rng rng(10);
  std::vector<double> x(4096);
  for (auto& v : x) v = rng.normal(0, 1);

  const Psd single = periodogram(x, 1.0, rect_config());
  WelchConfig wc;
  wc.segment_length = 256;
  wc.window = WindowType::kRectangular;
  wc.remove_mean = false;
  const Psd averaged = welch(x, 1.0, wc);

  auto rel_var = [](const Psd& p) {
    double m = 0.0, v = 0.0;
    for (double q : p.power) m += q;
    m /= static_cast<double>(p.bins());
    for (double q : p.power) v += (q - m) * (q - m);
    v /= static_cast<double>(p.bins());
    return v / (m * m);
  };
  EXPECT_LT(rel_var(averaged), rel_var(single) / 4.0);
}

TEST(Welch, PreservesTotalEnergyApproximately) {
  const auto x = make_sine(100.0, 2048, 10.0);
  WelchConfig wc;
  wc.segment_length = 512;
  wc.window = WindowType::kRectangular;
  wc.remove_mean = false;
  const Psd psd = welch(x, 100.0, wc);
  EXPECT_NEAR(psd.total_energy(), 0.5, 0.05);
}

TEST(Welch, SegmentLongerThanSignalFallsBackToOneBlock) {
  const auto x = make_sine(100.0, 128, 10.0);
  WelchConfig wc;
  wc.segment_length = 4096;
  const Psd psd = welch(x, 100.0, wc);
  EXPECT_EQ(psd.bins(), 65u);
}

}  // namespace
