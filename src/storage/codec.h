// Gorilla-style XOR compression for regular-grid float values.
//
// The durable tier stores sealed retention chunks as compact binary blocks.
// Timestamps never hit disk — chunk values sit on a regular grid fully
// described by (t0, dt, n) in the block header — so the codec only has to
// handle the values. Following Facebook's Gorilla (VLDB'15) value scheme,
// each double is XORed with its predecessor: identical values cost one bit,
// slowly varying telemetry (the common case after Nyquist re-sampling)
// costs only its changed significand window. The encoding is bit-exact —
// decode returns the original 64-bit patterns, which is what makes
// reconstructions from a reopened store bit-identical to the live run.
//
// Layering note: this header (like crc32.h) is a dependency-free leaf —
// monitor/'s chunk-seal path calls xor_encoded_size() so the store's byte
// accounting reflects the real codec in every run, persisted or not. The
// rest of storage/ sits above monitor/ and must not be included from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nyqmon::sto {

/// Codec identifier byte stored in chunk/tail block headers.
inline constexpr std::uint8_t kCodecXor = 1;

/// Encode `values` into the XOR bit stream. The sample count is not part of
/// the stream; callers persist it in the enclosing block header.
std::vector<std::uint8_t> xor_encode(std::span<const double> values);

/// Exact byte size xor_encode() would produce, without materializing the
/// buffer — the hook the retention store uses to account stored bytes at
/// chunk-seal time.
std::size_t xor_encoded_size(std::span<const double> values);

/// Decode exactly `count` doubles. Throws std::runtime_error if the stream
/// is too short (possible only for corrupt-but-CRC-colliding blocks; the
/// segment reader treats that like a CRC failure).
std::vector<double> xor_decode(std::span<const std::uint8_t> bytes,
                               std::size_t count);

/// Per-chunk on-disk overhead beyond the codec payload: the segment block
/// frame (type, length, CRC) plus the chunk header (t0, dt, count, codec id).
/// Kept here so the store's byte accounting matches what flush() writes;
/// segment.cc static_asserts the value against its actual framing.
inline constexpr std::size_t kChunkDiskOverheadBytes = 30;

}  // namespace nyqmon::sto
