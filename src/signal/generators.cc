#include "signal/generators.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace nyqmon::sig {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kDay = 86400.0;
}  // namespace

std::vector<double> make_sine(double fs_hz, std::size_t n, double freq_hz,
                              double amplitude, double phase) {
  NYQMON_CHECK(fs_hz > 0.0);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs_hz;
    x[i] = amplitude * std::sin(kTwoPi * freq_hz * t + phase);
  }
  return x;
}

std::vector<double> make_tones(double fs_hz, std::size_t n,
                               const std::vector<Tone>& tones) {
  NYQMON_CHECK(fs_hz > 0.0);
  std::vector<double> x(n, 0.0);
  for (const auto& tone : tones) {
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / fs_hz;
      x[i] += tone.amplitude * std::sin(kTwoPi * tone.frequency_hz * t + tone.phase);
    }
  }
  return x;
}

std::vector<double> make_white_noise(std::size_t n, double stddev, Rng& rng) {
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal(0.0, stddev);
  return x;
}

std::shared_ptr<SumOfSines> make_bandlimited_process(double bandwidth_hz,
                                                     double rms,
                                                     std::size_t n_tones,
                                                     Rng& rng,
                                                     double dc_offset,
                                                     SpectralShape shape) {
  NYQMON_CHECK(bandwidth_hz > 0.0);
  NYQMON_CHECK(n_tones >= 1);
  NYQMON_CHECK(rms >= 0.0);

  std::vector<Tone> tones(n_tones);
  for (std::size_t i = 0; i < n_tones; ++i) {
    double f = i == 0 ? bandwidth_hz  // pin the band edge
                      : rng.log_uniform(bandwidth_hz / 10.0, bandwidth_hz);
    tones[i].frequency_hz = f;
    tones[i].amplitude = shape == SpectralShape::kRed
                             ? 1.0 / std::sqrt(f / bandwidth_hz * 10.0)
                             : 1.0;
    tones[i].phase = rng.uniform(0.0, kTwoPi);
  }
  // Scale amplitudes so the process RMS (sum of a_i^2/2) matches `rms`.
  double power = 0.0;
  for (const auto& tone : tones) power += tone.amplitude * tone.amplitude / 2.0;
  const double scale = power > 0.0 ? rms / std::sqrt(power) : 0.0;
  for (auto& tone : tones) tone.amplitude *= scale;
  return std::make_shared<SumOfSines>(std::move(tones), dc_offset);
}

std::shared_ptr<GaussianBumpTrain> make_burst_process(double duration_s,
                                                      double rate_per_s,
                                                      double sigma_s,
                                                      double amplitude_mean,
                                                      Rng& rng,
                                                      double baseline) {
  NYQMON_CHECK(duration_s > 0.0);
  NYQMON_CHECK(rate_per_s >= 0.0);
  std::vector<GaussianBumpTrain::Bump> bumps;
  double t = rate_per_s > 0.0 ? rng.exponential(rate_per_s) : duration_s + 1.0;
  while (t < duration_s) {
    GaussianBumpTrain::Bump b;
    b.center_s = t;
    b.amplitude = rng.exponential(1.0 / amplitude_mean);
    bumps.push_back(b);
    t += rng.exponential(rate_per_s);
  }
  // At least one bump so the process is not identically the baseline.
  if (bumps.empty())
    bumps.push_back({rng.uniform(0.0, duration_s), amplitude_mean});
  return std::make_shared<GaussianBumpTrain>(std::move(bumps), sigma_s, baseline);
}

std::shared_ptr<SmoothStepTrain> make_flap_process(double duration_s,
                                                   double rate_per_s,
                                                   double width_s,
                                                   double amplitude,
                                                   Rng& rng,
                                                   double baseline) {
  NYQMON_CHECK(duration_s > 0.0);
  NYQMON_CHECK(rate_per_s >= 0.0);
  std::vector<SmoothStepTrain::Step> steps;
  double level = 0.0;
  double t = rate_per_s > 0.0 ? rng.exponential(rate_per_s) : duration_s + 1.0;
  while (t < duration_s) {
    // Alternate up/down so the level stays bounded (a flap, not a ramp).
    const double a = level <= 0.0 ? amplitude : -amplitude;
    steps.push_back({t, a});
    level += a;
    t += rng.exponential(rate_per_s);
  }
  if (steps.empty()) steps.push_back({duration_s / 2.0, amplitude});
  return std::make_shared<SmoothStepTrain>(std::move(steps), width_s, baseline);
}

std::shared_ptr<SumOfSines> make_diurnal(double peak_to_peak,
                                         std::size_t harmonics, Rng& rng,
                                         double dc_offset) {
  NYQMON_CHECK(harmonics >= 1);
  std::vector<Tone> tones;
  tones.reserve(harmonics);
  double amp = peak_to_peak / 2.0;
  for (std::size_t h = 1; h <= harmonics; ++h) {
    Tone tone;
    tone.frequency_hz = static_cast<double>(h) / kDay;
    tone.amplitude = amp / static_cast<double>(h * h);
    tone.phase = rng.uniform(0.0, kTwoPi);
    tones.push_back(tone);
  }
  return std::make_shared<SumOfSines>(std::move(tones), dc_offset);
}

}  // namespace nyqmon::sig
