#include "nyquist/windowed_tracker.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nyqmon::nyq {

WindowedNyquistTracker::WindowedNyquistTracker(TrackerConfig config)
    : config_(config) {
  NYQMON_CHECK(config_.window_duration_s > 0.0);
  NYQMON_CHECK(config_.step_s > 0.0);
}

std::vector<TrackedEstimate> WindowedNyquistTracker::track(
    const sig::RegularSeries& trace) const {
  NYQMON_CHECK(!trace.empty());
  const NyquistEstimator estimator(config_.estimator);

  const double dt = trace.dt();
  const std::size_t win = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(config_.window_duration_s / dt)));
  const std::size_t step = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(config_.step_s / dt)));

  std::vector<TrackedEstimate> out;
  if (trace.size() <= win) {
    out.push_back({trace.t0(), estimator.estimate(trace)});
    return out;
  }
  for (std::size_t start = 0; start + win <= trace.size(); start += step) {
    TrackedEstimate te;
    te.window_start_s = trace.time_at(start);
    te.estimate = estimator.estimate(trace.slice(start, win));
    out.push_back(te);
  }
  return out;
}

std::optional<double> WindowedNyquistTracker::max_rate(
    const std::vector<TrackedEstimate>& t) {
  std::optional<double> best;
  for (const auto& te : t) {
    if (te.estimate.ok()) {
      best = best ? std::max(*best, te.estimate.nyquist_rate_hz)
                  : te.estimate.nyquist_rate_hz;
    }
  }
  return best;
}

}  // namespace nyqmon::nyq
