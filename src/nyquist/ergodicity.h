// Ergodicity analysis (paper Section 6, "Beyond Nyquist").
//
// "Samples from the system are ergodic if the statistical properties of a
//  set of samples derived from a single CPU over a sufficiently long
//  sequence of time are equivalent to those of a set of samples derived
//  from measuring the entire fleet at once. ... Extrapolating canary
//  results to other devices relies on ergodicity. Does this assumption
//  hold in practice? How long of an observation period is required?"
//
// ErgodicityAnalyzer compares the time-average statistics of individual
// devices against the ensemble statistics of the whole fleet at fixed
// instants, and finds the observation horizon after which the two agree —
// the quantitative answer to the paper's canarying question.
#pragma once

#include <optional>
#include <vector>

#include "signal/stats.h"
#include "signal/timeseries.h"

namespace nyqmon::nyq {

struct ErgodicityConfig {
  /// Agreement tolerance: |time mean - ensemble mean| below this multiple
  /// of the ensemble standard deviation counts as converged.
  double mean_tolerance_sigmas = 0.5;
  /// Number of time instants at which the ensemble statistics are taken.
  std::size_t ensemble_instants = 32;
};

struct ErgodicityReport {
  /// Ensemble statistics: all devices sampled at the same instants.
  sig::Summary ensemble;
  /// Per-device time-average means over the full observation window.
  std::vector<double> device_time_means;
  /// Fraction of devices whose time mean is within the tolerance of the
  /// ensemble mean over the full window (1.0 = fleet looks ergodic).
  double converged_fraction = 0.0;
  /// Shortest prefix duration (seconds) after which at least 90% of the
  /// devices' running time-means agree with the ensemble mean; nullopt if
  /// never reached within the window — the "how long must the canary run"
  /// answer.
  std::optional<double> convergence_horizon_s;
};

class ErgodicityAnalyzer {
 public:
  explicit ErgodicityAnalyzer(ErgodicityConfig config = {});

  /// All traces must share grid parameters (t0, dt, length): one trace per
  /// device of the same metric.
  ErgodicityReport analyze(const std::vector<sig::RegularSeries>& fleet) const;

 private:
  ErgodicityConfig config_;
};

}  // namespace nyqmon::nyq
