// StreamingRuntime — continuous a-posteriori monitoring (the live form of
// paper Section 4).
//
// FleetMonitorEngine::run() drives every pair to completion and only then
// opens a query session; this runtime turns the same per-pair pipeline into
// a long-lived service. Each pair's adaptive poller is driven one
// adaptation window at a time by a deadline scheduler: a pair's deadline is
// the moment its next window's data is complete on the signal timeline, and
// it is re-planned every window as the dual-rate detector adjusts the
// pair's operating rate. Finalized reconstruction slices flow into the
// shared StripedRetentionStore immediately (chunks seal incrementally, the
// StorageManager WAL records every batch), and a live QueryEngine serves
// selector queries *during* ingest — per-stream write-generation counters
// keep cached results correct as data keeps arriving.
//
// Time is pluggable (runtime/clock.h): under a VirtualClock the whole
// timeline replays as fast as the hardware allows, and a completed
// streaming run is bit-identical to the batch engine over the same fleet,
// seed and config — same per-pair outcomes, same retained chunks, same
// query results (write-generation counters differ: streaming ingests each
// stream in many batches rather than one).
//
// Ownership: the runtime borrows the fleet and the clock (both must
// outlive it) and owns its store, query engine, pair pipelines and
// optional durable tier.
//
// Threading: poll()/step()/run_to_completion()/checkpoint() are the
// scheduler's and must come from one thread at a time (they serialize on an
// internal mutex); poll() itself fans due pairs out over worker threads.
// store(), query_engine() and stats() may be used concurrently from any
// thread, including while a poll is in flight — that is the point.
//
// Determinism: under a VirtualClock a completed run is bit-identical to
// FleetMonitorEngine::run() over the same fleet/config/seed — per-pair
// noise seeds come from the same sequential fork, and each pair's windows
// are stepped in timeline order regardless of how poll() batches them.
// Only write-generation counters (and wall-clock stats) differ.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "runtime/clock.h"

namespace nyqmon::rt {

struct RuntimeConfig {
  /// Fleet/pipeline/store/storage knobs, shared with the batch engine so a
  /// streaming run is comparable (and bit-identical) to a batch run.
  eng::EngineConfig engine;
  /// Checkpoint the durable tier (WAL → sealed segments) every N processed
  /// pair-windows, fleet-wide; 0 = only on explicit checkpoint() and at
  /// run completion. Meaningful only when engine.storage.dir is set.
  std::size_t checkpoint_interval_windows = 0;
  /// The live serving session over the store.
  qry::QueryEngineConfig query;
};

/// Live progress counters (readable from any thread, any time).
struct RuntimeStats {
  std::size_t pairs = 0;
  std::size_t pairs_done = 0;
  std::uint64_t windows_processed = 0;
  /// Measurement samples acquired (primary + checker streams).
  std::uint64_t samples_acquired = 0;
  /// Finalized reconstruction values ingested into the retention store.
  std::uint64_t values_ingested = 0;
  std::uint64_t checkpoints = 0;
  double now_s = 0.0;  ///< the clock's current time
};

class StreamingRuntime {
 public:
  /// The fleet and clock must outlive the runtime.
  StreamingRuntime(const tel::Fleet& fleet, Clock& clock,
                   RuntimeConfig config = {});

  const RuntimeConfig& config() const { return config_; }

  /// True once every pair has been driven through its full timeline.
  bool done() const { return pairs_done_.load() == tasks_.size(); }

  /// Earliest pending window deadline on the signal timeline; +inf once
  /// done().
  double next_deadline_s() const;

  /// Drive every pair whose next window deadline has passed on the clock,
  /// in parallel. Returns the number of windows processed.
  std::size_t poll();

  /// sleep_until the next deadline, then poll() — one scheduler beat.
  std::size_t step();

  /// Drive the remaining timeline to completion and return the aggregate
  /// result; bit-identical to FleetMonitorEngine::run() over the same
  /// fleet/config/seed (wall_seconds and shard accounting aside).
  /// Single-shot, but poll()/step() beforehand are fine.
  eng::FleetRunResult run_to_completion();

  /// Retained data; safe for concurrent queries at any point.
  const mon::StripedRetentionStore& store() const { return store_; }
  mon::StripedRetentionStore& mutable_store() { return store_; }

  /// The live serving session (selector queries over the store, cached
  /// with generation-correct invalidation under concurrent ingest).
  qry::QueryEngine& query_engine() { return query_; }

  /// Quiesced durable checkpoint: seal everything flushed so far into a
  /// segment and swap the WAL. Returns skipped=true when the runtime has
  /// no durable tier. Quiesces the runtime's own writers (the scheduler
  /// mutex parks poll() workers); callers with additional ingest paths
  /// must quiesce those themselves — NyqmondServer does, parking all its
  /// reactors before invoking this as its checkpoint_fn.
  sto::FlushStats checkpoint();

  /// The durable tier, or nullptr when running in-memory only.
  const sto::StorageManager* storage() const { return storage_.get(); }

  RuntimeStats stats() const;

 private:
  struct PairTask {
    std::unique_ptr<mon::StreamingPairPipeline> pipeline;
    std::string stream_id;
    double next_deadline_s = 0.0;
    std::size_t ingested = 0;      ///< recon values appended to the store
    std::size_t windows_seen = 0;  ///< steps accounted into the counters
    std::uint64_t samples_seen = 0;
    bool done = false;
    eng::PairOutcome outcome;  ///< valid once done
  };

  /// Step one due pair through every window whose deadline has passed,
  /// ingest the newly finalized reconstruction slice, and finalize the
  /// outcome when the pair's timeline ends. Runs on a worker thread.
  void advance_pair(std::size_t index, double now_s);
  sto::FlushStats checkpoint_locked();

  const tel::Fleet& fleet_;
  Clock& clock_;
  RuntimeConfig config_;
  mon::StripedRetentionStore store_;
  std::unique_ptr<sto::StorageManager> storage_;
  qry::QueryEngine query_;
  std::vector<tel::PairSchedule> schedules_;
  std::vector<PairTask> tasks_;

  /// Serializes the scheduler entry points (poll/checkpoint/finalize).
  mutable std::mutex scheduler_mu_;
  /// Min-heap of (deadline, pair index): the pairs not yet done.
  using Deadline = std::pair<double, std::size_t>;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<Deadline>>
      deadlines_;
  std::size_t windows_since_checkpoint_ = 0;
  bool finalized_ = false;

  std::atomic<std::size_t> pairs_done_{0};
  std::atomic<std::uint64_t> windows_processed_{0};
  std::atomic<std::uint64_t> samples_acquired_{0};
  std::atomic<std::uint64_t> values_ingested_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
};

}  // namespace nyqmon::rt
