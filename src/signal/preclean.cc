#include "signal/preclean.h"

#include <cmath>

#include "util/check.h"

namespace nyqmon::sig {

RegularSeries regularize(const TimeSeries& raw, const PrecleanConfig& config,
                         PrecleanReport* report) {
  PrecleanReport local;
  local.input_samples = raw.size();

  // Drop non-finite values; average duplicate timestamps.
  std::vector<Sample> clean;
  clean.reserve(raw.size());
  for (const auto& s : raw.samples()) {
    if (!std::isfinite(s.t) || !std::isfinite(s.v)) {
      ++local.dropped_nonfinite;
      continue;
    }
    if (!clean.empty() && s.t == clean.back().t) {
      clean.back().v = 0.5 * (clean.back().v + s.v);
      ++local.collapsed_duplicates;
      continue;
    }
    clean.push_back(s);
  }
  NYQMON_CHECK_MSG(clean.size() >= 2,
                   "regularize needs at least two finite samples");

  double dt = config.dt;
  if (dt <= 0.0) dt = TimeSeries(clean).median_interval();
  NYQMON_CHECK_MSG(dt > 0.0, "cannot infer a positive sampling interval");
  local.chosen_dt = dt;

  const double t0 = clean.front().t;
  const double t_end = clean.back().t;
  const std::size_t n =
      static_cast<std::size_t>(std::floor((t_end - t0) / dt)) + 1;

  std::vector<double> grid(n);
  std::size_t j = 0;  // clean[j] is the first sample with t >= grid time
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) * dt;
    while (j < clean.size() && clean[j].t < t) ++j;

    if (config.interp == InterpKind::kNearest) {
      if (j == 0) {
        grid[i] = clean.front().v;
      } else if (j == clean.size()) {
        grid[i] = clean.back().v;
      } else {
        const double d_prev = t - clean[j - 1].t;
        const double d_next = clean[j].t - t;
        grid[i] = d_prev <= d_next ? clean[j - 1].v : clean[j].v;
      }
    } else {  // linear
      if (j == 0) {
        grid[i] = clean.front().v;
      } else if (j == clean.size()) {
        grid[i] = clean.back().v;
      } else {
        const auto& a = clean[j - 1];
        const auto& b = clean[j];
        const double frac = (t - a.t) / (b.t - a.t);
        grid[i] = a.v * (1.0 - frac) + b.v * frac;
      }
    }

    // Long-gap accounting: a grid point is "inside a long gap" when the
    // bracketing raw samples are more than long_gap_steps*dt apart.
    if (j > 0 && j < clean.size() &&
        clean[j].t - clean[j - 1].t > config.long_gap_steps * dt) {
      ++local.filled_in_long_gaps;
    }
  }

  local.grid_points = n;
  if (report != nullptr) *report = local;
  return RegularSeries(t0, dt, std::move(grid));
}

}  // namespace nyqmon::sig
