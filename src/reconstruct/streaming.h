// Streaming (low-latency) reconstruction (paper Section 4.3):
//
// "This reconstruction takes time and may not be acceptable to applications
//  that expect low-latency. However, in many cases this reconstruction cost
//  is acceptable."
//
// The offline reconstructor needs the whole trace (one big FFT). The
// streaming upsampler trades a bounded delay for continuous operation: it
// interpolates with a causal windowed-sinc FIR of K taps, so each dense
// output sample is available K/2 input samples after its timestamp. Latency
// (taps) versus fidelity is the knob the paper alludes to — quantified in
// bench/ablation_streaming_latency.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "signal/timeseries.h"

namespace nyqmon::rec {

struct StreamingConfig {
  /// Upsampling factor L (each input sample yields L output samples).
  std::size_t factor = 4;
  /// Sinc taps *per input sample* on each side; total kernel support is
  /// 2*half_taps input samples, and the output delay is half_taps samples.
  std::size_t half_taps = 8;
};

/// Push sparse samples in, pull dense samples out with a fixed delay.
class StreamingUpsampler {
 public:
  explicit StreamingUpsampler(StreamingConfig config = {});

  const StreamingConfig& config() const { return config_; }

  /// Latency of the reconstruction, in input-sample periods.
  std::size_t delay_samples() const { return config_.half_taps; }

  /// Feed one input sample; returns the dense output samples that became
  /// final with its arrival (config.factor of them once the pipeline is
  /// primed, none before that).
  std::vector<double> push(double value);

  /// Flush remaining output at end of stream (pads with the edge value).
  std::vector<double> finish();

  /// Convenience: run a whole uniform trace through the streamer and
  /// return the dense reconstruction aligned to the input grid.
  static sig::RegularSeries upsample(const sig::RegularSeries& sparse,
                                     const StreamingConfig& config = {});

 private:
  std::vector<double> emit_for_center(std::size_t center);

  StreamingConfig config_;
  std::deque<double> window_;   // last 2*half_taps+1 input samples
  std::size_t pushed_ = 0;
  std::vector<std::vector<double>> phase_kernels_;  // one per sub-sample phase
};

}  // namespace nyqmon::rec
