// Thread-safe, mutex-striped facade over RetentionStore.
//
// The fleet engine drives hundreds of metric-device pairs concurrently and
// every pair ingests its reconstruction into shared retention. A single
// store behind one mutex would serialize the fan-in, so streams are
// partitioned across S independent RetentionStore stripes by a stable hash
// of the stream name; each stripe has its own lock and unrelated streams
// ingest in parallel. The final store state is independent of thread
// interleaving because every stream is written by exactly one producer and
// stripe assignment depends only on the name.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "monitor/store.h"

namespace nyqmon::mon {

class StripedRetentionStore {
 public:
  explicit StripedRetentionStore(StoreConfig config = {},
                                 std::size_t stripes = 16);

  /// Thread-safe equivalents of the RetentionStore stream API.
  void create_stream(const std::string& name, double collection_rate_hz,
                     double t0 = 0.0);
  void append(const std::string& name, double value);
  /// Bulk ingest: one lock acquisition for the whole series.
  void append_series(const std::string& name, std::span<const double> values);

  sig::RegularSeries query(const std::string& name, double t_begin,
                           double t_end) const;
  StreamStats stats(const std::string& name) const;

  /// Grid/span/generation metadata for one stream (see StreamMeta).
  StreamMeta meta(const std::string& name) const;

  /// meta() that reports an unknown name as nullopt instead of throwing.
  std::optional<StreamMeta> find_meta(const std::string& name) const;

  /// Metadata for every stream across stripes, lexicographically sorted by
  /// name. The serving layer's selector match + prune pass; cheap relative
  /// to reconstruction, but it does take every stripe lock in turn, so the
  /// snapshot is per-stripe (not globally) atomic under concurrent ingest.
  std::vector<std::pair<std::string, StreamMeta>> list_meta() const;

  /// All stream names across stripes, lexicographically sorted.
  std::vector<std::string> stream_names() const;

  /// Aggregate ingest/retention counters across every stripe.
  StoreRollup rollup() const;

  /// Storage bill across every stripe.
  Cost storage_cost() const;

  std::size_t streams() const;
  std::size_t stripes() const { return stripes_.size(); }

  /// The (shared) per-stripe store configuration.
  const StoreConfig& config() const;

  /// Attach a durability sink to every stripe (nullptr detaches). The sink
  /// is invoked under the owning stripe's lock, from whichever thread
  /// ingests — it must be thread-safe.
  void set_ingest_sink(IngestSink* sink);

  /// Thread-safe equivalents of the RetentionStore snapshot/restore API
  /// (see monitor/store.h) — the storage tier's flush/recover hooks.
  StreamSnapshot snapshot_stream(const std::string& name,
                                 std::size_t skip_chunks = 0) const;
  void restore_stream(StreamSnapshot snapshot);

  /// Acquire an immutable, epoch-stamped view over every stream (see
  /// ReadSnapshot in monitor/store.h). Capture takes each stripe lock in
  /// turn — per-stripe (not globally) atomic under concurrent ingest, the
  /// same consistency list_meta() offers — and pins one epoch in the
  /// store-wide registry; every read on the handle afterwards is
  /// lock-free. This is the read path the query engine, HANDOFF export,
  /// and the storage flush use so reconstruction never blocks ingest.
  ReadSnapshot acquire_snapshot() const;

  /// Snapshot covering only `names` (unknown names are skipped). Stripes
  /// that own none of the names are not locked at all.
  ReadSnapshot acquire_snapshot(std::span<const std::string> names) const;

  /// The epoch registry shared by every stripe (snapshot lifetime and
  /// deferred-reclamation introspection; tests and metrics).
  const std::shared_ptr<EpochRegistry>& epoch_registry() const {
    return epochs_;
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    RetentionStore store;

    explicit Stripe(const StoreConfig& config) : store(config) {}
  };

  Stripe& stripe_of(const std::string& name);
  const Stripe& stripe_of(const std::string& name) const;

  std::vector<std::unique_ptr<Stripe>> stripes_;
  /// One registry across all stripes so a fleet snapshot pins one epoch.
  std::shared_ptr<EpochRegistry> epochs_ = std::make_shared<EpochRegistry>();
};

}  // namespace nyqmon::mon
