// Monitoring cost accounting.
//
// "Every aspect of the task of monitoring — collection, transmission,
//  analysis, and storage — all consume resources" (Section 3.1). The cost
// model turns sample counts into those four resource buckets so experiments
// can report the savings that Nyquist-rate sampling unlocks.
#pragma once

#include <cstddef>
#include <string>

namespace nyqmon::mon {

/// Per-sample unit costs. Defaults model a typical SNMP-style counter
/// pipeline: a reading is a few dozen bytes on the wire, is stored twice
/// (hot + cold), and is touched by one analysis pass.
struct CostModel {
  double bytes_per_sample = 64.0;
  double collection_cpu_us_per_sample = 5.0;   ///< device-side poll cost
  double transmission_bytes_per_sample = 96.0; ///< reading + envelope
  double storage_bytes_per_sample = 128.0;     ///< replicated at rest
  double analysis_cpu_us_per_sample = 2.0;     ///< per-sample scan cost
};

/// Total resource usage of a monitoring stream.
struct Cost {
  std::size_t samples = 0;
  double collection_cpu_s = 0.0;
  double transmission_bytes = 0.0;
  double storage_bytes = 0.0;
  double analysis_cpu_s = 0.0;

  Cost& operator+=(const Cost& other);
};

Cost cost_of_samples(std::size_t samples, const CostModel& model = {});

/// Human-readable one-line summary ("1.2 MB stored, ...").
std::string to_string(const Cost& cost);

}  // namespace nyqmon::mon
