// Moving-window Nyquist-rate tracking (paper Figure 7).
//
// Slides a fixed-duration window (paper: 6 hours) over a trace in fixed
// steps (paper: 5 minutes) and runs the NyquistEstimator on each window,
// yielding the inferred Nyquist rate as a function of time. This is the
// offline analogue of the adaptive sampler and the tool used to study how
// a metric's band limit drifts across the day.
#pragma once

#include <vector>

#include "nyquist/estimator.h"
#include "signal/timeseries.h"

namespace nyqmon::nyq {

struct TrackerConfig {
  double window_duration_s = 6.0 * 3600.0;  ///< paper: 6 h window
  double step_s = 5.0 * 60.0;               ///< paper: 5 min step
  EstimatorConfig estimator;
};

struct TrackedEstimate {
  double window_start_s = 0.0;  ///< timestamp of the window's first sample
  NyquistEstimate estimate;
};

class WindowedNyquistTracker {
 public:
  explicit WindowedNyquistTracker(TrackerConfig config = {});

  const TrackerConfig& config() const { return config_; }

  /// Run over a uniform trace. Windows that would extend past the end of
  /// the trace are not emitted; traces shorter than one window yield a
  /// single estimate over the whole trace.
  std::vector<TrackedEstimate> track(const sig::RegularSeries& trace) const;

  /// Highest Ok Nyquist rate across windows; nullopt when no window was Ok.
  static std::optional<double> max_rate(const std::vector<TrackedEstimate>& t);

 private:
  TrackerConfig config_;
};

}  // namespace nyqmon::nyq
