#include "reconstruct/compressive.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace nyqmon::rec {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Solve the dense symmetric positive-definite system A x = b in place via
// Gaussian elimination with partial pivoting. Dimensions here are
// 2*sparsity+1 (tiny), so numerical sophistication is unnecessary.
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    NYQMON_ENSURE(std::abs(a[col][col]) > 1e-30);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t c = row + 1; c < n; ++c) acc -= a[row][c] * x[c];
    x[row] = acc / a[row][row];
  }
  return x;
}

}  // namespace

double CompressiveModel::value(double t) const {
  double v = dc;
  for (const auto& atom : atoms) {
    const double arg = kTwoPi * atom.frequency_hz * t;
    v += atom.cos_amp * std::cos(arg) + atom.sin_amp * std::sin(arg);
  }
  return v;
}

sig::RegularSeries CompressiveModel::sample(double t0, double dt,
                                            std::size_t n) const {
  NYQMON_CHECK(dt > 0.0);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = value(t0 + static_cast<double>(i) * dt);
  return sig::RegularSeries(t0, dt, std::move(v));
}

CompressiveModel compressive_recover(const sig::TimeSeries& samples,
                                     const CompressiveConfig& config) {
  NYQMON_CHECK_MSG(samples.size() >= 8, "compressive_recover needs >= 8 samples");
  NYQMON_CHECK(config.sparsity >= 1);
  NYQMON_CHECK(config.grid_bins >= 2);
  NYQMON_CHECK(config.max_frequency_hz > 0.0);
  NYQMON_CHECK_MSG(2 * config.sparsity + 1 < samples.size(),
                   "sparsity too high for the sample budget");

  const std::size_t n = samples.size();
  std::vector<double> t(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = samples[i].t;
    y[i] = samples[i].v;
  }

  CompressiveModel model;
  // DC first (always in the model).
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  model.dc = mean;

  std::vector<double> residual(n);
  double input_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual[i] = y[i] - mean;
    input_energy += residual[i] * residual[i];
  }
  if (input_energy == 0.0) {
    model.residual_energy_fraction = 0.0;
    return model;
  }

  std::vector<double> selected;  // chosen frequencies
  for (std::size_t iter = 0; iter < config.sparsity; ++iter) {
    // Greedy step: frequency whose cos/sin pair best matches the residual
    // (Lomb-like correlation).
    double best_score = -1.0;
    double best_f = 0.0;
    for (std::size_t k = 0; k < config.grid_bins; ++k) {
      const double f = config.max_frequency_hz *
                       static_cast<double>(k + 1) /
                       static_cast<double>(config.grid_bins);
      if (std::find_if(selected.begin(), selected.end(), [f](double g) {
            return std::abs(g - f) < 1e-15;
          }) != selected.end()) {
        continue;
      }
      double rc = 0.0, rs = 0.0, cc = 0.0, ss = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double arg = kTwoPi * f * t[i];
        const double c = std::cos(arg);
        const double s = std::sin(arg);
        rc += residual[i] * c;
        rs += residual[i] * s;
        cc += c * c;
        ss += s * s;
      }
      double score = 0.0;
      if (cc > 0.0) score += rc * rc / cc;
      if (ss > 0.0) score += rs * rs / ss;
      if (score > best_score) {
        best_score = score;
        best_f = f;
      }
    }
    selected.push_back(best_f);

    // Joint least squares over DC + all selected cos/sin atoms.
    const std::size_t dims = 1 + 2 * selected.size();
    auto design = [&](std::size_t i, std::size_t d) -> double {
      if (d == 0) return 1.0;
      const double f = selected[(d - 1) / 2];
      const double arg = kTwoPi * f * t[i];
      return (d - 1) % 2 == 0 ? std::cos(arg) : std::sin(arg);
    };
    std::vector<std::vector<double>> gram(dims, std::vector<double>(dims, 0.0));
    std::vector<double> rhs(dims, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t a = 0; a < dims; ++a) {
        const double da = design(i, a);
        rhs[a] += da * y[i];
        for (std::size_t b = a; b < dims; ++b) gram[a][b] += da * design(i, b);
      }
    }
    for (std::size_t a = 0; a < dims; ++a)
      for (std::size_t b = 0; b < a; ++b) gram[a][b] = gram[b][a];
    const auto coeff = solve_dense(gram, rhs);

    model.dc = coeff[0];
    model.atoms.clear();
    for (std::size_t a = 0; a < selected.size(); ++a) {
      CompressiveModel::Atom atom;
      atom.frequency_hz = selected[a];
      atom.cos_amp = coeff[1 + 2 * a];
      atom.sin_amp = coeff[2 + 2 * a];
      model.atoms.push_back(atom);
    }

    // Update the residual and test the stopping rule.
    double res_energy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = y[i] - model.value(t[i]);
      res_energy += residual[i] * residual[i];
    }
    model.residual_energy_fraction = res_energy / input_energy;
    if (model.residual_energy_fraction < config.residual_tolerance) break;
  }
  return model;
}

}  // namespace nyqmon::rec
