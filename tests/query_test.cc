// The fleet query & serving subsystem: glob selectors, grid alignment vs
// the direct store read path, transforms, cross-stream aggregation, the
// sharded result cache (hits, generation invalidation, eviction), and the
// determinism contract (bit-identical results for any per-query worker
// count and cache-cold vs cache-warm), including selector pruning over a
// paper-scale engine run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "engine/engine.h"
#include "monitor/striped_store.h"
#include "query/builder.h"
#include "query/cache.h"
#include "query/engine.h"
#include "query/selector.h"
#include "query/spec.h"
#include "telemetry/fleet.h"

namespace {

using namespace nyqmon;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ------------------------------------------------------------- selector --

TEST(Selector, GlobMatching) {
  EXPECT_TRUE(qry::match_glob("rack3-*/temperature", "rack3-a/temperature"));
  EXPECT_TRUE(qry::match_glob("rack3-*/temperature", "rack3-/temperature"));
  EXPECT_FALSE(qry::match_glob("rack3-*/temperature", "rack4-a/temperature"));
  EXPECT_TRUE(qry::match_glob("*", "anything/at/all"));
  EXPECT_TRUE(qry::match_glob("*/drops", "pod1/rack2/tor/drops"));
  EXPECT_FALSE(qry::match_glob("*/drops", "pod1/rack2/tor/dropped"));
  EXPECT_TRUE(qry::match_glob("pod?/agg1", "pod3/agg1"));
  EXPECT_FALSE(qry::match_glob("pod?/agg1", "pod31/agg1"));
  EXPECT_TRUE(qry::match_glob("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(qry::match_glob("a*b*c", "a-x-c-y-b"));
  EXPECT_TRUE(qry::match_glob("", ""));
  EXPECT_FALSE(qry::match_glob("", "x"));
  EXPECT_TRUE(qry::match_glob("**", "x"));
  EXPECT_TRUE(qry::match_glob("exact/name", "exact/name"));
  EXPECT_FALSE(qry::match_glob("exact/name", "exact/name2"));
}

TEST(Selector, IsExact) {
  EXPECT_TRUE(qry::is_exact("pod1/rack2/tor/drops"));
  EXPECT_FALSE(qry::is_exact("pod1/*"));
  EXPECT_FALSE(qry::is_exact("pod?/x"));
}

// ----------------------------------------------------------------- spec --

TEST(Spec, ValidationAndGrid) {
  qry::QuerySpec spec;
  spec.selector = "*";
  spec.t_begin = 0.0;
  spec.t_end = 10.0;
  spec.step_s = 1.0;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.grid_points(), 10u);  // half-open: t=10 excluded

  spec.step_s = 3.0;
  EXPECT_EQ(spec.grid_points(), 4u);  // 0, 3, 6, 9

  qry::QuerySpec bad = spec;
  bad.selector.clear();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = spec;
  bad.t_end = bad.t_begin;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.t_end = bad.t_begin - 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = spec;
  bad.step_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Builder, ProducesCanonicalSpec) {
  // A built spec and a hand-filled spec with the same fields are the same
  // cache entry: identical canonical keys.
  qry::QuerySpec raw;
  raw.selector = "rack*/cpu_util";
  raw.t_begin = 5.0;
  raw.t_end = 65.0;
  raw.step_s = 0.5;
  raw.transform = qry::Transform::kRate;
  raw.aggregate = qry::Aggregation::kP95;

  const qry::QuerySpec built = qry::QueryBuilder()
                                   .select("rack*/cpu_util")
                                   .range(5.0, 65.0)
                                   .align(0.5)
                                   .transform(qry::Transform::kRate)
                                   .aggregate(qry::Aggregation::kP95)
                                   .build();
  EXPECT_EQ(built.canonical_key(), raw.canonical_key());

  // Defaults match a default-constructed spec's fields.
  const qry::QuerySpec plain =
      qry::QueryBuilder().select("*").range(0.0, 10.0).align(1.0).build();
  EXPECT_EQ(plain.transform, qry::Transform::kRaw);
  EXPECT_EQ(plain.aggregate, qry::Aggregation::kNone);
}

TEST(Builder, BuildValidates) {
  // build() funnels through QuerySpec::validate(): missing selector,
  // empty range, and zero step all throw rather than producing a spec.
  EXPECT_THROW(qry::QueryBuilder().range(0.0, 1.0).align(0.1).build(),
               std::invalid_argument);
  EXPECT_THROW(qry::QueryBuilder().select("*").align(0.1).build(),
               std::invalid_argument);
  EXPECT_THROW(qry::QueryBuilder().select("*").range(0.0, 1.0).build(),
               std::invalid_argument);
  // peek() exposes the partial spec without validating.
  EXPECT_EQ(qry::QueryBuilder().select("x").peek().selector, "x");
}

TEST(Builder, WireFlagBits) {
  EXPECT_EQ(qry::QueryBuilder().wire_flags(), 0);
  EXPECT_EQ(qry::QueryBuilder().want_matched().wire_flags(), 0x01);
  EXPECT_EQ(qry::QueryBuilder().want_explain().wire_flags(), 0x02);
  EXPECT_EQ(qry::QueryBuilder().want_matched().want_explain().wire_flags(),
            0x03);
  EXPECT_FALSE(qry::QueryBuilder().matched_wanted());
  EXPECT_TRUE(qry::QueryBuilder().want_matched().matched_wanted());
}

TEST(Spec, CanonicalKeyDistinguishesStructure) {
  qry::QuerySpec a;
  a.selector = "*";
  a.t_begin = 0.0;
  a.t_end = 10.0;
  a.step_s = 1.0;
  qry::QuerySpec b = a;
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  b.t_end = 20.0;
  EXPECT_NE(a.canonical_key(), b.canonical_key());
  b = a;
  b.transform = qry::Transform::kRate;
  EXPECT_NE(a.canonical_key(), b.canonical_key());
  b = a;
  b.aggregate = qry::Aggregation::kP95;
  EXPECT_NE(a.canonical_key(), b.canonical_key());
}

// ------------------------------------------------------------ alignment --

mon::StripedRetentionStore make_store_with(
    const std::vector<std::pair<std::string, double>>& streams,
    std::size_t samples) {
  mon::StoreConfig cfg;
  cfg.chunk_samples = 64;
  mon::StripedRetentionStore store(cfg, 4);
  for (const auto& [name, rate] : streams) {
    store.create_stream(name, rate);
    std::vector<double> values(samples);
    for (std::size_t i = 0; i < samples; ++i)
      values[i] = std::sin(0.01 * static_cast<double>(i)) + 2.0;
    store.append_series(name, values);
  }
  return store;
}

TEST(QueryEngine, AlignmentMatchesDirectStoreQuery) {
  // step == the stream's collection interval, raw, no aggregation: the
  // engine's aligned output must reproduce the store's own read path.
  auto store = make_store_with({{"dev/a", 1.0}}, 300);
  qry::QueryEngine qe(store);

  qry::QuerySpec spec;
  spec.selector = "dev/a";
  spec.t_begin = 10.0;
  spec.t_end = 200.0;
  spec.step_s = 1.0;
  const auto r = qe.run(spec);
  ASSERT_EQ(r.result->series.size(), 1u);
  const auto& got = r.result->series[0].series;
  const auto want = store.query("dev/a", 10.0, 200.0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-9) << i;
}

TEST(QueryEngine, CoarserGridInterpolates) {
  auto store = make_store_with({{"dev/a", 1.0}}, 300);
  qry::QueryEngine qe(store);
  qry::QuerySpec spec;
  spec.selector = "dev/a";
  spec.t_begin = 0.0;
  spec.t_end = 100.0;
  spec.step_s = 10.0;  // 10x coarser than collection
  const auto r = qe.run(spec);
  ASSERT_EQ(r.result->series.size(), 1u);
  const auto& got = r.result->series[0].series;
  ASSERT_EQ(got.size(), 10u);
  EXPECT_DOUBLE_EQ(got.t0(), 0.0);
  EXPECT_DOUBLE_EQ(got.dt(), 10.0);
  const auto base = store.query("dev/a", 0.0, 100.0);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], base[i * 10], 1e-9) << i;
}

// ----------------------------------------------- transforms + aggregates --

mon::StripedRetentionStore make_constant_store(
    const std::vector<std::pair<std::string, double>>& level_of) {
  mon::StripedRetentionStore store({}, 4);
  for (const auto& [name, level] : level_of) {
    store.create_stream(name, 1.0);
    std::vector<double> values(100, level);
    store.append_series(name, values);
  }
  return store;
}

qry::QuerySpec agg_spec(qry::Aggregation agg) {
  qry::QuerySpec spec;
  spec.selector = std::string("*");
  spec.t_begin = 0.0;
  spec.t_end = 50.0;
  spec.step_s = 1.0;
  spec.aggregate = agg;
  return spec;
}

TEST(QueryEngine, AggregationValues) {
  auto store =
      make_constant_store({{"a/m", 1.0}, {"b/m", 2.0}, {"c/m", 6.0}});
  qry::QueryEngine qe(store);

  const auto check = [&](qry::Aggregation agg, double want) {
    const auto r = qe.run(agg_spec(agg));
    ASSERT_EQ(r.result->series.size(), 1u);
    const auto& s = r.result->series[0].series;
    ASSERT_EQ(s.size(), 50u);
    for (std::size_t i = 0; i < s.size(); ++i)
      EXPECT_NEAR(s[i], want, 1e-12)
          << qry::to_string(agg) << " at " << i;
  };
  check(qry::Aggregation::kSum, 9.0);
  check(qry::Aggregation::kAvg, 3.0);
  check(qry::Aggregation::kMin, 1.0);
  check(qry::Aggregation::kMax, 6.0);
  check(qry::Aggregation::kP50, 2.0);

  const auto r = qe.run(agg_spec(qry::Aggregation::kSum));
  EXPECT_EQ(r.result->series[0].label, "sum(*)");
  EXPECT_EQ(r.result->matched,
            (std::vector<std::string>{"a/m", "b/m", "c/m"}));
}

TEST(QueryEngine, RateTransformOfRamp) {
  mon::StripedRetentionStore store({}, 2);
  store.create_stream("dev/ctr", 1.0);
  std::vector<double> ramp(200);
  for (std::size_t i = 0; i < ramp.size(); ++i)
    ramp[i] = 3.0 * static_cast<double>(i);  // slope 3 per second
  store.append_series("dev/ctr", ramp);

  qry::QueryEngine qe(store);
  qry::QuerySpec spec;
  spec.selector = "dev/ctr";
  spec.t_begin = 0.0;
  spec.t_end = 100.0;
  spec.step_s = 1.0;
  spec.transform = qry::Transform::kRate;
  const auto r = qe.run(spec);
  const auto& s = r.result->series[0].series;
  ASSERT_EQ(s.size(), 100u);
  EXPECT_DOUBLE_EQ(s[0], 0.0);  // no left neighbour by definition
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_NEAR(s[i], 3.0, 1e-9);
}

TEST(QueryEngine, ZScoreTransform) {
  auto store = make_store_with({{"dev/a", 1.0}}, 300);
  qry::QueryEngine qe(store);
  qry::QuerySpec spec;
  spec.selector = "dev/a";
  spec.t_begin = 0.0;
  spec.t_end = 250.0;
  spec.step_s = 1.0;
  spec.transform = qry::Transform::kZScore;
  const auto r = qe.run(spec);
  const auto& v = r.result->series[0].series.values();
  double sum = 0.0, sq = 0.0;
  for (const double x : v) {
    sum += x;
    sq += x * x;
  }
  const double n = static_cast<double>(v.size());
  EXPECT_NEAR(sum / n, 0.0, 1e-9);
  EXPECT_NEAR(sq / n, 1.0, 1e-9);

  // A flat window has no scale: z-score is defined as all zeros.
  auto flat = make_constant_store({{"f/m", 5.0}});
  qry::QueryEngine qf(flat);
  qry::QuerySpec fs = spec;
  fs.selector = "f/m";
  fs.t_end = 50.0;
  const auto rf = qf.run(fs);
  for (const double x : rf.result->series[0].series.values())
    EXPECT_DOUBLE_EQ(x, 0.0);
}

// ------------------------------------------------------- cache semantics --

TEST(QueryEngine, CacheHitThenGenerationInvalidation) {
  auto store = make_constant_store({{"a/m", 1.0}, {"b/m", 2.0}});
  qry::QueryEngine qe(store);
  const auto spec = agg_spec(qry::Aggregation::kAvg);

  const auto cold = qe.run(spec);
  EXPECT_FALSE(cold.cache_hit);
  const auto warm = qe.run(spec);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.result.get(), warm.result.get());  // the same shared result

  // Ingest into a matched stream: the write-generation fingerprint changes
  // and the cached entry must not be served again. The appended sample
  // lands past the queried range, so the values coincide — the point is
  // that a fresh result was computed rather than the stale entry served.
  store.append("a/m", 100.0);
  const auto after = qe.run(spec);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_NE(after.result.get(), cold.result.get());
  EXPECT_EQ(after.result->series[0].series.values(),
            cold.result->series[0].series.values());

  const auto stats = qe.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.invalidations, 1u);
}

TEST(QueryEngine, IngestOutsideSelectorKeepsCacheWarm) {
  auto store = make_constant_store({{"a/m", 1.0}, {"zz/other", 9.0}});
  qry::QueryEngine qe(store);
  qry::QuerySpec spec = agg_spec(qry::Aggregation::kAvg);
  spec.selector = "a/*";
  (void)qe.run(spec);
  store.append("zz/other", 1.0);  // not matched: fingerprint unchanged
  EXPECT_TRUE(qe.run(spec).cache_hit);
}

TEST(QueryEngine, CacheDisabled) {
  auto store = make_constant_store({{"a/m", 1.0}});
  qry::QueryEngineConfig cfg;
  cfg.cache_enabled = false;
  qry::QueryEngine qe(store, cfg);
  const auto spec = agg_spec(qry::Aggregation::kAvg);
  EXPECT_FALSE(qe.run(spec).cache_hit);
  EXPECT_FALSE(qe.run(spec).cache_hit);
  EXPECT_EQ(qe.stats().cache.hits, 0u);
}

TEST(ResultCache, LruEviction) {
  qry::ShardedResultCache cache(/*capacity=*/2, /*shards=*/1);
  auto value = std::make_shared<const qry::QueryResult>();
  cache.insert("a", 1, value);
  cache.insert("b", 1, value);
  EXPECT_NE(cache.lookup("a", 1), nullptr);  // refreshes "a"
  cache.insert("c", 1, value);               // evicts LRU "b"
  EXPECT_EQ(cache.lookup("b", 1), nullptr);
  EXPECT_NE(cache.lookup("a", 1), nullptr);
  EXPECT_NE(cache.lookup("c", 1), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

// ------------------------------------------- edges, pruning, determinism --

TEST(QueryEngine, UnmatchedSelectorIsEmptyNotError) {
  auto store = make_constant_store({{"a/m", 1.0}});
  qry::QueryEngine qe(store);
  qry::QuerySpec spec = agg_spec(qry::Aggregation::kAvg);
  spec.selector = "nothing/*";
  const auto r = qe.run(spec);
  EXPECT_TRUE(r.result->matched.empty());
  EXPECT_TRUE(r.result->series.empty());
}

TEST(QueryEngine, RangePruneSkipsStreamsWithoutOverlap) {
  // "late" starts at t=1000: a [0, 50) query must prune it on metadata
  // alone and aggregate over the live stream only.
  mon::StripedRetentionStore store({}, 2);
  store.create_stream("a/m", 1.0, /*t0=*/0.0);
  store.create_stream("late/m", 1.0, /*t0=*/1000.0);
  store.append_series("a/m", std::vector<double>(100, 7.0));
  store.append_series("late/m", std::vector<double>(100, 9.0));

  qry::QueryEngine qe(store);
  const auto r = qe.run(agg_spec(qry::Aggregation::kAvg));
  EXPECT_EQ(r.result->matched.size(), 2u);
  EXPECT_EQ(r.result->reconstructed,
            (std::vector<std::string>{"a/m"}));
  for (const double x : r.result->series[0].series.values())
    EXPECT_NEAR(x, 7.0, 1e-12);
  const auto stats = qe.stats();
  EXPECT_EQ(stats.streams_pruned, 1u);
  EXPECT_EQ(stats.streams_reconstructed, 1u);
}

TEST(QueryEngine, SubStepWindowHoldsSlowStreamValueNotZeros) {
  // A 3-minute poller queried over a 60 s window: the store's collection
  // grid rounds to zero points, but the engine must hold the stream's
  // nearest retained value rather than aggregate fabricated zeros.
  mon::StripedRetentionStore store({}, 2);
  store.create_stream("fast/m", 1.0);
  store.create_stream("slow/m", 1.0 / 180.0);
  store.append_series("fast/m", std::vector<double>(300, 5.0));
  store.append_series("slow/m", std::vector<double>(40, 9.0));

  qry::QueryEngine qe(store);
  qry::QuerySpec spec = agg_spec(qry::Aggregation::kMin);
  spec.t_begin = 0.0;
  spec.t_end = 60.0;
  const auto r = qe.run(spec);
  EXPECT_EQ(r.result->reconstructed.size(), 2u);
  ASSERT_EQ(r.result->series.size(), 1u);
  for (const double v : r.result->series[0].series.values())
    EXPECT_NEAR(v, 5.0, 1e-9);  // min(5, 9), never min(5, 0)
}

TEST(QueryEngine, ExactSelectorFastPathSkipsFleetScan) {
  auto store = make_constant_store({{"a/m", 1.0}, {"b/m", 2.0}});
  qry::QueryEngine qe(store);
  qry::QuerySpec spec = agg_spec(qry::Aggregation::kAvg);
  spec.selector = "a/m";  // wildcard-free: direct stripe lookup
  const auto r = qe.run(spec);
  EXPECT_EQ(r.result->matched, (std::vector<std::string>{"a/m"}));
  EXPECT_EQ(qe.stats().streams_considered, 1u);  // not the fleet's 2

  qry::QuerySpec missing = spec;
  missing.selector = "nope/m";
  EXPECT_TRUE(qe.run(missing).result->matched.empty());
}

TEST(QueryEngine, FleetScaleSelectorPruningAndDeterminism) {
  // The acceptance scenario: a >= 500-pair engine run, a glob selector
  // over one metric, and the contract that (a) only matched streams are
  // reconstructed (pruning observable via stats) and (b) results are
  // bit-identical across per-query worker counts and cache temperature.
  tel::FleetConfig fleet_cfg;
  fleet_cfg.target_pairs = 500;
  fleet_cfg.seed = 99;
  const tel::Fleet fleet(fleet_cfg);
  ASSERT_GE(fleet.size(), 500u);

  eng::EngineConfig cfg;
  cfg.workers = 4;
  cfg.samples_per_window = 48;
  cfg.windows_per_pair = 4;
  eng::FleetMonitorEngine engine(fleet, cfg);
  (void)engine.run();

  qry::QuerySpec spec;
  spec.selector = "*/" + tel::metric_name(tel::MetricKind::kTemperature);
  spec.t_begin = 0.0;
  spec.t_end = 3600.0;
  spec.step_s = 60.0;
  spec.aggregate = qry::Aggregation::kP95;

  auto run_with_workers = [&](std::size_t workers) {
    qry::QueryEngineConfig qcfg;
    qcfg.workers = workers;
    qry::QueryEngine qe = engine.serve(qcfg);
    const auto first = qe.run(spec);
    EXPECT_FALSE(first.cache_hit);
    const auto second = qe.run(spec);  // cache-warm
    EXPECT_TRUE(second.cache_hit);

    // Warm result is the same bits as cold.
    const auto& a = first.result->series.at(0).series;
    const auto& b = second.result->series.at(0).series;
    EXPECT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_TRUE(same_bits(a[i], b[i])) << i;

    // Pruning: the matched set is a strict subset of the fleet, and only
    // it was reconstructed.
    const auto stats = qe.stats();
    EXPECT_GT(stats.streams_matched, 0u);
    EXPECT_LT(stats.streams_matched, engine.store().streams());
    EXPECT_EQ(stats.streams_reconstructed + stats.streams_pruned,
              stats.streams_matched);
    EXPECT_EQ(first.result->matched.size(), stats.streams_matched);
    return first;
  };

  const auto serial = run_with_workers(1);
  const auto parallel = run_with_workers(8);

  // Bit-identical across per-query worker counts.
  ASSERT_EQ(serial.result->series.size(), 1u);
  ASSERT_EQ(parallel.result->series.size(), 1u);
  const auto& a = serial.result->series[0].series;
  const auto& b = parallel.result->series[0].series;
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_bits(a[i], b[i])) << i;
  EXPECT_EQ(serial.result->matched, parallel.result->matched);
  EXPECT_EQ(serial.result->reconstructed, parallel.result->reconstructed);
}

}  // namespace
