#include "telemetry/topology.h"

#include "util/check.h"

namespace nyqmon::tel {

std::string to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kServer: return "server";
    case DeviceKind::kTorSwitch: return "tor";
    case DeviceKind::kAggSwitch: return "agg";
    case DeviceKind::kCoreSwitch: return "core";
  }
  return "unknown";
}

std::string Device::name() const {
  switch (kind) {
    case DeviceKind::kServer:
      return "pod" + std::to_string(pod) + "/rack" + std::to_string(rack) +
             "/srv" + std::to_string(id);
    case DeviceKind::kTorSwitch:
      return "pod" + std::to_string(pod) + "/rack" + std::to_string(rack) +
             "/tor";
    case DeviceKind::kAggSwitch:
      return "pod" + std::to_string(pod) + "/agg" + std::to_string(id);
    case DeviceKind::kCoreSwitch:
      return "core" + std::to_string(id);
  }
  return "dev" + std::to_string(id);
}

Topology::Topology(const TopologyConfig& config) : config_(config) {
  NYQMON_CHECK(config.pods >= 1);
  NYQMON_CHECK(config.racks_per_pod >= 1);

  std::uint32_t next_id = 0;
  for (std::size_t p = 0; p < config.pods; ++p) {
    for (std::size_t r = 0; r < config.racks_per_pod; ++r) {
      devices_.push_back({next_id++, DeviceKind::kTorSwitch,
                          static_cast<std::int32_t>(p),
                          static_cast<std::int32_t>(r)});
      for (std::size_t s = 0; s < config.servers_per_rack; ++s) {
        devices_.push_back({next_id++, DeviceKind::kServer,
                            static_cast<std::int32_t>(p),
                            static_cast<std::int32_t>(r)});
      }
    }
    for (std::size_t a = 0; a < config.agg_per_pod; ++a) {
      devices_.push_back({next_id++, DeviceKind::kAggSwitch,
                          static_cast<std::int32_t>(p), -1});
    }
  }
  for (std::size_t c = 0; c < config.core_switches; ++c) {
    devices_.push_back({next_id++, DeviceKind::kCoreSwitch, -1, -1});
  }
}

std::vector<Device> Topology::devices_of_kind(DeviceKind kind) const {
  std::vector<Device> out;
  for (const auto& d : devices_)
    if (d.kind == kind) out.push_back(d);
  return out;
}

}  // namespace nyqmon::tel
