#include "dsp/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define NYQMON_SIMD_X86 1
#include <immintrin.h>
#else
#define NYQMON_SIMD_X86 0
#endif

namespace nyqmon::dsp::simd {

namespace {

// The double-pair view of std::complex<double> (standard-guaranteed
// layout: [re, im]).
inline double* flat(cdouble* p) { return reinterpret_cast<double*>(p); }
inline const double* flat(const cdouble* p) {
  return reinterpret_cast<const double*>(p);
}

// ------------------------------------------------------------- scalar ----
// The reference implementations. Every SIMD variant below performs these
// exact operations in this exact per-element order.

void butterfly_scalar(cdouble* x, const cdouble* tw, std::size_t half) {
  double* xd = flat(x);
  const double* twd = flat(tw);
  for (std::size_t k = 0; k < half; ++k) {
    const double wr = twd[2 * k], wi = twd[2 * k + 1];
    const double vr = xd[2 * (k + half)], vi = xd[2 * (k + half) + 1];
    const double tr = wr * vr - wi * vi;
    const double ti = wr * vi + wi * vr;
    const double ur = xd[2 * k], ui = xd[2 * k + 1];
    xd[2 * k] = ur + tr;
    xd[2 * k + 1] = ui + ti;
    xd[2 * (k + half)] = ur - tr;
    xd[2 * (k + half) + 1] = ui - ti;
  }
}

void complex_mul_scalar(cdouble* out, const cdouble* a, const cdouble* b,
                        std::size_t n) {
  double* od = flat(out);
  const double* ad = flat(a);
  const double* bd = flat(b);
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = ad[2 * i], ai = ad[2 * i + 1];
    const double br = bd[2 * i], bi = bd[2 * i + 1];
    const double re = ar * br - ai * bi;
    od[2 * i] = re;  // `out` may alias `a`; finish reading first
    od[2 * i + 1] = ar * bi + ai * br;
  }
}

void complex_mul_inplace_scalar(cdouble* a, const cdouble* b, std::size_t n) {
  complex_mul_scalar(a, a, b, n);
}

void mul_inplace_scalar(double* x, const double* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= w[i];
}

void sub_scalar_inplace_scalar(double* x, double c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] -= c;
}

void div_scalar_inplace_scalar(double* x, double c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] /= c;
}

void div_scalar_complex_inplace_scalar(cdouble* x, double c, std::size_t n) {
  div_scalar_inplace_scalar(flat(x), c, 2 * n);
}

// Reduction definition shared by every level: four striped accumulators
// acc[j] += x[4i+j] over the 4-aligned prefix, combined as
// (acc0+acc2) + (acc1+acc3), then the tail added sequentially.
double sum_scalar(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const std::size_t n4 = n - n % 4;
  for (std::size_t i = 0; i < n4; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
  }
  double total = (a0 + a2) + (a1 + a3);
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const std::size_t n4 = n - n % 4;
  for (std::size_t i = 0; i < n4; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  double total = (a0 + a2) + (a1 + a3);
  for (std::size_t i = n4; i < n; ++i) total += x[i] * y[i];
  return total;
}

void squared_magnitude_scalar(const cdouble* x, double* out, std::size_t n) {
  const double* xd = flat(x);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = xd[2 * i], im = xd[2 * i + 1];
    out[i] = re * re + im * im;
  }
}

void axpy_scalar(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void goertzel4_scalar(const double* x, std::size_t n, const double coeff[4],
                      double s1[4], double s2[4]) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    for (int j = 0; j < 4; ++j) {
      const double s = (v + coeff[j] * s1[j]) - s2[j];
      s2[j] = s1[j];
      s1[j] = s;
    }
  }
}

constexpr Ops kScalarOps = {
    butterfly_scalar,
    complex_mul_inplace_scalar,
    complex_mul_scalar,
    mul_inplace_scalar,
    sub_scalar_inplace_scalar,
    div_scalar_inplace_scalar,
    div_scalar_complex_inplace_scalar,
    sum_scalar,
    dot_scalar,
    squared_magnitude_scalar,
    axpy_scalar,
    goertzel4_scalar,
    "scalar",
    Level::kScalar,
};

#if NYQMON_SIMD_X86

// --------------------------------------------------------------- SSE2 ----
// SSE2 is baseline on x86-64 (no target attribute needed). One complex (or
// two doubles) per 128-bit vector. Subtractions stay real subtractions so
// NaN sign propagation matches the scalar reference exactly.

void butterfly_sse2(cdouble* x, const cdouble* tw, std::size_t half) {
  double* xd = flat(x);
  const double* twd = flat(tw);
  for (std::size_t k = 0; k < half; ++k) {
    const __m128d w = _mm_loadu_pd(twd + 2 * k);
    const __m128d v = _mm_loadu_pd(xd + 2 * (k + half));
    const __m128d u = _mm_loadu_pd(xd + 2 * k);
    const __m128d wr = _mm_unpacklo_pd(w, w);             // [wr, wr]
    const __m128d wi = _mm_unpackhi_pd(w, w);             // [wi, wi]
    const __m128d vs = _mm_shuffle_pd(v, v, 0b01);        // [vi, vr]
    const __m128d t1 = _mm_mul_pd(wr, v);                 // [wr*vr, wr*vi]
    const __m128d t2 = _mm_mul_pd(wi, vs);                // [wi*vi, wi*vr]
    const __m128d re = _mm_sub_pd(t1, t2);                // lane0 valid
    const __m128d im = _mm_add_pd(t1, t2);                // lane1 valid
    const __m128d wv = _mm_shuffle_pd(re, im, 0b10);      // [re0, im1]
    _mm_storeu_pd(xd + 2 * k, _mm_add_pd(u, wv));
    _mm_storeu_pd(xd + 2 * (k + half), _mm_sub_pd(u, wv));
  }
}

void complex_mul_sse2(cdouble* out, const cdouble* a, const cdouble* b,
                      std::size_t n) {
  double* od = flat(out);
  const double* ad = flat(a);
  const double* bd = flat(b);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d av = _mm_loadu_pd(ad + 2 * i);
    const __m128d bv = _mm_loadu_pd(bd + 2 * i);
    const __m128d ar = _mm_unpacklo_pd(av, av);
    const __m128d ai = _mm_unpackhi_pd(av, av);
    const __m128d bs = _mm_shuffle_pd(bv, bv, 0b01);
    const __m128d t1 = _mm_mul_pd(ar, bv);                // [ar*br, ar*bi]
    const __m128d t2 = _mm_mul_pd(ai, bs);                // [ai*bi, ai*br]
    const __m128d re = _mm_sub_pd(t1, t2);
    const __m128d im = _mm_add_pd(t1, t2);
    _mm_storeu_pd(od + 2 * i, _mm_shuffle_pd(re, im, 0b10));
  }
}

void complex_mul_inplace_sse2(cdouble* a, const cdouble* b, std::size_t n) {
  complex_mul_sse2(a, a, b, n);
}

void mul_inplace_sse2(double* x, const double* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    _mm_storeu_pd(x + i, _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(w + i)));
  for (; i < n; ++i) x[i] *= w[i];
}

void sub_scalar_inplace_sse2(double* x, double c, std::size_t n) {
  const __m128d cv = _mm_set1_pd(c);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    _mm_storeu_pd(x + i, _mm_sub_pd(_mm_loadu_pd(x + i), cv));
  for (; i < n; ++i) x[i] -= c;
}

void div_scalar_inplace_sse2(double* x, double c, std::size_t n) {
  const __m128d cv = _mm_set1_pd(c);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    _mm_storeu_pd(x + i, _mm_div_pd(_mm_loadu_pd(x + i), cv));
  for (; i < n; ++i) x[i] /= c;
}

void div_scalar_complex_inplace_sse2(cdouble* x, double c, std::size_t n) {
  div_scalar_inplace_sse2(flat(x), c, 2 * n);
}

double sum_sse2(const double* x, std::size_t n) {
  __m128d acc02 = _mm_setzero_pd();  // lanes [acc0, acc1]
  __m128d acc13 = _mm_setzero_pd();  // lanes [acc2, acc3]
  const std::size_t n4 = n - n % 4;
  for (std::size_t i = 0; i < n4; i += 4) {
    acc02 = _mm_add_pd(acc02, _mm_loadu_pd(x + i));
    acc13 = _mm_add_pd(acc13, _mm_loadu_pd(x + i + 2));
  }
  // [acc0+acc2, acc1+acc3], then (acc0+acc2) + (acc1+acc3).
  const __m128d pair = _mm_add_pd(acc02, acc13);
  double lanes[2];
  _mm_storeu_pd(lanes, pair);
  double total = lanes[0] + lanes[1];
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double dot_sse2(const double* x, const double* y, std::size_t n) {
  __m128d acc02 = _mm_setzero_pd();
  __m128d acc13 = _mm_setzero_pd();
  const std::size_t n4 = n - n % 4;
  for (std::size_t i = 0; i < n4; i += 4) {
    acc02 = _mm_add_pd(acc02,
                       _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i)));
    acc13 = _mm_add_pd(
        acc13, _mm_mul_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2)));
  }
  const __m128d pair = _mm_add_pd(acc02, acc13);
  double lanes[2];
  _mm_storeu_pd(lanes, pair);
  double total = lanes[0] + lanes[1];
  for (std::size_t i = n4; i < n; ++i) total += x[i] * y[i];
  return total;
}

void squared_magnitude_sse2(const cdouble* x, double* out, std::size_t n) {
  const double* xd = flat(x);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d v = _mm_loadu_pd(xd + 2 * i);
    const __m128d sq = _mm_mul_pd(v, v);                  // [re^2, im^2]
    const __m128d s = _mm_add_sd(sq, _mm_unpackhi_pd(sq, sq));
    _mm_store_sd(out + i, s);
  }
}

void axpy_sse2(double a, const double* x, double* y, std::size_t n) {
  const __m128d av = _mm_set1_pd(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d t = _mm_mul_pd(av, _mm_loadu_pd(x + i));
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), t));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void goertzel4_sse2(const double* x, std::size_t n, const double coeff[4],
                    double s1[4], double s2[4]) {
  const __m128d c_lo = _mm_loadu_pd(coeff);
  const __m128d c_hi = _mm_loadu_pd(coeff + 2);
  __m128d s1_lo = _mm_loadu_pd(s1), s1_hi = _mm_loadu_pd(s1 + 2);
  __m128d s2_lo = _mm_loadu_pd(s2), s2_hi = _mm_loadu_pd(s2 + 2);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d v = _mm_set1_pd(x[i]);
    const __m128d s_lo =
        _mm_sub_pd(_mm_add_pd(v, _mm_mul_pd(c_lo, s1_lo)), s2_lo);
    const __m128d s_hi =
        _mm_sub_pd(_mm_add_pd(v, _mm_mul_pd(c_hi, s1_hi)), s2_hi);
    s2_lo = s1_lo;
    s2_hi = s1_hi;
    s1_lo = s_lo;
    s1_hi = s_hi;
  }
  _mm_storeu_pd(s1, s1_lo);
  _mm_storeu_pd(s1 + 2, s1_hi);
  _mm_storeu_pd(s2, s2_lo);
  _mm_storeu_pd(s2 + 2, s2_hi);
}

constexpr Ops kSse2Ops = {
    butterfly_sse2,
    complex_mul_inplace_sse2,
    complex_mul_sse2,
    mul_inplace_sse2,
    sub_scalar_inplace_sse2,
    div_scalar_inplace_sse2,
    div_scalar_complex_inplace_sse2,
    sum_sse2,
    dot_sse2,
    squared_magnitude_sse2,
    axpy_sse2,
    goertzel4_sse2,
    "sse2",
    Level::kSSE2,
};

// --------------------------------------------------------------- AVX2 ----
// Two complexes (or four doubles) per 256-bit vector, compiled via target
// attributes so the baseline build still runs on SSE2-only hosts. No FMA:
// multiplies and adds stay separate to match the scalar reference bits.
// _mm256_addsub_pd performs a genuine subtract in even lanes and add in
// odd lanes, which is exactly the complex-product combine the scalar
// reference performs.

__attribute__((target("avx2"))) void butterfly_avx2(cdouble* x,
                                                    const cdouble* tw,
                                                    std::size_t half) {
  double* xd = flat(x);
  const double* twd = flat(tw);
  std::size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const __m256d w = _mm256_loadu_pd(twd + 2 * k);
    const __m256d v = _mm256_loadu_pd(xd + 2 * (k + half));
    const __m256d u = _mm256_loadu_pd(xd + 2 * k);
    const __m256d wr = _mm256_movedup_pd(w);              // [wr0,wr0,wr1,wr1]
    const __m256d wi = _mm256_permute_pd(w, 0b1111);      // [wi0,wi0,wi1,wi1]
    const __m256d vs = _mm256_permute_pd(v, 0b0101);      // [vi0,vr0,vi1,vr1]
    const __m256d t1 = _mm256_mul_pd(wr, v);
    const __m256d t2 = _mm256_mul_pd(wi, vs);
    const __m256d wv = _mm256_addsub_pd(t1, t2);
    _mm256_storeu_pd(xd + 2 * k, _mm256_add_pd(u, wv));
    _mm256_storeu_pd(xd + 2 * (k + half), _mm256_sub_pd(u, wv));
  }
  if (k < half) {  // odd tail: one complex, same combine as the SSE2 body
    const __m128d w = _mm_loadu_pd(twd + 2 * k);
    const __m128d v = _mm_loadu_pd(xd + 2 * (k + half));
    const __m128d u = _mm_loadu_pd(xd + 2 * k);
    const __m128d wr = _mm_unpacklo_pd(w, w);
    const __m128d wi = _mm_unpackhi_pd(w, w);
    const __m128d vs = _mm_shuffle_pd(v, v, 0b01);
    const __m128d t1 = _mm_mul_pd(wr, v);
    const __m128d t2 = _mm_mul_pd(wi, vs);
    const __m128d wv = _mm_shuffle_pd(_mm_sub_pd(t1, t2), _mm_add_pd(t1, t2),
                                      0b10);
    _mm_storeu_pd(xd + 2 * k, _mm_add_pd(u, wv));
    _mm_storeu_pd(xd + 2 * (k + half), _mm_sub_pd(u, wv));
  }
}

__attribute__((target("avx2"))) void complex_mul_avx2(cdouble* out,
                                                      const cdouble* a,
                                                      const cdouble* b,
                                                      std::size_t n) {
  double* od = flat(out);
  const double* ad = flat(a);
  const double* bd = flat(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d av = _mm256_loadu_pd(ad + 2 * i);
    const __m256d bv = _mm256_loadu_pd(bd + 2 * i);
    const __m256d ar = _mm256_movedup_pd(av);
    const __m256d ai = _mm256_permute_pd(av, 0b1111);
    const __m256d bs = _mm256_permute_pd(bv, 0b0101);
    const __m256d t1 = _mm256_mul_pd(ar, bv);
    const __m256d t2 = _mm256_mul_pd(ai, bs);
    _mm256_storeu_pd(od + 2 * i, _mm256_addsub_pd(t1, t2));
  }
  if (i < n) complex_mul_sse2(out + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void complex_mul_inplace_avx2(
    cdouble* a, const cdouble* b, std::size_t n) {
  complex_mul_avx2(a, a, b, n);
}

__attribute__((target("avx2"))) void mul_inplace_avx2(double* x,
                                                      const double* w,
                                                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(w + i)));
  for (; i < n; ++i) x[i] *= w[i];
}

__attribute__((target("avx2"))) void sub_scalar_inplace_avx2(double* x,
                                                             double c,
                                                             std::size_t n) {
  const __m256d cv = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), cv));
  for (; i < n; ++i) x[i] -= c;
}

__attribute__((target("avx2"))) void div_scalar_inplace_avx2(double* x,
                                                             double c,
                                                             std::size_t n) {
  const __m256d cv = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), cv));
  for (; i < n; ++i) x[i] /= c;
}

__attribute__((target("avx2"))) void div_scalar_complex_inplace_avx2(
    cdouble* x, double c, std::size_t n) {
  div_scalar_inplace_avx2(flat(x), c, 2 * n);
}

__attribute__((target("avx2"))) double sum_avx2(const double* x,
                                                std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // lanes [acc0, acc1, acc2, acc3]
  const std::size_t n4 = n - n % 4;
  for (std::size_t i = 0; i < n4; i += 4)
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  // [acc0+acc2, acc1+acc3], then (acc0+acc2) + (acc1+acc3).
  const __m128d pair =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double lanes[2];
  _mm_storeu_pd(lanes, pair);
  double total = lanes[0] + lanes[1];
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

__attribute__((target("avx2"))) double dot_avx2(const double* x,
                                                const double* y,
                                                std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n - n % 4;
  for (std::size_t i = 0; i < n4; i += 4)
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  const __m128d pair =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double lanes[2];
  _mm_storeu_pd(lanes, pair);
  double total = lanes[0] + lanes[1];
  for (std::size_t i = n4; i < n; ++i) total += x[i] * y[i];
  return total;
}

__attribute__((target("avx2"))) void squared_magnitude_avx2(const cdouble* x,
                                                            double* out,
                                                            std::size_t n) {
  const double* xd = flat(x);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(xd + 2 * i);
    const __m256d sq = _mm256_mul_pd(v, v);  // [r0²,i0²,r1²,i1²]
    const __m128d lo = _mm256_castpd256_pd128(sq);
    const __m128d hi = _mm256_extractf128_pd(sq, 1);
    // re² + im² per complex, one genuine add each.
    const __m128d s = _mm_add_pd(_mm_unpacklo_pd(lo, hi),   // [r0², r1²]
                                 _mm_unpackhi_pd(lo, hi));  // [i0², i1²]
    _mm_storeu_pd(out + i, s);
  }
  if (i < n) squared_magnitude_sse2(x + i, out + i, n - i);
}

__attribute__((target("avx2"))) void axpy_avx2(double a, const double* x,
                                               double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), t));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2"))) void goertzel4_avx2(const double* x,
                                                    std::size_t n,
                                                    const double coeff[4],
                                                    double s1[4],
                                                    double s2[4]) {
  const __m256d c = _mm256_loadu_pd(coeff);
  __m256d s1v = _mm256_loadu_pd(s1);
  __m256d s2v = _mm256_loadu_pd(s2);
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d v = _mm256_set1_pd(x[i]);
    const __m256d s =
        _mm256_sub_pd(_mm256_add_pd(v, _mm256_mul_pd(c, s1v)), s2v);
    s2v = s1v;
    s1v = s;
  }
  _mm256_storeu_pd(s1, s1v);
  _mm256_storeu_pd(s2, s2v);
}

constexpr Ops kAvx2Ops = {
    butterfly_avx2,
    complex_mul_inplace_avx2,
    complex_mul_avx2,
    mul_inplace_avx2,
    sub_scalar_inplace_avx2,
    div_scalar_inplace_avx2,
    div_scalar_complex_inplace_avx2,
    sum_avx2,
    dot_avx2,
    squared_magnitude_avx2,
    axpy_avx2,
    goertzel4_avx2,
    "avx2",
    Level::kAVX2,
};

#endif  // NYQMON_SIMD_X86

// ----------------------------------------------------------- dispatch ----

std::atomic<const Ops*> g_active{nullptr};

Level env_level(Level fallback) {
  const char* env = std::getenv("NYQMON_SIMD");
  if (env == nullptr) return fallback;
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "sse2") == 0) return Level::kSSE2;
  if (std::strcmp(env, "avx2") == 0) return Level::kAVX2;
  return fallback;  // unknown value: keep the detected level
}

void ensure_init() {
  static const bool done = [] {
    const Ops* ops = ops_for(env_level(detected_level()));
    if (ops == nullptr) ops = ops_for(detected_level());
    g_active.store(ops, std::memory_order_release);
    return true;
  }();
  (void)done;
}

}  // namespace

Level detected_level() {
#if NYQMON_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  return Level::kSSE2;
#else
  return Level::kScalar;
#endif
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSSE2: return "sse2";
    case Level::kAVX2: return "avx2";
  }
  return "unknown";
}

const Ops* ops_for(Level level) {
  if (level > detected_level()) return nullptr;
  switch (level) {
    case Level::kScalar: return &kScalarOps;
#if NYQMON_SIMD_X86
    case Level::kSSE2: return &kSse2Ops;
    case Level::kAVX2: return &kAvx2Ops;
#else
    case Level::kSSE2:
    case Level::kAVX2: return nullptr;
#endif
  }
  return nullptr;
}

Level active_level() {
  ensure_init();
  return g_active.load(std::memory_order_acquire)->level;
}

Level set_level(Level level) {
  ensure_init();
  const Ops* ops = ops_for(level);
  while (ops == nullptr && level > Level::kScalar) {
    level = static_cast<Level>(static_cast<int>(level) - 1);
    ops = ops_for(level);
  }
  g_active.store(ops, std::memory_order_release);
  return ops->level;
}

const Ops& ops() {
  ensure_init();
  return *g_active.load(std::memory_order_acquire);
}

}  // namespace nyqmon::dsp::simd
