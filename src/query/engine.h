// QueryEngine — the downsample-aware read path over retained fleet data.
//
// The paper's a-posteriori mode stores each stream re-sampled at its
// Nyquist rate; this engine is what makes that storage *servable* at
// fleet scale. One QuerySpec fans out over every stream whose ID matches
// the selector: the store metadata pass prunes streams whose ingested
// span misses the query range (no reconstruction spent on them), the
// survivors are reconstructed in parallel through the store's
// band-limited query path, aligned onto the requested output grid by
// linear interpolation, transformed per stream, and aggregated per output
// timestamp. A sharded LRU cache fronts the whole pipeline, invalidated
// by the store's per-stream write-generation counters.
//
// Determinism contract (mirrors engine/engine.h): results are
// bit-identical whatever the per-query worker count and whether the
// result came from the cache or a fresh execution. Matched streams are
// processed into pre-allocated slots in lexicographic ID order and every
// cross-stream reduction iterates in that order, so no floating-point sum
// ever depends on thread interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "monitor/striped_store.h"
#include "query/cache.h"
#include "query/spec.h"

namespace nyqmon::qry {

struct QueryEngineConfig {
  /// Worker threads per query for stream reconstruction (0 = hardware
  /// concurrency). Client threads are the caller's business; each run()
  /// fans out over matched streams with this many workers.
  std::size_t workers = 0;
  bool cache_enabled = true;
  /// Total cached results and the lock-sharding of the cache.
  std::size_t cache_capacity = 256;
  std::size_t cache_shards = 8;
};

/// Monotonic serving counters (aggregated over the engine's lifetime).
struct QueryEngineStats {
  std::uint64_t queries = 0;
  /// Selector/prune accounting, summed over executed (non-cache-hit)
  /// queries: how many streams the metadata pass considered, how many
  /// matched the selector, and how many of those were range-pruned vs
  /// actually reconstructed (matched == pruned + reconstructed).
  std::uint64_t streams_considered = 0;
  std::uint64_t streams_matched = 0;
  std::uint64_t streams_pruned = 0;
  std::uint64_t streams_reconstructed = 0;
  CacheStats cache;
};

class QueryEngine {
 public:
  /// The store must outlive the engine. Concurrent run() calls are safe,
  /// including against concurrent ingest into the store.
  explicit QueryEngine(const mon::StripedRetentionStore& store,
                       QueryEngineConfig config = {});

  /// Execute (or serve from cache) one validated spec.
  QueryResponse run(const QuerySpec& spec);

  QueryEngineStats stats() const;

  const QueryEngineConfig& config() const { return config_; }

 private:
  std::shared_ptr<const QueryResult> execute(
      const QuerySpec& spec,
      const std::vector<std::pair<std::string, mon::StreamMeta>>& matched_meta,
      std::vector<QueryStageTiming>& stages);

  const mon::StripedRetentionStore& store_;
  QueryEngineConfig config_;
  ShardedResultCache cache_;
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> streams_considered_{0};
  std::atomic<std::uint64_t> streams_matched_{0};
  std::atomic<std::uint64_t> streams_pruned_{0};
  std::atomic<std::uint64_t> streams_reconstructed_{0};
};

}  // namespace nyqmon::qry
