// Empirical CDFs — the representation behind Figure 4 (reduction-ratio CDFs
// per metric) and the log-decade summary rows the benches print.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace nyqmon::ana {

class Cdf {
 public:
  explicit Cdf(std::span<const double> samples);

  std::size_t count() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// Fraction of samples <= x (the empirical CDF value at x).
  double fraction_at(double x) const;

  /// Value at quantile q in [0, 1] (linear interpolation).
  double quantile(double q) const;

  double min() const;
  double max() const;

  /// Evaluate at log-spaced points: decades 10^lo .. 10^hi inclusive,
  /// `per_decade` points per decade. Returns (x, F(x)) pairs — the rows
  /// Figure 4's log-x CDF panels plot.
  std::vector<std::pair<double, double>> log_rows(int decade_lo, int decade_hi,
                                                  int per_decade = 1) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace nyqmon::ana
