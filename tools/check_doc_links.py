#!/usr/bin/env python3
"""Fail on broken relative links in markdown docs.

Scans the given markdown files (and directories, recursively) for inline
links/images `[text](target)` and reference definitions `[id]: target`,
and exits 1 if any non-external target does not exist on disk relative to
the file containing it. External schemes (http/https/mailto) and pure
in-page anchors (#...) are skipped; a `path#anchor` target checks only the
path part.

Usage:
    python3 tools/check_doc_links.py README.md docs/
"""

import pathlib
import re
import sys

# Inline [text](target) — target up to the first unescaped ')' — plus
# reference-style "[id]: target" definitions at line start.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def targets_in(text):
    yield from INLINE.findall(text)
    yield from REFDEF.findall(text)


def check_file(md: pathlib.Path):
    broken = []
    text = md.read_text(encoding="utf-8")
    for target in targets_in(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            broken.append((target, resolved))
    return broken


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        return 2
    files = []
    for arg in args:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"error: no such file or directory: {arg}")
            return 2

    failures = 0
    checked = 0
    for md in files:
        broken = check_file(md)
        checked += 1
        for target, resolved in broken:
            print(f"BROKEN  {md}: ({target}) -> {resolved}")
            failures += 1
    if failures:
        print(f"\nFAIL: {failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"docs link check passed: {checked} file(s), no broken links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
