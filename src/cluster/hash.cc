#include "cluster/hash.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "util/hash.h"

namespace nyqmon::clu {

namespace {

/// Ring position of vnode `v` of node `id`: FNV-1a over "<id>#<v>". Text
/// concatenation (not word mixing) keeps the layout greppable and makes
/// the hash identical to what any other implementation of the documented
/// format would compute.
std::uint64_t point_hash(const std::string& id, std::size_t v) {
  return fnv1a(id + "#" + std::to_string(v));
}

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument("ring description line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

HashRing::HashRing(std::vector<NodeDesc> nodes, std::size_t vnodes)
    : nodes_(std::move(nodes)), vnodes_(vnodes) {
  if (nodes_.empty()) throw std::invalid_argument("ring needs >= 1 node");
  if (vnodes_ == 0) throw std::invalid_argument("ring needs vnodes >= 1");
  std::set<std::string> ids;
  for (const NodeDesc& n : nodes_) {
    if (n.id.empty()) throw std::invalid_argument("empty node id");
    if (n.id.find_first_of(" \t\n") != std::string::npos)
      throw std::invalid_argument("node id contains whitespace: " + n.id);
    if (!ids.insert(n.id).second)
      throw std::invalid_argument("duplicate node id: " + n.id);
  }
  points_.reserve(nodes_.size() * vnodes_);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (std::size_t v = 0; v < vnodes_; ++v)
      points_.push_back({point_hash(nodes_[i].id, v),
                         static_cast<std::uint32_t>(i)});
  // Ties (two vnodes hashing equal) resolve by node index so the sorted
  // order — and with it every placement — is independent of input order
  // permutations of equal elements.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

std::size_t HashRing::owner(std::string_view stream_id) const {
  const std::uint64_t h = fnv1a(stream_id);
  // First point clockwise (>= h), wrapping to the first point.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == points_.end()) it = points_.begin();
  return it->node;
}

double HashRing::keyspace_share(std::size_t i) const {
  if (i >= nodes_.size()) return 0.0;
  // Each point owns the arc (previous point, this point]; the first point
  // also owns the wraparound arc past the last point.
  std::uint64_t owned = 0;
  for (std::size_t p = 0; p < points_.size(); ++p) {
    if (points_[p].node != i) continue;
    const std::uint64_t hi = points_[p].hash;
    const std::uint64_t lo =
        p == 0 ? points_.back().hash : points_[p - 1].hash;
    owned += hi - lo;  // wraps correctly for p == 0 (mod 2^64 arithmetic)
  }
  constexpr double kKeyspace = 18446744073709551616.0;  // 2^64
  return static_cast<double>(owned) / kKeyspace;
}

std::string HashRing::describe() const {
  std::string out = "nyqring v1\n";
  out += "vnodes " + std::to_string(vnodes_) + "\n";
  for (const NodeDesc& n : nodes_) {
    char line[320];
    std::snprintf(line, sizeof(line), "node %s %s:%u\n", n.id.c_str(),
                  n.host.c_str(), static_cast<unsigned>(n.port));
    out += line;
  }
  return out;
}

HashRing HashRing::parse(const std::string& text) {
  std::vector<NodeDesc> nodes;
  std::size_t vnodes = 0;
  std::size_t line_no = 0;
  std::size_t start = 0;
  bool saw_header = false;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string line =
        text.substr(start, nl == std::string::npos ? nl : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != "nyqring v1") parse_error(line_no, "expected 'nyqring v1'");
      saw_header = true;
      continue;
    }
    if (line.rfind("vnodes ", 0) == 0) {
      const long v = std::atol(line.c_str() + 7);
      if (v <= 0) parse_error(line_no, "vnodes must be >= 1");
      vnodes = static_cast<std::size_t>(v);
      continue;
    }
    if (line.rfind("node ", 0) == 0) {
      const std::size_t sp = line.find(' ', 5);
      if (sp == std::string::npos)
        parse_error(line_no, "expected 'node <id> <host>:<port>'");
      NodeDesc n;
      n.id = line.substr(5, sp - 5);
      const std::string addr = line.substr(sp + 1);
      const std::size_t colon = addr.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= addr.size())
        parse_error(line_no, "expected <host>:<port>, got '" + addr + "'");
      n.host = addr.substr(0, colon);
      const long port = std::atol(addr.c_str() + colon + 1);
      if (port <= 0 || port > 65535) parse_error(line_no, "bad port");
      n.port = static_cast<std::uint16_t>(port);
      nodes.push_back(std::move(n));
      continue;
    }
    parse_error(line_no, "unknown directive: '" + line + "'");
  }
  if (!saw_header) throw std::invalid_argument("empty ring description");
  if (vnodes == 0) throw std::invalid_argument("ring description: no vnodes");
  if (nodes.empty()) throw std::invalid_argument("ring description: no nodes");
  return HashRing(std::move(nodes), vnodes);
}

}  // namespace nyqmon::clu
