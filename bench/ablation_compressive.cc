// Ablation (Section 5's "complementary techniques"): uniform Nyquist-rate
// sampling vs compressive (random sub-Nyquist) sampling for signals with
// sparse spectra. Sweeps the sampling budget and reports reconstruction
// error for both strategies.
#include <cstdio>

#include "common.h"
#include "reconstruct/compressive.h"
#include "reconstruct/error.h"
#include "reconstruct/lowpass_reconstructor.h"
#include "signal/generators.h"
#include "signal/source.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Ablation: Nyquist-rate vs compressive sampling on a "
              "sparse spectrum ===\n\n");

  // Two tones; spectral sparsity 2. Nyquist rate = 2 * 0.11 = 0.22 Hz.
  const sig::SumOfSines signal({{0.05, 2.0, 0.0}, {0.11, 1.0, 0.0}}, 10.0);
  const double duration = 20000.0;
  const double nyquist_rate = 2.0 * signal.bandwidth_hz();
  const auto dense = signal.sample(0.0, 1.0, 20000);  // ground truth at 1 Hz

  AsciiTable table({"budget (samples)", "vs Nyquist need", "uniform NRMSE",
                    "compressive NRMSE"});
  CsvWriter csv(bench::csv_path("ablation_compressive"),
                {"samples", "fraction_of_nyquist", "uniform_nrmse",
                 "compressive_nrmse"});

  const auto nyquist_need =
      static_cast<std::size_t>(duration * nyquist_rate);  // 4400 samples
  for (double fraction : {0.1, 0.25, 0.5, 1.0, 1.5}) {
    const auto budget =
        static_cast<std::size_t>(static_cast<double>(nyquist_need) * fraction);

    // Uniform plan: evenly spaced samples, band-limited reconstruction.
    const double uni_dt = duration / static_cast<double>(budget);
    const auto uniform = signal.sample(0.0, uni_dt, budget);
    const auto uni_recon = rec::reconstruct(uniform, dense.size());
    const double uni_err = rec::nrmse(dense.span(), uni_recon.span());

    // Compressive plan: the same budget spent at random times + OMP.
    Rng rng(31337 + static_cast<std::uint64_t>(fraction * 100));
    sig::TimeSeries random_samples;
    for (std::size_t i = 0; i < budget; ++i) {
      const double t = rng.uniform(0.0, duration);
      random_samples.push(t, signal.value(t));
    }
    rec::CompressiveConfig cc;
    cc.sparsity = 2;
    cc.grid_bins = 1000;
    cc.max_frequency_hz = 0.125;
    const auto model = rec::compressive_recover(random_samples, cc);
    const auto cs_recon = model.sample(0.0, dense.dt(), dense.size());
    const double cs_err = rec::nrmse(dense.span(), cs_recon.span());

    char frac_label[16];
    std::snprintf(frac_label, sizeof frac_label, "%.2fx", fraction);
    table.row({std::to_string(budget), frac_label,
               AsciiTable::format_double(uni_err),
               AsciiTable::format_double(cs_err)});
    csv.row_numeric({static_cast<double>(budget), fraction, uni_err, cs_err});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: below the Nyquist budget uniform sampling aliases\n"
              "and cannot recover the signal, while compressive sampling of\n"
              "the sparse spectrum succeeds with a fraction of the samples —\n"
              "the complementary regime the paper's Section 5 points at.\n"
              "At and above the Nyquist budget the uniform plan matches it\n"
              "without needing the sparsity assumption.\n");
  return 0;
}
