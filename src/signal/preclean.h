// Pre-cleaning of raw monitoring traces (paper Section 3.2):
// "In practice, monitoring systems do not produce perfectly sampled
//  signals ... we pre-clean the signal using nearest neighbor re-sampling;
//  that is, we add values for missing samples based on nearby samples."
//
// regularize() converts an irregular TimeSeries onto a uniform grid. It also
// drops non-finite values and collapses duplicate timestamps first, so the
// pipeline tolerates the data-corruption artifacts the paper mentions.
#pragma once

#include "signal/timeseries.h"

namespace nyqmon::sig {

enum class InterpKind {
  kNearest,  ///< the paper's choice
  kLinear,
};

struct PrecleanConfig {
  /// Target grid spacing; 0 = use the trace's median interval.
  double dt = 0.0;
  InterpKind interp = InterpKind::kNearest;
  /// Gaps longer than this many grid steps are still filled (the estimator
  /// needs a complete grid) but reported via PrecleanReport.
  double long_gap_steps = 5.0;
};

struct PrecleanReport {
  std::size_t input_samples = 0;
  std::size_t dropped_nonfinite = 0;   ///< NaN/inf inputs removed
  std::size_t collapsed_duplicates = 0;///< same-timestamp repeats merged
  std::size_t grid_points = 0;         ///< output length
  std::size_t filled_in_long_gaps = 0; ///< grid points inside long gaps
  double chosen_dt = 0.0;
};

/// Regularize `raw` onto a uniform grid. Requires >= 2 finite samples after
/// cleaning; throws std::invalid_argument otherwise.
RegularSeries regularize(const TimeSeries& raw, const PrecleanConfig& config = {},
                         PrecleanReport* report = nullptr);

}  // namespace nyqmon::sig
