// NyqmonClient — blocking client for the nyqmond wire protocol.
//
// One instance owns one TCP connection and issues one command at a time
// (the protocol is strictly request/response per connection; concurrency
// comes from multiple clients). Command methods throw ServerError when the
// server answers ERR — the server's message (and any per-node detail from
// a router's partial-failure report) is carried through — and
// std::runtime_error when the transport fails.
//
// ClientOptions adds bounded waiting: a connect timeout (non-blocking
// connect + poll) and an I/O timeout on every send/recv (SO_SNDTIMEO /
// SO_RCVTIMEO). Both default to 0 = block forever, the pre-cluster
// behavior. retry_with_backoff() wraps any callable in the standard
// reconnect loop: transport errors retry with exponential backoff,
// ServerError (the server *answered*) never retries.
//
// The typed surface is Request/Response + call()/call_ok(): a Request
// names the verb, carries the encoded payload, and optionally the
// protocol's trailing flag byte and a trace label (prefixed onto
// transport-error messages so fan-out callers can tell which request
// died). The pre-existing per-verb methods (ingest/query/stats_json/…)
// are kept as thin wrappers over call_ok() for one release while callers
// migrate; new code should prefer query(QueryBuilder) and, for verbs this
// client predates, call()/call_ok() directly. Not marked [[deprecated]]
// yet — the wrappers still back most in-tree call sites — but treat them
// as frozen: new verbs get a Request, not a new wrapper.
//
// The raw escape hatches (send_raw / request_raw) exist for protocol
// tests: truncated frames, oversized length prefixes, unknown verbs.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "query/builder.h"
#include "query/spec.h"
#include "server/protocol.h"

namespace nyqmon::srv {

/// The server answered ERR. `details` is non-empty only for ERR-with-detail
/// payloads (the router's per-backend failure report).
class ServerError : public std::runtime_error {
 public:
  ServerError(const std::string& message, std::vector<ErrorDetail> details)
      : std::runtime_error("server error: " + message),
        details_(std::move(details)) {}

  const std::vector<ErrorDetail>& details() const { return details_; }

 private:
  std::vector<ErrorDetail> details_;
};

struct ClientOptions {
  /// Bound on establishing the TCP connection. 0 = block forever.
  std::uint32_t connect_timeout_ms = 0;
  /// Bound on each send/recv syscall of a request. 0 = block forever.
  std::uint32_t io_timeout_ms = 0;
  /// Must match the server's frame cap when that was raised from the
  /// default — response frames beyond it are rejected.
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

/// One typed wire request: the verb, its encoded payload, and (when set)
/// the protocol's optional trailing flag byte — QUERY's kQueryWant* bits,
/// METRICS/TRACE's fleet bit. `trace` is a client-side label only (never
/// sent): it prefixes transport-error messages, so a caller fanning one
/// logical operation across many requests can tell which one failed.
struct Request {
  Verb verb = Verb::kStats;
  std::span<const std::uint8_t> payload{};
  std::optional<std::uint8_t> flags{};
  std::string trace;
};

/// The decoded response frame: the status byte plus everything after it.
/// For ERR frames the server's message and per-node details are decoded
/// into error_message / error_details and `payload` is empty.
struct Response {
  Status status = Status::kOk;
  std::vector<std::uint8_t> payload;
  std::string error_message;
  std::vector<ErrorDetail> error_details;

  bool ok() const { return status == Status::kOk; }
};

class NyqmonClient {
 public:
  /// Connect to host:port (numeric IPv4 host). Throws on failure (a
  /// connect timeout throws std::runtime_error mentioning "timed out").
  NyqmonClient(const std::string& host, std::uint16_t port,
               ClientOptions options);

  /// Untimed connect (back-compat convenience).
  NyqmonClient(const std::string& host, std::uint16_t port,
               std::size_t max_frame_bytes = kMaxFrameBytes)
      : NyqmonClient(host, port,
                     ClientOptions{0, 0, max_frame_bytes}) {}

  ~NyqmonClient();

  NyqmonClient(const NyqmonClient&) = delete;
  NyqmonClient& operator=(const NyqmonClient&) = delete;

  /// Issue one typed request and return the decoded response, OK or ERR
  /// alike. Throws std::runtime_error only on transport failure (with
  /// req.trace prefixed onto the message when set) — inspect
  /// Response::ok() for the server's verdict.
  Response call(const Request& req);

  /// call() + ERR unwrapping: returns the OK payload, throws ServerError
  /// when the server answered ERR. Every per-verb method below routes
  /// through here.
  std::vector<std::uint8_t> call_ok(const Request& req);

  /// Append a batch to `stream`, creating it on first ingest with the
  /// given collection rate and start time. Returns the stream's total
  /// ingested sample count after the append.
  std::uint64_t ingest(const std::string& stream, double rate_hz, double t0,
                       std::span<const double> values);

  /// `want_matched` sets kQueryWantMatched so the reply carries the matched
  /// stream IDs (QueryReply::matched_labels) — the cluster merge needs them.
  /// `want_explain` sets kQueryWantExplain so the reply carries the
  /// per-stage latency breakdown (QueryReply::explain); an old server
  /// ignores the flag and the field stays empty.
  QueryReply query(const qry::QuerySpec& spec, bool want_matched = false,
                   bool want_explain = false);

  /// Build-and-query in one go: validates the builder's spec and carries
  /// its want_matched/want_explain options as the request flags.
  QueryReply query(const qry::QueryBuilder& builder) {
    return query(builder.build(), builder.matched_wanted(),
                 builder.explain_wanted());
  }

  /// The server's JSON counter snapshot, verbatim.
  std::string stats_json();

  /// The server process's metric registry as Prometheus text exposition
  /// (catalog: docs/OBSERVABILITY.md), verbatim. With `fleet`, a router
  /// scatter-gathers every backend's exposition and returns them as
  /// `# == node <name> ==` sections (a plain nyqmond ignores the flag and
  /// answers its own exposition).
  std::string metrics_text(bool fleet = false);

  /// Drain the server's trace rings as chrome://tracing JSON, verbatim.
  /// Consuming: consecutive calls return disjoint windows of activity.
  /// With `fleet`, a router drains every backend too and stitches all the
  /// timelines (its own included) into one JSON document.
  std::string trace_json(bool fleet = false);

  /// Drain the server's structured log rings as `nyqlog v1` text
  /// (src/obs/log.h). Consuming, like trace_json().
  std::string logs_text();

  CheckpointReply checkpoint();

  /// Snapshot every stream matching `selector` into a wire segment image
  /// (non-destructive; the server keeps serving its copy).
  HandoffExportReply handoff_export(const std::string& selector);

  /// Restore a wire segment image into the server. The server refuses
  /// (ServerError with per-stream details) when any stream already exists.
  HandoffImportReply handoff_import(std::span<const std::uint8_t> segment);

  /// Close the socket early (tests: disconnect mid-exchange). Idempotent.
  void close();

  /// The connection's fd, -1 after close() (cluster fan-out polls it).
  int fd() const { return fd_; }

  // ---- protocol-test escape hatches ----

  /// Send raw bytes as-is (no framing).
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Send one framed request and return the raw response body
  /// (status byte + payload). Throws only on transport failure.
  std::vector<std::uint8_t> request_raw(std::uint8_t verb,
                                        std::span<const std::uint8_t> payload);

 private:
  /// request_raw + ERR unwrapping: returns the OK payload.
  std::vector<std::uint8_t> request_ok(Verb verb,
                                       std::span<const std::uint8_t> payload);
  std::vector<std::uint8_t> read_response_body();

  int fd_ = -1;
  std::size_t max_frame_bytes_;
};

/// Reconnect/retry schedule for retry_with_backoff.
struct RetryPolicy {
  std::size_t attempts = 3;
  std::chrono::milliseconds initial_backoff{50};
  double multiplier = 2.0;
};

/// Run `fn` up to policy.attempts times, sleeping an exponentially growing
/// backoff between failures. Retries on transport-level failures
/// (std::runtime_error) only: a ServerError means the request *reached* the
/// server and was refused — retrying cannot change the answer — so it
/// propagates immediately, as does the last transport error.
template <typename Fn>
auto retry_with_backoff(const RetryPolicy& policy, Fn&& fn)
    -> decltype(fn()) {
  auto backoff = policy.initial_backoff;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const ServerError&) {
      throw;
    } catch (const std::runtime_error&) {
      if (attempt >= policy.attempts || policy.attempts == 0) throw;
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::chrono::milliseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * policy.multiplier));
  }
}

}  // namespace nyqmon::srv
