// Estimator validation against every telemetry metric model — the check
// the paper could not run on production data: for each of the 14 metrics,
// generate devices with *known* band limits, run the full poll -> preclean
// -> estimate pipeline, and verify the estimate's relationship to ground
// truth.
#include <gtest/gtest.h>

#include <cmath>

#include "nyquist/estimator.h"
#include "signal/preclean.h"
#include "telemetry/metric_model.h"
#include "telemetry/poller.h"
#include "util/rng.h"

namespace {

using nyqmon::Rng;
using namespace nyqmon;

struct PipelineRun {
  tel::MetricInstance instance;
  nyq::NyquistEstimate estimate;
};

PipelineRun run_pipeline(tel::MetricKind kind, std::uint64_t seed,
                         nyq::DetrendMode detrend) {
  Rng rng(seed);
  PipelineRun out;
  out.instance = tel::make_metric_instance(
      kind, tel::metric_spec(kind).trace_duration_s, rng);

  tel::PollerConfig pc;
  pc.interval_s = out.instance.poll_interval_s;
  pc.jitter_frac = 0.05;
  pc.drop_prob = 0.005;
  pc.quantization_step = out.instance.quantization_step;
  Rng poll_rng = rng.fork();
  const auto raw = tel::poll(*out.instance.signal, 0.0,
                             out.instance.trace_duration_s, pc, poll_rng);

  sig::PrecleanConfig clean;
  clean.dt = out.instance.poll_interval_s;
  const auto trace = sig::regularize(raw, clean);

  nyq::EstimatorConfig cfg;
  cfg.detrend = detrend;
  out.estimate = nyq::NyquistEstimator(cfg).estimate(trace);
  return out;
}

class MetricValidation : public ::testing::TestWithParam<tel::MetricKind> {};

TEST_P(MetricValidation, EstimateNeverExceedsPollRate) {
  // The estimator can only see up to the trace's Nyquist frequency, so an
  // Ok estimate must never exceed the polling rate.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto run = run_pipeline(GetParam(), seed, nyq::DetrendMode::kMean);
    if (run.estimate.ok()) {
      EXPECT_LE(run.estimate.nyquist_rate_hz,
                1.0 / run.instance.poll_interval_s * (1.0 + 1e-9));
    }
  }
}

TEST_P(MetricValidation, OversampledDevicesNeverOverestimateBadly) {
  // For devices whose true Nyquist rate is comfortably below the poll
  // rate (>= 4x oversampled), the detrended estimate must stay within
  // ~4x of the true Nyquist rate: the 99% rule may under-report (red
  // spectra) and mildly over-report (quantization noise, the spectral
  // tails of flap edges) but must not invent bandwidth wholesale.
  int checked = 0;
  for (std::uint64_t seed = 10; seed < 40 && checked < 5; ++seed) {
    const auto run = run_pipeline(GetParam(), seed, nyq::DetrendMode::kMean);
    const double true_nyquist = 2.0 * run.instance.true_bandwidth_hz;
    const double poll_rate = 1.0 / run.instance.poll_interval_s;
    if (poll_rate < 4.0 * true_nyquist) continue;  // not clearly oversampled
    if (!run.estimate.ok()) continue;              // flat/short draws
    ++checked;
    EXPECT_LE(run.estimate.nyquist_rate_hz, 4.0 * true_nyquist)
        << tel::metric_name(GetParam()) << " seed=" << seed
        << " true_bw=" << run.instance.true_bandwidth_hz;
  }
  // At least one qualifying device exists for every metric's band range.
  EXPECT_GE(checked, 1) << tel::metric_name(GetParam());
}

TEST_P(MetricValidation, VerdictIsAlwaysActionable) {
  // No metric model may drive the estimator into an invalid state: the
  // verdict is one of the four defined outcomes and its payload matches.
  const auto run = run_pipeline(GetParam(), 99, nyq::DetrendMode::kMean);
  switch (run.estimate.verdict) {
    case nyq::NyquistEstimate::Verdict::kOk:
      EXPECT_GT(run.estimate.nyquist_rate_hz, 0.0);
      break;
    case nyq::NyquistEstimate::Verdict::kAliased:
      EXPECT_DOUBLE_EQ(run.estimate.nyquist_rate_hz, -1.0);
      break;
    case nyq::NyquistEstimate::Verdict::kFlat:
      EXPECT_DOUBLE_EQ(run.estimate.nyquist_rate_hz, 0.0);
      break;
    case nyq::NyquistEstimate::Verdict::kTooShort:
      ADD_FAILURE() << "trace durations are sized to never be too short";
      break;
  }
}

TEST_P(MetricValidation, TraceDurationResolvesTheBandFloor) {
  // Each metric's configured trace duration must make its *lowest* band
  // limit resolvable within a factor ~4 of the spectral resolution —
  // otherwise Figure 5's per-metric minimum would be a pure artifact.
  const auto& spec = tel::metric_spec(GetParam());
  const double resolution = 1.0 / spec.trace_duration_s;
  EXPECT_LE(resolution, 4.0 * spec.bandwidth_lo_hz)
      << tel::metric_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricValidation,
    ::testing::ValuesIn(tel::all_metrics()),
    [](const ::testing::TestParamInfo<tel::MetricKind>& info) {
      std::string name = tel::metric_name(info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
