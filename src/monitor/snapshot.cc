#include "monitor/snapshot.h"

#include <algorithm>
#include <cmath>

#include "dsp/resample.h"
#include "obs/metrics.h"

namespace nyqmon::mon {

sig::RegularSeries reconstruct_range(double collection_rate_hz,
                                     std::span<const SealedChunkRef> chunks,
                                     std::span<const double> hot,
                                     double hot_t0, double t_begin,
                                     double t_end) {
  const double dt = 1.0 / collection_rate_hz;

  // Half-open [t_begin, t_end): inverted/empty ranges clamp to a defined
  // empty series on the collection grid instead of reaching reconstruction.
  const auto n = t_end > t_begin
                     ? static_cast<std::size_t>(
                           std::floor((t_end - t_begin) / dt + 0.5))
                     : 0;
  if (n == 0) return sig::RegularSeries(t_begin, dt, {});

  // Assemble the query grid and fill it chunk by chunk; each sealed chunk
  // is reconstructed onto the collection grid by band-limited resampling,
  // the hot tail is already on it.
  std::vector<double> grid(n, 0.0);
  std::vector<bool> filled(n, false);

  auto fill_from = [&](double c_t0, double c_dt,
                       std::span<const double> values) {
    if (values.empty()) return;
    const double c_end = c_t0 + c_dt * static_cast<double>(values.size());
    // Dense representation of this chunk on the collection grid.
    const auto dense_n = static_cast<std::size_t>(std::max(
        2.0, std::round((c_end - c_t0) / dt)));
    std::vector<double> dense =
        values.size() == dense_n
            ? std::vector<double>(values.begin(), values.end())
            : dsp::resample_fourier(values, dense_n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = t_begin + static_cast<double>(i) * dt;
      if (t < c_t0 - 1e-9 || t >= c_end - 1e-9) continue;
      const auto j = static_cast<std::size_t>(
          std::min(static_cast<double>(dense.size() - 1),
                   std::max(0.0, std::round((t - c_t0) / dt))));
      grid[i] = dense[j];
      filled[i] = true;
    }
  };

  for (const auto& chunk : chunks)
    fill_from(chunk->t0, chunk->dt, chunk->values);
  fill_from(hot_t0, dt, hot);

  // Holes (queries beyond stored data) hold the nearest filled value.
  double last = 0.0;
  bool seen = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (filled[i]) {
      last = grid[i];
      seen = true;
    } else if (seen) {
      grid[i] = last;
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    if (filled[i]) {
      last = grid[i];
      seen = true;
    } else if (seen) {
      grid[i] = last;
    }
  }

  // Range entirely disjoint from stored data: hold the nearest stored
  // value (the first for grids before the data, the last for grids past
  // its end — judged by the last actual grid point, not t_end, which can
  // overshoot the final point by up to a step). A stream with no data at
  // all stays zero.
  if (!seen && (!hot.empty() || !chunks.empty())) {
    const double data_t0 = chunks.empty() ? hot_t0 : chunks.front()->t0;
    const double first =
        chunks.empty() ? hot.front() : chunks.front()->values.front();
    const double final_value =
        hot.empty() ? chunks.back()->values.back() : hot.back();
    const double t_last = t_begin + dt * static_cast<double>(n - 1);
    std::fill(grid.begin(), grid.end(),
              t_last < data_t0 ? first : final_value);
  }
  return sig::RegularSeries(t_begin, dt, std::move(grid));
}

void EpochRegistry::publish_gauges_locked() const {
  NYQMON_OBS_GAUGE_SET("nyqmon_store_epoch_active_depth",
                       static_cast<std::int64_t>(active_.size()));
  NYQMON_OBS_GAUGE_SET("nyqmon_store_epoch_retired_depth",
                       static_cast<std::int64_t>(retired_.size()));
}

std::uint64_t EpochRegistry::pin() {
  std::uint64_t epoch;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    epoch = ++epoch_;
    ++active_[epoch];
    publish_gauges_locked();
  }
  NYQMON_OBS_COUNT("nyqmon_store_epoch_pins_total", 1);
  return epoch;
}

void EpochRegistry::release(std::uint64_t epoch) {
  std::vector<SealedChunkRef> freed;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = active_.find(epoch);
    if (it == active_.end()) return;  // double release: tolerated
    if (--it->second == 0) active_.erase(it);
    collect_locked(freed);
    publish_gauges_locked();
  }
  if (!freed.empty())
    NYQMON_OBS_COUNT("nyqmon_store_epoch_reclaimed_total", freed.size());
  // `freed` destroys the final store-side references outside the lock.
}

void EpochRegistry::retire(SealedChunkRef chunk) {
  std::vector<SealedChunkRef> freed;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    retired_.emplace_back(epoch_, std::move(chunk));
    collect_locked(freed);
    publish_gauges_locked();
  }
  if (!freed.empty())
    NYQMON_OBS_COUNT("nyqmon_store_epoch_reclaimed_total", freed.size());
}

void EpochRegistry::collect_locked(std::vector<SealedChunkRef>& freed) {
  // A parked chunk stays pinned while any live snapshot's epoch is <= its
  // retire epoch: such a snapshot was acquired before the eviction and may
  // hold (or be reading through) the reference. active_ is an ordered map,
  // so its first key is the oldest live epoch.
  const std::uint64_t oldest_live =
      active_.empty() ? epoch_ + 1 : active_.begin()->first;
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    if (it->first >= oldest_live) {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    } else {
      freed.push_back(std::move(it->second));
    }
  }
  retired_.erase(keep, retired_.end());
}

std::uint64_t EpochRegistry::current_epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::size_t EpochRegistry::active_snapshots() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [epoch, pins] : active_) n += pins;
  return n;
}

std::size_t EpochRegistry::retired_pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

}  // namespace nyqmon::mon
