// Section 4.1 (no figure in the paper): the dual-rate aliasing detector.
// "the authors propose to sample at two distinct frequencies f1 and f2 ...
//  if aliasing occurs ... comparing the discrete fourier transforms of the
//  two sampled signals would show discrepancies."
//
// The harness sweeps the signal band limit across the detector's operating
// rate and reports the detection decision — the detection-accuracy table
// behind the paper's design argument, including the ~2x cost overhead.
#include <cstdio>

#include "common.h"
#include "nyquist/aliasing_detector.h"
#include "signal/generators.h"
#include "util/ascii.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace nyqmon;
  std::printf("=== Section 4.1: dual-rate aliasing detection accuracy ===\n\n");

  const double operating_rate = 0.1;  // rate under test (f2)
  const nyq::DualRateAliasingDetector detector;
  const double ratio = detector.config().rate_ratio;

  AsciiTable table({"signal bw (Hz)", "bw / (f2/2)", "ground truth",
                    "detected", "discrepancy", "correct"});
  CsvWriter csv(bench::csv_path("table_dual_rate_detection"),
                {"bandwidth_hz", "relative_bw", "truth_aliased",
                 "detected_aliased", "discrepancy"});

  std::size_t correct = 0, total = 0;
  const double nyq_f2 = operating_rate / 2.0;
  for (double rel : {0.1, 0.25, 0.5, 0.7, 0.9, 1.2, 1.5, 2.0, 3.0, 5.0}) {
    const double bw = rel * nyq_f2;
    Rng rng(1000 + static_cast<std::uint64_t>(rel * 100));
    const auto proc = sig::make_bandlimited_process(
        bw, 1.0, 64, rng, 0.0, sig::SpectralShape::kFlat);
    const auto result = detector.probe(
        [&proc](double t) { return proc->value(t); }, 0.0, 40000.0,
        operating_rate);

    const bool truth = bw > nyq_f2;  // content above f2/2 => aliasing at f2
    const bool match = truth == result.aliasing_detected;
    // The +-15% band around the Nyquist edge is genuinely ambiguous
    // (leakage); count accuracy outside it.
    if (rel < 0.85 || rel > 1.15) {
      ++total;
      if (match) ++correct;
    }
    table.row({AsciiTable::format_double(bw), AsciiTable::format_double(rel),
               truth ? "aliased" : "clean",
               result.aliasing_detected ? "aliased" : "clean",
               AsciiTable::format_double(result.discrepancy),
               match ? "yes" : "NO"});
    csv.row_numeric({bw, rel, truth ? 1.0 : 0.0,
                     result.aliasing_detected ? 1.0 : 0.0,
                     result.discrepancy});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("accuracy outside the +-15%% ambiguity band: %zu/%zu\n",
              correct, total);
  std::printf("dual-rate probe cost: %.2fx the rate under test (f1 = %.2f "
              "f2) — the paper's 'roughly doubles' overhead — and\n"
              "transient: after the check, the excess measurements are "
              "discarded by re-sampling at the identified rate.\n",
              1.0 + ratio, ratio);
  return 0;
}
