// Write-ahead log for the retention store's raw hot tail.
//
// Sealed chunks reach disk codec-compressed at flush time; everything newer
// — stream creations and raw append batches — is logged here first, so an
// interrupted run loses nothing past the last fsync'd batch. Records are
// length-framed and CRC32-protected; values are raw little-endian f64
// (append speed over compactness: the WAL is transient, folded into
// compressed segments at every flush).
//
// On-disk format (canonical spec: docs/FORMATS.md):
//   file   := "NYQWAL1\n" record*
//   record := u8 type | u32 payload_len | u32 crc32(payload) | payload
//   type 1 (create) := name:str16 | f64 rate_hz | f64 t0
//   type 2 (append) := name:str16 | u32 count | f64 value * count
//
// Replay walks records in order and stops at the first incomplete or
// CRC-bad record (a torn tail write), truncating the file back to the last
// good record boundary so the log can keep appending after recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "storage/io.h"

namespace nyqmon::sto {

inline constexpr char kWalMagic[8] = {'N', 'Y', 'Q', 'W', 'A', 'L', '1', '\n'};

struct WalRecord {
  enum class Type : std::uint8_t { kCreate = 1, kAppend = 2 };
  Type type = Type::kAppend;
  std::string stream;
  double collection_rate_hz = 0.0;  ///< kCreate only
  double t0 = 0.0;                  ///< kCreate only
  std::vector<double> values;       ///< kAppend only
};

struct WalReplayStats {
  std::size_t records_replayed = 0;
  /// Records dropped at the tail (incomplete frame or CRC mismatch — the
  /// signature of a torn write). The file is truncated past them.
  std::size_t records_truncated = 0;
  std::uint64_t bytes_replayed = 0;  ///< good prefix, including the magic
};

class WriteAheadLog {
 public:
  /// Create a fresh, fsync'd log containing only the magic.
  static void create(const std::string& path);

  /// Open an existing log for appending. The caller must have replayed and
  /// truncated it first (or just created it) — appending after a torn tail
  /// would corrupt the framing.
  explicit WriteAheadLog(std::string path,
                         std::size_t sync_interval_batches = 64);

  void append_create(const std::string& stream, double collection_rate_hz,
                     double t0);
  void append_batch(const std::string& stream, std::span<const double> values);

  /// Explicit durability barrier (also issued automatically every
  /// `sync_interval_batches` appended records).
  void sync();

  std::uint64_t bytes() const { return file_.bytes_written(); }
  std::uint64_t batches() const { return batches_; }
  std::uint64_t syncs() const { return syncs_; }
  const std::string& path() const { return path_; }

  /// Replay `path` through `apply` in record order, stop at the first bad
  /// or incomplete record, and truncate the file to the good prefix. A
  /// missing or magic-less file replays as empty (and is re-created).
  static WalReplayStats replay(
      const std::string& path,
      const std::function<void(const WalRecord&)>& apply);

 private:
  void append_record(WalRecord::Type type,
                     const std::vector<std::uint8_t>& payload);

  std::string path_;
  File file_;
  std::size_t sync_interval_;
  std::uint64_t batches_ = 0;
  std::uint64_t syncs_ = 0;
  std::size_t unsynced_ = 0;
};

}  // namespace nyqmon::sto
