// Microbenchmarks for the core: Nyquist estimation, windowed tracking,
// dual-rate detection, adaptive sampling, and trace pre-cleaning — the
// "analysis CPU" term of the monitoring cost model.
#include <benchmark/benchmark.h>

#include "nyquist/adaptive_sampler.h"
#include "nyquist/aliasing_detector.h"
#include "nyquist/estimator.h"
#include "nyquist/windowed_tracker.h"
#include "signal/generators.h"
#include "signal/preclean.h"
#include "util/rng.h"

namespace {

using namespace nyqmon;

sig::RegularSeries day_trace(std::size_t n, double dt) {
  Rng rng(7);
  const auto proc = sig::make_bandlimited_process(1e-3, 5.0, 32, rng, 40.0);
  return proc->sample(0.0, dt, n);
}

void BM_NyquistEstimate(benchmark::State& state) {
  const auto trace = day_trace(static_cast<std::size_t>(state.range(0)), 30.0);
  const nyq::NyquistEstimator estimator;
  for (auto _ : state) {
    auto est = estimator.estimate(trace);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_NyquistEstimate)->Arg(2880)->Arg(8640)->Arg(28800);

void BM_NyquistEstimateWelch(benchmark::State& state) {
  const auto trace = day_trace(8640, 30.0);
  nyq::EstimatorConfig cfg;
  cfg.welch_segments = 8;
  const nyq::NyquistEstimator estimator(cfg);
  for (auto _ : state) {
    auto est = estimator.estimate(trace);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_NyquistEstimateWelch);

void BM_WindowedTracker(benchmark::State& state) {
  // One day of 30 s samples, 6 h window / 30 min step.
  const auto trace = day_trace(2880, 30.0);
  nyq::TrackerConfig cfg;
  cfg.window_duration_s = 6.0 * 3600.0;
  cfg.step_s = 1800.0;
  const nyq::WindowedNyquistTracker tracker(cfg);
  for (auto _ : state) {
    auto tracked = tracker.track(trace);
    benchmark::DoNotOptimize(tracked);
  }
}
BENCHMARK(BM_WindowedTracker);

void BM_DualRateDetect(benchmark::State& state) {
  Rng rng(9);
  const auto proc = sig::make_bandlimited_process(0.01, 1.0, 32, rng);
  const auto fast = proc->sample(0.0, 1.0 / 0.185, 4096);
  const auto slow = proc->sample(0.0, 1.0 / 0.1, 2214);
  const nyq::DualRateAliasingDetector detector;
  for (auto _ : state) {
    auto result = detector.detect(fast, slow);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DualRateDetect);

void BM_AdaptiveSamplerRun(benchmark::State& state) {
  Rng rng(10);
  const auto proc = sig::make_bandlimited_process(0.002, 1.0, 16, rng);
  nyq::AdaptiveConfig cfg;
  cfg.initial_rate_hz = 0.02;
  cfg.window_duration_s = 20000.0;
  const nyq::AdaptiveSampler sampler(cfg);
  for (auto _ : state) {
    auto run = sampler.run([&proc](double t) { return proc->value(t); }, 0.0,
                           200000.0);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_AdaptiveSamplerRun);

void BM_Preclean(benchmark::State& state) {
  Rng rng(11);
  sig::TimeSeries raw;
  for (int i = 0; i < 2880; ++i)
    raw.push(i * 30.0 + rng.uniform(-3.0, 3.0), rng.normal(40.0, 5.0));
  sig::PrecleanConfig cfg;
  cfg.dt = 30.0;
  for (auto _ : state) {
    auto trace = sig::regularize(raw, cfg);
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2880);
}
BENCHMARK(BM_Preclean);

}  // namespace
